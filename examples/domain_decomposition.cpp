// Reproduction of the paper's Figure 3: an 8x8 (2-D) multi-section domain
// decomposition adapting to a clustered particle distribution -- dense
// structures are cut into many small domains so every process carries the
// same cost.  Prints the domain grid and writes an image with the domain
// boundaries burned into the projected density.
//
// Usage: domain_decomposition [n_particles=200000]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "analysis/projection.hpp"
#include "core/particle.hpp"
#include "domain/multisection.hpp"
#include "util/stats.hpp"

using namespace greem;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200000;

  // Strongly clustered distribution (evolved-universe analog).
  const auto particles = core::clustered_particles(n, 1.0, 6, 0.75, 0.03, 7);
  const std::vector<Vec3> samples = core::positions_of(particles);

  // 8 x 8 division in two dimensions, exactly the figure's configuration.
  const std::array<int, 3> dims{8, 8, 1};
  const auto adaptive = domain::build_multisection(dims, samples);
  const auto uniform = domain::Decomposition::uniform(dims);

  auto counts = [&](const domain::Decomposition& d) {
    std::vector<double> c(static_cast<std::size_t>(d.nranks()), 0.0);
    for (const auto& p : samples) c[static_cast<std::size_t>(d.find_domain(p))] += 1;
    return c;
  };
  std::printf("particles per domain (64 domains):\n");
  std::printf("  static uniform grid : max/mean imbalance = %.2f\n",
              summarize(counts(uniform)).imbalance());
  std::printf("  multi-section       : max/mean imbalance = %.2f\n",
              summarize(counts(adaptive)).imbalance());

  double min_vol = 1.0;
  for (const auto& b : adaptive.boxes()) min_vol = std::min(min_vol, b.volume());
  std::printf("\nadaptive x-cuts: ");
  for (double c : adaptive.xcuts) std::printf("%.3f ", c);
  std::printf("\nsmallest domain volume: %.2e (uniform cell: %.2e)\n", min_vol, 1.0 / 64.0);

  // Figure: density projection along z (image axes = x, y) with the
  // adaptive domain boundaries drawn in.
  analysis::ProjectionParams pp;
  pp.pixels = 512;
  auto img = analysis::project_density(samples, pp);
  const double px = static_cast<double>(pp.pixels - 1);
  auto to_px = [&](double v) {
    return static_cast<std::size_t>(std::min(v, 0.9999) * px);
  };
  for (int ix = 0; ix < 8; ++ix)
    for (int iy = 0; iy < 8; ++iy) {
      const Box b = adaptive.box_of(adaptive.rank_of(ix, iy, 0));
      const std::size_t u0 = to_px(b.lo.x), u1 = to_px(b.hi.x);
      const std::size_t v0 = to_px(b.lo.y), v1 = to_px(b.hi.y);
      for (std::size_t u = u0; u <= u1; ++u) {
        img.at(u, v0) = 0;
        img.at(u, v1) = 0;
      }
      for (std::size_t v = v0; v <= v1; ++v) {
        img.at(u0, v) = 0;
        img.at(u1, v) = 0;
      }
    }
  img.write_pgm_log("domain_decomposition.pgm",
                    static_cast<double>(n) / (512.0 * 512.0));
  std::printf("\nwrote domain_decomposition.pgm\n");
  return 0;
}
