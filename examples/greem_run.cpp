// The production run driver: a complete cosmological TreePM simulation
// configured from a key = value file -- initial conditions (Zel'dovich or
// 2LPT), the multiple-stepsize integration in log(a), snapshot and image
// output, optional restart from a snapshot, and a FoF catalog at the end.
//
// Usage: greem_run <config-file>
//        greem_run --print-defaults
// See examples/configs/microhalo.cfg for an annotated configuration.

#include <cstdio>
#include <cstring>
#include <numbers>
#include <string>

#include "analysis/fof.hpp"
#include "analysis/projection.hpp"
#include "core/simulation.hpp"
#include "fft/fft1d.hpp"
#include "ic/zeldovich.hpp"
#include "io/config.hpp"
#include "io/csv.hpp"
#include "io/snapshot.hpp"

using namespace greem;

namespace {

const char* kDefaults = R"(# greem_run configuration (defaults shown)
n_per_dim      = 16        # particles per dimension (power of two)
seed           = 42
ic             = 2lpt      # zeldovich | 2lpt
amplitude      = 2e-5      # P(k) amplitude at a_start
index          = 0.0       # spectral index
kcut_modes     = 4         # free-streaming cutoff, in units of n_per_dim/kcut_div
cosmology      = concordance   # concordance | eds
a_start        = 0.0025    # z = 399
a_end          = 0.03125   # z = 31
nsteps         = 16        # log-spaced steps
n_mesh         = 0         # PM mesh per dim (0: 2*n_per_dim)
theta          = 0.5
ncrit          = 64
eps_spacings   = 0.03      # softening in mean interparticle spacings
output_prefix  = greem
snapshots      = 2         # snapshot/image dumps, log-spaced over the run
restart        =           # snapshot file to resume from (overrides ICs)
fof            = true      # FoF catalog at the end
)";

struct KnownKeys {
  std::vector<std::string> list{"n_per_dim", "seed",       "ic",         "amplitude",
                                "index",     "kcut_modes", "cosmology",  "a_start",
                                "a_end",     "nsteps",     "n_mesh",     "theta",
                                "ncrit",     "eps_spacings", "output_prefix",
                                "snapshots", "restart",    "fof"};
};

void dump(const std::string& prefix, int index, const core::Simulation& sim) {
  char tag[64];
  std::snprintf(tag, sizeof tag, "%s_%03d", prefix.c_str(), index);
  io::SnapshotHeader h;
  h.clock = sim.clock();
  h.comoving = 1;
  h.particle_mass = sim.particles().empty() ? 0 : sim.particles()[0].mass;
  io::write_snapshot(std::string(tag) + ".bin", h, sim.particles());
  analysis::ProjectionParams pp;
  pp.pixels = 256;
  analysis::write_projection(core::positions_of(sim.particles()), pp,
                             std::string(tag) + ".pgm");
  std::printf("  dumped %s.{bin,pgm} at a = %.5f (z = %.1f)\n", tag, sim.clock(),
              cosmo::Cosmology::z_of_a(sim.clock()));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--print-defaults") == 0) {
    std::fputs(kDefaults, stdout);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <config-file> | --print-defaults\n", argv[0]);
    return 2;
  }
  std::string error;
  const auto cfg_opt = io::Config::parse_file(argv[1], &error);
  if (!cfg_opt) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  const io::Config& cfg = *cfg_opt;
  for (const auto& key : cfg.unknown_keys(KnownKeys{}.list))
    std::fprintf(stderr, "warning: unknown config key '%s'\n", key.c_str());

  const auto n_per_dim =
      fft::next_pow2(static_cast<std::size_t>(cfg.get_int("n_per_dim", 16)));
  const double a_start = cfg.get_double("a_start", 0.0025);
  const double a_end = cfg.get_double("a_end", 0.03125);
  const int nsteps = static_cast<int>(cfg.get_int("nsteps", 16));
  const std::string prefix = cfg.get_string("output_prefix", "greem");

  const auto cosmos = cfg.get_string("cosmology", "concordance") == "eds"
                          ? cosmo::Cosmology::eds_unit_mass()
                          : cosmo::Cosmology::concordance_unit_mass();

  // Initial conditions (or restart).
  std::vector<core::Particle> particles;
  double clock = a_start;
  const std::string restart = cfg.get_string("restart", "");
  if (!restart.empty()) {
    const auto snap = io::read_snapshot(restart);
    if (!snap) {
      std::fprintf(stderr, "error: cannot read restart snapshot %s\n", restart.c_str());
      return 2;
    }
    particles = snap->particles;
    clock = snap->header.clock;
    std::printf("restarting from %s at a = %.5f (%zu particles)\n", restart.c_str(), clock,
                particles.size());
  } else {
    ic::ZeldovichParams zp;
    zp.n_per_dim = n_per_dim;
    zp.a_start = a_start;
    zp.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
    const double kcut = 2.0 * std::numbers::pi * static_cast<double>(n_per_dim) /
                        std::max(cfg.get_double("kcut_modes", 4.0), 1e-9);
    const ic::CutoffPowerLaw spectrum(cfg.get_double("amplitude", 2e-5),
                                      cfg.get_double("index", 0.0), kcut);
    const auto ics = cfg.get_string("ic", "2lpt") == "zeldovich"
                         ? ic::zeldovich_ics(zp, spectrum, cosmos)
                         : ic::lpt2_ics(zp, spectrum, cosmos);
    std::printf("%s ICs: %zu particles at z = %.1f, rms displacement %.3f spacings\n",
                cfg.get_string("ic", "2lpt").c_str(), ics.pos.size(),
                cosmo::Cosmology::z_of_a(a_start), ics.rms_displacement_spacings);
    particles.resize(ics.pos.size());
    for (std::size_t i = 0; i < particles.size(); ++i)
      particles[i] = {ics.pos[i], ics.mom[i], {}, {}, ics.particle_mass, i};
  }

  core::SimulationConfig sim_cfg;
  const auto n_mesh = static_cast<std::size_t>(cfg.get_int("n_mesh", 0));
  sim_cfg.force.pm.n_mesh = n_mesh > 0 ? fft::next_pow2(n_mesh) : fft::next_pow2(2 * n_per_dim);
  sim_cfg.force.theta = cfg.get_double("theta", 0.5);
  sim_cfg.force.ncrit = static_cast<std::uint32_t>(cfg.get_int("ncrit", 64));
  sim_cfg.force.eps =
      cfg.get_double("eps_spacings", 0.03) / static_cast<double>(n_per_dim);
  sim_cfg.metric.comoving = true;
  sim_cfg.metric.cosmology = cosmos;

  core::Simulation sim(sim_cfg, std::move(particles), clock);

  const auto schedule = core::log_schedule(clock, a_end, nsteps);
  const int nsnap = std::max(1, static_cast<int>(cfg.get_int("snapshots", 2)));
  int next_dump = 1;
  dump(prefix, 0, sim);
  for (int s = 1; s <= nsteps; ++s) {
    sim.step(schedule[static_cast<std::size_t>(s)]);
    std::printf("step %3d/%d  a = %.5f  z = %6.1f  interactions = %llu\n", s, nsteps,
                sim.clock(), cosmo::Cosmology::z_of_a(sim.clock()),
                static_cast<unsigned long long>(sim.last_step().pp.interactions));
    if (s * nsnap >= next_dump * nsteps) {
      sim.synchronize();
      dump(prefix, next_dump, sim);
      ++next_dump;
    }
  }
  sim.synchronize();

  if (cfg.get_bool("fof", true)) {
    const auto pos = core::positions_of(sim.particles());
    const auto groups =
        analysis::fof_groups(pos, analysis::fof_linking_length(pos.size()), 32);
    const std::string catalog = prefix + "_halos.csv";
    io::write_halo_catalog(catalog, groups, pos, 1.0 / static_cast<double>(pos.size()));
    std::printf("FoF: %zu halos >= 32 particles -> %s\n", groups.ngroups(), catalog.c_str());
  }
  return 0;
}
