// greem_serve: the simulation-as-a-service daemon.  Starts the process
// services -- one shared parx Runtime (Runtime::shared), one TaskPool,
// the loopback live endpoint -- and a SimService multiplexing submitted
// jobs over them, then waits for a shutdown command (or SIGINT/SIGTERM).
//
// Talk to it with any line-oriented TCP client, one JSON command per
// line (docs/service.md has the grammar):
//
//   $ ./greem_serve --ranks 8 --port 4815 --root /tmp/jobs &
//   $ exec 3<>/dev/tcp/127.0.0.1/4815
//   $ echo '{"cmd":"submit","spec":{"name":"demo","steps":4}}' >&3
//   $ echo '{"cmd":"watch","id":1}' >&3 && head -8 <&3
//   $ echo '{"cmd":"shutdown"}' >&3
//
// Flags:
//   --ranks N    rank-thread count of the shared runtime (default 8)
//   --port N     live-endpoint port on 127.0.0.1 (default 0 = ephemeral,
//                printed on stdout)
//   --root DIR   per-job output root (default greem_jobs)
//   --pool N     TaskPool threads (default 0 = leave as is)
//   --max-active N  jobs resident at once (default 4)
//   --no-journal    disable the write-ahead job journal
//
// Durability (docs/service.md): every job transition is journaled under
// <root>/journal/ before it happens, so restarting against the same
// --root resumes interrupted work -- even after kill -9.  SIGTERM drains
// (checkpoint + requeue residents, then a clean-shutdown record) and the
// process exits 3 to distinguish "drained, work remains" from a plain
// shutdown's 0.  SIGINT requests an immediate shutdown (still journaled,
// still resumable -- residents just restart from their last checkpoint
// instead of a fresh one).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "svc/service.hpp"
#include "telemetry/live_endpoint.hpp"

using namespace greem;

namespace {
volatile std::sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }
}  // namespace

int main(int argc, char** argv) {
  svc::ServiceConfig cfg;
  cfg.use_shared_runtime = true;
  cfg.root = "greem_jobs";
  int port = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto need = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(a, "--ranks")) {
      cfg.nranks = std::atoi(need());
    } else if (!std::strcmp(a, "--port")) {
      port = std::atoi(need());
    } else if (!std::strcmp(a, "--root")) {
      cfg.root = need();
    } else if (!std::strcmp(a, "--pool")) {
      cfg.pool_threads = static_cast<std::size_t>(std::atoll(need()));
    } else if (!std::strcmp(a, "--max-active")) {
      cfg.max_active = static_cast<std::size_t>(std::atoll(need()));
    } else if (!std::strcmp(a, "--no-journal")) {
      cfg.journal = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return 2;
    }
  }

  auto& ep = telemetry::LiveEndpoint::global();
  if (!ep.start(port)) {
    std::fprintf(stderr, "greem_serve: cannot bind 127.0.0.1:%d\n", port);
    return 1;
  }

  svc::SimService service(cfg);
  service.attach_endpoint(ep);
  if (service.recovered_from_crash())
    std::printf("greem_serve: crash recovery: %zu job(s) requeued from the journal\n",
                service.recovered_jobs());
  service.start();
  std::printf("greem_serve: %d ranks, listening on 127.0.0.1:%d, root %s\n",
              cfg.nranks, ep.port(), cfg.root.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // The dispatcher exits when a shutdown/drain command (or a signal)
  // arrives.  SIGTERM maps to drain -- the k8s/systemd stop semantic.
  bool drain_signalled = false;
  while (service.running()) {
    if (g_signal == SIGTERM && !drain_signalled) {
      drain_signalled = true;
      service.request_drain();
    } else if (g_signal == SIGINT) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  service.stop();
  ep.stop();
  const std::string err = service.dispatcher_error();
  if (!err.empty()) {
    std::fprintf(stderr, "greem_serve: dispatcher died: %s\n", err.c_str());
    return 1;
  }
  if (service.drained()) {
    std::printf("greem_serve: drained\n");
    return 3;  // clean drain: distinct from a plain shutdown's 0
  }
  std::printf("greem_serve: bye\n");
  return 0;
}
