// Walkthrough of the paper's Figure 5: 6x6 = 36 processes, an 8^3 PM mesh
// (8 FFT processes), and the relay mesh method with 4 groups of 9.  Runs
// one PM cycle with the straightforward global alltoallv and one with the
// relay method, and prints the communication structure each produces:
// message counts at the busiest endpoint, total traffic, and the modeled
// congestion time -- the quantity the relay method improves by >4x on the
// full K computer.

#include <cstdio>
#include <iostream>

#include "core/particle.hpp"
#include "domain/multisection.hpp"
#include "parx/runtime.hpp"
#include "pm/parallel_pm.hpp"
#include "util/table.hpp"

using namespace greem;

namespace {

struct Result {
  parx::TrafficTotals totals;
  double model_s = 0;
  double wall_s = 0;
};

Result run_conversion(pm::MeshConversion method, int n_groups) {
  const std::array<int, 3> dims{6, 6, 1};
  const auto decomp = domain::Decomposition::uniform(dims);
  const auto particles = core::clustered_particles(7200, 1.0, 4, 0.6, 0.04, 11);

  parx::Runtime rt(36);
  Result out;
  rt.run([&](parx::Comm& world) {
    pm::ParallelPmParams params;
    params.n_mesh = 8;  // N_PM = 8^3, so 8 FFT processes (fig. 5)
    params.conversion.method = method;
    params.conversion.n_groups = n_groups;
    pm::ParallelPm solver(world, params);
    solver.update_domain(decomp.box_of(world.rank()));

    std::vector<Vec3> pos;
    std::vector<double> mass;
    for (const auto& p : particles) {
      if (decomp.find_domain(p.pos) == world.rank()) {
        pos.push_back(p.pos);
        mass.push_back(p.mass);
      }
    }

    world.barrier();
    if (world.rank() == 0) world.ledger().reset();
    world.barrier();

    TimingBreakdown t;
    std::vector<Vec3> acc(pos.size());
    solver.accelerations(pos, mass, acc, &t);

    world.barrier();
    if (world.rank() == 0) {
      out.totals = world.ledger().totals();
      out.model_s = world.ledger().model_time();
    }
    const double comm = t.get("communication");
    const double worst = world.allreduce_max(comm);
    if (world.rank() == 0) out.wall_s = worst;
  });
  return out;
}

}  // namespace

int main() {
  std::printf("Figure 5 configuration: 36 processes (6x6), N_PM = 8^3,\n");
  std::printf("8 FFT processes, relay mesh with 4 groups of 9.\n\n");

  const Result direct = run_conversion(pm::MeshConversion::kDirect, 1);
  const Result relay = run_conversion(pm::MeshConversion::kRelay, 4);

  TextTable table;
  table.header({"method", "messages", "bytes", "max in-msgs/rank", "modeled comm (us)",
                "measured comm (ms)"});
  auto row = [&](const char* name, const Result& r) {
    table.row({name, TextTable::num(static_cast<long long>(r.totals.messages)),
               TextTable::num(static_cast<long long>(r.totals.bytes)),
               TextTable::num(static_cast<long long>(r.totals.max_in_messages)),
               TextTable::num(r.model_s * 1e6, 4), TextTable::num(r.wall_s * 1e3, 4)});
  };
  row("direct alltoallv", direct);
  row("relay mesh (4 groups)", relay);
  table.print(std::cout);
  return 0;
}
