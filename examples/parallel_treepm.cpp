// Full distributed TreePM run: the complete per-step pipeline of the paper
// (sampling-method domain decomposition -> particle exchange -> PM cycle
// with the relay mesh -> two PP cycles with ghost exchange and the phantom
// kernel), printing a per-step cost breakdown in the style of Table I.
//
// Usage: parallel_treepm [ranks_per_dim=2] [n_particles=4096] [nsteps=4]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/parallel_sim.hpp"
#include "parx/runtime.hpp"
#include "util/table.hpp"

using namespace greem;

int main(int argc, char** argv) {
  const int d = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4096;
  const int nsteps = argc > 3 ? std::atoi(argv[3]) : 4;
  const int nranks = d * d * d;

  // Clustered workload standing in for an evolved cosmological snapshot.
  auto particles = core::clustered_particles(n, 1.0, 4, 0.6, 0.03, 99);

  core::ParallelSimConfig cfg;
  cfg.dims = {d, d, d};
  cfg.pm.n_mesh = 32;
  cfg.pm.conversion.method = pm::MeshConversion::kRelay;
  cfg.pm.conversion.n_groups = 2;
  cfg.theta = 0.5;
  cfg.ncrit = 64;
  cfg.eps = 1e-3;
  cfg.sampling.target_samples = 20000;

  std::printf("distributed TreePM: %d ranks (%dx%dx%d), %zu particles, relay mesh\n\n",
              nranks, d, d, d, n);

  parx::run_ranks(nranks, [&](parx::Comm& world) {
    std::vector<core::Particle> local =
        world.rank() == 0 ? particles : std::vector<core::Particle>{};
    core::ParallelSimulation sim(world, cfg, std::move(local), 0.0);

    for (int s = 1; s <= nsteps; ++s) {
      sim.step(s * 0.002);
      const auto& rep = sim.last_step();
      const auto pm_t = core::allreduce_max(world, rep.pm);
      const auto pp_t = core::allreduce_max(world, rep.pp);
      const auto dd_t = core::allreduce_max(world, rep.dd);
      const auto stats = core::allreduce_sum(world, rep.pp_stats);
      if (world.rank() == 0) {
        std::printf("step %d (seconds, max over ranks):\n", s);
        TextTable t;
        t.header({"phase", "sec/step"});
        t.row({"PM", TextTable::num(pm_t.total(), 3)});
        for (const auto& [k, v] : pm_t.entries()) t.row({"  " + k, TextTable::num(v, 3)});
        t.row({"PP", TextTable::num(pp_t.total(), 3)});
        for (const auto& [k, v] : pp_t.entries()) t.row({"  " + k, TextTable::num(v, 3)});
        t.row({"Domain Decomposition", TextTable::num(dd_t.total(), 3)});
        for (const auto& [k, v] : dd_t.entries()) t.row({"  " + k, TextTable::num(v, 3)});
        t.print(std::cout);
        std::printf("<Ni>=%.0f <Nj>=%.0f interactions=%llu\n\n", stats.mean_ni(),
                    stats.mean_nj(), static_cast<unsigned long long>(stats.interactions));
      }
    }
    sim.synchronize();
  });
  return 0;
}
