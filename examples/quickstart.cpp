// Quickstart: a small cosmological TreePM run through the serial public
// API -- generate Zel'dovich initial conditions, integrate with the
// multiple-stepsize scheme (one PM + two PP cycles per step, as in the
// paper), and report basic diagnostics per step.
//
// Usage: quickstart [n_per_dim=16] [nsteps=8]

#include <cstdio>
#include <cstdlib>

#include "analysis/power_measure.hpp"
#include "fft/fft1d.hpp"
#include "core/simulation.hpp"
#include "ic/zeldovich.hpp"

using namespace greem;

int main(int argc, char** argv) {
  // The IC generator runs an FFT on the particle grid, so the per-dimension
  // count is rounded up to a power of two.
  const std::size_t n_per_dim =
      fft::next_pow2(argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16);
  const int nsteps = argc > 2 ? std::atoi(argv[2]) : 8;

  // Einstein-de Sitter background, unit box mass (G = 1).
  const auto cosmos = cosmo::Cosmology::eds_unit_mass();

  // Initial conditions: damped power-law spectrum at a = 0.02 (z = 49).
  ic::ZeldovichParams zp;
  zp.n_per_dim = n_per_dim;
  zp.a_start = 0.02;
  zp.seed = 42;
  const ic::CutoffPowerLaw spectrum(/*amplitude=*/2e-7, /*index=*/0.0,
                                    /*k_cut=*/6.0 * 2.0 * 3.14159265358979);
  const auto ics = ic::zeldovich_ics(zp, spectrum, cosmos);
  std::printf("ICs: %zu particles, rms displacement %.3f spacings\n", ics.pos.size(),
              ics.rms_displacement_spacings);

  std::vector<core::Particle> particles(ics.pos.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    particles[i] = {ics.pos[i], ics.mom[i], {}, {}, ics.particle_mass, i};
  }

  // TreePM force: mesh, cutoff rcut = 3/n_mesh (the paper's choice),
  // Barnes-modified groups of <Ni> <= 64, phantom kernel.
  core::SimulationConfig cfg;
  cfg.force.pm.n_mesh = fft::next_pow2(2 * n_per_dim);
  cfg.force.theta = 0.5;
  cfg.force.ncrit = 64;
  cfg.force.eps = 0.05 / static_cast<double>(n_per_dim);
  cfg.metric.comoving = true;
  cfg.metric.cosmology = cosmos;
  cfg.nsub = 2;

  core::Simulation sim(cfg, std::move(particles), zp.a_start);

  const auto schedule = core::log_schedule(zp.a_start, 4.0 * zp.a_start, nsteps);
  for (int s = 1; s <= nsteps; ++s) {
    sim.step(schedule[static_cast<std::size_t>(s)]);
    const auto& d = sim.last_step();
    std::printf("step %2d  a=%.4f  z=%6.2f  <Ni>=%5.1f  <Nj>=%7.1f  interactions=%llu\n", s,
                sim.clock(), cosmo::Cosmology::z_of_a(sim.clock()), d.pp.mean_ni(),
                d.pp.mean_nj(), static_cast<unsigned long long>(d.pp.interactions));
  }
  sim.synchronize();

  // Measure the final power spectrum.
  analysis::PowerMeasureParams mp;
  mp.n_mesh = fft::next_pow2(2 * n_per_dim);
  mp.subtract_shot_noise = false;
  const auto bins = analysis::measure_power(core::positions_of(sim.particles()), mp);
  std::printf("\nfinal power spectrum (a=%.4f):\n  k/2pi        P(k)\n", sim.clock());
  for (std::size_t b = 0; b < bins.size(); b += 3)
    std::printf("  %6.1f  %10.3e\n", bins[b].k / 6.28318530718, bins[b].power);
  return 0;
}
