// The paper's science scenario at laptop scale (paper Fig. 6): evolve a
// box whose initial spectrum has a sharp free-streaming cutoff (the
// neutralino case of Green et al. 2004), so the *first* dark-matter
// structures -- microhalos at the cutoff scale -- form and can be imaged,
// counted with friends-of-friends, and profiled.
//
// Writes Fig. 6-style projected density images (full box plus a zoom on
// the largest halo) at several redshifts into the working directory.
//
// Usage: cosmo_microhalo [n_per_dim=24] [nsteps=16]

#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <string>

#include "analysis/correlation.hpp"
#include "analysis/fof.hpp"
#include "fft/fft1d.hpp"
#include "analysis/profile.hpp"
#include "analysis/projection.hpp"
#include "core/simulation.hpp"
#include "ic/zeldovich.hpp"
#include "io/snapshot.hpp"

using namespace greem;

namespace {

void write_images(std::span<const core::Particle> ps, double a, const std::string& tag) {
  const auto pos = core::positions_of(ps);
  analysis::ProjectionParams full;
  full.pixels = 256;
  analysis::write_projection(pos, full, "microhalo_" + tag + "_full.pgm");
  // Zoom: the paper's bottom-left panel is a 1/16-width enlargement.
  analysis::ProjectionParams zoom;
  zoom.pixels = 256;
  zoom.region = Box{{0.375, 0.375, 0.0}, {0.625, 0.625, 1.0}};
  analysis::write_projection(pos, zoom, "microhalo_" + tag + "_zoom.pgm");
  std::printf("  wrote microhalo_%s_{full,zoom}.pgm (a=%.4f, z=%.1f)\n", tag.c_str(), a,
              cosmo::Cosmology::z_of_a(a));
}

}  // namespace

int main(int argc, char** argv) {
  // Rounded to a power of two: the IC generator FFTs the particle grid.
  const std::size_t n_per_dim =
      fft::next_pow2(argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24);
  const int nsteps = argc > 2 ? std::atoi(argv[2]) : 16;

  const auto cosmos = cosmo::Cosmology::concordance_unit_mass();

  // Sharp small-scale cutoff: k_cut at ~1/4 of the particle Nyquist, so the
  // first objects are resolved by many particles (paper: the smallest
  // structures carry >~ 1e5 particles at full scale).
  // Amplitude chosen so the cutoff-scale fluctuations (sigma ~ 0.2 at
  // z = 400) collapse around z ~ 60-30, as in the paper's run.
  const double kcut = 2.0 * std::numbers::pi * static_cast<double>(n_per_dim) / 4.0;
  const ic::CutoffPowerLaw spectrum(/*amplitude=*/2e-5, /*index=*/0.0, kcut);

  ic::ZeldovichParams zp;
  zp.n_per_dim = n_per_dim;
  zp.a_start = 1.0 / 401.0;  // z = 400, the paper's starting redshift
  zp.seed = 2012;
  // 2LPT: second-order displacements remove the Zel'dovich transients that
  // would otherwise delay the first collapses.
  const auto ics = ic::lpt2_ics(zp, spectrum, cosmos);
  std::printf("2LPT ICs at z=400: %zu particles, rms displacement %.3f spacings\n",
              ics.pos.size(), ics.rms_displacement_spacings);

  std::vector<core::Particle> particles(ics.pos.size());
  for (std::size_t i = 0; i < particles.size(); ++i)
    particles[i] = {ics.pos[i], ics.mom[i], {}, {}, ics.particle_mass, i};

  core::SimulationConfig cfg;
  cfg.force.pm.n_mesh = fft::next_pow2(2 * n_per_dim);
  cfg.force.theta = 0.5;
  cfg.force.ncrit = 64;
  cfg.force.eps = 0.03 / static_cast<double>(n_per_dim);
  cfg.metric.comoving = true;
  cfg.metric.cosmology = cosmos;
  core::Simulation sim(cfg, std::move(particles), zp.a_start);

  write_images(sim.particles(), sim.clock(), "z400");

  // Integrate z = 400 -> 31 in log(a), imaging at the paper's snapshots.
  const double a_end = 1.0 / 32.0;
  const auto schedule = core::log_schedule(zp.a_start, a_end, nsteps);
  int imaged70 = 0, imaged40 = 0;
  for (int s = 1; s <= nsteps; ++s) {
    sim.step(schedule[static_cast<std::size_t>(s)]);
    const double z = cosmo::Cosmology::z_of_a(sim.clock());
    std::printf("step %2d  z=%6.1f  interactions=%llu\n", s, z,
                static_cast<unsigned long long>(sim.last_step().pp.interactions));
    if (z <= 70 && !imaged70++) write_images(sim.particles(), sim.clock(), "z70");
    if (z <= 40 && !imaged40++) write_images(sim.particles(), sim.clock(), "z40");
  }
  sim.synchronize();
  write_images(sim.particles(), sim.clock(), "z31");

  // Friends-of-friends census of the microhalos.
  const auto pos = core::positions_of(sim.particles());
  const double ll = analysis::fof_linking_length(pos.size());
  const auto groups = analysis::fof_groups(pos, ll, 32);
  std::printf("\nFoF (b=0.2): %zu microhalos with >= 32 particles\n", groups.ngroups());
  for (std::size_t g = 0; g < std::min<std::size_t>(groups.ngroups(), 5); ++g)
    std::printf("  halo %zu: %u particles (mass %.3e)\n", g, groups.group_size[g],
                groups.group_size[g] * 1.0 / static_cast<double>(pos.size()));

  if (groups.ngroups() > 0) {
    // Density profile of the largest microhalo.
    std::vector<Vec3> members;
    for (std::size_t i = 0; i < pos.size(); ++i)
      if (groups.group_of[i] == 0) members.push_back(pos[i]);
    const Vec3 center = analysis::periodic_center_of_mass(members);
    const double r_half = 2.0 / static_cast<double>(n_per_dim);
    const auto prof = analysis::radial_profile(pos, 1.0 / static_cast<double>(pos.size()),
                                               center, r_half / 32, r_half, 8);
    std::printf("\nlargest halo profile (center %.3f %.3f %.3f):\n  r          rho/rho_mean\n",
                center.x, center.y, center.z);
    for (const auto& b : prof)
      if (b.count > 0) std::printf("  %8.5f  %10.2f\n", b.r, b.density);
  }

  // Mass function: the first objects pile up at the free-streaming scale.
  if (groups.ngroups() > 1) {
    const auto mf = analysis::halo_mass_function(
        groups, 1.0 / static_cast<double>(pos.size()), 5);
    std::printf("\nmicrohalo mass function:\n  mass        count  dn/dlog10(M)\n");
    for (const auto& b : mf)
      std::printf("  %9.3e  %5zu  %10.1f\n", b.mass, b.count, b.dn_dlog10m);
  }

  // Two-point correlation: the clustering Fig. 6 shows visually.
  analysis::CorrelationParams cp;
  cp.r_min = 0.5 / static_cast<double>(n_per_dim);
  cp.r_max = 0.25;
  cp.nbins = 8;
  const auto xi = analysis::correlation_function(pos, cp);
  std::printf("\ntwo-point correlation xi(r):\n  r          xi\n");
  for (const auto& b : xi) std::printf("  %8.5f  %9.3f\n", b.r, b.xi);

  io::SnapshotHeader h;
  h.clock = sim.clock();
  h.comoving = 1;
  io::write_snapshot("microhalo_final.bin", h, sim.particles());
  std::printf("\nwrote microhalo_final.bin\n");
  return 0;
}
