#!/usr/bin/env python3
"""Crash/drain CI driver for greem_serve.

Exercises the durability contract end-to-end, the same way an operator
would (docs/service.md, "Durability and restart semantics"):

  1. Run an uninterrupted reference daemon: submit a mixed-priority
     batch, wait for completion, shut down cleanly, keep the final.bin
     of every job.
  2. Run a second daemon on a fresh root, submit the same batch, and
     kill -9 the process mid-batch.  Restart against the same --root:
     the journal must requeue the interrupted jobs, every job must
     finish, and each final.bin must byte-match the reference.
  3. Submit one more job, SIGTERM the daemon mid-job: it must drain
     (checkpoint + requeue) and exit with code 3.  A third start must
     resume that job from the drain checkpoint and still byte-match.

Usage: ci_service_restart.py <path-to-greem_serve> <scratch-dir>
Exits non-zero (with a message) on the first violated invariant.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time

RANKS = 8
BATCH = 10  # mixed-priority batch killed mid-flight
STEPS = 20


def spec(i):
    return {
        "name": f"ci-{i}",
        "steps": STEPS,
        "n_particles": 2048,
        "n_mesh": 16,
        "nclusters": 2,
        "seed": i + 1,
        "checkpoint_every": 2,
        "priority": [1, 2, 4][i % 3],
    }


DRAIN_SPEC = dict(spec(98), name="ci-drain", seed=99)


class Daemon:
    def __init__(self, binary, root):
        self.proc = subprocess.Popen(
            [binary, "--ranks", str(RANKS), "--port", "0", "--root", root],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        self.banner = []
        self.port = None
        for line in self.proc.stdout:
            self.banner.append(line.rstrip("\n"))
            m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
            if m:
                self.port = int(m.group(1))
                break
        if self.port is None:
            raise SystemExit(f"daemon never came up: {self.banner}")

    def recovered(self):
        for line in self.banner:
            m = re.search(r"crash recovery: (\d+) job\(s\) requeued", line)
            if m:
                return int(m.group(1))
        return 0

    def rpc(self, cmd, reply_type):
        s = socket.create_connection(("127.0.0.1", self.port), timeout=10)
        with s, s.makefile("rw") as f:
            f.write(json.dumps(cmd) + "\n")
            f.flush()
            deadline = time.time() + 30
            while time.time() < deadline:
                doc = json.loads(f.readline())
                if doc.get("type") == "error":
                    raise SystemExit(f"rpc {cmd} -> {doc}")
                # Skip the hello/metrics/record chatter the endpoint
                # volunteers; command replies are typed.
                if doc.get("type") == reply_type:
                    return doc
        raise SystemExit(f"rpc {cmd}: no {reply_type} reply")

    def jobs(self):
        return self.rpc({"cmd": "list"}, "jobs")["jobs"]

    def wait_done(self, timeout=600):
        deadline = time.time() + timeout
        while time.time() < deadline:
            jobs = self.jobs()
            if jobs and all(j["state"] in ("done", "failed", "cancelled")
                            for j in jobs):
                bad = [j for j in jobs if j["state"] != "done"]
                if bad:
                    raise SystemExit(f"jobs did not complete: {bad}")
                return jobs
            time.sleep(0.2)
        raise SystemExit("timeout waiting for batch completion")

    def wait_mid_batch(self, min_steps, timeout=300):
        """Block until real work is in flight but the batch is not done."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            jobs = self.jobs()
            total = sum(j["steps_done"] for j in jobs)
            live = [j for j in jobs
                    if j["state"] not in ("done", "failed", "cancelled")]
            if total >= min_steps and live:
                return jobs
            if jobs and not live:
                raise SystemExit("batch finished before the kill landed; "
                                 "raise STEPS")
            time.sleep(0.05)
        raise SystemExit("timeout waiting for mid-batch state")


def finals(root, ids):
    out = {}
    for i in ids:
        path = os.path.join(root, f"job-{i}", "final.bin")
        with open(path, "rb") as f:
            out[i] = f.read()
    return out


def main():
    binary, scratch = sys.argv[1], sys.argv[2]
    ref_root = os.path.join(scratch, "ref")
    crash_root = os.path.join(scratch, "crash")

    # --- 1. uninterrupted reference ------------------------------------
    ref = Daemon(binary, ref_root)
    for i in range(BATCH):
        ref.rpc({"cmd": "submit", "spec": spec(i)}, "submitted")
    ref.rpc({"cmd": "submit", "spec": DRAIN_SPEC}, "submitted")
    ref.wait_done()
    ref.rpc({"cmd": "shutdown"}, "shutdown")
    if ref.proc.wait(timeout=60) != 0:
        raise SystemExit(f"reference daemon exit {ref.proc.returncode}")
    reference = finals(ref_root, range(1, BATCH + 2))
    print(f"reference: {BATCH + 1} jobs done")

    # --- 2. kill -9 mid-batch, restart, bitwise gate --------------------
    d = Daemon(binary, crash_root)
    for i in range(BATCH):
        d.rpc({"cmd": "submit", "spec": spec(i)}, "submitted")
    d.wait_mid_batch(min_steps=2 * BATCH)
    d.proc.send_signal(signal.SIGKILL)
    if d.proc.wait(timeout=60) != -signal.SIGKILL:
        raise SystemExit(f"expected SIGKILL death, got {d.proc.returncode}")

    d = Daemon(binary, crash_root)
    if d.recovered() == 0:
        raise SystemExit(f"restart did not report crash recovery: {d.banner}")
    jobs = d.wait_done()
    if not any(j.get("recovered") for j in jobs):
        raise SystemExit(f"no job carries the recovered flag: {jobs}")
    mismatches = [i for i, b in finals(crash_root, range(1, BATCH + 1)).items()
                  if b != reference[i]]
    if mismatches:
        raise SystemExit(f"final.bin mismatch vs reference: jobs {mismatches}")
    print(f"crash restart: {d.recovered()} requeued, "
          f"{len(jobs)} done, 0 mismatches")

    # --- 3. SIGTERM drain -> exit 3 -> resume from drain checkpoint -----
    drain_id = d.rpc({"cmd": "submit", "spec": DRAIN_SPEC}, "submitted")["id"]
    while d.rpc({"cmd": "status", "id": drain_id}, "status")["steps_done"] < 2:
        time.sleep(0.05)
    d.proc.send_signal(signal.SIGTERM)
    if d.proc.wait(timeout=300) != 3:
        raise SystemExit(f"drain exit code {d.proc.returncode}, want 3")
    if not any("drained" in line for line in
               d.proc.stdout.read().splitlines() + d.banner):
        raise SystemExit("daemon never printed 'drained'")

    d = Daemon(binary, crash_root)
    d.wait_done()
    d.rpc({"cmd": "shutdown"}, "shutdown")
    if d.proc.wait(timeout=60) != 0:
        raise SystemExit(f"final daemon exit {d.proc.returncode}")
    if finals(crash_root, [drain_id])[drain_id] != reference[BATCH + 1]:
        raise SystemExit("drained job's final.bin mismatches reference")
    print(f"drain: job {drain_id} resumed from drain checkpoint, bitwise OK")
    print("service-restart OK")


if __name__ == "__main__":
    main()
