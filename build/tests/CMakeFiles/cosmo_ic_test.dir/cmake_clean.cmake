file(REMOVE_RECURSE
  "CMakeFiles/cosmo_ic_test.dir/cosmo_ic_test.cpp.o"
  "CMakeFiles/cosmo_ic_test.dir/cosmo_ic_test.cpp.o.d"
  "cosmo_ic_test"
  "cosmo_ic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_ic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
