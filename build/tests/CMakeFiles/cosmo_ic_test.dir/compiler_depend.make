# Empty compiler generated dependencies file for cosmo_ic_test.
# This may be replaced when dependencies are built.
