file(REMOVE_RECURSE
  "CMakeFiles/parx_test.dir/parx_test.cpp.o"
  "CMakeFiles/parx_test.dir/parx_test.cpp.o.d"
  "parx_test"
  "parx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
