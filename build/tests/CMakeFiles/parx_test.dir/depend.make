# Empty dependencies file for parx_test.
# This may be replaced when dependencies are built.
