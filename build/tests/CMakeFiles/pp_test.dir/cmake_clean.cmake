file(REMOVE_RECURSE
  "CMakeFiles/pp_test.dir/pp_test.cpp.o"
  "CMakeFiles/pp_test.dir/pp_test.cpp.o.d"
  "pp_test"
  "pp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
