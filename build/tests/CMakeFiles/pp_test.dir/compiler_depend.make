# Empty compiler generated dependencies file for pp_test.
# This may be replaced when dependencies are built.
