# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parx_test "/root/repo/build/tests/parx_test")
set_tests_properties(parx_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fft_test "/root/repo/build/tests/fft_test")
set_tests_properties(fft_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pp_test "/root/repo/build/tests/pp_test")
set_tests_properties(pp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tree_test "/root/repo/build/tests/tree_test")
set_tests_properties(tree_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pm_test "/root/repo/build/tests/pm_test")
set_tests_properties(pm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(relay_test "/root/repo/build/tests/relay_test")
set_tests_properties(relay_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(domain_test "/root/repo/build/tests/domain_test")
set_tests_properties(domain_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ewald_test "/root/repo/build/tests/ewald_test")
set_tests_properties(ewald_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cosmo_ic_test "/root/repo/build/tests/cosmo_ic_test")
set_tests_properties(cosmo_ic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(parallel_sim_test "/root/repo/build/tests/parallel_sim_test")
set_tests_properties(parallel_sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;19;greem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(io_test "/root/repo/build/tests/io_test")
set_tests_properties(io_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;20;greem_test;/root/repo/tests/CMakeLists.txt;0;")
