# Empty dependencies file for parallel_treepm.
# This may be replaced when dependencies are built.
