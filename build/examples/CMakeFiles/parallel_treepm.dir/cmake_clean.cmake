file(REMOVE_RECURSE
  "CMakeFiles/parallel_treepm.dir/parallel_treepm.cpp.o"
  "CMakeFiles/parallel_treepm.dir/parallel_treepm.cpp.o.d"
  "parallel_treepm"
  "parallel_treepm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_treepm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
