file(REMOVE_RECURSE
  "CMakeFiles/relay_mesh_demo.dir/relay_mesh_demo.cpp.o"
  "CMakeFiles/relay_mesh_demo.dir/relay_mesh_demo.cpp.o.d"
  "relay_mesh_demo"
  "relay_mesh_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relay_mesh_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
