# Empty dependencies file for relay_mesh_demo.
# This may be replaced when dependencies are built.
