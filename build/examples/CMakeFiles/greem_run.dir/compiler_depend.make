# Empty compiler generated dependencies file for greem_run.
# This may be replaced when dependencies are built.
