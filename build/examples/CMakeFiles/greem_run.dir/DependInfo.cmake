
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/greem_run.cpp" "examples/CMakeFiles/greem_run.dir/greem_run.cpp.o" "gcc" "examples/CMakeFiles/greem_run.dir/greem_run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/greem_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_ewald.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_ic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_parx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
