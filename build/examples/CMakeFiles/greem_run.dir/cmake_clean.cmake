file(REMOVE_RECURSE
  "CMakeFiles/greem_run.dir/greem_run.cpp.o"
  "CMakeFiles/greem_run.dir/greem_run.cpp.o.d"
  "greem_run"
  "greem_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
