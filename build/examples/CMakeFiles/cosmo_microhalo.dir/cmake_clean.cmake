file(REMOVE_RECURSE
  "CMakeFiles/cosmo_microhalo.dir/cosmo_microhalo.cpp.o"
  "CMakeFiles/cosmo_microhalo.dir/cosmo_microhalo.cpp.o.d"
  "cosmo_microhalo"
  "cosmo_microhalo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmo_microhalo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
