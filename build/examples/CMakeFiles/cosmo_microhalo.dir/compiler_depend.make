# Empty compiler generated dependencies file for cosmo_microhalo.
# This may be replaced when dependencies are built.
