# Empty dependencies file for greem_domain.
# This may be replaced when dependencies are built.
