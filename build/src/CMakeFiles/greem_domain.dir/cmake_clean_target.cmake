file(REMOVE_RECURSE
  "libgreem_domain.a"
)
