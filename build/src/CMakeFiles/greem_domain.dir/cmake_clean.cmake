file(REMOVE_RECURSE
  "CMakeFiles/greem_domain.dir/domain/exchange.cpp.o"
  "CMakeFiles/greem_domain.dir/domain/exchange.cpp.o.d"
  "CMakeFiles/greem_domain.dir/domain/multisection.cpp.o"
  "CMakeFiles/greem_domain.dir/domain/multisection.cpp.o.d"
  "CMakeFiles/greem_domain.dir/domain/sampling.cpp.o"
  "CMakeFiles/greem_domain.dir/domain/sampling.cpp.o.d"
  "libgreem_domain.a"
  "libgreem_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
