
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/domain/exchange.cpp" "src/CMakeFiles/greem_domain.dir/domain/exchange.cpp.o" "gcc" "src/CMakeFiles/greem_domain.dir/domain/exchange.cpp.o.d"
  "/root/repo/src/domain/multisection.cpp" "src/CMakeFiles/greem_domain.dir/domain/multisection.cpp.o" "gcc" "src/CMakeFiles/greem_domain.dir/domain/multisection.cpp.o.d"
  "/root/repo/src/domain/sampling.cpp" "src/CMakeFiles/greem_domain.dir/domain/sampling.cpp.o" "gcc" "src/CMakeFiles/greem_domain.dir/domain/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/greem_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_parx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
