file(REMOVE_RECURSE
  "libgreem_fft.a"
)
