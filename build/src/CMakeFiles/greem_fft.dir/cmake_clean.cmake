file(REMOVE_RECURSE
  "CMakeFiles/greem_fft.dir/fft/fft1d.cpp.o"
  "CMakeFiles/greem_fft.dir/fft/fft1d.cpp.o.d"
  "CMakeFiles/greem_fft.dir/fft/fft3d.cpp.o"
  "CMakeFiles/greem_fft.dir/fft/fft3d.cpp.o.d"
  "CMakeFiles/greem_fft.dir/fft/pencil_fft.cpp.o"
  "CMakeFiles/greem_fft.dir/fft/pencil_fft.cpp.o.d"
  "CMakeFiles/greem_fft.dir/fft/slab_fft.cpp.o"
  "CMakeFiles/greem_fft.dir/fft/slab_fft.cpp.o.d"
  "libgreem_fft.a"
  "libgreem_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
