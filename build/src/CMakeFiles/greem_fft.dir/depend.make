# Empty dependencies file for greem_fft.
# This may be replaced when dependencies are built.
