# Empty compiler generated dependencies file for greem_analysis.
# This may be replaced when dependencies are built.
