file(REMOVE_RECURSE
  "libgreem_analysis.a"
)
