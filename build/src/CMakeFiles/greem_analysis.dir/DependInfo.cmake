
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/correlation.cpp" "src/CMakeFiles/greem_analysis.dir/analysis/correlation.cpp.o" "gcc" "src/CMakeFiles/greem_analysis.dir/analysis/correlation.cpp.o.d"
  "/root/repo/src/analysis/fof.cpp" "src/CMakeFiles/greem_analysis.dir/analysis/fof.cpp.o" "gcc" "src/CMakeFiles/greem_analysis.dir/analysis/fof.cpp.o.d"
  "/root/repo/src/analysis/power_measure.cpp" "src/CMakeFiles/greem_analysis.dir/analysis/power_measure.cpp.o" "gcc" "src/CMakeFiles/greem_analysis.dir/analysis/power_measure.cpp.o.d"
  "/root/repo/src/analysis/profile.cpp" "src/CMakeFiles/greem_analysis.dir/analysis/profile.cpp.o" "gcc" "src/CMakeFiles/greem_analysis.dir/analysis/profile.cpp.o.d"
  "/root/repo/src/analysis/projection.cpp" "src/CMakeFiles/greem_analysis.dir/analysis/projection.cpp.o" "gcc" "src/CMakeFiles/greem_analysis.dir/analysis/projection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/greem_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_ewald.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_ic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_parx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_cosmo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
