file(REMOVE_RECURSE
  "CMakeFiles/greem_analysis.dir/analysis/correlation.cpp.o"
  "CMakeFiles/greem_analysis.dir/analysis/correlation.cpp.o.d"
  "CMakeFiles/greem_analysis.dir/analysis/fof.cpp.o"
  "CMakeFiles/greem_analysis.dir/analysis/fof.cpp.o.d"
  "CMakeFiles/greem_analysis.dir/analysis/power_measure.cpp.o"
  "CMakeFiles/greem_analysis.dir/analysis/power_measure.cpp.o.d"
  "CMakeFiles/greem_analysis.dir/analysis/profile.cpp.o"
  "CMakeFiles/greem_analysis.dir/analysis/profile.cpp.o.d"
  "CMakeFiles/greem_analysis.dir/analysis/projection.cpp.o"
  "CMakeFiles/greem_analysis.dir/analysis/projection.cpp.o.d"
  "libgreem_analysis.a"
  "libgreem_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
