file(REMOVE_RECURSE
  "CMakeFiles/greem_parx.dir/parx/comm.cpp.o"
  "CMakeFiles/greem_parx.dir/parx/comm.cpp.o.d"
  "CMakeFiles/greem_parx.dir/parx/runtime.cpp.o"
  "CMakeFiles/greem_parx.dir/parx/runtime.cpp.o.d"
  "CMakeFiles/greem_parx.dir/parx/traffic.cpp.o"
  "CMakeFiles/greem_parx.dir/parx/traffic.cpp.o.d"
  "libgreem_parx.a"
  "libgreem_parx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_parx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
