file(REMOVE_RECURSE
  "libgreem_parx.a"
)
