# Empty compiler generated dependencies file for greem_parx.
# This may be replaced when dependencies are built.
