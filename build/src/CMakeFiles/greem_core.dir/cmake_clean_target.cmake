file(REMOVE_RECURSE
  "libgreem_core.a"
)
