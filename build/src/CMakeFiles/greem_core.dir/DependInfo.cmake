
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/direct_force.cpp" "src/CMakeFiles/greem_core.dir/core/direct_force.cpp.o" "gcc" "src/CMakeFiles/greem_core.dir/core/direct_force.cpp.o.d"
  "/root/repo/src/core/energy.cpp" "src/CMakeFiles/greem_core.dir/core/energy.cpp.o" "gcc" "src/CMakeFiles/greem_core.dir/core/energy.cpp.o.d"
  "/root/repo/src/core/integrator.cpp" "src/CMakeFiles/greem_core.dir/core/integrator.cpp.o" "gcc" "src/CMakeFiles/greem_core.dir/core/integrator.cpp.o.d"
  "/root/repo/src/core/parallel_sim.cpp" "src/CMakeFiles/greem_core.dir/core/parallel_sim.cpp.o" "gcc" "src/CMakeFiles/greem_core.dir/core/parallel_sim.cpp.o.d"
  "/root/repo/src/core/particle.cpp" "src/CMakeFiles/greem_core.dir/core/particle.cpp.o" "gcc" "src/CMakeFiles/greem_core.dir/core/particle.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/CMakeFiles/greem_core.dir/core/simulation.cpp.o" "gcc" "src/CMakeFiles/greem_core.dir/core/simulation.cpp.o.d"
  "/root/repo/src/core/tree_force.cpp" "src/CMakeFiles/greem_core.dir/core/tree_force.cpp.o" "gcc" "src/CMakeFiles/greem_core.dir/core/tree_force.cpp.o.d"
  "/root/repo/src/core/treepm_force.cpp" "src/CMakeFiles/greem_core.dir/core/treepm_force.cpp.o" "gcc" "src/CMakeFiles/greem_core.dir/core/treepm_force.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/greem_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_parx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_ewald.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_ic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
