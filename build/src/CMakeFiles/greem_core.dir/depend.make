# Empty dependencies file for greem_core.
# This may be replaced when dependencies are built.
