file(REMOVE_RECURSE
  "CMakeFiles/greem_core.dir/core/direct_force.cpp.o"
  "CMakeFiles/greem_core.dir/core/direct_force.cpp.o.d"
  "CMakeFiles/greem_core.dir/core/energy.cpp.o"
  "CMakeFiles/greem_core.dir/core/energy.cpp.o.d"
  "CMakeFiles/greem_core.dir/core/integrator.cpp.o"
  "CMakeFiles/greem_core.dir/core/integrator.cpp.o.d"
  "CMakeFiles/greem_core.dir/core/parallel_sim.cpp.o"
  "CMakeFiles/greem_core.dir/core/parallel_sim.cpp.o.d"
  "CMakeFiles/greem_core.dir/core/particle.cpp.o"
  "CMakeFiles/greem_core.dir/core/particle.cpp.o.d"
  "CMakeFiles/greem_core.dir/core/simulation.cpp.o"
  "CMakeFiles/greem_core.dir/core/simulation.cpp.o.d"
  "CMakeFiles/greem_core.dir/core/tree_force.cpp.o"
  "CMakeFiles/greem_core.dir/core/tree_force.cpp.o.d"
  "CMakeFiles/greem_core.dir/core/treepm_force.cpp.o"
  "CMakeFiles/greem_core.dir/core/treepm_force.cpp.o.d"
  "libgreem_core.a"
  "libgreem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
