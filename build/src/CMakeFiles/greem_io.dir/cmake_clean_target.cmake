file(REMOVE_RECURSE
  "libgreem_io.a"
)
