file(REMOVE_RECURSE
  "CMakeFiles/greem_io.dir/io/config.cpp.o"
  "CMakeFiles/greem_io.dir/io/config.cpp.o.d"
  "CMakeFiles/greem_io.dir/io/csv.cpp.o"
  "CMakeFiles/greem_io.dir/io/csv.cpp.o.d"
  "CMakeFiles/greem_io.dir/io/snapshot.cpp.o"
  "CMakeFiles/greem_io.dir/io/snapshot.cpp.o.d"
  "libgreem_io.a"
  "libgreem_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
