# Empty compiler generated dependencies file for greem_io.
# This may be replaced when dependencies are built.
