file(REMOVE_RECURSE
  "CMakeFiles/greem_util.dir/util/morton.cpp.o"
  "CMakeFiles/greem_util.dir/util/morton.cpp.o.d"
  "CMakeFiles/greem_util.dir/util/parallel_for.cpp.o"
  "CMakeFiles/greem_util.dir/util/parallel_for.cpp.o.d"
  "CMakeFiles/greem_util.dir/util/pgm.cpp.o"
  "CMakeFiles/greem_util.dir/util/pgm.cpp.o.d"
  "CMakeFiles/greem_util.dir/util/rng.cpp.o"
  "CMakeFiles/greem_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/greem_util.dir/util/stats.cpp.o"
  "CMakeFiles/greem_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/greem_util.dir/util/table.cpp.o"
  "CMakeFiles/greem_util.dir/util/table.cpp.o.d"
  "CMakeFiles/greem_util.dir/util/timer.cpp.o"
  "CMakeFiles/greem_util.dir/util/timer.cpp.o.d"
  "libgreem_util.a"
  "libgreem_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
