file(REMOVE_RECURSE
  "libgreem_util.a"
)
