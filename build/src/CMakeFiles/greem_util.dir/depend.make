# Empty dependencies file for greem_util.
# This may be replaced when dependencies are built.
