# Empty dependencies file for greem_pp.
# This may be replaced when dependencies are built.
