
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pp/cutoff.cpp" "src/CMakeFiles/greem_pp.dir/pp/cutoff.cpp.o" "gcc" "src/CMakeFiles/greem_pp.dir/pp/cutoff.cpp.o.d"
  "/root/repo/src/pp/kernels.cpp" "src/CMakeFiles/greem_pp.dir/pp/kernels.cpp.o" "gcc" "src/CMakeFiles/greem_pp.dir/pp/kernels.cpp.o.d"
  "/root/repo/src/pp/phantom.cpp" "src/CMakeFiles/greem_pp.dir/pp/phantom.cpp.o" "gcc" "src/CMakeFiles/greem_pp.dir/pp/phantom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/greem_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
