file(REMOVE_RECURSE
  "CMakeFiles/greem_pp.dir/pp/cutoff.cpp.o"
  "CMakeFiles/greem_pp.dir/pp/cutoff.cpp.o.d"
  "CMakeFiles/greem_pp.dir/pp/kernels.cpp.o"
  "CMakeFiles/greem_pp.dir/pp/kernels.cpp.o.d"
  "CMakeFiles/greem_pp.dir/pp/phantom.cpp.o"
  "CMakeFiles/greem_pp.dir/pp/phantom.cpp.o.d"
  "libgreem_pp.a"
  "libgreem_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
