file(REMOVE_RECURSE
  "libgreem_pp.a"
)
