file(REMOVE_RECURSE
  "libgreem_ewald.a"
)
