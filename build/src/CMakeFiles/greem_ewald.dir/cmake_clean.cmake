file(REMOVE_RECURSE
  "CMakeFiles/greem_ewald.dir/ewald/ewald.cpp.o"
  "CMakeFiles/greem_ewald.dir/ewald/ewald.cpp.o.d"
  "libgreem_ewald.a"
  "libgreem_ewald.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_ewald.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
