# Empty compiler generated dependencies file for greem_ewald.
# This may be replaced when dependencies are built.
