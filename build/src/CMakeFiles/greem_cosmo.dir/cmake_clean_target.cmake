file(REMOVE_RECURSE
  "libgreem_cosmo.a"
)
