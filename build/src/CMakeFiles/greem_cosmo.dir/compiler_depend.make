# Empty compiler generated dependencies file for greem_cosmo.
# This may be replaced when dependencies are built.
