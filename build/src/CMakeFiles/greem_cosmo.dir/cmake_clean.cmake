file(REMOVE_RECURSE
  "CMakeFiles/greem_cosmo.dir/cosmo/cosmology.cpp.o"
  "CMakeFiles/greem_cosmo.dir/cosmo/cosmology.cpp.o.d"
  "libgreem_cosmo.a"
  "libgreem_cosmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_cosmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
