file(REMOVE_RECURSE
  "CMakeFiles/greem_ic.dir/ic/gaussian_field.cpp.o"
  "CMakeFiles/greem_ic.dir/ic/gaussian_field.cpp.o.d"
  "CMakeFiles/greem_ic.dir/ic/powerspec.cpp.o"
  "CMakeFiles/greem_ic.dir/ic/powerspec.cpp.o.d"
  "CMakeFiles/greem_ic.dir/ic/zeldovich.cpp.o"
  "CMakeFiles/greem_ic.dir/ic/zeldovich.cpp.o.d"
  "libgreem_ic.a"
  "libgreem_ic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
