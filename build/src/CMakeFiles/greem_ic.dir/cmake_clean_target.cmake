file(REMOVE_RECURSE
  "libgreem_ic.a"
)
