# Empty dependencies file for greem_ic.
# This may be replaced when dependencies are built.
