
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ic/gaussian_field.cpp" "src/CMakeFiles/greem_ic.dir/ic/gaussian_field.cpp.o" "gcc" "src/CMakeFiles/greem_ic.dir/ic/gaussian_field.cpp.o.d"
  "/root/repo/src/ic/powerspec.cpp" "src/CMakeFiles/greem_ic.dir/ic/powerspec.cpp.o" "gcc" "src/CMakeFiles/greem_ic.dir/ic/powerspec.cpp.o.d"
  "/root/repo/src/ic/zeldovich.cpp" "src/CMakeFiles/greem_ic.dir/ic/zeldovich.cpp.o" "gcc" "src/CMakeFiles/greem_ic.dir/ic/zeldovich.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/greem_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_parx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
