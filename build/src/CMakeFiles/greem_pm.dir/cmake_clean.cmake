file(REMOVE_RECURSE
  "CMakeFiles/greem_pm.dir/pm/assign.cpp.o"
  "CMakeFiles/greem_pm.dir/pm/assign.cpp.o.d"
  "CMakeFiles/greem_pm.dir/pm/gradient.cpp.o"
  "CMakeFiles/greem_pm.dir/pm/gradient.cpp.o.d"
  "CMakeFiles/greem_pm.dir/pm/green.cpp.o"
  "CMakeFiles/greem_pm.dir/pm/green.cpp.o.d"
  "CMakeFiles/greem_pm.dir/pm/mesh.cpp.o"
  "CMakeFiles/greem_pm.dir/pm/mesh.cpp.o.d"
  "CMakeFiles/greem_pm.dir/pm/parallel_pm.cpp.o"
  "CMakeFiles/greem_pm.dir/pm/parallel_pm.cpp.o.d"
  "CMakeFiles/greem_pm.dir/pm/pencil_pm.cpp.o"
  "CMakeFiles/greem_pm.dir/pm/pencil_pm.cpp.o.d"
  "CMakeFiles/greem_pm.dir/pm/pm_solver.cpp.o"
  "CMakeFiles/greem_pm.dir/pm/pm_solver.cpp.o.d"
  "CMakeFiles/greem_pm.dir/pm/relay_mesh.cpp.o"
  "CMakeFiles/greem_pm.dir/pm/relay_mesh.cpp.o.d"
  "libgreem_pm.a"
  "libgreem_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
