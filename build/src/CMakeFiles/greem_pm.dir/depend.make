# Empty dependencies file for greem_pm.
# This may be replaced when dependencies are built.
