file(REMOVE_RECURSE
  "libgreem_pm.a"
)
