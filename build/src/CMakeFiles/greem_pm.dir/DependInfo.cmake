
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pm/assign.cpp" "src/CMakeFiles/greem_pm.dir/pm/assign.cpp.o" "gcc" "src/CMakeFiles/greem_pm.dir/pm/assign.cpp.o.d"
  "/root/repo/src/pm/gradient.cpp" "src/CMakeFiles/greem_pm.dir/pm/gradient.cpp.o" "gcc" "src/CMakeFiles/greem_pm.dir/pm/gradient.cpp.o.d"
  "/root/repo/src/pm/green.cpp" "src/CMakeFiles/greem_pm.dir/pm/green.cpp.o" "gcc" "src/CMakeFiles/greem_pm.dir/pm/green.cpp.o.d"
  "/root/repo/src/pm/mesh.cpp" "src/CMakeFiles/greem_pm.dir/pm/mesh.cpp.o" "gcc" "src/CMakeFiles/greem_pm.dir/pm/mesh.cpp.o.d"
  "/root/repo/src/pm/parallel_pm.cpp" "src/CMakeFiles/greem_pm.dir/pm/parallel_pm.cpp.o" "gcc" "src/CMakeFiles/greem_pm.dir/pm/parallel_pm.cpp.o.d"
  "/root/repo/src/pm/pencil_pm.cpp" "src/CMakeFiles/greem_pm.dir/pm/pencil_pm.cpp.o" "gcc" "src/CMakeFiles/greem_pm.dir/pm/pencil_pm.cpp.o.d"
  "/root/repo/src/pm/pm_solver.cpp" "src/CMakeFiles/greem_pm.dir/pm/pm_solver.cpp.o" "gcc" "src/CMakeFiles/greem_pm.dir/pm/pm_solver.cpp.o.d"
  "/root/repo/src/pm/relay_mesh.cpp" "src/CMakeFiles/greem_pm.dir/pm/relay_mesh.cpp.o" "gcc" "src/CMakeFiles/greem_pm.dir/pm/relay_mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/greem_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_parx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_pp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
