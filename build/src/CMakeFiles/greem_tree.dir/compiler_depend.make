# Empty compiler generated dependencies file for greem_tree.
# This may be replaced when dependencies are built.
