file(REMOVE_RECURSE
  "CMakeFiles/greem_tree.dir/tree/ghost.cpp.o"
  "CMakeFiles/greem_tree.dir/tree/ghost.cpp.o.d"
  "CMakeFiles/greem_tree.dir/tree/octree.cpp.o"
  "CMakeFiles/greem_tree.dir/tree/octree.cpp.o.d"
  "CMakeFiles/greem_tree.dir/tree/traversal.cpp.o"
  "CMakeFiles/greem_tree.dir/tree/traversal.cpp.o.d"
  "libgreem_tree.a"
  "libgreem_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greem_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
