
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/ghost.cpp" "src/CMakeFiles/greem_tree.dir/tree/ghost.cpp.o" "gcc" "src/CMakeFiles/greem_tree.dir/tree/ghost.cpp.o.d"
  "/root/repo/src/tree/octree.cpp" "src/CMakeFiles/greem_tree.dir/tree/octree.cpp.o" "gcc" "src/CMakeFiles/greem_tree.dir/tree/octree.cpp.o.d"
  "/root/repo/src/tree/traversal.cpp" "src/CMakeFiles/greem_tree.dir/tree/traversal.cpp.o" "gcc" "src/CMakeFiles/greem_tree.dir/tree/traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/greem_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/greem_pp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
