file(REMOVE_RECURSE
  "libgreem_tree.a"
)
