# Empty dependencies file for bench_assign.
# This may be replaced when dependencies are built.
