file(REMOVE_RECURSE
  "../bench/bench_assign"
  "../bench/bench_assign.pdb"
  "CMakeFiles/bench_assign.dir/bench_assign.cpp.o"
  "CMakeFiles/bench_assign.dir/bench_assign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
