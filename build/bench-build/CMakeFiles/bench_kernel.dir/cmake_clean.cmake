file(REMOVE_RECURSE
  "../bench/bench_kernel"
  "../bench/bench_kernel.pdb"
  "CMakeFiles/bench_kernel.dir/bench_kernel.cpp.o"
  "CMakeFiles/bench_kernel.dir/bench_kernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
