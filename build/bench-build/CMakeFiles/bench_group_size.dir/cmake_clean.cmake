file(REMOVE_RECURSE
  "../bench/bench_group_size"
  "../bench/bench_group_size.pdb"
  "CMakeFiles/bench_group_size.dir/bench_group_size.cpp.o"
  "CMakeFiles/bench_group_size.dir/bench_group_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
