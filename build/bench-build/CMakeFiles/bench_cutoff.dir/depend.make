# Empty dependencies file for bench_cutoff.
# This may be replaced when dependencies are built.
