file(REMOVE_RECURSE
  "../bench/bench_accuracy"
  "../bench/bench_accuracy.pdb"
  "CMakeFiles/bench_accuracy.dir/bench_accuracy.cpp.o"
  "CMakeFiles/bench_accuracy.dir/bench_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
