file(REMOVE_RECURSE
  "../bench/bench_relay_mesh"
  "../bench/bench_relay_mesh.pdb"
  "CMakeFiles/bench_relay_mesh.dir/bench_relay_mesh.cpp.o"
  "CMakeFiles/bench_relay_mesh.dir/bench_relay_mesh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relay_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
