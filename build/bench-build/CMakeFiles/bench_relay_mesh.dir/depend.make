# Empty dependencies file for bench_relay_mesh.
# This may be replaced when dependencies are built.
