file(REMOVE_RECURSE
  "../bench/bench_domain"
  "../bench/bench_domain.pdb"
  "CMakeFiles/bench_domain.dir/bench_domain.cpp.o"
  "CMakeFiles/bench_domain.dir/bench_domain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
