// Octree construction invariants, Barnes-modified group traversal against
// direct summation, cutoff pruning, and ghost selection.

#include <gtest/gtest.h>

#include <cmath>

#include "core/direct_force.hpp"
#include "core/particle.hpp"
#include "core/tree_force.hpp"
#include "tree/ghost.hpp"
#include "tree/octree.hpp"
#include "tree/traversal.hpp"
#include "pp/cutoff.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace greem::tree {
namespace {

std::vector<Vec3> random_positions(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pos(n);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  return pos;
}

TEST(Octree, ConservesMassAndCenterOfMass) {
  const auto pos = random_positions(500, 1);
  Rng rng(2);
  std::vector<double> mass(pos.size());
  for (auto& m : mass) m = rng.uniform(0.5, 1.5);

  Octree tree(pos, mass);
  double total = 0;
  Vec3 com{};
  for (std::size_t i = 0; i < pos.size(); ++i) {
    total += mass[i];
    com += pos[i] * mass[i];
  }
  com /= total;
  EXPECT_NEAR(tree.root().mass, total, 1e-12);
  EXPECT_NEAR(tree.root().com.x, com.x, 1e-12);
  EXPECT_NEAR(tree.root().com.y, com.y, 1e-12);
  EXPECT_NEAR(tree.root().com.z, com.z, 1e-12);
}

TEST(Octree, NodesOwnConsistentParticleRanges) {
  const auto pos = random_positions(300, 3);
  std::vector<double> mass(pos.size(), 1.0);
  Octree tree(pos, mass);
  for (const auto& node : tree.nodes()) {
    EXPECT_LE(node.first + node.count, tree.num_particles());
    if (!node.is_leaf()) {
      // Children partition the parent's range.
      std::uint32_t sum = 0;
      for (std::uint32_t c = 0; c < node.nchildren; ++c)
        sum += tree.nodes()[node.first_child + c].count;
      EXPECT_EQ(sum, node.count);
    }
    // Particles lie inside the (slightly padded) cell cube.
    for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
      const Vec3 p = tree.sorted_pos()[i];
      EXPECT_LE(std::abs(p.x - node.center.x), node.half * (1 + 1e-9) + 1e-12);
      EXPECT_LE(std::abs(p.y - node.center.y), node.half * (1 + 1e-9) + 1e-12);
      EXPECT_LE(std::abs(p.z - node.center.z), node.half * (1 + 1e-9) + 1e-12);
    }
  }
}

TEST(Octree, LeavesRespectCapacityAboveMaxDepth) {
  const auto pos = random_positions(2000, 4);
  std::vector<double> mass(pos.size(), 1.0);
  OctreeParams params;
  params.leaf_capacity = 16;
  Octree tree(pos, mass, params);
  for (const auto& node : tree.nodes()) {
    if (node.is_leaf() && node.half > 1e-5) {
      EXPECT_LE(node.count, 16u);
    }
  }
}

TEST(Octree, OrderIsAPermutation) {
  const auto pos = random_positions(777, 5);
  std::vector<double> mass(pos.size(), 1.0);
  Octree tree(pos, mass);
  std::vector<bool> seen(pos.size(), false);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const auto orig = tree.original_index(static_cast<std::uint32_t>(i));
    ASSERT_LT(orig, pos.size());
    EXPECT_FALSE(seen[orig]);
    seen[orig] = true;
    EXPECT_EQ(tree.sorted_pos()[i], pos[orig]);
  }
}

TEST(Octree, EmptyAndSingleParticle) {
  std::vector<Vec3> none;
  std::vector<double> no_mass;
  Octree empty(none, no_mass);
  EXPECT_EQ(empty.root().count, 0u);

  const std::vector<Vec3> one{{0.5, 0.5, 0.5}};
  const std::vector<double> m{2.0};
  Octree single(one, m);
  EXPECT_EQ(single.root().count, 1u);
  EXPECT_DOUBLE_EQ(single.root().mass, 2.0);
}

TEST(Octree, GroupsPartitionAllParticles) {
  const auto pos = random_positions(1500, 6);
  std::vector<double> mass(pos.size(), 1.0);
  Octree tree(pos, mass);
  const auto groups = tree.groups(100);
  std::uint32_t covered = 0, expect_first = 0;
  for (const auto g : groups) {
    const auto& node = tree.nodes()[g];
    EXPECT_EQ(node.first, expect_first);  // contiguous in tree order
    EXPECT_LE(node.count, 100u);
    covered += node.count;
    expect_first = node.first + node.count;
  }
  EXPECT_EQ(covered, 1500u);
}

class TraversalAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(TraversalAccuracy, NewtonWalkMatchesDirectWithinThetaBudget) {
  const double theta = GetParam();
  const auto pos = random_positions(800, 7);
  std::vector<double> mass(pos.size(), 1.0 / 800);

  std::vector<Vec3> direct(pos.size()), walked(pos.size());
  core::direct_newton(pos, mass, direct, 1e-8);

  Octree tree(pos, mass);
  TraversalParams tp;
  tp.theta = theta;
  tp.ncrit = 32;
  tp.eps2 = 1e-8;
  tp.kernel = KernelKind::kNewton;
  tree_accelerations(tree, tp, walked);

  std::vector<double> rel;
  for (std::size_t i = 0; i < pos.size(); ++i)
    rel.push_back((walked[i] - direct[i]).norm() / std::max(direct[i].norm(), 1e-10));
  // Monopole-only BH: rms relative error scales roughly as theta^2.
  EXPECT_LT(rms(rel), 0.05 * theta * theta + 1e-4) << "theta = " << theta;
}

INSTANTIATE_TEST_SUITE_P(Thetas, TraversalAccuracy, ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(Traversal, ThetaZeroIsExactDirectSum) {
  const auto pos = random_positions(200, 8);
  std::vector<double> mass(pos.size(), 1.0 / 200);
  std::vector<Vec3> direct(pos.size()), walked(pos.size());
  core::direct_newton(pos, mass, direct, 1e-8);

  Octree tree(pos, mass);
  TraversalParams tp;
  tp.theta = 0.0;  // never accept a multipole
  tp.ncrit = 16;
  tp.eps2 = 1e-8;
  tp.kernel = KernelKind::kNewton;
  tree_accelerations(tree, tp, walked);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_NEAR(walked[i].x, direct[i].x, 1e-9);
    EXPECT_NEAR(walked[i].y, direct[i].y, 1e-9);
    EXPECT_NEAR(walked[i].z, direct[i].z, 1e-9);
  }
}

TEST(Traversal, CutoffWalkMatchesDirectShortRange) {
  const auto pos = random_positions(600, 9);
  std::vector<double> mass(pos.size(), 1.0 / 600);
  const double rcut = 0.15, eps2 = 1e-10;

  std::vector<Vec3> direct(pos.size()), walked(pos.size());
  core::direct_short_range(pos, mass, direct, rcut, eps2);

  Octree tree(pos, mass);
  TraversalParams tp;
  tp.theta = 0.0;  // exact: every source individually
  tp.rcut = rcut;
  tp.ncrit = 32;
  tp.eps2 = eps2;
  tp.kernel = KernelKind::kScalar;
  // Periodic: walk all 27 images.
  std::vector<Vec3> images;
  for (int x = -1; x <= 1; ++x)
    for (int y = -1; y <= 1; ++y)
      for (int z = -1; z <= 1; ++z) images.emplace_back(x, y, z);
  tree_accelerations(tree, tp, walked, images);

  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_NEAR(walked[i].x, direct[i].x, 1e-8);
    EXPECT_NEAR(walked[i].y, direct[i].y, 1e-8);
    EXPECT_NEAR(walked[i].z, direct[i].z, 1e-8);
  }
}

TEST(Traversal, StatsCountInteractions) {
  const auto pos = random_positions(400, 10);
  std::vector<double> mass(pos.size(), 1.0);
  Octree tree(pos, mass);
  TraversalParams tp;
  tp.ncrit = 50;
  tp.eps2 = 1e-8;
  tp.kernel = KernelKind::kScalar;
  std::vector<Vec3> acc(pos.size());
  const auto stats = tree_accelerations(tree, tp, acc);
  EXPECT_GT(stats.ngroups, 0u);
  EXPECT_EQ(stats.sum_ni, 400u);
  EXPECT_GT(stats.interactions, 0u);
  EXPECT_LE(stats.mean_ni(), 50.0);
  EXPECT_GT(stats.mean_nj(), 0.0);
}

TEST(Traversal, GroupSizeTradeoff) {
  // Larger <Ni> -> fewer groups and longer lists (the paper's knob).
  const auto pos = random_positions(2000, 11);
  std::vector<double> mass(pos.size(), 1.0);
  Octree tree(pos, mass);
  TraversalParams tp;
  tp.eps2 = 1e-8;
  tp.kernel = KernelKind::kScalar;

  tp.ncrit = 8;
  std::vector<Vec3> acc(pos.size());
  const auto small = tree_accelerations(tree, tp, acc);
  tp.ncrit = 256;
  std::fill(acc.begin(), acc.end(), Vec3{});
  const auto large = tree_accelerations(tree, tp, acc);
  EXPECT_GT(small.ngroups, large.ngroups);
  EXPECT_LT(small.mean_nj(), large.mean_nj());
}

TEST(Ghost, SelectsExactlyParticlesWithinRcut) {
  // Two domains split at x = 0.5; ghosts of rank 0 for rank 1 are the
  // particles within rcut of the [0.5, 1) slab (including across the wrap).
  const double rcut = 0.1;
  std::vector<Box> domains(2);
  domains[0] = {{0, 0, 0}, {0.5, 1, 1}};
  domains[1] = {{0.5, 0, 0}, {1, 1, 1}};

  std::vector<Vec3> pos{{0.45, 0.5, 0.5},   // near the cut: ghost for 1
                        {0.3, 0.5, 0.5},    // interior: not a ghost
                        {0.02, 0.5, 0.5}};  // near 0: ghost for 1 across wrap
  std::vector<double> mass{1, 2, 3};
  const auto exports = select_ghosts(pos, mass, domains, 0, rcut);
  ASSERT_EQ(exports.pos[1].size(), 2u);
  EXPECT_TRUE(exports.pos[0].empty());  // nothing to self
  // The wrap-around ghost arrives unwrapped at x slightly above 1.
  EXPECT_NEAR(exports.pos[1][1].x, 1.02, 1e-12);
  EXPECT_DOUBLE_EQ(exports.mass[1][1], 3.0);
}

TEST(Ghost, GhostForceEqualsFullShortRange) {
  // Rank-0 particles with ghosts from "rank 1" reproduce the full periodic
  // short-range force on rank-0 targets.
  Rng rng(13);
  const double rcut = 0.12;
  std::vector<Vec3> all(300);
  for (auto& p : all) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  std::vector<double> mass(all.size(), 1.0 / 300);

  std::vector<Box> domains(2);
  domains[0] = {{0, 0, 0}, {0.5, 1, 1}};
  domains[1] = {{0.5, 0, 0}, {1, 1, 1}};
  std::vector<Vec3> local, remote;
  std::vector<double> lmass, rmass;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (domains[0].contains(all[i])) {
      local.push_back(all[i]);
      lmass.push_back(mass[i]);
    } else {
      remote.push_back(all[i]);
      rmass.push_back(mass[i]);
    }
  }
  const auto exports = select_ghosts(remote, rmass, domains, 1, rcut);
  // Periodic self-ghosts: domain 0 spans full y/z, so its own particles
  // serve it again through shifted images (exactly what the parallel
  // driver receives via the self slot of the alltoallv).
  const auto self_exports = select_ghosts(local, lmass, domains, 0, rcut);
  auto combined = local;
  auto cmass = lmass;
  combined.insert(combined.end(), exports.pos[0].begin(), exports.pos[0].end());
  cmass.insert(cmass.end(), exports.mass[0].begin(), exports.mass[0].end());
  combined.insert(combined.end(), self_exports.pos[0].begin(), self_exports.pos[0].end());
  cmass.insert(cmass.end(), self_exports.mass[0].begin(), self_exports.mass[0].end());

  // Reference: full periodic direct short-range on all particles.
  std::vector<Vec3> ref_all(all.size());
  core::direct_short_range(all, mass, ref_all, rcut, 1e-10);

  Octree tree(combined, cmass);
  TraversalParams tp;
  tp.theta = 0.0;
  tp.rcut = rcut;
  tp.ncrit = 16;
  tp.eps2 = 1e-10;
  tp.kernel = KernelKind::kScalar;
  std::vector<Vec3> acc(combined.size());
  tree_accelerations_targets(tree, tp, local.size(), acc);

  std::size_t li = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!domains[0].contains(all[i])) continue;
    EXPECT_NEAR(acc[li].x, ref_all[i].x, 1e-8);
    EXPECT_NEAR(acc[li].y, ref_all[i].y, 1e-8);
    EXPECT_NEAR(acc[li].z, ref_all[i].z, 1e-8);
    ++li;
  }
}


TEST(Quadrupole, KnownTensorForSymmetricPair) {
  // Two equal masses at +-d along x: Q_xx = 4 m d^2, Q_yy = Q_zz = -2 m d^2.
  const double d = 0.01, m = 0.5;
  const std::vector<Vec3> pos{{0.5 - d, 0.5, 0.5}, {0.5 + d, 0.5, 0.5}};
  const std::vector<double> mass{m, m};
  OctreeParams params;
  params.with_quadrupole = true;
  params.leaf_capacity = 8;
  Octree tree(pos, mass, params);
  const auto& q = tree.root().quad;
  EXPECT_NEAR(q[0], 4 * m * d * d, 1e-15);
  EXPECT_NEAR(q[3], -2 * m * d * d, 1e-15);
  EXPECT_NEAR(q[5], -2 * m * d * d, 1e-15);
  EXPECT_NEAR(q[1], 0.0, 1e-18);
  // Trace-free.
  EXPECT_NEAR(q[0] + q[3] + q[5], 0.0, 1e-18);
}

TEST(Quadrupole, ParallelAxisCombinationMatchesDirect) {
  // Root quadrupole from a deep tree must equal the direct tensor over
  // all particles about the global center of mass.
  const auto pos = random_positions(400, 21);
  Rng rng(22);
  std::vector<double> mass(pos.size());
  for (auto& m : mass) m = rng.uniform(0.5, 1.5);
  OctreeParams params;
  params.with_quadrupole = true;
  params.leaf_capacity = 4;  // force a deep hierarchy
  Octree tree(pos, mass, params);

  Vec3 com = tree.root().com;
  std::array<double, 6> direct{};
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const Vec3 d = pos[i] - com;
    const double d2 = d.norm2();
    direct[0] += mass[i] * (3 * d.x * d.x - d2);
    direct[1] += mass[i] * 3 * d.x * d.y;
    direct[2] += mass[i] * 3 * d.x * d.z;
    direct[3] += mass[i] * (3 * d.y * d.y - d2);
    direct[4] += mass[i] * 3 * d.y * d.z;
    direct[5] += mass[i] * (3 * d.z * d.z - d2);
  }
  for (int k = 0; k < 6; ++k)
    EXPECT_NEAR(tree.root().quad[static_cast<std::size_t>(k)],
                direct[static_cast<std::size_t>(k)], 1e-10);
}

TEST(Quadrupole, KernelImprovesFarFieldOverMonopole) {
  // A compact random cluster seen from afar: the quadrupole-corrected node
  // force must be much closer to the direct sum than the monopole alone.
  Rng rng(23);
  const double s = 0.02;
  std::vector<Vec3> cluster(50);
  std::vector<double> mass(50);
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    cluster[i] = {0.5 + rng.uniform(-s, s), 0.5 + rng.uniform(-s, s),
                  0.5 + rng.uniform(-s, s)};
    mass[i] = rng.uniform(0.5, 1.5);
  }
  OctreeParams params;
  params.with_quadrupole = true;
  Octree tree(cluster, mass, params);

  const std::vector<Vec3> target{{0.5 + 0.2, 0.5 + 0.13, 0.5 - 0.08}};
  std::vector<Vec3> direct(1), mono(1), quad(1);
  // direct sum
  for (std::size_t j = 0; j < cluster.size(); ++j) {
    const Vec3 d = cluster[j] - target[0];
    const double r2 = d.norm2();
    direct[0] += d * (mass[j] / (r2 * std::sqrt(r2)));
  }
  // monopole only
  {
    const Vec3 d = tree.root().com - target[0];
    const double r2 = d.norm2();
    mono[0] += d * (tree.root().mass / (r2 * std::sqrt(r2)));
  }
  // monopole + quadrupole
  {
    pp::QuadSource src{tree.root().com, tree.root().mass, tree.root().quad};
    pp::pp_kernel_quadrupole(target, quad, std::span<const pp::QuadSource>(&src, 1), 0.0);
  }
  const double mono_err = (mono[0] - direct[0]).norm();
  const double quad_err = (quad[0] - direct[0]).norm();
  EXPECT_LT(quad_err, 0.25 * mono_err);
}

TEST(Quadrupole, TreeWalkBeatsMonopoleAtSameTheta) {
  auto particles = core::plummer_particles(800, 1.0, {0.5, 0.5, 0.5}, 0.05, 24);
  std::vector<Vec3> pos;
  for (const auto& p : particles) pos.push_back(p.pos);
  std::vector<double> mass(pos.size(), 1.0 / 800);

  std::vector<Vec3> direct(pos.size());
  core::direct_newton(pos, mass, direct, 1e-8);

  auto walk_error = [&](bool quadrupole) {
    core::TreeForceParams tp;
    tp.theta = 0.6;
    tp.eps2 = 1e-8;
    tp.quadrupole = quadrupole;
    std::vector<Vec3> acc(pos.size());
    core::tree_newton(pos, mass, acc, tp);
    std::vector<double> rel;
    for (std::size_t i = 0; i < pos.size(); ++i)
      rel.push_back((acc[i] - direct[i]).norm() / std::max(direct[i].norm(), 1e-10));
    return rms(rel);
  };
  const double mono = walk_error(false);
  const double quad = walk_error(true);
  EXPECT_LT(quad, 0.4 * mono);
}


TEST(Traversal, MultithreadedMatchesSingleThreaded) {
  // The MPI/OpenMP hybrid structure: the group loop is thread-parallel;
  // forces must be identical regardless of the worker count.
  const auto pos = random_positions(2000, 31);
  std::vector<double> mass(pos.size(), 1.0 / 2000);
  Octree tree(pos, mass);
  TraversalParams tp;
  tp.theta = 0.5;
  tp.ncrit = 64;
  tp.eps2 = 1e-8;
  tp.kernel = KernelKind::kScalar;

  set_num_threads(1);
  std::vector<Vec3> acc1(pos.size());
  const auto s1 = tree_accelerations(tree, tp, acc1);
  set_num_threads(4);
  std::vector<Vec3> acc4(pos.size());
  const auto s4 = tree_accelerations(tree, tp, acc4);
  set_num_threads(1);

  EXPECT_EQ(s1.interactions, s4.interactions);
  EXPECT_EQ(s1.ngroups, s4.ngroups);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_DOUBLE_EQ(acc1[i].x, acc4[i].x);
    EXPECT_DOUBLE_EQ(acc1[i].y, acc4[i].y);
    EXPECT_DOUBLE_EQ(acc1[i].z, acc4[i].z);
  }
}

TEST(Traversal, BitwiseDeterministicAcrossPoolSizes) {
  // Stronger form: the Newton kernel with an oversubscribed 8-thread pool
  // (this box may have fewer cores -- the steal pattern then varies wildly
  // between runs) must reproduce the single-thread forces *bitwise* and
  // the full traversal statistics exactly.  This is the property that lets
  // distributed runs validate against each other regardless of the
  // per-rank thread count.
  const auto pos = random_positions(3000, 77);
  std::vector<double> mass(pos.size());
  for (std::size_t i = 0; i < mass.size(); ++i)
    mass[i] = (1.0 + static_cast<double>(i % 7)) / 3000.0;
  Octree tree(pos, mass);
  TraversalParams tp;
  tp.theta = 0.6;
  tp.ncrit = 32;
  tp.eps2 = 1e-8;
  tp.kernel = KernelKind::kNewton;

  set_num_threads(1);
  std::vector<Vec3> acc1(pos.size());
  const auto s1 = tree_accelerations(tree, tp, acc1);
  for (const std::size_t nt : {2, 8}) {
    set_num_threads(nt);
    std::vector<Vec3> accn(pos.size());
    const auto sn = tree_accelerations(tree, tp, accn);
    EXPECT_EQ(s1.ngroups, sn.ngroups);
    EXPECT_EQ(s1.sum_ni, sn.sum_ni);
    EXPECT_EQ(s1.sum_nj, sn.sum_nj);
    EXPECT_EQ(s1.interactions, sn.interactions);
    EXPECT_EQ(s1.nodes_visited, sn.nodes_visited);
    for (std::size_t i = 0; i < pos.size(); ++i) {
      EXPECT_EQ(acc1[i].x, accn[i].x) << nt << " threads, particle " << i;
      EXPECT_EQ(acc1[i].y, accn[i].y) << nt << " threads, particle " << i;
      EXPECT_EQ(acc1[i].z, accn[i].z) << nt << " threads, particle " << i;
    }
  }
  set_num_threads(1);
}


TEST(Traversal, TreePotentialsMatchDirectPairSum) {
  const auto pos = random_positions(300, 41);
  std::vector<double> mass(pos.size(), 1.0 / 300);
  const double rcut = 0.12;

  // Direct reference: -m h(2r/rcut)/r over min-image pairs within rcut.
  std::vector<double> ref(pos.size(), 0.0);
  for (std::size_t i = 0; i < pos.size(); ++i)
    for (std::size_t j = 0; j < pos.size(); ++j) {
      if (i == j) continue;
      const double r = min_image(pos[i], pos[j]).norm();
      if (r >= rcut || r == 0.0) continue;
      ref[i] -= mass[j] * pp::h_p3m(2.0 * r / rcut) / r;
    }

  Octree tree(pos, mass);
  TraversalParams tp;
  tp.theta = 0.0;  // exact walk
  tp.rcut = rcut;
  tp.ncrit = 32;
  tp.eps2 = 0.0;
  tp.kernel = KernelKind::kScalar;
  std::vector<Vec3> images;
  for (int x = -1; x <= 1; ++x)
    for (int y = -1; y <= 1; ++y)
      for (int z = -1; z <= 1; ++z) images.emplace_back(x, y, z);
  std::vector<double> pot(pos.size(), 0.0);
  const auto stats = tree_potentials(tree, tp, pot, images);
  EXPECT_GT(stats.interactions, 0u);
  for (std::size_t i = 0; i < pos.size(); ++i)
    EXPECT_NEAR(pot[i], ref[i], 1e-6 * std::max(1.0, std::abs(ref[i])));
}

TEST(GroupCosts, SumToTraversalStats) {
  // Locals followed by "ghosts" (sources beyond n_targets), the parallel
  // rank layout: the per-group cost records must tile the traversal stats
  // exactly -- they are the same counters, just not collapsed.
  const auto pos = random_positions(600, 17);
  std::vector<double> mass(pos.size(), 1.0 / 600);
  const std::size_t n_targets = 400;

  Octree tree(pos, mass);
  TraversalParams tp;
  tp.theta = 0.5;
  tp.rcut = 0.25;
  tp.ncrit = 32;
  tp.eps2 = 1e-10;
  tp.kernel = KernelKind::kScalar;

  std::vector<Vec3> acc(pos.size());
  std::vector<GroupCost> costs;
  const auto stats = tree_accelerations_targets(tree, tp, n_targets, acc, {}, nullptr, &costs);

  ASSERT_EQ(costs.size(), stats.ngroups);
  std::uint64_t ni = 0, nj = 0, interactions = 0, ghosts = 0;
  for (const auto& gc : costs) {
    ni += gc.ni;
    nj += gc.nj;
    interactions += gc.interactions;
    ghosts += gc.ghost_sources;
    EXPECT_EQ(gc.interactions, static_cast<std::uint64_t>(gc.ni) * gc.nj);
    EXPECT_GE(gc.walk_s, 0.0);
    EXPECT_GE(gc.force_s, 0.0);
    EXPECT_GT(gc.half, 0.0);
    EXPECT_LT(gc.node, tree.nodes().size());
  }
  EXPECT_EQ(ni, stats.sum_ni);
  EXPECT_EQ(nj, stats.sum_nj);
  EXPECT_EQ(interactions, stats.interactions);
  EXPECT_EQ(ghosts, stats.ghost_sources);
  EXPECT_EQ(ni, n_targets);  // every target sits in exactly one group

  // With a 0.25 cutoff on clustered-random data some group actually opened
  // a ghost leaf; and when every particle is a target the count is zero.
  EXPECT_GT(stats.ghost_sources, 0u);
  std::vector<Vec3> acc_all(pos.size());
  const auto stats_all = tree_accelerations(tree, tp, acc_all);
  EXPECT_EQ(stats_all.ghost_sources, 0u);

  // Determinism modulo timings: a second run produces identical records.
  std::vector<Vec3> acc2(pos.size());
  std::vector<GroupCost> costs2;
  (void)tree_accelerations_targets(tree, tp, n_targets, acc2, {}, nullptr, &costs2);
  ASSERT_EQ(costs2.size(), costs.size());
  for (std::size_t i = 0; i < costs.size(); ++i) {
    EXPECT_EQ(costs2[i].node, costs[i].node);
    EXPECT_EQ(costs2[i].ni, costs[i].ni);
    EXPECT_EQ(costs2[i].nj, costs[i].nj);
    EXPECT_EQ(costs2[i].ghost_sources, costs[i].ghost_sources);
  }
}

}  // namespace
}  // namespace greem::tree
