// Distributed TreePM driver tests: the parallel simulation must agree with
// the serial one, conserve particles and momentum, balance load, and
// produce the Table-I style reports.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <mutex>

#include "ckpt/checkpoint.hpp"
#include "core/parallel_sim.hpp"
#include "core/simulation.hpp"
#include "parx/runtime.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace greem::core {
namespace {

std::vector<Particle> with_velocities(std::vector<Particle> ps, std::uint64_t seed) {
  Rng rng(seed);
  for (auto& p : ps) p.mom = {rng.normal() * 0.2, rng.normal() * 0.2, rng.normal() * 0.2};
  return ps;
}

ParallelSimConfig test_config(std::array<int, 3> dims) {
  ParallelSimConfig cfg;
  cfg.dims = dims;
  cfg.pm.n_mesh = 16;
  cfg.theta = 0.3;
  cfg.ncrit = 32;
  cfg.eps = 1e-3;
  cfg.sampling.target_samples = 2000;
  return cfg;
}

/// Run the parallel sim for `nsteps` and return all particles sorted by id.
std::vector<Particle> run_parallel(std::array<int, 3> dims, std::vector<Particle> initial,
                                   int nsteps, double dt,
                                   pm::MeshConversion method = pm::MeshConversion::kDirect,
                                   int n_groups = 1) {
  const int p = dims[0] * dims[1] * dims[2];
  std::mutex mu;
  std::vector<Particle> collected;
  parx::run_ranks(p, [&](parx::Comm& world) {
    // Rank 0 starts with everything; the first decomposition spreads it.
    std::vector<Particle> local = world.rank() == 0 ? initial : std::vector<Particle>{};
    auto cfg = test_config(dims);
    cfg.pm.conversion.method = method;
    cfg.pm.conversion.n_groups = n_groups;
    ParallelSimulation sim(world, cfg, std::move(local), 0.0);
    for (int s = 1; s <= nsteps; ++s) sim.step(s * dt);
    sim.synchronize();
    std::lock_guard lock(mu);
    const auto loc = sim.local();
    collected.insert(collected.end(), loc.begin(), loc.end());
  });
  std::sort(collected.begin(), collected.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
  return collected;
}

TEST(ParallelSim, ConservesParticles) {
  auto initial = with_velocities(random_uniform_particles(500, 1.0, 1), 2);
  const auto out = run_parallel({2, 2, 1}, initial, 2, 0.005);
  ASSERT_EQ(out.size(), initial.size());
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].id, i);
}

TEST(ParallelSim, MatchesSerialSimulation) {
  // Same particles, same force parameters, same schedule: the distributed
  // run must track the serial run to force-error accuracy.
  auto initial = with_velocities(random_uniform_particles(400, 1.0, 3), 4);

  SimulationConfig scfg;
  scfg.force.pm.n_mesh = 16;
  scfg.force.theta = 0.3;
  scfg.force.ncrit = 32;
  scfg.force.eps = 1e-3;
  Simulation serial(scfg, initial, 0.0);
  const double dt = 0.004;
  const int nsteps = 3;
  for (int s = 1; s <= nsteps; ++s) serial.step(s * dt);
  serial.synchronize();

  const auto par = run_parallel({2, 2, 1}, initial, nsteps, dt);
  ASSERT_EQ(par.size(), initial.size());

  auto sorted_serial = std::vector<Particle>(serial.particles().begin(),
                                             serial.particles().end());
  std::sort(sorted_serial.begin(), sorted_serial.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });

  std::vector<double> pos_err;
  for (std::size_t i = 0; i < par.size(); ++i) {
    ASSERT_EQ(par[i].id, sorted_serial[i].id);
    pos_err.push_back(min_image(par[i].pos, sorted_serial[i].pos).norm());
  }
  // Trajectories diverge only through force-approximation differences
  // (domain-dependent tree-walk grouping); they stay close over few steps.
  EXPECT_LT(percentile(pos_err, 95), 2e-5);
}

TEST(ParallelSim, RelayAndDirectConversionAgree) {
  auto initial = with_velocities(random_uniform_particles(400, 1.0, 5), 6);
  const double dt = 0.004;
  const auto direct = run_parallel({2, 2, 2}, initial, 2, dt, pm::MeshConversion::kDirect);
  const auto relay = run_parallel({2, 2, 2}, initial, 2, dt, pm::MeshConversion::kRelay, 2);
  ASSERT_EQ(direct.size(), relay.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_LT(min_image(direct[i].pos, relay[i].pos).norm(), 1e-10);
    EXPECT_LT((direct[i].mom - relay[i].mom).norm(), 1e-10);
  }
}

TEST(ParallelSim, ConservesMomentum) {
  auto initial = random_uniform_particles(300, 1.0, 7);  // cold start
  const auto out = run_parallel({2, 1, 1}, initial, 3, 0.005);
  Vec3 net{};
  for (const auto& p : out) net += p.mom * p.mass;
  EXPECT_LT(net.norm(), 1e-4);
}

TEST(ParallelSim, ReportsTableOnePhases) {
  auto initial = with_velocities(random_uniform_particles(600, 1.0, 8), 9);
  parx::run_ranks(4, [&](parx::Comm& world) {
    std::vector<Particle> local = world.rank() == 0 ? initial : std::vector<Particle>{};
    ParallelSimulation sim(world, test_config({2, 2, 1}), std::move(local), 0.0);
    sim.step(0.005);
    const auto& rep = sim.last_step();
    // Every Table-I row name must be present.
    for (const char* phase : {"density assignment", "communication", "FFT",
                              "acceleration on mesh", "force interpolation"}) {
      EXPECT_GE(rep.pm.get(phase), 0.0) << phase;
      EXPECT_NE(rep.pm.entries().size(), 0u);
    }
    for (const char* phase : {"local tree", "communication", "tree construction",
                              "tree traversal", "force calculation"}) {
      EXPECT_GE(rep.pp.get(phase), 0.0) << phase;
    }
    for (const char* phase : {"sampling method", "particle exchange", "position update"}) {
      EXPECT_GE(rep.dd.get(phase), 0.0) << phase;
    }
    EXPECT_GT(rep.pp_stats.interactions, 0u);
    EXPECT_GT(rep.pp_stats.mean_ni(), 0.0);
    EXPECT_GT(rep.pp_stats.mean_nj(), 0.0);

    // Collective reductions used by the Table-I bench.
    const auto ppmax = allreduce_max(world, rep.pp);
    EXPECT_GE(ppmax.get("force calculation"), rep.pp.get("force calculation"));
    const auto total = allreduce_sum(world, rep.pp_stats);
    EXPECT_GE(total.interactions, rep.pp_stats.interactions);
  });
}

TEST(ParallelSim, LoadBalancerEqualizesClusteredCost) {
  // A strongly clustered distribution on 4 ranks: after a few steps the
  // per-rank force cost must be far better balanced than the particle
  // count under a static uniform grid.
  auto initial = clustered_particles(2000, 1.0, 2, 0.8, 0.03, 10);
  parx::run_ranks(4, [&](parx::Comm& world) {
    std::vector<Particle> local = world.rank() == 0 ? initial : std::vector<Particle>{};
    auto cfg = test_config({4, 1, 1});
    cfg.sampling.target_samples = 4000;
    ParallelSimulation sim(world, cfg, std::move(local), 0.0);
    for (int s = 1; s <= 4; ++s) sim.step(s * 0.002);

    // Interactions per rank ~ force cost.
    const double mine = static_cast<double>(sim.last_step().pp_stats.interactions);
    auto all = world.allgatherv(std::span<const double>(&mine, 1));
    if (world.rank() == 0) {
      const auto s = summarize(all);
      EXPECT_LT(s.imbalance(), 2.0);

      // Static uniform decomposition for comparison: count interactions by
      // proxy of particle share in each uniform quarter (the clumps land in
      // few domains, imbalance >> 2).
      std::vector<double> static_counts(4, 0.0);
      for (const auto& p : initial)
        static_counts[std::min<std::size_t>(static_cast<std::size_t>(p.pos.x * 4), 3)] += 1;
      EXPECT_GT(summarize(static_counts).imbalance(), 1.5);
    }
  });
}

TEST(ParallelSim, SingleRankDegeneratesToSerial) {
  auto initial = with_velocities(random_uniform_particles(200, 1.0, 11), 12);
  const auto out = run_parallel({1, 1, 1}, initial, 2, 0.005);
  EXPECT_EQ(out.size(), initial.size());
}

TEST(ParallelSim, RejectsMismatchedDims) {
  parx::run_ranks(3, [](parx::Comm& world) {
    EXPECT_THROW(ParallelSimulation(world, test_config({2, 2, 1}), {}, 0.0),
                 std::invalid_argument);
  });
}

TEST(ParallelSim, OverlapOnAndOffAreBitwiseIdentical) {
  // The overlap switch may only change the interleaving of the PM and PP
  // stages, never a result bit: full runs (including the pipelined PM,
  // ghost drains in arrival order, and the final synchronize) must agree
  // bitwise under both mesh-conversion methods.
  auto initial = with_velocities(random_uniform_particles(400, 1.0, 51), 52);
  const double dt = 0.004;
  auto run = [&](bool overlap, pm::MeshConversion method, int n_groups) {
    std::mutex mu;
    std::vector<Particle> collected;
    parx::run_ranks(8, [&](parx::Comm& world) {
      std::vector<Particle> local = world.rank() == 0 ? initial : std::vector<Particle>{};
      auto cfg = test_config({2, 2, 2});
      cfg.cost_metric = CostMetric::kInteractions;  // deterministic schedule
      cfg.overlap = overlap;
      cfg.pm.conversion.method = method;
      cfg.pm.conversion.n_groups = n_groups;
      ParallelSimulation sim(world, cfg, std::move(local), 0.0);
      for (int s = 1; s <= 2; ++s) sim.step(s * dt);
      sim.synchronize();
      std::lock_guard lock(mu);
      const auto loc = sim.local();
      collected.insert(collected.end(), loc.begin(), loc.end());
    });
    std::sort(collected.begin(), collected.end(),
              [](const Particle& a, const Particle& b) { return a.id < b.id; });
    return collected;
  };
  struct Case {
    pm::MeshConversion method;
    int n_groups;
    const char* name;
  };
  for (const Case& tc : {Case{pm::MeshConversion::kDirect, 1, "direct"},
                         Case{pm::MeshConversion::kRelay, 2, "relay"}}) {
    SCOPED_TRACE(tc.name);
    const auto off = run(false, tc.method, tc.n_groups);
    const auto on = run(true, tc.method, tc.n_groups);
    ASSERT_EQ(on.size(), off.size());
    for (std::size_t i = 0; i < on.size(); ++i) {
      ASSERT_EQ(std::memcmp(&on[i], &off[i], sizeof(Particle)), 0)
          << "overlap ON diverged from OFF at particle " << i;
    }
  }

  // The switch is scheduling, not physics: checkpoints written with one
  // setting must restore under the other, so it stays out of the
  // fingerprint.
  auto cfg_on = test_config({2, 2, 2});
  auto cfg_off = cfg_on;
  cfg_on.overlap = true;
  EXPECT_EQ(config_fingerprint(cfg_on), config_fingerprint(cfg_off));
}

// ------------------------------------------------------------- donation --

namespace {

struct DonationRun {
  std::vector<Particle> particles;                      // sorted by id
  std::vector<domain::DonationTransfer> transfers;      // rank 0's view, all steps
  std::uint64_t donated_groups = 0;                     // global sum, all steps
};

/// Run a clustered IC on 8 ranks with an aggressive donation trigger so
/// tail-group export actually fires, and collect everything a determinism
/// check needs.
DonationRun donation_run(const std::vector<Particle>& initial, bool donation_enabled) {
  DonationRun out;
  std::mutex mu;
  parx::run_ranks(8, [&](parx::Comm& world) {
    std::vector<Particle> local = world.rank() == 0 ? initial : std::vector<Particle>{};
    auto cfg = test_config({2, 2, 2});
    cfg.cost_metric = CostMetric::kInteractions;  // deterministic schedule
    cfg.sampling.target_samples = 4000;
    cfg.donation.enabled = donation_enabled;
    cfg.donation.trigger = 1.01;  // donate on any predicted tail
    cfg.donation.min_transfer_interactions = 64;
    ParallelSimulation sim(world, cfg, std::move(local), 0.0);
    for (int s = 1; s <= 3; ++s) {
      sim.step(s * 0.002);
      std::uint64_t mine = sim.last_step().donated_groups;
      world.allreduce_sum(std::span<std::uint64_t>(&mine, 1));
      if (world.rank() == 0) {
        std::lock_guard lock(mu);
        const auto& rep = sim.last_step();
        out.transfers.insert(out.transfers.end(), rep.donation_transfers.begin(),
                             rep.donation_transfers.end());
        out.donated_groups += mine;
      }
    }
    sim.synchronize();
    std::lock_guard lock(mu);
    const auto loc = sim.local();
    out.particles.insert(out.particles.end(), loc.begin(), loc.end());
  });
  std::sort(out.particles.begin(), out.particles.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
  return out;
}

}  // namespace

TEST(ParallelSim, DonationIsBitwiseDeterministicAcrossThreadCounts) {
  // Work donation relocates group evaluations to other ranks; under the
  // interaction-count cost metric the donor->donee assignment and every
  // accumulated acceleration must be identical whatever the intra-rank
  // thread count is.
  auto initial = with_velocities(clustered_particles(3000, 1.0, 2, 0.8, 0.03, 61), 62);
  const std::size_t hw = num_threads();
  set_num_threads(1);
  const auto serial = donation_run(initial, true);
  set_num_threads(4);
  const auto threaded = donation_run(initial, true);
  set_num_threads(hw);

  // The clustered IC with an aggressive trigger must actually donate,
  // otherwise this test proves nothing.
  EXPECT_GT(serial.donated_groups, 0u) << "donation never fired; test is vacuous";

  // Identical donor->donee plans...
  ASSERT_EQ(serial.transfers.size(), threaded.transfers.size());
  for (std::size_t i = 0; i < serial.transfers.size(); ++i) {
    EXPECT_EQ(serial.transfers[i].donor, threaded.transfers[i].donor) << i;
    EXPECT_EQ(serial.transfers[i].donee, threaded.transfers[i].donee) << i;
    EXPECT_EQ(serial.transfers[i].interactions, threaded.transfers[i].interactions) << i;
  }
  EXPECT_EQ(serial.donated_groups, threaded.donated_groups);

  // ...and bitwise-identical dynamics.
  ASSERT_EQ(serial.particles.size(), threaded.particles.size());
  for (std::size_t i = 0; i < serial.particles.size(); ++i) {
    ASSERT_EQ(std::memcmp(&serial.particles[i], &threaded.particles[i], sizeof(Particle)), 0)
        << "thread counts diverged at particle " << i;
  }
}

TEST(ParallelSim, DonationOnAndOffAreBitwiseIdentical) {
  // Donation only moves WHERE a group's far-field sum runs, never what it
  // computes: with the deterministic cost metric, enabled vs disabled runs
  // must agree bitwise even though donation actually fires.
  auto initial = with_velocities(clustered_particles(3000, 1.0, 2, 0.8, 0.03, 71), 72);
  const auto on = donation_run(initial, true);
  const auto off = donation_run(initial, false);
  EXPECT_GT(on.donated_groups, 0u) << "donation never fired; test is vacuous";
  EXPECT_EQ(off.donated_groups, 0u);
  ASSERT_EQ(on.particles.size(), off.particles.size());
  for (std::size_t i = 0; i < on.particles.size(); ++i) {
    ASSERT_EQ(std::memcmp(&on.particles[i], &off.particles[i], sizeof(Particle)), 0)
        << "donation ON diverged from OFF at particle " << i;
  }

  // Donation is scheduling, not physics: it stays out of the checkpoint
  // fingerprint.  The sampling mode (v1 vs v2) changes the cuts and hence
  // the dynamics, so it must be IN the fingerprint.
  auto cfg_on = test_config({2, 2, 2});
  auto cfg_off = cfg_on;
  cfg_on.donation.enabled = true;
  cfg_off.donation.enabled = false;
  EXPECT_EQ(config_fingerprint(cfg_on), config_fingerprint(cfg_off));
  auto cfg_v1 = cfg_on;
  cfg_v1.lb_mode = LoadBalanceMode::kRankCost;
  EXPECT_NE(config_fingerprint(cfg_on), config_fingerprint(cfg_v1));
}

// ------------------------------------------------------------- sentinel --

TEST(Sentinel, CatchesNaNPoisoningOnEveryRank) {
  auto initial = with_velocities(random_uniform_particles(300, 1.0, 21), 22);
  std::atomic<int> violations{0};
  parx::run_ranks(4, [&](parx::Comm& world) {
    std::vector<Particle> local = world.rank() == 0 ? initial : std::vector<Particle>{};
    ParallelSimulation sim(world, test_config({2, 2, 1}), std::move(local), 0.0);
    sim.step(0.002);
    // Flip one mass to NaN on one rank: the kick poisons that particle's
    // momentum; the sentinel's global non-finite scrub must fire on ALL
    // ranks together (it compares the same allreduced tally).
    if (world.rank() == 1) {
      auto mine = sim.local_mutable();
      ASSERT_FALSE(mine.empty());
      mine[0].mass = std::numeric_limits<double>::quiet_NaN();
    }
    try {
      sim.step(0.004);
      ADD_FAILURE() << "sentinel missed NaN corruption on rank " << world.rank();
    } catch (const SentinelError& e) {
      EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos) << e.what();
      violations.fetch_add(1);
    }
  });
  EXPECT_EQ(violations.load(), 4) << "the sentinel throw must be collective";
}

TEST(Sentinel, CatchesMassDriftAndRecoveryRollsItBack) {
  const std::string dir = testing::TempDir() + "/sentinel_rollback";
  std::filesystem::remove_all(dir);
  auto initial = with_velocities(random_uniform_particles(300, 1.0, 31), 32);
  const double dt = 0.002;
  // Bitwise comparison needs the deterministic load-balance cost metric.
  auto cfg = test_config({2, 1, 1});
  cfg.cost_metric = CostMetric::kInteractions;

  // Reference: the same schedule with no corruption.
  std::mutex ref_mu;
  std::vector<Particle> expected;
  parx::run_ranks(2, [&](parx::Comm& world) {
    std::vector<Particle> local = world.rank() == 0 ? initial : std::vector<Particle>{};
    ParallelSimulation sim(world, cfg, std::move(local), 0.0);
    for (int s = 1; s <= 3; ++s) sim.step(s * dt);
    sim.synchronize();
    std::lock_guard lock(ref_mu);
    const auto loc = sim.local();
    expected.insert(expected.end(), loc.begin(), loc.end());
  });
  std::sort(expected.begin(), expected.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });

  std::atomic<int> violations{0};
  std::mutex mu;
  std::vector<Particle> collected;
  parx::run_ranks(2, [&](parx::Comm& world) {
    std::vector<Particle> local = world.rank() == 0 ? initial : std::vector<Particle>{};
    ParallelSimulation sim(world, cfg, std::move(local), 0.0);
    sim.step(1 * dt);
    sim.checkpoint(dir, /*keep_last=*/2);
    // Silently grow one particle's mass (the bit-flip-past-the-CRC model).
    if (world.rank() == 0) {
      auto mine = sim.local_mutable();
      ASSERT_FALSE(mine.empty());
      mine[0].mass *= 1.5;
    }
    try {
      sim.step(2 * dt);
      ADD_FAILURE() << "sentinel missed mass drift on rank " << world.rank();
    } catch (const SentinelError& e) {
      EXPECT_NE(std::string(e.what()).find("mass"), std::string::npos) << e.what();
      violations.fetch_add(1);
    }
    // Standard rollback-recovery path: rendezvous, restore, retry.
    world.fault_recover();
    const auto latest = ckpt::find_latest(dir);
    ASSERT_TRUE(latest.has_value());
    sim.restore_checkpoint(*latest);
    sim.step(2 * dt);
    sim.step(3 * dt);
    sim.synchronize();
    std::lock_guard lock(mu);
    const auto loc = sim.local();
    collected.insert(collected.end(), loc.begin(), loc.end());
  });
  EXPECT_EQ(violations.load(), 2);
  std::sort(collected.begin(), collected.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
  ASSERT_EQ(collected.size(), expected.size());
  for (std::size_t i = 0; i < collected.size(); ++i) {
    EXPECT_EQ(std::memcmp(&collected[i], &expected[i], sizeof(Particle)), 0)
        << "post-rollback state diverged at particle " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(Sentinel, DisabledSentinelLetsCorruptionThrough) {
  auto initial = with_velocities(random_uniform_particles(200, 1.0, 41), 42);
  parx::run_ranks(2, [&](parx::Comm& world) {
    std::vector<Particle> local = world.rank() == 0 ? initial : std::vector<Particle>{};
    auto cfg = test_config({2, 1, 1});
    cfg.sentinel.every = 0;
    ParallelSimulation sim(world, cfg, std::move(local), 0.0);
    sim.step(0.002);
    if (world.rank() == 0) {
      auto mine = sim.local_mutable();
      ASSERT_FALSE(mine.empty());
      mine[0].mass *= 1.5;
    }
    EXPECT_NO_THROW(sim.step(0.004));
  });
}

}  // namespace
}  // namespace greem::core
