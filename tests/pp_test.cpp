// Tests of the force-split functions and the PP kernels: paper eq. (3)
// against direct numerical integration of the S2-S2 interaction, the
// k-space shape factor, the approximate rsqrt accuracy, and the phantom
// kernel against the exact scalar kernel.

#include <gtest/gtest.h>

#include <cmath>

#include "pp/cutoff.hpp"
#include "pp/kernels.hpp"
#include "util/rng.hpp"

namespace greem::pp {
namespace {

TEST(Cutoff, BoundaryValues) {
  EXPECT_DOUBLE_EQ(g_p3m(0.0), 1.0);
  EXPECT_NEAR(g_p3m(2.0), 0.0, 1e-14);
  EXPECT_DOUBLE_EQ(g_p3m(2.5), 0.0);
  EXPECT_DOUBLE_EQ(g_p3m(100.0), 0.0);
}

TEST(Cutoff, ContinuousAndSmoothAtBranchPoint) {
  // The zeta branch at xi = 1 must keep value and slope continuous.
  const double eps = 1e-7;
  EXPECT_NEAR(g_p3m(1.0 - eps), g_p3m(1.0 + eps), 1e-6);
  const double dl = (g_p3m(1.0) - g_p3m(1.0 - eps)) / eps;
  const double dr = (g_p3m(1.0 + eps) - g_p3m(1.0)) / eps;
  EXPECT_NEAR(dl, dr, 1e-5);
}

TEST(Cutoff, MonotonicallyDecreasing) {
  double prev = g_p3m(0.0);
  for (double xi = 0.01; xi <= 2.0; xi += 0.01) {
    const double g = g_p3m(xi);
    EXPECT_LE(g, prev + 1e-12) << "at xi = " << xi;
    prev = g;
  }
}

class CutoffVsQuadrature : public ::testing::TestWithParam<double> {};

TEST_P(CutoffVsQuadrature, Eq3MatchesS2S2ForceIntegral) {
  // Paper: eq. (3) is the complement of the force between two S2 spheres
  // evaluated by direct spatial integration.
  const double xi = GetParam();
  EXPECT_NEAR(g_p3m(xi), g_p3m_reference(xi), 2e-6) << "xi = " << xi;
}

INSTANTIATE_TEST_SUITE_P(Samples, CutoffVsQuadrature,
                         ::testing::Values(0.1, 0.3, 0.5, 0.8, 1.0, 1.2, 1.5, 1.8, 1.95));

TEST(Cutoff, S2FourierLimitsAndSeries) {
  EXPECT_NEAR(s2_fourier(1e-8), 1.0, 1e-12);
  // Series/exact crossover continuity (evaluate both branches at the
  // same point up to the last ulp around the threshold u = 0.2).
  EXPECT_NEAR(s2_fourier(0.2 - 1e-12), s2_fourier(0.2 + 1e-12), 1e-10);
  // Large-u falloff.
  EXPECT_LT(std::abs(s2_fourier(100.0)), 1e-3);
  // Known value check via independent evaluation at u = 2.
  const double u = 2.0;
  EXPECT_NEAR(s2_fourier(u), 12.0 * (2.0 - 2.0 * std::cos(u) - u * std::sin(u)) / 16.0, 1e-14);
}

TEST(Cutoff, EnclosedMassFraction) {
  EXPECT_DOUBLE_EQ(s2_enclosed_mass_fraction(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s2_enclosed_mass_fraction(1.0), 1.0);
  EXPECT_DOUBLE_EQ(s2_enclosed_mass_fraction(2.0), 1.0);
  EXPECT_NEAR(s2_enclosed_mass_fraction(0.5), 0.125 * (4 - 1.5), 1e-14);
  // Monotone.
  for (double s = 0.05; s < 1.0; s += 0.05)
    EXPECT_GT(s2_enclosed_mass_fraction(s + 0.05), s2_enclosed_mass_fraction(s));
}

TEST(Cutoff, PotentialCutoffConsistentWithForce) {
  // f = -d phi / dr with phi = -h(2r/rcut)/r and f = g(2r/rcut)/r^2
  // => g(xi) = h(xi) - xi h'(xi).
  for (double xi : {0.2, 0.5, 0.9, 1.1, 1.5, 1.9}) {
    const double d = 1e-5;
    const double hp = (h_p3m(xi + d) - h_p3m(xi - d)) / (2 * d);
    EXPECT_NEAR(g_p3m(xi), h_p3m(xi) - xi * hp, 1e-5) << "xi = " << xi;
  }
}

TEST(Cutoff, PotentialBoundaries) {
  EXPECT_DOUBLE_EQ(h_p3m(2.0), 0.0);
  EXPECT_DOUBLE_EQ(h_p3m(3.0), 0.0);
  EXPECT_NEAR(h_p3m(1e-6), 1.0, 1e-5);
}

TEST(Rsqrt, ApproximationReaches24Bits) {
  Rng rng(1);
  double max_rel = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = std::exp(rng.uniform(-20.0, 20.0));
    const double approx = approx_rsqrt(x);
    const double exact = 1.0 / std::sqrt(x);
    max_rel = std::max(max_rel, std::abs(approx - exact) / exact);
  }
  // Paper: 8-bit seed + third-order step -> 24-bit accuracy.
  EXPECT_LT(max_rel, std::pow(2.0, -24));
}

TEST(InteractionList, PadRoundsToFour) {
  InteractionList list;
  list.add({0, 0, 0}, 1.0);
  list.pad4();
  EXPECT_EQ(list.size(), 4u);
  EXPECT_EQ(list.m[1], 0.0);
  list.add({1, 1, 1}, 2.0);
  list.pad4();
  EXPECT_EQ(list.size(), 8u);
}

TEST(Kernels, ScalarMatchesAnalyticPair) {
  // One source at distance r: |a| = m g(2r/rcut) / r^2 (eps = 0 variant via
  // tiny eps).
  InteractionList list;
  list.add({0.3, 0.0, 0.0}, 2.0);
  const std::vector<Vec3> xi{{0.0, 0.0, 0.0}};
  std::vector<Vec3> acc(1);
  const double rcut = 1.0;
  pp_kernel_scalar(xi, acc, list, rcut, 0.0);
  const double expected = 2.0 * g_p3m(0.6) / (0.3 * 0.3);
  EXPECT_NEAR(acc[0].x, expected, 1e-12);
  EXPECT_NEAR(acc[0].y, 0.0, 1e-15);
}

TEST(Kernels, PhantomMatchesScalar) {
  Rng rng(17);
  const std::size_t ni = 37, nj = 101;
  std::vector<Vec3> xi(ni);
  for (auto& p : xi) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  InteractionList list;
  for (std::size_t j = 0; j < nj; ++j)
    list.add({rng.uniform(), rng.uniform(), rng.uniform()}, rng.uniform(0.5, 2.0));

  const double rcut = 0.4, eps2 = 1e-6;
  std::vector<Vec3> a_scalar(ni), a_phantom(ni);
  pp_kernel_scalar(xi, a_scalar, list, rcut, eps2);
  list.pad4();
  pp_kernel_phantom(xi, a_phantom, list, rcut, eps2);
  for (std::size_t i = 0; i < ni; ++i) {
    // Error budget: the ~24-bit approximate rsqrt, relative to the
    // acceleration magnitude (individual near-neighbor terms dominate).
    const double scale = std::max(1.0, a_scalar[i].norm());
    EXPECT_NEAR(a_phantom[i].x, a_scalar[i].x, 5e-7 * scale);
    EXPECT_NEAR(a_phantom[i].y, a_scalar[i].y, 5e-7 * scale);
    EXPECT_NEAR(a_phantom[i].z, a_scalar[i].z, 5e-7 * scale);
  }
}

TEST(Kernels, EveryPhantomVariantMatchesScalar) {
  // Deliberately ni % 4 != 0 and nj % 4 != 0: exercises the i-tail of the
  // blocked kernels and the padded j-tail in the same run.
  Rng rng(91);
  const std::size_t ni = 37, nj = 101;
  std::vector<Vec3> xi(ni);
  for (auto& p : xi) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  InteractionList list;
  for (std::size_t j = 0; j < nj; ++j)
    list.add({rng.uniform(), rng.uniform(), rng.uniform()}, rng.uniform(0.5, 2.0));

  const double rcut = 0.4, eps2 = 1e-6;
  std::vector<Vec3> a_scalar(ni);
  pp_kernel_scalar(xi, a_scalar, list, rcut, eps2);
  list.pad4();
  for (const PhantomVariant v :
       {PhantomVariant::kBasic, PhantomVariant::kBlocked, PhantomVariant::kBlockedAvx2,
        PhantomVariant::kBlockedAvx512}) {
    if (!phantom_variant_available(v)) continue;
    std::vector<Vec3> a(ni);
    pp_kernel_phantom_variant(v, xi, a, list, rcut, eps2);
    for (std::size_t i = 0; i < ni; ++i) {
      const double scale = std::max(1.0, a_scalar[i].norm());
      EXPECT_NEAR(a[i].x, a_scalar[i].x, 5e-7 * scale) << phantom_variant_name(v);
      EXPECT_NEAR(a[i].y, a_scalar[i].y, 5e-7 * scale) << phantom_variant_name(v);
      EXPECT_NEAR(a[i].z, a_scalar[i].z, 5e-7 * scale) << phantom_variant_name(v);
    }
  }
}

TEST(Kernels, PhantomDispatchResolvesToAvailableVariant) {
  const PhantomVariant d = phantom_dispatch();
  EXPECT_NE(d, PhantomVariant::kAuto);
  EXPECT_TRUE(phantom_variant_available(d));

  // Overrides resolve to something runnable (kAuto included), and the
  // original dispatch can be restored.
  set_phantom_variant(PhantomVariant::kBasic);
  EXPECT_EQ(phantom_dispatch(), PhantomVariant::kBasic);
  set_phantom_variant(PhantomVariant::kAuto);
  EXPECT_NE(phantom_dispatch(), PhantomVariant::kAuto);
  EXPECT_TRUE(phantom_variant_available(phantom_dispatch()));
  set_phantom_variant(d);
  EXPECT_EQ(phantom_dispatch(), d);
}

TEST(Kernels, SelfInteractionIsZero) {
  const std::vector<Vec3> xi{{0.5, 0.5, 0.5}};
  InteractionList list;
  list.add({0.5, 0.5, 0.5}, 3.0);
  list.pad4();
  std::vector<Vec3> acc(1);
  pp_kernel_phantom(xi, acc, list, 0.3, 1e-8);
  EXPECT_DOUBLE_EQ(acc[0].x, 0.0);
  EXPECT_DOUBLE_EQ(acc[0].y, 0.0);
  EXPECT_DOUBLE_EQ(acc[0].z, 0.0);
}

TEST(Kernels, CutoffKillsDistantSources) {
  const std::vector<Vec3> xi{{0.0, 0.0, 0.0}};
  InteractionList list;
  list.add({0.5, 0.0, 0.0}, 10.0);  // beyond rcut = 0.4
  list.pad4();
  std::vector<Vec3> acc(1);
  pp_kernel_phantom(xi, acc, list, 0.4, 1e-10);
  // The branchless clamp evaluates the polynomial at the edge xi = 2 where
  // it is analytically zero; floating point leaves an O(1e-16) residue.
  EXPECT_NEAR(acc[0].x, 0.0, 1e-12);
  std::vector<Vec3> acc2(1);
  pp_kernel_scalar(xi, acc2, list, 0.4, 1e-10);
  EXPECT_DOUBLE_EQ(acc2[0].x, 0.0);
}

TEST(Kernels, NewtonMatchesInverseSquare) {
  InteractionList list;
  list.add({0.0, 0.2, 0.0}, 4.0);
  const std::vector<Vec3> xi{{0.0, 0.0, 0.0}};
  std::vector<Vec3> acc(1);
  pp_kernel_newton(xi, acc, list, 0.0);
  EXPECT_NEAR(acc[0].y, 4.0 / 0.04, 1e-9);
}

TEST(Kernels, NewtonSkipsExactSelfWithZeroSoftening) {
  const std::vector<Vec3> xi{{0.1, 0.2, 0.3}};
  InteractionList list;
  list.add({0.1, 0.2, 0.3}, 1.0);
  std::vector<Vec3> acc(1);
  pp_kernel_newton(xi, acc, list, 0.0);
  EXPECT_TRUE(std::isfinite(acc[0].x));
  EXPECT_DOUBLE_EQ(acc[0].x, 0.0);
}

TEST(Kernels, PotentialMatchesAnalyticPair) {
  InteractionList list;
  list.add({0.25, 0.0, 0.0}, 3.0);
  const std::vector<Vec3> xi{{0.0, 0.0, 0.0}};
  std::vector<double> pot(1, 0.0);
  const double rcut = 1.0;
  pp_potential_scalar(xi, pot, list, rcut, 0.0);
  EXPECT_NEAR(pot[0], -3.0 * h_p3m(0.5) / 0.25, 1e-9);
}

TEST(Kernels, SofteningRegularizesCloseEncounters) {
  InteractionList list;
  list.add({1e-8, 0.0, 0.0}, 1.0);
  const std::vector<Vec3> xi{{0.0, 0.0, 0.0}};
  std::vector<Vec3> acc(1);
  const double eps2 = 1e-6;
  pp_kernel_scalar(xi, acc, list, 1.0, eps2);
  // Plummer-softened: |a| ~ m * dx / eps^3 for dx << eps.
  EXPECT_NEAR(acc[0].x, 1e-8 / std::pow(1e-6, 1.5), 1e-3 * acc[0].x + 1e-12);
}


TEST(Kernels, SinglePrecisionPhantomTracksScalar) {
  Rng rng(31);
  const std::size_t ni = 64, nj = 512;
  std::vector<Vec3> xi(ni);
  // A compact group, as the traversal provides (targets share a cell).
  for (auto& p : xi)
    p = {0.4 + rng.uniform(0.0, 0.05), 0.3 + rng.uniform(0.0, 0.05),
         0.6 + rng.uniform(0.0, 0.05)};
  InteractionList list;
  for (std::size_t j = 0; j < nj; ++j)
    list.add({rng.uniform(0.2, 0.8), rng.uniform(0.1, 0.6), rng.uniform(0.4, 0.9)},
             rng.uniform(0.5, 2.0));
  const double rcut = 0.3, eps2 = 1e-6;

  std::vector<Vec3> ref(ni), sp(ni);
  pp_kernel_scalar(xi, ref, list, rcut, eps2);
  list.pad4();
  pp_kernel_phantom_sp(xi, sp, list, rcut, eps2);
  for (std::size_t i = 0; i < ni; ++i) {
    const double scale = std::max(1.0, ref[i].norm());
    EXPECT_NEAR(sp[i].x, ref[i].x, 5e-4 * scale);
    EXPECT_NEAR(sp[i].y, ref[i].y, 5e-4 * scale);
    EXPECT_NEAR(sp[i].z, ref[i].z, 5e-4 * scale);
  }
}

TEST(Kernels, SinglePrecisionHandlesSelfAndPadding) {
  const std::vector<Vec3> xi{{0.5, 0.5, 0.5}};
  InteractionList list;
  list.add({0.5, 0.5, 0.5}, 3.0);  // self
  list.pad4();                      // far-away massless padding
  std::vector<Vec3> acc(1);
  pp_kernel_phantom_sp(xi, acc, list, 0.3, 1e-8);
  EXPECT_NEAR(acc[0].norm(), 0.0, 1e-10);
}

}  // namespace
}  // namespace greem::pp
