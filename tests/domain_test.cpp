// Domain decomposition tests: multi-section geometry, equal-count cuts,
// cost-weighted sampling, boundary smoothing, and particle exchange.

#include <gtest/gtest.h>

#include <cmath>

#include "core/particle.hpp"
#include "domain/exchange.hpp"
#include "domain/multisection.hpp"
#include "domain/sampling.hpp"
#include "parx/runtime.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace greem::domain {
namespace {

std::vector<Vec3> uniform_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> out(n);
  for (auto& p : out) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  return out;
}

TEST(Decomposition, UniformGridGeometry) {
  const auto d = Decomposition::uniform({2, 3, 4});
  EXPECT_EQ(d.nranks(), 24);
  const Box b = d.box_of(d.rank_of(1, 2, 3));
  EXPECT_DOUBLE_EQ(b.lo.x, 0.5);
  EXPECT_DOUBLE_EQ(b.lo.y, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(b.lo.z, 0.75);
  EXPECT_DOUBLE_EQ(b.hi.z, 1.0);
}

TEST(Decomposition, RankCoordsRoundtrip) {
  const auto d = Decomposition::uniform({3, 2, 5});
  for (int r = 0; r < d.nranks(); ++r) {
    const auto c = d.coords_of(r);
    EXPECT_EQ(d.rank_of(c[0], c[1], c[2]), r);
  }
}

TEST(Decomposition, BoxesTileTheUnitCube) {
  const auto samples = uniform_samples(5000, 1);
  const auto d = build_multisection({3, 2, 2}, samples);
  double vol = 0;
  for (const auto& b : d.boxes()) vol += b.volume();
  EXPECT_NEAR(vol, 1.0, 1e-9);
  // Every point maps to exactly the box containing it.
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const Vec3 p{rng.uniform(), rng.uniform(), rng.uniform()};
    const int r = d.find_domain(p);
    EXPECT_TRUE(d.box_of(r).contains(p));
  }
}

TEST(Decomposition, FlattenRoundtrip) {
  const auto samples = uniform_samples(2000, 3);
  const auto d = build_multisection({2, 3, 2}, samples);
  const auto flat = d.flatten();
  const auto d2 = Decomposition::unflatten({2, 3, 2}, flat);
  for (int r = 0; r < d.nranks(); ++r) {
    EXPECT_DOUBLE_EQ(d.box_of(r).lo.x, d2.box_of(r).lo.x);
    EXPECT_DOUBLE_EQ(d.box_of(r).hi.y, d2.box_of(r).hi.y);
    EXPECT_DOUBLE_EQ(d.box_of(r).lo.z, d2.box_of(r).lo.z);
  }
}

TEST(Multisection, EqualCountsForUniformSamples) {
  const auto samples = uniform_samples(40000, 4);
  const auto d = build_multisection({4, 2, 2}, samples);
  std::vector<double> counts(static_cast<std::size_t>(d.nranks()), 0.0);
  for (const auto& p : samples) counts[static_cast<std::size_t>(d.find_domain(p))] += 1;
  const auto s = summarize(counts);
  EXPECT_LT(s.imbalance(), 1.1);
}

TEST(Multisection, ClusteredSamplesShrinkHotDomains) {
  // Dense Plummer clump: the domain containing the clump center must be
  // much smaller than the uniform-grid cell (paper Fig. 3 behaviour).
  auto ps = core::plummer_particles(20000, 1.0, {0.5, 0.5, 0.5}, 0.02, 5);
  std::vector<Vec3> samples;
  for (const auto& p : ps) samples.push_back(p.pos);
  const auto d = build_multisection({4, 4, 4}, samples);
  const int hot = d.find_domain({0.5, 0.5, 0.5});
  EXPECT_LT(d.box_of(hot).volume(), 0.3 / 64.0);
  // Sample counts stay balanced even though volumes differ wildly.
  std::vector<double> counts(static_cast<std::size_t>(d.nranks()), 0.0);
  for (const auto& p : samples) counts[static_cast<std::size_t>(d.find_domain(p))] += 1;
  EXPECT_LT(summarize(counts).imbalance(), 1.5);
}

TEST(Multisection, HandlesFewerSamplesThanDomains) {
  const auto d = build_multisection({4, 4, 4}, uniform_samples(10, 6));
  double vol = 0;
  for (const auto& b : d.boxes()) {
    EXPECT_GT(b.volume(), 0.0);
    vol += b.volume();
  }
  EXPECT_NEAR(vol, 1.0, 1e-9);
}

TEST(Smoother, ConvergesToStationaryBoundaries) {
  BoundarySmoother smoother(5);
  const auto fixed = Decomposition::uniform({2, 2, 2});
  Decomposition out = fixed;
  for (int i = 0; i < 10; ++i) out = smoother.smooth(fixed);
  for (std::size_t i = 0; i < fixed.xcuts.size(); ++i)
    EXPECT_NEAR(out.xcuts[i], fixed.xcuts[i], 1e-12);
}

TEST(Smoother, DampsSingleStepJumps) {
  BoundarySmoother smoother(5);
  auto a = Decomposition::uniform({2, 1, 1});
  smoother.smooth(a);
  // Jump the middle x cut from 0.5 to 0.7: the smoothed cut must move
  // toward 0.7 but by less than the full jump.
  auto b = a;
  b.xcuts[1] = 0.7;
  const auto out = smoother.smooth(b);
  EXPECT_GT(out.xcuts[1], 0.5);
  EXPECT_LT(out.xcuts[1], 0.7);
}

TEST(Smoother, KeepsCutsMonotone) {
  BoundarySmoother smoother(3);
  auto a = Decomposition::uniform({4, 1, 1});
  auto out = smoother.smooth(a);
  auto b = a;
  b.xcuts[1] = 0.4;
  b.xcuts[2] = 0.45;
  out = smoother.smooth(b);
  for (std::size_t i = 1; i < out.xcuts.size(); ++i)
    EXPECT_GT(out.xcuts[i], out.xcuts[i - 1]);
}

TEST(Sampling, CollectiveDecompositionIsConsistentAcrossRanks) {
  parx::run_ranks(4, [](parx::Comm& comm) {
    Rng rng(10 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<Vec3> local(500);
    for (auto& p : local) p = {rng.uniform(), rng.uniform(), rng.uniform()};
    SamplingParams sp;
    sp.target_samples = 400;
    const auto d = sample_and_decompose(comm, {2, 2, 1}, local, 1.0, sp, 3);
    // All ranks hold the same decomposition.
    const auto flat = d.flatten();
    auto flat0 = flat;
    comm.bcast(flat0, 0);
    for (std::size_t i = 0; i < flat.size(); ++i) EXPECT_DOUBLE_EQ(flat[i], flat0[i]);
    // And it tiles the box.
    double vol = 0;
    for (const auto& b : d.boxes()) vol += b.volume();
    EXPECT_NEAR(vol, 1.0, 1e-9);
  });
}

TEST(Sampling, CostWeightingOversamplesExpensiveRanks) {
  // Rank 0 reports 9x the cost of the others; its domain should shrink.
  parx::run_ranks(2, [](parx::Comm& comm) {
    Rng rng(20 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<Vec3> local(2000);
    for (auto& p : local) {
      // Rank 0 owns x in [0, 0.5), rank 1 the rest.
      const double x0 = comm.rank() == 0 ? 0.0 : 0.5;
      p = {x0 + 0.5 * rng.uniform(), rng.uniform(), rng.uniform()};
    }
    SamplingParams sp;
    sp.target_samples = 2000;
    const double cost = comm.rank() == 0 ? 9.0 : 1.0;
    const auto d = sample_and_decompose(comm, {2, 1, 1}, local, cost, sp, 1);
    // The x cut moves left of 0.5 so the expensive region gets less volume.
    EXPECT_LT(d.xcuts[1], 0.45);
  });
}

TEST(Exchange, RoutesParticlesToOwningRank) {
  parx::run_ranks(4, [](parx::Comm& comm) {
    const auto d = Decomposition::uniform({2, 2, 1});
    Rng rng(30 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<core::Particle> mine(100);
    for (auto& p : mine) {
      p.pos = {rng.uniform(), rng.uniform(), rng.uniform()};
      p.mass = 1.0;
      p.id = static_cast<std::uint64_t>(comm.rank()) * 1000 + rng.uniform_index(1000);
    }
    std::vector<Vec3> pos;
    for (const auto& p : mine) pos.push_back(p.pos);
    const auto dest = destinations(d, pos);
    auto mineAfter = exchange_by_rank<core::Particle>(comm, mine, dest);
    for (const auto& p : mineAfter) EXPECT_EQ(d.find_domain(p.pos), comm.rank());
    // Global particle count is conserved.
    const auto total = comm.allreduce_sum(static_cast<long>(mineAfter.size()));
    EXPECT_EQ(total, 400);
  });
}

}  // namespace
}  // namespace greem::domain
