// Domain decomposition tests: multi-section geometry, equal-count cuts,
// cost-weighted sampling, boundary smoothing, and particle exchange.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>

#include "core/particle.hpp"
#include "domain/exchange.hpp"
#include "domain/multisection.hpp"
#include "domain/sampling.hpp"
#include "parx/runtime.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace greem::domain {
namespace {

std::vector<Vec3> uniform_samples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> out(n);
  for (auto& p : out) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  return out;
}

TEST(Decomposition, UniformGridGeometry) {
  const auto d = Decomposition::uniform({2, 3, 4});
  EXPECT_EQ(d.nranks(), 24);
  const Box b = d.box_of(d.rank_of(1, 2, 3));
  EXPECT_DOUBLE_EQ(b.lo.x, 0.5);
  EXPECT_DOUBLE_EQ(b.lo.y, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(b.lo.z, 0.75);
  EXPECT_DOUBLE_EQ(b.hi.z, 1.0);
}

TEST(Decomposition, RankCoordsRoundtrip) {
  const auto d = Decomposition::uniform({3, 2, 5});
  for (int r = 0; r < d.nranks(); ++r) {
    const auto c = d.coords_of(r);
    EXPECT_EQ(d.rank_of(c[0], c[1], c[2]), r);
  }
}

TEST(Decomposition, BoxesTileTheUnitCube) {
  const auto samples = uniform_samples(5000, 1);
  const auto d = build_multisection({3, 2, 2}, samples);
  double vol = 0;
  for (const auto& b : d.boxes()) vol += b.volume();
  EXPECT_NEAR(vol, 1.0, 1e-9);
  // Every point maps to exactly the box containing it.
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const Vec3 p{rng.uniform(), rng.uniform(), rng.uniform()};
    const int r = d.find_domain(p);
    EXPECT_TRUE(d.box_of(r).contains(p));
  }
}

TEST(Decomposition, FlattenRoundtrip) {
  const auto samples = uniform_samples(2000, 3);
  const auto d = build_multisection({2, 3, 2}, samples);
  const auto flat = d.flatten();
  const auto d2 = Decomposition::unflatten({2, 3, 2}, flat);
  for (int r = 0; r < d.nranks(); ++r) {
    EXPECT_DOUBLE_EQ(d.box_of(r).lo.x, d2.box_of(r).lo.x);
    EXPECT_DOUBLE_EQ(d.box_of(r).hi.y, d2.box_of(r).hi.y);
    EXPECT_DOUBLE_EQ(d.box_of(r).lo.z, d2.box_of(r).lo.z);
  }
}

TEST(Multisection, EqualCountsForUniformSamples) {
  const auto samples = uniform_samples(40000, 4);
  const auto d = build_multisection({4, 2, 2}, samples);
  std::vector<double> counts(static_cast<std::size_t>(d.nranks()), 0.0);
  for (const auto& p : samples) counts[static_cast<std::size_t>(d.find_domain(p))] += 1;
  const auto s = summarize(counts);
  EXPECT_LT(s.imbalance(), 1.1);
}

TEST(Multisection, ClusteredSamplesShrinkHotDomains) {
  // Dense Plummer clump: the domain containing the clump center must be
  // much smaller than the uniform-grid cell (paper Fig. 3 behaviour).
  auto ps = core::plummer_particles(20000, 1.0, {0.5, 0.5, 0.5}, 0.02, 5);
  std::vector<Vec3> samples;
  for (const auto& p : ps) samples.push_back(p.pos);
  const auto d = build_multisection({4, 4, 4}, samples);
  const int hot = d.find_domain({0.5, 0.5, 0.5});
  EXPECT_LT(d.box_of(hot).volume(), 0.3 / 64.0);
  // Sample counts stay balanced even though volumes differ wildly.
  std::vector<double> counts(static_cast<std::size_t>(d.nranks()), 0.0);
  for (const auto& p : samples) counts[static_cast<std::size_t>(d.find_domain(p))] += 1;
  EXPECT_LT(summarize(counts).imbalance(), 1.5);
}

TEST(Multisection, HandlesFewerSamplesThanDomains) {
  const auto d = build_multisection({4, 4, 4}, uniform_samples(10, 6));
  double vol = 0;
  for (const auto& b : d.boxes()) {
    EXPECT_GT(b.volume(), 0.0);
    vol += b.volume();
  }
  EXPECT_NEAR(vol, 1.0, 1e-9);
}

TEST(Smoother, ConvergesToStationaryBoundaries) {
  BoundarySmoother smoother(5);
  const auto fixed = Decomposition::uniform({2, 2, 2});
  Decomposition out = fixed;
  for (int i = 0; i < 10; ++i) out = smoother.smooth(fixed);
  for (std::size_t i = 0; i < fixed.xcuts.size(); ++i)
    EXPECT_NEAR(out.xcuts[i], fixed.xcuts[i], 1e-12);
}

TEST(Smoother, DampsSingleStepJumps) {
  BoundarySmoother smoother(5);
  auto a = Decomposition::uniform({2, 1, 1});
  smoother.smooth(a);
  // Jump the middle x cut from 0.5 to 0.7: the smoothed cut must move
  // toward 0.7 but by less than the full jump.
  auto b = a;
  b.xcuts[1] = 0.7;
  const auto out = smoother.smooth(b);
  EXPECT_GT(out.xcuts[1], 0.5);
  EXPECT_LT(out.xcuts[1], 0.7);
}

TEST(Smoother, KeepsCutsMonotone) {
  BoundarySmoother smoother(3);
  auto a = Decomposition::uniform({4, 1, 1});
  auto out = smoother.smooth(a);
  auto b = a;
  b.xcuts[1] = 0.4;
  b.xcuts[2] = 0.45;
  out = smoother.smooth(b);
  for (std::size_t i = 1; i < out.xcuts.size(); ++i)
    EXPECT_GT(out.xcuts[i], out.xcuts[i - 1]);
}

TEST(Smoother, HistoryRoundTripIsBitwise) {
  // Checkpoint support: a smoother rebuilt from history()/set_history()
  // must continue bitwise-identically to the original.
  BoundarySmoother a(5);
  auto d = Decomposition::uniform({2, 2, 2});
  a.smooth(d);
  d.xcuts[1] = 0.43;
  a.smooth(d);
  d.xcuts[1] = 0.57;
  a.smooth(d);

  BoundarySmoother b(5);
  b.set_history(a.history());

  auto next = Decomposition::uniform({2, 2, 2});
  next.xcuts[1] = 0.51;
  const auto fa = a.smooth(next).flatten();
  const auto fb = b.smooth(next).flatten();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i)
    EXPECT_EQ(std::memcmp(&fa[i], &fb[i], sizeof(double)), 0) << "cut " << i;
}

// --------------------------------------------------------- apportionment --

TEST(Apportionment, TotalsAreExact) {
  // Regression: per-rank llround() drifted the gathered total by a few
  // samples; largest-remainder apportionment must hit the target exactly.
  const std::vector<double> w{3.0, 1.0, 0.25, 5.5, 2.2};
  const std::vector<std::size_t> cap{100, 100, 100, 100, 100};
  for (std::size_t target : {1u, 7u, 37u, 100u, 499u}) {
    const auto q = apportion_samples(w, cap, target);
    EXPECT_EQ(std::accumulate(q.begin(), q.end(), std::size_t{0}), target) << target;
  }
  // Deterministic.
  const auto q1 = apportion_samples(w, cap, 37);
  const auto q2 = apportion_samples(w, cap, 37);
  EXPECT_EQ(q1, q2);
}

TEST(Apportionment, ZeroCostRankWithParticlesIsNeverStarved) {
  // Regression: a rank whose measured cost rounds to zero contributed no
  // samples, so its boundaries could never move.
  const std::vector<double> w{10.0, 0.0, 10.0};
  const std::vector<std::size_t> cap{50, 50, 50};
  const auto q = apportion_samples(w, cap, 20);
  EXPECT_GE(q[1], 1u);
  EXPECT_EQ(q[0] + q[1] + q[2], 20u);
  // But a rank with no particles gets nothing.
  const std::vector<std::size_t> cap2{50, 0, 50};
  const auto q2 = apportion_samples(w, cap2, 20);
  EXPECT_EQ(q2[1], 0u);
  EXPECT_EQ(q2[0] + q2[2], 20u);
}

TEST(Apportionment, RespectsCapacitiesAndSaturates) {
  // A huge weight cannot draw more samples than the rank has particles;
  // the overflow spills to the other ranks.
  const std::vector<double> w{1000.0, 1.0, 1.0};
  const std::vector<std::size_t> cap{3, 50, 50};
  const auto q = apportion_samples(w, cap, 40);
  EXPECT_EQ(q[0], 3u);
  EXPECT_EQ(q[0] + q[1] + q[2], 40u);
  // Target beyond the global capacity saturates at sum(cap).
  const std::vector<std::size_t> small{5, 7, 2};
  const auto qs = apportion_samples(w, small, 1000);
  EXPECT_EQ(qs[0], 5u);
  EXPECT_EQ(qs[1], 7u);
  EXPECT_EQ(qs[2], 2u);
}

TEST(Apportionment, AllZeroWeightsFallBackToCapacities) {
  const std::vector<double> w{0.0, 0.0, 0.0};
  const std::vector<std::size_t> cap{10, 30, 60};
  const auto q = apportion_samples(w, cap, 50);
  EXPECT_EQ(std::accumulate(q.begin(), q.end(), std::size_t{0}), 50u);
  EXPECT_GT(q[2], q[0]);  // uniform density: bigger rank, more samples
}

// -------------------------------------------- sampling without replacement --

TEST(Sampling, WithoutReplacementIsDistinct) {
  Rng rng(99);
  const auto idx = sample_without_replacement(1000, 200, rng);
  ASSERT_EQ(idx.size(), 200u);
  for (std::size_t i = 1; i < idx.size(); ++i)
    EXPECT_LT(idx[i - 1], idx[i]);  // strictly increasing => distinct
  for (std::size_t i : idx) EXPECT_LT(i, 1000u);
  // k == n returns every index exactly once.
  Rng rng2(99);
  const auto all = sample_without_replacement(50, 50, rng2);
  ASSERT_EQ(all.size(), 50u);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(Sampling, WeightedWithoutReplacementPrefersHeavyItems) {
  std::vector<double> w(100, 1.0);
  for (std::size_t i = 0; i < 10; ++i) w[i] = 200.0;
  Rng rng(7);
  const auto idx = sample_weighted_without_replacement(w, 10, rng);
  ASSERT_EQ(idx.size(), 10u);
  for (std::size_t i = 1; i < idx.size(); ++i) EXPECT_LT(idx[i - 1], idx[i]);
  std::size_t heavy = 0;
  for (std::size_t i : idx) heavy += i < 10 ? 1 : 0;
  EXPECT_GE(heavy, 7u);
}

TEST(Sampling, FullRateSamplingGivesEqualCountCuts) {
  // Regression for the with-replacement bug: sampling every particle must
  // reproduce the particle set exactly, so the multisection cuts divide
  // the (clustered) particles almost perfectly evenly.  The old sampler
  // drew duplicates even at a 100% rate, skewing the cuts.
  parx::run_ranks(4, [](parx::Comm& comm) {
    auto ps = core::plummer_particles(3000, 1.0, {0.3, 0.3, 0.3}, 0.05,
                                      40 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<Vec3> local;
    for (const auto& p : ps) local.push_back(p.pos);
    SamplingParams sp;
    sp.target_samples = 12000;  // == global N: every particle is a sample
    const auto d = sample_and_decompose(comm, {2, 2, 1}, local, 1.0, sp, 0);
    std::vector<double> counts(4, 0.0);
    for (const auto& p : local) counts[static_cast<std::size_t>(d.find_domain(p))] += 1;
    comm.allreduce_sum(std::span<double>(counts));
    EXPECT_LT(summarize(counts).imbalance(), 1.02);
  });
}

TEST(Sampling, EmptyAndZeroWeightRanksStayConsistent) {
  // Regression for the broadcast bug: ranks contributing zero samples
  // (no particles, or all-zero weights) must still end up with the same
  // decomposition as the root.
  parx::run_ranks(4, [](parx::Comm& comm) {
    std::vector<Vec3> local;
    std::vector<double> w;
    if (comm.rank() < 2) {  // ranks 2 and 3 hold nothing at all
      Rng rng(60 + static_cast<std::uint64_t>(comm.rank()));
      local.resize(800);
      for (auto& p : local) p = {rng.uniform(), rng.uniform(), rng.uniform()};
      // Rank 1 reports all-zero weights (cold start / idle domain).
      w.assign(local.size(), comm.rank() == 0 ? 1.0 : 0.0);
    }
    SamplingParams sp;
    sp.target_samples = 500;
    const auto d = sample_and_decompose_weighted(comm, {2, 2, 1}, local, w, sp, 2);
    const auto flat = d.flatten();
    auto flat0 = flat;
    comm.bcast(flat0, 0);
    for (std::size_t i = 0; i < flat.size(); ++i) EXPECT_DOUBLE_EQ(flat[i], flat0[i]);
    double vol = 0;
    for (const auto& b : d.boxes()) vol += b.volume();
    EXPECT_NEAR(vol, 1.0, 1e-9);
  });
}

TEST(Sampling, PerParticleWeightsShrinkExpensiveRegions) {
  // Load-balance v2: both ranks hold uniform particles, but the work sits
  // at x < 0.25.  The scalar-cost path cannot see this (equal rank costs
  // leave the cut near 0.5); per-particle weights pull the cut left.
  parx::run_ranks(2, [](parx::Comm& comm) {
    Rng rng(70 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<Vec3> local(3000);
    std::vector<double> w(local.size());
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = {rng.uniform(), rng.uniform(), rng.uniform()};
      w[i] = local[i].x < 0.25 ? 20.0 : 0.05;
    }
    SamplingParams sp;
    sp.target_samples = 3000;
    const auto d = sample_and_decompose_weighted(comm, {2, 1, 1}, local, w, sp, 1);
    EXPECT_LT(d.xcuts[1], 0.4);
    const auto ds = sample_and_decompose(comm, {2, 1, 1}, local, 1.0, sp, 1);
    EXPECT_GT(ds.xcuts[1], 0.45);  // scalar cost: cut stays near the middle
  });
}

TEST(Sampling, CollectiveDecompositionIsConsistentAcrossRanks) {
  parx::run_ranks(4, [](parx::Comm& comm) {
    Rng rng(10 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<Vec3> local(500);
    for (auto& p : local) p = {rng.uniform(), rng.uniform(), rng.uniform()};
    SamplingParams sp;
    sp.target_samples = 400;
    const auto d = sample_and_decompose(comm, {2, 2, 1}, local, 1.0, sp, 3);
    // All ranks hold the same decomposition.
    const auto flat = d.flatten();
    auto flat0 = flat;
    comm.bcast(flat0, 0);
    for (std::size_t i = 0; i < flat.size(); ++i) EXPECT_DOUBLE_EQ(flat[i], flat0[i]);
    // And it tiles the box.
    double vol = 0;
    for (const auto& b : d.boxes()) vol += b.volume();
    EXPECT_NEAR(vol, 1.0, 1e-9);
  });
}

TEST(Sampling, CostWeightingOversamplesExpensiveRanks) {
  // Rank 0 reports 9x the cost of the others; its domain should shrink.
  parx::run_ranks(2, [](parx::Comm& comm) {
    Rng rng(20 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<Vec3> local(2000);
    for (auto& p : local) {
      // Rank 0 owns x in [0, 0.5), rank 1 the rest.
      const double x0 = comm.rank() == 0 ? 0.0 : 0.5;
      p = {x0 + 0.5 * rng.uniform(), rng.uniform(), rng.uniform()};
    }
    SamplingParams sp;
    sp.target_samples = 2000;
    const double cost = comm.rank() == 0 ? 9.0 : 1.0;
    const auto d = sample_and_decompose(comm, {2, 1, 1}, local, cost, sp, 1);
    // The x cut moves left of 0.5 so the expensive region gets less volume.
    EXPECT_LT(d.xcuts[1], 0.45);
  });
}

TEST(Exchange, RoutesParticlesToOwningRank) {
  parx::run_ranks(4, [](parx::Comm& comm) {
    const auto d = Decomposition::uniform({2, 2, 1});
    Rng rng(30 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<core::Particle> mine(100);
    for (auto& p : mine) {
      p.pos = {rng.uniform(), rng.uniform(), rng.uniform()};
      p.mass = 1.0;
      p.id = static_cast<std::uint64_t>(comm.rank()) * 1000 + rng.uniform_index(1000);
    }
    std::vector<Vec3> pos;
    for (const auto& p : mine) pos.push_back(p.pos);
    const auto dest = destinations(d, pos);
    auto mineAfter = exchange_by_rank<core::Particle>(comm, mine, dest);
    for (const auto& p : mineAfter) EXPECT_EQ(d.find_domain(p.pos), comm.rank());
    // Global particle count is conserved.
    const auto total = comm.allreduce_sum(static_cast<long>(mineAfter.size()));
    EXPECT_EQ(total, 400);
  });
}

}  // namespace
}  // namespace greem::domain
