// Flight-recorder and live-endpoint tests: ring wraparound stays bounded,
// concurrent writers and dumpers are race-free (this test is in the tsan
// label set), a lossy-link soak leaves matched send/recv flow pairs and
// retransmit evidence from multiple ranks in the dump, the zero-copy fast
// path stamps flows too, and the live endpoint speaks its line protocol
// over a real socket.  Everything content-related is skipped when the tree
// is built with GREEM_TELEMETRY=OFF -- the API must still compile and be
// callable as no-ops, which this file checks by existing.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "parx/comm.hpp"
#include "parx/fault.hpp"
#include "parx/runtime.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/live_endpoint.hpp"
#include "telemetry/telemetry.hpp"

namespace greem::telemetry {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::size_t count_occurrences(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

/// Flow ids of the "s" (begin) or "f" (end) halves of the Perfetto flow
/// pairs in a dump, keyed off the exact key order dump_flight_recorder
/// writes.
std::set<long long> flow_ids(const std::string& json, bool begin) {
  const std::string marker =
      begin ? std::string("\"ph\":\"s\",\"id\":") : std::string("\"bp\":\"e\",\"id\":");
  std::set<long long> ids;
  for (std::size_t pos = json.find(marker); pos != std::string::npos;
       pos = json.find(marker, pos + marker.size()))
    ids.insert(std::atoll(json.c_str() + pos + marker.size()));
  return ids;
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* stem)
      : path(std::string(::testing::TempDir()) + stem) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(FlightRecorder, WraparoundStaysBounded) {
  if (!enabled()) GTEST_SKIP() << "telemetry off";
  clear_flight_recorder();
  const std::uint64_t before = flight_event_count();
  static const char kName[] = "test/wraparound_mark";
  const std::size_t writes = kFlightRingCapacity + 1000;
  for (std::size_t i = 0; i < writes; ++i)
    flight_record_mark(kName, static_cast<std::int64_t>(i));
  EXPECT_GE(flight_event_count() - before, writes);

  TempFile f("flight_wrap.json");
  ASSERT_TRUE(dump_flight_recorder(f.path));
  const std::string json = slurp(f.path);
  // The ring keeps only the newest kFlightRingCapacity events of this
  // thread: every surviving slot is ours, and none beyond capacity.
  EXPECT_EQ(count_occurrences(json, kName), kFlightRingCapacity);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(FlightRecorder, DisarmedRecordsNothing) {
  if (!enabled()) GTEST_SKIP() << "telemetry off";
  set_flight_recorder_enabled(false);
  const std::uint64_t before = flight_event_count();
  flight_record_mark("test/disarmed");
  flight_record_frame(FrameEventKind::kSend, 0, 1, 1, 8, 42);
  EXPECT_EQ(flight_event_count(), before);
  set_flight_recorder_enabled(true);
  flight_record_mark("test/rearmed");
  EXPECT_EQ(flight_event_count(), before + 1);
}

// The tsan workhorse: several threads hammer the recorder while another
// repeatedly snapshots it.  The seqlock makes torn slots dropped events,
// never racing reads.
TEST(FlightRecorder, ConcurrentWritersAndDumps) {
  if (!enabled()) GTEST_SKIP() << "telemetry off";
  constexpr int kWriters = 4;
  constexpr int kEvents = 20000;
  TempFile f("flight_concurrent.json");
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      static const char kName[] = "test/concurrent_mark";
      for (int i = 0; i < kEvents; ++i) {
        if (i & 1)
          flight_record_mark(kName, w, i);
        else
          flight_record_frame(FrameEventKind::kSend, w, (w + 1) % kWriters,
                              static_cast<std::uint64_t>(i), 64, next_flow_id());
      }
    });
  }
  std::thread dumper([&] {
    while (!done.load(std::memory_order_acquire))
      (void)dump_flight_recorder(f.path);
  });
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  dumper.join();

  ASSERT_TRUE(dump_flight_recorder(f.path));
  const std::string json = slurp(f.path);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_GT(count_occurrences(json, "test/concurrent_mark"), 0u);
}

/// `rounds` alltoallv rounds on a fresh 4-rank runtime under `plan`.
void run_alltoallv_rounds(int rounds, const parx::FaultPlan& plan) {
  parx::Runtime rt(4);
  if (!plan.empty()) rt.set_fault_plan(plan);
  rt.run([&](parx::Comm& world) {
    const int p = world.size();
    for (int r = 0; r < rounds; ++r) {
      parx::set_fault_context(static_cast<std::uint64_t>(r) + 1, parx::FaultPhase::kPP);
      std::vector<std::vector<double>> payload(static_cast<std::size_t>(p));
      for (int j = 0; j < p; ++j)
        if (j != world.rank())
          payload[static_cast<std::size_t>(j)].assign(32, world.rank() + 0.25 * j);
      (void)world.alltoallv(std::move(payload));
    }
    parx::set_fault_context(parx::kNoFaultStep, parx::FaultPhase::kAny);
  });
}

TEST(FlightRecorder, LossySoakCapturesFrameEventsAcrossRanks) {
  if (!enabled()) GTEST_SKIP() << "telemetry off";
  clear_flight_recorder();
  parx::FaultSpec drop;
  drop.step = parx::kEveryStep;
  drop.rank = parx::kEveryRank;
  drop.kind = parx::FaultKind::kLinkDrop;
  drop.rate = 0.25;
  drop.times = parx::kUnlimited;
  run_alltoallv_rounds(100, parx::FaultPlan().at(drop));

  TempFile f("flight_lossy.json");
  ASSERT_TRUE(dump_flight_recorder(f.path));
  const std::string json = slurp(f.path);

  // Frame events from the framed transport, including retransmissions of
  // the dropped frames, on at least two rank tracks.
  EXPECT_GT(count_occurrences(json, "\"name\":\"parx/send\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"name\":\"parx/recv\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"name\":\"parx/retransmit\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"name\":\"parx/drop\""), 0u);
  EXPECT_GE(count_occurrences(json, "\"name\":\"rank "), 2u);

  // Causal pairing: some send flow ids must be matched by recv flow ids.
  const auto sends = flow_ids(json, /*begin=*/true);
  const auto recvs = flow_ids(json, /*begin=*/false);
  ASSERT_FALSE(sends.empty());
  ASSERT_FALSE(recvs.empty());
  std::size_t matched = 0;
  for (const long long id : recvs) matched += sends.count(id);
  EXPECT_GT(matched, 0u);
}

TEST(FlightRecorder, FastPathStampsFlowsToo) {
  if (!enabled()) GTEST_SKIP() << "telemetry off";
  clear_flight_recorder();
  run_alltoallv_rounds(20, parx::FaultPlan());  // no plan: zero-copy path

  TempFile f("flight_fastpath.json");
  ASSERT_TRUE(dump_flight_recorder(f.path));
  const std::string json = slurp(f.path);
  EXPECT_GT(count_occurrences(json, "\"name\":\"parx/send\""), 0u);
  EXPECT_GT(count_occurrences(json, "\"name\":\"parx/recv\""), 0u);
  const auto sends = flow_ids(json, /*begin=*/true);
  const auto recvs = flow_ids(json, /*begin=*/false);
  std::size_t matched = 0;
  for (const long long id : recvs) matched += sends.count(id);
  EXPECT_GT(matched, 0u);
}

// --- live endpoint ---------------------------------------------------------

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string read_line(int fd) {
  std::string line;
  char c = 0;
  while (::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') return line;
    line.push_back(c);
  }
  return line;  // EOF or timeout: whatever arrived
}

TEST(LiveEndpoint, HelloPublishAndMetricsRoundTrip) {
  LiveEndpoint ep;
  ASSERT_TRUE(ep.start(0));  // ephemeral port
  ASSERT_GT(ep.port(), 0);
  ASSERT_TRUE(ep.running());

  const int fd = connect_loopback(ep.port());
  ASSERT_GE(fd, 0);
  // Greeting: the hello line, then one metrics snapshot.
  const std::string hello = read_line(fd);
  EXPECT_NE(hello.find("\"type\":\"hello\""), std::string::npos) << hello;
  const std::string metrics = read_line(fd);
  EXPECT_NE(metrics.find("\"type\":\"metrics\""), std::string::npos) << metrics;

  // Broadcast path (what parallel_sim publishes per step).
  // publish() only sees clients the serve loop has accepted; the hello
  // above proves acceptance already happened.
  const std::uint64_t published0 = ep.published();
  ep.publish("{\"type\":\"step\",\"step\":7}");
  EXPECT_EQ(read_line(fd), "{\"type\":\"step\",\"step\":7}");
  EXPECT_GT(ep.published(), published0);

  // Command path: "metrics" requests a fresh snapshot.
  ASSERT_EQ(::send(fd, "metrics\n", 8, 0), 8);
  const std::string again = read_line(fd);
  EXPECT_NE(again.find("\"type\":\"metrics\""), std::string::npos) << again;

  ::close(fd);
  ep.stop();
  EXPECT_FALSE(ep.running());
  // Stopped endpoint: publish is a no-op, restart works.
  ep.publish("{\"ignored\":true}");
  ASSERT_TRUE(ep.start(0));
  ep.stop();
}

// Regression (tsan-visible): wake() used to read the wake-pipe fd with no
// synchronization against stop() closing it, so a publisher thread could
// pass the running() check and write into a closed -- or kernel-reused --
// descriptor.  Both sides now go through mu_; hammer the window.
TEST(LiveEndpoint, ConcurrentPublishDuringStopIsSafe) {
  LiveEndpoint ep;
  for (int round = 0; round < 25; ++round) {
    ASSERT_TRUE(ep.start(0));
    std::atomic<bool> go{false};
    std::thread pub([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 200; ++i) ep.publish("{\"type\":\"x\"}");
    });
    go.store(true, std::memory_order_release);
    ep.stop();
    pub.join();
  }
}

TEST(LiveEndpoint, PublishEventFormatsTypeAndDetail) {
  LiveEndpoint ep;
  ASSERT_TRUE(ep.start(0));
  const int fd = connect_loopback(ep.port());
  ASSERT_GE(fd, 0);
  (void)read_line(fd);  // hello
  (void)read_line(fd);  // metrics snapshot
  ep.publish_event("watchdog", "rank 3 blocked");
  const std::string line = read_line(fd);
  EXPECT_NE(line.find("\"type\":\"watchdog\""), std::string::npos) << line;
  EXPECT_NE(line.find("rank 3 blocked"), std::string::npos) << line;
  ::close(fd);
  ep.stop();
}

}  // namespace
}  // namespace greem::telemetry
