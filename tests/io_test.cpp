// Snapshot and CSV I/O tests.

#include <gtest/gtest.h>

#include <fstream>

#include "core/particle.hpp"
#include "analysis/fof.hpp"
#include "io/config.hpp"
#include "io/csv.hpp"
#include "io/snapshot.hpp"

namespace greem::io {
namespace {

TEST(Snapshot, RoundtripsParticles) {
  const auto ps = core::random_uniform_particles(123, 1.0, 1);
  SnapshotHeader h;
  h.clock = 0.25;
  h.particle_mass = 1.0 / 123.0;
  h.comoving = 1;
  const std::string path = testing::TempDir() + "/snap.bin";
  ASSERT_TRUE(write_snapshot(path, h, ps));

  const auto snap = read_snapshot(path);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->header.n_particles, 123u);
  EXPECT_DOUBLE_EQ(snap->header.clock, 0.25);
  EXPECT_EQ(snap->header.comoving, 1u);
  ASSERT_EQ(snap->particles.size(), 123u);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(snap->particles[i].pos, ps[i].pos);
    EXPECT_EQ(snap->particles[i].id, ps[i].id);
    EXPECT_DOUBLE_EQ(snap->particles[i].mass, ps[i].mass);
  }
}

TEST(Snapshot, RejectsMissingFile) {
  EXPECT_FALSE(read_snapshot("/nonexistent/path/snap.bin").has_value());
}

TEST(Snapshot, RejectsCorruptMagic) {
  const std::string path = testing::TempDir() + "/bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTASNAPSHOTFILE____________";
  }
  EXPECT_FALSE(read_snapshot(path).has_value());
}

TEST(Snapshot, RejectsTruncatedFile) {
  const auto ps = core::random_uniform_particles(50, 1.0, 2);
  const std::string path = testing::TempDir() + "/trunc.bin";
  ASSERT_TRUE(write_snapshot(path, {}, ps));
  // Truncate to half.
  {
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)), {});
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  }
  EXPECT_FALSE(read_snapshot(path).has_value());
}

TEST(Snapshot, RejectsTrailingGarbage) {
  const auto ps = core::random_uniform_particles(20, 1.0, 3);
  const std::string path = testing::TempDir() + "/trailing.bin";
  ASSERT_TRUE(write_snapshot(path, {}, ps));
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "EXTRA BYTES";
  }
  EXPECT_FALSE(read_snapshot(path).has_value());
}

TEST(Snapshot, RejectsHugeClaimedCountWithoutAllocating) {
  // A header claiming ~2^61 particles on a tiny file must be rejected by
  // the size bound, not by attempting a petabyte resize.
  const std::string path = testing::TempDir() + "/huge.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write("GREEMSN1", 8);
    SnapshotHeader h{};
    h.n_particles = ~std::uint64_t{0} / sizeof(core::Particle);
    out.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out << "tiny";
  }
  EXPECT_FALSE(read_snapshot(path).has_value());
}

TEST(Snapshot, WriteLeavesNoTempFile) {
  const auto ps = core::random_uniform_particles(10, 1.0, 4);
  const std::string path = testing::TempDir() + "/atomic_snap.bin";
  ASSERT_TRUE(write_snapshot(path, {}, ps));
  EXPECT_TRUE(read_snapshot(path).has_value());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/out.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.row({1.0, 2.5});
    csv.row({3.0, 4.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
}


TEST(HaloCatalog, WritesRowsPerGroup) {
  // Two clumps -> two catalog rows with correct masses and centers.
  std::vector<Vec3> pos;
  for (int i = 0; i < 40; ++i) pos.push_back({0.2 + 1e-4 * i, 0.3, 0.3});
  for (int i = 0; i < 60; ++i) pos.push_back({0.7 + 1e-4 * i, 0.8, 0.8});
  const auto groups = analysis::fof_groups(pos, 0.01, 10);
  ASSERT_EQ(groups.ngroups(), 2u);

  const std::string path = testing::TempDir() + "/halos.csv";
  ASSERT_TRUE(write_halo_catalog(path, groups, pos, 0.01));

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "halo_id,n_members,mass,com_x,com_y,com_z");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 5), "0,60,");  // largest first
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 5), "1,40,");
  EXPECT_FALSE(std::getline(in, line) && !line.empty());
}


TEST(Config, ParsesKeysCommentsAndOverrides) {
  const auto cfg = Config::parse_string(R"(
# a comment
n  = 32          # trailing comment
name = hello world
flag = yes
ratio = 2.5
n = 64           # later key wins
)");
  EXPECT_EQ(cfg.get_int("n", 0), 64);
  EXPECT_EQ(cfg.get_string("name", ""), "hello world");
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_DOUBLE_EQ(cfg.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(cfg.get_int("missing", -7), -7);
  EXPECT_TRUE(cfg.has("flag"));
  EXPECT_FALSE(cfg.has("nope"));
}

TEST(Config, RejectsMalformedLines) {
  EXPECT_THROW(Config::parse_string("just a token\n"), std::invalid_argument);
  EXPECT_THROW(Config::parse_string("= value\n"), std::invalid_argument);
  const auto cfg = Config::parse_string("b = maybe\n");
  EXPECT_THROW(cfg.get_bool("b", false), std::invalid_argument);
}

TEST(Config, UnknownKeysDetectsTypos) {
  const auto cfg = Config::parse_string("n_mesh = 8\nn_meshh = 9\n");
  const auto unknown = cfg.unknown_keys({"n_mesh"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "n_meshh");
}

TEST(Config, FileRoundtrip) {
  const std::string path = testing::TempDir() + "/run.cfg";
  {
    std::ofstream out(path);
    out << "alpha = 1.25\n";
  }
  std::string error;
  const auto cfg = Config::parse_file(path, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_DOUBLE_EQ(cfg->get_double("alpha", 0), 1.25);
  EXPECT_FALSE(Config::parse_file("/no/such/file.cfg", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace greem::io
