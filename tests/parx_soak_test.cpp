// Lossy-transport soak test: hundreds of randomized collective rounds under
// each link-fault kind (and a mixed plan) must produce results bitwise
// identical to the clean run.  The reliability sublayer is allowed to cost
// retransmissions -- which the traffic ledger must account separately from
// logical traffic -- but never correctness.

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "parx/comm.hpp"
#include "parx/fault.hpp"
#include "parx/runtime.hpp"
#include "parx/transport.hpp"
#include "util/hash.hpp"

namespace greem::parx {
namespace {

constexpr int kRanks = 4;
constexpr int kRounds = 200;

// Deterministic pseudo-random payload element: a pure function of the
// round/src/dst/index coordinates (no RNG state to keep in sync).
double element(int round, int src, int dst, int i) {
  util::Fnv1a64 h;
  h.mix(static_cast<std::uint64_t>(round))
      .mix(static_cast<std::uint64_t>(src))
      .mix(static_cast<std::uint64_t>(dst))
      .mix(static_cast<std::uint64_t>(i));
  // Map to a modest range; exact representability does not matter because
  // both runs compute the identical sequence.
  return static_cast<double>(h.value() % 100000) / 7.0;
}

std::size_t payload_len(int round, int src, int dst) {
  util::Fnv1a64 h;
  h.mix(0x5eedULL)
      .mix(static_cast<std::uint64_t>(round))
      .mix(static_cast<std::uint64_t>(src))
      .mix(static_cast<std::uint64_t>(dst));
  return h.value() % 17;  // 0..16 doubles; zero-length paths included
}

/// The workload: kRounds rounds of alltoallv + allreduce + bcast with
/// deterministic but irregular payloads, fingerprinting everything each
/// rank receives.  Returns the per-rank FNV fingerprints.
std::vector<std::uint64_t> run_workload(Runtime& rt) {
  std::vector<std::uint64_t> digest(kRanks, 0);
  rt.run([&](Comm& c) {
    constexpr FaultPhase kPhases[] = {FaultPhase::kDD, FaultPhase::kPM, FaultPhase::kPP};
    util::Fnv1a64 h;
    const int me = c.rank();
    for (int r = 0; r < kRounds; ++r) {
      set_fault_context(static_cast<std::uint64_t>(r) + 1, kPhases[r % 3]);
      // Personalized all-to-all with irregular sizes.
      std::vector<std::vector<double>> send(kRanks);
      for (int d = 0; d < kRanks; ++d) {
        const auto n = payload_len(r, me, d);
        for (std::size_t i = 0; i < n; ++i)
          send[static_cast<std::size_t>(d)].push_back(element(r, me, d, static_cast<int>(i)));
      }
      // Move-based exchange: on clean links each slice's allocation is
      // handed to its receiver (zero-copy fast path); on framed links the
      // slice is consumed all the same, so behavior is path-invariant.
      const auto got = c.alltoallv(std::move(send));
      for (const auto& v : got)
        for (double x : v) h.mix(x);
      // A reduction everyone depends on.
      h.mix(c.allreduce_sum(element(r, me, me, r)));
      // A broadcast from a rotating root.
      std::vector<double> blob;
      const int root = r % kRanks;
      if (me == root) blob = {element(r, root, root, 0), element(r, root, root, 1)};
      c.bcast(blob, root);
      for (double x : blob) h.mix(x);
    }
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
    digest[static_cast<std::size_t>(me)] = h.value();
  });
  return digest;
}

struct Scenario {
  const char* name;
  std::vector<const char*> specs;
};

TEST(ParxSoak, LossyLinksAreBitwiseInvisible) {
  Runtime clean(kRanks);
  const auto expected = run_workload(clean);
  const auto clean_totals = clean.ledger().totals();
  ASSERT_GT(clean_totals.messages, 0u);
  EXPECT_EQ(clean_totals.retransmit_messages, 0u);

  const Scenario scenarios[] = {
      {"drop", {"*:any:*:drop@0.03"}},
      {"corrupt", {"*:any:*:corrupt@0.02"}},
      {"dup", {"*:any:*:dup@0.05"}},
      {"reorder", {"*:any:*:reorder@0.1"}},
      {"mixed",
       {"*:any:*:drop@0.02", "*:any:*:corrupt@0.01", "*:any:*:dup@0.03",
        "*:any:*:reorder@0.05"}},
  };
  for (const auto& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    Runtime rt(kRanks);
    FaultPlan plan;
    for (const char* s : sc.specs) {
      auto spec = parse_fault_at(s);
      ASSERT_TRUE(spec.has_value()) << s;
      plan.at(*spec);
    }
    rt.set_fault_plan(plan);
    rt.set_transport_tuning({.rto_s = 0.001, .backoff = 1.5, .max_attempts = 30,
                             .tick_s = 0.0005});
    const auto got = run_workload(rt);
    EXPECT_EQ(got, expected) << "lossy run diverged under " << sc.name;

    // Logical traffic is identical to the clean run; the repair cost shows
    // up only in the separate retransmit columns.
    const auto t = rt.ledger().totals();
    EXPECT_EQ(t.messages, clean_totals.messages) << sc.name;
    EXPECT_EQ(t.bytes, clean_totals.bytes) << sc.name;
    if (std::string(sc.name) == "drop" || std::string(sc.name) == "corrupt" ||
        std::string(sc.name) == "mixed") {
      EXPECT_GT(t.retransmit_messages, 0u)
          << sc.name << ": expected the plan to force retransmissions";
      EXPECT_GT(t.retransmit_bytes, 0u) << sc.name;
    }
  }
}

/// Workload with requests held in flight across other collectives: each
/// round posts an ialltoallv, runs an allreduce and an isend/irecv wave
/// (drained with wait_all) under the exchange, then drains the exchange.
/// Exercises the retransmission sublayer against pending requests.
std::vector<std::uint64_t> run_inflight_workload(Runtime& rt) {
  std::vector<std::uint64_t> digest(kRanks, 0);
  rt.run([&](Comm& c) {
    constexpr FaultPhase kPhases[] = {FaultPhase::kDD, FaultPhase::kPM, FaultPhase::kPP};
    util::Fnv1a64 h;
    const int me = c.rank();
    for (int r = 0; r < kRounds / 2; ++r) {
      set_fault_context(static_cast<std::uint64_t>(r) + 1, kPhases[r % 3]);
      std::vector<std::vector<double>> send(kRanks);
      for (int d = 0; d < kRanks; ++d) {
        const auto n = payload_len(r, me, d);
        for (std::size_t i = 0; i < n; ++i)
          send[static_cast<std::size_t>(d)].push_back(element(r, me, d, static_cast<int>(i)));
      }
      auto a2a = c.ialltoallv(send);
      // While the exchange is in flight: a reduction ...
      h.mix(c.allreduce_sum(element(r, me, me, r)));
      // ... and a tagged point-to-point ring wave drained with wait_all.
      const int nxt = (me + 1) % kRanks, prv = (me + kRanks - 1) % kRanks;
      const std::vector<double> ring{element(r, me, nxt, 0), element(r, me, nxt, 1)};
      std::vector<Request> wave;
      wave.push_back(c.irecv(prv, 7));
      wave.push_back(c.isend(nxt, 7, std::span<const double>(ring)));
      c.wait_all(std::span<Request>(wave));
      for (double x : wave[0].take<double>()) h.mix(x);
      // Drain the exchange last: its payloads crossed everything above.
      const auto got = c.wait_alltoallv(a2a);
      for (const auto& v : got)
        for (double x : v) h.mix(x);
    }
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
    digest[static_cast<std::size_t>(me)] = h.value();
  });
  return digest;
}

TEST(ParxSoak, InflightRequestsSurviveLossyLinksBitwise) {
  Runtime clean(kRanks);
  const auto expected = run_inflight_workload(clean);
  EXPECT_EQ(clean.ledger().totals().retransmit_messages, 0u);

  Runtime rt(kRanks);
  FaultPlan plan;
  plan.at(*parse_fault_at("*:any:*:drop@0.03"))
      .at(*parse_fault_at("*:any:*:dup@0.03"))
      .at(*parse_fault_at("*:any:*:reorder@0.05"));
  rt.set_fault_plan(plan);
  rt.set_transport_tuning({.rto_s = 0.001, .backoff = 1.5, .max_attempts = 30,
                           .tick_s = 0.0005});
  const auto got = run_inflight_workload(rt);
  EXPECT_EQ(got, expected) << "in-flight requests diverged under a lossy link";
  EXPECT_GT(rt.ledger().totals().retransmit_messages, 0u);
  EXPECT_EQ(rt.ledger().totals().messages, clean.ledger().totals().messages);
}

TEST(ParxSoak, FastFramedAndLossyPathsAgreeBitwiseWithIdenticalLedgers) {
  // The same workload over all three routing regimes -- pure fast path
  // (no plan), framed-but-clean (rate-0 plans, wildcard and partial), and
  // genuinely lossy (partial plan, one covered sender) -- must produce
  // bitwise-identical results and identical *logical* ledger accounting;
  // only the retransmit columns may differ.
  Runtime clean(kRanks);
  const auto expected = run_workload(clean);
  const auto clean_totals = clean.ledger().totals();
  ASSERT_GT(clean_totals.messages, 0u);

  const Scenario scenarios[] = {
      {"framed-all-rate0", {"*:any:*:drop@0"}},
      {"framed-partial-rate0", {"*:any:1:drop@0"}},
      {"lossy-partial", {"*:any:1:drop@0.05"}},
  };
  for (const auto& sc : scenarios) {
    SCOPED_TRACE(sc.name);
    Runtime rt(kRanks);
    FaultPlan plan;
    for (const char* s : sc.specs) {
      auto spec = parse_fault_at(s);
      ASSERT_TRUE(spec.has_value()) << s;
      plan.at(*spec);
    }
    rt.set_fault_plan(plan);
    rt.set_transport_tuning({.rto_s = 0.001, .backoff = 1.5, .max_attempts = 30,
                             .tick_s = 0.0005});
    const auto got = run_workload(rt);
    EXPECT_EQ(got, expected) << "diverged under " << sc.name;
    const auto t = rt.ledger().totals();
    EXPECT_EQ(t.messages, clean_totals.messages) << sc.name;
    EXPECT_EQ(t.bytes, clean_totals.bytes) << sc.name;
    if (std::string(sc.name) != "lossy-partial") {
      EXPECT_EQ(t.retransmit_messages, 0u)
          << sc.name << ": a clean framed run must not retransmit";
    } else {
      EXPECT_GT(t.retransmit_messages, 0u)
          << sc.name << ": expected the lossy sender to force retransmissions";
    }
  }
}

TEST(ParxSoak, DifferentLinkSeedsDrawDifferentButReproduciblePatterns) {
  const auto run_with_seed = [](std::uint64_t seed) {
    Runtime rt(kRanks);
    FaultPlan plan;
    plan.at(*parse_fault_at("*:any:*:drop@0.05")).link_seed(seed);
    rt.set_fault_plan(plan);
    rt.set_transport_tuning({.rto_s = 0.001, .backoff = 1.5, .max_attempts = 30,
                             .tick_s = 0.0005});
    const auto digest = run_workload(rt);
    return std::pair{digest, rt.ledger().totals().retransmit_messages};
  };
  const auto [d1, retx1] = run_with_seed(1);
  const auto [d1b, retx1b] = run_with_seed(1);
  const auto [d2, retx2] = run_with_seed(2);
  // Payloads are exact regardless of seed.  (Retransmit *counts* are not
  // compared exactly: a cumulative ack from later traffic can suppress a
  // retransmit depending on thread timing; only delivery is deterministic.)
  EXPECT_EQ(d1, d1b);
  EXPECT_EQ(d1, d2);
  EXPECT_GT(retx1, 0u);
  EXPECT_GT(retx1b, 0u);
  EXPECT_GT(retx2, 0u);
}

}  // namespace
}  // namespace greem::parx
