// Serial PM solver tests: assignment conservation, interpolation, finite
// differences, Green's function properties, and the physical force-split
// identities (PM pair force complements gP3M; PP + PM matches Ewald).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/direct_force.hpp"
#include "ewald/ewald.hpp"
#include "pm/assign.hpp"
#include "pm/gradient.hpp"
#include "pm/green.hpp"
#include "pm/pm_solver.hpp"
#include "pp/cutoff.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace greem::pm {
namespace {

class AssignSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(AssignSchemes, ConservesMassOnPeriodicMesh) {
  const Scheme s = GetParam();
  const std::size_t n = 16;
  Rng rng(1);
  std::vector<Vec3> pos(100);
  std::vector<double> mass(100);
  double total = 0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = {rng.uniform(), rng.uniform(), rng.uniform()};
    mass[i] = rng.uniform(0.5, 1.5);
    total += mass[i];
  }
  std::vector<double> rho(n * n * n, 0.0);
  assign_density_periodic(rho, n, s, pos, mass);
  double sum = 0;
  for (double v : rho) sum += v;
  const double h3 = 1.0 / static_cast<double>(n * n * n);
  EXPECT_NEAR(sum * h3, total, 1e-10 * total);
}

TEST_P(AssignSchemes, StencilWeightsSumToOne) {
  const Scheme s = GetParam();
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto st = axis_stencil(s, rng.uniform(), 32);
    double sum = 0;
    for (int k = 0; k < st.count; ++k) sum += st.w[static_cast<std::size_t>(k)];
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (int k = 0; k < st.count; ++k) EXPECT_GE(st.w[static_cast<std::size_t>(k)], -1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AssignSchemes,
                         ::testing::Values(Scheme::kNGP, Scheme::kCIC, Scheme::kTSC));

TEST(Assign, LocalMatchesPeriodicInsideRegion) {
  const std::size_t n = 16;
  const Box domain{{0.25, 0.25, 0.25}, {0.75, 0.75, 0.75}};
  Rng rng(3);
  std::vector<Vec3> pos(50);
  std::vector<double> mass(50, 0.02);
  for (auto& p : pos)
    p = {rng.uniform(0.25, 0.75), rng.uniform(0.25, 0.75), rng.uniform(0.25, 0.75)};

  LocalMesh local(region_for_domain(domain, n, 2));
  assign_density(local, n, Scheme::kTSC, pos, mass);
  std::vector<double> full(n * n * n, 0.0);
  assign_density_periodic(full, n, Scheme::kTSC, pos, mass);

  const auto& r = local.region();
  for (long z = r.lo[2]; z < r.hi(2); ++z)
    for (long y = r.lo[1]; y < r.hi(1); ++y)
      for (long x = r.lo[0]; x < r.hi(0); ++x) {
        const std::size_t gx = wrap_cell(x, n), gy = wrap_cell(y, n), gz = wrap_cell(z, n);
        EXPECT_NEAR(local.at(x, y, z), full[(gz * n + gy) * n + gx], 1e-10);
      }
}

TEST(Assign, SlabParallelDepositIsBitwiseDeterministic) {
  // Enough particles to engage the bucketed slab-parallel path (its
  // threshold depends only on the data, never the pool size): the mesh
  // must come out bitwise identical for every thread count, periodic and
  // local alike.
  const std::size_t n = 16, np = 8192;
  Rng rng(9);
  std::vector<Vec3> pos(np);
  std::vector<double> mass(np);
  for (std::size_t i = 0; i < np; ++i) {
    pos[i] = {rng.uniform(), rng.uniform(), rng.uniform()};
    mass[i] = rng.uniform(0.5, 1.5);
  }

  for (const Scheme s : {Scheme::kNGP, Scheme::kCIC, Scheme::kTSC}) {
    set_num_threads(1);
    std::vector<double> rho1(n * n * n, 0.0);
    assign_density_periodic(rho1, n, s, pos, mass);
    set_num_threads(4);
    std::vector<double> rho4(n * n * n, 0.0);
    assign_density_periodic(rho4, n, s, pos, mass);
    for (std::size_t c = 0; c < rho1.size(); ++c)
      ASSERT_EQ(rho1[c], rho4[c]) << "scheme " << static_cast<int>(s) << " cell " << c;
  }

  const Box domain{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  set_num_threads(1);
  LocalMesh local1(region_for_domain(domain, n, 2));
  assign_density(local1, n, Scheme::kTSC, pos, mass);
  set_num_threads(4);
  LocalMesh local4(region_for_domain(domain, n, 2));
  assign_density(local4, n, Scheme::kTSC, pos, mass);
  set_num_threads(1);
  ASSERT_EQ(local1.data().size(), local4.data().size());
  for (std::size_t c = 0; c < local1.data().size(); ++c)
    ASSERT_EQ(local1.data()[c], local4.data()[c]) << "cell " << c;
}

TEST(Gradient, BitwiseDeterministicAcrossPoolSizes) {
  const std::size_t n = 24;
  Rng rng(11);
  std::vector<double> phi(n * n * n);
  for (auto& v : phi) v = rng.uniform(-1.0, 1.0);

  set_num_threads(1);
  std::vector<double> fx1, fy1, fz1;
  fd_gradient_periodic(phi, n, fx1, fy1, fz1);
  set_num_threads(4);
  std::vector<double> fx4, fy4, fz4;
  fd_gradient_periodic(phi, n, fx4, fy4, fz4);
  set_num_threads(1);
  for (std::size_t c = 0; c < phi.size(); ++c) {
    ASSERT_EQ(fx1[c], fx4[c]);
    ASSERT_EQ(fy1[c], fy4[c]);
    ASSERT_EQ(fz1[c], fz4[c]);
  }
}

TEST(Assign, TscIsExactForLinearFields) {
  // TSC interpolation reproduces linear functions exactly (away from wrap).
  const std::size_t n = 32;
  CellRegion region{{2, 2, 2}, {12, 12, 12}};
  LocalMesh fx(region), fy(region), fz(region);
  for (long z = region.lo[2]; z < region.hi(2); ++z)
    for (long y = region.lo[1]; y < region.hi(1); ++y)
      for (long x = region.lo[0]; x < region.hi(0); ++x) {
        const double cx = (static_cast<double>(x) + 0.5) / n;
        fx.at(x, y, z) = 3.0 * cx + 1.0;
        fy.at(x, y, z) = -2.0 * cx;
        fz.at(x, y, z) = 0.5;
      }
  const Vec3 p{0.21, 0.22, 0.23};
  const Vec3 f = interpolate(fx, fy, fz, n, Scheme::kTSC, p);
  EXPECT_NEAR(f.x, 3.0 * 0.21 + 1.0, 1e-12);
  EXPECT_NEAR(f.y, -2.0 * 0.21, 1e-12);
  EXPECT_NEAR(f.z, 0.5, 1e-12);
}

TEST(Window, MatchesSincPower) {
  const std::size_t n = 64;
  EXPECT_DOUBLE_EQ(window(Scheme::kTSC, 0, n), 1.0);
  const double x = std::numbers::pi * 5.0 / 64.0;
  const double sinc = std::sin(x) / x;
  EXPECT_NEAR(window(Scheme::kNGP, 5, n), sinc, 1e-14);
  EXPECT_NEAR(window(Scheme::kCIC, 5, n), sinc * sinc, 1e-14);
  EXPECT_NEAR(window(Scheme::kTSC, 5, n), sinc * sinc * sinc, 1e-14);
}

TEST(Green, DcModeIsZeroAndSymmetric) {
  GreenParams gp{32, 3.0 / 32.0, Scheme::kTSC, 2, 1.0};
  EXPECT_DOUBLE_EQ(green_potential(gp, 0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(green_potential(gp, 3, -2, 1), green_potential(gp, -3, 2, -1));
  EXPECT_DOUBLE_EQ(green_potential(gp, 1, 2, 3), green_potential(gp, 3, 1, 2));
  EXPECT_LT(green_potential(gp, 1, 0, 0), 0.0);  // attractive potential
}

TEST(Green, SuppressedAboveCutoffScale) {
  // At wavelengths far below rcut the S2^2 factor kills the long-range force.
  const std::size_t n = 128;
  GreenParams gp{n, 16.0 / static_cast<double>(n), Scheme::kTSC, 0, 1.0};
  const double low = std::abs(green_potential(gp, 1, 0, 0));
  const double high = std::abs(green_potential(gp, 40, 0, 0));
  EXPECT_LT(high, low * 1e-4);
}

TEST(Gradient, FourPointIsExactForCubicPotential) {
  // The 4-point stencil differentiates cubics exactly.
  const std::size_t n = 32;
  CellRegion force{{4, 4, 4}, {4, 4, 4}};
  CellRegion potr = expand(force, 2);
  LocalMesh phi(potr);
  auto f = [&](double c) { return 2.0 + 3.0 * c + 0.5 * c * c - c * c * c; };
  auto fp = [&](double c) { return 3.0 + c - 3.0 * c * c; };
  for (long z = potr.lo[2]; z < potr.hi(2); ++z)
    for (long y = potr.lo[1]; y < potr.hi(1); ++y)
      for (long x = potr.lo[0]; x < potr.hi(0); ++x) {
        const double cx = (static_cast<double>(x) + 0.5) / n;
        phi.at(x, y, z) = f(cx);
      }
  LocalMesh fx, fy, fz;
  fd_gradient(phi, force, n, fx, fy, fz);
  for (long x = force.lo[0]; x < force.hi(0); ++x) {
    const double cx = (static_cast<double>(x) + 0.5) / n;
    EXPECT_NEAR(fx.at(x, 5, 5), -fp(cx), 1e-9);
    EXPECT_NEAR(fy.at(x, 5, 5), 0.0, 1e-9);
  }
}

TEST(Gradient, PeriodicMatchesLocal) {
  const std::size_t n = 8;
  Rng rng(4);
  std::vector<double> phi(n * n * n);
  for (auto& v : phi) v = rng.normal();

  std::vector<double> fx, fy, fz;
  fd_gradient_periodic(phi, n, fx, fy, fz);

  // Local version over the full mesh with wrap-filled ghost layers.
  CellRegion force{{0, 0, 0}, {n, n, n}};
  CellRegion potr = expand(force, 2);
  LocalMesh lphi(potr);
  for (long z = potr.lo[2]; z < potr.hi(2); ++z)
    for (long y = potr.lo[1]; y < potr.hi(1); ++y)
      for (long x = potr.lo[0]; x < potr.hi(0); ++x)
        lphi.at(x, y, z) =
            phi[(wrap_cell(z, n) * n + wrap_cell(y, n)) * n + wrap_cell(x, n)];
  LocalMesh lfx, lfy, lfz;
  fd_gradient(lphi, force, n, lfx, lfy, lfz);
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x)
        EXPECT_NEAR(lfx.at(static_cast<long>(x), static_cast<long>(y), static_cast<long>(z)),
                    fx[(z * n + y) * n + x], 1e-12);
}

TEST(PmSolver, UniformLatticeFeelsNoForce) {
  // A particle lattice commensurate with the mesh has no net PM force.
  const std::size_t n = 16, g = 8;
  std::vector<Vec3> pos;
  std::vector<double> mass;
  for (std::size_t z = 0; z < g; ++z)
    for (std::size_t y = 0; y < g; ++y)
      for (std::size_t x = 0; x < g; ++x) {
        pos.push_back({(x + 0.5) / g, (y + 0.5) / g, (z + 0.5) / g});
        mass.push_back(1.0 / (g * g * g));
      }
  PmSolver pm({n, 0, Scheme::kTSC, 2, 1.0});
  std::vector<Vec3> acc(pos.size());
  pm.accelerations(pos, mass, acc);
  for (const auto& a : acc) EXPECT_LT(a.norm(), 1e-10);
}

TEST(PmSolver, ConservesMomentum) {
  const std::size_t n = 32;
  Rng rng(5);
  std::vector<Vec3> pos(200);
  std::vector<double> mass(200);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = {rng.uniform(), rng.uniform(), rng.uniform()};
    mass[i] = rng.uniform(0.5, 1.5) / 200;
  }
  PmSolver pm({n, 0, Scheme::kTSC, 2, 1.0});
  std::vector<Vec3> acc(pos.size());
  pm.accelerations(pos, mass, acc);
  Vec3 net{};
  double amax = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    net += acc[i] * mass[i];
    amax = std::max(amax, acc[i].norm() * mass[i]);
  }
  // TSC assignment + TSC interpolation of an FD force is momentum
  // conserving up to interpolation cross terms.
  EXPECT_LT(net.norm(), 2e-3 * amax * std::sqrt(static_cast<double>(acc.size())));
}

TEST(PmSolver, PairForceComplementsCutoffFunction) {
  // Two particles at separations spanning [0.5 rcut, 2.5 rcut]: the PM
  // force must approximate (1 - g(2r/rcut)) / r^2, so PP + PM = Newton.
  // rcut = 6 cells keeps the split scale well-resolved so the identity is
  // tested cleanly (the rcut = 3h accuracy tradeoff has its own bench).
  const std::size_t n = 64;
  PmParams params;
  params.n_mesh = n;
  params.rcut = 6.0 / static_cast<double>(n);
  PmSolver pm(params);
  const double rcut = pm.params().effective_rcut();

  for (double frac : {0.6, 1.0, 1.4, 1.8, 2.4}) {
    const double r = frac * rcut / 2.0;  // xi = frac
    const std::vector<Vec3> pos{{0.5 - r / 2, 0.5, 0.5}, {0.5 + r / 2, 0.5, 0.5}};
    const std::vector<double> mass{1.0, 1.0};
    std::vector<Vec3> acc(2);
    pm.accelerations(pos, mass, acc);
    const double expected = (1.0 - pp::g_p3m(2.0 * r / rcut)) / (r * r);
    // Mesh error is judged against the *total* (Newton) pair force: that is
    // what the PP part complements.  Sub-cell separations have a large PM
    // error relative to the tiny PM force, but a small one in this norm.
    EXPECT_NEAR(acc[0].x, expected, 0.03 / (r * r)) << "xi = " << frac;
    EXPECT_NEAR(acc[1].x, -acc[0].x, 1e-6 / (r * r));
  }
}

TEST(PmSolver, TreePmTotalMatchesEwald) {
  // The headline correctness test: short-range (exact direct with gP3M)
  // plus PM long-range equals the Ewald periodic force.
  const std::size_t n = 32;
  Rng rng(6);
  const std::size_t np = 64;
  std::vector<Vec3> pos(np);
  std::vector<double> mass(np, 1.0 / np);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform(), rng.uniform()};

  PmSolver pm({n, 0, Scheme::kTSC, 2, 1.0});
  const double rcut = pm.params().effective_rcut();
  std::vector<Vec3> treepm(np);
  pm.accelerations(pos, mass, treepm);
  core::direct_short_range(pos, mass, treepm, rcut, 0.0);

  ewald::Ewald ew;
  std::vector<Vec3> exact(np);
  ew.accelerations(pos, mass, exact);

  std::vector<double> rel;
  for (std::size_t i = 0; i < np; ++i)
    rel.push_back((treepm[i] - exact[i]).norm() / std::max(exact[i].norm(), 1e-12));
  // rcut = 3h (the paper's choice) leaves a few percent of the S2^2
  // spectrum above the mesh Nyquist; that aliased content bounds the
  // achievable accuracy (see bench_assign for the rcut/h sweep).
  EXPECT_LT(rms(rel), 0.06);
  EXPECT_LT(percentile(rel, 95), 0.12);
}

TEST(PmSolver, PotentialsAreNegativeAndFinite) {
  const std::size_t n = 16;
  Rng rng(7);
  std::vector<Vec3> pos(50);
  std::vector<double> mass(50, 0.02);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  PmSolver pm({n, 0, Scheme::kTSC, 2, 1.0});
  const auto phi = pm.potentials(pos, mass);
  for (double v : phi) EXPECT_TRUE(std::isfinite(v));
}

TEST(Mesh, RegionForDomainCoversStencils) {
  const std::size_t n = 32;
  const Box domain{{0.1, 0.2, 0.3}, {0.35, 0.55, 0.62}};
  const CellRegion r = region_for_domain(domain, n, 2);
  // Any particle in the domain must have its full TSC stencil inside.
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const Vec3 p{rng.uniform(domain.lo.x, domain.hi.x), rng.uniform(domain.lo.y, domain.hi.y),
                 rng.uniform(domain.lo.z, domain.hi.z)};
    for (int axis = 0; axis < 3; ++axis) {
      const auto st = axis_stencil(Scheme::kTSC, p[static_cast<std::size_t>(axis)], n);
      EXPECT_GE(st.base, r.lo[static_cast<std::size_t>(axis)]);
      EXPECT_LT(st.base + 2, r.hi(axis));
    }
  }
}

TEST(Mesh, WrapCell) {
  EXPECT_EQ(wrap_cell(5, 8), 5u);
  EXPECT_EQ(wrap_cell(-1, 8), 7u);
  EXPECT_EQ(wrap_cell(8, 8), 0u);
  EXPECT_EQ(wrap_cell(-9, 8), 7u);
  EXPECT_EQ(wrap_cell(17, 8), 1u);
}


struct SolverVariant {
  Scheme scheme;
  GreenKind green;
};

class SolverSweep : public ::testing::TestWithParam<SolverVariant> {};

TEST_P(SolverSweep, MomentumConservedForEveryVariant) {
  const auto v = GetParam();
  Rng rng(55);
  std::vector<Vec3> pos(150);
  std::vector<double> mass(150);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = {rng.uniform(), rng.uniform(), rng.uniform()};
    mass[i] = rng.uniform(0.5, 1.5) / 150;
  }
  PmParams params;
  params.n_mesh = 32;
  params.scheme = v.scheme;
  params.green = v.green;
  PmSolver pm(params);
  std::vector<Vec3> acc(pos.size());
  pm.accelerations(pos, mass, acc);
  Vec3 net{};
  double amax = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    net += acc[i] * mass[i];
    amax = std::max(amax, acc[i].norm() * mass[i]);
  }
  EXPECT_LT(net.norm(), 5e-3 * amax * std::sqrt(static_cast<double>(acc.size())));
  for (const auto& a : acc) {
    EXPECT_TRUE(std::isfinite(a.x));
    EXPECT_TRUE(std::isfinite(a.y));
    EXPECT_TRUE(std::isfinite(a.z));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SolverSweep,
    ::testing::Values(SolverVariant{Scheme::kNGP, GreenKind::kSimple},
                      SolverVariant{Scheme::kCIC, GreenKind::kSimple},
                      SolverVariant{Scheme::kTSC, GreenKind::kSimple},
                      SolverVariant{Scheme::kCIC, GreenKind::kOptimal},
                      SolverVariant{Scheme::kTSC, GreenKind::kOptimal}));

}  // namespace
}  // namespace greem::pm
