// Tests for the telemetry layer: registry name stability and first-use
// order, histogram percentiles, span nesting via Chrome-trace parse-back,
// the JsonWriter/RunMeta envelope, traffic-ledger epochs telescoping to
// the ledger totals, task-pool statistics, and the end-to-end StepRecord
// flop accounting of a small distributed run.
//
// Parse-back uses a deliberately minimal JSON reader defined below: the
// point is that the emitted artifacts are *valid JSON* a dumb reader
// accepts, not that a clever reader can rescue them.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_sim.hpp"
#include "parx/runtime.hpp"
#include "parx/traffic.hpp"
#include "pp/kernels.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_reader.hpp"
#include "telemetry/step_report.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/task_pool.hpp"

namespace greem {
namespace {

// ------------------------------------------------- minimal JSON reader --

struct JVal {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JVal> arr;
  std::vector<std::pair<std::string, JVal>> obj;

  const JVal* find(std::string_view k) const {
    for (const auto& [key, v] : obj)
      if (key == k) return &v;
    return nullptr;
  }
};

class JParser {
 public:
  explicit JParser(std::string_view s) : s_(s) {}

  bool parse(JVal& out) {
    skip();
    if (!value(out)) return false;
    skip();
    return pos_ == s_.size();
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;

  void skip() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool lit(std::string_view w) {
    if (s_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }
  bool value(JVal& v) {
    skip();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(v);
    if (c == '[') return array(v);
    if (c == '"') {
      v.kind = JVal::kStr;
      return string(v.str);
    }
    if (lit("true")) {
      v.kind = JVal::kBool;
      v.b = true;
      return true;
    }
    if (lit("false")) {
      v.kind = JVal::kBool;
      v.b = false;
      return true;
    }
    if (lit("null")) {
      v.kind = JVal::kNull;
      return true;
    }
    return number(v);
  }
  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      switch (s_[pos_++]) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'u':
          if (pos_ + 4 > s_.size()) return false;
          pos_ += 4;           // don't decode; the tests never need it
          out.push_back('?');  // placeholder
          break;
        default: return false;
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number(JVal& v) {
    const std::size_t start = pos_;
    auto isnum = [](char c) {
      return std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-' ||
             c == '.' || c == 'e' || c == 'E';
    };
    while (pos_ < s_.size() && isnum(s_[pos_])) ++pos_;
    if (pos_ == start) return false;
    v.kind = JVal::kNum;
    v.num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(), nullptr);
    return true;
  }
  bool array(JVal& v) {
    v.kind = JVal::kArr;
    ++pos_;  // '['
    skip();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JVal item;
      if (!value(item)) return false;
      v.arr.push_back(std::move(item));
      skip();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(JVal& v) {
    v.kind = JVal::kObj;
    ++pos_;  // '{'
    skip();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip();
      std::string key;
      if (!string(key)) return false;
      skip();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JVal item;
      if (!value(item)) return false;
      v.obj.emplace_back(std::move(key), std::move(item));
      skip();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
};

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------- registry --

TEST(Registry, StableRefsAndFirstUseOrder) {
  if (!telemetry::enabled()) GTEST_SKIP() << "built with GREEM_TELEMETRY=OFF";
  telemetry::Registry reg;
  telemetry::Counter& z = reg.counter("z/later-alphabetically");
  telemetry::Counter& a = reg.counter("a/earlier-alphabetically");
  z.add(3);
  a.add(1);
  // Re-lookup returns the same instrument (stable address).
  EXPECT_EQ(&z, &reg.counter("z/later-alphabetically"));
  EXPECT_EQ(&a, &reg.counter("a/earlier-alphabetically"));
  EXPECT_EQ(reg.counter("z/later-alphabetically").value(), 3u);

  // Report order is first-use order, not sorted.
  const auto snap = reg.counters();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "z/later-alphabetically");
  EXPECT_EQ(snap[1].first, "a/earlier-alphabetically");

  // reset() zeroes values but keeps names and addresses.
  reg.reset();
  EXPECT_EQ(reg.counters().size(), 2u);
  EXPECT_EQ(z.value(), 0u);
  EXPECT_EQ(&z, &reg.counter("z/later-alphabetically"));
}

TEST(Registry, GaugesAndHistogramsCoexistWithCounters) {
  if (!telemetry::enabled()) GTEST_SKIP() << "built with GREEM_TELEMETRY=OFF";
  telemetry::Registry reg;
  reg.gauge("g").set(2.5);
  reg.histogram("h").record(1.0);
  reg.counter("g").add(7);  // same name, different kind: distinct instruments
  EXPECT_DOUBLE_EQ(reg.gauges()[0].second, 2.5);
  EXPECT_EQ(reg.counter("g").value(), 7u);
  ASSERT_NE(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST(Histogram, PercentilesWithinBinResolution) {
  if (!telemetry::enabled()) GTEST_SKIP() << "built with GREEM_TELEMETRY=OFF";
  telemetry::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_TRUE(std::isinf(h.min()));

  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // Log-spaced bins, 4 per octave: ~9% relative resolution.  Allow 12%.
  EXPECT_NEAR(h.percentile(50), 500.0, 60.0);
  EXPECT_NEAR(h.percentile(90), 900.0, 110.0);
  EXPECT_NEAR(h.percentile(100), 1000.0, 120.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isinf(h.min()));
}

TEST(Histogram, ConcurrentRecordsAllCounted) {
  if (!telemetry::enabled()) GTEST_SKIP() << "built with GREEM_TELEMETRY=OFF";
  telemetry::Histogram h;
  constexpr int kThreads = 4, kPer = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h] {
      for (int i = 1; i <= kPer; ++i) h.record(1e-3 * i);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1e-3 * kPer);
}

// -------------------------------------------------------- json writer --

TEST(JsonWriter, EscapesAndNestsParseBack) {
  std::ostringstream ss;
  telemetry::JsonWriter w(ss, /*pretty=*/false);
  w.begin_object();
  w.field("s", "a\"b\\c\nd\te");
  w.key("arr").begin_array();
  w.value(1);
  w.value(-2.5);
  w.value(true);
  w.value(std::uint64_t{18446744073709551615ull});
  w.end_array();
  w.key("empty").begin_object();
  w.end_object();
  w.end_object();

  JVal root;
  ASSERT_TRUE(JParser(ss.str()).parse(root)) << ss.str();
  ASSERT_NE(root.find("s"), nullptr);
  EXPECT_EQ(root.find("s")->str, "a\"b\\c\nd\te");
  ASSERT_NE(root.find("arr"), nullptr);
  ASSERT_EQ(root.find("arr")->arr.size(), 4u);
  EXPECT_DOUBLE_EQ(root.find("arr")->arr[0].num, 1.0);
  EXPECT_DOUBLE_EQ(root.find("arr")->arr[1].num, -2.5);
  EXPECT_TRUE(root.find("arr")->arr[2].b);
  EXPECT_EQ(root.find("empty")->kind, JVal::kObj);
}

TEST(JsonWriter, RunMetaEnvelope) {
  const auto meta = telemetry::RunMeta::collect("unit", "testkernel");
  EXPECT_EQ(meta.bench, "unit");
  EXPECT_EQ(meta.kernel, "testkernel");
  EXPECT_FALSE(meta.git_sha.empty());
  EXPECT_FALSE(meta.timestamp.empty());
  EXPECT_EQ(meta.telemetry, telemetry::enabled());

  std::ostringstream ss;
  telemetry::JsonWriter w(ss, /*pretty=*/true);
  w.begin_object();
  telemetry::write_meta(w, meta);
  w.end_object();
  JVal root;
  ASSERT_TRUE(JParser(ss.str()).parse(root)) << ss.str();
  const JVal* m = root.find("meta");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->find("bench")->str, "unit");
  EXPECT_EQ(m->find("kernel")->str, "testkernel");
}

// -------------------------------------------------------- json reader --

TEST(JsonReader, ParsesDocumentStrictly) {
  const auto doc = telemetry::parse_json(
      R"({"a": 1, "b": [true, null, "x\n\u0041"], "c": {"d": -2.5e3}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->u64_or("a", 0), 1u);
  const auto* b = doc->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].as_bool());
  EXPECT_TRUE(b->items()[1].is_null());
  EXPECT_EQ(b->items()[2].as_string(), "x\nA");
  EXPECT_DOUBLE_EQ(doc->find("c")->number_or("d", 0), -2500.0);
}

TEST(JsonReader, RejectsMalformedInput) {
  EXPECT_FALSE(telemetry::parse_json("").has_value());
  EXPECT_FALSE(telemetry::parse_json("{").has_value());
  EXPECT_FALSE(telemetry::parse_json("{} extra").has_value());     // trailing garbage
  EXPECT_FALSE(telemetry::parse_json("{\"a\": 01}").has_value());  // bad number
  EXPECT_FALSE(telemetry::parse_json("{\"a\" 1}").has_value());
  EXPECT_FALSE(telemetry::parse_json("[1,]").has_value());
  EXPECT_FALSE(telemetry::parse_json("\"\\q\"").has_value());  // bad escape
  // Depth bomb: > 64 nested arrays.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(telemetry::parse_json(deep).has_value());
}

TEST(JsonReader, ExactDoubleRoundTripsThroughValueExact) {
  // value_exact (%.17g) + strtod must be a bitwise identity -- this is
  // what checkpoint manifests rely on for clocks and domain cuts.
  const double values[] = {0.1 + 0.2, 1.0 / 3.0, 6.02214076e23, -2.5e-17,
                           0.004999999999999999};
  for (const double v : values) {
    std::ostringstream ss;
    telemetry::JsonWriter w(ss, /*pretty=*/false);
    w.begin_array();
    w.value_exact(v);
    w.end_array();
    const auto doc = telemetry::parse_json(ss.str());
    ASSERT_TRUE(doc.has_value()) << ss.str();
    const double got = doc->items()[0].as_double();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof(double)), 0) << ss.str();
  }
}

// ------------------------------------------------------------- spans --

TEST(Trace, SpanNestingParsesBackOnRankTrack) {
  if (!telemetry::enabled()) GTEST_SKIP() << "built with GREEM_TELEMETRY=OFF";
  const char* path = "telemetry_test_trace.json";
  telemetry::clear_trace();
  const int prev = telemetry::set_trace_rank(42);
  {
    telemetry::Span outer("test/outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      telemetry::Span inner("test/inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  telemetry::set_trace_rank(prev);
  ASSERT_TRUE(telemetry::write_chrome_trace(path));

  JVal root;
  ASSERT_TRUE(JParser(read_file(path)).parse(root));
  const JVal* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JVal::kArr);

  const JVal* outer_ev = nullptr;
  const JVal* inner_ev = nullptr;
  bool track_named = false;
  for (const JVal& e : events->arr) {
    const JVal* name = e.find("name");
    const JVal* ph = e.find("ph");
    if (!name || !ph) continue;
    if (ph->str == "X" && name->str == "test/outer") outer_ev = &e;
    if (ph->str == "X" && name->str == "test/inner") inner_ev = &e;
    if (ph->str == "M" && name->str == "process_name" &&
        e.find("args")->find("name")->str == "rank 42")
      track_named = true;
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  EXPECT_TRUE(track_named);
  EXPECT_DOUBLE_EQ(outer_ev->find("pid")->num, 42.0);
  EXPECT_DOUBLE_EQ(inner_ev->find("pid")->num, 42.0);

  // Strict nesting: inner starts after outer and ends before it (ts/dur in
  // microseconds; allow 1 us of rounding slack).
  const double ots = outer_ev->find("ts")->num, odur = outer_ev->find("dur")->num;
  const double its = inner_ev->find("ts")->num, idur = inner_ev->find("dur")->num;
  EXPECT_GE(its + 1.0, ots);
  EXPECT_LE(its + idur, ots + odur + 1.0);
  EXPECT_GE(odur, 3000.0 * 0.5);  // slept >= 3 ms total; timers can be coarse

  telemetry::clear_trace();
  std::remove(path);
}

// --------------------------------------------------- traffic epochs --

TEST(TrafficLedger, EpochsTelescopeToTotals) {
  parx::TrafficLedger ledger(4);
  const parx::TrafficCounts c0 = ledger.counts();

  auto e1 = ledger.begin_phase("a");
  ledger.record(0, 1, 100);
  ledger.record(1, 2, 50);
  const parx::TrafficCounts d1 = e1.delta();
  EXPECT_EQ(e1.name(), "a");
  EXPECT_EQ(d1.totals().messages, 2u);
  EXPECT_EQ(d1.totals().bytes, 150u);

  auto e2 = ledger.begin_phase("b");
  ledger.record(2, 3, 10);
  ledger.record(3, 0, 5);
  ledger.record(3, 0, 5);
  const parx::TrafficCounts d2 = e2.delta();
  EXPECT_EQ(d2.totals().messages, 3u);
  EXPECT_EQ(d2.totals().bytes, 20u);

  // Consecutive epoch deltas sum exactly to the ledger's own change; no
  // message is lost or double-counted at the boundary.
  parx::TrafficCounts sum = d1;
  sum += d2;
  const parx::TrafficCounts all = ledger.counts() - c0;
  EXPECT_EQ(sum.totals().messages, all.totals().messages);
  EXPECT_EQ(sum.totals().bytes, all.totals().bytes);
  EXPECT_EQ(sum.totals().max_in_bytes, all.totals().max_in_bytes);

  // Epochs never mutate the ledger: totals() sees everything ever sent.
  EXPECT_EQ(ledger.totals().messages, 5u);
}

TEST(TrafficLedger, BarrieredEpochsAttributePhasesExactly) {
  constexpr int kRanks = 4;
  parx::Runtime rt(kRanks);
  std::uint64_t phase1_msgs = 0, phase2_msgs = 0, total_msgs = 0;
  rt.run([&](parx::Comm& world) {
    const auto p = static_cast<std::size_t>(world.size());
    auto payload = [&](std::size_t ints) {
      std::vector<std::vector<int>> send(p);
      for (std::size_t r = 0; r < p; ++r) send[r].assign(ints, world.rank());
      return send;
    };
    std::optional<parx::TrafficLedger::Epoch> epoch;
    world.barrier();
    if (world.rank() == 0) epoch.emplace(world.ledger().begin_phase("one"));
    world.barrier();
    world.alltoallv(payload(1));
    world.barrier();
    if (world.rank() == 0) {
      phase1_msgs = epoch->totals().messages;
      epoch.emplace(world.ledger().begin_phase("two"));
    }
    world.barrier();
    world.alltoallv(payload(2));
    world.alltoallv(payload(2));
    world.barrier();
    if (world.rank() == 0) {
      phase2_msgs = epoch->totals().messages;
      total_msgs = world.ledger().totals().messages;
    }
  });
  // alltoallv: every rank messages every other rank once -> p*(p-1).
  EXPECT_EQ(phase1_msgs, static_cast<std::uint64_t>(kRanks) * (kRanks - 1));
  EXPECT_EQ(phase2_msgs, 2u * kRanks * (kRanks - 1));
  EXPECT_EQ(phase1_msgs + phase2_msgs, total_msgs);
}

// ----------------------------------------------------- pool statistics --

TEST(PoolStats, CountsLoopsChunksAndBusyTime) {
  TaskPool pool(4);
  std::atomic<std::size_t> n{0};
  pool.for_dynamic(0, 1000, 10, [&](std::size_t lo, std::size_t hi, unsigned) {
    n += hi - lo;
  });
  EXPECT_EQ(n.load(), 1000u);

  const TaskPool::PoolStats s = pool.stats();
  EXPECT_EQ(s.loops, 1u);
  EXPECT_EQ(s.chunks, 100u);  // 1000 items / grain 10
  ASSERT_EQ(s.busy_s.size(), 4u);
  EXPECT_GT(s.busy_max(), 0.0);
  EXPECT_GE(s.imbalance(), 1.0);
  EXPECT_GT(s.elapsed_s, 0.0);

  pool.reset_stats();
  const TaskPool::PoolStats z = pool.stats();
  EXPECT_EQ(z.loops, 0u);
  EXPECT_EQ(z.chunks, 0u);
  EXPECT_EQ(z.steals, 0u);
}

TEST(PoolStats, ImbalancedLoadProducesSteals) {
  TaskPool pool(4);
  // Front-loaded work: the first quarter of the chunks carry all the cost,
  // so three participants' blocks drain instantly and they must steal.
  std::atomic<std::uint64_t> sink{0};
  pool.for_dynamic(0, 64, 1, [&](std::size_t lo, std::size_t, unsigned) {
    if (lo < 16) {
      std::uint64_t h = lo + 1;
      for (int i = 0; i < 2000000; ++i) h = h * 1315423911u + i;
      sink += h;
    }
  });
  const TaskPool::PoolStats s = pool.stats();
  EXPECT_EQ(s.chunks, 64u);
  EXPECT_GT(s.steals, 0u);
}

// ------------------------------------------------- end-to-end StepRecord --

TEST(StepReport, FlopTotalsMatchInteractionCounts) {
  if (!telemetry::enabled()) GTEST_SKIP() << "built with GREEM_TELEMETRY=OFF";
  const char* path = "telemetry_test_steps.jsonl";
  std::remove(path);

  core::ParallelSimConfig cfg;
  cfg.dims = {2, 1, 1};
  cfg.pm.n_mesh = 16;
  cfg.theta = 0.5;
  cfg.ncrit = 32;
  cfg.eps = 1e-3;
  cfg.sampling.target_samples = 2000;
  cfg.step_report_path = path;

  constexpr std::size_t kN = 600;
  auto particles = core::random_uniform_particles(kN, 1.0, 99);

  std::atomic<std::uint64_t> rank_interactions{0};
  parx::run_ranks(2, [&](parx::Comm& world) {
    std::vector<core::Particle> local =
        world.rank() == 0 ? particles : std::vector<core::Particle>{};
    core::ParallelSimulation sim(world, cfg, std::move(local), 0.0);
    sim.step(0.001);
    sim.step(0.002);
    rank_interactions += sim.last_step().pp_stats.interactions;
    // last_record() is filled collectively; every rank sees the aggregate.
    EXPECT_EQ(sim.last_record().step, 2u);
    EXPECT_EQ(sim.last_record().n_particles, kN);
  });

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::vector<JVal> records;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    JVal r;
    ASSERT_TRUE(JParser(line).parse(r)) << line;
    records.push_back(std::move(r));
  }
  ASSERT_EQ(records.size(), 2u);  // one JSON line per step

  const JVal& last = records.back();
  EXPECT_DOUBLE_EQ(last.find("step")->num, 2.0);
  EXPECT_DOUBLE_EQ(last.find("ranks")->num, 2.0);
  EXPECT_DOUBLE_EQ(last.find("n_particles")->num, static_cast<double>(kN));

  // Flop accounting: flops == global interactions * 51 (the paper's
  // per-interaction count), and interactions match the ranks' own sum.
  const double interactions = last.find("interactions")->num;
  EXPECT_DOUBLE_EQ(interactions, static_cast<double>(rank_interactions.load()));
  EXPECT_DOUBLE_EQ(last.find("flops")->num, interactions * pp::kFlopsPerInteraction);
  const double pp_max = last.find("pp_seconds_max")->num;
  ASSERT_GT(pp_max, 0.0);
  EXPECT_NEAR(last.find("flop_rate")->num,
              interactions * pp::kFlopsPerInteraction / pp_max,
              1e-6 * last.find("flop_rate")->num);

  // Phase breakdowns carry the Table I row names with a consistent total.
  const JVal* pp = last.find("pp");
  ASSERT_NE(pp, nullptr);
  for (const char* row : {"local tree", "communication", "tree construction",
                          "tree traversal", "force calculation"})
    EXPECT_NE(pp->find(row), nullptr) << row;
  EXPECT_GT(last.find("pm")->find("FFT")->num, 0.0);

  // Traffic buckets exist and saw messages (2 ranks exchange ghosts).
  const JVal* traffic = last.find("traffic");
  ASSERT_NE(traffic, nullptr);
  for (const char* phase : {"dd", "pp", "pm"}) {
    const JVal* ph = traffic->find(phase);
    ASSERT_NE(ph, nullptr) << phase;
    EXPECT_GT(ph->find("messages")->num, 0.0) << phase;
  }

  std::remove(path);
}

}  // namespace
}  // namespace greem
