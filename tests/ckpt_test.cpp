// Checkpoint/restart subsystem tests: CRC and atomic-file primitives,
// manifest round trips, bitwise restore determinism of the distributed
// simulation (including a pending mid-step PM half-kick), corruption
// rejection, retention pruning, and the injected-fault rollback-recovery
// loop end to end.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "ckpt/atomic_file.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/hash.hpp"
#include "ckpt/journal.hpp"
#include "ckpt/manifest.hpp"
#include "ckpt/recovery.hpp"
#include "core/parallel_sim.hpp"
#include "parx/fault.hpp"
#include "parx/runtime.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace greem::ckpt {
namespace {

namespace fs = std::filesystem;

// The hash primitives themselves are tested in util_test (they moved to
// util/hash); ckpt/hash.hpp only re-exports them.  One smoke check that
// the re-export still resolves:

TEST(CkptHash, ReexportResolvesToUtilImplementation) {
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

// ---------------------------------------------------------- job journal --

TEST(Journal, AppendReadRoundTripAndMissingFileIsNoJournal) {
  const std::string path = testing::TempDir() + "/journal_roundtrip.log";
  fs::remove(path);
  EXPECT_FALSE(read_journal(path).has_value());  // missing != empty
  {
    JournalWriter w(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.append(1, "{\"event\":\"a\"}"));
    ASSERT_TRUE(w.append(2, "{\"event\":\"b\"}"));
    ASSERT_TRUE(w.append(0, ""));  // empty payloads are legal
    EXPECT_EQ(w.appends(), 3u);
  }
  const auto rr = read_journal(path);
  ASSERT_TRUE(rr.has_value());
  EXPECT_FALSE(rr->truncated);
  EXPECT_TRUE(rr->corrupt_tags.empty());
  ASSERT_EQ(rr->records.size(), 3u);
  EXPECT_EQ(rr->records[0].tag, 1u);
  EXPECT_EQ(rr->records[0].payload, "{\"event\":\"a\"}");
  EXPECT_EQ(rr->records[1].tag, 2u);
  EXPECT_EQ(rr->records[2].payload, "");
}

TEST(Journal, CompactionReplacesHistoryWithOneSnapshotRecord) {
  const std::string path = testing::TempDir() + "/journal_compact.log";
  fs::remove(path);
  JournalWriter w(path);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(w.append(7, "x"));
  ASSERT_TRUE(w.compact(0, "{\"event\":\"snapshot\"}"));
  EXPECT_EQ(w.appends(), 1u);  // the snapshot counts as the first append
  ASSERT_TRUE(w.append(8, "y"));  // the reopened fd keeps appending
  const auto rr = read_journal(path);
  ASSERT_TRUE(rr.has_value());
  ASSERT_EQ(rr->records.size(), 2u);
  EXPECT_EQ(rr->records[0].payload, "{\"event\":\"snapshot\"}");
  EXPECT_EQ(rr->records[1].tag, 8u);
}

TEST(Journal, TruncatedTailIsIgnoredNotFatal) {
  const std::string path = testing::TempDir() + "/journal_trunc.log";
  fs::remove(path);
  {
    JournalWriter w(path);
    ASSERT_TRUE(w.append(1, "survives"));
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const std::string partial = encode_journal_record(2, "lost to the crash");
    out.write(partial.data(), static_cast<std::streamsize>(partial.size() / 2));
  }
  const auto rr = read_journal(path);
  ASSERT_TRUE(rr.has_value());
  EXPECT_TRUE(rr->truncated);
  EXPECT_GT(rr->bytes_dropped, 0u);
  ASSERT_EQ(rr->records.size(), 1u);
  EXPECT_EQ(rr->records[0].payload, "survives");
}

TEST(Journal, CrcMismatchSkipsRecordAndReportsTag) {
  const std::string path = testing::TempDir() + "/journal_crc.log";
  fs::remove(path);
  const std::string rec1 = encode_journal_record(1, "first");
  {
    JournalWriter w(path);
    ASSERT_TRUE(w.append(1, "first"));
    ASSERT_TRUE(w.append(42, "second"));
    ASSERT_TRUE(w.append(3, "third"));
  }
  {
    // Corrupt one payload byte of record 42: framing stays intact, so the
    // scan skips it, attributes it, and keeps going.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(rec1.size() + 20));
    f.put('!');
  }
  const auto rr = read_journal(path);
  ASSERT_TRUE(rr.has_value());
  EXPECT_FALSE(rr->truncated);
  ASSERT_EQ(rr->corrupt_tags.size(), 1u);
  EXPECT_EQ(rr->corrupt_tags[0], 42u);
  ASSERT_EQ(rr->records.size(), 2u);
  EXPECT_EQ(rr->records[0].payload, "first");
  EXPECT_EQ(rr->records[1].payload, "third");
}

TEST(Journal, GarbageLengthFailsFramingInsteadOfSwallowingTheFile) {
  const std::string path = testing::TempDir() + "/journal_len.log";
  fs::remove(path);
  {
    JournalWriter w(path);
    ASSERT_TRUE(w.append(1, "ok"));
  }
  {
    // A header whose length field is garbage (> kJournalMaxRecord): the
    // reader must stop at the framing boundary, not trust the length.
    std::string bad;
    const std::uint32_t magic = kJournalMagic, len = 0xffffffffu, crc = 0;
    const std::uint64_t tag = 9;
    bad.append(reinterpret_cast<const char*>(&magic), 4);
    bad.append(reinterpret_cast<const char*>(&len), 4);
    bad.append(reinterpret_cast<const char*>(&tag), 8);
    bad.append(reinterpret_cast<const char*>(&crc), 4);
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }
  const auto rr = read_journal(path);
  ASSERT_TRUE(rr.has_value());
  EXPECT_TRUE(rr->truncated);
  ASSERT_EQ(rr->records.size(), 1u);
}

TEST(Journal, FailedAppendRetiresWriterInsteadOfPoisoningTheLog) {
  // /dev/full accepts the open but fails every write with ENOSPC, and as
  // a device it cannot be ftruncate'd back -- the rewind is impossible,
  // so the writer must retire its fd.  The invariant under test: after a
  // failed append the writer NEVER keeps appending past partial bytes
  // (which would leave every later good record behind an unframeable
  // tail the reader drops).
  if (!fs::exists("/dev/full")) GTEST_SKIP() << "/dev/full not available";
  JournalWriter w("/dev/full");
  ASSERT_TRUE(w.ok());
  EXPECT_FALSE(w.append(1, "{\"event\":\"doomed\"}"));
  EXPECT_FALSE(w.ok());  // retired: rewind impossible on a device
  EXPECT_FALSE(w.append(2, "{\"event\":\"after\"}"));
  EXPECT_EQ(w.appends(), 0u);
}

// ----------------------------------------------------------- atomic file --

TEST(AtomicFile, CommitPublishesExactlyOnce) {
  const std::string path = testing::TempDir() + "/atomic_commit.txt";
  fs::remove(path);
  {
    AtomicFileWriter w(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.write("hello", 5));
    EXPECT_FALSE(fs::exists(path)) << "must not appear before commit";
    ASSERT_TRUE(w.commit());
  }
  ASSERT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::ifstream in(path);
  std::string got;
  std::getline(in, got);
  EXPECT_EQ(got, "hello");
}

TEST(AtomicFile, AbortLeavesNothing) {
  const std::string path = testing::TempDir() + "/atomic_abort.txt";
  fs::remove(path);
  {
    AtomicFileWriter w(path);
    w.write("partial", 7);
    // No commit: the destructor aborts.
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicFile, CommitPreservesPreviousOnOpenFailure) {
  const std::string path = "/nonexistent-dir-xyz/file.txt";
  AtomicFileWriter w(path);
  EXPECT_FALSE(w.ok());
  EXPECT_FALSE(w.write("x", 1));
  EXPECT_FALSE(w.commit());
}

// --------------------------------------------------------------- manifest --

Manifest sample_manifest() {
  Manifest m;
  m.state.step = 4;
  m.state.substep = 9;
  m.state.clock = 0.1 + 0.2;  // a value that %.9g would round
  m.state.pending_long_kick = 1.0 / 3.0;
  m.state.config_fingerprint = 0xDEADBEEFCAFE1234ull;
  m.state.dims = {2, 2, 1};
  m.state.decomp_flat = {0.0, 0.5000000001, 1.0, 0.0, 1.0 / 3.0, 1.0};
  m.state.smoother_history = {{0.1, 0.2}, {0.3, 0.4}};
  for (int r = 0; r < 4; ++r)
    m.shards.push_back({r, "shard_0000" + std::to_string(r) + ".bin", 100 + r, 9600,
                        0xABCD0000u + r, 1e-3 * r});
  return m;
}

TEST(Manifest, RoundTripsBitwise) {
  const Manifest m = sample_manifest();
  const auto parsed = parse_manifest(manifest_to_json(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->state.step, m.state.step);
  EXPECT_EQ(parsed->state.substep, m.state.substep);
  // Bitwise, not approximate: restored state must be exact.
  EXPECT_EQ(std::memcmp(&parsed->state.clock, &m.state.clock, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&parsed->state.pending_long_kick, &m.state.pending_long_kick,
                        sizeof(double)),
            0);
  EXPECT_EQ(parsed->state.config_fingerprint, m.state.config_fingerprint);
  EXPECT_EQ(parsed->state.dims, m.state.dims);
  ASSERT_EQ(parsed->state.decomp_flat.size(), m.state.decomp_flat.size());
  for (std::size_t i = 0; i < m.state.decomp_flat.size(); ++i)
    EXPECT_EQ(std::memcmp(&parsed->state.decomp_flat[i], &m.state.decomp_flat[i],
                          sizeof(double)),
              0);
  EXPECT_EQ(parsed->state.smoother_history, m.state.smoother_history);
  ASSERT_EQ(parsed->shards.size(), m.shards.size());
  EXPECT_EQ(parsed->shards[3].crc32, m.shards[3].crc32);
  EXPECT_EQ(parsed->shards[3].n_items, m.shards[3].n_items);
}

TEST(Manifest, RejectsGarbageAndInconsistency) {
  EXPECT_FALSE(parse_manifest("").has_value());
  EXPECT_FALSE(parse_manifest("not json").has_value());
  EXPECT_FALSE(parse_manifest("{}").has_value());
  EXPECT_FALSE(parse_manifest(R"({"format":"other","version":1})").has_value());

  const Manifest m = sample_manifest();
  // Valid JSON with trailing garbage is rejected by the strict parser.
  EXPECT_FALSE(parse_manifest(manifest_to_json(m) + "trailing").has_value());

  // dims product disagreeing with the shard count is rejected.
  Manifest bad = m;
  bad.state.dims = {3, 1, 1};
  EXPECT_FALSE(parse_manifest(manifest_to_json(bad)).has_value());

  // A future version is rejected (no silent misinterpretation).
  std::string json = manifest_to_json(m);
  const auto at = json.find("\"version\": 1");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, 12, "\"version\": 9");
  EXPECT_FALSE(parse_manifest(json).has_value());
}

// ------------------------------------------------- distributed round trip --

using core::ParallelSimConfig;
using core::ParallelSimulation;
using core::Particle;

ParallelSimConfig deterministic_config(std::array<int, 3> dims) {
  ParallelSimConfig cfg;
  cfg.dims = dims;
  cfg.pm.n_mesh = 16;
  cfg.theta = 0.3;
  cfg.ncrit = 32;
  cfg.eps = 1e-3;
  cfg.sampling.target_samples = 2000;
  // Interaction-count cost weighting: the one config change that makes the
  // whole run (and therefore checkpoint round trips) bitwise reproducible.
  cfg.cost_metric = core::CostMetric::kInteractions;
  return cfg;
}

std::vector<Particle> test_particles(std::size_t n, std::uint64_t seed) {
  auto ps = core::random_uniform_particles(n, 1.0, seed);
  Rng rng(seed + 1);
  for (auto& p : ps) p.mom = {rng.normal() * 0.2, rng.normal() * 0.2, rng.normal() * 0.2};
  return ps;
}

/// Collect all particles sorted by id (collective helper; returns the full
/// set on every rank via the caller's mutex-protected vector on rank 0).
std::vector<Particle> sorted_locals(std::vector<std::vector<Particle>>& per_rank) {
  std::vector<Particle> all;
  for (auto& v : per_rank) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(),
            [](const Particle& a, const Particle& b) { return a.id < b.id; });
  return all;
}

void expect_bitwise_equal(const std::vector<Particle>& a, const std::vector<Particle>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(Particle)), 0)
        << "particle " << a[i].id << " differs bitwise";
  }
}

struct RunResult {
  std::vector<Particle> particles;
  double clock = 0;
};

/// Run `total_steps` on `nranks` ranks; when `ckpt_dir` is non-null, write
/// a checkpoint after `ckpt_at` steps.  When `restore` is non-null, start
/// from that checkpoint (dir or parent) instead of `initial`.
RunResult run_sim(std::array<int, 3> dims, const std::vector<Particle>& initial,
                  int total_steps, double dt, const std::string* ckpt_dir = nullptr,
                  int ckpt_at = 0, const std::string* restore = nullptr) {
  const int p = dims[0] * dims[1] * dims[2];
  std::mutex mu;
  std::vector<std::vector<Particle>> per_rank(static_cast<std::size_t>(p));
  double clock = 0;
  parx::run_ranks(p, [&](parx::Comm& world) {
    std::vector<Particle> local =
        world.rank() == 0 ? initial : std::vector<Particle>{};
    auto cfg = deterministic_config(dims);
    if (restore) cfg.restore_from = *restore;
    ParallelSimulation sim(world, cfg, std::move(local), 0.0);
    for (std::uint64_t s = sim.step_index() + 1; s <= static_cast<std::uint64_t>(total_steps);
         ++s) {
      sim.step(static_cast<double>(s) * dt);
      if (ckpt_dir && s == static_cast<std::uint64_t>(ckpt_at))
        sim.checkpoint(*ckpt_dir, /*keep_last=*/0);
    }
    sim.synchronize();
    std::lock_guard lock(mu);
    const auto loc = sim.local();
    per_rank[static_cast<std::size_t>(world.rank())].assign(loc.begin(), loc.end());
    clock = sim.clock();
  });
  return {sorted_locals(per_rank), clock};
}

TEST(CkptRoundTrip, RestoreIsBitwiseDeterministic) {
  const std::string dir = testing::TempDir() + "/ckpt_bitwise";
  fs::remove_all(dir);
  const auto initial = test_particles(600, 42);
  const double dt = 0.004;

  // Uninterrupted 4-step run.
  const auto full = run_sim({2, 2, 1}, initial, 4, dt);

  // 2 steps + checkpoint; at that point the sim owes the next step a PM
  // half-kick (mid-KDK), which the manifest must carry.
  const auto half = run_sim({2, 2, 1}, initial, 2, dt, &dir, 2);
  const auto latest = find_latest(dir);
  ASSERT_TRUE(latest.has_value());
  const auto manifest = read_manifest(*latest);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->state.step, 2u);
  EXPECT_NE(manifest->state.pending_long_kick, 0.0)
      << "checkpoint must capture the pending long-range half-kick";
  EXPECT_FALSE(manifest->state.smoother_history.empty());

  // Restore + remaining 2 steps: bitwise-identical to the full run.
  const auto resumed = run_sim({2, 2, 1}, initial, 4, dt, nullptr, 0, &dir);
  EXPECT_EQ(resumed.clock, full.clock);
  expect_bitwise_equal(resumed.particles, full.particles);
}

TEST(CkptRoundTrip, RestoreAcceptsExplicitCheckpointDir) {
  const std::string dir = testing::TempDir() + "/ckpt_explicit";
  fs::remove_all(dir);
  const auto initial = test_particles(300, 7);
  const double dt = 0.004;
  const auto full = run_sim({2, 1, 1}, initial, 3, dt);
  run_sim({2, 1, 1}, initial, 2, dt, &dir, 2);
  const auto latest = find_latest(dir);
  ASSERT_TRUE(latest.has_value());
  // Pass the checkpoint directory itself, not the parent.
  const auto resumed = run_sim({2, 1, 1}, initial, 3, dt, nullptr, 0, &*latest);
  expect_bitwise_equal(resumed.particles, full.particles);
}

TEST(Ckpt, CorruptShardFailsLoudlyOnEveryRank) {
  const std::string dir = testing::TempDir() + "/ckpt_corrupt";
  fs::remove_all(dir);
  const auto initial = test_particles(300, 11);
  run_sim({2, 1, 1}, initial, 2, 0.004, &dir, 2);
  const auto latest = find_latest(dir);
  ASSERT_TRUE(latest.has_value());

  // Flip one payload byte in rank 1's shard.
  const std::string shard = *latest + "/shard_00001.bin";
  {
    std::fstream f(shard, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekp(static_cast<std::streamoff>(size) - 5);
    char b;
    f.seekg(static_cast<std::streamoff>(size) - 5);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size) - 5);
    f.write(&b, 1);
  }

  parx::run_ranks(2, [&](parx::Comm& world) {
    // The CRC mismatch is detected by rank 1 but thrown on every rank
    // (collective agreement), so no rank proceeds with stale state.
    EXPECT_THROW(read_checkpoint(world, *latest), CkptError);
  });
}

TEST(Ckpt, UncommittedCheckpointIsInvisible) {
  const std::string dir = testing::TempDir() + "/ckpt_uncommitted";
  fs::remove_all(dir);
  const auto initial = test_particles(300, 13);
  run_sim({2, 1, 1}, initial, 1, 0.004, &dir, 1);
  run_sim({2, 1, 1}, initial, 2, 0.004, &dir, 2);
  auto committed = list_committed(dir);
  ASSERT_EQ(committed.size(), 2u);

  // Simulate a crash between shard commit and manifest commit: the newest
  // checkpoint loses its manifest and must vanish from the committed set.
  fs::remove(fs::path(committed[1]) / kManifestName);
  committed = list_committed(dir);
  ASSERT_EQ(committed.size(), 1u);
  const auto latest = find_latest(dir);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, committed[0]);

  // A corrupt (truncated) manifest is equally invisible.
  {
    std::ofstream f(fs::path(committed[0]) / kManifestName, std::ios::trunc);
    f << "{\"format\": \"greem-ckpt\", \"version\": 1";
  }
  EXPECT_FALSE(find_latest(dir).has_value());
}

TEST(Ckpt, RetentionKeepsOnlyNewest) {
  const std::string dir = testing::TempDir() + "/ckpt_retention";
  fs::remove_all(dir);
  const auto initial = test_particles(200, 17);
  parx::run_ranks(2, [&](parx::Comm& world) {
    std::vector<Particle> local =
        world.rank() == 0 ? initial : std::vector<Particle>{};
    ParallelSimulation sim(world, deterministic_config({2, 1, 1}), std::move(local), 0.0);
    for (int s = 1; s <= 3; ++s) {
      sim.step(s * 0.004);
      sim.checkpoint(dir, /*keep_last=*/2);
    }
  });
  const auto committed = list_committed(dir);
  ASSERT_EQ(committed.size(), 2u);
  EXPECT_NE(committed[0].find("ckpt_00000002"), std::string::npos);
  EXPECT_NE(committed[1].find("ckpt_00000003"), std::string::npos);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "ckpt_00000001"));
}

TEST(Ckpt, FingerprintMismatchRejected) {
  const std::string dir = testing::TempDir() + "/ckpt_fingerprint";
  fs::remove_all(dir);
  const auto initial = test_particles(200, 19);
  run_sim({2, 1, 1}, initial, 1, 0.004, &dir, 1);
  parx::run_ranks(2, [&](parx::Comm& world) {
    auto cfg = deterministic_config({2, 1, 1});
    cfg.theta = 0.7;  // different physics: must not silently resume
    cfg.restore_from = dir;
    std::vector<Particle> local =
        world.rank() == 0 ? initial : std::vector<Particle>{};
    EXPECT_THROW(ParallelSimulation(world, cfg, std::move(local), 0.0), CkptError);
  });
}

TEST(ConfigFingerprint, SensitiveToDynamicsInsensitiveToReporting) {
  const auto base = deterministic_config({2, 2, 1});
  const auto h0 = core::config_fingerprint(base);

  auto changed = base;
  changed.theta = 0.31;
  EXPECT_NE(core::config_fingerprint(changed), h0);
  changed = base;
  changed.sampling.seed += 1;
  EXPECT_NE(core::config_fingerprint(changed), h0);
  changed = base;
  changed.pm.n_mesh = 32;
  EXPECT_NE(core::config_fingerprint(changed), h0);

  // Reporting and restore paths are not physics.
  changed = base;
  changed.step_report_path = "/tmp/report.jsonl";
  changed.restore_from = "/tmp/ckpts";
  changed.pool_threads = 3;
  EXPECT_EQ(core::config_fingerprint(changed), h0);
}

// --------------------------------------------------- fault injection e2e --

TEST(Recovery, InjectedRankAbortRollsBackAndMatchesBitwise) {
  const std::string dir = testing::TempDir() + "/ckpt_recovery";
  fs::remove_all(dir);
  const auto initial = test_particles(400, 23);
  const double dt = 0.004;
  const int nsteps = 4;
  const auto schedule = [dt](std::uint64_t i) { return static_cast<double>(i + 1) * dt; };

  // Reference: uninterrupted run.
  const auto full = run_sim({2, 2, 1}, initial, nsteps, dt);

  const auto injected_before =
      telemetry::Registry::global().counter("faults/injected").value();

  // Faulted run: rank 2 aborts in the PP phase of step 3, once.
  parx::Runtime rt(4);
  rt.set_fault_plan(parx::FaultPlan().at(
      {.step = 3, .phase = parx::FaultPhase::kPP, .kind = parx::FaultKind::kRankAbort,
       .rank = 2, .times = 1}));

  std::mutex mu;
  std::vector<std::vector<Particle>> per_rank(4);
  RecoveryStats stats0;
  rt.run([&](parx::Comm& world) {
    std::vector<Particle> local =
        world.rank() == 0 ? initial : std::vector<Particle>{};
    ParallelSimulation sim(world, deterministic_config({2, 2, 1}), std::move(local), 0.0);
    RecoveryOptions opts;
    opts.dir = dir;
    opts.checkpoint_every = 1;
    opts.keep_last = 2;
    opts.max_attempts = 3;
    const auto stats = run_with_recovery(sim, nsteps, schedule, opts);
    sim.synchronize();
    std::lock_guard lock(mu);
    const auto loc = sim.local();
    per_rank[static_cast<std::size_t>(world.rank())].assign(loc.begin(), loc.end());
    if (world.rank() == 0) stats0 = stats;
  });

  EXPECT_EQ(stats0.failures, 1u);
  EXPECT_EQ(stats0.restores, 1u);
  EXPECT_GE(stats0.checkpoints, static_cast<std::uint64_t>(nsteps));
  if (telemetry::enabled()) {
    EXPECT_EQ(telemetry::Registry::global().counter("faults/injected").value(),
              injected_before + 1);
    EXPECT_GE(telemetry::Registry::global().counter("ckpt/restores").value(), 1u);
  }

  // The recovered run ends in exactly the state of the uninterrupted one.
  const auto recovered = sorted_locals(per_rank);
  expect_bitwise_equal(recovered, full.particles);
}

TEST(Recovery, NoCheckpointToRollBackToThrows) {
  const std::string dir = testing::TempDir() + "/ckpt_norollback";
  fs::remove_all(dir);
  const auto initial = test_particles(200, 29);
  const auto schedule = [](std::uint64_t i) { return static_cast<double>(i + 1) * 0.004; };

  parx::Runtime rt(2);
  rt.set_fault_plan(parx::FaultPlan().at(
      {.step = 1, .phase = parx::FaultPhase::kPP, .kind = parx::FaultKind::kRankAbort,
       .rank = 1, .times = 1}));
  rt.run([&](parx::Comm& world) {
    std::vector<Particle> local =
        world.rank() == 0 ? initial : std::vector<Particle>{};
    ParallelSimulation sim(world, deterministic_config({2, 1, 1}), std::move(local), 0.0);
    RecoveryOptions opts;
    opts.dir = dir;
    opts.checkpoint_every = 2;  // fault at step 1 precedes any checkpoint
    EXPECT_THROW(run_with_recovery(sim, 2, schedule, opts), CkptError);
  });
}

}  // namespace
}  // namespace greem::ckpt
