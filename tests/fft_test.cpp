// FFT substrate tests: 1-D against a direct DFT, 3-D roundtrips and
// analytic modes, and the slab-parallel transform against the serial one.

#include <gtest/gtest.h>

#include <complex>
#include <numbers>

#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "fft/pencil_fft.hpp"
#include "fft/slab_fft.hpp"
#include "parx/runtime.hpp"
#include "util/rng.hpp"

namespace greem::fft {
namespace {

std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex s{};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(j * k) / static_cast<double>(n);
      s += x[j] * Complex{std::cos(ang), std::sin(ang)};
    }
    out[k] = s;
  }
  return out;
}

class Fft1dSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1dSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<Complex> x(n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  const auto ref = naive_dft(x);
  auto got = x;
  Fft1d plan(n);
  plan.forward(got.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(got[k].real(), ref[k].real(), 1e-9 * static_cast<double>(n));
    EXPECT_NEAR(got[k].imag(), ref[k].imag(), 1e-9 * static_cast<double>(n));
  }
}

TEST_P(Fft1dSizes, InverseRoundtrips) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<Complex> x(n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  auto y = x;
  Fft1d plan(n);
  plan.forward(y.data());
  plan.inverse(y.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, Fft1dSizes,
                         ::testing::Values<std::size_t>(1, 2, 4, 8, 16, 64, 256));

TEST(Fft1d, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Fft1d(12), std::invalid_argument);
  EXPECT_THROW(Fft1d(0), std::invalid_argument);
}

TEST(Fft1d, StridedMatchesContiguous) {
  const std::size_t n = 32, stride = 5;
  Rng rng(3);
  std::vector<Complex> packed(n), strided(n * stride);
  for (std::size_t i = 0; i < n; ++i) {
    packed[i] = {rng.normal(), rng.normal()};
    strided[i * stride] = packed[i];
  }
  Fft1d plan(n);
  plan.forward(packed.data());
  plan.forward_strided(strided.data(), stride);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(strided[i * stride].real(), packed[i].real(), 1e-10);
    EXPECT_NEAR(strided[i * stride].imag(), packed[i].imag(), 1e-10);
  }
}

TEST(Fft3d, SingleModeTransformsToDelta) {
  const std::size_t n = 16;
  Fft3d fft(n);
  // f(x) = cos(2 pi (2x + 3y + z)) -> peaks at (2,3,1) and (-2,-3,-1).
  std::vector<double> f(n * n * n);
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x)
        f[fft.index(x, y, z)] = std::cos(2.0 * std::numbers::pi *
                                         (2.0 * x + 3.0 * y + 1.0 * z) / static_cast<double>(n));
  auto fk = fft.forward_real(f);
  const double ncells = static_cast<double>(n * n * n);
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x) {
        const double expected =
            ((x == 2 && y == 3 && z == 1) || (x == n - 2 && y == n - 3 && z == n - 1))
                ? ncells / 2
                : 0.0;
        EXPECT_NEAR(fk[fft.index(x, y, z)].real(), expected, 1e-7);
        EXPECT_NEAR(fk[fft.index(x, y, z)].imag(), 0.0, 1e-7);
      }
}

TEST(Fft3d, RoundtripRecoversField) {
  const std::size_t n = 8;
  Fft3d fft(n);
  Rng rng(9);
  std::vector<double> f(n * n * n);
  for (auto& v : f) v = rng.normal();
  auto fk = fft.forward_real(f);
  auto back = fft.inverse_to_real(std::move(fk));
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_NEAR(back[i], f[i], 1e-11);
}

TEST(Fft3d, ParsevalHolds) {
  const std::size_t n = 8;
  Fft3d fft(n);
  Rng rng(10);
  std::vector<double> f(n * n * n);
  for (auto& v : f) v = rng.normal();
  auto fk = fft.forward_real(f);
  double sum_x = 0, sum_k = 0;
  for (double v : f) sum_x += v * v;
  for (const auto& c : fk) sum_k += std::norm(c);
  EXPECT_NEAR(sum_k, sum_x * static_cast<double>(n * n * n), 1e-6 * sum_k);
}

TEST(Wavenumber, SignedConvention) {
  EXPECT_EQ(wavenumber(0, 8), 0);
  EXPECT_EQ(wavenumber(1, 8), 1);
  EXPECT_EQ(wavenumber(4, 8), 4);   // Nyquist stays positive
  EXPECT_EQ(wavenumber(5, 8), -3);
  EXPECT_EQ(wavenumber(7, 8), -1);
}

TEST(SplitRange, CoversWithoutOverlap) {
  for (int p : {1, 3, 4, 7}) {
    std::size_t covered = 0;
    std::size_t expect_begin = 0;
    for (int r = 0; r < p; ++r) {
      const Range g = split_range(13, p, r);
      EXPECT_EQ(g.begin, expect_begin);
      expect_begin = g.end();
      covered += g.count;
    }
    EXPECT_EQ(covered, 13u);
  }
}

class SlabFftRanks : public ::testing::TestWithParam<int> {};

TEST_P(SlabFftRanks, MatchesSerialTransform) {
  const int p = GetParam();
  const std::size_t n = 16;

  // Serial reference.
  Fft3d serial(n);
  Rng rng(77);
  std::vector<Complex> field(n * n * n);
  for (auto& v : field) v = {rng.normal(), rng.normal()};
  auto ref = field;
  serial.forward(ref);

  parx::run_ranks(p, [&](parx::Comm& c) {
    SlabFft slab(c, n);
    const Range zr = slab.local_z();
    std::vector<Complex> mine(zr.count * n * n);
    for (std::size_t z = zr.begin; z < zr.end(); ++z)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t x = 0; x < n; ++x)
          mine[slab.index(x, y, z)] = field[serial.index(x, y, z)];

    auto orig = mine;
    slab.forward(mine);
    for (std::size_t z = zr.begin; z < zr.end(); ++z)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t x = 0; x < n; ++x) {
          EXPECT_NEAR(mine[slab.index(x, y, z)].real(), ref[serial.index(x, y, z)].real(),
                      1e-8);
          EXPECT_NEAR(mine[slab.index(x, y, z)].imag(), ref[serial.index(x, y, z)].imag(),
                      1e-8);
        }

    slab.inverse(mine);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_NEAR(mine[i].real(), orig[i].real(), 1e-10);
      EXPECT_NEAR(mine[i].imag(), orig[i].imag(), 1e-10);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, SlabFftRanks, ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(SlabFft, RejectsMoreRanksThanPlanes) {
  parx::run_ranks(5, [&](parx::Comm& c) {
    EXPECT_THROW(SlabFft(c, 4), std::invalid_argument);
  });
}


// ---- real-to-complex path ----

class R2CSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(R2CSizes, HalfSpectrumMatchesComplexTransform) {
  const std::size_t n = GetParam();
  Rng rng(n + 50);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();

  Fft1d plan(n);
  std::vector<Complex> full(n);
  for (std::size_t i = 0; i < n; ++i) full[i] = {x[i], 0.0};
  plan.forward(full.data());

  std::vector<Complex> half(n / 2 + 1);
  plan.forward_r2c(x.data(), half.data());
  for (std::size_t k = 0; k <= n / 2; ++k) {
    EXPECT_NEAR(half[k].real(), full[k].real(), 1e-10) << "k = " << k;
    EXPECT_NEAR(half[k].imag(), full[k].imag(), 1e-10) << "k = " << k;
  }

  std::vector<double> back(n);
  plan.inverse_c2r(half.data(), back.data());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Lengths, R2CSizes, ::testing::Values<std::size_t>(2, 4, 8, 32, 256));

TEST(Fft3dR2C, MatchesComplexTransformAndRoundtrips) {
  const std::size_t n = 16;
  Rng rng(123);
  std::vector<double> f(n * n * n);
  for (auto& v : f) v = rng.normal();

  Fft3d complex_fft(n);
  const auto ref = complex_fft.forward_real(f);

  Fft3dR2C r2c(n);
  const auto half = r2c.forward(f);
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x <= n / 2; ++x) {
        EXPECT_NEAR(half[r2c.index(x, y, z)].real(), ref[complex_fft.index(x, y, z)].real(),
                    1e-9);
        EXPECT_NEAR(half[r2c.index(x, y, z)].imag(), ref[complex_fft.index(x, y, z)].imag(),
                    1e-9);
      }

  const auto back = r2c.inverse(half);
  for (std::size_t i = 0; i < f.size(); ++i) EXPECT_NEAR(back[i], f[i], 1e-11);
}

// ---- pencil (2-D decomposed) FFT: the paper's stated future work ----

struct PencilGrid {
  int p, pr, pc;
};

class PencilFftGrids : public ::testing::TestWithParam<PencilGrid> {};

TEST_P(PencilFftGrids, MatchesSerialTransform) {
  const auto grid = GetParam();
  const std::size_t n = 16;

  Fft3d serial(n);
  Rng rng(99);
  std::vector<Complex> field(n * n * n);
  for (auto& v : field) v = {rng.normal(), rng.normal()};
  auto ref = field;
  serial.forward(ref);

  parx::run_ranks(grid.p, [&](parx::Comm& c) {
    PencilFft pencil(c, n, grid.pr, grid.pc);
    std::vector<Complex> mine(pencil.in_cells());
    for (std::size_t z = pencil.in_z().begin; z < pencil.in_z().end(); ++z)
      for (std::size_t y = pencil.in_y().begin; y < pencil.in_y().end(); ++y)
        for (std::size_t x = 0; x < n; ++x)
          mine[pencil.in_index(x, y, z)] = field[serial.index(x, y, z)];

    auto spec = pencil.forward(mine);
    for (std::size_t y = pencil.out_y().begin; y < pencil.out_y().end(); ++y)
      for (std::size_t x = pencil.out_x().begin; x < pencil.out_x().end(); ++x)
        for (std::size_t z = 0; z < n; ++z) {
          EXPECT_NEAR(spec[pencil.out_index(x, y, z)].real(),
                      ref[serial.index(x, y, z)].real(), 1e-8);
          EXPECT_NEAR(spec[pencil.out_index(x, y, z)].imag(),
                      ref[serial.index(x, y, z)].imag(), 1e-8);
        }

    auto back = pencil.inverse(spec);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_NEAR(back[i].real(), mine[i].real(), 1e-10);
      EXPECT_NEAR(back[i].imag(), mine[i].imag(), 1e-10);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, PencilFftGrids,
                         ::testing::Values(PencilGrid{1, 1, 1}, PencilGrid{4, 2, 2},
                                           PencilGrid{6, 2, 3}, PencilGrid{6, 3, 2},
                                           PencilGrid{12, 4, 3}, PencilGrid{16, 4, 4}));

TEST(PencilFft, SupportsMoreRanksThanSlabCeiling) {
  // n = 8 planes caps the slab FFT at 8 ranks; the pencil grid runs 32.
  const std::size_t n = 8;
  Fft3d serial(n);
  Rng rng(101);
  std::vector<Complex> field(n * n * n);
  for (auto& v : field) v = {rng.normal(), rng.normal()};
  auto ref = field;
  serial.forward(ref);

  parx::run_ranks(32, [&](parx::Comm& c) {
    EXPECT_THROW(SlabFft(c, n), std::invalid_argument);
    PencilFft pencil(c, n, 4, 8);
    std::vector<Complex> mine(pencil.in_cells());
    for (std::size_t z = pencil.in_z().begin; z < pencil.in_z().end(); ++z)
      for (std::size_t y = pencil.in_y().begin; y < pencil.in_y().end(); ++y)
        for (std::size_t x = 0; x < n; ++x)
          mine[pencil.in_index(x, y, z)] = field[serial.index(x, y, z)];
    auto spec = pencil.forward(mine);
    for (std::size_t y = pencil.out_y().begin; y < pencil.out_y().end(); ++y)
      for (std::size_t x = pencil.out_x().begin; x < pencil.out_x().end(); ++x)
        for (std::size_t z = 0; z < n; ++z)
          EXPECT_NEAR(spec[pencil.out_index(x, y, z)].real(),
                      ref[serial.index(x, y, z)].real(), 1e-9);
  });
}

TEST(PencilFft, RejectsBadGrids) {
  parx::run_ranks(4, [](parx::Comm& c) {
    EXPECT_THROW(PencilFft(c, 16, 3, 2), std::invalid_argument);   // 3*2 != 4
    EXPECT_THROW(PencilFft(c, 2, 4, 1), std::invalid_argument);    // pr > n
  });
}

}  // namespace
}  // namespace greem::fft
