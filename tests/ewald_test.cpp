// Ewald reference-force tests: splitting-parameter independence (the
// defining self-check), Newtonian limit, symmetry, momentum conservation,
// table interpolation accuracy, and potential constants.

#include <gtest/gtest.h>

#include <cmath>

#include "core/direct_force.hpp"
#include "ewald/ewald.hpp"
#include "util/rng.hpp"

namespace greem::ewald {
namespace {

TEST(Ewald, ResultIndependentOfSplittingAlpha) {
  // The Ewald sum must not depend on alpha; two very different splittings
  // agreeing to high precision validates both sums.
  EwaldParams p1;
  p1.alpha = 1.8;
  p1.nreal = 3;
  p1.hmax2 = 16;
  EwaldParams p2;
  p2.alpha = 2.6;
  p2.nreal = 3;
  p2.hmax2 = 24;
  const Ewald e1(p1), e2(p2);
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    const Vec3 dx{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)};
    if (dx.norm() < 0.05) continue;
    const Vec3 a1 = e1.pair_acceleration_exact(dx);
    const Vec3 a2 = e2.pair_acceleration_exact(dx);
    const double scale = std::max(a1.norm(), 1.0);
    EXPECT_NEAR(a1.x, a2.x, 1e-5 * scale);
    EXPECT_NEAR(a1.y, a2.y, 1e-5 * scale);
    EXPECT_NEAR(a1.z, a2.z, 1e-5 * scale);
  }
}

TEST(Ewald, ReducesToNewtonAtSmallSeparation) {
  const Ewald ew;
  const Vec3 dx{0.01, 0.005, -0.003};
  const Vec3 a = ew.pair_acceleration_exact(dx);
  const double r = dx.norm();
  const Vec3 newton = -dx / (r * r * r);
  // Periodic correction is O(r) near the origin vs O(1/r^2) Newton.
  EXPECT_NEAR(a.x, newton.x, 20.0);  // |newton| ~ 8e3 here
  EXPECT_NEAR((a - newton).norm() / newton.norm(), 0.0, 1e-4);
}

TEST(Ewald, ForceIsOddUnderInversion) {
  const Ewald ew;
  const Vec3 dx{0.23, -0.11, 0.31};
  const Vec3 a = ew.pair_acceleration_exact(dx);
  const Vec3 b = ew.pair_acceleration_exact(-dx);
  EXPECT_NEAR(a.x, -b.x, 1e-12);
  EXPECT_NEAR(a.y, -b.y, 1e-12);
  EXPECT_NEAR(a.z, -b.z, 1e-12);
}

TEST(Ewald, ForceVanishesAtHighSymmetryPoints) {
  const Ewald ew;
  // Half-box displacement: images balance exactly.
  for (const Vec3 dx : {Vec3{0.5, 0.5, 0.5}, Vec3{0.5, 0.0, 0.0}, Vec3{0.0, 0.5, 0.5}}) {
    EXPECT_LT(ew.pair_acceleration_exact(dx).norm(), 1e-10) << dx.x << dx.y << dx.z;
  }
}

TEST(Ewald, AccelerationsConserveMomentum) {
  Rng rng(2);
  std::vector<Vec3> pos(20);
  std::vector<double> mass(20);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    pos[i] = {rng.uniform(), rng.uniform(), rng.uniform()};
    mass[i] = rng.uniform(0.5, 2.0);
  }
  const Ewald ew;
  std::vector<Vec3> acc(pos.size());
  ew.accelerations(pos, mass, acc);
  Vec3 net{};
  double scale = 0;
  for (std::size_t i = 0; i < pos.size(); ++i) {
    net += acc[i] * mass[i];
    scale = std::max(scale, acc[i].norm() * mass[i]);
  }
  EXPECT_LT(net.norm(), 1e-4 * scale);
}

TEST(Ewald, TableInterpolationTracksExact) {
  EwaldParams p;
  p.table_n = 48;
  const Ewald tab(p);
  const Ewald exact;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const Vec3 dx{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)};
    if (dx.norm() < 0.03) continue;
    const Vec3 a = tab.pair_acceleration(dx);
    const Vec3 b = exact.pair_acceleration_exact(dx);
    const double scale = std::max(b.norm(), 1.0);
    EXPECT_NEAR(a.x, b.x, 5e-3 * scale);
    EXPECT_NEAR(a.y, b.y, 5e-3 * scale);
    EXPECT_NEAR(a.z, b.z, 5e-3 * scale);
  }
}

TEST(Ewald, TableRespectsOddSymmetry) {
  EwaldParams p;
  p.table_n = 32;
  const Ewald tab(p);
  const Vec3 dx{0.2, -0.3, 0.15};
  const Vec3 a = tab.pair_acceleration(dx);
  const Vec3 b = tab.pair_acceleration(-dx);
  EXPECT_NEAR(a.x, -b.x, 1e-12);
  EXPECT_NEAR(a.y, -b.y, 1e-12);
  EXPECT_NEAR(a.z, -b.z, 1e-12);
}

TEST(Ewald, SelfPotentialIsAlphaIndependentConstant) {
  EwaldParams p1;
  p1.alpha = 1.8;
  p1.hmax2 = 20;
  EwaldParams p2;
  p2.alpha = 2.8;
  p2.hmax2 = 30;
  p2.nreal = 3;
  const double s1 = Ewald(p1).self_potential();
  const double s2 = Ewald(p2).self_potential();
  EXPECT_NEAR(s1, s2, 1e-5);
  // Known Madelung-type constant of the cubic lattice with neutralizing
  // background (gravity sign convention): +2.8372974795...
  EXPECT_NEAR(s1, 2.8372974795, 1e-4);
}

TEST(Ewald, PotentialIndependentOfAlpha) {
  EwaldParams p1;
  p1.alpha = 1.8;
  p1.hmax2 = 20;
  EwaldParams p2;
  p2.alpha = 2.6;
  p2.hmax2 = 28;
  const Ewald e1(p1), e2(p2);
  for (const Vec3 dx : {Vec3{0.2, 0.1, 0.05}, Vec3{0.4, 0.4, 0.2}, Vec3{0.05, 0.0, 0.0}}) {
    EXPECT_NEAR(e1.pair_potential(dx), e2.pair_potential(dx), 1e-5);
  }
}

TEST(Ewald, PotentialApproachesNewtonAtShortRange) {
  const Ewald ew;
  const Vec3 dx{0.02, 0.0, 0.0};
  // phi ~ -1/r + O(1) constant terms.
  EXPECT_NEAR(ew.pair_potential(dx) + 1.0 / 0.02, ew.self_potential(), 0.05);
}

TEST(Ewald, PotentialEnergyMatchesDirectForIsolatedClump) {
  // A tight clump at the box center: periodic corrections are a small
  // constant shift; compare against the open-boundary pair sum plus the
  // background/self corrections absorbed in the tolerance.
  Rng rng(4);
  std::vector<Vec3> pos(10);
  std::vector<double> mass(10, 0.1);
  for (auto& p : pos)
    p = {0.5 + rng.uniform(-0.01, 0.01), 0.5 + rng.uniform(-0.01, 0.01),
         0.5 + rng.uniform(-0.01, 0.01)};
  const Ewald ew;
  const double u_ewald = ew.potential_energy(pos, mass, 0.0);
  const double u_direct = core::direct_potential_energy(pos, mass, 0.0);
  // Pair corrections ~ +self_potential per pair; total mass = 1.
  const double correction = 0.5 * 1.0 * 1.0 * ew.self_potential();
  EXPECT_NEAR(u_ewald, u_direct + correction, 0.05 * std::abs(u_direct) + 0.05);
}

}  // namespace
}  // namespace greem::ewald
