// Tests for the parx message-passing runtime: point-to-point ordering,
// every collective, comm_split semantics, traffic accounting, and failure
// poisoning.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "parx/comm.hpp"
#include "parx/fault.hpp"
#include "parx/runtime.hpp"
#include "parx/transport.hpp"
#include "telemetry/telemetry.hpp"

namespace greem::parx {
namespace {

TEST(Parx, RanksSeeCorrectRankAndSize) {
  std::atomic<int> sum{0};
  run_ranks(5, [&](Comm& c) {
    EXPECT_EQ(c.size(), 5);
    sum += c.rank();
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3 + 4);
}

TEST(Parx, SendRecvDeliversPayload) {
  run_ranks(2, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> data{1, 2, 3};
      c.send(1, 7, std::span<const int>(data));
    } else {
      const auto got = c.recv<int>(0, 7);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
    }
  });
}

TEST(Parx, MessagesFromSameSourceAndTagArriveInOrder) {
  run_ranks(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        const std::vector<int> v{i};
        c.send(1, 1, std::span<const int>(v));
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(c.recv<int>(0, 1).at(0), i);
      }
    }
  });
}

TEST(Parx, TagsSelectMessages) {
  run_ranks(2, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> a{10}, b{20};
      c.send(1, 100, std::span<const int>(a));
      c.send(1, 200, std::span<const int>(b));
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(c.recv<int>(0, 200).at(0), 20);
      EXPECT_EQ(c.recv<int>(0, 100).at(0), 10);
    }
  });
}

TEST(Parx, BarrierSynchronizes) {
  std::atomic<int> before{0}, after{0};
  run_ranks(8, [&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    EXPECT_EQ(before.load(), 8);  // everyone arrived before anyone proceeds
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 8);
}

TEST(Parx, AlltoallvExchangesPersonalizedPayloads) {
  const int p = 6;
  run_ranks(p, [&](Comm& c) {
    std::vector<std::vector<int>> send(p);
    for (int d = 0; d < p; ++d) {
      // rank r sends d copies of value 100*r + d to rank d.
      send[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(d),
                                               100 * c.rank() + d);
    }
    auto recv = c.alltoallv(send);
    for (int s = 0; s < p; ++s) {
      const auto& buf = recv[static_cast<std::size_t>(s)];
      ASSERT_EQ(buf.size(), static_cast<std::size_t>(c.rank()));
      for (int v : buf) EXPECT_EQ(v, 100 * s + c.rank());
    }
  });
}

TEST(Parx, BcastDistributesFromEveryRoot) {
  for (int root = 0; root < 5; ++root) {
    run_ranks(5, [&](Comm& c) {
      std::vector<double> v;
      if (c.rank() == root) v = {1.5, 2.5, 3.5};
      c.bcast(v, root);
      EXPECT_EQ(v, (std::vector<double>{1.5, 2.5, 3.5}));
    });
  }
}

TEST(Parx, ReduceSumsElementwise) {
  const int p = 7;
  run_ranks(p, [&](Comm& c) {
    std::vector<long> v{static_cast<long>(c.rank()), 1};
    c.reduce_sum(std::span<long>(v), 2);
    if (c.rank() == 2) {
      EXPECT_EQ(v[0], p * (p - 1) / 2);
      EXPECT_EQ(v[1], p);
    }
  });
}

TEST(Parx, AllreduceVariants) {
  run_ranks(6, [](Comm& c) {
    EXPECT_EQ(c.allreduce_sum(1), 6);
    EXPECT_EQ(c.allreduce_max(c.rank()), 5);
    EXPECT_EQ(c.allreduce_min(c.rank() + 10), 10);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(0.5), 3.0);
  });
}

TEST(Parx, GathervConcatenatesInRankOrder) {
  run_ranks(4, [](Comm& c) {
    std::vector<int> mine(static_cast<std::size_t>(c.rank()), c.rank());
    auto all = c.gatherv(std::span<const int>(mine), 0);
    if (c.rank() == 0) {
      EXPECT_EQ(all, (std::vector<int>{1, 2, 2, 3, 3, 3}));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Parx, AllgathervGivesEveryoneEverything) {
  run_ranks(3, [](Comm& c) {
    const std::vector<int> mine{c.rank() * 2};
    auto all = c.allgatherv(std::span<const int>(mine));
    EXPECT_EQ(all, (std::vector<int>{0, 2, 4}));
  });
}

TEST(Parx, SplitPartitionsByColorAndOrdersByKey) {
  run_ranks(6, [](Comm& c) {
    // Even/odd split; key reverses the order within each group.
    Comm sub = c.split(c.rank() % 2, -c.rank());
    EXPECT_EQ(sub.size(), 3);
    // Ranks 4,2,0 (even) -> sub ranks 0,1,2; world rank recoverable.
    const int expected_world = c.rank() % 2 + 2 * (2 - sub.rank());
    EXPECT_EQ(sub.world_rank(), c.rank());
    EXPECT_EQ(c.rank(), expected_world);
    // Collectives work inside the subcommunicator.
    EXPECT_EQ(sub.allreduce_sum(1), 3);
  });
}

TEST(Parx, SplitSubCommIsIsolated) {
  run_ranks(4, [](Comm& c) {
    Comm sub = c.split(c.rank() / 2, c.rank());
    // Exchange within each pair only.
    const std::vector<int> v{c.rank()};
    auto all = sub.allgatherv(std::span<const int>(v));
    if (c.rank() < 2) {
      EXPECT_EQ(all, (std::vector<int>{0, 1}));
    } else {
      EXPECT_EQ(all, (std::vector<int>{2, 3}));
    }
  });
}

TEST(Parx, ExchangeSizesAgrees) {
  const int p = 5;
  run_ranks(p, [&](Comm& c) {
    std::vector<std::size_t> to(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      to[static_cast<std::size_t>(d)] = static_cast<std::size_t>(10 * c.rank() + d);
    auto from = c.exchange_sizes(to);
    for (int s = 0; s < p; ++s)
      EXPECT_EQ(from[static_cast<std::size_t>(s)],
                static_cast<std::size_t>(10 * s + c.rank()));
  });
}

TEST(Parx, TrafficLedgerCountsMessagesAndBytes) {
  Runtime rt(3);
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<char> v(100);
      c.send(1, 1, std::span<const char>(v));
      c.send(2, 1, std::span<const char>(v));
    } else {
      c.recv<char>(0, 1);
    }
  });
  const auto t = rt.ledger().totals();
  EXPECT_EQ(t.messages, 2u);
  EXPECT_EQ(t.bytes, 200u);
  EXPECT_EQ(t.max_out_messages, 2u);
  EXPECT_EQ(t.max_in_messages, 1u);
}

TEST(Parx, CongestionModelSerializesBusiestEndpoint) {
  TrafficLedger ledger(10);
  // 9 senders, one receiver: cost = 9 * latency + bytes/bw at rank 0.
  for (int s = 1; s < 10; ++s) ledger.record(s, 0, 1000);
  CongestionModel m{1e-5, 1e9};
  EXPECT_NEAR(ledger.model_time(m), 9 * 1e-5 + 9000.0 / 1e9, 1e-12);
  ledger.reset();
  EXPECT_EQ(ledger.totals().messages, 0u);
}

TEST(Parx, ZeroByteSendsAreNotRecorded) {
  Runtime rt(2);
  rt.run([](Comm& c) {
    std::vector<std::vector<int>> send(2);
    if (c.rank() == 0) send[1] = {1, 2};
    auto recv = c.alltoallv(send);
    if (c.rank() == 1) {
      EXPECT_EQ(recv[0].size(), 2u);
    }
  });
  EXPECT_EQ(rt.ledger().totals().messages, 1u);  // only the non-empty payload
}

TEST(Parx, ExceptionInOneRankPoisonsAndRethrows) {
  Runtime rt(3);
  EXPECT_THROW(rt.run([](Comm& c) {
                 if (c.rank() == 1) throw std::runtime_error("boom");
                 // Other ranks block; poisoning must release them.
                 c.recv<int>((c.rank() + 1) % 3, 99);
               }),
               std::runtime_error);
  // Runtime remains usable afterwards.
  rt.run([](Comm& c) { c.barrier(); });
}

TEST(Parx, RepeatedRunsOnSameRuntime) {
  Runtime rt(4);
  for (int iter = 0; iter < 3; ++iter) {
    rt.run([&](Comm& c) {
      EXPECT_EQ(c.allreduce_sum(1), 4);
      c.barrier();
    });
  }
}

TEST(Parx, SingleRankWorldWorks) {
  run_ranks(1, [](Comm& c) {
    EXPECT_EQ(c.size(), 1);
    c.barrier();
    std::vector<int> v{42};
    c.bcast(v, 0);
    EXPECT_EQ(c.allreduce_sum(7), 7);
    std::vector<std::vector<int>> send(1);
    send[0] = {1};
    EXPECT_EQ(c.alltoallv(send)[0], (std::vector<int>{1}));
  });
}


TEST(Parx, NestedSplitsCompose) {
  run_ranks(8, [](Comm& c) {
    Comm half = c.split(c.rank() / 4, c.rank());   // two halves of 4
    Comm pair = half.split(half.rank() / 2, half.rank());  // pairs
    EXPECT_EQ(pair.size(), 2);
    // World rank is preserved through both levels.
    EXPECT_EQ(pair.world_rank(), c.rank());
    // Collectives at every level stay consistent.
    EXPECT_EQ(c.allreduce_sum(1), 8);
    EXPECT_EQ(half.allreduce_sum(1), 4);
    EXPECT_EQ(pair.allreduce_sum(1), 2);
  });
}

TEST(Parx, LargePayloadRoundtrip) {
  run_ranks(2, [](Comm& c) {
    const std::size_t n = 1 << 20;  // 8 MB of doubles
    if (c.rank() == 0) {
      std::vector<double> big(n);
      for (std::size_t i = 0; i < n; ++i) big[i] = static_cast<double>(i);
      c.send(1, 5, std::span<const double>(big));
    } else {
      const auto got = c.recv<double>(0, 5);
      ASSERT_EQ(got.size(), n);
      EXPECT_DOUBLE_EQ(got[12345], 12345.0);
      EXPECT_DOUBLE_EQ(got[n - 1], static_cast<double>(n - 1));
    }
  });
}

TEST(Parx, ManyConcurrentSmallMessages) {
  // Stress the mailbox: every rank sends 100 tagged messages to every
  // other rank; all must arrive exactly once.
  const int p = 6;
  run_ranks(p, [&](Comm& c) {
    for (int d = 0; d < p; ++d) {
      if (d == c.rank()) continue;
      for (int m = 0; m < 100; ++m) {
        const std::vector<int> v{c.rank() * 1000 + m};
        c.send(d, m, std::span<const int>(v));
      }
    }
    for (int s = 0; s < p; ++s) {
      if (s == c.rank()) continue;
      for (int m = 0; m < 100; ++m) {
        EXPECT_EQ(c.recv<int>(s, m).at(0), s * 1000 + m);
      }
    }
  });
}

TEST(Fault, ParseFaultAtForms) {
  auto s = parse_fault_at("3:pp");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->step, 3u);
  EXPECT_EQ(s->phase, FaultPhase::kPP);
  EXPECT_EQ(s->kind, FaultKind::kRankAbort);
  EXPECT_EQ(s->rank, 0);

  s = parse_fault_at("2:dd:1");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->phase, FaultPhase::kDD);
  EXPECT_EQ(s->rank, 1);

  s = parse_fault_at("4:any:2:send");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->phase, FaultPhase::kAny);
  EXPECT_EQ(s->kind, FaultKind::kSendFailure);
  EXPECT_EQ(s->rank, 2);

  s = parse_fault_at("1:ckpt:0:collective");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->phase, FaultPhase::kCkpt);
  EXPECT_EQ(s->kind, FaultKind::kCollectiveFailure);

  EXPECT_FALSE(parse_fault_at("").has_value());
  EXPECT_FALSE(parse_fault_at("3").has_value());
  EXPECT_FALSE(parse_fault_at("x:pp").has_value());
  EXPECT_FALSE(parse_fault_at("3:nope").has_value());
  EXPECT_FALSE(parse_fault_at("3:pp:notanumber").has_value());
  EXPECT_FALSE(parse_fault_at("3:pp:0:nokind").has_value());
}

TEST(Fault, RandomPlanIsDeterministicInSeed) {
  const auto a = FaultPlan::random(99, 5, 10, 4);
  const auto b = FaultPlan::random(99, 5, 10, 4);
  const auto c = FaultPlan::random(100, 5, 10, 4);
  ASSERT_EQ(a.specs().size(), 5u);
  for (std::size_t i = 0; i < a.specs().size(); ++i) {
    EXPECT_EQ(a.specs()[i].step, b.specs()[i].step);
    EXPECT_EQ(a.specs()[i].phase, b.specs()[i].phase);
    EXPECT_EQ(a.specs()[i].rank, b.specs()[i].rank);
    EXPECT_GE(a.specs()[i].step, 1u);
    EXPECT_LE(a.specs()[i].step, 10u);
    EXPECT_LT(a.specs()[i].rank, 4);
  }
  bool any_differs = false;
  for (std::size_t i = 0; i < a.specs().size(); ++i)
    any_differs = any_differs || a.specs()[i].step != c.specs()[i].step ||
                  a.specs()[i].rank != c.specs()[i].rank;
  EXPECT_TRUE(any_differs) << "different seeds should draw different plans";
}

TEST(Fault, InjectedSendFaultSurfacesOnEveryRankAndRecovers) {
  Runtime rt(3);
  rt.set_fault_plan(FaultPlan().at({.step = 1,
                                    .phase = FaultPhase::kAny,
                                    .kind = FaultKind::kCollectiveFailure,
                                    .rank = 1,
                                    .times = 1}));
  std::atomic<int> comm_errors{0};
  rt.run([&](Comm& c) {
    set_fault_context(1, FaultPhase::kPP);
    try {
      c.barrier();
      // Rank 1 throws at the barrier entry; everyone else sees the flag.
      for (;;) c.barrier();
    } catch (const CommError&) {
      comm_errors.fetch_add(1);
    }
    c.fault_recover();
    set_fault_context(2, FaultPhase::kAny);
    // Comm state is as-new after recovery: collectives work again.
    EXPECT_EQ(c.allreduce_sum(1), 3);
    if (c.rank() == 0) {
      c.send(2, 7, std::span<const int>(std::vector<int>{41}));
    } else if (c.rank() == 2) {
      EXPECT_EQ(c.recv<int>(0, 7).at(0), 41);
    }
    c.barrier();
  });
  EXPECT_EQ(comm_errors.load(), 3);
}

TEST(Parx, ReduceLeavesNonRootSendBuffersUntouched) {
  // Regression: reduce used to accumulate partial sums into the caller's
  // buffer on interior tree ranks, corrupting what MPI semantics treat as
  // a pure send buffer.
  run_ranks(4, [](Comm& c) {
    std::vector<int> buf{c.rank() + 1, 10 * (c.rank() + 1)};
    const std::vector<int> orig = buf;
    c.reduce_sum(std::span<int>(buf), /*root=*/0);
    if (c.rank() == 0) {
      EXPECT_EQ(buf[0], 1 + 2 + 3 + 4);
      EXPECT_EQ(buf[1], 10 + 20 + 30 + 40);
    } else {
      EXPECT_EQ(buf, orig) << "non-root send buffer was mutated on rank " << c.rank();
    }
    // Same property for every root, including interior tree positions.
    for (int root = 1; root < 4; ++root) {
      std::vector<int> v{c.rank()};
      c.reduce_sum(std::span<int>(v), root);
      if (c.rank() == root) EXPECT_EQ(v[0], 0 + 1 + 2 + 3);
      else EXPECT_EQ(v[0], c.rank());
    }
  });
}

TEST(Parx, RecvDeadlineThrowsTimeoutError) {
  run_ranks(2, [](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_THROW((void)c.recv_bytes(1, 9, /*timeout_s=*/0.08), TimeoutError);
    }
    c.barrier();  // nobody ever sends; only the deadline releases rank 0
  });
}

TEST(Parx, BarrierDeadlineThrowsTimeoutError) {
  std::atomic<int> timeouts{0};
  run_ranks(2, [&](Comm& c) {
    if (c.rank() == 0) {
      try {
        c.barrier(/*timeout_s=*/0.08);
      } catch (const TimeoutError&) {
        timeouts.fetch_add(1);
      }
    } else {
      // Arrive late: rank 0's stale arrival completes this wait instantly.
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
      c.barrier();
    }
  });
  EXPECT_EQ(timeouts.load(), 1);
}

TEST(Fault, ParseWildcardsAndLinkKinds) {
  auto s = parse_fault_at("*:any:*:drop@0.01");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->step, kEveryStep);
  EXPECT_EQ(s->rank, kEveryRank);
  EXPECT_EQ(s->kind, FaultKind::kLinkDrop);
  EXPECT_DOUBLE_EQ(s->rate, 0.01);
  EXPECT_EQ(s->times, kUnlimited);

  s = parse_fault_at("2:pp:*:lose");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->kind, FaultKind::kLinkBlackhole);
  EXPECT_DOUBLE_EQ(s->rate, 1.0);
  EXPECT_EQ(s->times, 1) << "each 'lose' firing dooms exactly one message";

  s = parse_fault_at("5:pm:1:corrupt@0.001x10");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->kind, FaultKind::kLinkCorrupt);
  EXPECT_DOUBLE_EQ(s->rate, 0.001);
  EXPECT_EQ(s->times, 10);

  s = parse_fault_at("*:any:3:hang");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->kind, FaultKind::kHang);
  EXPECT_EQ(s->rank, 3);

  s = parse_fault_at("1:dd:*:dup@0.5");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->kind, FaultKind::kLinkDuplicate);

  EXPECT_TRUE(parse_fault_at("1:dd:0:reorder@0.25").has_value());
  EXPECT_FALSE(parse_fault_at("*:pp:0:drop@1.5").has_value()) << "rate must be in [0,1]";
  EXPECT_FALSE(parse_fault_at("*:pp:0:drop@").has_value());
  EXPECT_FALSE(parse_fault_at("1:pp:0:abort@0.5").has_value())
      << "rates are a link-fault concept";
  EXPECT_FALSE(parse_fault_at("1:pp:0:send@0.1x2").has_value());
  EXPECT_FALSE(parse_fault_at("1:pp:0:drop@0.1x0").has_value());
}

TEST(Fault, PlanSplitsIntoFailstopAndLinkSubsets) {
  FaultPlan plan;
  plan.at({.step = 1, .phase = FaultPhase::kAny, .kind = FaultKind::kRankAbort, .rank = 0})
      .at(*parse_fault_at("*:any:*:drop@0.1"))
      .at(*parse_fault_at("2:pp:*:lose"));
  EXPECT_EQ(plan.failstop_specs().size(), 1u);
  EXPECT_EQ(plan.link_specs().size(), 2u);
}

TEST(Fault, LinkDropIsRetransmittedAndDeliveredIntact) {
  auto& retx = telemetry::Registry::global().counter("parx/retransmits");
  const std::uint64_t retx0 = retx.value();
  Runtime rt(2);
  // Deterministically drop the first 2 transmissions of everything.
  FaultSpec drop;
  drop.step = kEveryStep;
  drop.phase = FaultPhase::kAny;
  drop.rank = kEveryRank;
  drop.kind = FaultKind::kLinkDrop;
  drop.rate = 1.0;
  drop.times = 2;
  rt.set_fault_plan(FaultPlan().at(drop));
  rt.set_transport_tuning({.rto_s = 0.002, .backoff = 1.5, .max_attempts = 8, .tick_s = 0.001});
  rt.run([](Comm& c) {
    set_fault_context(1, FaultPhase::kPP);
    std::vector<int> data(300);
    std::iota(data.begin(), data.end(), 7);
    if (c.rank() == 0) c.send(1, 3, std::span<const int>(data));
    else EXPECT_EQ(c.recv<int>(0, 3), data);
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
  });
#if GREEM_TELEMETRY_ENABLED
  EXPECT_GE(retx.value() - retx0, 2u);
#else
  (void)retx0;
#endif
}

TEST(Fault, LinkCorruptionIsCaughtByCrcAndHealed) {
  auto& caught = telemetry::Registry::global().counter("parx/corrupt_detected");
  const std::uint64_t caught0 = caught.value();
  Runtime rt(2);
  FaultSpec corrupt;
  corrupt.step = kEveryStep;
  corrupt.phase = FaultPhase::kAny;
  corrupt.rank = kEveryRank;
  corrupt.kind = FaultKind::kLinkCorrupt;
  corrupt.rate = 1.0;
  corrupt.times = 1;
  rt.set_fault_plan(FaultPlan().at(corrupt));
  rt.set_transport_tuning({.rto_s = 0.002, .backoff = 1.5, .max_attempts = 8, .tick_s = 0.001});
  rt.run([](Comm& c) {
    set_fault_context(1, FaultPhase::kPP);
    const std::vector<double> data{1.5, -2.5, 3.25};
    if (c.rank() == 0) c.send(1, 4, std::span<const double>(data));
    else EXPECT_EQ(c.recv<double>(0, 4), data);
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
  });
#if GREEM_TELEMETRY_ENABLED
  EXPECT_EQ(caught.value() - caught0, 1u);
#else
  (void)caught0;
#endif
}

TEST(Fault, DuplicatesAndReordersAreInvisibleToTheApplication) {
  auto& dups = telemetry::Registry::global().counter("parx/duplicates_dropped");
  const std::uint64_t dups0 = dups.value();
  Runtime rt(3);
  FaultPlan plan;
  plan.at(*parse_fault_at("*:any:*:dup@1"));
  plan.at(*parse_fault_at("*:any:*:reorder@0.5"));
  rt.set_fault_plan(plan);
  rt.run([](Comm& c) {
    set_fault_context(1, FaultPhase::kPP);
    // Ordered stream per (src, tag) pair must survive dup + reorder.
    for (int m = 0; m < 20; ++m) {
      const std::vector<int> v{c.rank() * 100 + m};
      c.send((c.rank() + 1) % 3, 5, std::span<const int>(v));
    }
    const int src = (c.rank() + 2) % 3;
    for (int m = 0; m < 20; ++m) EXPECT_EQ(c.recv<int>(src, 5).at(0), src * 100 + m);
    // Collectives still agree.
    EXPECT_EQ(c.allreduce_sum(1), 3);
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
  });
#if GREEM_TELEMETRY_ENABLED
  EXPECT_GT(dups.value() - dups0, 0u);
#else
  (void)dups0;
#endif
}

TEST(Fault, BlackholeExhaustsRetriesAndRecoversLikeAnyFault) {
  Runtime rt(2);
  rt.set_fault_plan(FaultPlan().at(*parse_fault_at("1:pp:*:lose")));
  rt.set_transport_tuning({.rto_s = 0.001, .backoff = 1.5, .max_attempts = 4, .tick_s = 0.0005});
  std::atomic<int> comm_errors{0};
  rt.run([&](Comm& c) {
    set_fault_context(1, FaultPhase::kPP);
    const std::vector<int> v{13};
    try {
      if (c.rank() == 0) {
        c.send(1, 2, std::span<const int>(v));
        for (;;) c.barrier();  // wait for the transport to give up
      } else {
        (void)c.recv<int>(0, 2);
      }
      FAIL() << "blackholed message should have surfaced as CommError";
    } catch (const CommError&) {
      comm_errors.fetch_add(1);
    }
    c.fault_recover();
    // The lose budget is spent: the retried message goes through.
    set_fault_context(2, FaultPhase::kPP);
    if (c.rank() == 0) c.send(1, 2, std::span<const int>(v));
    else EXPECT_EQ(c.recv<int>(0, 2).at(0), 13);
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
  });
  EXPECT_EQ(comm_errors.load(), 2);
}

TEST(Fault, WatchdogConvertsHangIntoRecoverableFault) {
  auto& fired = telemetry::Registry::global().counter("parx/watchdog_fired");
  const std::uint64_t fired0 = fired.value();
  Runtime rt(2);
  rt.set_fault_plan(FaultPlan().at(*parse_fault_at("1:any:0:hang")));
  rt.set_watchdog({.quiescence_s = 0.15, .dump_path = ""});
  std::atomic<int> comm_errors{0};
  rt.run([&](Comm& c) {
    set_fault_context(1, FaultPhase::kDD);
    try {
      c.barrier();  // rank 0 freezes inside; rank 1 blocks waiting
      for (;;) c.barrier();
    } catch (const CommError&) {
      comm_errors.fetch_add(1);
    }
    c.fault_recover();
    set_fault_context(2, FaultPhase::kAny);
    EXPECT_EQ(c.allreduce_sum(1), 2);
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
  });
  EXPECT_EQ(comm_errors.load(), 2);
#if GREEM_TELEMETRY_ENABLED
  EXPECT_GE(fired.value() - fired0, 1u);
#else
  (void)fired0;
#endif
}

TEST(Fault, RetransmitTrafficIsAccountedSeparately) {
  Runtime rt(2);
  FaultSpec drop;
  drop.step = kEveryStep;
  drop.phase = FaultPhase::kAny;
  drop.rank = kEveryRank;
  drop.kind = FaultKind::kLinkDrop;
  drop.rate = 1.0;
  drop.times = 1;
  rt.set_fault_plan(FaultPlan().at(drop));
  rt.set_transport_tuning({.rto_s = 0.002, .backoff = 1.5, .max_attempts = 8, .tick_s = 0.001});
  rt.run([](Comm& c) {
    set_fault_context(1, FaultPhase::kPP);
    const std::vector<int> v{1, 2, 3, 4};
    if (c.rank() == 0) c.send(1, 6, std::span<const int>(v));
    else (void)c.recv<int>(0, 6);
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
  });
  const auto t = rt.ledger().totals();
  EXPECT_EQ(t.messages, 1u) << "logical traffic counts the send once";
  EXPECT_GE(t.retransmit_messages, 1u);
  EXPECT_EQ(t.retransmit_bytes % (4 * sizeof(int)), 0u);
}

TEST(Parx, WaitAnyCompletesOutOfPostingOrder) {
  // Rank 0 posts receives from ranks 1 and 2 but rank 2's payload arrives
  // first (rank 1 holds its send until rank 0 releases it), so wait_any
  // must hand back the *later-posted* request first.
  run_ranks(3, [](Comm& c) {
    const int tag = 9;
    if (c.rank() == 0) {
      std::vector<Request> reqs;
      reqs.push_back(c.irecv(1, tag));
      reqs.push_back(c.irecv(2, tag));
      const int first = c.wait_any(std::span<Request>(reqs));
      EXPECT_EQ(first, 1) << "rank 2's payload was the only one in flight";
      EXPECT_EQ(reqs[1].take<int>().at(0), 2);
      const std::vector<int> go{1};
      c.send(1, 0, std::span<const int>(go));  // release rank 1
      const int second = c.wait_any(std::span<Request>(reqs));
      EXPECT_EQ(second, 0);
      EXPECT_EQ(reqs[0].take<int>().at(0), 1);
    } else if (c.rank() == 1) {
      (void)c.recv<int>(0, 0);  // wait until rank 0 drained rank 2
      const std::vector<int> v{1};
      c.send(0, tag, std::span<const int>(v));
    } else {
      const std::vector<int> v{2};
      c.send(0, tag, std::span<const int>(v));
    }
  });
}

TEST(Parx, InterleavedCollectivesKeepTagsIsolated) {
  // Two all-to-alls posted back to back plus an allreduce while both are
  // in flight; the sequenced collective tags must keep the three payload
  // streams apart even though they share every (src, dst) pair.  Draining
  // the second exchange before the first exercises out-of-order drains.
  run_ranks(4, [](Comm& c) {
    const int p = c.size();
    auto payload = [&](int round, int dst) {
      return std::vector<int>{1000 * round + 10 * c.rank() + dst};
    };
    std::vector<std::vector<int>> a(static_cast<std::size_t>(p)), b(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      a[static_cast<std::size_t>(d)] = payload(1, d);
      b[static_cast<std::size_t>(d)] = payload(2, d);
    }
    auto ha = c.ialltoallv(a);
    auto hb = c.ialltoallv(b);
    EXPECT_EQ(c.allreduce_sum(1), p);  // collective between post and drain
    auto rb = c.wait_alltoallv(hb);
    auto ra = c.wait_alltoallv(ha);
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(ra[static_cast<std::size_t>(s)].at(0), 1000 + 10 * s + c.rank());
      EXPECT_EQ(rb[static_cast<std::size_t>(s)].at(0), 2000 + 10 * s + c.rank());
    }
  });
}

TEST(Fault, WatchdogIgnoresParkedWaitWithLiveTraffic) {
  // Regression: a rank parked in wait_all while messages are still landing
  // is making progress, not hanging.  Rank 1 spreads four sends over ~2.7x
  // the quiescence window; each arrival restamps rank 0's blocked clock,
  // so the watchdog must stay silent for the whole wait.
  auto& fired = telemetry::Registry::global().counter("parx/watchdog_fired");
  const std::uint64_t fired0 = fired.value();
  Runtime rt(2);
  rt.set_watchdog({.quiescence_s = 0.15, .dump_path = ""});
  rt.run([](Comm& c) {
    const int tag = 11;
    if (c.rank() == 0) {
      std::vector<Request> reqs;
      for (int i = 0; i < 4; ++i) reqs.push_back(c.irecv(1, tag + i));
      EXPECT_NO_THROW(c.wait_all(std::span<Request>(reqs)));
      for (int i = 0; i < 4; ++i) EXPECT_EQ(reqs[static_cast<std::size_t>(i)].take<int>().at(0), i);
    } else {
      for (int i = 0; i < 4; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        const std::vector<int> v{i};
        c.send(0, tag + i, std::span<const int>(v));
      }
    }
  });
  EXPECT_EQ(fired.value() - fired0, 0u);
}

TEST(Fault, WatchdogStillFiresOnGenuinelyStuckWait) {
  // The converse guard: a rank parked in wait() whose peer froze (hang
  // fault) receives no traffic at all, so the quiescence clock runs out
  // and the watchdog converts the hang into a recoverable fault.
  auto& fired = telemetry::Registry::global().counter("parx/watchdog_fired");
  const std::uint64_t fired0 = fired.value();
  Runtime rt(2);
  rt.set_fault_plan(FaultPlan().at(*parse_fault_at("1:any:1:hang")));
  rt.set_watchdog({.quiescence_s = 0.15, .dump_path = ""});
  std::atomic<int> comm_errors{0};
  rt.run([&](Comm& c) {
    set_fault_context(1, FaultPhase::kDD);
    try {
      if (c.rank() == 0) {
        Request r = c.irecv(1, 3);
        c.wait(r);  // rank 1 froze before sending: no arrivals, ever
      } else {
        c.barrier();  // freezes here (hang fault), never sends
      }
      FAIL() << "stuck wait should have surfaced as CommError";
    } catch (const CommError&) {
      comm_errors.fetch_add(1);
    }
    c.fault_recover();
    set_fault_context(2, FaultPhase::kAny);
    EXPECT_EQ(c.allreduce_sum(1), 2);
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
  });
  EXPECT_EQ(comm_errors.load(), 2);
#if GREEM_TELEMETRY_ENABLED
  EXPECT_GE(fired.value() - fired0, 1u);
#else
  (void)fired0;
#endif
}

TEST(Fault, SpentSpecDoesNotRefire) {
  Runtime rt(2);
  rt.set_fault_plan(FaultPlan().at({.step = 1,
                                    .phase = FaultPhase::kAny,
                                    .kind = FaultKind::kRankAbort,
                                    .rank = 0,
                                    .times = 1}));
  rt.run([&](Comm& c) {
    set_fault_context(1, FaultPhase::kDD);
    try {
      c.barrier();
      for (;;) c.barrier();
    } catch (const CommError&) {
    }
    c.fault_recover();
    // Same (step, phase) context again: the budget is spent, no re-fire.
    set_fault_context(1, FaultPhase::kDD);
    EXPECT_NO_THROW(c.barrier());
    EXPECT_EQ(c.allreduce_sum(c.rank()), 1);
  });
}

TEST(Fastpath, MoveSendIsZeroCopyAcrossRanks) {
  // With no plan installed, a move-send hands the sender's allocation
  // straight to the receiver: the received vector reuses the same buffer.
  std::atomic<const int*> sent_data{nullptr};
  run_ranks(2, [&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> v(1024);
      std::iota(v.begin(), v.end(), 0);
      sent_data.store(v.data());
      c.send(1, 9, std::move(v));
    } else {
      while (sent_data.load() == nullptr) std::this_thread::yield();
      const auto got = c.recv<int>(0, 9);
      EXPECT_EQ(got.data(), sent_data.load()) << "fast path must not copy the payload";
      EXPECT_EQ(got.size(), 1024u);
      EXPECT_EQ(got.at(1023), 1023);
    }
  });
}

TEST(Fastpath, PartialPlanFramesOnlyCoveredSenders) {
  auto& frames = telemetry::Registry::global().counter("parx/frames_sent");
  auto& fast = telemetry::Registry::global().counter("parx/fastpath_messages");
  const std::uint64_t frames0 = frames.value(), fast0 = fast.value();
  Runtime rt(2);
  // The plan names sender rank 1 only; rank 0's sends must keep the
  // zero-copy fast path even though a transport is installed.
  FaultSpec idle;
  idle.step = kEveryStep;
  idle.phase = FaultPhase::kAny;
  idle.rank = 1;
  idle.kind = FaultKind::kLinkDrop;
  idle.rate = 0.0;
  idle.times = kUnlimited;
  rt.set_fault_plan(FaultPlan().at(idle));
  const std::vector<int> a{1, 2, 3}, b{4, 5, 6};
  rt.run([&](Comm& c) {
    set_fault_context(1, FaultPhase::kPP);
    if (c.rank() == 0) {
      c.send(1, 11, std::span<const int>(a));
      EXPECT_EQ(c.recv<int>(1, 12), b);
    } else {
      EXPECT_EQ(c.recv<int>(0, 11), a);
      c.send(0, 12, std::span<const int>(b));
    }
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
  });
#if GREEM_TELEMETRY_ENABLED
  EXPECT_EQ(frames.value() - frames0, 1u) << "only rank 1's send is framed";
  EXPECT_EQ(fast.value() - fast0, 1u) << "rank 0's send takes the fast path";
#else
  (void)frames0;
  (void)fast0;
#endif
}

TEST(Fastpath, MidJobPlanFlipRoutesNewTrafficFramed) {
  auto& frames = telemetry::Registry::global().counter("parx/frames_sent");
  const std::uint64_t frames0 = frames.value();
  Runtime rt(2);
  const std::vector<int> a{10, 20, 30}, b{40, 50, 60};
  rt.run([&](Comm& c) {
    set_fault_context(1, FaultPhase::kPP);
    // Phase 1: no plan, both directions ride the fast path.
    if (c.rank() == 0) {
      c.send(1, 21, std::span<const int>(a));
      EXPECT_EQ(c.recv<int>(1, 22), b);
    } else {
      EXPECT_EQ(c.recv<int>(0, 21), a);
      c.send(0, 22, std::span<const int>(b));
    }
    // Globally quiescent, barrier-bracketed plan install from one rank:
    // the contract under which a mid-job flip is legal.
    c.barrier();
    if (c.rank() == 0) {
      FaultSpec idle;
      idle.step = kEveryStep;
      idle.phase = FaultPhase::kAny;
      idle.rank = kEveryRank;
      idle.kind = FaultKind::kLinkDrop;
      idle.rate = 0.0;
      idle.times = kUnlimited;
      rt.set_fault_plan(FaultPlan().at(idle));
    }
    c.barrier();
    // Phase 2: the same exchange now rides the framed transport, with
    // bitwise-identical results.
    if (c.rank() == 0) {
      c.send(1, 23, std::span<const int>(a));
      EXPECT_EQ(c.recv<int>(1, 24), b);
    } else {
      EXPECT_EQ(c.recv<int>(0, 23), a);
      c.send(0, 24, std::span<const int>(b));
    }
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
  });
#if GREEM_TELEMETRY_ENABLED
  // Exactly the two phase-2 data sends are framed (the phase-2 barrier
  // traffic is framed too, so allow more than the data frames).
  EXPECT_GE(frames.value() - frames0, 2u);
#else
  (void)frames0;
#endif
}

TEST(Fastpath, PiggybackedAcksCoalesce) {
  auto& frames = telemetry::Registry::global().counter("parx/frames_sent");
  auto& standalone = telemetry::Registry::global().counter("parx/acks");
  auto& piggy = telemetry::Registry::global().counter("parx/acks_piggybacked");
  const std::uint64_t frames0 = frames.value(), standalone0 = standalone.value(),
                      piggy0 = piggy.value();
  Runtime rt(2);
  FaultSpec idle;
  idle.step = kEveryStep;
  idle.phase = FaultPhase::kAny;
  idle.rank = kEveryRank;
  idle.kind = FaultKind::kLinkDrop;
  idle.rate = 0.0;
  idle.times = kUnlimited;
  rt.set_fault_plan(FaultPlan().at(idle));
  rt.run([](Comm& c) {
    set_fault_context(1, FaultPhase::kPP);
    // Steady bidirectional traffic: nearly every ack should ride a
    // reverse-direction data frame instead of going out standalone.
    const int peer = 1 - c.rank();
    for (int m = 0; m < 200; ++m) {
      const std::vector<int> v{m};
      c.send(peer, 31, std::span<const int>(v));
      EXPECT_EQ(c.recv<int>(peer, 31).at(0), m);
    }
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
  });
#if GREEM_TELEMETRY_ENABLED
  const std::uint64_t sent = frames.value() - frames0;
  EXPECT_GT(piggy.value() - piggy0, 0u) << "acks must piggyback on reverse data frames";
  EXPECT_LT(standalone.value() - standalone0, sent)
      << "coalescing must beat one standalone ack per frame";
#else
  (void)frames0;
  (void)standalone0;
  (void)piggy0;
#endif
}

TEST(Parx, RvalueAlltoallvMatchesLvalueAndEmptiesSource) {
  run_ranks(3, [](Comm& c) {
    const int p = c.size();
    std::vector<std::vector<int>> payload(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j)
      payload[static_cast<std::size_t>(j)] = {c.rank() * 10 + j, j};
    auto copy = payload;
    const auto ref = c.alltoallv(payload);      // lvalue: source intact
    const auto got = c.alltoallv(std::move(copy));  // rvalue: source consumed
    EXPECT_EQ(got, ref);
    EXPECT_EQ(payload.size(), static_cast<std::size_t>(p));
    for (const auto& v : copy) EXPECT_TRUE(v.empty()) << "moved-from slices are consumed";
  });
}

}  // namespace
}  // namespace greem::parx
