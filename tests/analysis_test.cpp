// Analysis module tests: FoF grouping, power-spectrum measurement,
// projections and radial profiles.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/correlation.hpp"
#include "analysis/fof.hpp"
#include "analysis/power_measure.hpp"
#include "analysis/profile.hpp"
#include "analysis/projection.hpp"
#include "core/particle.hpp"
#include "util/rng.hpp"

namespace greem::analysis {
namespace {

TEST(Fof, LinkingLengthConvention) {
  EXPECT_NEAR(fof_linking_length(1000), 0.2 / 10.0, 1e-12);
  EXPECT_NEAR(fof_linking_length(8, 0.5), 0.25, 1e-12);
}

TEST(Fof, FindsTwoSeparatedClumps) {
  Rng rng(1);
  std::vector<Vec3> pos;
  for (int i = 0; i < 100; ++i)
    pos.push_back({0.25 + rng.uniform(-0.005, 0.005), 0.5 + rng.uniform(-0.005, 0.005),
                   0.5 + rng.uniform(-0.005, 0.005)});
  for (int i = 0; i < 60; ++i)
    pos.push_back({0.75 + rng.uniform(-0.005, 0.005), 0.5 + rng.uniform(-0.005, 0.005),
                   0.5 + rng.uniform(-0.005, 0.005)});
  const auto groups = fof_groups(pos, 0.02, 10);
  ASSERT_EQ(groups.ngroups(), 2u);
  EXPECT_EQ(groups.group_size[0], 100u);  // largest first
  EXPECT_EQ(groups.group_size[1], 60u);
  // Membership is spatially coherent.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(groups.group_of[static_cast<std::size_t>(i)], 0);
  for (int i = 100; i < 160; ++i) EXPECT_EQ(groups.group_of[static_cast<std::size_t>(i)], 1);
}

TEST(Fof, LinksAcrossPeriodicBoundary) {
  std::vector<Vec3> pos;
  for (int i = 0; i < 20; ++i) {
    const double x = 0.995 + 0.01 * i / 19.0;  // straddles the wrap
    pos.push_back({wrap01(x), 0.5, 0.5});
  }
  const auto groups = fof_groups(pos, 0.002, 5);
  ASSERT_EQ(groups.ngroups(), 1u);
  EXPECT_EQ(groups.group_size[0], 20u);
}

TEST(Fof, IsolatedParticlesAreUngrouped) {
  Rng rng(2);
  std::vector<Vec3> pos(50);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  const auto groups = fof_groups(pos, 1e-5, 2);
  EXPECT_EQ(groups.ngroups(), 0u);
  for (auto g : groups.group_of) EXPECT_EQ(g, FofGroups::kNoGroup);
}

TEST(Fof, ChainLinksTransitively) {
  // A line of particles each within ll of the next forms one group.
  std::vector<Vec3> pos;
  for (int i = 0; i < 30; ++i) pos.push_back({0.1 + 0.004 * i, 0.5, 0.5});
  const auto groups = fof_groups(pos, 0.005, 5);
  ASSERT_EQ(groups.ngroups(), 1u);
  EXPECT_EQ(groups.group_size[0], 30u);
}

TEST(Power, WhiteNoiseParticlesShowOnlyShotNoise) {
  // Poisson-random particles: P(k) = 1/N exactly; after shot-noise
  // subtraction the signal is consistent with zero.
  Rng rng(3);
  std::vector<Vec3> pos(20000);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  PowerMeasureParams mp;
  mp.n_mesh = 32;
  const auto bins = measure_power(pos, mp);
  const double shot = 1.0 / static_cast<double>(pos.size());
  for (const auto& b : bins) {
    if (b.k / (2 * std::numbers::pi) > 10) continue;  // skip window-dominated shells
    EXPECT_NEAR(b.power, 0.0, 0.5 * shot) << "k = " << b.k;
  }
}

TEST(Power, DetectsSinglePlaneWave) {
  // Particles displaced by a single mode show power in that shell.
  const std::size_t g = 32;
  std::vector<Vec3> pos;
  const double amp = 0.002;
  for (std::size_t z = 0; z < g; ++z)
    for (std::size_t y = 0; y < g; ++y)
      for (std::size_t x = 0; x < g; ++x) {
        const double q = (x + 0.5) / static_cast<double>(g);
        pos.push_back(wrap01(Vec3{q + amp * std::sin(2 * std::numbers::pi * 4 * q),
                                  (y + 0.5) / static_cast<double>(g),
                                  (z + 0.5) / static_cast<double>(g)}));
      }
  PowerMeasureParams mp;
  mp.n_mesh = 32;
  mp.subtract_shot_noise = false;
  const auto bins = measure_power(pos, mp);
  double peak_k = 0, peak_shell_sum = 0;
  for (const auto& b : bins) {
    const double shell = b.power * static_cast<double>(b.modes);
    if (shell > peak_shell_sum) {
      peak_shell_sum = shell;
      peak_k = b.k / (2 * std::numbers::pi);
    }
  }
  EXPECT_NEAR(peak_k, 4.0, 0.5);
  // Linear theory: two modes at +-(4,0,0) each carry |delta_k|^2 =
  // (2 pi 4 amp / 2)^2; the shell average dilutes them over the shell, so
  // compare the shell *sum*.
  const double expect = 2.0 * std::pow(2 * std::numbers::pi * 4 * amp / 2, 2);
  EXPECT_NEAR(peak_shell_sum, expect, 0.2 * expect);
}

TEST(Projection, DepositsAllContainedParticles) {
  Rng rng(4);
  std::vector<Vec3> pos(1000);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  ProjectionParams pp;
  pp.pixels = 32;
  const auto img = project_density(pos, pp);
  double total = 0;
  for (std::size_t y = 0; y < img.height(); ++y)
    for (std::size_t x = 0; x < img.width(); ++x) total += img.at(x, y);
  // CIC loses only the mass deposited outside the image edge.
  EXPECT_NEAR(total, 1000.0, 50.0);
}

TEST(Projection, SubRegionZoomSelects) {
  std::vector<Vec3> pos{{0.1, 0.1, 0.5}, {0.9, 0.9, 0.5}};
  ProjectionParams pp;
  pp.pixels = 16;
  pp.region = Box{{0.0, 0.0, 0.0}, {0.5, 0.5, 1.0}};
  const auto img = project_density(pos, pp);
  double total = 0;
  for (std::size_t y = 0; y < 16; ++y)
    for (std::size_t x = 0; x < 16; ++x) total += img.at(x, y);
  EXPECT_NEAR(total, 1.0, 1e-9);  // only the first particle is inside
}

TEST(Projection, WritesFile) {
  Rng rng(5);
  std::vector<Vec3> pos(100);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  ProjectionParams pp;
  pp.pixels = 16;
  EXPECT_TRUE(write_projection(pos, pp, testing::TempDir() + "/proj.pgm"));
}

TEST(Profile, RecoversUniformDensity) {
  Rng rng(6);
  const std::size_t n = 200000;
  std::vector<Vec3> pos(n);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  const double pm = 1.0 / static_cast<double>(n);
  const auto bins = radial_profile(pos, pm, {0.5, 0.5, 0.5}, 0.05, 0.3, 6);
  for (const auto& b : bins) {
    EXPECT_NEAR(b.density, 1.0, 0.15) << "r = " << b.r;  // mean density 1
  }
}

TEST(Profile, PlummerSlopeIsSteepOutside) {
  const auto ps = core::plummer_particles(100000, 1.0, {0.5, 0.5, 0.5}, 0.02, 7);
  const auto pos = core::positions_of(ps);
  const auto bins = radial_profile(pos, 1e-5, {0.5, 0.5, 0.5}, 0.005, 0.16, 8);
  // Density decreases outward beyond the scale radius; outer slope -> r^-5.
  for (std::size_t i = 3; i < bins.size(); ++i)
    EXPECT_LT(bins[i].density, bins[i - 1].density);
  const double slope = std::log(bins[7].density / bins[4].density) /
                       std::log(bins[7].r / bins[4].r);
  EXPECT_NEAR(slope, -5.0, 1.2);
}

TEST(Profile, PeriodicCenterOfMass) {
  // A clump straddling the wrap: the naive mean is wrong, the periodic
  // center lands inside the clump.
  std::vector<Vec3> pos{{0.98, 0.5, 0.5}, {0.02, 0.5, 0.5}};
  const Vec3 com = periodic_center_of_mass(pos);
  EXPECT_TRUE(std::abs(com.x - 0.0) < 0.03 || std::abs(com.x - 1.0) < 0.03);
  EXPECT_NEAR(com.y, 0.5, 1e-12);
}


TEST(Correlation, UniformRandomHasZeroXi) {
  Rng rng(10);
  std::vector<Vec3> pos(30000);
  for (auto& p : pos) p = {rng.uniform(), rng.uniform(), rng.uniform()};
  CorrelationParams cp;
  cp.r_min = 0.01;
  cp.r_max = 0.2;
  cp.nbins = 8;
  const auto bins = correlation_function(pos, cp);
  for (const auto& b : bins) {
    // Poisson noise ~ 1/sqrt(pairs).
    const double noise = 4.0 / std::sqrt(static_cast<double>(std::max<std::uint64_t>(b.pairs, 1)));
    EXPECT_NEAR(b.xi, 0.0, noise + 0.01) << "r = " << b.r;
  }
}

TEST(Correlation, ClusteredSetIsPositiveAtSmallR) {
  const auto ps = core::clustered_particles(20000, 1.0, 5, 0.8, 0.02, 11);
  const auto pos = core::positions_of(ps);
  CorrelationParams cp;
  cp.r_min = 0.002;
  cp.r_max = 0.3;
  cp.nbins = 10;
  const auto bins = correlation_function(pos, cp);
  // Strong clustering at small separations, decaying outward.
  EXPECT_GT(bins.front().xi, 10.0);
  EXPECT_LT(bins.back().xi, bins.front().xi * 0.1);
}

TEST(Correlation, PairCountsConserveAllPairsWithinRange) {
  // A tiny configuration checked by hand: 3 particles on a line.
  const std::vector<Vec3> pos{{0.1, 0.5, 0.5}, {0.15, 0.5, 0.5}, {0.2, 0.5, 0.5}};
  CorrelationParams cp;
  cp.r_min = 0.01;
  cp.r_max = 0.2;
  cp.nbins = 6;
  const auto bins = correlation_function(pos, cp);
  std::uint64_t total = 0;
  for (const auto& b : bins) total += b.pairs;
  EXPECT_EQ(total, 3u);  // (0,1), (1,2) at 0.05; (0,2) at 0.1
}

TEST(MassFunction, BinsCountsAndDensity) {
  FofGroups groups;
  groups.group_size = {1000, 500, 100, 90, 80, 40};  // descending
  const double pm = 1e-5;
  const auto mf = halo_mass_function(groups, pm, 4);
  std::size_t total = 0;
  for (const auto& b : mf) {
    total += b.count;
    if (b.count > 0) {
      EXPECT_GT(b.dn_dlog10m, 0.0);
    }
  }
  EXPECT_EQ(total, groups.group_size.size());
  // Bin centers ascend in mass.
  for (std::size_t b = 1; b < mf.size(); ++b) EXPECT_GT(mf[b].mass, mf[b - 1].mass);
}

TEST(MassFunction, EmptyCatalog) {
  FofGroups groups;
  EXPECT_TRUE(halo_mass_function(groups, 1e-5).empty());
}


TEST(Projection, AxisSelection) {
  // A particle off-center in z only: projecting along z hides the offset,
  // projecting along x shows it on the image's y axis (axes = (y, z)).
  std::vector<Vec3> pos{{0.5, 0.5, 0.25}};
  ProjectionParams along_z;
  along_z.pixels = 8;
  along_z.axis = 2;
  const auto img_z = project_density(pos, along_z);
  // Along z the image coordinates are (x, y) = (0.5, 0.5): center pixel.
  EXPECT_GT(img_z.at(3, 3) + img_z.at(4, 4) + img_z.at(3, 4) + img_z.at(4, 3), 0.99);

  ProjectionParams along_x = along_z;
  along_x.axis = 0;  // image axes = (y, z)
  const auto img_x = project_density(pos, along_x);
  double low = 0;  // z = 0.25 -> image y in the lower quarter
  for (std::size_t u = 0; u < 8; ++u)
    for (std::size_t v = 0; v < 3; ++v) low += img_x.at(u, v);
  EXPECT_GT(low, 0.99);
}

}  // namespace
}  // namespace greem::analysis
