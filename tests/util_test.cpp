// Unit tests for the util substrate: vectors, periodic wrapping, RNG,
// Morton codes, statistics, timers, images, tables, parallel_for.

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <sstream>

#include "util/box.hpp"
#include "util/hash.hpp"
#include "util/morton.hpp"
#include "util/parallel_for.hpp"
#include "util/pgm.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/vec3.hpp"

namespace greem {
namespace {

TEST(Crc32, MatchesKnownVector) {
  // The IEEE CRC32 check value ("123456789" -> 0xCBF43926), so our table
  // is interoperable with zlib/cksum implementations.
  const char* s = "123456789";
  EXPECT_EQ(util::crc32(s, 9), 0xCBF43926u);
  EXPECT_EQ(util::crc32(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  util::Crc32 inc;
  inc.update(data.data(), 10);
  inc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(inc.value(), util::crc32(data.data(), data.size()));
}

TEST(Fnv1a64, OrderAndValueSensitive) {
  const auto h1 = util::Fnv1a64{}.mix(1).mix(2).value();
  const auto h2 = util::Fnv1a64{}.mix(2).mix(1).value();
  const auto h3 = util::Fnv1a64{}.mix(1).mix(2).value();
  EXPECT_NE(h1, h2);
  EXPECT_EQ(h1, h3);
}

TEST(Vec3, Arithmetic) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).norm(), 5.0);
  EXPECT_DOUBLE_EQ((-a).x, -1.0);
}

TEST(Vec3, IndexAccess) {
  Vec3 a{1, 2, 3};
  EXPECT_DOUBLE_EQ(a[0], 1);
  EXPECT_DOUBLE_EQ(a[1], 2);
  EXPECT_DOUBLE_EQ(a[2], 3);
  a[1] = 9;
  EXPECT_DOUBLE_EQ(a.y, 9);
}

TEST(Wrap, Wrap01ScalarStaysInUnitInterval) {
  EXPECT_DOUBLE_EQ(wrap01(0.25), 0.25);
  EXPECT_DOUBLE_EQ(wrap01(1.25), 0.25);
  EXPECT_DOUBLE_EQ(wrap01(-0.25), 0.75);
  EXPECT_GE(wrap01(-1e-18), 0.0);
  EXPECT_LT(wrap01(-1e-18), 1.0);
  EXPECT_DOUBLE_EQ(wrap01(0.0), 0.0);
}

TEST(Wrap, MinImageIsShortestDisplacement) {
  EXPECT_DOUBLE_EQ(min_image(0.4), 0.4);
  EXPECT_DOUBLE_EQ(min_image(0.6), -0.4);
  EXPECT_DOUBLE_EQ(min_image(-0.6), 0.4);
  const Vec3 a{0.95, 0.5, 0.1}, b{0.05, 0.5, 0.9};
  const Vec3 d = min_image(a, b);
  EXPECT_NEAR(d.x, 0.1, 1e-15);
  EXPECT_NEAR(d.z, -0.2, 1e-15);
}

TEST(Rng, UniformMomentsAndRange) {
  Rng rng(123);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0, sum2 = 0, sum4 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.normal();
    sum += g;
    sum2 += g * g;
    sum4 += g * g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum4 / n, 3.0, 0.1);  // Gaussian kurtosis
}

TEST(Rng, StreamsAreIndependentAndReproducible) {
  Rng a1(42, 0), a2(42, 0), b(42, 1);
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  Rng a3(42, 0);
  EXPECT_NE(a3.next_u64(), b.next_u64());
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(7), 7u);
  EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Morton, EncodeDecodeRoundtrip) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = rng.uniform_index(1u << kMortonBits);
    const std::uint64_t y = rng.uniform_index(1u << kMortonBits);
    const std::uint64_t z = rng.uniform_index(1u << kMortonBits);
    std::uint64_t rx, ry, rz;
    morton_decode(morton_encode(x, y, z), rx, ry, rz);
    EXPECT_EQ(rx, x);
    EXPECT_EQ(ry, y);
    EXPECT_EQ(rz, z);
  }
}

TEST(Morton, KeyOrderingRespectsOctants) {
  // Points in the low octant sort before points in the high octant.
  const auto lo = morton_key({0.1, 0.1, 0.1});
  const auto hi = morton_key({0.9, 0.9, 0.9});
  EXPECT_LT(lo, hi);
  // Top bit triplet = octant of the unit cube.
  EXPECT_EQ(morton_key({0.9, 0.1, 0.1}) >> (3 * (kMortonBits - 1)), 1u);  // x high
  EXPECT_EQ(morton_key({0.1, 0.9, 0.1}) >> (3 * (kMortonBits - 1)), 2u);  // y high
  EXPECT_EQ(morton_key({0.1, 0.1, 0.9}) >> (3 * (kMortonBits - 1)), 4u);  // z high
}

TEST(Stats, SummaryAndImbalance) {
  const std::vector<double> v{1, 2, 3, 4};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(s.imbalance(), 1.6);
}

TEST(Stats, Percentile) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 30);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 20);
}

TEST(Stats, Rms) {
  const std::vector<double> v{3, 4};
  EXPECT_NEAR(rms(v), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

TEST(Timer, BreakdownAccumulatesAndMerges) {
  TimingBreakdown t;
  t.add("a", 1.0);
  t.add("b", 2.0);
  t.add("a", 0.5);
  EXPECT_DOUBLE_EQ(t.get("a"), 1.5);
  EXPECT_DOUBLE_EQ(t.get("b"), 2.0);
  EXPECT_DOUBLE_EQ(t.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 3.5);

  TimingBreakdown u;
  u.add("b", 1.0);
  u.add("c", 4.0);
  t.merge(u);
  EXPECT_DOUBLE_EQ(t.get("b"), 3.0);
  EXPECT_DOUBLE_EQ(t.get("c"), 4.0);
  // First-use order preserved.
  EXPECT_EQ(t.entries()[0].first, "a");
  EXPECT_EQ(t.entries()[2].first, "c");
}

TEST(Timer, StopwatchMeasuresNonNegative) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 10000; ++i) x = x + i;
  EXPECT_GE(sw.seconds(), 0.0);
}

TEST(Box, ContainsAndVolume) {
  Box b{{0.2, 0.2, 0.2}, {0.4, 0.6, 0.8}};
  EXPECT_TRUE(b.contains({0.3, 0.3, 0.3}));
  EXPECT_FALSE(b.contains({0.4, 0.3, 0.3}));  // hi edge exclusive
  EXPECT_TRUE(b.contains({0.2, 0.2, 0.2}));   // lo edge inclusive
  EXPECT_NEAR(b.volume(), 0.2 * 0.4 * 0.6, 1e-15);
}

TEST(Box, PeriodicDistanceWrapsAroundBoundary) {
  Box b{{0.0, 0.0, 0.0}, {0.1, 1.0, 1.0}};
  // Point at x = 0.95 is 0.05 away across the wrap, not 0.85 directly.
  EXPECT_NEAR(b.periodic_dist2({0.95, 0.5, 0.5}), 0.05 * 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(b.periodic_dist2({0.05, 0.5, 0.5}), 0.0);
}

TEST(Pgm, WritesValidFile) {
  GrayImage img(16, 8);
  img.at(3, 2) = 5.0;
  const std::string path = testing::TempDir() + "/test.pgm";
  ASSERT_TRUE(img.write_pgm_log(path));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[2];
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  EXPECT_EQ(magic[0], 'P');
  EXPECT_EQ(magic[1], '5');
  std::fclose(f);
}

TEST(Table, AlignsColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"x", "1"});
  t.row({"long-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ChunksPartitionRange) {
  std::vector<int> hits(777, 0);
  parallel_for_chunks(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i] += 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 777);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}


TEST(Morton, BoundaryCoordinates) {
  // Coordinates at the very edge of the unit cube stay in range.
  const auto k1 = morton_key({1.0 - 1e-16, 1.0 - 1e-16, 1.0 - 1e-16});
  std::uint64_t x, y, z;
  morton_decode(k1, x, y, z);
  EXPECT_LT(x, 1ull << kMortonBits);
  // Out-of-box inputs wrap periodically.
  EXPECT_EQ(morton_key({1.25, 0.5, 0.5}), morton_key({0.25, 0.5, 0.5}));
  EXPECT_EQ(morton_key({-0.25, 0.5, 0.5}), morton_key({0.75, 0.5, 0.5}));
}

}  // namespace
}  // namespace greem
