// Tests of the simulation-as-a-service layer (src/svc): fair-share
// scheduling, job lifecycle, per-job output namespacing, rollback
// isolation (a fault in job A never perturbs job B), the solo-vs-daemon
// bitwise contract, the JSONL job-control protocol, and the crash
// durability story -- write-ahead journal replay, restart resume,
// journal corruption semantics, drain, and watch backpressure.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/journal.hpp"
#include "gtest/gtest.h"
#include "io/snapshot.hpp"
#include "parx/runtime.hpp"
#include "svc/job.hpp"
#include "svc/protocol.hpp"
#include "svc/scheduler.hpp"
#include "svc/service.hpp"
#include "telemetry/live_endpoint.hpp"
#include "telemetry/telemetry.hpp"

namespace greem {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const auto dir = fs::temp_directory_path() / ("greem_svc_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

svc::JobSpec small_spec(std::uint64_t seed) {
  svc::JobSpec s;
  s.n_particles = 512;
  s.n_mesh = 16;
  s.steps = 2;
  s.seed = seed;
  s.nclusters = 2;
  return s;
}

/// Solo baseline: the same spec run outside the daemon, canonical final
/// state (sorted by id) on return.
std::vector<core::Particle> run_solo(const svc::JobSpec& spec, int nranks,
                                     double* clock_out = nullptr) {
  parx::Runtime rt(nranks);
  std::vector<core::Particle> result;
  double clock = 0;
  rt.run([&](parx::Comm& world) {
    auto cfg = svc::make_sim_config(spec, world.size());
    std::vector<core::Particle> local;
    if (world.rank() == 0) local = svc::make_initial_particles(spec);
    core::ParallelSimulation sim(world, std::move(cfg), std::move(local), 0.0);
    for (std::uint64_t s = 1; s <= spec.steps; ++s)
      sim.step(static_cast<double>(s) * spec.dt);
    sim.synchronize();
    auto sorted = svc::gather_sorted(world, sim);
    if (world.rank() == 0) {
      result = std::move(sorted);
      clock = sim.clock();
    }
  });
  if (clock_out) *clock_out = clock;
  return result;
}

bool same_particles(std::span<const core::Particle> a,
                    std::span<const core::Particle> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size_bytes()) == 0);
}

TEST(FairShareScheduler, ProportionalToWeightAndDeterministic) {
  auto run_once = [] {
    svc::FairShareScheduler sched;
    sched.add(1, 1);
    sched.add(2, 3);
    std::vector<std::uint64_t> picks;
    for (int i = 0; i < 40; ++i) {
      const auto id = sched.pick();
      picks.push_back(*id);
      sched.charge(*id, 100);
    }
    return picks;
  };
  const auto picks = run_once();
  EXPECT_EQ(picks, run_once());  // bit-for-bit replayable schedule
  const auto n2 = std::count(picks.begin(), picks.end(), 2ull);
  const auto n1 = std::count(picks.begin(), picks.end(), 1ull);
  EXPECT_EQ(n1 + n2, 40);
  EXPECT_GE(n2, n1 * 5 / 2);  // weight 3 gets ~3x the slices of weight 1
}

TEST(FairShareScheduler, LateArrivalEntersAtMinPassAndRemoveWorks) {
  svc::FairShareScheduler sched;
  sched.add(1, 1);
  for (int i = 0; i < 100; ++i) sched.charge(1, 1000);
  sched.add(2, 1);  // enters at job 1's pass, not at zero
  std::vector<std::uint64_t> picks;
  for (int i = 0; i < 6; ++i) {
    const auto id = sched.pick();
    picks.push_back(*id);
    sched.charge(*id, 1000);
  }
  EXPECT_EQ(std::count(picks.begin(), picks.end(), 2ull), 3);
  sched.remove(2);
  EXPECT_FALSE(sched.contains(2));
  EXPECT_EQ(*sched.pick(), 1ull);
  sched.remove(1);
  EXPECT_FALSE(sched.pick().has_value());
}

TEST(JobSpec, DimsForFactorsNearCubic) {
  EXPECT_EQ(svc::dims_for(8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(svc::dims_for(12), (std::array<int, 3>{3, 2, 2}));
  EXPECT_EQ(svc::dims_for(6), (std::array<int, 3>{3, 2, 1}));
  EXPECT_EQ(svc::dims_for(1), (std::array<int, 3>{1, 1, 1}));
}

TEST(JobSpec, JsonRoundTrip) {
  svc::JobSpec s = small_spec(7);
  s.name = "round-trip";
  s.priority = 4;
  s.faults = {"2:pp:0", "*:any:*:drop@0.01"};
  s.checkpoint_every = 1;
  s.max_attempts = 5;
  s.snapshot_every = 2;
  s.final_snapshot = false;
  const auto doc = telemetry::parse_json(svc::spec_to_json(s));
  ASSERT_TRUE(doc.has_value());
  const auto back = svc::spec_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, s.name);
  EXPECT_EQ(back->priority, s.priority);
  EXPECT_EQ(back->steps, s.steps);
  EXPECT_EQ(back->n_particles, s.n_particles);
  EXPECT_EQ(back->seed, s.seed);
  EXPECT_EQ(back->faults, s.faults);
  EXPECT_EQ(back->checkpoint_every, s.checkpoint_every);
  EXPECT_EQ(back->max_attempts, s.max_attempts);
  EXPECT_EQ(back->snapshot_every, s.snapshot_every);
  EXPECT_EQ(back->final_snapshot, s.final_snapshot);
  // Malformed: zero steps rejected.
  const auto bad = telemetry::parse_json(R"({"steps":0})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(svc::spec_from_json(*bad).has_value());
}

TEST(SimService, RunsJobsToCompletionWithStatusAndList) {
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = fresh_dir("run");
  svc::SimService service(cfg);
  service.start();
  const auto id1 = service.submit(small_spec(1));
  const auto id2 = service.submit(small_spec(2));
  ASSERT_TRUE(service.wait(id1));
  ASSERT_TRUE(service.wait(id2));
  const auto s1 = service.status(id1);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->state, svc::JobState::kDone);
  EXPECT_EQ(s1->steps_done, 2u);
  EXPECT_GE(s1->first_step_s, 0.0);
  EXPECT_GE(s1->finish_s, s1->first_step_s);
  EXPECT_EQ(service.list().size(), 2u);
  EXPECT_TRUE(fs::exists(service.job_dir(id1) + "/final.bin"));
  EXPECT_TRUE(fs::exists(service.job_dir(id2) + "/final.bin"));
  service.stop();
  EXPECT_TRUE(service.dispatcher_error().empty());
}

// Satellite: two jobs using default paths never clobber each other --
// every output (step-report JSONL, checkpoints, snapshots) is namespaced
// under <root>/job-<id>/.
TEST(SimService, DefaultOutputPathsDoNotCollide) {
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = fresh_dir("paths");
  svc::SimService service(cfg);
  service.start();
  auto spec = small_spec(3);
  spec.checkpoint_every = 1;
  const auto a = service.submit(spec);
  spec.seed = 4;
  const auto b = service.submit(spec);
  ASSERT_TRUE(service.wait(a));
  ASSERT_TRUE(service.wait(b));
  service.stop();

  EXPECT_NE(service.job_dir(a), service.job_dir(b));
  EXPECT_TRUE(fs::exists(service.job_dir(a) + "/final.bin"));
  EXPECT_TRUE(fs::exists(service.job_dir(b) + "/final.bin"));
  EXPECT_FALSE(fs::is_empty(service.job_dir(a) + "/ckpt"));
  EXPECT_FALSE(fs::is_empty(service.job_dir(b) + "/ckpt"));
  if (telemetry::enabled()) {
    // Each job's JSONL stream holds only records labeled with its own id.
    for (const auto id : {a, b}) {
      std::ifstream in(service.job_dir(id) + "/steps.jsonl");
      ASSERT_TRUE(in.good());
      std::string line;
      std::size_t lines = 0;
      while (std::getline(in, line)) {
        ++lines;
        EXPECT_NE(line.find("\"job\":\"" + svc::SimService::job_label(id) + "\""),
                  std::string::npos)
            << line;
      }
      EXPECT_EQ(lines, 2u);  // one record per step, nobody else's
    }
  }
}

// The determinism contract (EXPERIMENTS.md): same spec + seed is bitwise
// identical run solo or under the daemon with contention.
TEST(SimService, SoloAndDaemonFinalStatesAreBitwiseIdentical) {
  const auto spec = small_spec(11);
  const auto solo = run_solo(spec, 8);
  ASSERT_EQ(solo.size(), spec.n_particles);

  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = fresh_dir("bitwise");
  svc::SimService service(cfg);
  service.start();
  // Contention: a second job time-slicing against the one under test.
  service.submit(small_spec(12));
  const auto id = service.submit(spec);
  ASSERT_TRUE(service.wait(id));
  service.stop();

  const auto snap = io::read_snapshot(service.job_dir(id) + "/final.bin");
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(same_particles(snap->particles, solo));
}

// Satellite: rollback isolation.  Job A trips an injected fault and rolls
// back to its own checkpoint; job B runs the same steps concurrently and
// must be bitwise identical to a solo run of B.
TEST(SimService, RollbackIsolatesTheFaultedJob) {
  const auto spec_b = small_spec(21);
  const auto solo_b = run_solo(spec_b, 8);
  auto spec_a = small_spec(20);
  spec_a.steps = 3;
  spec_a.checkpoint_every = 1;
  spec_a.faults = {"2:pp:0"};  // rank 0 aborts in step 2's PP phase, once
  const auto solo_a = run_solo(spec_a, 8);  // faults don't apply solo

  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = fresh_dir("isolation");
  svc::SimService service(cfg);
  service.start();
  const auto a = service.submit(spec_a);
  const auto b = service.submit(spec_b);
  ASSERT_TRUE(service.wait(a));
  ASSERT_TRUE(service.wait(b));
  service.stop();
  ASSERT_TRUE(service.dispatcher_error().empty());

  const auto sa = service.status(a);
  ASSERT_TRUE(sa.has_value());
  EXPECT_EQ(sa->state, svc::JobState::kDone);
  EXPECT_GE(sa->rollbacks, 1);
  const auto sb = service.status(b);
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(sb->state, svc::JobState::kDone);
  EXPECT_EQ(sb->rollbacks, 0);

  // B is untouched by A's fault; A's own recovery is bitwise too.
  const auto snap_b = io::read_snapshot(service.job_dir(b) + "/final.bin");
  ASSERT_TRUE(snap_b.has_value());
  EXPECT_TRUE(same_particles(snap_b->particles, solo_b));
  const auto snap_a = io::read_snapshot(service.job_dir(a) + "/final.bin");
  ASSERT_TRUE(snap_a.has_value());
  EXPECT_TRUE(same_particles(snap_a->particles, solo_a));
}

TEST(SimService, UnrecoverableFaultFailsOnlyThatJob) {
  auto spec_a = small_spec(30);
  spec_a.steps = 3;
  spec_a.checkpoint_every = 1;
  spec_a.max_attempts = 2;
  // One abort per retry, all on rank 0 (the injector spends one matching
  // spec per firing): the fault outlasts the attempt budget.
  spec_a.faults = {"2:pp:0", "2:pp:0", "2:pp:0", "2:pp:0"};

  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = fresh_dir("fail");
  svc::SimService service(cfg);
  service.start();
  const auto a = service.submit(spec_a);
  const auto b = service.submit(small_spec(31));
  ASSERT_TRUE(service.wait(a));
  ASSERT_TRUE(service.wait(b));
  service.stop();
  ASSERT_TRUE(service.dispatcher_error().empty());

  const auto sa = service.status(a);
  ASSERT_TRUE(sa.has_value());
  EXPECT_EQ(sa->state, svc::JobState::kFailed);
  EXPECT_FALSE(sa->error.empty());
  EXPECT_EQ(sa->rollbacks, 3);  // max_attempts + 1 trips
  const auto sb = service.status(b);
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(sb->state, svc::JobState::kDone);
}

TEST(SimService, CancelQueuedAndResidentJobs) {
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = fresh_dir("cancel");
  svc::SimService service(cfg);
  // Not started yet: submitted jobs stay queued.
  auto spec = small_spec(40);
  spec.steps = 50;
  const auto a = service.submit(spec);
  EXPECT_TRUE(service.cancel(a));
  EXPECT_EQ(service.status(a)->state, svc::JobState::kCancelled);
  EXPECT_FALSE(service.cancel(a));      // already terminal
  EXPECT_FALSE(service.cancel(99999));  // unknown

  service.start();
  const auto b = service.submit(spec);  // long job, cancelled mid-flight
  while (service.status(b)->steps_done == 0 &&
         !svc::is_terminal(service.status(b)->state))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(service.cancel(b));
  ASSERT_TRUE(service.wait(b));
  EXPECT_EQ(service.status(b)->state, svc::JobState::kCancelled);
  EXPECT_LT(service.status(b)->steps_done, spec.steps);
  service.stop();
  EXPECT_TRUE(service.dispatcher_error().empty());
}

TEST(SimService, SnapshotFramesAreWrittenAtTheConfiguredCadence) {
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = fresh_dir("frames");
  svc::SimService service(cfg);
  service.start();
  auto spec = small_spec(50);
  spec.steps = 4;
  spec.snapshot_every = 2;
  const auto id = service.submit(spec);
  ASSERT_TRUE(service.wait(id));
  service.stop();
  EXPECT_TRUE(fs::exists(service.job_dir(id) + "/frame_2.bin"));
  EXPECT_TRUE(fs::exists(service.job_dir(id) + "/final.bin"));
  EXPECT_FALSE(fs::exists(service.job_dir(id) + "/frame_4.bin"));  // final covers it
}

// ---- durability: journal replay, restart resume, drain ----

/// Wait until `id` has taken at least `steps` steps (or gone terminal).
void wait_steps(svc::SimService& service, std::uint64_t id, std::uint64_t steps) {
  for (;;) {
    const auto s = service.status(id);
    ASSERT_TRUE(s.has_value());
    if (s->steps_done >= steps || svc::is_terminal(s->state)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// The restart contract: a job interrupted by a daemon death resumes from
// its newest checkpoint under the next daemon and finishes bitwise
// identical to a solo uninterrupted run.  The unframeable garbage
// appended to the journal is the on-disk signature of a crash mid-append.
TEST(SimService, RestartResumesInterruptedJobBitwise) {
  auto spec = small_spec(70);
  spec.steps = 10;
  spec.checkpoint_every = 2;
  const auto solo = run_solo(spec, 8);

  const auto root = fresh_dir("restart");
  std::uint64_t id = 0;
  std::string journal_path;
  {
    svc::ServiceConfig cfg;
    cfg.nranks = 8;
    cfg.root = root;
    svc::SimService service(cfg);
    EXPECT_FALSE(service.recovered_from_crash());
    journal_path = service.journal_path();
    ASSERT_FALSE(journal_path.empty());
    service.start();
    id = service.submit(spec);
    wait_steps(service, id, 2);  // at least one checkpoint committed
    service.stop();
    ASSERT_TRUE(service.dispatcher_error().empty());
    ASSERT_FALSE(svc::is_terminal(service.status(id)->state));
  }
  {
    // Crash signature: a partial record at the tail (as if the power went
    // out mid-append).  Replay must ignore it.
    std::ofstream out(journal_path, std::ios::binary | std::ios::app);
    out << "GJL";  // half a header
  }

  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = root;
  svc::SimService service(cfg);
  EXPECT_TRUE(service.recovered_from_crash());
  EXPECT_EQ(service.recovered_jobs(), 1u);
  {
    const auto s = service.status(id);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->state, svc::JobState::kQueued);
    EXPECT_TRUE(s->recovered);
  }
  service.start();
  ASSERT_TRUE(service.wait(id));
  service.stop();
  ASSERT_TRUE(service.dispatcher_error().empty());
  EXPECT_EQ(service.status(id)->state, svc::JobState::kDone);

  const auto snap = io::read_snapshot(service.job_dir(id) + "/final.bin");
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(same_particles(snap->particles, solo));
}

// Terminal jobs replay as terminal (no rerun), ids never recycle across
// restarts, and a clean stop() is not reported as a crash.
TEST(SimService, TerminalJobsAndIdsSurviveRestart) {
  const auto root = fresh_dir("terminal_restart");
  std::uint64_t id = 0;
  {
    svc::ServiceConfig cfg;
    cfg.nranks = 8;
    cfg.root = root;
    svc::SimService service(cfg);
    service.start();
    id = service.submit(small_spec(71));
    ASSERT_TRUE(service.wait(id));
    service.stop();
  }
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = root;
  svc::SimService service(cfg);
  EXPECT_FALSE(service.recovered_from_crash());
  EXPECT_EQ(service.recovered_jobs(), 0u);
  const auto s = service.status(id);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->state, svc::JobState::kDone);
  EXPECT_TRUE(s->recovered);
  // A fresh submit continues the id sequence instead of reusing job-1's
  // directory.
  service.start();
  const auto id2 = service.submit(small_spec(72));
  EXPECT_GT(id2, id);
  ASSERT_TRUE(service.wait(id2));
  service.stop();
}

// Satellite: request_shutdown() journals every live job as
// requeued-on-shutdown and reports them; they come back on restart.
TEST(SimService, ShutdownReportsAndRequeuesLiveJobs) {
  const auto root = fresh_dir("requeue");
  std::uint64_t a = 0, b = 0;
  {
    svc::ServiceConfig cfg;
    cfg.nranks = 8;
    cfg.root = root;
    svc::SimService service(cfg);
    a = service.submit(small_spec(73));
    b = service.submit(small_spec(74));
    const auto requeued = service.request_shutdown();
    EXPECT_EQ(requeued, (std::vector<std::uint64_t>{a, b}));
    EXPECT_THROW(service.submit(small_spec(75)), std::invalid_argument);
    service.stop();
  }
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = root;
  svc::SimService service(cfg);
  EXPECT_FALSE(service.recovered_from_crash());  // shutdown record = clean
  EXPECT_EQ(service.recovered_jobs(), 2u);
  service.start();
  ASSERT_TRUE(service.wait(a));
  ASSERT_TRUE(service.wait(b));
  service.stop();
  EXPECT_EQ(service.status(a)->state, svc::JobState::kDone);
  EXPECT_EQ(service.status(b)->state, svc::JobState::kDone);
}

// Drain: residents get a checkpoint + requeue, the journal records a
// clean shutdown, and the drained job later resumes bitwise mid-stream
// even though it never asked for checkpoints itself.
TEST(SimService, DrainCheckpointsAndRequeuesResidents) {
  auto spec = small_spec(76);
  spec.steps = 12;  // no checkpoint_every: the drain checkpoint is the only one
  const auto solo = run_solo(spec, 8);

  const auto root = fresh_dir("drain");
  std::uint64_t id = 0;
  {
    svc::ServiceConfig cfg;
    cfg.nranks = 8;
    cfg.root = root;
    svc::SimService service(cfg);
    service.start();
    id = service.submit(spec);
    wait_steps(service, id, 1);
    const auto requeued = service.request_drain();
    EXPECT_EQ(requeued, std::vector<std::uint64_t>{id});
    // The dispatcher parks the resident and winds itself down.
    for (int i = 0; i < 20000 && service.running(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_FALSE(service.running());
    EXPECT_TRUE(service.drained());
    service.stop();
    ASSERT_TRUE(service.dispatcher_error().empty());
    const auto s = service.status(id);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->state, svc::JobState::kQueued);
    EXPECT_FALSE(fs::is_empty(service.job_dir(id) + "/ckpt"));  // drain ckpt
  }
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = root;
  svc::SimService service(cfg);
  EXPECT_FALSE(service.recovered_from_crash());  // drain = clean shutdown
  EXPECT_EQ(service.recovered_jobs(), 1u);
  service.start();
  ASSERT_TRUE(service.wait(id));
  service.stop();
  const auto snap = io::read_snapshot(service.job_dir(id) + "/final.bin");
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(same_particles(snap->particles, solo));
}

// Satellite: the three journal corruption states are well defined.
// (1) unframeable tail -> ignored (pinned in RestartResumesInterruptedJobBitwise);
// (2) a CRC-corrupt record fails ITS job only;
// (3) a snapshot referencing a missing checkpoint dir -> rebuild from IC.
TEST(SimService, CorruptJournalRecordFailsOnlyThatJob) {
  const auto root = fresh_dir("crc");
  fs::create_directories(root + "/journal");
  const std::string path = root + "/journal/journal.log";
  const auto submit_payload = [](std::uint64_t id, const svc::JobSpec& s) {
    return "{\"event\":\"submit\",\"id\":" + std::to_string(id) +
           ",\"spec\":" + svc::spec_to_json(s) + "}";
  };
  const std::string rec1 = ckpt::encode_journal_record(1, submit_payload(1, small_spec(77)));
  {
    ckpt::JournalWriter w(path);
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE(w.append(1, submit_payload(1, small_spec(77))));
    ASSERT_TRUE(w.append(2, submit_payload(2, small_spec(78))));
  }
  {
    // Flip one payload byte of record 2: framing intact, CRC mismatch.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(rec1.size() + 20 + 2));
    f.put('~');
  }
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = root;
  svc::SimService service(cfg);
  EXPECT_TRUE(service.recovered_from_crash());
  const auto s2 = service.status(2);
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s2->state, svc::JobState::kFailed);
  EXPECT_EQ(s2->error, "journal record corrupt");
  // Job 1's history replayed fine and runs to completion.
  const auto s1 = service.status(1);
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->state, svc::JobState::kQueued);
  service.start();
  ASSERT_TRUE(service.wait(1));
  service.stop();
  EXPECT_EQ(service.status(1)->state, svc::JobState::kDone);
}

TEST(SimService, MissingCheckpointDirRebuildsFromInitialCondition) {
  auto spec = small_spec(79);
  spec.steps = 6;
  spec.checkpoint_every = 2;
  const auto solo = run_solo(spec, 8);

  const auto root = fresh_dir("nockpt");
  std::uint64_t id = 0;
  {
    svc::ServiceConfig cfg;
    cfg.nranks = 8;
    cfg.root = root;
    svc::SimService service(cfg);
    service.start();
    id = service.submit(spec);
    wait_steps(service, id, 2);
    service.stop();
    ASSERT_FALSE(svc::is_terminal(service.status(id)->state));
    // The journal says "resume from your checkpoint" -- but the
    // checkpoint dir is gone.  Recovery must degrade to the
    // deterministic IC, not wedge or crash.
    fs::remove_all(service.job_dir(id) + "/ckpt");
  }
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = root;
  svc::SimService service(cfg);
  EXPECT_EQ(service.recovered_jobs(), 1u);
  service.start();
  ASSERT_TRUE(service.wait(id));
  service.stop();
  ASSERT_TRUE(service.dispatcher_error().empty());
  EXPECT_EQ(service.status(id)->state, svc::JobState::kDone);
  const auto snap = io::read_snapshot(service.job_dir(id) + "/final.bin");
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(same_particles(snap->particles, solo));  // IC rerun = solo run
}

// Regression: a compaction due on the very append that announces a
// transition must not snapshot the PRE-transition job table.  Records
// are write-ahead (submit journals before jobs_.emplace, terminal before
// j.state flips), so an inline compaction used to rewrite the log from a
// snapshot missing the transition it was just told about -- losing a
// submitted job, or resurrecting a finished one, across a crash.  The
// journal bytes are copied aside mid-life to simulate kill -9 at the
// exact window (a clean stop() appends shutdown records that mask it).
TEST(SimService, CompactionNeverSnapshotsPreTransitionState) {
  const auto replay_root = [](const std::string& journal, const std::string& name) {
    const auto root = fresh_dir(name);
    fs::create_directories(root + "/journal");
    fs::copy_file(journal, root + "/journal/journal.log",
                  fs::copy_options::overwrite_existing);
    return root;
  };
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = fresh_dir("compact_wal");
  cfg.journal_compact_every = 1;  // every append makes a compaction due
  svc::SimService service(cfg);
  const auto id = service.submit(small_spec(90));

  {
    // Crash right after submit() returned: the journal must still know
    // the job.
    svc::ServiceConfig cfg2;
    cfg2.nranks = 8;
    cfg2.root = replay_root(service.journal_path(), "compact_wal_submit");
    svc::SimService replayed(cfg2);
    const auto s = replayed.status(id);
    ASSERT_TRUE(s.has_value()) << "submitted job compacted away";
    EXPECT_EQ(s->state, svc::JobState::kQueued);
  }

  service.start();
  ASSERT_TRUE(service.wait(id));
  // Crash right after the job went terminal: the journal must already
  // report it done, not requeue a rerun.
  const auto done_root = replay_root(service.journal_path(), "compact_wal_done");
  service.stop();
  ASSERT_TRUE(service.dispatcher_error().empty());
  svc::ServiceConfig cfg3;
  cfg3.nranks = 8;
  cfg3.root = done_root;
  svc::SimService replayed(cfg3);
  const auto s = replayed.status(id);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->state, svc::JobState::kDone);
  EXPECT_EQ(replayed.recovered_jobs(), 0u);  // nothing to rerun
}

// Satellite: malformed and duplicate submissions are rejected with a
// structured reason instead of being accepted or dropped.
TEST(SimService, SubmitValidationAndDuplicateRejection) {
  {
    svc::ServiceConfig cfg;
    cfg.root = "";
    EXPECT_THROW(svc::SimService bad(cfg), std::invalid_argument);
  }
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = fresh_dir("validate");
  svc::SimService service(cfg);

  auto bad = small_spec(80);
  bad.max_attempts = 0;
  try {
    service.submit(bad);
    FAIL() << "max_attempts=0 accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("max_attempts"), std::string::npos);
  }

  const auto spec = small_spec(81);
  const auto id = service.submit(spec);
  try {
    service.submit(spec);  // byte-identical spec while job `id` is live
    FAIL() << "duplicate accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
  // Once the first is terminal, rerunning the same spec is legitimate.
  EXPECT_TRUE(service.cancel(id));
  EXPECT_GT(service.submit(spec), id);

  // The wire-level reason field (spec_from_json's reason out-param).
  std::string why;
  const auto parsed = telemetry::parse_json(R"({"max_attempts":0})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(svc::spec_from_json(*parsed, &why).has_value());
  EXPECT_NE(why.find("max_attempts"), std::string::npos);
  const auto replies = svc::handle_command_line(
      service, telemetry::LiveEndpoint::global(), 0,
      R"({"cmd":"submit","spec":{"steps":0}})");
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_NE(replies[0].find("\"type\":\"error\""), std::string::npos);
  EXPECT_NE(replies[0].find("\"reason\":"), std::string::npos);
  EXPECT_NE(replies[0].find("steps"), std::string::npos);
}

// ---- protocol ----

class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    timeval tv{20, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~LineClient() { close(); }
  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  bool connected() const { return connected_; }

  void send_line(const std::string& line) {
    const std::string out = line + "\n";
    ASSERT_EQ(::send(fd_, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
  }

  /// Next full line (without '\n'), or nullopt on timeout/EOF.
  std::optional<std::string> read_line() {
    for (;;) {
      const auto nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char tmp[512];
      const ssize_t r = ::recv(fd_, tmp, sizeof(tmp), 0);
      if (r <= 0) return std::nullopt;
      buf_.append(tmp, static_cast<std::size_t>(r));
    }
  }

  /// Read lines until one contains `needle` (returns it) or EOF/timeout.
  std::optional<std::string> read_until(const std::string& needle) {
    while (auto line = read_line()) {
      if (line->find(needle) != std::string::npos) return line;
    }
    return std::nullopt;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

TEST(ServiceProtocol, SubmitWatchListCancelOverTheWire) {
  auto& ep = telemetry::LiveEndpoint::global();
  ASSERT_TRUE(ep.start(0));
  svc::ServiceConfig cfg;
  cfg.nranks = 8;
  cfg.root = fresh_dir("proto");
  svc::SimService service(cfg);
  service.attach_endpoint(ep);

  LineClient client(ep.port());
  ASSERT_TRUE(client.connected());
  // Reconnect-friendly hello: versioned protocol, then a metrics line.
  const auto hello = client.read_line();
  ASSERT_TRUE(hello.has_value());
  EXPECT_NE(hello->find("\"type\":\"hello\""), std::string::npos);
  EXPECT_NE(hello->find("\"proto\":3"), std::string::npos);
  ASSERT_TRUE(client.read_line().has_value());  // metrics snapshot

  // Submit + watch while the dispatcher is not yet running, so the watch
  // subscription provably precedes every record of the job.
  client.send_line(R"({"cmd":"submit","spec":{"name":"wire","steps":2,)"
                   R"("n_particles":512,"n_mesh":16,"seed":60}})");
  const auto submitted = client.read_until("\"type\":\"submitted\"");
  ASSERT_TRUE(submitted.has_value());
  EXPECT_NE(submitted->find("\"id\":1"), std::string::npos);
  client.send_line(R"({"cmd":"watch","id":1})");
  ASSERT_TRUE(client.read_until("\"type\":\"watching\"").has_value());

  // Unknown command and malformed JSON produce error lines, not drops.
  client.send_line(R"({"cmd":"frobnicate"})");
  ASSERT_TRUE(client.read_until("\"type\":\"error\"").has_value());
  client.send_line("{not json");
  ASSERT_TRUE(client.read_until("\"type\":\"error\"").has_value());
  // Legacy plain-text metrics command still answered.
  client.send_line("metrics");
  ASSERT_TRUE(client.read_until("\"type\":\"metrics\"").has_value());

  service.start();
  // The watch stream carries the job's records/events through to "done".
  const auto done = client.read_until("\"state\":\"done\"");
  ASSERT_TRUE(done.has_value());
  if (telemetry::enabled()) {
    // StepRecords were streamed to the watcher, tagged with the job.
    ASSERT_TRUE(service.wait(1));
  }
  client.send_line(R"({"cmd":"status","id":1})");
  const auto status = client.read_until("\"type\":\"status\"");
  ASSERT_TRUE(status.has_value());
  EXPECT_NE(status->find("\"state\":\"done\""), std::string::npos);
  client.send_line(R"({"cmd":"list"})");
  ASSERT_TRUE(client.read_until("\"type\":\"jobs\"").has_value());
  client.send_line(R"({"cmd":"cancel","id":1})");
  const auto cancelled = client.read_until("\"type\":\"cancelled\"");
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_NE(cancelled->find("\"ok\":false"), std::string::npos);  // already done

  // Drain over the wire: nothing is live, so "requeued" is empty and the
  // dispatcher winds down into the drained state.
  client.send_line(R"({"cmd":"drain"})");
  const auto draining = client.read_until("\"type\":\"draining\"");
  ASSERT_TRUE(draining.has_value());
  EXPECT_NE(draining->find("\"requeued\":[]"), std::string::npos);
  for (int i = 0; i < 20000 && service.running(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(service.drained());

  client.close();
  service.stop();
  ep.stop();
}

// Tentpole satellite: a wedged watcher does not stall publishers or lose
// its subscription -- its bounded queue drops the OLDEST lines and the
// next thing it reads includes a {"type":"dropped_records"} notice with
// the gap size.
TEST(LiveEndpointService, SlowWatcherSeesDroppedRecordsNotice) {
  auto& ep = telemetry::LiveEndpoint::global();
  ASSERT_TRUE(ep.start(0));
  ep.set_max_queue(8);

  LineClient client(ep.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.read_line().has_value());  // hello
  ASSERT_TRUE(client.read_line().has_value());  // metrics

  // The client stops reading; lines pile into the kernel buffers, then
  // into the bounded queue, then drop.  Publishing never blocks.
  const auto before = ep.records_dropped();
  const std::string line = "{\"type\":\"blob\",\"pad\":\"" + std::string(4096, 'x') + "\"}";
  int published = 0;
  for (; published < 20000 && ep.records_dropped() == before; ++published)
    ep.publish(line);
  ASSERT_GT(ep.records_dropped(), before) << "no drops after " << published << " lines";
  EXPECT_EQ(ep.clients(), 1u);  // still connected, not kicked

  // Catching up, the client finds the in-stream gap notice.
  const auto notice = client.read_until("\"type\":\"dropped_records\"");
  ASSERT_TRUE(notice.has_value());
  EXPECT_NE(notice->find("\"dropped_records\":"), std::string::npos);

  ep.set_max_queue(256);  // restore the default for other tests
  client.close();
  ep.stop();
}

// Satellite: watchers that vanish are dropped and counted.
TEST(LiveEndpointService, DroppedClientsAreCounted) {
  auto& ep = telemetry::LiveEndpoint::global();
  ASSERT_TRUE(ep.start(0));
  const auto before =
      telemetry::Registry::global().counter("telemetry/live/clients_dropped").value();
  {
    LineClient client(ep.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.read_line().has_value());  // hello
  }  // abrupt disconnect
  for (int i = 0; i < 2000 && ep.clients() > 0; ++i) {
    ep.publish("{\"type\":\"tick\"}");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ep.clients(), 0u);
  if (telemetry::enabled()) {
    EXPECT_GT(
        telemetry::Registry::global().counter("telemetry/live/clients_dropped").value(),
        before);
  }
  ep.stop();
}

TEST(RuntimeShared, SingletonSizeIsSticky) {
  auto& rt = parx::Runtime::shared(4);
  EXPECT_EQ(rt.nranks(), 4);
  EXPECT_EQ(&parx::Runtime::shared(), &rt);
  EXPECT_EQ(&parx::Runtime::shared(4), &rt);
  EXPECT_THROW(parx::Runtime::shared(8), std::invalid_argument);
}

}  // namespace
}  // namespace greem
