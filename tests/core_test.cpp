// Core library tests: force baselines, the serial TreePM force against
// Ewald, energy conservation of the multiple-stepsize integrator, and the
// linear growth of structure in a comoving simulation.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/power_measure.hpp"
#include "core/direct_force.hpp"
#include "pp/cutoff.hpp"
#include "core/energy.hpp"
#include "core/simulation.hpp"
#include "core/tree_force.hpp"
#include "core/treepm_force.hpp"
#include "ewald/ewald.hpp"
#include "ic/zeldovich.hpp"
#include "io/snapshot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace greem::core {
namespace {

TEST(DirectForce, TwoBodyNewton) {
  const std::vector<Vec3> pos{{0.3, 0.5, 0.5}, {0.7, 0.5, 0.5}};
  const std::vector<double> mass{1.0, 2.0};
  std::vector<Vec3> acc(2);
  direct_newton(pos, mass, acc, 0.0);
  EXPECT_NEAR(acc[0].x, 2.0 / 0.16, 1e-12);
  EXPECT_NEAR(acc[1].x, -1.0 / 0.16, 1e-12);
  EXPECT_DOUBLE_EQ(acc[0].y, 0.0);
}

TEST(DirectForce, ShortRangeUsesMinimumImage) {
  // Particles at x = 0.05 and 0.95 are 0.1 apart through the boundary.
  const std::vector<Vec3> pos{{0.05, 0.5, 0.5}, {0.95, 0.5, 0.5}};
  const std::vector<double> mass{1.0, 1.0};
  std::vector<Vec3> acc(2);
  const double rcut = 0.3;
  direct_short_range(pos, mass, acc, rcut, 0.0);
  const double g = pp::g_p3m(2.0 * 0.1 / rcut);
  EXPECT_NEAR(acc[0].x, -g / 0.01, 1e-9);  // pulled backwards through the wrap
  EXPECT_NEAR(acc[1].x, g / 0.01, 1e-9);
}

TEST(TreeForce, MatchesDirectNewtonForClusteredSet) {
  auto ps = plummer_particles(500, 1.0, {0.5, 0.5, 0.5}, 0.05, 1);
  const auto pos = positions_of(ps);
  const auto mass = masses_of(ps);
  std::vector<Vec3> direct(pos.size()), walked(pos.size());
  direct_newton(pos, mass, direct, 1e-8);
  TreeForceParams tp;
  tp.theta = 0.4;
  tp.eps2 = 1e-8;
  const auto stats = tree_newton(pos, mass, walked, tp);
  EXPECT_GT(stats.interactions, 0u);
  std::vector<double> rel;
  for (std::size_t i = 0; i < pos.size(); ++i)
    rel.push_back((walked[i] - direct[i]).norm() / std::max(direct[i].norm(), 1e-10));
  EXPECT_LT(rms(rel), 0.02);
}

TEST(TreePmForce, TotalMatchesEwaldUniform) {
  // The full pipeline: phantom-kernel tree short-range + PM long-range
  // against the exact periodic force.
  auto ps = random_uniform_particles(400, 1.0, 2);
  const auto pos = positions_of(ps);
  const auto mass = masses_of(ps);

  TreePmParams params;
  params.pm.n_mesh = 32;
  params.theta = 0.3;
  params.ncrit = 32;
  params.eps = 1e-5;
  std::vector<Vec3> acc(pos.size());
  TreePmForce force(params);
  const auto stats = force.total(pos, mass, acc);
  EXPECT_GT(stats.interactions, 0u);

  ewald::EwaldParams ep;
  ep.table_n = 40;
  const ewald::Ewald ew(ep);
  std::vector<Vec3> exact(pos.size());
  ew.accelerations(pos, mass, exact, params.eps * params.eps);

  std::vector<double> rel;
  for (std::size_t i = 0; i < pos.size(); ++i)
    rel.push_back((acc[i] - exact[i]).norm() / std::max(exact[i].norm(), 1e-12));
  EXPECT_LT(rms(rel), 0.06);  // rcut = 3h aliasing bound, see pm_test
}

TEST(TreePmForce, TotalMatchesEwaldClustered) {
  auto ps = clustered_particles(400, 1.0, 3, 0.7, 0.03, 3);
  const auto pos = positions_of(ps);
  const auto mass = masses_of(ps);

  TreePmParams params;
  params.pm.n_mesh = 32;
  params.theta = 0.3;
  params.ncrit = 32;
  params.eps = 1e-4;  // clustered: regularize close pairs for comparison
  std::vector<Vec3> acc(pos.size());
  TreePmForce force(params);
  force.total(pos, mass, acc);

  ewald::EwaldParams ep;
  ep.table_n = 40;
  const ewald::Ewald ew(ep);
  std::vector<Vec3> exact(pos.size());
  ew.accelerations(pos, mass, exact, params.eps * params.eps);

  std::vector<double> rel;
  for (std::size_t i = 0; i < pos.size(); ++i)
    rel.push_back((acc[i] - exact[i]).norm() / std::max(exact[i].norm(), 1e-12));
  EXPECT_LT(rms(rel), 0.06);
}

TEST(TreePmForce, ShortRangeConsistentWithDirect) {
  auto ps = random_uniform_particles(300, 1.0, 4);
  const auto pos = positions_of(ps);
  const auto mass = masses_of(ps);
  TreePmParams params;
  params.pm.n_mesh = 32;
  params.theta = 0.0;  // exact walk
  params.kernel = tree::KernelKind::kScalar;
  params.eps = 1e-6;
  TreePmForce force(params);
  std::vector<Vec3> walked(pos.size()), direct(pos.size());
  force.short_range(pos, mass, walked);
  direct_short_range(pos, mass, direct, params.rcut(), params.eps * params.eps);
  for (std::size_t i = 0; i < pos.size(); ++i)
    EXPECT_NEAR((walked[i] - direct[i]).norm(), 0.0, 1e-8);
}

TEST(Schedules, LinearAndLog) {
  const auto lin = linear_schedule(0.0, 1.0, 4);
  EXPECT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin[2], 0.5);
  const auto lg = log_schedule(0.01, 1.0, 2);
  EXPECT_NEAR(lg[1], 0.1, 1e-12);
}

TEST(Simulation, StaticModeConservesEnergy) {
  // A warm periodic system integrated with the multiple-stepsize KDK: the
  // Hamiltonian measured with the Ewald potential must be conserved to
  // the force-error level over tens of steps.
  // Collisionless regime: generous softening and small steps, so the
  // conservation check probes the integrator bookkeeping, not two-body
  // scattering (which limits any leapfrog at fixed dt).
  auto ps = random_uniform_particles(128, 1.0, 5);
  Rng rng(6);
  for (auto& p : ps) p.mom = {rng.normal() * 0.3, rng.normal() * 0.3, rng.normal() * 0.3};

  SimulationConfig cfg;
  cfg.force.pm.n_mesh = 32;
  cfg.force.pm.rcut = 6.0 / 32.0;  // high-accuracy split for a clean check
  cfg.force.theta = 0.3;
  cfg.force.eps = 5e-3;
  cfg.nsub = 2;
  Simulation sim(cfg, ps, 0.0);

  ewald::EwaldParams ep;
  ep.table_n = 32;
  const ewald::Ewald ew(ep);
  const double eps2 = cfg.force.eps * cfg.force.eps;

  sim.synchronize();
  const double e0 = kinetic_energy(sim.particles()) +
                    ewald_potential_energy(ew, sim.particles(), eps2);
  const double dt = 5e-4;
  for (int s = 1; s <= 25; ++s) sim.step(s * dt);
  sim.synchronize();
  const double e1 = kinetic_energy(sim.particles()) +
                    ewald_potential_energy(ew, sim.particles(), eps2);
  EXPECT_NEAR(e1, e0, 0.005 * std::abs(e0));
}

TEST(Simulation, MomentumStaysNearZero) {
  auto ps = random_uniform_particles(100, 1.0, 7);
  SimulationConfig cfg;
  cfg.force.pm.n_mesh = 16;
  cfg.force.eps = 1e-3;
  Simulation sim(cfg, ps, 0.0);
  for (int s = 1; s <= 5; ++s) sim.step(s * 0.005);
  Vec3 net{};
  for (const auto& p : sim.particles()) net += p.mom * p.mass;
  EXPECT_LT(net.norm(), 1e-4);
}

TEST(Simulation, ComovingLinearGrowthMatchesEds) {
  // Zel'dovich ICs in EdS: the power spectrum must grow as D^2 = a^2 in
  // the linear regime -- the standard cosmological integrator test.
  ic::ZeldovichParams zp;
  zp.n_per_dim = 16;
  zp.a_start = 0.02;
  zp.seed = 3;
  const double amp = 1e-7;
  const ic::PowerLaw spec(amp, 0.0);
  const auto cosmos = cosmo::Cosmology::eds_unit_mass();
  auto ics = ic::zeldovich_ics(zp, spec, cosmos);

  std::vector<Particle> ps(ics.pos.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ps[i].pos = ics.pos[i];
    ps[i].mom = ics.mom[i];
    ps[i].mass = ics.particle_mass;
    ps[i].id = i;
  }

  SimulationConfig cfg;
  cfg.force.pm.n_mesh = 16;
  cfg.force.theta = 0.4;
  cfg.force.eps = 1e-3;
  cfg.metric.comoving = true;
  cfg.metric.cosmology = cosmos;
  Simulation sim(cfg, std::move(ps), zp.a_start);

  auto power_at = [&](double kmax_frac) {
    analysis::PowerMeasureParams mp;
    mp.n_mesh = 16;
    mp.subtract_shot_noise = false;  // grid ICs carry no Poisson noise
    const auto bins = analysis::measure_power(positions_of(sim.particles()), mp);
    double sum = 0;
    int cnt = 0;
    for (const auto& b : bins) {
      const double kk = b.k / (2.0 * std::numbers::pi);
      if (kk >= 2 && kk <= kmax_frac) {
        sum += b.power;
        ++cnt;
      }
    }
    return sum / std::max(cnt, 1);
  };

  const double p0 = power_at(5);
  const double a_end = 2.0 * zp.a_start;
  const auto schedule = log_schedule(zp.a_start, a_end, 16);
  for (std::size_t s = 1; s < schedule.size(); ++s) sim.step(schedule[s]);
  sim.synchronize();
  const double p1 = power_at(5);

  // D grows by 2x -> power by 4x (tolerate discreteness/shot effects).
  EXPECT_NEAR(p1 / p0, 4.0, 1.0);
}

TEST(Energy, TreePmPotentialTracksEwald) {
  auto ps = random_uniform_particles(150, 1.0, 8);
  TreePmParams params;
  params.pm.n_mesh = 32;
  TreePmForce force(params);
  const double u_treepm = treepm_potential_energy(force, ps);
  const ewald::Ewald ew;
  const double u_exact = ewald_potential_energy(ew, ps, 0.0);
  // For a near-uniform distribution U is a small difference of large
  // cancelling terms; compare on the absolute scale of the per-particle
  // binding energy sum (~ 0.5 * |Madelung| * sum m_i^2 ~ 0.01 here).
  EXPECT_NEAR(u_treepm, u_exact, 0.005);
}

TEST(Particles, GeneratorsProduceRequestedMassAndCount) {
  const auto u = random_uniform_particles(100, 2.0, 9);
  double m = 0;
  for (const auto& p : u) m += p.mass;
  EXPECT_NEAR(m, 2.0, 1e-12);
  const auto c = clustered_particles(200, 1.0, 4, 0.5, 0.02, 10);
  EXPECT_EQ(c.size(), 200u);
  for (const auto& p : c) {
    EXPECT_GE(p.pos.x, 0.0);
    EXPECT_LT(p.pos.x, 1.0);
  }
}


TEST(Simulation, IntegratorIsSecondOrder) {
  // Symplectic KDK: halving the step size must quarter the position error
  // (measured against a much finer reference run).
  auto make = [](int nsteps) {
    auto ps = random_uniform_particles(32, 1.0, 21);
    Rng rng(22);
    for (auto& p : ps) p.mom = {rng.normal() * 0.2, rng.normal() * 0.2, rng.normal() * 0.2};
    SimulationConfig cfg;
    cfg.force.pm.n_mesh = 16;
    cfg.force.theta = 0.0;  // exact walk: isolate the time-integration error
    cfg.force.kernel = tree::KernelKind::kScalar;
    cfg.force.eps = 0.02;
    Simulation sim(cfg, std::move(ps), 0.0);
    const double t_end = 0.08;
    for (int s = 1; s <= nsteps; ++s) sim.step(t_end * s / nsteps);
    sim.synchronize();
    return std::vector<Particle>(sim.particles().begin(), sim.particles().end());
  };
  const auto ref = make(64);
  const auto coarse = make(4);
  const auto fine = make(8);
  auto err = [&](const std::vector<Particle>& run) {
    double sum = 0;
    for (std::size_t i = 0; i < run.size(); ++i)
      sum += min_image(run[i].pos, ref[i].pos).norm2();
    return std::sqrt(sum / static_cast<double>(run.size()));
  };
  const double e_coarse = err(coarse);
  const double e_fine = err(fine);
  ASSERT_GT(e_coarse, 0.0);
  // Order 2: ratio ~ 4 (tolerate 2.5-7 for the short run).
  EXPECT_GT(e_coarse / e_fine, 2.5);
  EXPECT_LT(e_coarse / e_fine, 7.0);
}

TEST(StepLimiter, BoundsMaxDrift) {
  auto ps = random_uniform_particles(50, 1.0, 23);
  Rng rng(24);
  for (auto& p : ps) p.mom = {rng.normal(), rng.normal(), rng.normal()};
  TimeMetric metric;  // static: drift(t0,t1) = t1-t0
  StepLimiter lim;
  lim.max_displacement = 0.005;
  const double t1 = suggest_step(ps, metric, 0.0, lim);
  double pmax = 0;
  for (const auto& p : ps) pmax = std::max(pmax, p.mom.norm());
  EXPECT_LE(pmax * metric.drift(0.0, t1), lim.max_displacement * 1.01);
  EXPECT_GE(pmax * metric.drift(0.0, t1), lim.max_displacement * 0.9);
}

TEST(StepLimiter, ColdSystemGetsMaxStep) {
  std::vector<Particle> ps(10);  // zero momenta
  TimeMetric metric;
  StepLimiter lim;
  EXPECT_DOUBLE_EQ(suggest_step(ps, metric, 1.0, lim), 1.0 + lim.max_step);
}


TEST(Simulation, RestartFromSnapshotContinuesTrajectory) {
  // Run 6 steps straight vs 3 steps -> snapshot -> restart -> 3 steps:
  // the split run must track the continuous one to integrator accuracy
  // (the restart re-seeds the long-kick staggering, an O(dt^2) effect).
  auto make_cfg = [] {
    SimulationConfig cfg;
    cfg.force.pm.n_mesh = 16;
    cfg.force.eps = 5e-3;
    cfg.force.theta = 0.3;
    return cfg;
  };
  auto ps = random_uniform_particles(100, 1.0, 31);
  Rng rng(32);
  for (auto& p : ps) p.mom = {rng.normal() * 0.1, rng.normal() * 0.1, rng.normal() * 0.1};
  const double dt = 1e-3;

  Simulation full(make_cfg(), ps, 0.0);
  for (int s = 1; s <= 6; ++s) full.step(s * dt);
  full.synchronize();

  Simulation first(make_cfg(), ps, 0.0);
  for (int s = 1; s <= 3; ++s) first.step(s * dt);
  first.synchronize();
  const std::string path = testing::TempDir() + "/restart.bin";
  ASSERT_TRUE(io::write_snapshot(path, {0, first.clock(), 0.01, 0}, first.particles()));

  const auto snap = io::read_snapshot(path);
  ASSERT_TRUE(snap.has_value());
  Simulation second(make_cfg(), snap->particles, snap->header.clock);
  for (int s = 4; s <= 6; ++s) second.step(s * dt);
  second.synchronize();

  const auto a = full.particles();
  const auto b = second.particles();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(min_image(a[i].pos, b[i].pos).norm(), 1e-6);
    EXPECT_LT((a[i].mom - b[i].mom).norm(), 1e-4);
  }
}

class NsubSweep : public ::testing::TestWithParam<int> {};

TEST_P(NsubSweep, SubcyclingCountsAgreeOnSmoothSystem) {
  // nsub = 1, 2, 4 integrate the same dynamics; on a smooth system over a
  // short interval the trajectories agree to O(dt^2) splitting terms.
  auto ps = random_uniform_particles(64, 1.0, 33);
  Rng rng(34);
  for (auto& p : ps) p.mom = {rng.normal() * 0.05, rng.normal() * 0.05, rng.normal() * 0.05};

  auto run = [&](int nsub) {
    SimulationConfig cfg;
    cfg.force.pm.n_mesh = 16;
    cfg.force.eps = 5e-3;
    cfg.nsub = nsub;
    Simulation sim(cfg, ps, 0.0);
    for (int s = 1; s <= 4; ++s) sim.step(s * 1e-3);
    sim.synchronize();
    return std::vector<Particle>(sim.particles().begin(), sim.particles().end());
  };
  const auto ref = run(4);
  const auto got = run(GetParam());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_LT(min_image(ref[i].pos, got[i].pos).norm(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Counts, NsubSweep, ::testing::Values(1, 2));

}  // namespace
}  // namespace greem::core
