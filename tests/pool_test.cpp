// Tests of the persistent work-stealing task pool: exact-once coverage
// under odd grains, thread-count-independent chunk boundaries, concurrent
// submitters (the parx rank-thread pattern), nested submission, the
// quiescent resize path, and a scheduling stress run.  This file carries
// the "tsan" ctest label; the ThreadSanitizer preset replays it.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "util/parallel_for.hpp"
#include "util/task_pool.hpp"

namespace greem {
namespace {

/// Restores the global pool size on scope exit so tests stay independent.
struct PoolSizeGuard {
  std::size_t saved = num_threads();
  ~PoolSizeGuard() { set_num_threads(saved); }
};

TEST(TaskPool, EveryIndexExactlyOnceWithOddGrain) {
  PoolSizeGuard guard;
  set_num_threads(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_dynamic(0, n, 7, [&](std::size_t lo, std::size_t hi, unsigned slot) {
    EXPECT_LE(lo, hi);
    EXPECT_LE(hi, n);
    EXPECT_LT(slot, max_parallel_slots());
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPool, ChunkBoundariesIndependentOfThreadCount) {
  PoolSizeGuard guard;
  auto chunks_at = [](std::size_t threads) {
    set_num_threads(threads);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    parallel_for_dynamic(3, 501, 11, [&](std::size_t lo, std::size_t hi, unsigned) {
      std::lock_guard lock(mu);
      chunks.insert({lo, hi});
    });
    return chunks;
  };
  const auto c1 = chunks_at(1);
  const auto c4 = chunks_at(4);
  const auto c8 = chunks_at(8);
  EXPECT_EQ(c1, c4);
  EXPECT_EQ(c1, c8);
  // Chunks partition the range.
  std::size_t covered = 0;
  for (const auto& [lo, hi] : c1) covered += hi - lo;
  EXPECT_EQ(covered, 501u - 3u);
}

TEST(TaskPool, ConcurrentSubmitters) {
  // The parx pattern: several rank-threads each submit loops into the one
  // process-wide pool at the same time.
  PoolSizeGuard guard;
  set_num_threads(4);
  constexpr int kSubmitters = 4, kLoops = 50;
  constexpr std::size_t kN = 256;
  std::vector<std::thread> ranks;
  std::vector<std::uint64_t> totals(kSubmitters, 0);
  for (int r = 0; r < kSubmitters; ++r) {
    ranks.emplace_back([&, r] {
      std::uint64_t total = 0;
      for (int l = 0; l < kLoops; ++l) {
        std::atomic<std::uint64_t> sum{0};
        parallel_for_dynamic(0, kN, 5, [&](std::size_t lo, std::size_t hi, unsigned) {
          std::uint64_t s = 0;
          for (std::size_t i = lo; i < hi; ++i) s += i;
          sum.fetch_add(s, std::memory_order_relaxed);
        });
        total += sum.load();
      }
      totals[static_cast<std::size_t>(r)] = total;
    });
  }
  for (auto& t : ranks) t.join();
  const std::uint64_t expect = static_cast<std::uint64_t>(kLoops) * (kN * (kN - 1) / 2);
  for (int r = 0; r < kSubmitters; ++r) EXPECT_EQ(totals[static_cast<std::size_t>(r)], expect);
}

TEST(TaskPool, NestedSubmissionRunsInline) {
  PoolSizeGuard guard;
  set_num_threads(4);
  std::vector<std::atomic<int>> hits(64 * 32);
  parallel_for_dynamic(0, 64, 1, [&](std::size_t lo, std::size_t hi, unsigned) {
    for (std::size_t outer = lo; outer < hi; ++outer) {
      // A loop submitted from inside a pool participant must not deadlock.
      parallel_for_dynamic(0, 32, 4, [&](std::size_t jlo, std::size_t jhi, unsigned) {
        for (std::size_t j = jlo; j < jhi; ++j)
          hits[outer * 32 + j].fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(TaskPool, ResizeIsQuiescentAndIdempotent) {
  PoolSizeGuard guard;
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  EXPECT_EQ(max_parallel_slots(), 3u);
  // Resizing to the current size is a no-op; concurrent identical calls
  // (every rank-thread applying the same config) must all succeed.
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) ts.emplace_back([] { set_num_threads(3); });
  for (auto& t : ts) t.join();
  EXPECT_EQ(num_threads(), 3u);

  set_num_threads(2);
  EXPECT_EQ(num_threads(), 2u);
  std::atomic<int> count{0};
  parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskPool, StressManySmallLoops) {
  PoolSizeGuard guard;
  set_num_threads(4);
  std::uint64_t checks = 0;
  for (int l = 0; l < 500; ++l) {
    const std::size_t n = static_cast<std::size_t>(1 + (l * 37) % 97);
    std::atomic<std::uint64_t> sum{0};
    parallel_for_dynamic(0, n, 3, [&](std::size_t lo, std::size_t hi, unsigned) {
      std::uint64_t s = 0;
      for (std::size_t i = lo; i < hi; ++i) s += i + 1;
      sum.fetch_add(s, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), static_cast<std::uint64_t>(n) * (n + 1) / 2) << "loop " << l;
    ++checks;
  }
  EXPECT_EQ(checks, 500u);
}

TEST(TaskPool, DedicatedPoolIndependentOfGlobal) {
  TaskPool pool(2);
  EXPECT_EQ(pool.threads(), 2u);
  std::atomic<std::uint64_t> sum{0};
  pool.for_dynamic(0, 1000, 13, [&](std::size_t lo, std::size_t hi, unsigned slot) {
    EXPECT_LT(slot, pool.max_slots());
    std::uint64_t s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += i;
    sum.fetch_add(s, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2u);
}

}  // namespace
}  // namespace greem
