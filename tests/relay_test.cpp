// Parallel PM and relay mesh method tests: the distributed solver must
// reproduce the serial PM exactly (up to summation order), the relay
// conversion must agree with the direct conversion, and the traffic ledger
// must show the paper's congestion-relief effect.  Includes the exact
// configuration of the paper's Fig. 5 (6x6 processes, 8^3 mesh, 4 groups).

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "domain/multisection.hpp"
#include "parx/runtime.hpp"
#include "pm/parallel_pm.hpp"
#include "pm/pm_solver.hpp"
#include "pm/pencil_pm.hpp"
#include "pm/relay_mesh.hpp"
#include "util/rng.hpp"

namespace greem::pm {
namespace {

struct TestParticles {
  std::vector<Vec3> pos;
  std::vector<double> mass;
};

TestParticles make_particles(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  TestParticles tp;
  tp.pos.resize(n);
  tp.mass.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    tp.pos[i] = {rng.uniform(), rng.uniform(), rng.uniform()};
    tp.mass[i] = rng.uniform(0.5, 1.5) / static_cast<double>(n);
  }
  return tp;
}

/// Run the parallel PM over `dims` ranks and compare per-particle
/// accelerations with the serial solver.
void expect_matches_serial(std::array<int, 3> dims, MeshConversion method, int n_groups,
                           std::size_t n_mesh) {
  const auto tp = make_particles(300, 42);

  // Serial reference.
  PmSolver serial({n_mesh, 0, Scheme::kTSC, 2, 1.0});
  std::vector<Vec3> ref(tp.pos.size());
  serial.accelerations(tp.pos, tp.mass, ref);

  const int p = dims[0] * dims[1] * dims[2];
  const auto decomp = domain::Decomposition::uniform(dims);

  std::mutex mu;
  std::vector<Vec3> got(tp.pos.size());
  parx::run_ranks(p, [&](parx::Comm& world) {
    ParallelPmParams params;
    params.n_mesh = n_mesh;
    params.conversion.method = method;
    params.conversion.n_groups = n_groups;
    ParallelPm pm(world, params);
    pm.update_domain(decomp.box_of(world.rank()));

    std::vector<Vec3> lpos;
    std::vector<double> lmass;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < tp.pos.size(); ++i) {
      if (decomp.find_domain(tp.pos[i]) == world.rank()) {
        lpos.push_back(tp.pos[i]);
        lmass.push_back(tp.mass[i]);
        idx.push_back(i);
      }
    }
    std::vector<Vec3> lacc(lpos.size());
    pm.accelerations(lpos, lmass, lacc);
    std::lock_guard lock(mu);
    for (std::size_t k = 0; k < idx.size(); ++k) got[idx[k]] = lacc[k];
  });

  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double scale = std::max(ref[i].norm(), 1.0);
    EXPECT_NEAR(got[i].x, ref[i].x, 1e-9 * scale);
    EXPECT_NEAR(got[i].y, ref[i].y, 1e-9 * scale);
    EXPECT_NEAR(got[i].z, ref[i].z, 1e-9 * scale);
  }
}

TEST(ParallelPm, DirectMatchesSerialSingleRank) {
  expect_matches_serial({1, 1, 1}, MeshConversion::kDirect, 1, 16);
}

TEST(ParallelPm, DirectMatchesSerialEightRanks) {
  expect_matches_serial({2, 2, 2}, MeshConversion::kDirect, 1, 16);
}

TEST(ParallelPm, DirectMatchesSerialAnisotropicGrid) {
  expect_matches_serial({4, 2, 1}, MeshConversion::kDirect, 1, 16);
}

TEST(ParallelPm, RelayMatchesSerialTwoGroups) {
  expect_matches_serial({2, 2, 2}, MeshConversion::kRelay, 2, 16);
}

TEST(ParallelPm, RelayMatchesSerialFourGroups) {
  expect_matches_serial({4, 2, 2}, MeshConversion::kRelay, 4, 16);
}

TEST(ParallelPm, RelayWithMoreRanksThanMeshPlanes) {
  // 27 ranks, 8 planes -> n_fft = 8 < p, the regime the relay method
  // targets.
  expect_matches_serial({3, 3, 3}, MeshConversion::kRelay, 3, 8);
}

TEST(ParallelPm, Figure5Configuration) {
  // The paper's illustration: 6x6 = 36 processes, N_PM = 8^3, 8 FFT
  // processes, 4 groups of 9.
  expect_matches_serial({6, 6, 1}, MeshConversion::kRelay, 4, 8);
}

TEST(MeshConverter, PlaneOwnerInvertsSplitRange) {
  parx::run_ranks(5, [](parx::Comm& world) {
    ConverterParams params;
    params.n_mesh = 16;
    params.n_fft = 5;
    MeshConverter conv(world, params);
    for (std::size_t z = 0; z < 16; ++z) {
      const int f = conv.plane_owner(z);
      const auto r = fft::split_range(16, 5, f);
      EXPECT_GE(z, r.begin);
      EXPECT_LT(z, r.end());
    }
  });
}

TEST(MeshConverter, ForwardBackwardRoundtrip) {
  // Scatter a known slab field back to local meshes: every rank must see
  // exactly the global field over its region.
  const std::size_t n = 8;
  const auto dims = std::array<int, 3>{2, 2, 1};
  const auto decomp = domain::Decomposition::uniform(dims);
  parx::run_ranks(4, [&](parx::Comm& world) {
    ConverterParams params;
    params.n_mesh = n;
    params.method = MeshConversion::kDirect;
    MeshConverter conv(world, params);

    const CellRegion region = region_for_domain(decomp.box_of(world.rank()), n, 2);
    conv.set_regions(region, region);

    // Global analytic field f(x,y,z) = x + 10 y + 100 z.
    std::vector<double> slab;
    if (conv.is_fft_rank()) {
      const auto zr = conv.my_slab();
      slab.resize(zr.count * n * n);
      for (std::size_t z = zr.begin; z < zr.end(); ++z)
        for (std::size_t y = 0; y < n; ++y)
          for (std::size_t x = 0; x < n; ++x)
            slab[((z - zr.begin) * n + y) * n + x] =
                static_cast<double>(x) + 10.0 * static_cast<double>(y) +
                100.0 * static_cast<double>(z);
    }
    LocalMesh local = conv.scatter_potential(slab, nullptr);
    for (long z = region.lo[2]; z < region.hi(2); ++z)
      for (long y = region.lo[1]; y < region.hi(1); ++y)
        for (long x = region.lo[0]; x < region.hi(0); ++x) {
          const double expected = static_cast<double>(wrap_cell(x, n)) +
                                  10.0 * static_cast<double>(wrap_cell(y, n)) +
                                  100.0 * static_cast<double>(wrap_cell(z, n));
          EXPECT_DOUBLE_EQ(local.at(x, y, z), expected);
        }
  });
}

TEST(MeshConverter, GatherSumsOverlappingContributions) {
  // Two ranks with overlapping regions each deposit 1 in every cell of
  // their region; the slab must hold the number of covering regions.
  const std::size_t n = 8;
  parx::run_ranks(2, [&](parx::Comm& world) {
    ConverterParams params;
    params.n_mesh = n;
    params.method = MeshConversion::kDirect;
    MeshConverter conv(world, params);

    const CellRegion region{{0, 0, 0}, {n, n, n}};  // both cover everything
    conv.set_regions(region, region);
    LocalMesh mine(region);
    mine.fill(1.0);
    auto slab = conv.gather_density(mine, nullptr);
    if (conv.is_fft_rank()) {
      for (double v : slab) EXPECT_DOUBLE_EQ(v, 2.0);
    }
  });
}

TEST(RelayMesh, ReducesCongestionAtFftRanks) {
  // Measure the busiest receiver during the forward conversion: the relay
  // method must cut it well below the direct method's (the paper's factor
  // >3 at scale; the effect is already visible at 36 ranks).
  const std::size_t n = 8;
  const auto dims = std::array<int, 3>{6, 6, 1};
  const auto decomp = domain::Decomposition::uniform(dims);
  const auto tp = make_particles(720, 7);

  auto run = [&](MeshConversion method, int n_groups) {
    parx::Runtime rt(36);
    std::uint64_t max_in = 0;
    rt.run([&](parx::Comm& world) {
      ParallelPmParams params;
      params.n_mesh = n;
      params.conversion.method = method;
      params.conversion.n_groups = n_groups;
      ParallelPm pm(world, params);
      pm.update_domain(decomp.box_of(world.rank()));
      world.barrier();
      if (world.rank() == 0) world.ledger().reset();
      world.barrier();

      std::vector<Vec3> lpos;
      std::vector<double> lmass;
      for (std::size_t i = 0; i < tp.pos.size(); ++i) {
        if (decomp.find_domain(tp.pos[i]) == world.rank()) {
          lpos.push_back(tp.pos[i]);
          lmass.push_back(tp.mass[i]);
        }
      }
      std::vector<Vec3> lacc(lpos.size());
      pm.accelerations(lpos, lmass, lacc);
      world.barrier();
      if (world.rank() == 0) max_in = world.ledger().totals().max_in_messages;
    });
    return max_in;
  };

  const auto direct = run(MeshConversion::kDirect, 1);
  const auto relay = run(MeshConversion::kRelay, 4);
  EXPECT_GT(direct, relay) << "relay must reduce the busiest endpoint";
  EXPECT_GE(direct, 30u);  // every rank's region overlaps every FFT slab here
}

TEST(MeshConverter, RespectsExplicitFftCount) {
  parx::run_ranks(6, [](parx::Comm& world) {
    ConverterParams params;
    params.n_mesh = 16;
    params.n_fft = 3;
    MeshConverter conv(world, params);
    EXPECT_EQ(conv.is_fft_rank(), world.rank() < 3);
    if (conv.is_fft_rank()) {
      EXPECT_EQ(conv.fft_comm().size(), 3);
    }
  });
}


// ---- pencil-FFT PM: the paper's future-work configuration ----

void expect_pencil_matches_serial(std::array<int, 3> dims, int pr, int pc,
                                  std::size_t n_mesh) {
  const auto tp = make_particles(300, 42);
  PmSolver serial({n_mesh, 0, Scheme::kTSC, 2, 1.0});
  std::vector<Vec3> ref(tp.pos.size());
  serial.accelerations(tp.pos, tp.mass, ref);

  const int p = dims[0] * dims[1] * dims[2];
  const auto decomp = domain::Decomposition::uniform(dims);
  std::mutex mu;
  std::vector<Vec3> got(tp.pos.size());
  parx::run_ranks(p, [&](parx::Comm& world) {
    PencilPmParams params;
    params.n_mesh = n_mesh;
    params.pr = pr;
    params.pc = pc;
    PencilPm pm(world, params);
    pm.update_domain(decomp.box_of(world.rank()));

    std::vector<Vec3> lpos;
    std::vector<double> lmass;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < tp.pos.size(); ++i) {
      if (decomp.find_domain(tp.pos[i]) == world.rank()) {
        lpos.push_back(tp.pos[i]);
        lmass.push_back(tp.mass[i]);
        idx.push_back(i);
      }
    }
    std::vector<Vec3> lacc(lpos.size());
    pm.accelerations(lpos, lmass, lacc);
    std::lock_guard lock(mu);
    for (std::size_t k = 0; k < idx.size(); ++k) got[idx[k]] = lacc[k];
  });
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const double scale = std::max(ref[i].norm(), 1.0);
    EXPECT_NEAR(got[i].x, ref[i].x, 1e-9 * scale);
    EXPECT_NEAR(got[i].y, ref[i].y, 1e-9 * scale);
    EXPECT_NEAR(got[i].z, ref[i].z, 1e-9 * scale);
  }
}

TEST(PencilPm, MatchesSerialSquareGrid) {
  expect_pencil_matches_serial({2, 2, 1}, 2, 2, 16);
}

TEST(PencilPm, MatchesSerialRectangularGrid) {
  expect_pencil_matches_serial({3, 2, 1}, 2, 3, 16);
}

TEST(PencilPm, MatchesSerialWithIdleRanks) {
  // 8 ranks but only a 2x3 pencil grid: the rest only feed/receive mesh.
  expect_pencil_matches_serial({2, 2, 2}, 2, 3, 16);
}

TEST(PencilPm, SupportsMoreFftRanksThanSlabCeiling) {
  // Mesh 8 caps the slab FFT at 8 ranks; the pencil grid uses 16 of 18.
  expect_pencil_matches_serial({3, 3, 2}, 4, 4, 8);
}

TEST(PencilPm, AutoGridSelection) {
  parx::run_ranks(12, [](parx::Comm& world) {
    PencilPmParams params;
    params.n_mesh = 16;
    PencilPm pm(world, params);
    EXPECT_GE(pm.pr() * pm.pc(), 9);  // near-square over 12 ranks
    EXPECT_LE(pm.pr() * pm.pc(), 12);
  });
}

}  // namespace
}  // namespace greem::pm
