// Cosmology background and initial-condition tests: Friedmann factors,
// growth function limits, Gaussian field statistics, Zel'dovich
// consistency (delta = -div psi), and spectrum recovery.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "analysis/power_measure.hpp"
#include "cosmo/cosmology.hpp"
#include "fft/fft3d.hpp"
#include "ic/gaussian_field.hpp"
#include "ic/powerspec.hpp"
#include "ic/zeldovich.hpp"
#include "util/stats.hpp"

namespace greem {
namespace {

TEST(Cosmology, EdsBasics) {
  const auto c = cosmo::Cosmology::eds_unit_mass();
  EXPECT_DOUBLE_EQ(c.omega_k(), 0.0);
  EXPECT_NEAR(c.E(1.0), 1.0, 1e-12);
  EXPECT_NEAR(c.E(0.25), std::sqrt(64.0), 1e-12);  // a^-3/2 = 8
  // Unit box mass: rho_mean = 1.
  EXPECT_NEAR(c.mean_density(), 1.0, 1e-12);
}

TEST(Cosmology, EdsGrowthFactorIsScaleFactor) {
  const auto c = cosmo::Cosmology::eds_unit_mass();
  for (double a : {0.05, 0.1, 0.3, 0.7, 1.0}) {
    EXPECT_NEAR(c.growth_factor(a), a, 2e-3 * a) << "a = " << a;
  }
  EXPECT_NEAR(c.growth_rate(0.3), 1.0, 1e-2);
}

TEST(Cosmology, ConcordanceGrowthSuppressedByLambda) {
  const auto c = cosmo::Cosmology::concordance_unit_mass();
  EXPECT_NEAR(c.growth_factor(1.0), 1.0, 1e-12);
  // Lambda suppresses late growth: D(a) > a... actually D(a)/a > 1 for
  // a < 1 under the D(1) = 1 normalization.
  EXPECT_GT(c.growth_factor(0.5), 0.5);
  EXPECT_LT(c.growth_rate(1.0), 1.0);  // f ~ Omega_m(a)^0.55 < 1
  EXPECT_NEAR(c.growth_rate(1.0), std::pow(0.272, 0.55), 0.03);
}

TEST(Cosmology, KickDriftFactorsMatchEdsAnalytics) {
  const auto c = cosmo::Cosmology::eds_unit_mass();
  // EdS: H = H0 a^-3/2; kick = Int da/(a^2 H) = [2/H0 * (-a^-1/2)']...
  // Int a^(-1/2) da / H0 = 2(sqrt(a1)-sqrt(a0))/H0.
  const double a0 = 0.2, a1 = 0.4;
  EXPECT_NEAR(c.kick_factor(a0, a1), 2.0 * (std::sqrt(a1) - std::sqrt(a0)) / c.H0, 1e-6);
  // drift = Int da/(a^3 H) = Int a^-3/2 da / H0 = 2(a0^-1/2 - a1^-1/2)/H0.
  EXPECT_NEAR(c.drift_factor(a0, a1), 2.0 * (1 / std::sqrt(a0) - 1 / std::sqrt(a1)) / c.H0,
              1e-6);
}

TEST(Cosmology, RedshiftConversions) {
  EXPECT_DOUBLE_EQ(cosmo::Cosmology::a_of_z(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cosmo::Cosmology::a_of_z(399.0), 1.0 / 400.0);
  EXPECT_NEAR(cosmo::Cosmology::z_of_a(1.0 / 31.0), 30.0, 1e-12);
}

TEST(PowerSpec, ShapesBehave) {
  const ic::PowerLaw pl(2.0, 1.0);
  EXPECT_DOUBLE_EQ(pl(3.0), 6.0);
  const ic::CutoffPowerLaw cut(2.0, 1.0, 10.0);
  EXPECT_NEAR(cut(1.0), 2.0 * std::exp(-0.01), 1e-12);
  EXPECT_LT(cut(100.0), pl(100.0) * 1e-10);  // strong damping above k_cut
  EXPECT_DOUBLE_EQ(pl(0.0), 0.0);
}

TEST(PowerSpec, VarianceIntegralMatchesAnalytic) {
  // P = A k^0 (white noise): sigma^2 = A (kmax^3 - kmin^3) / (6 pi^2).
  const ic::PowerLaw white(3.0, 0.0);
  const double kmin = 1.0, kmax = 10.0;
  const double expect =
      3.0 * (kmax * kmax * kmax - kmin * kmin * kmin) / (6.0 * std::numbers::pi * std::numbers::pi);
  EXPECT_NEAR(ic::field_variance(white, kmin, kmax), expect, 1e-6 * expect);
}

TEST(GaussianField, HasZeroMeanAndExpectedVariance) {
  const std::size_t n = 32;
  const ic::PowerLaw ps(1e-4, 0.0);
  const auto delta = ic::gaussian_random_field(n, ps, 99);
  double mean = 0;
  for (double v : delta) mean += v;
  mean /= static_cast<double>(delta.size());
  EXPECT_NEAR(mean, 0.0, 1e-10);  // k = 0 mode zeroed exactly

  double var = 0;
  for (double v : delta) var += v * v;
  var /= static_cast<double>(delta.size());
  // Variance = sum over modes of P(k): all n^3-1 modes carry P = 1e-4.
  const double expect = 1e-4 * static_cast<double>(n * n * n - 1);
  EXPECT_NEAR(var, expect, 0.05 * expect);
}

TEST(GaussianField, ReproducibleAndSeedDependent) {
  const ic::PowerLaw ps(1e-4, 0.0);
  const auto a = ic::gaussian_random_field(8, ps, 1);
  const auto b = ic::gaussian_random_field(8, ps, 1);
  const auto c = ic::gaussian_random_field(8, ps, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// Hard band limit: no power at or above k_max modes, so the spectral
// derivative identity is exact (Nyquist modes carry no content).
class BandLimited final : public ic::PowerSpectrum {
 public:
  BandLimited(double amp, double kmax_modes) : amp_(amp), kmax_(kmax_modes) {}
  double operator()(double k) const override {
    return k > 0 && k < kmax_ * 2.0 * std::numbers::pi ? amp_ : 0.0;
  }

 private:
  double amp_, kmax_;
};

TEST(Displacement, DivergenceRecoversNegativeDelta) {
  // delta = -div psi must hold mode by mode; verify in real space with a
  // spectral derivative cross-check on a band-limited field.
  const std::size_t n = 16;
  const BandLimited ps(1e-3, 6.0);
  const auto delta = ic::gaussian_random_field(n, ps, 5);
  const auto psi = ic::displacement_field(delta, n);

  // Spectral divergence of psi.
  fft::Fft3d fft(n);
  std::vector<fft::Complex> div(n * n * n, fft::Complex{});
  for (int axis = 0; axis < 3; ++axis) {
    auto pk = fft.forward_real(psi[static_cast<std::size_t>(axis)]);
    for (std::size_t z = 0; z < n; ++z)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t x = 0; x < n; ++x) {
          const long k[3] = {fft::wavenumber(x, n), fft::wavenumber(y, n),
                             fft::wavenumber(z, n)};
          const double kc = 2.0 * std::numbers::pi * static_cast<double>(k[axis]);
          div[fft.index(x, y, z)] += fft::Complex(0.0, kc) * pk[fft.index(x, y, z)];
        }
  }
  auto div_real = fft.inverse_to_real(std::move(div));
  for (std::size_t i = 0; i < delta.size(); ++i)
    EXPECT_NEAR(-div_real[i], delta[i], 1e-8 + 1e-6 * std::abs(delta[i]));
}

TEST(Zeldovich, SmallAmplitudeKeepsGridTopology) {
  ic::ZeldovichParams zp;
  zp.n_per_dim = 8;
  zp.a_start = 0.02;
  const ic::PowerLaw ps(1e-8, 0.0);
  const auto ics = ic::zeldovich_ics(zp, ps, cosmo::Cosmology::eds_unit_mass());
  EXPECT_EQ(ics.pos.size(), 512u);
  EXPECT_NEAR(ics.particle_mass, 1.0 / 512.0, 1e-15);
  EXPECT_LT(ics.rms_displacement_spacings, 0.1);
  for (const auto& p : ics.pos) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
  }
}

TEST(Zeldovich, VelocitiesFollowGrowingMode) {
  // p = a^2 H f psi: for EdS f = 1, so mom / displacement = a^2 H(a).
  ic::ZeldovichParams zp;
  zp.n_per_dim = 8;
  zp.a_start = 0.1;
  const auto c = cosmo::Cosmology::eds_unit_mass();
  const ic::PowerLaw ps(1e-8, 0.0);
  const auto ics = ic::zeldovich_ics(zp, ps, c);
  const double vfac = zp.a_start * zp.a_start * c.hubble(zp.a_start);
  // Find a particle with non-negligible displacement and check the ratio.
  const std::size_t n = zp.n_per_dim;
  std::size_t checked = 0;
  for (std::size_t iz = 0; iz < n && checked < 20; ++iz)
    for (std::size_t iy = 0; iy < n && checked < 20; ++iy)
      for (std::size_t ix = 0; ix < n && checked < 20; ++ix) {
        const std::size_t cell = (iz * n + iy) * n + ix;
        const Vec3 q{(ix + 0.5) / static_cast<double>(n), (iy + 0.5) / static_cast<double>(n),
                     (iz + 0.5) / static_cast<double>(n)};
        const Vec3 d = min_image(q, ics.pos[cell]);
        if (d.norm() < 1e-8) continue;
        EXPECT_NEAR(ics.mom[cell].x, vfac * d.x, 0.02 * std::abs(vfac * d.x) + 1e-12);
        ++checked;
      }
  EXPECT_GT(checked, 0u);
}

TEST(Zeldovich, MeasuredSpectrumMatchesInput) {
  // Close the loop: generate ICs from a known P(k), measure it back.
  ic::ZeldovichParams zp;
  zp.n_per_dim = 32;
  zp.a_start = 0.02;
  zp.seed = 11;
  const double amp = 1e-6;
  const ic::PowerLaw ps(amp, 0.0);
  const auto ics = ic::zeldovich_ics(zp, ps, cosmo::Cosmology::eds_unit_mass());

  analysis::PowerMeasureParams mp;
  mp.n_mesh = 32;
  // Grid-based ICs have no Poisson shot noise (the grid suppresses it);
  // subtracting 1/N would swamp the small input signal.
  mp.subtract_shot_noise = false;
  const auto bins = analysis::measure_power(ics.pos, mp);
  // Compare over well-sampled intermediate shells (discreteness and
  // Zel'dovich nonlinearity affect the extremes).
  double ratio_sum = 0;
  int count = 0;
  for (const auto& b : bins) {
    const double kk = b.k / (2.0 * std::numbers::pi);
    if (kk < 3 || kk > 8) continue;
    ratio_sum += b.power / amp;
    ++count;
  }
  ASSERT_GT(count, 0);
  EXPECT_NEAR(ratio_sum / count, 1.0, 0.25);
}


TEST(Lpt2, EqualsZeldovichForSinglePlaneWave) {
  // For a 1-D plane wave phi,xx is the only nonzero second derivative, so
  // delta2 = 0 and the 2LPT correction vanishes identically.
  const std::size_t n = 16;

  struct OneMode final : ic::PowerSpectrum {
    double operator()(double k) const override {
      // Power only in the |k| = 3 shell.
      const double kk = k / (2.0 * std::numbers::pi);
      return (kk > 2.5 && kk < 3.5) ? 1e-6 : 0.0;
    }
  };
  // A shell is not a single wave; instead build truly 1-D content by
  // checking that the 2LPT correction is *small* compared to psi1 for a
  // field whose transverse derivatives nearly vanish is awkward -- use
  // the exact statement instead: for a band-limited field the correction
  // is second order, so halving the amplitude quarters it (next test).
  // Here we check the degenerate amplitude -> zero limit.
  ic::ZeldovichParams zp;
  zp.n_per_dim = n;
  zp.a_start = 0.1;
  const ic::PowerLaw zero(0.0, 0.0);
  const auto c = cosmo::Cosmology::eds_unit_mass();
  const auto z1 = ic::zeldovich_ics(zp, zero, c);
  const auto l1 = ic::lpt2_ics(zp, zero, c);
  for (std::size_t i = 0; i < z1.pos.size(); ++i) {
    EXPECT_EQ(z1.pos[i], l1.pos[i]);
    EXPECT_EQ(l1.mom[i], Vec3{});
  }
}

TEST(Lpt2, CorrectionIsSecondOrderInAmplitude) {
  // psi1 ~ sqrt(P), psi2 ~ P: scaling P by 16 scales the 2LPT-Zel'dovich
  // position difference by 16 and the Zel'dovich displacement by 4.
  ic::ZeldovichParams zp;
  zp.n_per_dim = 16;
  zp.a_start = 0.1;
  zp.seed = 7;
  const auto c = cosmo::Cosmology::eds_unit_mass();

  auto correction_rms = [&](double amp) {
    const ic::CutoffPowerLaw ps(amp, 0.0, 5.0 * 2.0 * std::numbers::pi);
    const auto z = ic::zeldovich_ics(zp, ps, c);
    const auto l = ic::lpt2_ics(zp, ps, c);
    double sum = 0;
    for (std::size_t i = 0; i < z.pos.size(); ++i)
      sum += min_image(z.pos[i], l.pos[i]).norm2();
    return std::sqrt(sum / static_cast<double>(z.pos.size()));
  };
  const double c1 = correction_rms(1e-8);
  const double c16 = correction_rms(16e-8);
  ASSERT_GT(c1, 0.0);
  EXPECT_NEAR(c16 / c1, 16.0, 0.5);
}

TEST(Lpt2, MomentaCarrySecondOrderGrowthRate) {
  // EdS: f1 = 1, f2 = 2.  The momentum of the 2LPT part must be twice the
  // naive first-order velocity factor applied to the same displacement.
  ic::ZeldovichParams zp;
  zp.n_per_dim = 16;
  zp.a_start = 0.05;
  zp.seed = 9;
  const auto c = cosmo::Cosmology::eds_unit_mass();
  const ic::CutoffPowerLaw ps(1e-7, 0.0, 5.0 * 2.0 * std::numbers::pi);
  const auto z = ic::zeldovich_ics(zp, ps, c);
  const auto l = ic::lpt2_ics(zp, ps, c);
  const double vfac = zp.a_start * zp.a_start * c.hubble(zp.a_start);  // f1 = 1

  // Decompose: mom_l = vfac*(psi1 + 2 * psi2c) while the position offset
  // is psi1 + psi2c; with mom_z = vfac*psi1 it follows
  //   mom_l - mom_z = 2 * vfac * (x_l - x_z).
  double worst = 0;
  for (std::size_t i = 0; i < z.pos.size(); ++i) {
    const Vec3 dmom = l.mom[i] - z.mom[i];
    const Vec3 dx = min_image(z.pos[i], l.pos[i]);
    worst = std::max(worst, (dmom - dx * (2.0 * vfac)).norm());
  }
  EXPECT_LT(worst, 1e-10);
}


TEST(Cosmology, ConcordanceFriedmannIdentities) {
  const auto c = cosmo::Cosmology::concordance_unit_mass();
  // Flat: E(a)^2 a^3 -> Omega_m / 1 at small a (matter domination).
  EXPECT_NEAR(c.E(1e-3) * c.E(1e-3) * 1e-9, c.omega_m, 1e-5);
  // Late times approach the de Sitter floor.
  EXPECT_NEAR(c.E(100.0), std::sqrt(c.omega_l), 1e-3);
  // Unit box mass convention: mean density integrates to 1.
  EXPECT_NEAR(c.mean_density(), 1.0, 1e-12);
  // Kick/drift integrals are positive, monotone in interval length.
  EXPECT_GT(c.kick_factor(0.1, 0.2), c.kick_factor(0.1, 0.15));
  EXPECT_GT(c.drift_factor(0.1, 0.2), 0.0);
}

}  // namespace
}  // namespace greem
