#pragma once
// Mesh-layout conversion between the 3-D particle domain decomposition and
// the 1-D FFT slab decomposition (paper §II-B), with both methods:
//
//  * kDirect — the straightforward conversion: one global alltoallv over
//    the world communicator.  Each FFT process then receives a message from
//    every rank whose local mesh overlaps its slab (~p^(2/3) senders; ~4000
//    on the full K computer), which congests its endpoint.
//
//  * kRelay — the paper's relay mesh method: ranks are divided into groups
//    of size >= the number of FFT processes (group 0, the "root group",
//    contains the FFT processes).  The global exchange is replaced by a
//    local alltoallv inside each group (COMM_SMALLA2A), building partial
//    slabs, followed by a reduction across groups (COMM_REDUCE) onto the
//    root group.  The backward path mirrors it: bcast across groups, then
//    local alltoallv inside each group.
//
// Slab plane z belongs to FFT rank f iff z is in split_range(n, n_fft, f);
// payloads are raw cell values in a canonical order both sides derive from
// the (allgathered) region geometries, so no coordinates travel.

#include <cstddef>
#include <vector>

#include "fft/slab_fft.hpp"
#include "pm/mesh.hpp"
#include "parx/comm.hpp"
#include "util/timer.hpp"

namespace greem::pm {

enum class MeshConversion { kDirect, kRelay };

struct ConverterParams {
  std::size_t n_mesh = 64;
  int n_fft = 0;  ///< 0 => min(world size, n_mesh)
  MeshConversion method = MeshConversion::kDirect;
  int n_groups = 1;  ///< relay only; kDirect ignores it
};

class MeshConverter {
 public:
  /// Collective over `world`.  Builds the FFT communicator (COMM_FFT) and,
  /// for kRelay, COMM_SMALLA2A / COMM_REDUCE via comm splits.
  MeshConverter(parx::Comm& world, ConverterParams params);

  const ConverterParams& params() const { return params_; }
  bool is_fft_rank() const;
  /// FFT communicator; valid only on FFT ranks.
  parx::Comm& fft_comm() { return comm_fft_; }

  /// z-planes of this rank's slab (empty unless an FFT rank).
  fft::Range my_slab() const;

  /// FFT rank owning global plane z.
  int plane_owner(std::size_t z) const;

  /// Collective: publish this rank's density/potential regions (they change
  /// whenever the domain decomposition moves boundaries).
  void set_regions(const CellRegion& density_region, const CellRegion& potential_region);

  /// Forward conversion: local density meshes -> complete density slabs on
  /// the FFT ranks (summing overlapping contributions).  Returns the slab
  /// (z-major, ny = nx = n_mesh); empty on non-FFT ranks.
  std::vector<double> gather_density(const LocalMesh& local_density, TimingBreakdown* t);

  /// Backward conversion: potential slabs on the FFT ranks -> each rank's
  /// local potential mesh over its potential region.
  LocalMesh scatter_potential(const std::vector<double>& slab_phi, TimingBreakdown* t);

  // ---- split (asynchronous) conversion --------------------------------
  // start_* packs and posts the conversion's all-to-all (sends go out,
  // receives are posted, nothing is drained), so the caller can overlap
  // independent work while payloads arrive; finish_* drains in arrival
  // order and unpacks in canonical rank order, so the result -- including
  // the floating-point accumulation order of overlapping slab
  // contributions -- is identical to the blocking conversion.
  // gather_density/scatter_potential are exactly start + finish.

  /// In-flight forward conversion posted by start_gather.
  struct PendingGather {
    parx::AlltoallvHandle<double> a2a;
    bool active = false;
  };

  /// In-flight backward conversion posted by start_scatter.
  struct PendingScatter {
    parx::AlltoallvHandle<double> a2a;
    bool active = false;
  };

  PendingGather start_gather(const LocalMesh& local_density, TimingBreakdown* t);
  std::vector<double> finish_gather(PendingGather& pg, TimingBreakdown* t);
  /// Relay: runs the (small) cross-group bcast synchronously, then posts
  /// the in-group all-to-all.  Call on every rank; `slab_phi` is ignored
  /// on non-slab-holders.
  PendingScatter start_scatter(const std::vector<double>& slab_phi, TimingBreakdown* t);
  LocalMesh finish_scatter(PendingScatter& ps, TimingBreakdown* t);

 private:
  int group_of(int world_rank) const;
  int group_start(int g) const;

  /// The conversion communicator (world for kDirect, my group for kRelay)
  /// and that communicator's slice of a world-indexed region table.
  parx::Comm& conv_comm();
  std::vector<CellRegion> conv_slice(const std::vector<CellRegion>& world_regions) const;

  // Pack/unpack halves of the conversion over one communicator whose
  // ranks 0..n_fft-1 hold slabs; `regions` holds the region of each comm
  // member.  Unpack replays every sender's canonical order, accumulating
  // in sender rank order regardless of arrival order.
  std::vector<std::vector<double>> forward_pack(parx::Comm& comm,
                                                const std::vector<CellRegion>& regions,
                                                const LocalMesh& local_density);
  std::vector<double> forward_unpack(parx::Comm& comm, const std::vector<CellRegion>& regions,
                                     const std::vector<std::vector<double>>& recv);
  std::vector<std::vector<double>> backward_pack(parx::Comm& comm,
                                                 const std::vector<CellRegion>& regions,
                                                 const std::vector<double>& slab_phi);
  LocalMesh backward_unpack(parx::Comm& comm, const std::vector<CellRegion>& regions,
                            const std::vector<std::vector<double>>& recv);

  parx::Comm world_;
  ConverterParams params_;
  parx::Comm comm_fft_;      // FFT ranks only
  parx::Comm comm_smalla2a_; // relay: my group
  parx::Comm comm_reduce_;   // relay: same in-group position across groups
  int n_groups_eff_ = 1;
  int base_group_size_ = 0;

  CellRegion density_region_, potential_region_;
  std::vector<CellRegion> world_density_regions_;
  std::vector<CellRegion> world_potential_regions_;
};

}  // namespace greem::pm
