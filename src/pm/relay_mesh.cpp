#include "pm/relay_mesh.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace greem::pm {

namespace {

// Brackets one conversion phase with a traffic-ledger epoch and exports
// the delta into the metrics registry as pm/traffic/<phase>/{messages,
// bytes,model_time_us}.  Only world rank 0 observes (the ledger is global,
// so one observer sees everyone's traffic; N observers would count it N
// times).  Phase boundaries are not globally quiescent here, so a rank
// still inside the previous phase blurs the per-phase split -- totals
// stay exact (see parx/traffic.hpp).
class PhaseProbe {
 public:
  PhaseProbe(parx::Comm& world, const char* phase) {
    if (telemetry::enabled() && world.rank() == 0)
      epoch_.emplace(world.ledger().begin_phase(phase));
  }

  ~PhaseProbe() {
    if (!epoch_) return;
    const parx::TrafficTotals tot = epoch_->totals();
    const double us = epoch_->model_time() * 1e6;
    auto& reg = telemetry::Registry::global();
    const std::string base = "pm/traffic/" + epoch_->name();
    reg.counter(base + "/messages").add(tot.messages);
    reg.counter(base + "/bytes").add(tot.bytes);
    reg.counter(base + "/model_time_us").add(static_cast<std::uint64_t>(us));
  }

  PhaseProbe(const PhaseProbe&) = delete;
  PhaseProbe& operator=(const PhaseProbe&) = delete;

 private:
  std::optional<parx::TrafficLedger::Epoch> epoch_;
};

}  // namespace

MeshConverter::MeshConverter(parx::Comm& world, ConverterParams params)
    : world_(world), params_(params) {
  const int p = world.size();
  if (params_.n_fft <= 0)
    params_.n_fft = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(p), params_.n_mesh));
  params_.n_fft = std::min({params_.n_fft, p, static_cast<int>(params_.n_mesh)});

  // COMM_FFT: the processes that perform the FFT, chosen as ranks
  // 0..n_fft-1 (the paper picks physically close nodes via MPI_Comm_split;
  // rank order is our stand-in for physical locality).
  comm_fft_ = world.split(world.rank() < params_.n_fft ? 0 : 1, world.rank());

  if (params_.method == MeshConversion::kRelay) {
    n_groups_eff_ = std::max(1, params_.n_groups);
    // Every group must hold at least n_fft processes so its first n_fft
    // members can carry partial slabs.
    n_groups_eff_ = std::min(n_groups_eff_, std::max(1, p / params_.n_fft));
    base_group_size_ = p / n_groups_eff_;
    comm_smalla2a_ = world.split(group_of(world.rank()), world.rank());
    const int g = group_of(world.rank());
    comm_reduce_ = world.split(world.rank() - group_start(g), g);
  }
}

int MeshConverter::group_of(int world_rank) const {
  return std::min(world_rank / base_group_size_, n_groups_eff_ - 1);
}

int MeshConverter::group_start(int g) const { return g * base_group_size_; }

bool MeshConverter::is_fft_rank() const { return world_.rank() < params_.n_fft; }

fft::Range MeshConverter::my_slab() const {
  if (!is_fft_rank()) return {};
  return fft::split_range(params_.n_mesh, params_.n_fft, world_.rank());
}

int MeshConverter::plane_owner(std::size_t z) const {
  const std::size_t n = params_.n_mesh;
  const auto pf = static_cast<std::size_t>(params_.n_fft);
  const std::size_t base = n / pf;
  const std::size_t rem = n % pf;
  const std::size_t boundary = rem * (base + 1);
  if (z < boundary) return static_cast<int>(z / (base + 1));
  return static_cast<int>(rem + (z - boundary) / base);
}

void MeshConverter::set_regions(const CellRegion& density_region,
                                const CellRegion& potential_region) {
  density_region_ = density_region;
  potential_region_ = potential_region;
  static_assert(std::is_trivially_copyable_v<CellRegion>);
  world_density_regions_ =
      world_.allgatherv(std::span<const CellRegion>(&density_region_, 1));
  world_potential_regions_ =
      world_.allgatherv(std::span<const CellRegion>(&potential_region_, 1));
}

std::vector<std::vector<double>> MeshConverter::forward_pack(parx::Comm& comm,
                                                             const std::vector<CellRegion>& regions,
                                                             const LocalMesh& local_density) {
  const std::size_t n = params_.n_mesh;
  const auto p = static_cast<std::size_t>(comm.size());
  assert(regions.size() == p);

  // Pack: canonical order is (z, y, x) over the sender's region, routed by
  // the wrapped plane owner.
  std::vector<std::vector<double>> send(p);
  const CellRegion& mine = regions[static_cast<std::size_t>(comm.rank())];
  for (long z = mine.lo[2]; z < mine.hi(2); ++z) {
    const auto f = static_cast<std::size_t>(plane_owner(wrap_cell(z, n)));
    auto& buf = send[f];
    for (long y = mine.lo[1]; y < mine.hi(1); ++y)
      for (long x = mine.lo[0]; x < mine.hi(0); ++x) buf.push_back(local_density.at(x, y, z));
  }
  return send;
}

std::vector<double> MeshConverter::forward_unpack(parx::Comm& comm,
                                                  const std::vector<CellRegion>& regions,
                                                  const std::vector<std::vector<double>>& recv) {
  const std::size_t n = params_.n_mesh;
  const int n_fft = params_.n_fft;
  const auto p = static_cast<std::size_t>(comm.size());

  if (comm.rank() >= n_fft) return {};

  // Unpack: replay every sender's canonical order, accumulating the planes
  // this rank owns into its slab.
  const fft::Range zr = fft::split_range(n, n_fft, comm.rank());
  std::vector<double> slab(zr.count * n * n, 0.0);
  for (std::size_t s = 0; s < p; ++s) {
    const auto& buf = recv[s];
    if (buf.empty()) continue;
    const CellRegion& r = regions[s];
    std::size_t i = 0;
    for (long z = r.lo[2]; z < r.hi(2); ++z) {
      const std::size_t gz = wrap_cell(z, n);
      if (plane_owner(gz) != comm.rank()) continue;
      for (long y = r.lo[1]; y < r.hi(1); ++y) {
        const std::size_t gy = wrap_cell(y, n);
        for (long x = r.lo[0]; x < r.hi(0); ++x) {
          const std::size_t gx = wrap_cell(x, n);
          slab[((gz - zr.begin) * n + gy) * n + gx] += buf[i++];
        }
      }
    }
    assert(i == buf.size());
  }
  return slab;
}

std::vector<std::vector<double>> MeshConverter::backward_pack(parx::Comm& comm,
                                                              const std::vector<CellRegion>& regions,
                                                              const std::vector<double>& slab_phi) {
  const std::size_t n = params_.n_mesh;
  const int n_fft = params_.n_fft;
  const auto p = static_cast<std::size_t>(comm.size());
  assert(regions.size() == p);

  // Pack (slab holders only): for every destination, walk its potential
  // region and emit the values on planes this holder owns.
  std::vector<std::vector<double>> send(p);
  if (comm.rank() < n_fft) {
    const fft::Range zr = fft::split_range(n, n_fft, comm.rank());
    for (std::size_t d = 0; d < p; ++d) {
      const CellRegion& r = regions[d];
      auto& buf = send[d];
      for (long z = r.lo[2]; z < r.hi(2); ++z) {
        const std::size_t gz = wrap_cell(z, n);
        if (plane_owner(gz) != comm.rank()) continue;
        for (long y = r.lo[1]; y < r.hi(1); ++y) {
          const std::size_t gy = wrap_cell(y, n);
          for (long x = r.lo[0]; x < r.hi(0); ++x) {
            const std::size_t gx = wrap_cell(x, n);
            buf.push_back(slab_phi[((gz - zr.begin) * n + gy) * n + gx]);
          }
        }
      }
    }
  }
  return send;
}

LocalMesh MeshConverter::backward_unpack(parx::Comm& comm,
                                         const std::vector<CellRegion>& regions,
                                         const std::vector<std::vector<double>>& recv) {
  const std::size_t n = params_.n_mesh;
  const int n_fft = params_.n_fft;

  // Assemble: walk my region; each plane's values arrive from its owner in
  // the same canonical order.
  const CellRegion& mine = regions[static_cast<std::size_t>(comm.rank())];
  LocalMesh out(mine);
  std::vector<std::size_t> cursor(static_cast<std::size_t>(n_fft), 0);
  for (long z = mine.lo[2]; z < mine.hi(2); ++z) {
    const auto f = static_cast<std::size_t>(plane_owner(wrap_cell(z, n)));
    const auto& buf = recv[f];
    std::size_t& i = cursor[f];
    for (long y = mine.lo[1]; y < mine.hi(1); ++y)
      for (long x = mine.lo[0]; x < mine.hi(0); ++x) out.at(x, y, z) = buf[i++];
  }
  return out;
}

parx::Comm& MeshConverter::conv_comm() {
  return params_.method == MeshConversion::kDirect ? world_ : comm_smalla2a_;
}

std::vector<CellRegion> MeshConverter::conv_slice(
    const std::vector<CellRegion>& world_regions) const {
  if (params_.method == MeshConversion::kDirect) return world_regions;
  const int gs = group_start(group_of(world_.rank()));
  return {world_regions.begin() + gs, world_regions.begin() + gs + comm_smalla2a_.size()};
}

MeshConverter::PendingGather MeshConverter::start_gather(const LocalMesh& local_density,
                                                         TimingBreakdown* t) {
  Stopwatch sw;
  PendingGather pg;
  pg.active = true;
  // Traffic is recorded at send time, so the a2a phase probe can close at
  // the end of posting; the epoch boundary blur is the same as before
  // (see the PhaseProbe note).
  if (params_.method == MeshConversion::kDirect) {
    telemetry::Span span("pm/direct/forward_a2a");
    PhaseProbe probe(world_, "direct_forward_a2a");
    pg.a2a = world_.ialltoallv(forward_pack(world_, world_density_regions_, local_density));
  } else {
    // Step 1 (paper): alltoallv inside the group -> partial slabs on the
    // group's first n_fft members.
    telemetry::Span span("pm/relay/forward_a2a");
    PhaseProbe probe(world_, "relay_forward_a2a");
    pg.a2a = comm_smalla2a_.ialltoallv(
        forward_pack(comm_smalla2a_, conv_slice(world_density_regions_), local_density));
  }
  if (t) t->add("communication", sw.seconds());
  return pg;
}

std::vector<double> MeshConverter::finish_gather(PendingGather& pg, TimingBreakdown* t) {
  Stopwatch sw;
  std::vector<double> slab;
  if (params_.method == MeshConversion::kDirect) {
    telemetry::Span span("pm/direct/forward_wait");
    auto recv = world_.wait_alltoallv(pg.a2a);
    slab = forward_unpack(world_, world_density_regions_, recv);
  } else {
    std::vector<double> partial;
    {
      telemetry::Span span("pm/relay/forward_wait");
      auto recv = comm_smalla2a_.wait_alltoallv(pg.a2a);
      partial = forward_unpack(comm_smalla2a_, conv_slice(world_density_regions_), recv);
    }
    // Step 2: reduce the partial slabs across groups onto the root group.
    {
      telemetry::Span span("pm/relay/reduce");
      PhaseProbe probe(world_, "relay_reduce");
      if (comm_smalla2a_.rank() < params_.n_fft) {
        if (comm_reduce_.size() > 1)
          comm_reduce_.reduce_sum(std::span<double>(partial), 0);
        if (comm_reduce_.rank() == 0) slab = std::move(partial);
      }
    }
  }
  pg.active = false;
  if (t) t->add("communication", sw.seconds());
  return slab;
}

MeshConverter::PendingScatter MeshConverter::start_scatter(const std::vector<double>& slab_phi,
                                                           TimingBreakdown* t) {
  Stopwatch sw;
  PendingScatter ps;
  ps.active = true;
  if (params_.method == MeshConversion::kDirect) {
    telemetry::Span span("pm/direct/backward_a2a");
    PhaseProbe probe(world_, "direct_backward_a2a");
    ps.a2a = world_.ialltoallv(backward_pack(world_, world_potential_regions_, slab_phi));
  } else {
    // Step 4 (paper): bcast the slab potential across groups...
    std::vector<double> buf = slab_phi;
    {
      telemetry::Span span("pm/relay/bcast");
      PhaseProbe probe(world_, "relay_bcast");
      if (comm_smalla2a_.rank() < params_.n_fft && comm_reduce_.size() > 1)
        comm_reduce_.bcast(buf, 0);
    }
    // ...step 5: alltoallv inside the group to each member's local mesh.
    telemetry::Span span("pm/relay/backward_a2a");
    PhaseProbe probe(world_, "relay_backward_a2a");
    ps.a2a = comm_smalla2a_.ialltoallv(
        backward_pack(comm_smalla2a_, conv_slice(world_potential_regions_), buf));
  }
  if (t) t->add("communication", sw.seconds());
  return ps;
}

LocalMesh MeshConverter::finish_scatter(PendingScatter& ps, TimingBreakdown* t) {
  Stopwatch sw;
  LocalMesh out;
  {
    telemetry::Span span(params_.method == MeshConversion::kDirect ? "pm/direct/backward_wait"
                                                                   : "pm/relay/backward_wait");
    auto recv = conv_comm().wait_alltoallv(ps.a2a);
    out = backward_unpack(conv_comm(), conv_slice(world_potential_regions_), recv);
  }
  ps.active = false;
  if (t) t->add("communication", sw.seconds());
  return out;
}

std::vector<double> MeshConverter::gather_density(const LocalMesh& local_density,
                                                  TimingBreakdown* t) {
  auto pg = start_gather(local_density, t);
  return finish_gather(pg, t);
}

LocalMesh MeshConverter::scatter_potential(const std::vector<double>& slab_phi,
                                           TimingBreakdown* t) {
  auto ps = start_scatter(slab_phi, t);
  return finish_scatter(ps, t);
}

}  // namespace greem::pm
