#include "pm/assign.hpp"

#include <cmath>
#include <numbers>

namespace greem::pm {

AxisStencil axis_stencil(Scheme s, double x, std::size_t n) {
  // u: position in cell-center coordinates (cell i is centered at u = i).
  const double u = x * static_cast<double>(n) - 0.5;
  AxisStencil st;
  switch (s) {
    case Scheme::kNGP: {
      st.base = static_cast<long>(std::floor(u + 0.5));
      st.w = {1.0, 0, 0};
      st.count = 1;
      break;
    }
    case Scheme::kCIC: {
      const long i = static_cast<long>(std::floor(u));
      const double f = u - static_cast<double>(i);
      st.base = i;
      st.w = {1.0 - f, f, 0};
      st.count = 2;
      break;
    }
    case Scheme::kTSC: {
      const long i = static_cast<long>(std::floor(u + 0.5));  // nearest cell
      const double d = u - static_cast<double>(i);            // |d| <= 0.5
      st.base = i - 1;
      st.w = {0.5 * (0.5 - d) * (0.5 - d), 0.75 - d * d, 0.5 * (0.5 + d) * (0.5 + d)};
      st.count = 3;
      break;
    }
  }
  return st;
}

void assign_density(LocalMesh& mesh, std::size_t n_mesh, Scheme s,
                    std::span<const Vec3> pos, std::span<const double> mass) {
  const double inv_h3 = static_cast<double>(n_mesh) * static_cast<double>(n_mesh) *
                        static_cast<double>(n_mesh);
  for (std::size_t p = 0; p < pos.size(); ++p) {
    const AxisStencil sx = axis_stencil(s, pos[p].x, n_mesh);
    const AxisStencil sy = axis_stencil(s, pos[p].y, n_mesh);
    const AxisStencil sz = axis_stencil(s, pos[p].z, n_mesh);
    const double m = mass[p] * inv_h3;
    for (int kz = 0; kz < sz.count; ++kz)
      for (int ky = 0; ky < sy.count; ++ky)
        for (int kx = 0; kx < sx.count; ++kx)
          mesh.at(sx.base + kx, sy.base + ky, sz.base + kz) +=
              m * sx.w[static_cast<std::size_t>(kx)] * sy.w[static_cast<std::size_t>(ky)] *
              sz.w[static_cast<std::size_t>(kz)];
  }
}

void assign_density_periodic(std::vector<double>& rho, std::size_t n_mesh, Scheme s,
                             std::span<const Vec3> pos, std::span<const double> mass) {
  const std::size_t n = n_mesh;
  const double inv_h3 = static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n);
  for (std::size_t p = 0; p < pos.size(); ++p) {
    const AxisStencil sx = axis_stencil(s, pos[p].x, n);
    const AxisStencil sy = axis_stencil(s, pos[p].y, n);
    const AxisStencil sz = axis_stencil(s, pos[p].z, n);
    const double m = mass[p] * inv_h3;
    for (int kz = 0; kz < sz.count; ++kz) {
      const std::size_t gz = wrap_cell(sz.base + kz, n);
      for (int ky = 0; ky < sy.count; ++ky) {
        const std::size_t gy = wrap_cell(sy.base + ky, n);
        const double wyz = sy.w[static_cast<std::size_t>(ky)] * sz.w[static_cast<std::size_t>(kz)] * m;
        for (int kx = 0; kx < sx.count; ++kx) {
          const std::size_t gx = wrap_cell(sx.base + kx, n);
          rho[(gz * n + gy) * n + gx] += wyz * sx.w[static_cast<std::size_t>(kx)];
        }
      }
    }
  }
}

Vec3 interpolate(const LocalMesh& fx, const LocalMesh& fy, const LocalMesh& fz,
                 std::size_t n_mesh, Scheme s, const Vec3& pos) {
  const AxisStencil sx = axis_stencil(s, pos.x, n_mesh);
  const AxisStencil sy = axis_stencil(s, pos.y, n_mesh);
  const AxisStencil sz = axis_stencil(s, pos.z, n_mesh);
  Vec3 out{};
  for (int kz = 0; kz < sz.count; ++kz)
    for (int ky = 0; ky < sy.count; ++ky)
      for (int kx = 0; kx < sx.count; ++kx) {
        const double w = sx.w[static_cast<std::size_t>(kx)] * sy.w[static_cast<std::size_t>(ky)] *
                         sz.w[static_cast<std::size_t>(kz)];
        const long gx = sx.base + kx, gy = sy.base + ky, gz = sz.base + kz;
        out.x += w * fx.at(gx, gy, gz);
        out.y += w * fy.at(gx, gy, gz);
        out.z += w * fz.at(gx, gy, gz);
      }
  return out;
}

double interpolate_periodic(const std::vector<double>& field, std::size_t n_mesh, Scheme s,
                            const Vec3& pos) {
  const std::size_t n = n_mesh;
  const AxisStencil sx = axis_stencil(s, pos.x, n);
  const AxisStencil sy = axis_stencil(s, pos.y, n);
  const AxisStencil sz = axis_stencil(s, pos.z, n);
  double out = 0;
  for (int kz = 0; kz < sz.count; ++kz) {
    const std::size_t gz = wrap_cell(sz.base + kz, n);
    for (int ky = 0; ky < sy.count; ++ky) {
      const std::size_t gy = wrap_cell(sy.base + ky, n);
      for (int kx = 0; kx < sx.count; ++kx) {
        const std::size_t gx = wrap_cell(sx.base + kx, n);
        out += sx.w[static_cast<std::size_t>(kx)] * sy.w[static_cast<std::size_t>(ky)] *
               sz.w[static_cast<std::size_t>(kz)] * field[(gz * n + gy) * n + gx];
      }
    }
  }
  return out;
}

double window(Scheme s, long k, std::size_t n) {
  if (k == 0) return 1.0;
  const double x = std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
  const double sinc = std::sin(x) / x;
  double w = sinc;
  for (int i = 1; i < support(s); ++i) w *= sinc;
  return w;
}

}  // namespace greem::pm
