#include "pm/assign.hpp"

#include <cmath>
#include <cstdint>
#include <numbers>

#include "util/parallel_for.hpp"

namespace greem::pm {

AxisStencil axis_stencil(Scheme s, double x, std::size_t n) {
  // u: position in cell-center coordinates (cell i is centered at u = i).
  const double u = x * static_cast<double>(n) - 0.5;
  AxisStencil st;
  switch (s) {
    case Scheme::kNGP: {
      st.base = static_cast<long>(std::floor(u + 0.5));
      st.w = {1.0, 0, 0};
      st.count = 1;
      break;
    }
    case Scheme::kCIC: {
      const long i = static_cast<long>(std::floor(u));
      const double f = u - static_cast<double>(i);
      st.base = i;
      st.w = {1.0 - f, f, 0};
      st.count = 2;
      break;
    }
    case Scheme::kTSC: {
      const long i = static_cast<long>(std::floor(u + 0.5));  // nearest cell
      const double d = u - static_cast<double>(i);            // |d| <= 0.5
      st.base = i - 1;
      st.w = {0.5 * (0.5 - d) * (0.5 - d), 0.75 - d * d, 0.5 * (0.5 + d) * (0.5 + d)};
      st.count = 3;
      break;
    }
  }
  return st;
}

namespace {

// Slab-parallel mass assignment.  Particles are counting-sorted (stably)
// into width-2 z-slab buckets of their stencil *base* cell: a particle in
// bucket b deposits only into z cells [2b, 2b+4), so two buckets of the
// same parity never touch the same cell.  Depositing all even buckets in
// parallel, then all odd buckets, is therefore race-free without atomics
// or per-thread mesh copies, and the fixed phase -> bucket -> particle
// order makes the per-cell sums bitwise identical for every pool size.
// (The periodic variant keeps the trailing bucket(s), whose windows wrap
// across z = 0, out of the parity phases; see assign_density_periodic.)

constexpr std::size_t kParallelAssignMinParticles = 4096;
constexpr std::size_t kParallelAssignMinBuckets = 4;

struct SlabBuckets {
  std::vector<std::uint32_t> order;  ///< particle indices, bucket-major, stable
  std::vector<std::size_t> offset;   ///< bucket b spans order[offset[b], offset[b+1])
};

SlabBuckets bucket_by_slab(std::span<const Vec3> pos, Scheme s, std::size_t n_mesh,
                           long z_lo, std::size_t nb, bool periodic) {
  const std::size_t np = pos.size();
  std::vector<std::uint32_t> bucket_of(np);
  parallel_for_chunks(0, np, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t p = lo; p < hi; ++p) {
      const AxisStencil sz = axis_stencil(s, pos[p].z, n_mesh);
      const std::size_t zb = periodic ? wrap_cell(sz.base, n_mesh)
                                      : static_cast<std::size_t>(sz.base - z_lo);
      bucket_of[p] = static_cast<std::uint32_t>(zb / 2);
    }
  });
  SlabBuckets bk;
  bk.offset.assign(nb + 1, 0);
  for (std::size_t p = 0; p < np; ++p) ++bk.offset[bucket_of[p] + 1];
  for (std::size_t b = 0; b < nb; ++b) bk.offset[b + 1] += bk.offset[b];
  bk.order.resize(np);
  std::vector<std::size_t> cursor(bk.offset.begin(), bk.offset.end() - 1);
  for (std::size_t p = 0; p < np; ++p)
    bk.order[cursor[bucket_of[p]]++] = static_cast<std::uint32_t>(p);
  return bk;
}

/// Run buckets [0, nb_phased) of one parity in parallel (`run` must only
/// write that bucket's [2b, 2b+4) z window).
void run_parity_phases(std::size_t nb_phased, const std::function<void(std::size_t)>& run) {
  for (std::size_t parity = 0; parity < 2; ++parity) {
    const std::size_t count = (nb_phased + 1 - parity) / 2;
    parallel_for_dynamic(0, count, 1, [&](std::size_t lo, std::size_t hi, unsigned) {
      for (std::size_t i = lo; i < hi; ++i) run(2 * i + parity);
    });
  }
}

}  // namespace

void assign_density(LocalMesh& mesh, std::size_t n_mesh, Scheme s,
                    std::span<const Vec3> pos, std::span<const double> mass) {
  const double inv_h3 = static_cast<double>(n_mesh) * static_cast<double>(n_mesh) *
                        static_cast<double>(n_mesh);
  auto deposit = [&](std::size_t p) {
    const AxisStencil sx = axis_stencil(s, pos[p].x, n_mesh);
    const AxisStencil sy = axis_stencil(s, pos[p].y, n_mesh);
    const AxisStencil sz = axis_stencil(s, pos[p].z, n_mesh);
    const double m = mass[p] * inv_h3;
    for (int kz = 0; kz < sz.count; ++kz)
      for (int ky = 0; ky < sy.count; ++ky)
        for (int kx = 0; kx < sx.count; ++kx)
          mesh.at(sx.base + kx, sy.base + ky, sz.base + kz) +=
              m * sx.w[static_cast<std::size_t>(kx)] * sy.w[static_cast<std::size_t>(ky)] *
              sz.w[static_cast<std::size_t>(kz)];
  };

  // Path choice depends only on the data, never on the pool size, so the
  // deposit order (hence rounding) is reproducible across thread counts.
  const std::size_t nb = (mesh.region().n[2] + 1) / 2;
  if (pos.size() < kParallelAssignMinParticles || nb < kParallelAssignMinBuckets) {
    for (std::size_t p = 0; p < pos.size(); ++p) deposit(p);
    return;
  }
  // The local region is unwrapped (ghost layers absorb the stencil), so
  // every bucket window is conflict-free within its parity phase.
  const SlabBuckets bk =
      bucket_by_slab(pos, s, n_mesh, mesh.region().lo[2], nb, /*periodic=*/false);
  run_parity_phases(nb, [&](std::size_t b) {
    for (std::size_t k = bk.offset[b]; k < bk.offset[b + 1]; ++k) deposit(bk.order[k]);
  });
}

void assign_density_periodic(std::vector<double>& rho, std::size_t n_mesh, Scheme s,
                             std::span<const Vec3> pos, std::span<const double> mass) {
  const std::size_t n = n_mesh;
  const double inv_h3 = static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n);
  auto deposit = [&](std::size_t p) {
    const AxisStencil sx = axis_stencil(s, pos[p].x, n);
    const AxisStencil sy = axis_stencil(s, pos[p].y, n);
    const AxisStencil sz = axis_stencil(s, pos[p].z, n);
    const double m = mass[p] * inv_h3;
    for (int kz = 0; kz < sz.count; ++kz) {
      const std::size_t gz = wrap_cell(sz.base + kz, n);
      for (int ky = 0; ky < sy.count; ++ky) {
        const std::size_t gy = wrap_cell(sy.base + ky, n);
        const double wyz = sy.w[static_cast<std::size_t>(ky)] * sz.w[static_cast<std::size_t>(kz)] * m;
        for (int kx = 0; kx < sx.count; ++kx) {
          const std::size_t gx = wrap_cell(sx.base + kx, n);
          rho[(gz * n + gy) * n + gx] += wyz * sx.w[static_cast<std::size_t>(kx)];
        }
      }
    }
  };

  const std::size_t nb = (n + 1) / 2;
  if (pos.size() < kParallelAssignMinParticles || nb < kParallelAssignMinBuckets) {
    for (std::size_t p = 0; p < pos.size(); ++p) deposit(p);
    return;
  }
  const SlabBuckets bk = bucket_by_slab(pos, s, n, 0, nb, /*periodic=*/true);
  auto run_bucket = [&](std::size_t b) {
    for (std::size_t k = bk.offset[b]; k < bk.offset[b + 1]; ++k) deposit(bk.order[k]);
  };
  // Trailing buckets whose windows wrap across z = 0 would collide with
  // bucket 0's parity phase: one bucket wraps when n is even, the last two
  // can when n is odd.  Run them serially after the phases.
  const std::size_t tail = (n % 2 == 0) ? 1 : 2;
  run_parity_phases(nb - tail, run_bucket);
  for (std::size_t b = nb - tail; b < nb; ++b) run_bucket(b);
}

Vec3 interpolate(const LocalMesh& fx, const LocalMesh& fy, const LocalMesh& fz,
                 std::size_t n_mesh, Scheme s, const Vec3& pos) {
  const AxisStencil sx = axis_stencil(s, pos.x, n_mesh);
  const AxisStencil sy = axis_stencil(s, pos.y, n_mesh);
  const AxisStencil sz = axis_stencil(s, pos.z, n_mesh);
  Vec3 out{};
  for (int kz = 0; kz < sz.count; ++kz)
    for (int ky = 0; ky < sy.count; ++ky)
      for (int kx = 0; kx < sx.count; ++kx) {
        const double w = sx.w[static_cast<std::size_t>(kx)] * sy.w[static_cast<std::size_t>(ky)] *
                         sz.w[static_cast<std::size_t>(kz)];
        const long gx = sx.base + kx, gy = sy.base + ky, gz = sz.base + kz;
        out.x += w * fx.at(gx, gy, gz);
        out.y += w * fy.at(gx, gy, gz);
        out.z += w * fz.at(gx, gy, gz);
      }
  return out;
}

double interpolate_periodic(const std::vector<double>& field, std::size_t n_mesh, Scheme s,
                            const Vec3& pos) {
  const std::size_t n = n_mesh;
  const AxisStencil sx = axis_stencil(s, pos.x, n);
  const AxisStencil sy = axis_stencil(s, pos.y, n);
  const AxisStencil sz = axis_stencil(s, pos.z, n);
  double out = 0;
  for (int kz = 0; kz < sz.count; ++kz) {
    const std::size_t gz = wrap_cell(sz.base + kz, n);
    for (int ky = 0; ky < sy.count; ++ky) {
      const std::size_t gy = wrap_cell(sy.base + ky, n);
      for (int kx = 0; kx < sx.count; ++kx) {
        const std::size_t gx = wrap_cell(sx.base + kx, n);
        out += sx.w[static_cast<std::size_t>(kx)] * sy.w[static_cast<std::size_t>(ky)] *
               sz.w[static_cast<std::size_t>(kz)] * field[(gz * n + gy) * n + gx];
      }
    }
  }
  return out;
}

double window(Scheme s, long k, std::size_t n) {
  if (k == 0) return 1.0;
  const double x = std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
  const double sinc = std::sin(x) / x;
  double w = sinc;
  for (int i = 1; i < support(s); ++i) w *= sinc;
  return w;
}

}  // namespace greem::pm
