#pragma once
// Parallel PM long-range solver: the five-step cycle of paper §II-B
// (density assignment -> layout conversion -> slab FFT + Green -> backward
// conversion -> mesh differentiation + interpolation), running over parx
// with either the direct or the relay mesh conversion.

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fft/slab_fft.hpp"
#include "pm/assign.hpp"
#include "pm/green.hpp"
#include "pm/relay_mesh.hpp"
#include "util/box.hpp"
#include "util/timer.hpp"
#include "util/vec3.hpp"

namespace greem::pm {

struct ParallelPmParams {
  std::size_t n_mesh = 64;
  double rcut = 0;  ///< 0 => 3 / n_mesh
  Scheme scheme = Scheme::kTSC;
  int deconv_power = 2;  ///< kSimple Green only
  double G = 1.0;
  GreenKind green = GreenKind::kOptimal;
  ConverterParams conversion;  ///< n_mesh/n_fft filled from this struct

  double effective_rcut() const { return rcut > 0 ? rcut : 3.0 / static_cast<double>(n_mesh); }

  GreenParams green_params() const {
    return {n_mesh, effective_rcut(), scheme, deconv_power, G, green, 2};
  }
};

class ParallelPm {
 public:
  /// Collective over `world` (comm splits happen here).
  ParallelPm(parx::Comm& world, ParallelPmParams params);

  const ParallelPmParams& params() const { return params_; }

  /// Collective: install this rank's domain for the current step; local
  /// mesh regions are derived from it and allgathered.
  void update_domain(const Box& domain);

  /// Collective: add the long-range accelerations of this rank's particles
  /// (all inside the current domain) into `acc`.  Phase timings accumulate
  /// into `t` under the paper's Table I row names.  Exactly start_cycle +
  /// advance_fft + finish_cycle.
  void accelerations(std::span<const Vec3> pos, std::span<const double> mass,
                     std::span<Vec3> acc, TimingBreakdown* t = nullptr);

  // ---- staged cycle (PM/PP overlap) -----------------------------------
  // The five-step cycle split at its two communication boundaries, so the
  // driver can interleave short-range work with the conversions' flight
  // time (paper §II-B: "the PM part ... is executed concurrently with the
  // PP part").  Every stage is collective and must be called in order on
  // every rank; work between the stages is the caller's to overlap.

  /// One in-flight PM cycle.
  struct Cycle {
    MeshConverter::PendingGather gather;
    MeshConverter::PendingScatter scatter;
    std::vector<double> slab;
    bool active = false;
  };

  /// Steps 1-2a: density assignment and posting of the forward conversion.
  Cycle start_cycle(std::span<const Vec3> pos, std::span<const double> mass,
                    TimingBreakdown* t = nullptr);
  /// Steps 2b-4a: drain the forward conversion, slab FFT + Green
  /// convolution (FFT ranks), post the backward conversion.
  void advance_fft(Cycle& c, TimingBreakdown* t = nullptr);
  /// Steps 4b-5: drain the backward conversion, mesh differentiation,
  /// force interpolation into `acc`.
  void finish_cycle(Cycle& c, std::span<const Vec3> pos, std::span<Vec3> acc,
                    TimingBreakdown* t = nullptr);

  MeshConverter& converter() { return *converter_; }

 private:
  ParallelPmParams params_;
  std::unique_ptr<MeshConverter> converter_;
  std::optional<fft::SlabFft> slab_fft_;  // FFT ranks only
  std::vector<double> green_slab_;        // FFT ranks only
  CellRegion force_region_, density_region_, potential_region_;
};

}  // namespace greem::pm
