#pragma once
// Serial PM (particle-mesh) long-range force solver over the full periodic
// mesh: assignment -> FFT -> Green multiply -> inverse FFT -> 4-point
// finite difference -> interpolation.  This is the single-process baseline
// against which the parallel PM (with the relay mesh method) is verified.

#include <span>
#include <vector>

#include "fft/fft3d.hpp"
#include "pm/assign.hpp"
#include "pm/green.hpp"
#include "util/timer.hpp"
#include "util/vec3.hpp"

namespace greem::pm {

struct PmParams {
  std::size_t n_mesh = 64;
  double rcut = 0;  ///< 0 => default 3 / n_mesh (the paper's choice)
  Scheme scheme = Scheme::kTSC;
  int deconv_power = 2;            ///< kSimple Green only
  double G = 1.0;
  GreenKind green = GreenKind::kOptimal;

  double effective_rcut() const { return rcut > 0 ? rcut : 3.0 / static_cast<double>(n_mesh); }

  GreenParams green_params() const {
    return {n_mesh, effective_rcut(), scheme, deconv_power, G, green, 2};
  }
};

class PmSolver {
 public:
  explicit PmSolver(PmParams params);

  const PmParams& params() const { return params_; }

  /// Long-range accelerations added into `acc` (same length as pos).
  /// Phase timings (Table I rows) accumulate into `t` if given.
  void accelerations(std::span<const Vec3> pos, std::span<const double> mass,
                     std::span<Vec3> acc, TimingBreakdown* t = nullptr);

  /// Long-range potential energy per particle (TSC-interpolated mesh
  /// potential), for energy diagnostics.  Always solved with the physical
  /// (kSimple) Green's function: the optimal influence function is tuned
  /// for the finite-difference force pipeline and is not a potential.
  std::vector<double> potentials(std::span<const Vec3> pos, std::span<const double> mass);

  /// Mesh potential of the last accelerations() call (diagnostics/tests).
  const std::vector<double>& last_potential() const { return phi_; }

 private:
  std::vector<double> solve_potential(std::span<const Vec3> pos, std::span<const double> mass,
                                      TimingBreakdown* t, const std::vector<double>& green);

  PmParams params_;
  fft::Fft3dR2C fft_;                    ///< real-input transform (half flops)
  std::vector<double> green_;            ///< force-path multiplier table
  std::vector<double> green_physical_;   ///< potential-path table (kSimple), lazy
  std::vector<double> phi_;
};

}  // namespace greem::pm
