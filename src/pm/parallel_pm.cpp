#include "pm/parallel_pm.hpp"

#include "fft/fft3d.hpp"
#include "pm/gradient.hpp"
#include "telemetry/trace.hpp"
#include "util/parallel_for.hpp"

namespace greem::pm {

ParallelPm::ParallelPm(parx::Comm& world, ParallelPmParams params) : params_(params) {
  params_.conversion.n_mesh = params_.n_mesh;
  converter_ = std::make_unique<MeshConverter>(world, params_.conversion);
  if (converter_->is_fft_rank()) {
    slab_fft_.emplace(converter_->fft_comm(), params_.n_mesh);
    const fft::Range zr = converter_->my_slab();
    green_slab_ = build_green_table(params_.green_params(), zr.begin, zr.end());
  }
}

void ParallelPm::update_domain(const Box& domain) {
  // TSC touches the nearest cell +/- 1; with arbitrary (non-cell-aligned)
  // domain boundaries a 2-cell pad is always sufficient.  The 4-point
  // finite difference needs the potential 2 cells beyond the force region.
  density_region_ = region_for_domain(domain, params_.n_mesh, 2);
  force_region_ = density_region_;
  potential_region_ = expand(force_region_, 2);
  converter_->set_regions(density_region_, potential_region_);
}

ParallelPm::Cycle ParallelPm::start_cycle(std::span<const Vec3> pos,
                                          std::span<const double> mass, TimingBreakdown* t) {
  const std::size_t n = params_.n_mesh;
  Stopwatch sw;

  // (1) density assignment onto the local mesh
  LocalMesh rho(density_region_);
  {
    telemetry::Span span("pm/density_assignment");
    assign_density(rho, n, params_.scheme, pos, mass);
  }
  if (t) t->add("density assignment", sw.seconds());

  // (2a) post the forward conversion (direct alltoallv or relay mesh)
  Cycle c;
  c.active = true;
  c.gather = converter_->start_gather(rho, t);
  return c;
}

void ParallelPm::advance_fft(Cycle& c, TimingBreakdown* t) {
  // (2b) drain the forward conversion into density slabs
  c.slab = converter_->finish_gather(c.gather, t);

  // (3) slab FFT, Green's function convolution, inverse FFT
  Stopwatch sw;
  if (converter_->is_fft_rank()) {
    telemetry::Span span("pm/fft");
    std::vector<fft::Complex> cslab(c.slab.size());
    for (std::size_t i = 0; i < c.slab.size(); ++i) cslab[i] = {c.slab[i], 0.0};
    slab_fft_->forward(cslab);
    for (std::size_t i = 0; i < cslab.size(); ++i) cslab[i] *= green_slab_[i];
    slab_fft_->inverse(cslab);
    for (std::size_t i = 0; i < c.slab.size(); ++i) c.slab[i] = cslab[i].real();
  }
  if (t) t->add("FFT", sw.seconds());

  // (4a) post the backward conversion
  c.scatter = converter_->start_scatter(c.slab, t);
}

void ParallelPm::finish_cycle(Cycle& c, std::span<const Vec3> pos, std::span<Vec3> acc,
                              TimingBreakdown* t) {
  const std::size_t n = params_.n_mesh;

  // (4b) drain the backward conversion into the local potential mesh
  LocalMesh phi = converter_->finish_scatter(c.scatter, t);

  // (5a) acceleration on the mesh (4-point finite difference)
  Stopwatch sw;
  LocalMesh fx, fy, fz;
  {
    telemetry::Span span("pm/gradient");
    fd_gradient(phi, force_region_, n, fx, fy, fz);
  }
  if (t) t->add("acceleration on mesh", sw.seconds());

  // (5b) force interpolation to the particle positions (per-particle
  // independent reads; disjoint writes, so chunking cannot change results)
  sw.restart();
  {
    telemetry::Span span("pm/interpolate");
    parallel_for_chunks(0, pos.size(), [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        acc[i] += interpolate(fx, fy, fz, n, params_.scheme, pos[i]);
    });
  }
  if (t) t->add("force interpolation", sw.seconds());
  c.active = false;
}

void ParallelPm::accelerations(std::span<const Vec3> pos, std::span<const double> mass,
                               std::span<Vec3> acc, TimingBreakdown* t) {
  Cycle c = start_cycle(pos, mass, t);
  advance_fft(c, t);
  finish_cycle(c, pos, acc, t);
}

}  // namespace greem::pm
