#pragma once
// Mesh containers for the PM part.
//
// The global PM mesh has N_PM^3 cells over the unit box; cell (i,j,k) is
// centered at ((i+0.5)/N, ...).  A rank's *local mesh* covers only the
// cells its domain touches plus ghost layers (paper Fig. 4, upper panel),
// addressed by unwrapped global cell coordinates that may extend past
// [0, N) across the periodic boundary.

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/box.hpp"

namespace greem::pm {

/// Rectangular range of global cells, unwrapped (lo may be negative,
/// lo + n may exceed the global mesh size).
struct CellRegion {
  std::array<long, 3> lo{0, 0, 0};
  std::array<std::size_t, 3> n{0, 0, 0};

  std::size_t cells() const { return n[0] * n[1] * n[2]; }
  long hi(int axis) const { return lo[static_cast<std::size_t>(axis)] + static_cast<long>(n[static_cast<std::size_t>(axis)]); }

  bool contains(long x, long y, long z) const {
    return x >= lo[0] && x < hi(0) && y >= lo[1] && y < hi(1) && z >= lo[2] && z < hi(2);
  }
};

/// The cells a domain's particles touch under a +/- `pad` cell stencil.
CellRegion region_for_domain(const Box& domain, std::size_t n_mesh, long pad);

/// Grow a region by `pad` cells on every side.
CellRegion expand(const CellRegion& r, long pad);

/// Owning mesh over a region, row-major with x fastest.
class LocalMesh {
 public:
  LocalMesh() = default;
  explicit LocalMesh(const CellRegion& region)
      : region_(region), v_(region.cells(), 0.0) {}

  const CellRegion& region() const { return region_; }
  std::vector<double>& data() { return v_; }
  const std::vector<double>& data() const { return v_; }

  std::size_t index(long gx, long gy, long gz) const {
    assert(region_.contains(gx, gy, gz));
    const auto ix = static_cast<std::size_t>(gx - region_.lo[0]);
    const auto iy = static_cast<std::size_t>(gy - region_.lo[1]);
    const auto iz = static_cast<std::size_t>(gz - region_.lo[2]);
    return (iz * region_.n[1] + iy) * region_.n[0] + ix;
  }

  double& at(long gx, long gy, long gz) { return v_[index(gx, gy, gz)]; }
  double at(long gx, long gy, long gz) const { return v_[index(gx, gy, gz)]; }

  void fill(double value) { v_.assign(v_.size(), value); }

 private:
  CellRegion region_;
  std::vector<double> v_;
};

/// Wrap an unwrapped global cell coordinate into [0, n).
inline std::size_t wrap_cell(long c, std::size_t n) {
  const long nn = static_cast<long>(n);
  long w = c % nn;
  if (w < 0) w += nn;
  return static_cast<std::size_t>(w);
}

}  // namespace greem::pm
