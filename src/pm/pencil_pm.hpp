#pragma once
// Parallel PM long-range solver on the 2-D (pencil) FFT decomposition --
// the realization of the paper's stated future work ("the combination of
// our novel relay mesh method and a 3-D parallel FFT library"): the FFT
// parallelism ceiling rises from N_PM ranks (slabs) to N_PM^2, so the FFT
// processes are no longer a tiny fraction of the job.
//
// The mesh conversion generalizes the slab case: input cell (x, y, z)
// belongs to the pencil rank at grid position (row_of(y), col_of(z)), and
// payloads travel in a canonical order both sides derive from allgathered
// region geometry, exactly as in the relay/direct converter.  The
// conversions ride on the request-based alltoallv, so they drain in
// arrival order (no head-of-line blocking on one slow peer) while
// unpacking in canonical sender order keeps the mesh bitwise independent
// of arrival timing -- see docs/overlap.md.

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fft/pencil_fft.hpp"
#include "pm/parallel_pm.hpp"

namespace greem::pm {

struct PencilPmParams {
  std::size_t n_mesh = 64;
  double rcut = 0;  ///< 0 => 3 / n_mesh
  Scheme scheme = Scheme::kTSC;
  double G = 1.0;
  GreenKind green = GreenKind::kOptimal;
  int pr = 0, pc = 0;  ///< pencil grid; 0 => near-square grid over all ranks

  double effective_rcut() const { return rcut > 0 ? rcut : 3.0 / static_cast<double>(n_mesh); }
};

class PencilPm {
 public:
  /// Collective over `world`; the first pr*pc ranks hold pencils.
  PencilPm(parx::Comm& world, PencilPmParams params);

  const PencilPmParams& params() const { return params_; }
  int pr() const { return pr_; }
  int pc() const { return pc_; }
  bool is_fft_rank() const { return world_.rank() < pr_ * pc_; }

  /// Collective: install this rank's domain for the current step.
  void update_domain(const Box& domain);

  /// Collective: add long-range accelerations of this rank's particles.
  void accelerations(std::span<const Vec3> pos, std::span<const double> mass,
                     std::span<Vec3> acc, TimingBreakdown* t = nullptr);

 private:
  int owner_of(std::size_t y, std::size_t z) const;

  std::vector<double> gather_density(const LocalMesh& rho);
  LocalMesh scatter_potential(const std::vector<double>& pot);

  parx::Comm world_;
  parx::Comm fft_comm_;
  PencilPmParams params_;
  int pr_ = 1, pc_ = 1;
  std::optional<fft::PencilFft> fft_;  // pencil ranks only
  std::vector<double> green_;         // z-pencil layout, pencil ranks only
  CellRegion density_region_, potential_region_, force_region_;
  std::vector<CellRegion> world_density_regions_, world_potential_regions_;
};

}  // namespace greem::pm
