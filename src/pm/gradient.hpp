#pragma once
// Acceleration on the mesh: 4-point finite difference of the potential
// (the paper's "acceleration on mesh" phase),
//   f_x(i) = -[ 8(phi(i+1) - phi(i-1)) - (phi(i+2) - phi(i-2)) ] / (12 h).

#include <cstddef>
#include <vector>

#include "pm/mesh.hpp"

namespace greem::pm {

/// Local-region variant: fx/fy/fz are allocated over `force_region`, and
/// `phi` must cover force_region expanded by 2 cells on every side.
void fd_gradient(const LocalMesh& phi, const CellRegion& force_region, std::size_t n_mesh,
                 LocalMesh& fx, LocalMesh& fy, LocalMesh& fz);

/// Full periodic-mesh variant (serial PM path).
void fd_gradient_periodic(const std::vector<double>& phi, std::size_t n,
                          std::vector<double>& fx, std::vector<double>& fy,
                          std::vector<double>& fz);

}  // namespace greem::pm
