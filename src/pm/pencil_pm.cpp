#include "pm/pencil_pm.hpp"

#include <cassert>
#include <cmath>

#include "fft/fft3d.hpp"
#include "pm/gradient.hpp"
#include "util/parallel_for.hpp"

namespace greem::pm {
namespace {

/// Rank owning index v under split_range(n, p, .): inverse of the block
/// decomposition.
int block_owner(std::size_t v, std::size_t n, int p) {
  const auto pp = static_cast<std::size_t>(p);
  const std::size_t base = n / pp;
  const std::size_t rem = n % pp;
  const std::size_t boundary = rem * (base + 1);
  if (v < boundary) return static_cast<int>(v / (base + 1));
  return static_cast<int>(rem + (v - boundary) / base);
}

}  // namespace

PencilPm::PencilPm(parx::Comm& world, PencilPmParams params)
    : world_(world), params_(params) {
  const std::size_t n = params_.n_mesh;
  if (params_.pr > 0 && params_.pc > 0) {
    pr_ = params_.pr;
    pc_ = params_.pc;
  } else {
    // Near-square grid over as many ranks as the mesh supports.
    const auto target = std::min<std::size_t>(static_cast<std::size_t>(world.size()), n * n);
    pr_ = static_cast<int>(std::min<std::size_t>(
        n, static_cast<std::size_t>(std::sqrt(static_cast<double>(target)))));
    pr_ = std::max(pr_, 1);
    pc_ = static_cast<int>(std::min<std::size_t>(n, target / static_cast<std::size_t>(pr_)));
    pc_ = std::max(pc_, 1);
  }
  const int npencil = pr_ * pc_;
  if (npencil > world.size() || static_cast<std::size_t>(pr_) > n ||
      static_cast<std::size_t>(pc_) > n)
    throw std::invalid_argument("PencilPm: grid does not fit ranks/mesh");

  fft_comm_ = world.split(world.rank() < npencil ? 0 : 1, world.rank());
  if (is_fft_rank()) {
    fft_.emplace(fft_comm_, n, pr_, pc_);
    // Green table in the z-pencil (transposed output) layout.
    const fft::Range xr = fft_->out_x();
    const fft::Range yr = fft_->out_y();
    green_.resize(fft_->out_cells());
    const GreenParams gp{n, params_.effective_rcut(), params_.scheme, 2, params_.G,
                         params_.green, 2};
    for (std::size_t y = yr.begin; y < yr.end(); ++y) {
      const long ky = fft::wavenumber(y, n);
      for (std::size_t x = xr.begin; x < xr.end(); ++x) {
        const long kx = fft::wavenumber(x, n);
        for (std::size_t z = 0; z < n; ++z)
          green_[fft_->out_index(x, y, z)] =
              green_value(gp, kx, ky, fft::wavenumber(z, n));
      }
    }
  }
}

int PencilPm::owner_of(std::size_t y, std::size_t z) const {
  return block_owner(y, params_.n_mesh, pr_) * pc_ + block_owner(z, params_.n_mesh, pc_);
}

void PencilPm::update_domain(const Box& domain) {
  density_region_ = region_for_domain(domain, params_.n_mesh, 2);
  force_region_ = density_region_;
  potential_region_ = expand(force_region_, 2);
  world_density_regions_ =
      world_.allgatherv(std::span<const CellRegion>(&density_region_, 1));
  world_potential_regions_ =
      world_.allgatherv(std::span<const CellRegion>(&potential_region_, 1));
}

std::vector<double> PencilPm::gather_density(const LocalMesh& rho) {
  const std::size_t n = params_.n_mesh;
  const auto p = static_cast<std::size_t>(world_.size());

  // Pack: canonical (z, y, x) order over my region, routed by the pencil
  // owner of the wrapped (y, z).
  std::vector<std::vector<double>> send(p);
  const CellRegion& mine = density_region_;
  for (long z = mine.lo[2]; z < mine.hi(2); ++z) {
    const std::size_t gz = wrap_cell(z, n);
    for (long y = mine.lo[1]; y < mine.hi(1); ++y) {
      const auto dest = static_cast<std::size_t>(owner_of(wrap_cell(y, n), gz));
      auto& buf = send[dest];
      for (long x = mine.lo[0]; x < mine.hi(0); ++x) buf.push_back(rho.at(x, y, z));
    }
  }
  auto recv = world_.alltoallv(std::move(send));

  if (!is_fft_rank()) return {};
  std::vector<double> pencil(fft_->in_cells(), 0.0);
  for (std::size_t s = 0; s < p; ++s) {
    const auto& buf = recv[s];
    if (buf.empty()) continue;
    const CellRegion& r = world_density_regions_[s];
    std::size_t i = 0;
    for (long z = r.lo[2]; z < r.hi(2); ++z) {
      const std::size_t gz = wrap_cell(z, n);
      for (long y = r.lo[1]; y < r.hi(1); ++y) {
        const std::size_t gy = wrap_cell(y, n);
        if (owner_of(gy, gz) != world_.rank()) continue;
        for (long x = r.lo[0]; x < r.hi(0); ++x)
          pencil[fft_->in_index(wrap_cell(x, n), gy, gz)] += buf[i++];
      }
    }
    assert(i == buf.size());
  }
  return pencil;
}

LocalMesh PencilPm::scatter_potential(const std::vector<double>& pot) {
  const std::size_t n = params_.n_mesh;
  const auto p = static_cast<std::size_t>(world_.size());

  std::vector<std::vector<double>> send(p);
  if (is_fft_rank()) {
    for (std::size_t d = 0; d < p; ++d) {
      const CellRegion& r = world_potential_regions_[d];
      auto& buf = send[d];
      for (long z = r.lo[2]; z < r.hi(2); ++z) {
        const std::size_t gz = wrap_cell(z, n);
        for (long y = r.lo[1]; y < r.hi(1); ++y) {
          const std::size_t gy = wrap_cell(y, n);
          if (owner_of(gy, gz) != world_.rank()) continue;
          for (long x = r.lo[0]; x < r.hi(0); ++x)
            buf.push_back(pot[fft_->in_index(wrap_cell(x, n), gy, gz)]);
        }
      }
    }
  }
  auto recv = world_.alltoallv(std::move(send));

  const CellRegion& mine = potential_region_;
  LocalMesh out(mine);
  std::vector<std::size_t> cursor(p, 0);
  for (long z = mine.lo[2]; z < mine.hi(2); ++z) {
    const std::size_t gz = wrap_cell(z, n);
    for (long y = mine.lo[1]; y < mine.hi(1); ++y) {
      const auto src = static_cast<std::size_t>(owner_of(wrap_cell(y, n), gz));
      std::size_t& i = cursor[src];
      for (long x = mine.lo[0]; x < mine.hi(0); ++x) out.at(x, y, z) = recv[src][i++];
    }
  }
  return out;
}

void PencilPm::accelerations(std::span<const Vec3> pos, std::span<const double> mass,
                             std::span<Vec3> acc, TimingBreakdown* t) {
  const std::size_t n = params_.n_mesh;
  Stopwatch sw;

  LocalMesh rho(density_region_);
  assign_density(rho, n, params_.scheme, pos, mass);
  if (t) t->add("density assignment", sw.seconds());

  sw.restart();
  auto pencil = gather_density(rho);
  if (t) t->add("communication", sw.seconds());

  sw.restart();
  if (is_fft_rank()) {
    std::vector<fft::Complex> cp(pencil.size());
    for (std::size_t i = 0; i < pencil.size(); ++i) cp[i] = {pencil[i], 0.0};
    auto spec = fft_->forward(cp);
    for (std::size_t i = 0; i < spec.size(); ++i) spec[i] *= green_[i];
    auto back = fft_->inverse(spec);
    for (std::size_t i = 0; i < pencil.size(); ++i) pencil[i] = back[i].real();
  }
  if (t) t->add("FFT", sw.seconds());

  sw.restart();
  LocalMesh phi = scatter_potential(pencil);
  if (t) t->add("communication", sw.seconds());

  sw.restart();
  LocalMesh fx, fy, fz;
  fd_gradient(phi, force_region_, n, fx, fy, fz);
  if (t) t->add("acceleration on mesh", sw.seconds());

  sw.restart();
  parallel_for_chunks(0, pos.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      acc[i] += interpolate(fx, fy, fz, n, params_.scheme, pos[i]);
  });
  if (t) t->add("force interpolation", sw.seconds());
}

}  // namespace greem::pm
