#include "pm/green.hpp"

#include <cmath>
#include <numbers>

#include "fft/fft3d.hpp"
#include "pp/cutoff.hpp"

namespace greem::pm {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Per-axis transfer function of the 4-point finite difference,
/// F[D](k) = i d(k):  d(k) = (8 sin(k h) - sin(2 k h)) / (6 h).
double fd_transfer(double k, double h) {
  return (8.0 * std::sin(k * h) - std::sin(2.0 * k * h)) / (6.0 * h);
}

/// Assignment window at continuous wavenumber k (one axis):
/// U(k) = sinc(k h / 2)^support.
double axis_window(double k, double h, int power) {
  const double x = 0.5 * k * h;
  const double sinc = std::abs(x) < 1e-12 ? 1.0 : std::sin(x) / x;
  double w = sinc;
  for (int i = 1; i < power; ++i) w *= sinc;
  return w;
}

/// Reference force spectrum component a: r_a(k) = 4 pi G k_a s2^2 / k^2.
double ref_force(double ka, double k2, double rcut, double G) {
  if (k2 <= 0) return 0.0;
  const double s2 = pp::s2_fourier(std::sqrt(k2) * rcut / 2.0);
  return 4.0 * std::numbers::pi * G * ka * s2 * s2 / k2;
}

}  // namespace

double green_potential(const GreenParams& p, long kx, long ky, long kz) {
  if (kx == 0 && ky == 0 && kz == 0) return 0.0;
  const double k2 = kTwoPi * kTwoPi * static_cast<double>(kx * kx + ky * ky + kz * kz);
  const double k = std::sqrt(k2);
  // The S2 shape factor enters squared: the sources are S2-smeared and the
  // force on each particle is averaged over its own S2 cloud, so the pair
  // force reproduced by the mesh is the cloud-cloud force whose complement
  // is exactly gP3M (eq. 3), vanishing at r = rcut = 2a.
  const double s2 = pp::s2_fourier(k * p.rcut / 2.0);
  double g = -4.0 * std::numbers::pi * p.G / k2 * s2 * s2;
  if (p.deconv_power > 0) {
    double w = window(p.scheme, kx, p.n_mesh) * window(p.scheme, ky, p.n_mesh) *
               window(p.scheme, kz, p.n_mesh);
    for (int i = 0; i < p.deconv_power; ++i) g /= w;
  }
  return g;
}

double green_optimal(const GreenParams& p, long kx, long ky, long kz) {
  if (kx == 0 && ky == 0 && kz == 0) return 0.0;
  const auto n = static_cast<double>(p.n_mesh);
  const double h = 1.0 / n;
  const int wp = support(p.scheme);
  const double k[3] = {kTwoPi * static_cast<double>(kx), kTwoPi * static_cast<double>(ky),
                       kTwoPi * static_cast<double>(kz)};

  const double d[3] = {fd_transfer(k[0], h), fd_transfer(k[1], h), fd_transfer(k[2], h)};
  const double d2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
  if (d2 <= 0) return 0.0;  // Nyquist-only mode: the FD cannot act on it

  // Alias sums: k_n = k + 2 pi N m, m in [-range, range]^3.
  const double ks = kTwoPi * n;
  double usum = 0;          // sum U^2
  double dr[3] = {0, 0, 0};  // sum U^2 r_a
  for (int mx = -p.alias_range; mx <= p.alias_range; ++mx) {
    const double ax = k[0] + ks * mx;
    const double ux = axis_window(ax, h, wp);
    for (int my = -p.alias_range; my <= p.alias_range; ++my) {
      const double ay = k[1] + ks * my;
      const double uxy = ux * axis_window(ay, h, wp);
      for (int mz = -p.alias_range; mz <= p.alias_range; ++mz) {
        const double az = k[2] + ks * mz;
        const double u = uxy * axis_window(az, h, wp);
        const double u2 = u * u;
        const double k2n = ax * ax + ay * ay + az * az;
        usum += u2;
        dr[0] += u2 * ref_force(ax, k2n, p.rcut, p.G);
        dr[1] += u2 * ref_force(ay, k2n, p.rcut, p.G);
        dr[2] += u2 * ref_force(az, k2n, p.rcut, p.G);
      }
    }
  }
  const double num = d[0] * dr[0] + d[1] * dr[1] + d[2] * dr[2];
  return -num / (d2 * usum * usum);
}

double green_value(const GreenParams& p, long kx, long ky, long kz) {
  return p.kind == GreenKind::kOptimal ? green_optimal(p, kx, ky, kz)
                                       : green_potential(p, kx, ky, kz);
}

std::vector<double> build_green_table_r2c(const GreenParams& p) {
  const std::size_t n = p.n_mesh;
  const std::size_t h = n / 2 + 1;
  std::vector<double> table(h * n * n);
  for (std::size_t z = 0; z < n; ++z) {
    const long kz = fft::wavenumber(z, n);
    for (std::size_t y = 0; y < n; ++y) {
      const long ky = fft::wavenumber(y, n);
      for (std::size_t x = 0; x < h; ++x)
        table[(z * n + y) * h + x] = green_value(p, static_cast<long>(x), ky, kz);
    }
  }
  return table;
}

std::vector<double> build_green_table(const GreenParams& p, std::size_t z_begin,
                                      std::size_t z_end) {
  const std::size_t n = p.n_mesh;
  std::vector<double> table((z_end - z_begin) * n * n);
  for (std::size_t z = z_begin; z < z_end; ++z) {
    const long kz = fft::wavenumber(z, n);
    for (std::size_t y = 0; y < n; ++y) {
      const long ky = fft::wavenumber(y, n);
      for (std::size_t x = 0; x < n; ++x) {
        const long kx = fft::wavenumber(x, n);
        table[((z - z_begin) * n + y) * n + x] = green_value(p, kx, ky, kz);
      }
    }
  }
  return table;
}

}  // namespace greem::pm
