#include "pm/pm_solver.hpp"

#include "pm/gradient.hpp"
#include "util/parallel_for.hpp"

namespace greem::pm {

PmSolver::PmSolver(PmParams params)
    : params_(params),
      fft_(params.n_mesh),
      green_(build_green_table_r2c(params_.green_params())) {}

std::vector<double> PmSolver::solve_potential(std::span<const Vec3> pos,
                                              std::span<const double> mass,
                                              TimingBreakdown* t,
                                              const std::vector<double>& green) {
  const std::size_t n = params_.n_mesh;
  Stopwatch sw;

  std::vector<double> rho(n * n * n, 0.0);
  assign_density_periodic(rho, n, params_.scheme, pos, mass);
  if (t) t->add("density assignment", sw.seconds());

  sw.restart();
  auto rho_k = fft_.forward(rho);
  for (std::size_t i = 0; i < rho_k.size(); ++i) rho_k[i] *= green[i];
  auto phi = fft_.inverse(std::move(rho_k));
  if (t) t->add("FFT", sw.seconds());
  return phi;
}

void PmSolver::accelerations(std::span<const Vec3> pos, std::span<const double> mass,
                             std::span<Vec3> acc, TimingBreakdown* t) {
  const std::size_t n = params_.n_mesh;
  phi_ = solve_potential(pos, mass, t, green_);

  Stopwatch sw;
  std::vector<double> fx, fy, fz;
  fd_gradient_periodic(phi_, n, fx, fy, fz);
  if (t) t->add("acceleration on mesh", sw.seconds());

  sw.restart();
  parallel_for_chunks(0, pos.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      acc[i].x += interpolate_periodic(fx, n, params_.scheme, pos[i]);
      acc[i].y += interpolate_periodic(fy, n, params_.scheme, pos[i]);
      acc[i].z += interpolate_periodic(fz, n, params_.scheme, pos[i]);
    }
  });
  if (t) t->add("force interpolation", sw.seconds());
}

std::vector<double> PmSolver::potentials(std::span<const Vec3> pos,
                                         std::span<const double> mass) {
  if (green_physical_.empty()) {
    GreenParams gp = params_.green_params();
    gp.kind = GreenKind::kSimple;
    green_physical_ = build_green_table_r2c(gp);
  }
  phi_ = solve_potential(pos, mass, nullptr, green_physical_);
  std::vector<double> out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i)
    out[i] = interpolate_periodic(phi_, params_.n_mesh, params_.scheme, pos[i]);
  return out;
}

}  // namespace greem::pm
