#include "pm/mesh.hpp"

#include <cmath>

namespace greem::pm {

CellRegion region_for_domain(const Box& domain, std::size_t n_mesh, long pad) {
  const auto nm = static_cast<double>(n_mesh);
  CellRegion r;
  for (std::size_t a = 0; a < 3; ++a) {
    const long lo_cell = static_cast<long>(std::floor(domain.lo[a] * nm));
    // Cells overlapping [lo, hi): up to ceil(hi*N) - 1.
    const long hi_cell = static_cast<long>(std::ceil(domain.hi[a] * nm)) - 1;
    r.lo[a] = lo_cell - pad;
    r.n[a] = static_cast<std::size_t>(hi_cell - lo_cell + 1 + 2 * pad);
  }
  return r;
}

CellRegion expand(const CellRegion& r, long pad) {
  CellRegion out = r;
  for (std::size_t a = 0; a < 3; ++a) {
    out.lo[a] -= pad;
    out.n[a] += static_cast<std::size_t>(2 * pad);
  }
  return out;
}

}  // namespace greem::pm
