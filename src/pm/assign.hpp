#pragma once
// Mass assignment and force interpolation kernels (NGP / CIC / TSC).
// The paper uses TSC (27-point stencil) for both density assignment and
// force interpolation; NGP and CIC are provided for the ablation bench.

#include <array>
#include <span>
#include <vector>

#include "pm/mesh.hpp"
#include "util/vec3.hpp"

namespace greem::pm {

enum class Scheme { kNGP = 1, kCIC = 2, kTSC = 3 };

/// Support width in cells (1, 2 or 3).
constexpr int support(Scheme s) { return static_cast<int>(s); }

/// Per-axis stencil: base cell index (unwrapped) and up to 3 weights.
struct AxisStencil {
  long base = 0;
  std::array<double, 3> w{0, 0, 0};
  int count = 0;
};

/// Stencil of scheme `s` for position coordinate `x` (unit box) on an
/// n-cell mesh; cell centers at (i + 0.5)/n.
AxisStencil axis_stencil(Scheme s, double x, std::size_t n);

/// Deposit particle masses onto a local mesh as *density* (mass per cell
/// volume), i.e. each deposit is m * w / h^3.  Cell indices are unwrapped;
/// the region must cover the full stencil support of every particle.
void assign_density(LocalMesh& mesh, std::size_t n_mesh, Scheme s,
                    std::span<const Vec3> pos, std::span<const double> mass);

/// As above, onto a full periodic n^3 mesh (serial PM path).
void assign_density_periodic(std::vector<double>& rho, std::size_t n_mesh, Scheme s,
                             std::span<const Vec3> pos, std::span<const double> mass);

/// Interpolate three force meshes to a particle position (local region).
Vec3 interpolate(const LocalMesh& fx, const LocalMesh& fy, const LocalMesh& fz,
                 std::size_t n_mesh, Scheme s, const Vec3& pos);

/// Interpolate a full periodic mesh field to a particle position.
double interpolate_periodic(const std::vector<double>& field, std::size_t n_mesh, Scheme s,
                            const Vec3& pos);

/// Fourier-space window of the assignment scheme at integer wavenumber k
/// (|k| <= n/2) on an n-mesh: sinc(pi k / n)^support.
double window(Scheme s, long k, std::size_t n);

}  // namespace greem::pm
