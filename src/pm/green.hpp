#pragma once
// k-space Green's functions of the long-range (PM) force.
//
// The PM part must reproduce the S2 cloud-cloud pair force whose
// short-range complement is exactly gP3M (paper eq. 3); its continuum
// potential multiplier is
//
//   G(k) = -4 pi G / k^2 * s2(k rcut / 2)^2,    k = 2 pi |n|,
//
// with s2 the Fourier transform of the S2 cloud shape (pp::s2_fourier).
//
// Two discrete realizations are provided:
//
//  * kSimple -- G(k) divided by the assignment window W(k)^p
//    (p = deconv_power, compensating density assignment and force
//    interpolation).  Cheap but leaves percent-level aliasing error near
//    the mesh scale.
//
//  * kOptimal (default) -- the Hockney & Eastwood optimal influence
//    function for the S2 reference force, the choice of the P3M/GreeM
//    lineage: it minimizes the mean-square force error over particle
//    positions given the TSC assignment window U, the 4-point finite
//    difference operator D, and aliasing:
//
//      G_opt(k) = - sum_a d_a(k) [ sum_n U^2(k_n) r_a(k_n) ]
//                 / ( |d(k)|^2 [ sum_n U^2(k_n) ]^2 ),
//
//    where k_n = k + 2 pi N n are the alias images, r(k) = 4 pi k s2^2/k^2
//    is the reference force spectrum and d(k) the FD transfer function.

#include <cstddef>
#include <vector>

#include "pm/assign.hpp"

namespace greem::pm {

enum class GreenKind { kSimple, kOptimal };

struct GreenParams {
  std::size_t n_mesh = 0;
  double rcut = 0;
  Scheme scheme = Scheme::kTSC;
  int deconv_power = 2;  ///< kSimple only
  double G = 1.0;        ///< gravitational constant (unit box)
  GreenKind kind = GreenKind::kOptimal;
  int alias_range = 2;   ///< kOptimal: aliases summed over [-range, range]^3
};

/// Simple potential multiplier at integer wavenumber (kx, ky, kz),
/// each in (-n/2, n/2].
double green_potential(const GreenParams& p, long kx, long ky, long kz);

/// Optimal influence function at one wavenumber (slow; use the table).
double green_optimal(const GreenParams& p, long kx, long ky, long kz);

/// Value of the configured kind at one wavenumber.
double green_value(const GreenParams& p, long kx, long ky, long kz);

/// Precomputed multiplier table for the z-plane range [z_begin, z_end) of
/// an n^3 mesh in slab layout (z-major, ((z - z_begin)*n + y)*n + x).
/// Pass z_begin = 0, z_end = n for the full mesh.
std::vector<double> build_green_table(const GreenParams& p, std::size_t z_begin,
                                      std::size_t z_end);

/// As above but in the half-spectrum (r2c) layout of fft::Fft3dR2C:
/// (z*n + y)*(n/2+1) + x with x = 0..n/2 (the multiplier is real and even
/// in k, so the half spectrum suffices).
std::vector<double> build_green_table_r2c(const GreenParams& p);

}  // namespace greem::pm
