#include "pm/gradient.hpp"

#include "util/parallel_for.hpp"

namespace greem::pm {

// Both differencing loops parallelize over z planes: every output cell is
// a pure function of phi, so any chunking gives bitwise identical meshes.

void fd_gradient(const LocalMesh& phi, const CellRegion& force_region, std::size_t n_mesh,
                 LocalMesh& fx, LocalMesh& fy, LocalMesh& fz) {
  const double scale = static_cast<double>(n_mesh) / 12.0;  // 1 / (12 h)
  fx = LocalMesh(force_region);
  fy = LocalMesh(force_region);
  fz = LocalMesh(force_region);
  parallel_for_chunks(0, force_region.n[2], [&](std::size_t zlo, std::size_t zhi) {
  for (long z = force_region.lo[2] + static_cast<long>(zlo);
       z < force_region.lo[2] + static_cast<long>(zhi); ++z)
    for (long y = force_region.lo[1]; y < force_region.hi(1); ++y)
      for (long x = force_region.lo[0]; x < force_region.hi(0); ++x) {
        fx.at(x, y, z) = -scale * (8.0 * (phi.at(x + 1, y, z) - phi.at(x - 1, y, z)) -
                                   (phi.at(x + 2, y, z) - phi.at(x - 2, y, z)));
        fy.at(x, y, z) = -scale * (8.0 * (phi.at(x, y + 1, z) - phi.at(x, y - 1, z)) -
                                   (phi.at(x, y + 2, z) - phi.at(x, y - 2, z)));
        fz.at(x, y, z) = -scale * (8.0 * (phi.at(x, y, z + 1) - phi.at(x, y, z - 1)) -
                                   (phi.at(x, y, z + 2) - phi.at(x, y, z - 2)));
      }
  });
}

void fd_gradient_periodic(const std::vector<double>& phi, std::size_t n,
                          std::vector<double>& fx, std::vector<double>& fy,
                          std::vector<double>& fz) {
  const double scale = static_cast<double>(n) / 12.0;
  fx.assign(n * n * n, 0.0);
  fy.assign(n * n * n, 0.0);
  fz.assign(n * n * n, 0.0);
  auto idx = [n](std::size_t x, std::size_t y, std::size_t z) { return (z * n + y) * n + x; };
  auto w = [n](long c) { return wrap_cell(c, n); };
  parallel_for_chunks(0, n, [&](std::size_t zlo, std::size_t zhi) {
  for (long z = static_cast<long>(zlo); z < static_cast<long>(zhi); ++z)
    for (long y = 0; y < static_cast<long>(n); ++y)
      for (long x = 0; x < static_cast<long>(n); ++x) {
        const std::size_t i = idx(static_cast<std::size_t>(x), static_cast<std::size_t>(y),
                                  static_cast<std::size_t>(z));
        fx[i] = -scale * (8.0 * (phi[idx(w(x + 1), static_cast<std::size_t>(y), static_cast<std::size_t>(z))] -
                                 phi[idx(w(x - 1), static_cast<std::size_t>(y), static_cast<std::size_t>(z))]) -
                          (phi[idx(w(x + 2), static_cast<std::size_t>(y), static_cast<std::size_t>(z))] -
                           phi[idx(w(x - 2), static_cast<std::size_t>(y), static_cast<std::size_t>(z))]));
        fy[i] = -scale * (8.0 * (phi[idx(static_cast<std::size_t>(x), w(y + 1), static_cast<std::size_t>(z))] -
                                 phi[idx(static_cast<std::size_t>(x), w(y - 1), static_cast<std::size_t>(z))]) -
                          (phi[idx(static_cast<std::size_t>(x), w(y + 2), static_cast<std::size_t>(z))] -
                           phi[idx(static_cast<std::size_t>(x), w(y - 2), static_cast<std::size_t>(z))]));
        fz[i] = -scale * (8.0 * (phi[idx(static_cast<std::size_t>(x), static_cast<std::size_t>(y), w(z + 1))] -
                                 phi[idx(static_cast<std::size_t>(x), static_cast<std::size_t>(y), w(z - 1))]) -
                          (phi[idx(static_cast<std::size_t>(x), static_cast<std::size_t>(y), w(z + 2))] -
                           phi[idx(static_cast<std::size_t>(x), static_cast<std::size_t>(y), w(z - 2))]));
      }
  });
}

}  // namespace greem::pm
