#include "io/csv.hpp"

#include <cassert>

#include "analysis/profile.hpp"

namespace greem::io {

bool write_halo_catalog(const std::string& path, const analysis::FofGroups& groups,
                        std::span<const Vec3> pos, double particle_mass) {
  std::ofstream out(path);
  if (!out) return false;
  out << "halo_id,n_members,mass,com_x,com_y,com_z\n";
  std::vector<std::vector<Vec3>> members(groups.ngroups());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    const auto g = groups.group_of[i];
    if (g != analysis::FofGroups::kNoGroup) members[static_cast<std::size_t>(g)].push_back(pos[i]);
  }
  for (std::size_t g = 0; g < groups.ngroups(); ++g) {
    const Vec3 com = analysis::periodic_center_of_mass(members[g]);
    out << g << ',' << groups.group_size[g] << ','
        << particle_mass * groups.group_size[g] << ',' << com.x << ',' << com.y << ','
        << com.z << "\n";
  }
  return static_cast<bool>(out);
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& columns)
    : out_(path), ncols_(columns.size()) {
  for (std::size_t i = 0; i < columns.size(); ++i)
    out_ << (i ? "," : "") << columns[i];
  out_ << "\n";
}

void CsvWriter::row(const std::vector<double>& values) {
  assert(values.size() == ncols_);
  for (std::size_t i = 0; i < values.size(); ++i) out_ << (i ? "," : "") << values[i];
  out_ << "\n";
}

}  // namespace greem::io
