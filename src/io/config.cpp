#include "io/config.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace greem::io {
namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

Config Config::parse_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("config line " + std::to_string(lineno) +
                                  ": expected 'key = value': " + line);
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty())
      throw std::invalid_argument("config line " + std::to_string(lineno) + ": empty key");
    cfg.values_[key] = value;
  }
  return cfg;
}

std::optional<Config> Config::parse_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    return parse_string(buf.str());
  } catch (const std::invalid_argument& e) {
    if (error) *error = e.what();
    return std::nullopt;
  }
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

long Config::get_int(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::stol(it->second);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  if (v == "true" || v == "yes" || v == "1" || v == "on") return true;
  if (v == "false" || v == "no" || v == "0" || v == "off") return false;
  throw std::invalid_argument("config key '" + key + "': not a boolean: " + it->second);
}

std::vector<std::string> Config::unknown_keys(const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (std::find(known.begin(), known.end(), k) == known.end()) out.push_back(k);
  }
  return out;
}

}  // namespace greem::io
