#pragma once
// Binary particle snapshots (single file, little-endian host layout):
// a fixed header followed by the packed Particle array.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/particle.hpp"

namespace greem::io {

struct SnapshotHeader {
  std::uint64_t n_particles = 0;
  double clock = 0;       ///< scale factor or time
  double particle_mass = 0;
  std::uint32_t comoving = 0;
};

bool write_snapshot(const std::string& path, const SnapshotHeader& header,
                    std::span<const core::Particle> particles);

struct Snapshot {
  SnapshotHeader header;
  std::vector<core::Particle> particles;
};

std::optional<Snapshot> read_snapshot(const std::string& path);

}  // namespace greem::io
