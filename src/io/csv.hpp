#pragma once
// Minimal CSV writer for benchmark series (figure data dumps) and the
// FoF halo catalog export.

#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "analysis/fof.hpp"
#include "util/vec3.hpp"

namespace greem::io {

class CsvWriter {
 public:
  /// Opens `path` and writes the header row.  ok() reports stream health.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns);

  void row(const std::vector<double>& values);
  bool ok() const { return static_cast<bool>(out_); }

 private:
  std::ofstream out_;
  std::size_t ncols_;
};

/// Write a FoF halo catalog: one row per group with id, member count,
/// mass, and periodic center of mass.  Returns false on I/O failure.
bool write_halo_catalog(const std::string& path, const analysis::FofGroups& groups,
                        std::span<const Vec3> pos, double particle_mass);

}  // namespace greem::io
