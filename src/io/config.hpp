#pragma once
// Flat key = value configuration files for the run driver
// (examples/greem_run): '#' comments, blank lines ignored, later keys
// override earlier ones.  Typed getters fall back to defaults; see
// examples/configs/ for annotated samples.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace greem::io {

class Config {
 public:
  Config() = default;

  /// Parse from a file; nullopt if the file cannot be read or a line is
  /// malformed (diagnostics to `error` when given).
  static std::optional<Config> parse_file(const std::string& path,
                                          std::string* error = nullptr);

  /// Parse from text (throws std::invalid_argument on malformed lines).
  static Config parse_string(const std::string& text);

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get_string(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys present in the file but not in `known` (catches typos).
  std::vector<std::string> unknown_keys(const std::vector<std::string>& known) const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace greem::io
