#include "io/snapshot.hpp"

#include <cstring>
#include <fstream>

namespace greem::io {
namespace {

constexpr char kMagic[8] = {'G', 'R', 'E', 'E', 'M', 'S', 'N', '1'};

}  // namespace

bool write_snapshot(const std::string& path, const SnapshotHeader& header,
                    std::span<const core::Particle> particles) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  // memset, not copy: the struct's tail padding would otherwise leak
  // indeterminate bytes into the file and break byte-identical snapshots.
  SnapshotHeader h;
  std::memset(&h, 0, sizeof(h));
  h.clock = header.clock;
  h.particle_mass = header.particle_mass;
  h.comoving = header.comoving;
  h.n_particles = particles.size();
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  out.write(reinterpret_cast<const char*>(particles.data()),
            static_cast<std::streamsize>(particles.size_bytes()));
  return static_cast<bool>(out);
}

std::optional<Snapshot> read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(magic)) != 0) return std::nullopt;
  Snapshot snap;
  in.read(reinterpret_cast<char*>(&snap.header), sizeof(snap.header));
  if (!in) return std::nullopt;
  snap.particles.resize(snap.header.n_particles);
  in.read(reinterpret_cast<char*>(snap.particles.data()),
          static_cast<std::streamsize>(snap.particles.size() * sizeof(core::Particle)));
  if (!in) return std::nullopt;
  return snap;
}

}  // namespace greem::io
