#include "io/snapshot.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "ckpt/atomic_file.hpp"

namespace greem::io {
namespace {

constexpr char kMagic[8] = {'G', 'R', 'E', 'E', 'M', 'S', 'N', '1'};

}  // namespace

bool write_snapshot(const std::string& path, const SnapshotHeader& header,
                    std::span<const core::Particle> particles) {
  // Atomic: a crash mid-write leaves the previous snapshot (or nothing),
  // never a truncated file under the final name.
  ckpt::AtomicFileWriter out(path);
  out.write(kMagic, sizeof(kMagic));
  // memset, not copy: the struct's tail padding would otherwise leak
  // indeterminate bytes into the file and break byte-identical snapshots.
  SnapshotHeader h;
  std::memset(&h, 0, sizeof(h));
  h.clock = header.clock;
  h.particle_mass = header.particle_mass;
  h.comoving = header.comoving;
  h.n_particles = particles.size();
  out.write(&h, sizeof(h));
  out.write(particles.data(), particles.size_bytes());
  return out.commit();
}

std::optional<Snapshot> read_snapshot(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t fsize = std::filesystem::file_size(path, ec);
  if (ec) return std::nullopt;

  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(magic)) != 0) return std::nullopt;
  Snapshot snap;
  in.read(reinterpret_cast<char*>(&snap.header), sizeof(snap.header));
  if (!in) return std::nullopt;

  // Bound the claimed count against the actual file size BEFORE resizing,
  // so a corrupt/hostile header cannot drive a huge allocation; requiring
  // the exact size also rejects truncated files and trailing garbage.
  const std::uintmax_t expect = static_cast<std::uintmax_t>(sizeof(kMagic)) +
                                sizeof(SnapshotHeader) +
                                static_cast<std::uintmax_t>(snap.header.n_particles) *
                                    sizeof(core::Particle);
  if (snap.header.n_particles > (fsize - sizeof(kMagic) - sizeof(SnapshotHeader)) /
                                    sizeof(core::Particle) ||
      fsize != expect)
    return std::nullopt;

  snap.particles.resize(snap.header.n_particles);
  in.read(reinterpret_cast<char*>(snap.particles.data()),
          static_cast<std::streamsize>(snap.particles.size() * sizeof(core::Particle)));
  if (!in) return std::nullopt;
  return snap;
}

}  // namespace greem::io
