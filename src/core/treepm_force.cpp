#include "core/treepm_force.hpp"

#include "tree/octree.hpp"

namespace greem::core {
namespace {

/// The 27 periodic image offsets; the traversal prunes images whose
/// shifted tree lies beyond rcut of a group (all but the home image for
/// interior groups, since rcut << 1).
std::vector<Vec3> image_offsets() {
  std::vector<Vec3> off;
  off.reserve(27);
  off.emplace_back(0.0, 0.0, 0.0);  // home image first: cheapest pruning
  for (int x = -1; x <= 1; ++x)
    for (int y = -1; y <= 1; ++y)
      for (int z = -1; z <= 1; ++z)
        if (x || y || z) off.emplace_back(x, y, z);
  return off;
}

}  // namespace

TreePmForce::TreePmForce(TreePmParams params) : params_(params), pm_(params.pm) {}

void TreePmForce::long_range(std::span<const Vec3> pos, std::span<const double> mass,
                             std::span<Vec3> acc, TimingBreakdown* t) {
  pm_.accelerations(pos, mass, acc, t);
}

tree::TraversalStats TreePmForce::short_range(std::span<const Vec3> pos,
                                              std::span<const double> mass,
                                              std::span<Vec3> acc, TimingBreakdown* t) {
  Stopwatch sw;
  tree::Octree octree(pos, mass, {params_.leaf_capacity, 21});
  if (t) t->add("tree construction", sw.seconds());

  tree::TraversalParams tp;
  tp.theta = params_.theta;
  tp.rcut = params_.rcut();
  tp.ncrit = params_.ncrit;
  tp.eps2 = params_.eps * params_.eps;
  tp.kernel = params_.kernel;

  static const std::vector<Vec3> kImages = image_offsets();
  tree::TraversalTimes times;
  auto stats = tree::tree_accelerations(octree, tp, acc, kImages, &times);
  if (t) {
    t->add("tree traversal", times.traverse_s);
    t->add("force calculation", times.force_s);
  }
  return stats;
}

tree::TraversalStats TreePmForce::total(std::span<const Vec3> pos,
                                        std::span<const double> mass, std::span<Vec3> acc,
                                        TimingBreakdown* t) {
  long_range(pos, mass, acc, t);
  return short_range(pos, mass, acc, t);
}

}  // namespace greem::core
