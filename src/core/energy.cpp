#include "core/energy.hpp"

#include <cmath>

#include "pp/cutoff.hpp"
#include "tree/octree.hpp"
#include "tree/traversal.hpp"

namespace greem::core {

double kinetic_energy(std::span<const Particle> ps) {
  double k = 0;
  for (const auto& p : ps) k += 0.5 * p.mass * p.mom.norm2();
  return k;
}

double ewald_potential_energy(const ewald::Ewald& ew, std::span<const Particle> ps,
                              double eps2) {
  return ew.potential_energy(positions_of(ps), masses_of(ps), eps2);
}

double treepm_potential_energy(TreePmForce& force, std::span<const Particle> ps) {
  const auto pos = positions_of(ps);
  const auto mass = masses_of(ps);
  const double rcut = force.params().rcut();
  const double rcut2 = rcut * rcut;

  // Short-range pair potential -G m m' h(2r/rcut)/r inside the cutoff,
  // via the tree's group walk (O(N <Nj>), exact self-pair exclusion with
  // eps = 0).
  (void)rcut2;
  const std::size_t n = pos.size();
  std::vector<double> pp_pot(n, 0.0);
  {
    tree::Octree octree(pos, mass, {force.params().leaf_capacity, 21});
    tree::TraversalParams tp;
    tp.theta = force.params().theta;
    tp.rcut = rcut;
    tp.ncrit = force.params().ncrit;
    tp.eps2 = 0.0;
    tp.kernel = tree::KernelKind::kScalar;
    std::vector<Vec3> images;
    images.reserve(27);
    for (int x = -1; x <= 1; ++x)
      for (int y = -1; y <= 1; ++y)
        for (int z = -1; z <= 1; ++z) images.emplace_back(x, y, z);
    tree::tree_potentials(octree, tp, pp_pot, images);
  }
  double u_pp = 0;
  for (std::size_t i = 0; i < n; ++i) u_pp += 0.5 * mass[i] * pp_pot[i];

  // Long-range: mesh potential interpolated to the particles.  The mesh
  // field includes each particle's own S2 cloud-cloud self-energy; at zero
  // separation the interaction energy of two coincident unit-mass S2
  // clouds of radius a is Int rho phi dV = -(52/35)/a = -(104/35)/rcut
  // (with phi(r) = (-2 + 2 r^2 - r^3)/a for the linear S2 profile), so the
  // analytic self term is subtracted per particle.  Mesh discretization
  // leaves a small residual absorbed in the TreePM energy error budget.
  pm::PmSolver pm(force.params().pm);
  auto phi = pm.potentials(pos, mass);
  const double phi_cc0 = -(104.0 / 35.0) / rcut;
  double u_pm = 0;
  for (std::size_t i = 0; i < n; ++i)
    u_pm += 0.5 * mass[i] * (phi[i] - mass[i] * phi_cc0);

  return u_pp + u_pm;
}

}  // namespace greem::core
