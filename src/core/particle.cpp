#include "core/particle.hpp"

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace greem::core {

std::vector<Vec3> positions_of(std::span<const Particle> ps) {
  std::vector<Vec3> out(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) out[i] = ps[i].pos;
  return out;
}

std::vector<double> masses_of(std::span<const Particle> ps) {
  std::vector<double> out(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) out[i] = ps[i].mass;
  return out;
}

std::vector<Particle> random_uniform_particles(std::size_t n, double total_mass,
                                               std::uint64_t seed) {
  Rng rng(seed, 1);
  std::vector<Particle> out(n);
  const double m = total_mass / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].pos = {rng.uniform(), rng.uniform(), rng.uniform()};
    out[i].mass = m;
    out[i].id = i;
  }
  return out;
}

namespace {

Vec3 plummer_point(Rng& rng, const Vec3& center, double scale) {
  // Radius from the Plummer cumulative mass profile, isotropic direction.
  const double u = std::max(rng.uniform(), 1e-12);
  const double r = scale / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
  const double ct = rng.uniform(-1.0, 1.0);
  const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
  const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return wrap01(center + Vec3{r * st * std::cos(phi), r * st * std::sin(phi), r * ct});
}

}  // namespace

std::vector<Particle> plummer_particles(std::size_t n, double total_mass, const Vec3& center,
                                        double scale, std::uint64_t seed) {
  Rng rng(seed, 2);
  std::vector<Particle> out(n);
  const double m = total_mass / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].pos = plummer_point(rng, center, scale);
    out[i].mass = m;
    out[i].id = i;
  }
  return out;
}

std::vector<Particle> clustered_particles(std::size_t n, double total_mass, int nclusters,
                                          double cluster_fraction, double scale,
                                          std::uint64_t seed) {
  Rng rng(seed, 3);
  std::vector<Vec3> centers(static_cast<std::size_t>(nclusters));
  for (auto& c : centers) c = {rng.uniform(), rng.uniform(), rng.uniform()};

  std::vector<Particle> out(n);
  const double m = total_mass / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < cluster_fraction) {
      const auto& c = centers[rng.uniform_index(centers.size())];
      out[i].pos = plummer_point(rng, c, scale);
    } else {
      out[i].pos = {rng.uniform(), rng.uniform(), rng.uniform()};
    }
    out[i].mass = m;
    out[i].id = i;
  }
  return out;
}

}  // namespace greem::core
