#pragma once
// Energy diagnostics.  In static mode (TimeMetric::comoving == false) the
// Hamiltonian K + U is conserved by the symplectic integrator; U is the
// exact periodic (Ewald) potential, or its TreePM approximation
// (PP pair potential with the h cutoff + interpolated PM mesh potential)
// for larger N.

#include <span>

#include "core/particle.hpp"
#include "core/treepm_force.hpp"
#include "ewald/ewald.hpp"

namespace greem::core {

/// Kinetic energy sum(1/2 m |mom|^2) (static mode: mom is velocity).
double kinetic_energy(std::span<const Particle> ps);

/// Exact periodic potential energy via Ewald summation (O(N^2); small N).
double ewald_potential_energy(const ewald::Ewald& ew, std::span<const Particle> ps,
                              double eps2);

/// TreePM estimate of the periodic potential energy: direct PP pair sum
/// with the h_p3m cutoff (O(N^2) inside rcut via cell lists is overkill
/// here; plain min-image loop) plus the PM mesh potential interpolated to
/// the particles, with the S2 self-energy removed.
double treepm_potential_energy(TreePmForce& force, std::span<const Particle> ps);

}  // namespace greem::core
