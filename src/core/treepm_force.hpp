#pragma once
// Serial TreePM force module: short-range Barnes-Hut walk with the gP3M
// cutoff (over the 27 periodic images, pruned by rcut) plus the PM
// long-range solve.  The single-process reference implementation of the
// paper's force split; the parallel driver reproduces it distributed.

#include <memory>
#include <span>

#include "pm/pm_solver.hpp"
#include "tree/traversal.hpp"
#include "util/timer.hpp"
#include "util/vec3.hpp"

namespace greem::core {

struct TreePmParams {
  pm::PmParams pm;            ///< mesh size, rcut (0 => 3/n_mesh), scheme
  double theta = 0.5;
  std::uint32_t ncrit = 64;   ///< group size <Ni>
  std::uint32_t leaf_capacity = 8;
  double eps = 0.0;           ///< Plummer softening (<< rcut)
  tree::KernelKind kernel = tree::KernelKind::kPhantom;

  double rcut() const { return pm.effective_rcut(); }
};

class TreePmForce {
 public:
  explicit TreePmForce(TreePmParams params);

  const TreePmParams& params() const { return params_; }

  /// Long-range (PM) accelerations added into acc.
  void long_range(std::span<const Vec3> pos, std::span<const double> mass,
                  std::span<Vec3> acc, TimingBreakdown* t = nullptr);

  /// Short-range (tree + cutoff kernel) accelerations added into acc.
  tree::TraversalStats short_range(std::span<const Vec3> pos, std::span<const double> mass,
                                   std::span<Vec3> acc, TimingBreakdown* t = nullptr);

  /// Convenience: total = short + long.
  tree::TraversalStats total(std::span<const Vec3> pos, std::span<const double> mass,
                             std::span<Vec3> acc, TimingBreakdown* t = nullptr);

 private:
  TreePmParams params_;
  pm::PmSolver pm_;
};

}  // namespace greem::core
