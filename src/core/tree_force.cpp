#include "core/tree_force.hpp"

#include "tree/octree.hpp"

namespace greem::core {

tree::TraversalStats tree_newton(std::span<const Vec3> pos, std::span<const double> mass,
                                 std::span<Vec3> acc, const TreeForceParams& params) {
  tree::Octree octree(pos, mass, {params.leaf_capacity, 21, params.quadrupole});
  tree::TraversalParams tp;
  tp.theta = params.theta;
  tp.ncrit = params.ncrit;
  tp.eps2 = params.eps2;
  tp.kernel = params.quadrupole ? tree::KernelKind::kNewtonQuad : tree::KernelKind::kNewton;
  return tree::tree_accelerations(octree, tp, acc);
}

}  // namespace greem::core
