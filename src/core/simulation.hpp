#pragma once
// Serial TreePM simulation facade: the single-process public API.  Owns the
// particles, the force module and the multiple-stepsize integrator; one
// step() call advances the clock (scale factor or time) by one PM cycle
// plus `nsub` PP cycles, exactly the step structure of the paper.

#include <span>
#include <vector>

#include "core/integrator.hpp"
#include "core/particle.hpp"
#include "core/treepm_force.hpp"

namespace greem::core {

struct SimulationConfig {
  TreePmParams force;
  TimeMetric metric;  ///< static time by default; set comoving + cosmology
  int nsub = 2;       ///< PP cycles per PM cycle
};

class Simulation {
 public:
  /// Takes ownership of the particles; `t_start` is the initial clock
  /// (scale factor in comoving mode).  Computes the initial short-range
  /// forces (one PP cycle).
  Simulation(SimulationConfig config, std::vector<Particle> particles, double t_start);

  /// Advance the clock to `t_next` (> clock()).
  void step(double t_next);

  /// Apply the pending long-range closing half-kick so momenta are
  /// synchronized with positions (call before measuring energies).
  void synchronize();

  double clock() const { return clock_; }
  std::span<const Particle> particles() const { return particles_; }
  std::vector<Particle> take_particles() && { return std::move(particles_); }

  struct StepDiagnostics {
    tree::TraversalStats pp;
    TimingBreakdown pm_timing, pp_timing;
  };
  const StepDiagnostics& last_step() const { return diag_; }

  TreePmForce& force() { return force_; }

 private:
  void compute_short(TimingBreakdown* t, tree::TraversalStats* stats);

  SimulationConfig config_;
  TreePmForce force_;
  std::vector<Particle> particles_;
  double clock_;
  double pending_long_kick_ = 0;
  StepDiagnostics diag_;
};

}  // namespace greem::core
