#pragma once
// Symplectic time integration with the paper's multiple-stepsize scheme
// (Skeel & Biesiadecki; Duncan, Levison & Lee): one simulation step = one
// long-range (PM) kick cycle wrapping `nsub` short-range KDK cycles
// (the paper runs nsub = 2: "one step is composed by a cycle of the PM and
// two cycles of the PP and the domain decomposition").
//
// The clock is cosmic scale factor in comoving mode (kick/drift factors
// from the Friedmann integrals) or plain time in static mode.

#include <algorithm>
#include <vector>

#include "cosmo/cosmology.hpp"

namespace greem::core {

/// Maps clock intervals to kick (momentum) and drift (position) weights.
struct TimeMetric {
  bool comoving = false;
  cosmo::Cosmology cosmology;

  /// Weight of `mom += acc * kick`.
  double kick(double t0, double t1) const {
    return comoving ? cosmology.kick_factor(t0, t1) : t1 - t0;
  }
  /// Weight of `pos += mom * drift`.
  double drift(double t0, double t1) const {
    return comoving ? cosmology.drift_factor(t0, t1) : t1 - t0;
  }
};

/// Uniform / geometric clock schedules of nsteps intervals over [t0, t1]
/// (cosmological runs step uniformly in log a).
std::vector<double> linear_schedule(double t0, double t1, int nsteps);
std::vector<double> log_schedule(double t0, double t1, int nsteps);

/// Adaptive step suggestion: the largest clock interval from `t` such that
/// no particle drifts more than `max_displacement` (comoving box units).
/// The standard Courant-style limiter for cosmological steppers; clamped
/// to [min_step, max_step].
struct StepLimiter {
  double max_displacement = 0.01;
  double min_step = 1e-6;
  double max_step = 0.1;
};

template <class ParticleRange>
double suggest_step(const ParticleRange& particles, const TimeMetric& metric, double t,
                    const StepLimiter& lim) {
  double pmax = 0;
  for (const auto& p : particles) pmax = std::max(pmax, p.mom.norm());
  if (pmax <= 0) return t + lim.max_step;
  // Bisect on the actual drift integral so the bound holds for strongly
  // varying H(a) too.
  double lo = lim.min_step, hi = lim.max_step;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (pmax * metric.drift(t, t + mid) > lim.max_displacement)
      hi = mid;
    else
      lo = mid;
  }
  return t + lo;
}

}  // namespace greem::core
