#pragma once
// Distributed TreePM simulation: the per-rank driver reproducing the
// paper's full step,
//
//   step = [ domain decomposition + PP cycle ] x nsub  +  one PM cycle,
//
// with the 3-D multi-section decomposition re-sampled every cycle using
// the measured force cost, ghost (boundary) particle exchange for the
// short-range tree, and the parallel PM with the direct or relay mesh
// conversion.  Phase timings accumulate under the row names of Table I.
//
// The PM cycle is *pipelined*: it is evaluated at the end of each step (at
// the same positions the next step's long-range kick needs) alongside the
// final substep's PP cycle, and the resulting acceleration is cached on
// the particle (Particle::acc_l) until the kick consumes it.  With
// ParallelSimConfig::overlap on, the two cycles' communication and compute
// stages interleave (paper §II-B: the PM part "is executed concurrently
// with the PP part"); the interleaving never changes any arithmetic, so
// overlap ON and OFF produce bitwise-identical snapshots.  docs/overlap.md
// walks through the schedule.

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/integrator.hpp"
#include "core/particle.hpp"
#include "domain/donation.hpp"
#include "domain/multisection.hpp"
#include "domain/sampling.hpp"
#include "parx/comm.hpp"
#include "parx/fault.hpp"
#include "parx/traffic.hpp"
#include "pm/parallel_pm.hpp"
#include "telemetry/step_report.hpp"
#include "tree/traversal.hpp"
#include "util/timer.hpp"

namespace greem::core {

/// What feeds the cost-weighted domain sampling.  kWallTime follows the
/// paper (the measured traversal+force seconds of the previous cycle) but
/// is run-to-run nondeterministic; kInteractions uses the traversal
/// interaction count, which is bit-reproducible and makes whole runs --
/// including checkpoint/restore round trips -- bitwise deterministic.
enum class CostMetric { kWallTime, kInteractions };

/// How the cost feeding the sampling rates is resolved spatially
/// (docs/load-balance.md).  kRankCost is load-balance v1: one scalar per
/// rank (the paper's measured force time), uniform sampling within the
/// rank.  kGroupCost is v2: the per-group tree::GroupCost attribution is
/// scattered onto each group's particles (Particle::lb_w) and used as
/// per-particle sampling weights, so the cuts move toward where the work
/// sits *inside* a domain.  Changes the cuts and therefore the dynamics:
/// part of config_fingerprint.
enum class LoadBalanceMode { kRankCost, kGroupCost };

/// Per-step invariant sentinel: a cheap collective check that converts
/// silent state corruption (a bit flip that slipped past the transport
/// CRC, a lost particle, NaN poisoning) into a typed, recoverable fault.
/// Every rank evaluates the same globally-reduced values, so a violation
/// throws SentinelError on all ranks together and the rollback-recovery
/// loop treats it exactly like a communication fault.
struct SentinelConfig {
  int every = 1;  ///< check after every N-th step (0 disables the sentinel)
  /// Relative drift bound on total mass vs the baseline captured at
  /// construction / restore.  Mass is transported, never created: any
  /// drift beyond roundoff is corruption.
  double max_mass_drift = 1e-9;
  /// Absolute per-component bound on total momentum change across one
  /// check interval.  Tree-approximate forces conserve momentum only
  /// approximately, so the default leaves this check off.
  double max_momentum_drift = std::numeric_limits<double>::infinity();
};

/// Invariant violation detected by the sentinel.  Derives CommError so
/// ckpt::run_with_recovery rolls back to the last checkpoint instead of
/// propagating corrupted state.
class SentinelError : public parx::CommError {
 public:
  explicit SentinelError(const std::string& what) : parx::CommError(what) {}
};

struct ParallelSimConfig {
  std::array<int, 3> dims{1, 1, 1};  ///< rank grid; product must equal comm size
  pm::ParallelPmParams pm;           ///< mesh, rcut, scheme, conversion method
  double theta = 0.5;
  std::uint32_t ncrit = 64;
  std::uint32_t leaf_capacity = 8;
  double eps = 0.0;
  tree::KernelKind kernel = tree::KernelKind::kPhantom;
  domain::SamplingParams sampling;
  TimeMetric metric;
  int nsub = 2;
  CostMetric cost_metric = CostMetric::kWallTime;
  LoadBalanceMode lb_mode = LoadBalanceMode::kGroupCost;

  /// Inter-rank work donation for tail groups (docs/load-balance.md).
  /// Excluded from config_fingerprint: donation relocates kernel
  /// evaluations without changing any arithmetic, so ON and OFF produce
  /// bitwise-identical snapshots (like `overlap`) and checkpoints move
  /// freely between settings.  Must be set identically on every rank (the
  /// donation exchange is collective).  Inactive under kNewtonQuad.
  domain::DonationConfig donation;

  /// Overlap the PM cycle's conversions and FFT with the final substep's
  /// PP ghost exchange and tree build (paper §II-B runs the two parts
  /// concurrently).  Purely a scheduling switch: ON and OFF execute
  /// identical arithmetic in identical order and produce bitwise-identical
  /// snapshots (docs/overlap.md), so it is excluded from
  /// config_fingerprint and checkpoints move freely between settings.
  /// Must be set identically on every rank (the stage order is collective).
  bool overlap = false;

  /// Invariant sentinel; excluded from config_fingerprint (it observes the
  /// dynamics, it does not change them).  Must be set identically on every
  /// rank (the check is collective).
  SentinelConfig sentinel;

  /// When non-empty, the constructor restores state from a checkpoint
  /// instead of running the initial decomposition + force cycle: either a
  /// committed checkpoint directory (containing MANIFEST.json) or a parent
  /// directory, in which case the newest committed checkpoint is used.
  /// The `local` particles passed to the constructor are discarded.  Must
  /// be set identically on every rank.
  std::string restore_from;

  /// Intra-rank pool size applied at construction (0 = leave the global
  /// pool as is).  TaskPool::resize is a no-op when the size is unchanged,
  /// so every parx rank-thread applying the same config is safe; ranks
  /// share the process-wide pool, they do not get one each.
  std::size_t pool_threads = 0;

  /// When non-empty (and the telemetry layer is compiled in), every step()
  /// appends one StepRecord JSON line to this file: phase times under the
  /// Table I row names (max over ranks), achieved flop rate from the
  /// interaction counts, load imbalance, pool activity and per-phase
  /// traffic.  The aggregation performs a few extra small allreduces per
  /// step, so leave it empty for overhead-sensitive runs.  Must be set
  /// identically on every rank (the aggregation is collective); rank 0
  /// writes the file.
  std::string step_report_path;

  /// fsync the step-report file after each appended line (the append is
  /// always flushed to the OS either way, so a killed *process* loses
  /// nothing; fsync additionally survives a killed machine).  Excluded
  /// from config_fingerprint.
  bool step_report_fsync = false;

  /// Service-mode label ("job-<id>") stamped on every StepRecord and used
  /// as the live-endpoint topic so `watch` clients only see their job's
  /// stream.  Empty for solo runs (records carry no job field and go to
  /// every subscriber).  Excluded from config_fingerprint: a label is
  /// reporting plumbing, not physics.
  std::string job_label;

  double rcut() const { return pm.effective_rcut(); }
};

class ParallelSimulation {
 public:
  /// Collective.  `local` is this rank's initial share of the particles
  /// (any distribution; the first domain decomposition redistributes).
  ParallelSimulation(parx::Comm& world, ParallelSimConfig config,
                     std::vector<Particle> local, double t_start);

  /// Collective: advance the clock to t_next.
  void step(double t_next);

  /// Apply the pending long-range closing half-kick from the cached
  /// Particle::acc_l (evaluated at the current positions by the pipelined
  /// PM cycle).  Local: no communication, no recompute.
  void synchronize();

  /// Collective: write a checkpoint of the current state under `dir`,
  /// pruning to the newest `keep_last` committed checkpoints (0 = keep
  /// all).  Restoring it reproduces this simulation bitwise -- including a
  /// pending long-range half-kick and the domain-decomposition history --
  /// provided cost_metric is kInteractions (wall-time cost weighting is
  /// inherently nondeterministic).  Throws ckpt::CkptError on failure.
  void checkpoint(const std::string& dir, std::size_t keep_last = 2);

  /// Collective: replace the full simulation state with the committed
  /// checkpoint at `ckpt_path`.  Throws ckpt::CkptError if the checkpoint
  /// is corrupt, was written by a different rank grid, or its config
  /// fingerprint disagrees with this simulation's config.
  void restore_checkpoint(const std::string& ckpt_path);

  /// Completed steps (restored across checkpoint round trips).
  std::uint64_t step_index() const { return step_counter_; }

  parx::Comm& comm() { return world_; }

  double clock() const { return clock_; }
  std::span<const Particle> local() const { return particles_; }
  /// Mutable view of this rank's particles, for tests that inject
  /// corruption the sentinel must catch.  Collective structure (counts,
  /// decomposition) must not be changed through it.
  std::span<Particle> local_mutable() { return particles_; }
  std::vector<Particle> take_local() && { return std::move(particles_); }
  const domain::Decomposition& decomposition() const { return decomp_; }

  /// Comm/compute overlap telemetry of the combined force cycle.  Phase
  /// rows in the TimingBreakdowns are *busy* time (per-phase stopwatch
  /// segments of this rank's thread); under overlap a drain row measures
  /// only the residual stall, not the full message flight, so wall time
  /// must come from window_s, never from summing rows across cycles.
  struct OverlapStats {
    bool enabled = false;   ///< config overlap switch at measurement time
    double window_s = 0;    ///< wall seconds of the combined force cycle
    double blocked_s = 0;   ///< parx completion-wait stall inside the window
    double inflight_s = 0;  ///< sum of post-to-drain flight windows (0 when off)
  };

  struct StepReport {
    TimingBreakdown pm, pp, dd;      ///< this rank's phase seconds (busy time)
    tree::TraversalStats pp_stats;   ///< this rank's traversal statistics
    std::size_t n_ghost_imported = 0;
    /// Per-group cost attribution of the final PP cycle (walk/force
    /// seconds, interactions, ghost imports per group) -- rank-local, in
    /// tree.groups(ncrit) order; the load-balance v2 input.
    std::vector<tree::GroupCost> pp_group_costs;
    /// Work-donation activity, accumulated over the step's PP cycles
    /// (donor-side counts; every rank sees the same plan, so the transfer
    /// list is identical everywhere).
    std::uint64_t donated_groups = 0;
    std::uint64_t donated_interactions = 0;
    std::vector<domain::DonationTransfer> donation_transfers;
    /// max/mean of the published per-rank predicted costs that fed the
    /// last donation plan (0 until costs have been published).
    double predicted_imbalance = 0;
    OverlapStats overlap;            ///< final-substep combined force cycle
    /// Global traffic per phase bucket, accumulated from ledger epochs.
    /// Observed on rank 0 only (the ledger is global); empty elsewhere
    /// and when step reporting is off.
    parx::TrafficCounts traffic_dd, traffic_pp, traffic_pm;
  };
  const StepReport& last_step() const { return report_; }

  /// The cross-rank aggregate written for the most recent step.  Valid on
  /// every rank (the aggregation is collective) once a step has run with
  /// step reporting enabled.
  const telemetry::StepRecord& last_record() const { return record_; }

 private:
  void domain_cycle(std::uint64_t substep_id);

  /// In-flight ghost exchange posted by pp_start.
  struct GhostWork {
    parx::AlltoallvHandle<Vec3> hpos;
    parx::AlltoallvHandle<double> hmass;
    std::vector<Vec3> pos;      ///< local positions; ghosts appended by pp_finish
    std::vector<double> mass;
  };

  /// PP cycle, split at its communication boundary so the PM stages can
  /// run while the ghosts are in flight.  pp_start selects the boundary
  /// particles and posts the ghost all-to-alls; pp_finish drains them in
  /// arrival order (concatenating in rank order, so results are identical
  /// to the blocking exchange), builds the tree and computes acc_s.
  GhostWork pp_start();
  void pp_finish(GhostWork& g);
  /// Collective donation exchange inside pp_finish: ship the deferred
  /// groups assigned by `plan`, evaluate inbound requests, gather
  /// accelerations back, and evaluate unassigned leftovers locally.
  void donation_cycle(const tree::Octree& octree, const tree::TraversalParams& tp,
                      std::size_t n_local, std::vector<tree::DeferredGroup>& deferred,
                      const domain::DonationPlan& plan, std::span<Vec3> acc);
  /// Collective: publish this rank's deterministic PP cost (summed group
  /// interactions) for the next cycle's donation plan; updates
  /// report_.predicted_imbalance.
  void publish_rank_costs();
  /// Exactly pp_start + pp_finish under one traffic epoch.
  void pp_force_cycle();

  /// The final substep's PP cycle plus the pipelined PM cycle (acc_l at
  /// the current positions), sequential or interleaved per
  /// config_.overlap; fills report_.overlap either way.
  void combined_force_cycle(std::uint64_t fault_step);

  void write_step_record();
  /// Collective: capture the sentinel baselines from the current state.
  void sentinel_baseline();
  /// Collective: verify the invariants; throws SentinelError on every rank
  /// when one is violated.
  void sentinel_check();

  /// True when step() should aggregate and append StepRecords.
  bool reporting() const {
    return telemetry::enabled() && !config_.step_report_path.empty();
  }

  parx::Comm world_;
  ParallelSimConfig config_;
  pm::ParallelPm pm_;
  domain::BoundarySmoother smoother_;
  domain::Decomposition decomp_;
  std::vector<Particle> particles_;
  double clock_;
  double pending_long_kick_ = 0;
  double last_force_cost_ = -1;  ///< <0: use particle count as proxy
  /// Published per-rank predicted PP costs (interaction counts) from the
  /// previous PP cycle; input to the donation plan.  Empty until the first
  /// cycle publishes, and deliberately NOT checkpointed: a restored run's
  /// first cycle simply runs without donation (placement may differ from
  /// the uninterrupted run, the result bits never do).
  std::vector<std::uint64_t> rank_pred_;
  std::uint64_t substep_counter_ = 0;
  std::uint64_t step_counter_ = 0;
  StepReport report_;
  telemetry::StepRecord record_;
  // Sentinel baselines (captured at construction and after each restore).
  double sentinel_count0_ = -1;  ///< <0: baseline not yet captured
  double sentinel_mass0_ = 0;
  std::array<double, 3> sentinel_prev_mom_{};
  // Pool counters at the previous report, to delta per step.
  std::uint64_t pool_prev_loops_ = 0, pool_prev_chunks_ = 0, pool_prev_steals_ = 0;
  // Transport counters at the previous report, same treatment.
  std::uint64_t tp_prev_retransmits_ = 0, tp_prev_drops_ = 0, tp_prev_corrupt_ = 0;
};

/// Stable digest of every config field that affects the dynamics (rank
/// grid, force/integration parameters, PM setup, sampling seed, cost
/// metric, cosmology).  Recorded in checkpoint manifests and verified on
/// restore, so a checkpoint cannot silently resume under different
/// physics.  Reporting/paths (step_report_path, restore_from,
/// pool_threads) are excluded.
std::uint64_t config_fingerprint(const ParallelSimConfig& config);

/// Phase-wise max over ranks (the paper reports the slowest rank's time).
TimingBreakdown allreduce_max(parx::Comm& comm, const TimingBreakdown& local);

/// Sum of traversal statistics over ranks.
tree::TraversalStats allreduce_sum(parx::Comm& comm, const tree::TraversalStats& local);

}  // namespace greem::core
