#include "core/parallel_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "ckpt/checkpoint.hpp"
#include "ckpt/hash.hpp"
#include "domain/exchange.hpp"
#include "parx/fault.hpp"
#include "pp/kernels.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/live_endpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "tree/donation.hpp"
#include "tree/ghost.hpp"
#include "tree/octree.hpp"
#include "util/parallel_for.hpp"
#include "util/task_pool.hpp"

namespace greem::core {

ParallelSimulation::ParallelSimulation(parx::Comm& world, ParallelSimConfig config,
                                       std::vector<Particle> local, double t_start)
    : world_(world),
      config_(config),
      pm_(world, config.pm),
      particles_(std::move(local)),
      clock_(t_start) {
  if (config_.dims[0] * config_.dims[1] * config_.dims[2] != world.size())
    throw std::invalid_argument("ParallelSimulation: dims product != comm size");
  if (config_.pool_threads > 0) set_num_threads(config_.pool_threads);
  parx::set_fault_context(0, parx::FaultPhase::kAny);
  if (!config_.restore_from.empty()) {
    // Resolve either a checkpoint directory itself or a parent dir.
    std::string path = config_.restore_from;
    if (!ckpt::read_manifest(path)) {
      auto latest = ckpt::find_latest(path);
      if (!latest)
        throw ckpt::CkptError("restore_from: no committed checkpoint under " + path);
      path = *latest;
    }
    particles_.clear();
    restore_checkpoint(path);
    return;
  }
  decomp_ = domain::Decomposition::uniform(config_.dims);
  // Initial decomposition + forces: one DD cycle, then the combined PP+PM
  // cycle seeds both cached accelerations (acc_s for the substep kicks,
  // acc_l for the first step's long-range kick) at the initial positions.
  domain_cycle(substep_counter_++);
  combined_force_cycle(0);
  parx::set_fault_context(0, parx::FaultPhase::kAny);
  sentinel_baseline();
}

namespace {

/// Local sentinel tallies: [count, non-finite fields, mass, Px, Py, Pz].
std::array<double, 6> sentinel_tally(std::span<const Particle> ps) {
  std::array<double, 6> v{};
  v[0] = static_cast<double>(ps.size());
  for (const auto& p : ps) {
    int bad = 0;
    for (std::size_t a = 0; a < 3; ++a) {
      if (!std::isfinite(p.pos[a])) ++bad;
      if (!std::isfinite(p.mom[a])) ++bad;
    }
    if (!std::isfinite(p.mass)) ++bad;
    if (bad > 0) {
      v[1] += bad;
      continue;  // keep NaN out of the mass/momentum sums
    }
    v[2] += p.mass;
    for (std::size_t a = 0; a < 3; ++a) v[3 + a] += p.mass * p.mom[a];
  }
  return v;
}

}  // namespace

void ParallelSimulation::sentinel_baseline() {
  if (config_.sentinel.every <= 0) return;
  auto v = sentinel_tally(particles_);
  world_.allreduce_sum(std::span<double>(v.data(), v.size()));
  sentinel_count0_ = v[0];
  sentinel_mass0_ = v[2];
  sentinel_prev_mom_ = {v[3], v[4], v[5]};
}

void ParallelSimulation::sentinel_check() {
  telemetry::Span span("sim/sentinel");
  telemetry::Registry::global().counter("sentinel/checks").add();
  auto v = sentinel_tally(particles_);
  world_.allreduce_sum(std::span<double>(v.data(), v.size()));

  // Every rank compares the same reduced values, so either all ranks pass
  // or all throw the identical SentinelError: the violation is collective
  // and the recovery rendezvous cannot deadlock on it.
  std::ostringstream why;
  if (v[1] != 0) {
    why << "sentinel: " << v[1] << " non-finite particle field(s)";
  } else if (v[0] != sentinel_count0_) {
    why << "sentinel: global particle count " << static_cast<std::uint64_t>(v[0])
        << " != baseline " << static_cast<std::uint64_t>(sentinel_count0_);
  } else if (std::abs(v[2] - sentinel_mass0_) >
             config_.sentinel.max_mass_drift * std::abs(sentinel_mass0_)) {
    why << "sentinel: total mass drifted to " << v[2] << " from " << sentinel_mass0_;
  } else {
    for (std::size_t a = 0; a < 3; ++a) {
      if (std::abs(v[3 + a] - sentinel_prev_mom_[a]) > config_.sentinel.max_momentum_drift) {
        why << "sentinel: momentum component " << a << " drifted by "
            << v[3 + a] - sentinel_prev_mom_[a] << " in one check interval";
        break;
      }
    }
  }
  if (!why.str().empty()) {
    telemetry::Registry::global().counter("sentinel/violations").add();
    // Post-mortem hooks before the (collective, identical-on-every-rank)
    // throw: mark the trip in the flight recorder, dump the recent event
    // history once, and tell any live-endpoint subscribers why.
    telemetry::flight_record_mark("sentinel/violation",
                                  static_cast<std::int64_t>(step_counter_));
    if (world_.rank() == 0) {
      telemetry::dump_flight_recorder();
      telemetry::LiveEndpoint::global().publish_event("sentinel", why.str());
    }
    throw SentinelError(why.str() + " at step " + std::to_string(step_counter_));
  }
  sentinel_prev_mom_ = {v[3], v[4], v[5]};
}

void ParallelSimulation::domain_cycle(std::uint64_t substep_id) {
  telemetry::Span span("sim/domain_cycle");
  std::optional<parx::TrafficLedger::Epoch> ep;
  if (reporting() && world_.rank() == 0) ep.emplace(world_.ledger().begin_phase("dd"));
  Stopwatch sw;
  auto pos = positions_of(particles_);
  domain::Decomposition fresh;
  if (config_.lb_mode == LoadBalanceMode::kGroupCost) {
    // Load-balance v2: per-particle weights from the scattered GroupCost
    // attribution of the previous PP cycle.  Before the first cycle every
    // lb_w is 0 and the weighted path degenerates to uniform-density
    // sampling (same collective sequence either way).
    std::vector<double> w(particles_.size());
    for (std::size_t i = 0; i < particles_.size(); ++i) w[i] = particles_[i].lb_w;
    fresh = domain::sample_and_decompose_weighted(world_, config_.dims, pos, w,
                                                  config_.sampling, substep_id);
  } else {
    // v1: one scalar cost per rank, the measured force cost (particle
    // count before the first measurement exists).
    const double cost =
        last_force_cost_ >= 0 ? last_force_cost_ : static_cast<double>(particles_.size());
    fresh = domain::sample_and_decompose(world_, config_.dims, pos, cost,
                                         config_.sampling, substep_id);
  }
  decomp_ = smoother_.smooth(fresh);
  report_.dd.add("sampling method", sw.seconds());

  sw.restart();
  const auto dest = domain::destinations(decomp_, pos);
  particles_ = domain::exchange_by_rank<Particle>(world_, particles_, dest);
  report_.dd.add("particle exchange", sw.seconds());

  pm_.update_domain(decomp_.box_of(world_.rank()));
  if (ep) report_.traffic_dd += ep->delta();
}

ParallelSimulation::GhostWork ParallelSimulation::pp_start() {
  telemetry::Span span("sim/pp_start");
  const double rcut = config_.rcut();
  Stopwatch sw;

  // "local tree": select the boundary particles every neighbor needs.
  GhostWork g;
  g.pos = positions_of(particles_);
  g.mass = masses_of(particles_);
  const auto domains = decomp_.boxes();
  auto exports = tree::select_ghosts(g.pos, g.mass, domains, world_.rank(), rcut);
  report_.pp.add("local tree", sw.seconds());

  // "communication" (posting half): ghost sends go out, receives are
  // posted; the payloads fly while the caller does other work.
  sw.restart();
  g.hpos = world_.ialltoallv(std::move(exports.pos));
  g.hmass = world_.ialltoallv(std::move(exports.mass));
  report_.pp.add("communication", sw.seconds());
  return g;
}

void ParallelSimulation::pp_finish(GhostWork& g) {
  telemetry::Span span("sim/pp_finish");
  Stopwatch sw;

  // "communication" (draining half): whichever ghost payload lands first
  // is stored first; `out` is indexed by source rank, so arrival order
  // never changes the result.
  auto gpos = world_.wait_alltoallv(g.hpos);
  auto gmass = world_.wait_alltoallv(g.hmass);
  std::size_t n_ghost = 0;
  for (const auto& v : gpos) n_ghost += v.size();
  report_.n_ghost_imported += n_ghost;
  report_.pp.add("communication", sw.seconds());

  // "tree construction": octree over locals followed by ghosts in rank
  // order (the canonical concatenation, independent of arrival order).
  sw.restart();
  const std::size_t n_local = particles_.size();
  auto& pos = g.pos;
  auto& mass = g.mass;
  pos.reserve(n_local + n_ghost);
  mass.reserve(n_local + n_ghost);
  for (std::size_t r = 0; r < gpos.size(); ++r) {
    pos.insert(pos.end(), gpos[r].begin(), gpos[r].end());
    mass.insert(mass.end(), gmass[r].begin(), gmass[r].end());
  }
  tree::Octree octree(pos, mass, {config_.leaf_capacity, 21});
  report_.pp.add("tree construction", sw.seconds());

  // "tree traversal" + "force calculation": groups walk, kernel.  When a
  // donation plan is active (published costs from the previous cycle put
  // this rank above the trigger), large groups defer their kernel to the
  // donation exchange below.  The plan is a pure function of the
  // allgathered cost vector, so every rank agrees on it without talking.
  tree::TraversalParams tp;
  tp.theta = config_.theta;
  tp.rcut = config_.rcut();
  tp.ncrit = config_.ncrit;
  tp.eps2 = config_.eps * config_.eps;
  tp.kernel = config_.kernel;

  const bool donation_on = config_.donation.enabled && world_.size() > 1 &&
                           config_.kernel != tree::KernelKind::kNewtonQuad &&
                           rank_pred_.size() == static_cast<std::size_t>(world_.size());
  domain::DonationPlan plan;
  if (donation_on) plan = domain::plan_donation(rank_pred_, config_.donation);
  std::uint64_t defer_min = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t my_budget = plan.active() ? plan.donor_budget(world_.rank()) : 0;
  if (my_budget > 0) {
    // Defer groups big enough to matter: at least the shippable minimum,
    // and no finer than ~1/256th of the export budget so the deferred set
    // (whose interaction lists are held in memory) stays a small multiple
    // of what will actually ship.  Both inputs are deterministic.
    defer_min = std::max<std::uint64_t>(
        std::max<std::uint64_t>(1, config_.donation.min_transfer_interactions),
        my_budget / 256);
  }

  std::vector<Vec3> acc(pos.size(), Vec3{});
  tree::TraversalTimes times;
  std::vector<tree::DeferredGroup> deferred;
  auto stats = tree::tree_accelerations_targets(octree, tp, n_local, acc, {}, &times,
                                                &report_.pp_group_costs, defer_min,
                                                plan.active() ? &deferred : nullptr);
  report_.pp.add("tree traversal", times.traverse_s);
  report_.pp.add("force calculation", times.force_s);
  report_.pp_stats.merge(stats);

  if (plan.active()) donation_cycle(octree, tp, n_local, deferred, plan, acc);

  // Scatter the per-group cost onto the group's local members: each local
  // particle carries its share of its group's measured cost as the
  // sampling weight of the next domain decomposition (load-balance v2).
  if (config_.lb_mode == LoadBalanceMode::kGroupCost) {
    for (const auto& gc : report_.pp_group_costs) {
      if (gc.ni == 0) continue;
      const double w = (config_.cost_metric == CostMetric::kInteractions
                            ? static_cast<double>(gc.interactions)
                            : gc.walk_s + gc.force_s) /
                       static_cast<double>(gc.ni);
      const tree::TreeNode& node = octree.nodes()[gc.node];
      for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
        const std::uint32_t orig = octree.original_index(i);
        if (orig < n_local) particles_[orig].lb_w = w;
      }
    }
  }

  last_force_cost_ = config_.cost_metric == CostMetric::kInteractions
                         ? static_cast<double>(stats.interactions)
                         : times.traverse_s + times.force_s;

  if (config_.donation.enabled) publish_rank_costs();

  for (std::size_t i = 0; i < n_local; ++i) particles_[i].acc_s = acc[i];
}

void ParallelSimulation::donation_cycle(const tree::Octree& octree,
                                        const tree::TraversalParams& tp, std::size_t n_local,
                                        std::vector<tree::DeferredGroup>& deferred,
                                        const domain::DonationPlan& plan,
                                        std::span<Vec3> acc) {
  telemetry::Span span("sim/donation");
  Stopwatch sw;

  // Donor: hand deferred groups (heaviest first, gidx breaking ties) to
  // this rank's transfers in plan order; each transfer takes groups until
  // its interaction budget is spent.  Deterministic: the deferred set, the
  // order, and the plan are all pool-size invariant.
  const auto my_transfers = plan.transfers_from(world_.rank());
  std::vector<std::size_t> order(deferred.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (deferred[a].interactions != deferred[b].interactions)
      return deferred[a].interactions > deferred[b].interactions;
    return deferred[a].gidx < deferred[b].gidx;
  });
  std::vector<std::vector<std::size_t>> assigned(static_cast<std::size_t>(world_.size()));
  std::vector<char> shipped(deferred.size(), 0);
  std::size_t ti = 0;
  std::int64_t budget =
      my_transfers.empty() ? 0 : static_cast<std::int64_t>(my_transfers[0].interactions);
  for (std::size_t idx : order) {
    if (ti >= my_transfers.size()) break;
    assigned[static_cast<std::size_t>(my_transfers[ti].donee)].push_back(idx);
    shipped[idx] = 1;
    report_.donated_groups += 1;
    report_.donated_interactions += deferred[idx].interactions;
    budget -= static_cast<std::int64_t>(deferred[idx].interactions);
    if (budget <= 0) {
      ++ti;
      budget = ti < my_transfers.size()
                   ? static_cast<std::int64_t>(my_transfers[ti].interactions)
                   : 0;
    }
  }
  if constexpr (telemetry::enabled()) {
    auto& reg = telemetry::Registry::global();
    std::uint64_t my_groups = 0, my_inter = 0;
    for (std::size_t i = 0; i < deferred.size(); ++i)
      if (shipped[i]) {
        ++my_groups;
        my_inter += deferred[i].interactions;
      }
    if (my_groups) {
      reg.counter("lb/donated_groups").add(my_groups);
      reg.counter("lb/donated_interactions").add(my_inter);
    }
  }
  report_.donation_transfers.insert(report_.donation_transfers.end(), plan.transfers.begin(),
                                    plan.transfers.end());

  // Ship requests (collective: every rank participates, most with empty
  // payloads).
  std::vector<std::vector<double>> req(static_cast<std::size_t>(world_.size()));
  for (int r = 0; r < world_.size(); ++r)
    if (!assigned[static_cast<std::size_t>(r)].empty())
      req[static_cast<std::size_t>(r)] =
          tree::pack_donation(octree, deferred, assigned[static_cast<std::size_t>(r)]);
  auto inbox = world_.alltoallv(std::move(req));
  report_.pp.add("communication", sw.seconds());

  // Donee: evaluate inbound groups with the exact kernel dispatch the
  // donor's traversal would have used; the seconds land in this rank's
  // "force calculation" row (that is the point: the work moved here).
  sw.restart();
  double eval_s = 0;
  std::vector<std::vector<double>> replies(static_cast<std::size_t>(world_.size()));
  for (std::size_t r = 0; r < inbox.size(); ++r)
    if (!inbox[r].empty()) replies[r] = tree::evaluate_donation(inbox[r], tp, &eval_s);
  report_.pp.add("force calculation", eval_s);

  sw.restart();
  auto back = world_.alltoallv(std::move(replies));
  report_.pp.add("communication", sw.seconds());

  // Donor: fold returned accelerations into the local particles (groups
  // own disjoint particle ranges, and ghost members are simply skipped)
  // and patch the cost record with the donee-measured kernel seconds.
  sw.restart();
  for (std::size_t r = 0; r < back.size(); ++r) {
    if (back[r].empty()) continue;
    for (auto& res : tree::unpack_donation_reply(back[r])) {
      auto it = std::lower_bound(deferred.begin(), deferred.end(), res.gidx,
                                 [](const tree::DeferredGroup& d, std::uint32_t g) {
                                   return d.gidx < g;
                                 });
      const tree::DeferredGroup& d = *it;
      for (std::uint32_t i = 0; i < d.count; ++i) {
        const std::uint32_t orig = octree.original_index(d.first + i);
        if (orig < n_local) acc[orig] += res.acc[i];
      }
      report_.pp_group_costs[res.gidx].force_s = res.force_s;
    }
  }

  // Leftovers: deferred groups the plan did not cover are evaluated
  // locally, in parallel (disjoint scatter, like the traversal).
  std::vector<std::size_t> leftovers;
  for (std::size_t i = 0; i < deferred.size(); ++i)
    if (!shipped[i]) leftovers.push_back(i);
  if (!leftovers.empty()) {
    struct Slot {
      double force_s = 0;
      std::vector<Vec3> group_acc;
    };
    std::vector<Slot> slots(max_parallel_slots());
    parallel_for_dynamic(0, leftovers.size(), 1,
                         [&](std::size_t lo, std::size_t hi, unsigned slot) {
      Slot& sc = slots[slot];
      Stopwatch gsw;
      for (std::size_t k = lo; k < hi; ++k) {
        tree::DeferredGroup& d = deferred[leftovers[k]];
        gsw.restart();
        sc.group_acc.assign(d.count, Vec3{});
        const std::span<const Vec3> targets = octree.sorted_pos().subspan(d.first, d.count);
        tree::evaluate_group_kernel(targets, d.list, tp, sc.group_acc);
        const double fs = gsw.seconds();
        sc.force_s += fs;
        report_.pp_group_costs[d.gidx].force_s = fs;
        for (std::uint32_t i = 0; i < d.count; ++i) {
          const std::uint32_t orig = octree.original_index(d.first + i);
          if (orig < n_local) acc[orig] += sc.group_acc[i];
        }
      }
    });
    double leftover_s = 0;
    for (const Slot& s : slots) leftover_s += s.force_s;
    report_.pp.add("force calculation", leftover_s);
  }
}

void ParallelSimulation::publish_rank_costs() {
  // Deterministic cost unit: summed group interactions (never wall time),
  // so the plan -- and therefore which collective exchanges run -- is
  // identical across thread counts and reruns.
  std::uint64_t mine = 0;
  for (const auto& gc : report_.pp_group_costs) mine += gc.interactions;
  rank_pred_ = world_.allgatherv(std::span<const std::uint64_t>(&mine, 1));

  std::uint64_t total = 0, maxc = 0;
  for (std::uint64_t c : rank_pred_) {
    total += c;
    maxc = std::max(maxc, c);
  }
  const double mean = static_cast<double>(total) / static_cast<double>(rank_pred_.size());
  report_.predicted_imbalance = mean > 0 ? static_cast<double>(maxc) / mean : 0.0;
  if constexpr (telemetry::enabled())
    telemetry::Registry::global()
        .histogram("lb/predicted_imbalance")
        .record(report_.predicted_imbalance);
}

void ParallelSimulation::pp_force_cycle() {
  telemetry::Span span("sim/pp_cycle");
  std::optional<parx::TrafficLedger::Epoch> ep;
  if (reporting() && world_.rank() == 0) ep.emplace(world_.ledger().begin_phase("pp"));
  GhostWork g = pp_start();
  pp_finish(g);
  if (ep) report_.traffic_pp += ep->delta();
}

void ParallelSimulation::combined_force_cycle(std::uint64_t fault_step) {
  telemetry::Span span("sim/force_cycle");
  OverlapStats& ov = report_.overlap;
  ov.enabled = config_.overlap;
  Stopwatch wall;
  const double blocked0 = parx::thread_blocked_seconds();

  // Traffic epochs per section: sends are recorded at post time, so each
  // section's delta lands in the right bucket; only transport-thread
  // retransmissions can blur across a boundary (totals stay exact).
  const bool track = reporting() && world_.rank() == 0;
  auto with_epoch = [&](const char* phase, parx::TrafficCounts& into, auto&& fn) {
    std::optional<parx::TrafficLedger::Epoch> ep;
    if (track) ep.emplace(world_.ledger().begin_phase(phase));
    fn();
    if (ep) into += ep->delta();
  };

  auto pos = positions_of(particles_);
  auto mass = masses_of(particles_);

  // The drift since the exchange can carry fast particles beyond the
  // 2-cell pad that update_domain() assumed around the domain box, which
  // would run the density stencil off the local mesh.  Re-announce the PM
  // regions from the box that actually covers the drifted positions (a
  // collective, like the exchange itself).  In a healthy step the union
  // equals the domain box and the regions are unchanged.
  {
    Box pm_box = decomp_.box_of(world_.rank());
    for (const Vec3& q : pos) {
      for (std::size_t a = 0; a < 3; ++a) {
        pm_box.lo[a] = std::min(pm_box.lo[a], q[a]);
        pm_box.hi[a] = std::max(pm_box.hi[a], q[a]);
      }
    }
    pm_.update_domain(pm_box);
  }

  std::vector<Vec3> accl(particles_.size(), Vec3{});
  auto store_accl = [&] {
    for (std::size_t i = 0; i < particles_.size(); ++i) particles_[i].acc_l = accl[i];
  };

  if (!config_.overlap) {
    // Sequential schedule: the full PP cycle, then the full PM cycle --
    // the same staged pieces the overlapped path runs, drained in place.
    parx::set_fault_context(fault_step, parx::FaultPhase::kPP);
    pp_force_cycle();
    parx::set_fault_context(fault_step, parx::FaultPhase::kPM);
    telemetry::Span pm_span("sim/pm_cycle");
    with_epoch("pm", report_.traffic_pm, [&] {
      pm_.accelerations(pos, mass, accl, &report_.pm);
      store_accl();
    });
  } else {
    // Interleaved schedule.  Every stage is the identical pure function of
    // the same inputs as in the sequential path and all drains unpack in
    // canonical rank order, so only the stalls move -- never a result bit.
    pm::ParallelPm::Cycle c;
    GhostWork g;

    parx::set_fault_context(fault_step, parx::FaultPhase::kPM);
    with_epoch("pm", report_.traffic_pm,
               [&] { c = pm_.start_cycle(pos, mass, &report_.pm); });
    const double t_gather_posted = wall.seconds();

    parx::set_fault_context(fault_step, parx::FaultPhase::kPP);
    with_epoch("pp", report_.traffic_pp, [&] { g = pp_start(); });
    const double t_ghost_posted = wall.seconds();

    parx::set_fault_context(fault_step, parx::FaultPhase::kPM);
    ov.inflight_s += wall.seconds() - t_gather_posted;
    with_epoch("pm", report_.traffic_pm, [&] { pm_.advance_fft(c, &report_.pm); });
    const double t_scatter_posted = wall.seconds();

    parx::set_fault_context(fault_step, parx::FaultPhase::kPP);
    ov.inflight_s += wall.seconds() - t_ghost_posted;
    with_epoch("pp", report_.traffic_pp, [&] { pp_finish(g); });

    parx::set_fault_context(fault_step, parx::FaultPhase::kPM);
    ov.inflight_s += wall.seconds() - t_scatter_posted;
    with_epoch("pm", report_.traffic_pm, [&] {
      pm_.finish_cycle(c, pos, accl, &report_.pm);
      store_accl();
    });
  }

  ov.window_s = wall.seconds();
  ov.blocked_s = parx::thread_blocked_seconds() - blocked0;
}

void ParallelSimulation::step(double t_next) {
  telemetry::Span span("sim/step");
  const double t0 = clock_;
  const double t1 = t_next;
  const TimeMetric& m = config_.metric;
  report_ = StepReport{};

  // Fault-injection addressing: this is step `step_counter_ + 1`, and each
  // phase below announces itself so a FaultSpec can target it.
  const std::uint64_t fault_step = step_counter_ + 1;

  const int nsub = config_.nsub;
  for (int s = 0; s < nsub; ++s) {
    // Domain decomposition cycle (paper: once per PP cycle).
    parx::set_fault_context(fault_step, parx::FaultPhase::kDD);
    domain_cycle(substep_counter_++);

    if (s == 0) {
      // Long-range kick: closing half of the previous step + opening half
      // of this one, from the cached PM acceleration (evaluated by the
      // previous step's pipelined PM cycle at these same positions --
      // acc_l rode through the exchange with the particle).
      const double k = pending_long_kick_ + 0.5 * m.kick(t0, t1);
      for (auto& p : particles_) p.mom += p.acc_l * k;
      pending_long_kick_ = 0.5 * m.kick(t0, t1);
    }

    const double ts0 = t0 + (t1 - t0) * static_cast<double>(s) / nsub;
    const double ts1 = t0 + (t1 - t0) * static_cast<double>(s + 1) / nsub;
    const double tsm = 0.5 * (ts0 + ts1);

    const double k_open = m.kick(ts0, tsm);
    for (auto& p : particles_) p.mom += p.acc_s * k_open;

    Stopwatch sw;
    const double d = m.drift(ts0, ts1);
    for (auto& p : particles_) p.pos = wrap01(p.pos + p.mom * d);
    report_.dd.add("position update", sw.seconds());

    if (s + 1 == nsub) {
      // Final substep: the PP cycle plus the pipelined PM cycle for the
      // next step's long kick, overlapped when config_.overlap is on.
      combined_force_cycle(fault_step);
    } else {
      parx::set_fault_context(fault_step, parx::FaultPhase::kPP);
      pp_force_cycle();
    }

    const double k_close = m.kick(tsm, ts1);
    for (auto& p : particles_) p.mom += p.acc_s * k_close;
  }

  clock_ = t1;
  ++step_counter_;
  parx::set_fault_context(fault_step, parx::FaultPhase::kAny);
  if (config_.sentinel.every > 0 &&
      step_counter_ % static_cast<std::uint64_t>(config_.sentinel.every) == 0)
    sentinel_check();
  if (reporting()) write_step_record();
}

void ParallelSimulation::checkpoint(const std::string& dir, std::size_t keep_last) {
  parx::set_fault_context(step_counter_, parx::FaultPhase::kCkpt);
  ckpt::GlobalState gs;
  gs.step = step_counter_;
  gs.substep = substep_counter_;
  gs.clock = clock_;
  gs.pending_long_kick = pending_long_kick_;
  gs.config_fingerprint = config_fingerprint(config_);
  gs.dims = config_.dims;
  gs.decomp_flat = decomp_.flatten();
  gs.smoother_history = smoother_.history();

  ckpt::RankShard shard;
  shard.payload = std::as_bytes(std::span<const Particle>(particles_));
  shard.n_items = particles_.size();
  shard.rank_cost = last_force_cost_;
  ckpt::write_checkpoint(world_, dir, gs, shard, keep_last);
  parx::set_fault_context(step_counter_, parx::FaultPhase::kAny);
}

void ParallelSimulation::restore_checkpoint(const std::string& ckpt_path) {
  // A restore must never be the target of an injected fault: it is the
  // recovery path, and re-faulting it would make rollback livelock.
  parx::set_fault_context(parx::kNoFaultStep, parx::FaultPhase::kAny);
  ckpt::Restored r = ckpt::read_checkpoint(world_, ckpt_path);

  const auto& gs = r.manifest.state;
  if (gs.config_fingerprint != config_fingerprint(config_))
    throw ckpt::CkptError(
        "restore: checkpoint config fingerprint does not match this simulation");
  if (gs.dims != config_.dims)
    throw ckpt::CkptError("restore: checkpoint rank grid differs from config dims");
  if (r.payload.size() != r.n_items * sizeof(Particle))
    throw ckpt::CkptError("restore: shard payload size is not a whole particle count");

  particles_.resize(r.n_items);
  std::memcpy(particles_.data(), r.payload.data(), r.payload.size());
  clock_ = gs.clock;
  pending_long_kick_ = gs.pending_long_kick;
  substep_counter_ = gs.substep;
  step_counter_ = gs.step;
  last_force_cost_ = r.rank_cost;
  decomp_ = domain::Decomposition::unflatten(gs.dims, gs.decomp_flat);
  smoother_.set_history(gs.smoother_history);
  pm_.update_domain(decomp_.box_of(world_.rank()));
  report_ = StepReport{};
  // Published donation costs are not checkpointed: the first post-restore
  // cycle runs without donation (lb_w rode the particle payload, so the
  // *cuts* still reproduce exactly; only work placement differs, and
  // placement never changes result bits).
  rank_pred_.clear();
  sentinel_baseline();
  parx::set_fault_context(step_counter_, parx::FaultPhase::kAny);
}

void ParallelSimulation::write_step_record() {
  telemetry::Span span("sim/step_report");
  telemetry::StepRecord rec;
  rec.job = config_.job_label;
  rec.step = step_counter_;
  rec.t = clock_;
  rec.ranks = world_.size();
  rec.nsub = config_.nsub;
  rec.n_particles = world_.allreduce_sum(static_cast<std::uint64_t>(particles_.size()));

  // Phase times follow the paper's convention: the slowest rank sets the
  // step time, so report the phase-wise max.
  rec.pm = allreduce_max(world_, report_.pm);
  rec.pp = allreduce_max(world_, report_.pp);
  rec.dd = allreduce_max(world_, report_.dd);

  const double pp_local =
      report_.pp.get("tree traversal") + report_.pp.get("force calculation");
  rec.pp_seconds_max = world_.allreduce_max(pp_local);
  rec.pp_seconds_mean =
      world_.allreduce_sum(pp_local) / static_cast<double>(world_.size());

  const tree::TraversalStats gstats = allreduce_sum(world_, report_.pp_stats);
  rec.interactions = gstats.interactions;
  rec.flops = static_cast<double>(rec.interactions) * pp::kFlopsPerInteraction;
  rec.flop_rate = rec.pp_seconds_max > 0 ? rec.flops / rec.pp_seconds_max : 0;
  rec.ghosts_imported =
      world_.allreduce_sum(static_cast<std::uint64_t>(report_.n_ghost_imported));

  // Pool activity since the previous report (the pool is process-wide and
  // shared by every rank thread, so the counts are process totals).
  const TaskPool::PoolStats ps = TaskPool::global().stats();
  rec.pool_loops = ps.loops - pool_prev_loops_;
  rec.pool_chunks = ps.chunks - pool_prev_chunks_;
  rec.pool_steals = ps.steals - pool_prev_steals_;
  rec.pool_imbalance = ps.imbalance();
  pool_prev_loops_ = ps.loops;
  pool_prev_chunks_ = ps.chunks;
  pool_prev_steals_ = ps.steals;

  // Transport activity since the previous report (process-wide counters,
  // all zero on the perfect-link fast path).
  auto& reg = telemetry::Registry::global();
  const std::uint64_t retx = reg.counter("parx/retransmits").value();
  const std::uint64_t drops = reg.counter("parx/drops_injected").value();
  const std::uint64_t corrupt = reg.counter("parx/corrupt_detected").value();
  rec.retransmits = retx - tp_prev_retransmits_;
  rec.transport_drops = drops - tp_prev_drops_;
  rec.corrupt_detected = corrupt - tp_prev_corrupt_;
  tp_prev_retransmits_ = retx;
  tp_prev_drops_ = drops;
  tp_prev_corrupt_ = corrupt;

  // Overlap telemetry: the combined-cycle wall (max over ranks -- the
  // slowest rank sets the step time) and the job-wide stall/flight sums.
  // The fraction is computed from the reduced sums so every rank reports
  // the identical value.
  rec.overlap_enabled = report_.overlap.enabled;
  rec.force_wall_seconds = world_.allreduce_max(report_.overlap.window_s);
  double ov[2] = {report_.overlap.blocked_s, report_.overlap.inflight_s};
  world_.allreduce_sum(std::span<double>(ov, 2));
  rec.overlap_blocked_seconds = ov[0];
  rec.overlap_inflight_seconds = ov[1];
  rec.overlap_fraction = ov[0] + ov[1] > 0 ? ov[1] / (ov[0] + ov[1]) : 0;

  // Load-balance v2 activity: donation volumes are global sums (each donor
  // counted its own exports); the predicted imbalance is already identical
  // on every rank (computed from the allgathered cost vector).
  std::uint64_t don[2] = {report_.donated_groups, report_.donated_interactions};
  world_.allreduce_sum(std::span<std::uint64_t>(don, 2));
  rec.lb_donated_groups = don[0];
  rec.lb_donated_interactions = don[1];
  rec.lb_predicted_imbalance = report_.predicted_imbalance;

  // Per-group PP cost attribution, folded to one summary row per rank:
  // each rank contributes its slot of a zero-elsewhere table and the sum
  // reduction is an allgather.  The per-group detail stays rank-local in
  // report_.pp_group_costs (load-balance input); the record carries the
  // cross-rank view.
  if (!report_.pp_group_costs.empty()) {
    constexpr std::size_t kCols = 6;
    std::vector<double> table(static_cast<std::size_t>(world_.size()) * kCols, 0.0);
    double* row = table.data() + static_cast<std::size_t>(world_.rank()) * kCols;
    double max_group_s = 0;
    for (const auto& gc : report_.pp_group_costs) {
      row[0] += 1;
      row[1] += static_cast<double>(gc.interactions);
      row[2] += static_cast<double>(gc.ghost_sources);
      row[3] += gc.walk_s;
      row[4] += gc.force_s;
      max_group_s = std::max(max_group_s, gc.walk_s + gc.force_s);
    }
    row[5] = max_group_s;
    world_.allreduce_sum(std::span<double>(table));
    rec.pp_groups.resize(world_.size());
    for (int r = 0; r < world_.size(); ++r) {
      const double* src = table.data() + static_cast<std::size_t>(r) * kCols;
      auto& g = rec.pp_groups[r];
      g.groups = static_cast<std::uint64_t>(src[0]);
      g.interactions = static_cast<std::uint64_t>(src[1]);
      g.ghost_sources = static_cast<std::uint64_t>(src[2]);
      g.walk_s = src[3];
      g.force_s = src[4];
      g.max_group_s = src[5];
    }
  }

  if (world_.rank() == 0) {
    auto phase = [&](const char* name, const parx::TrafficCounts& c) {
      if (c.world_size() == 0) return;
      const parx::TrafficTotals tot = c.totals();
      rec.traffic.push_back({name, tot.messages, tot.bytes, c.model_time()});
    };
    phase("dd", report_.traffic_dd);
    phase("pp", report_.traffic_pp);
    phase("pm", report_.traffic_pm);
    // Render the line once, append + flush it atomically (optionally
    // fsynced), and mirror it to any live-endpoint subscribers.
    std::ostringstream line;
    telemetry::write_jsonl(line, rec);
    telemetry::append_jsonl_line(config_.step_report_path, line.view(),
                                 config_.step_report_fsync);
    auto& live = telemetry::LiveEndpoint::global();
    if (live.running()) {
      std::string_view lv = line.view();
      while (!lv.empty() && (lv.back() == '\n' || lv.back() == '\r')) lv.remove_suffix(1);
      if (config_.job_label.empty())
        live.publish(lv);
      else
        live.publish_topic(config_.job_label, lv);
    }
  }
  record_ = std::move(rec);
}

void ParallelSimulation::synchronize() {
  if (pending_long_kick_ == 0) return;
  // acc_l was evaluated at the current positions by the last step's
  // pipelined PM cycle, so the closing half-kick needs no recompute.
  for (auto& p : particles_) p.mom += p.acc_l * pending_long_kick_;
  pending_long_kick_ = 0;
}

std::uint64_t config_fingerprint(const ParallelSimConfig& config) {
  ckpt::Fnv1a64 h;
  h.mix(config.dims[0]).mix(config.dims[1]).mix(config.dims[2]);
  h.mix(config.nsub);
  h.mix(config.theta).mix(config.ncrit).mix(config.leaf_capacity).mix(config.eps);
  h.mix(static_cast<int>(config.kernel));
  h.mix(static_cast<int>(config.cost_metric));
  // lb_mode changes the sampling weights and therefore the cuts and the
  // dynamics; donation does not (it only relocates identical arithmetic)
  // and stays out, like overlap.
  h.mix(static_cast<int>(config.lb_mode));
  h.mix(config.sampling.target_samples).mix(config.sampling.seed);
  h.mix(config.metric.comoving);
  h.mix(config.metric.cosmology.omega_m)
      .mix(config.metric.cosmology.omega_l)
      .mix(config.metric.cosmology.H0);
  const auto& pm = config.pm;
  h.mix(pm.n_mesh).mix(pm.rcut).mix(static_cast<int>(pm.scheme));
  h.mix(pm.deconv_power).mix(pm.G).mix(static_cast<int>(pm.green));
  h.mix(pm.conversion.n_mesh).mix(pm.conversion.n_fft);
  h.mix(static_cast<int>(pm.conversion.method)).mix(pm.conversion.n_groups);
  return h.value();
}

TimingBreakdown allreduce_max(parx::Comm& comm, const TimingBreakdown& local) {
  std::vector<double> vals;
  vals.reserve(local.entries().size());
  for (const auto& [k, v] : local.entries()) vals.push_back(v);
  comm.allreduce(std::span<double>(vals), [](double a, double b) { return a > b ? a : b; });
  TimingBreakdown out;
  std::size_t i = 0;
  for (const auto& [k, v] : local.entries()) out.add(k, vals[i++]);
  return out;
}

tree::TraversalStats allreduce_sum(parx::Comm& comm, const tree::TraversalStats& local) {
  std::uint64_t vals[6] = {local.ngroups,      local.sum_ni,        local.sum_nj,
                           local.interactions, local.nodes_visited, local.ghost_sources};
  comm.allreduce_sum(std::span<std::uint64_t>(vals, 6));
  tree::TraversalStats out;
  out.ngroups = vals[0];
  out.sum_ni = vals[1];
  out.sum_nj = vals[2];
  out.interactions = vals[3];
  out.nodes_visited = vals[4];
  out.ghost_sources = vals[5];
  return out;
}

}  // namespace greem::core
