#include "core/parallel_sim.hpp"

#include <cassert>
#include <stdexcept>

#include "domain/exchange.hpp"
#include "tree/ghost.hpp"
#include "tree/octree.hpp"
#include "util/parallel_for.hpp"

namespace greem::core {

ParallelSimulation::ParallelSimulation(parx::Comm& world, ParallelSimConfig config,
                                       std::vector<Particle> local, double t_start)
    : world_(world),
      config_(config),
      pm_(world, config.pm),
      particles_(std::move(local)),
      clock_(t_start) {
  if (config_.dims[0] * config_.dims[1] * config_.dims[2] != world.size())
    throw std::invalid_argument("ParallelSimulation: dims product != comm size");
  if (config_.pool_threads > 0) set_num_threads(config_.pool_threads);
  decomp_ = domain::Decomposition::uniform(config_.dims);
  // Initial decomposition + short-range forces (one DD + PP cycle).
  domain_cycle(substep_counter_++);
  pp_force_cycle();
}

void ParallelSimulation::domain_cycle(std::uint64_t substep_id) {
  Stopwatch sw;
  // Sampling method: rate follows the measured force cost (particle count
  // before the first measurement exists).
  const double cost =
      last_force_cost_ >= 0 ? last_force_cost_ : static_cast<double>(particles_.size());
  auto pos = positions_of(particles_);
  auto fresh = domain::sample_and_decompose(world_, config_.dims, pos, cost,
                                            config_.sampling, substep_id);
  decomp_ = smoother_.smooth(fresh);
  report_.dd.add("sampling method", sw.seconds());

  sw.restart();
  const auto dest = domain::destinations(decomp_, pos);
  particles_ = domain::exchange_by_rank<Particle>(world_, particles_, dest);
  report_.dd.add("particle exchange", sw.seconds());

  pm_.update_domain(decomp_.box_of(world_.rank()));
}

void ParallelSimulation::pp_force_cycle() {
  const double rcut = config_.rcut();
  Stopwatch sw;

  // "local tree": select the boundary particles every neighbor needs.
  auto pos = positions_of(particles_);
  auto mass = masses_of(particles_);
  const auto domains = decomp_.boxes();
  auto exports = tree::select_ghosts(pos, mass, domains, world_.rank(), rcut);
  report_.pp.add("local tree", sw.seconds());

  // "communication": exchange ghosts.
  sw.restart();
  auto gpos = world_.alltoallv(exports.pos);
  auto gmass = world_.alltoallv(exports.mass);
  std::size_t n_ghost = 0;
  for (const auto& v : gpos) n_ghost += v.size();
  report_.n_ghost_imported += n_ghost;
  report_.pp.add("communication", sw.seconds());

  // "tree construction": octree over locals followed by ghosts.
  sw.restart();
  const std::size_t n_local = particles_.size();
  pos.reserve(n_local + n_ghost);
  mass.reserve(n_local + n_ghost);
  for (std::size_t r = 0; r < gpos.size(); ++r) {
    pos.insert(pos.end(), gpos[r].begin(), gpos[r].end());
    mass.insert(mass.end(), gmass[r].begin(), gmass[r].end());
  }
  tree::Octree octree(pos, mass, {config_.leaf_capacity, 21});
  report_.pp.add("tree construction", sw.seconds());

  // "tree traversal" + "force calculation": groups walk, kernel.
  tree::TraversalParams tp;
  tp.theta = config_.theta;
  tp.rcut = rcut;
  tp.ncrit = config_.ncrit;
  tp.eps2 = config_.eps * config_.eps;
  tp.kernel = config_.kernel;
  std::vector<Vec3> acc(pos.size(), Vec3{});
  tree::TraversalTimes times;
  auto stats = tree::tree_accelerations_targets(octree, tp, n_local, acc, {}, &times);
  report_.pp.add("tree traversal", times.traverse_s);
  report_.pp.add("force calculation", times.force_s);
  report_.pp_stats.merge(stats);
  last_force_cost_ = times.traverse_s + times.force_s;

  for (std::size_t i = 0; i < n_local; ++i) particles_[i].acc_s = acc[i];
}

void ParallelSimulation::step(double t_next) {
  const double t0 = clock_;
  const double t1 = t_next;
  const TimeMetric& m = config_.metric;
  report_ = StepReport{};

  const int nsub = config_.nsub;
  for (int s = 0; s < nsub; ++s) {
    // Domain decomposition cycle (paper: once per PP cycle).
    domain_cycle(substep_counter_++);

    if (s == 0) {
      // PM cycle: closing half-kick of the previous step + opening half of
      // this one, with the freshly computed long-range force.
      auto pos = positions_of(particles_);
      auto mass = masses_of(particles_);
      std::vector<Vec3> accl(particles_.size(), Vec3{});
      pm_.accelerations(pos, mass, accl, &report_.pm);
      const double k = pending_long_kick_ + 0.5 * m.kick(t0, t1);
      for (std::size_t i = 0; i < particles_.size(); ++i) particles_[i].mom += accl[i] * k;
      pending_long_kick_ = 0.5 * m.kick(t0, t1);
    }

    const double ts0 = t0 + (t1 - t0) * static_cast<double>(s) / nsub;
    const double ts1 = t0 + (t1 - t0) * static_cast<double>(s + 1) / nsub;
    const double tsm = 0.5 * (ts0 + ts1);

    const double k_open = m.kick(ts0, tsm);
    for (auto& p : particles_) p.mom += p.acc_s * k_open;

    Stopwatch sw;
    const double d = m.drift(ts0, ts1);
    for (auto& p : particles_) p.pos = wrap01(p.pos + p.mom * d);
    report_.dd.add("position update", sw.seconds());

    pp_force_cycle();

    const double k_close = m.kick(tsm, ts1);
    for (auto& p : particles_) p.mom += p.acc_s * k_close;
  }

  clock_ = t1;
}

void ParallelSimulation::synchronize() {
  if (pending_long_kick_ == 0) return;
  auto pos = positions_of(particles_);
  auto mass = masses_of(particles_);
  std::vector<Vec3> accl(particles_.size(), Vec3{});
  pm_.accelerations(pos, mass, accl, nullptr);
  for (std::size_t i = 0; i < particles_.size(); ++i)
    particles_[i].mom += accl[i] * pending_long_kick_;
  pending_long_kick_ = 0;
}

TimingBreakdown allreduce_max(parx::Comm& comm, const TimingBreakdown& local) {
  std::vector<double> vals;
  vals.reserve(local.entries().size());
  for (const auto& [k, v] : local.entries()) vals.push_back(v);
  comm.allreduce(std::span<double>(vals), [](double a, double b) { return a > b ? a : b; });
  TimingBreakdown out;
  std::size_t i = 0;
  for (const auto& [k, v] : local.entries()) out.add(k, vals[i++]);
  return out;
}

tree::TraversalStats allreduce_sum(parx::Comm& comm, const tree::TraversalStats& local) {
  std::uint64_t vals[5] = {local.ngroups, local.sum_ni, local.sum_nj, local.interactions,
                           local.nodes_visited};
  comm.allreduce_sum(std::span<std::uint64_t>(vals, 5));
  tree::TraversalStats out;
  out.ngroups = vals[0];
  out.sum_ni = vals[1];
  out.sum_nj = vals[2];
  out.interactions = vals[3];
  out.nodes_visited = vals[4];
  return out;
}

}  // namespace greem::core
