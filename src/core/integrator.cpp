#include "core/integrator.hpp"

#include <cmath>
#include <vector>

namespace greem::core {

// Step scheduling helpers used by the drivers.

std::vector<double> linear_schedule(double t0, double t1, int nsteps) {
  std::vector<double> out(static_cast<std::size_t>(nsteps) + 1);
  for (int i = 0; i <= nsteps; ++i)
    out[static_cast<std::size_t>(i)] = t0 + (t1 - t0) * static_cast<double>(i) / nsteps;
  return out;
}

std::vector<double> log_schedule(double t0, double t1, int nsteps) {
  std::vector<double> out(static_cast<std::size_t>(nsteps) + 1);
  const double l0 = std::log(t0), l1 = std::log(t1);
  for (int i = 0; i <= nsteps; ++i)
    out[static_cast<std::size_t>(i)] =
        std::exp(l0 + (l1 - l0) * static_cast<double>(i) / nsteps);
  return out;
}

}  // namespace greem::core
