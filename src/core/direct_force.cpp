#include "core/direct_force.hpp"

#include <cmath>

#include "pp/cutoff.hpp"

namespace greem::core {

void direct_newton(std::span<const Vec3> pos, std::span<const double> mass,
                   std::span<Vec3> acc, double eps2) {
  const std::size_t n = pos.size();
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 a{};
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const Vec3 d = pos[j] - pos[i];
      const double r2 = d.norm2() + eps2;
      const double rinv = 1.0 / std::sqrt(r2);
      a += d * (mass[j] * rinv * rinv * rinv);
    }
    acc[i] += a;
  }
}

void direct_short_range(std::span<const Vec3> pos, std::span<const double> mass,
                        std::span<Vec3> acc, double rcut, double eps2) {
  const std::size_t n = pos.size();
  const double rcut2 = rcut * rcut;
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 a{};
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const Vec3 d = min_image(pos[i], pos[j]);  // pos[j] - pos[i], min image
      const double d2 = d.norm2();
      if (d2 >= rcut2) continue;
      const double r2 = d2 + eps2;
      const double rinv = 1.0 / std::sqrt(r2);
      const double r = r2 * rinv;
      const double g = pp::g_p3m(2.0 * r / rcut);
      a += d * (mass[j] * g * rinv * rinv * rinv);
    }
    acc[i] += a;
  }
}

double direct_potential_energy(std::span<const Vec3> pos, std::span<const double> mass,
                               double eps2) {
  const std::size_t n = pos.size();
  double u = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3 d = pos[j] - pos[i];
      u -= mass[i] * mass[j] / std::sqrt(d.norm2() + eps2);
    }
  return u;
}

}  // namespace greem::core
