#pragma once
// Pure Barnes-Hut tree force (open boundary, no cutoff): the algorithm of
// the pre-TreePM Gordon Bell winners, kept as the baseline the paper
// compares against (accuracy-per-operation and interaction-list length).

#include <span>

#include "tree/traversal.hpp"
#include "util/vec3.hpp"

namespace greem::core {

struct TreeForceParams {
  double theta = 0.5;
  std::uint32_t ncrit = 64;
  std::uint32_t leaf_capacity = 8;
  double eps2 = 0.0;
  bool quadrupole = false;  ///< monopole+quadrupole node moments
};

/// Open-boundary tree accelerations; returns traversal statistics
/// (interaction counts feed the flops accounting of the baselines).
tree::TraversalStats tree_newton(std::span<const Vec3> pos, std::span<const double> mass,
                                 std::span<Vec3> acc, const TreeForceParams& params);

}  // namespace greem::core
