#pragma once
// Particle state.  Trivially copyable so particles travel through parx
// exchanges unchanged; the cached short-range acceleration migrates with
// the particle (the KDK substeps need the force at the current position,
// which was evaluated at the end of the previous PP cycle).

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "util/vec3.hpp"

namespace greem::core {

struct Particle {
  Vec3 pos;      ///< comoving position in [0,1)^3
  Vec3 mom;      ///< momentum p = a^2 dx/dt (comoving) or velocity (static)
  Vec3 acc_s;    ///< cached short-range acceleration at pos
  /// Cached long-range (PM) acceleration, evaluated at the end-of-step
  /// positions by the pipelined PM cycle; the next step's long kick (and
  /// synchronize()) consume it.  Migrates through domain exchange and
  /// checkpoints with the particle, like acc_s.
  Vec3 acc_l;
  double mass = 0;
  /// Predicted short-range work share (load-balance v2): the per-particle
  /// slice of its Barnes group's measured cost, scattered after each PP
  /// cycle and consumed as this particle's sampling weight by the next
  /// domain decomposition.  Migrates and checkpoints with the particle so
  /// cuts stay reproducible across exchanges and restarts.
  double lb_w = 0;
  std::uint64_t id = 0;
};

static_assert(std::is_trivially_copyable_v<Particle>);

/// Extract positions/masses into contiguous arrays for the force modules.
std::vector<Vec3> positions_of(std::span<const Particle> ps);
std::vector<double> masses_of(std::span<const Particle> ps);

/// Uniformly random particles in the unit box with equal masses summing to
/// total_mass (test/bench workloads).
std::vector<Particle> random_uniform_particles(std::size_t n, double total_mass,
                                               std::uint64_t seed);

/// Plummer-sphere cluster (scale radius `scale`) centered at `center`,
/// wrapped into the unit box: the strongly clustered workload used by the
/// load-balance experiments (paper Fig. 3).
std::vector<Particle> plummer_particles(std::size_t n, double total_mass, const Vec3& center,
                                        double scale, std::uint64_t seed);

/// Mixture: fraction `cluster_fraction` of particles in `nclusters` Plummer
/// clumps at seeded random centers, the rest uniform.  Mimics an evolved
/// cosmological density field for Table-I style runs.
std::vector<Particle> clustered_particles(std::size_t n, double total_mass, int nclusters,
                                          double cluster_fraction, double scale,
                                          std::uint64_t seed);

}  // namespace greem::core
