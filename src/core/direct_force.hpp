#pragma once
// O(N^2) direct-summation forces: the exact baselines.
//  * open boundary: plain Newton sum (the method of the 1990s Gordon Bell
//    entries before tree codes, and the small-N reference for them);
//  * periodic short-range: minimum-image sum with the gP3M cutoff (exact
//    reference for the tree's short-range part);
//  * periodic exact: see ewald::Ewald.

#include <span>

#include "util/vec3.hpp"

namespace greem::core {

/// Open-boundary Newtonian accelerations (Plummer softening eps2).
void direct_newton(std::span<const Vec3> pos, std::span<const double> mass,
                   std::span<Vec3> acc, double eps2);

/// Periodic minimum-image accelerations with the gP3M(2r/rcut) cutoff:
/// the exact short-range force of the TreePM split (requires rcut < 0.5).
void direct_short_range(std::span<const Vec3> pos, std::span<const double> mass,
                        std::span<Vec3> acc, double rcut, double eps2);

/// Open-boundary potential energy (pairwise, softened).
double direct_potential_energy(std::span<const Vec3> pos, std::span<const double> mass,
                               double eps2);

}  // namespace greem::core
