#include "core/simulation.hpp"

namespace greem::core {

Simulation::Simulation(SimulationConfig config, std::vector<Particle> particles,
                       double t_start)
    : config_(config), force_(config.force), particles_(std::move(particles)), clock_(t_start) {
  // Initial PP cycle: cache the short-range accelerations at t_start.
  compute_short(nullptr, nullptr);
}

void Simulation::compute_short(TimingBreakdown* t, tree::TraversalStats* stats) {
  const auto pos = positions_of(particles_);
  const auto mass = masses_of(particles_);
  std::vector<Vec3> acc(particles_.size(), Vec3{});
  auto s = force_.short_range(pos, mass, acc, t);
  for (std::size_t i = 0; i < particles_.size(); ++i) particles_[i].acc_s = acc[i];
  if (stats) stats->merge(s);
}

void Simulation::step(double t_next) {
  const double t0 = clock_;
  const double t1 = t_next;
  const TimeMetric& m = config_.metric;
  diag_ = StepDiagnostics{};

  // ---- PM cycle: fresh long-range force; apply the closing half-kick of
  // the previous step plus the opening half-kick of this one.
  {
    const auto pos = positions_of(particles_);
    const auto mass = masses_of(particles_);
    std::vector<Vec3> accl(particles_.size(), Vec3{});
    force_.long_range(pos, mass, accl, &diag_.pm_timing);
    const double k = pending_long_kick_ + 0.5 * m.kick(t0, t1);
    for (std::size_t i = 0; i < particles_.size(); ++i) particles_[i].mom += accl[i] * k;
    pending_long_kick_ = 0.5 * m.kick(t0, t1);
  }

  // ---- nsub PP cycles (KDK with the cached short force).
  const int nsub = config_.nsub;
  for (int s = 0; s < nsub; ++s) {
    const double ts0 = t0 + (t1 - t0) * static_cast<double>(s) / nsub;
    const double ts1 = t0 + (t1 - t0) * static_cast<double>(s + 1) / nsub;
    const double tsm = 0.5 * (ts0 + ts1);

    const double k_open = m.kick(ts0, tsm);
    for (auto& p : particles_) p.mom += p.acc_s * k_open;

    const double d = m.drift(ts0, ts1);
    for (auto& p : particles_) p.pos = wrap01(p.pos + p.mom * d);

    compute_short(&diag_.pp_timing, &diag_.pp);

    const double k_close = m.kick(tsm, ts1);
    for (auto& p : particles_) p.mom += p.acc_s * k_close;
  }

  clock_ = t1;
}

void Simulation::synchronize() {
  if (pending_long_kick_ == 0) return;
  const auto pos = positions_of(particles_);
  const auto mass = masses_of(particles_);
  std::vector<Vec3> accl(particles_.size(), Vec3{});
  force_.long_range(pos, mass, accl, nullptr);
  for (std::size_t i = 0; i < particles_.size(); ++i)
    particles_[i].mom += accl[i] * pending_long_kick_;
  pending_long_kick_ = 0;
}

}  // namespace greem::core
