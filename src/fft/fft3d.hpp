#pragma once
// Serial in-core 3-D complex FFT on an n^3 mesh, built from 1-D plans.
// Layout is row-major with x fastest: index(x,y,z) = (z*n + y)*n + x.

#include <complex>
#include <cstddef>
#include <vector>

#include "fft/fft1d.hpp"

namespace greem::fft {

class Fft3d {
 public:
  explicit Fft3d(std::size_t n);

  std::size_t n() const { return n_; }
  std::size_t cells() const { return n_ * n_ * n_; }

  static std::size_t index(std::size_t n, std::size_t x, std::size_t y, std::size_t z) {
    return (z * n + y) * n + x;
  }
  std::size_t index(std::size_t x, std::size_t y, std::size_t z) const {
    return index(n_, x, y, z);
  }

  /// In-place forward transform of an n^3 complex field.
  void forward(std::vector<Complex>& data) const;

  /// In-place inverse transform including the 1/n^3 normalization.
  void inverse(std::vector<Complex>& data) const;

  /// Convenience: forward transform of a real field.
  std::vector<Complex> forward_real(const std::vector<double>& real) const;

  /// Convenience: inverse transform returning the real part.
  std::vector<double> inverse_to_real(std::vector<Complex> data) const;

 private:
  void transform(std::vector<Complex>& data, bool inverse) const;

  std::size_t n_;
  Fft1d line_;
};

/// Signed integer wave number of FFT bin i on an n-mesh: 0..n/2, then
/// negative frequencies (-n/2+1..-1).  k_phys = 2*pi*wavenumber in a unit box.
inline long wavenumber(std::size_t i, std::size_t n) {
  return static_cast<long>(i) <= static_cast<long>(n) / 2
             ? static_cast<long>(i)
             : static_cast<long>(i) - static_cast<long>(n);
}

/// Real-input 3-D FFT storing only the non-redundant half spectrum
/// (kx = 0..n/2): half the memory and nearly half the flops of the
/// complex transform -- the production path of the PM solver.
/// Layout: index (z*n + y)*(n/2+1) + x, x = 0..n/2.
class Fft3dR2C {
 public:
  explicit Fft3dR2C(std::size_t n);

  std::size_t n() const { return n_; }
  std::size_t hx() const { return n_ / 2 + 1; }
  std::size_t spectrum_size() const { return hx() * n_ * n_; }
  std::size_t index(std::size_t x, std::size_t y, std::size_t z) const {
    return (z * n_ + y) * hx() + x;
  }

  /// Forward transform of an n^3 real field into the half spectrum.
  std::vector<Complex> forward(const std::vector<double>& real) const;

  /// Inverse transform (1/n^3 included) back to an n^3 real field.
  std::vector<double> inverse(std::vector<Complex> half_spectrum) const;

 private:
  std::size_t n_;
  Fft1d line_;
};

}  // namespace greem::fft
