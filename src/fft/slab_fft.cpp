#include "fft/slab_fft.hpp"

#include <cassert>
#include <stdexcept>

namespace greem::fft {

Range split_range(std::size_t n, int p, int r) {
  const auto pp = static_cast<std::size_t>(p);
  const auto rr = static_cast<std::size_t>(r);
  const std::size_t base = n / pp;
  const std::size_t rem = n % pp;
  Range out;
  out.begin = rr * base + std::min(rr, rem);
  out.count = base + (rr < rem ? 1 : 0);
  return out;
}

SlabFft::SlabFft(parx::Comm comm, std::size_t n) : comm_(comm), n_(n), line_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("SlabFft: n must be a power of two");
  if (static_cast<std::size_t>(comm_.size()) > n)
    throw std::invalid_argument("SlabFft: more ranks than planes (1-D slab limit)");
}

void SlabFft::plane_transform(std::vector<Complex>& slab, bool inverse) {
  const std::size_t n = n_;
  const Range z = local_z();
  for (std::size_t zi = 0; zi < z.count; ++zi) {
    Complex* plane = &slab[zi * n * n];
    for (std::size_t y = 0; y < n; ++y) {
      if (inverse)
        line_.inverse(plane + y * n);
      else
        line_.forward(plane + y * n);
    }
    for (std::size_t x = 0; x < n; ++x) {
      if (inverse)
        line_.inverse_strided(plane + x, n);
      else
        line_.forward_strided(plane + x, n);
    }
  }
}

void SlabFft::transpose_to_xchunks(const std::vector<Complex>& slab,
                                   std::vector<Complex>& chunks) {
  const std::size_t n = n_;
  const int p = comm_.size();
  const Range zr = local_z();
  const Range xr = split_range(n, p, comm_.rank());

  // Pack: block sent to rank d covers (x in d's chunk, all y, my z planes),
  // iterated z-major, then y, then x.
  std::vector<std::vector<Complex>> send(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const Range xd = split_range(n, p, d);
    auto& buf = send[static_cast<std::size_t>(d)];
    buf.reserve(zr.count * n * xd.count);
    for (std::size_t zi = 0; zi < zr.count; ++zi)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t x = xd.begin; x < xd.end(); ++x)
          buf.push_back(slab[(zi * n + y) * n + x]);
  }
  auto recv = comm_.alltoallv(std::move(send));

  // Unpack into z-fastest layout: chunks[((x - x0)*n + y)*n + z].
  chunks.assign(xr.count * n * n, Complex{});
  for (int s = 0; s < p; ++s) {
    const Range zs = split_range(n, p, s);
    const auto& buf = recv[static_cast<std::size_t>(s)];
    std::size_t i = 0;
    for (std::size_t z = zs.begin; z < zs.end(); ++z)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t xi = 0; xi < xr.count; ++xi)
          chunks[(xi * n + y) * n + z] = buf[i++];
  }
}

void SlabFft::transpose_to_slabs(const std::vector<Complex>& chunks,
                                 std::vector<Complex>& slab) {
  const std::size_t n = n_;
  const int p = comm_.size();
  const Range zr = local_z();
  const Range xr = split_range(n, p, comm_.rank());

  std::vector<std::vector<Complex>> send(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const Range zd = split_range(n, p, d);
    auto& buf = send[static_cast<std::size_t>(d)];
    buf.reserve(zd.count * n * xr.count);
    for (std::size_t z = zd.begin; z < zd.end(); ++z)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t xi = 0; xi < xr.count; ++xi)
          buf.push_back(chunks[(xi * n + y) * n + z]);
  }
  auto recv = comm_.alltoallv(std::move(send));

  slab.assign(zr.count * n * n, Complex{});
  for (int s = 0; s < p; ++s) {
    const Range xs = split_range(n, p, s);
    const auto& buf = recv[static_cast<std::size_t>(s)];
    std::size_t i = 0;
    for (std::size_t z = zr.begin; z < zr.end(); ++z)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t x = xs.begin; x < xs.end(); ++x)
          slab[((z - zr.begin) * n + y) * n + x] = buf[i++];
  }
}

void SlabFft::z_transform(std::vector<Complex>& chunks, bool inverse) {
  const std::size_t n = n_;
  const Range xr = split_range(n, comm_.size(), comm_.rank());
  for (std::size_t xi = 0; xi < xr.count; ++xi) {
    for (std::size_t y = 0; y < n; ++y) {
      Complex* zline = &chunks[(xi * n + y) * n];
      if (inverse)
        line_.inverse(zline);
      else
        line_.forward(zline);
    }
  }
}

void SlabFft::forward(std::vector<Complex>& slab) {
  assert(slab.size() == slab_cells());
  plane_transform(slab, false);
  std::vector<Complex> chunks;
  transpose_to_xchunks(slab, chunks);
  z_transform(chunks, false);
  transpose_to_slabs(chunks, slab);
}

void SlabFft::inverse(std::vector<Complex>& slab) {
  assert(slab.size() == slab_cells());
  std::vector<Complex> chunks;
  transpose_to_xchunks(slab, chunks);
  z_transform(chunks, true);
  transpose_to_slabs(chunks, slab);
  plane_transform(slab, true);
}

}  // namespace greem::fft
