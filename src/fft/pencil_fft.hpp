#pragma once
// 2-D (pencil) decomposed parallel 3-D FFT.
//
// The paper's conclusion names this as the path past the slab bottleneck:
// "the combination of our novel relay mesh method and a 3-D parallel FFT
// library will significantly improve the performance and the scalability".
// A pencil decomposition over a pr x pc rank grid supports up to n^2 ranks
// (vs n for slabs), at the cost of two transposes per transform, each
// confined to a row or column communicator of the rank grid.
//
// Layouts (n^3 mesh, rank at (row, col) of the pr x pc grid):
//  * input/x-pencils: own all x, y in Ry(row), z in Rz(col);
//    index ((z - z0)*ny + (y - y0))*n + x.
//  * forward output/z-pencils (transposed-output convention, as FFTW MPI):
//    own x in Rx(row), y in Ryo(col), all z;
//    index ((y - y0)*nx + (x - x0))*n + z.
// inverse() consumes z-pencils and returns x-pencils.

#include <complex>
#include <cstddef>
#include <vector>

#include "fft/fft1d.hpp"
#include "fft/slab_fft.hpp"  // Range / split_range
#include "parx/comm.hpp"

namespace greem::fft {

class PencilFft {
 public:
  /// Collective over `comm`; requires comm.size() == pr*pc, pr <= n,
  /// pc <= n, n a power of two.  Rank r sits at row r / pc, col r % pc.
  PencilFft(parx::Comm& comm, std::size_t n, int pr, int pc);

  std::size_t n() const { return n_; }
  int row() const { return row_; }
  int col() const { return col_; }

  /// Input ownership (x-pencils).
  Range in_y() const { return split_range(n_, pr_, row_); }
  Range in_z() const { return split_range(n_, pc_, col_); }
  std::size_t in_cells() const { return n_ * in_y().count * in_z().count; }
  std::size_t in_index(std::size_t x, std::size_t y, std::size_t z) const {
    return ((z - in_z().begin) * in_y().count + (y - in_y().begin)) * n_ + x;
  }

  /// Output ownership (z-pencils).
  Range out_x() const { return split_range(n_, pr_, row_); }
  Range out_y() const { return split_range(n_, pc_, col_); }
  std::size_t out_cells() const { return n_ * out_x().count * out_y().count; }
  std::size_t out_index(std::size_t x, std::size_t y, std::size_t z) const {
    return ((y - out_y().begin) * out_x().count + (x - out_x().begin)) * n_ + z;
  }

  /// Forward transform: consumes x-pencil data, returns z-pencil spectrum.
  std::vector<Complex> forward(const std::vector<Complex>& in);

  /// Inverse transform (with 1/n^3): consumes z-pencils, returns x-pencils.
  std::vector<Complex> inverse(const std::vector<Complex>& in);

 private:
  // Intermediate y-pencil layout: own x in Rx(row), all y, z in Rz(col);
  // index ((z - z0)*nx + (x - x0))*n + y.
  std::vector<Complex> transpose_xy(const std::vector<Complex>& xp, bool to_y);
  std::vector<Complex> transpose_yz(const std::vector<Complex>& yp, bool to_z);

  parx::Comm comm_;
  parx::Comm row_comm_;  ///< ranks sharing this row (pc members)  -- y<->z
  parx::Comm col_comm_;  ///< ranks sharing this column (pr members) -- x<->y
  std::size_t n_;
  int pr_, pc_, row_, col_;
  Fft1d line_;
};

}  // namespace greem::fft
