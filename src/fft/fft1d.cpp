#include "fft/fft1d.hpp"

#include <cassert>
#include <numbers>
#include <stdexcept>

namespace greem::fft {

Fft1d::Fft1d(std::size_t n) : n_(n) {
  if (!is_pow2(n)) throw std::invalid_argument("Fft1d: length must be a power of two");
  log2n_ = 0;
  while ((std::size_t{1} << log2n_) < n) ++log2n_;

  bitrev_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < log2n_; ++b)
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n_ - 1 - b);
    bitrev_[i] = r;
  }

  twiddle_fwd_.resize(n / 2 + 1);
  twiddle_inv_.resize(n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    double ang = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_fwd_[k] = {std::cos(ang), std::sin(ang)};
    twiddle_inv_[k] = std::conj(twiddle_fwd_[k]);
  }
  scratch_.resize(n);
}

void Fft1d::transform(Complex* data, bool inverse) const {
  const auto& tw = inverse ? twiddle_inv_ : twiddle_fwd_;
  // Bit-reversal permutation.
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson-Lanczos ladder.
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t step = n_ / len;  // twiddle stride
    for (std::size_t base = 0; base < n_; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        Complex w = tw[k * step];
        Complex u = data[base + k];
        Complex v = data[base + k + half] * w;
        data[base + k] = u + v;
        data[base + k + half] = u - v;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i] *= inv_n;
  }
}

void Fft1d::forward(Complex* data) const { transform(data, false); }

void Fft1d::inverse(Complex* data) const { transform(data, true); }

void Fft1d::forward_strided(Complex* data, std::size_t stride) const {
  if (stride == 1) return forward(data);
  for (std::size_t i = 0; i < n_; ++i) scratch_[i] = data[i * stride];
  transform(scratch_.data(), false);
  for (std::size_t i = 0; i < n_; ++i) data[i * stride] = scratch_[i];
}

void Fft1d::inverse_strided(Complex* data, std::size_t stride) const {
  if (stride == 1) return inverse(data);
  for (std::size_t i = 0; i < n_; ++i) scratch_[i] = data[i * stride];
  transform(scratch_.data(), true);
  for (std::size_t i = 0; i < n_; ++i) data[i * stride] = scratch_[i];
}

Fft1d* Fft1d::half_plan() const {
  if (!half_) half_ = std::make_unique<Fft1d>(n_ / 2);
  return half_.get();
}

void Fft1d::forward_r2c(const double* in, Complex* out) const {
  const std::size_t n = n_;
  if (n == 1) {
    out[0] = {in[0], 0.0};
    return;
  }
  const std::size_t h = n / 2;
  // Pack even/odd samples into one half-length complex line.
  std::vector<Complex> z(h);
  for (std::size_t j = 0; j < h; ++j) z[j] = {in[2 * j], in[2 * j + 1]};
  half_plan()->forward(z.data());
  // Unpack: X[k] = E[k] + W^k O[k], E/O from the Hermitian split of Z.
  for (std::size_t k = 0; k <= h; ++k) {
    const Complex zk = k < h ? z[k] : z[0];
    const Complex zc = std::conj(z[(h - k) % h]);
    const Complex even = 0.5 * (zk + zc);
    const Complex odd = Complex(0.0, -0.5) * (zk - zc);
    out[k] = even + twiddle_fwd_[k] * odd;
  }
}

void Fft1d::inverse_c2r(const Complex* in, double* out) const {
  const std::size_t n = n_;
  if (n == 1) {
    out[0] = in[0].real();
    return;
  }
  const std::size_t h = n / 2;
  // Rebuild the packed half-length spectrum: Z[k] = E[k] + i O[k] with
  // E[k] = (X[k] + conj(X[h-k]))/2, O[k] = W^{-k} (X[k] - conj(X[h-k]))/2.
  std::vector<Complex> z(h);
  for (std::size_t k = 0; k < h; ++k) {
    const Complex xk = in[k];
    const Complex xc = std::conj(in[h - k]);
    const Complex even = 0.5 * (xk + xc);
    const Complex odd = twiddle_inv_[k] * (0.5 * (xk - xc));
    z[k] = even + Complex(0.0, 1.0) * odd;
  }
  // The half-length inverse (1/h) reconstructs the packed samples exactly:
  // IFFT_h(E)[j] = x[2j] and IFFT_h(O)[j] = x[2j+1] by definition of E, O.
  half_plan()->inverse(z.data());
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
}

}  // namespace greem::fft
