#pragma once
// Iterative radix-2 complex FFT with precomputed twiddles and bit-reversal
// permutation.  This replaces FFTW's serial engine; transform lengths are
// powers of two (PM mesh sizes always are).

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

namespace greem::fft {

using Complex = std::complex<double>;

/// Plan for length-n transforms (n a power of two, n >= 1).
class Fft1d {
 public:
  explicit Fft1d(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward DFT: X[k] = sum_j x[j] exp(-2πi jk/n).
  void forward(Complex* data) const;

  /// In-place inverse DFT including the 1/n normalization.
  void inverse(Complex* data) const;

  /// Strided forward/inverse: element i lives at data[i*stride].
  void forward_strided(Complex* data, std::size_t stride) const;
  void inverse_strided(Complex* data, std::size_t stride) const;

  /// Real-to-complex forward transform of a length-n real line (n >= 2):
  /// writes the n/2+1 non-redundant spectrum coefficients (the rest follow
  /// from X[n-k] = conj(X[k])).  Runs one complex FFT of length n/2 via
  /// even/odd packing -- the standard halving trick.
  void forward_r2c(const double* in, Complex* out) const;

  /// Inverse of forward_r2c including the 1/n normalization; `in` holds
  /// n/2+1 coefficients (X[0] and X[n/2] must be real up to rounding).
  void inverse_c2r(const Complex* in, double* out) const;

 private:
  void transform(Complex* data, bool inverse) const;

  std::size_t n_;
  int log2n_;
  std::vector<std::size_t> bitrev_;
  std::vector<Complex> twiddle_fwd_;  // exp(-2πi k/n), k < n/2
  std::vector<Complex> twiddle_inv_;
  mutable std::vector<Complex> scratch_;  // for strided transforms
  /// Half-length plan for the r2c/c2r path (lazy, only for n >= 2).
  mutable std::unique_ptr<Fft1d> half_;
  Fft1d* half_plan() const;
};

/// True iff n is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n (n >= 1).
constexpr std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace greem::fft
