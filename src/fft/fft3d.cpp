#include "fft/fft3d.hpp"

#include <cassert>

namespace greem::fft {

Fft3d::Fft3d(std::size_t n) : n_(n), line_(n) {}

void Fft3d::transform(std::vector<Complex>& data, bool inverse) const {
  assert(data.size() == cells());
  const std::size_t n = n_;
  auto line = [&](Complex* p, std::size_t stride) {
    if (inverse)
      line_.inverse_strided(p, stride);
    else
      line_.forward_strided(p, stride);
  };
  // x lines (contiguous)
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y) line(&data[index(0, y, z)], 1);
  // y lines (stride n)
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t x = 0; x < n; ++x) line(&data[index(x, 0, z)], n);
  // z lines (stride n^2)
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x) line(&data[index(x, y, 0)], n * n);
}

void Fft3d::forward(std::vector<Complex>& data) const { transform(data, false); }

void Fft3d::inverse(std::vector<Complex>& data) const { transform(data, true); }

std::vector<Complex> Fft3d::forward_real(const std::vector<double>& real) const {
  assert(real.size() == cells());
  std::vector<Complex> data(real.size());
  for (std::size_t i = 0; i < real.size(); ++i) data[i] = {real[i], 0.0};
  forward(data);
  return data;
}

std::vector<double> Fft3d::inverse_to_real(std::vector<Complex> data) const {
  inverse(data);
  std::vector<double> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = data[i].real();
  return out;
}

Fft3dR2C::Fft3dR2C(std::size_t n) : n_(n), line_(n) {}

std::vector<Complex> Fft3dR2C::forward(const std::vector<double>& real) const {
  assert(real.size() == n_ * n_ * n_);
  const std::size_t n = n_, h = hx();
  std::vector<Complex> out(spectrum_size());
  // x: real-to-complex lines into the half-width layout.
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      line_.forward_r2c(&real[(z * n + y) * n], &out[index(0, y, z)]);
  // y and z: complex strided lines over the reduced domain.
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t x = 0; x < h; ++x) line_.forward_strided(&out[index(x, 0, z)], h);
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < h; ++x) line_.forward_strided(&out[index(x, y, 0)], h * n);
  return out;
}

std::vector<double> Fft3dR2C::inverse(std::vector<Complex> spec) const {
  assert(spec.size() == spectrum_size());
  const std::size_t n = n_, h = hx();
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < h; ++x) line_.inverse_strided(&spec[index(x, y, 0)], h * n);
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t x = 0; x < h; ++x) line_.inverse_strided(&spec[index(x, 0, z)], h);
  std::vector<double> out(n * n * n);
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      line_.inverse_c2r(&spec[index(0, y, z)], &out[(z * n + y) * n]);
  return out;
}

}  // namespace greem::fft
