#pragma once
// 1-D slab-decomposed parallel 3-D FFT over parx (the role FFTW 3.3 MPI
// plays in the paper).  Each rank owns a contiguous set of z-planes; the z
// transform is reached by an all-to-all transpose into an x-chunk layout
// and a transpose back, so both input and output live in the z-slab layout.
//
// As in the paper, the parallelism of this transform is limited to at most
// n ranks (one plane each) — the very limitation that motivates the relay
// mesh method when the job has far more ranks than planes.

#include <complex>
#include <cstddef>
#include <vector>

#include "fft/fft1d.hpp"
#include "parx/comm.hpp"

namespace greem::fft {

/// Contiguous 1-D block decomposition of [0, n) over p ranks.
struct Range {
  std::size_t begin = 0;
  std::size_t count = 0;
  std::size_t end() const { return begin + count; }
};

Range split_range(std::size_t n, int p, int r);

class SlabFft {
 public:
  /// `comm` is the FFT communicator (the paper's COMM_FFT); requires
  /// comm.size() <= n and n a power of two.
  SlabFft(parx::Comm comm, std::size_t n);

  std::size_t n() const { return n_; }
  Range local_z() const { return split_range(n_, comm_.size(), comm_.rank()); }

  std::size_t slab_cells() const { return local_z().count * n_ * n_; }

  /// Index into the local slab: ((z - z0)*n + y)*n + x.
  std::size_t index(std::size_t x, std::size_t y, std::size_t z) const {
    return ((z - local_z().begin) * n_ + y) * n_ + x;
  }

  /// In-place forward transform of this rank's slab (collective).
  void forward(std::vector<Complex>& slab);

  /// In-place inverse transform including 1/n^3 (collective).
  void inverse(std::vector<Complex>& slab);

 private:
  void transpose_to_xchunks(const std::vector<Complex>& slab, std::vector<Complex>& chunks);
  void transpose_to_slabs(const std::vector<Complex>& chunks, std::vector<Complex>& slab);
  void plane_transform(std::vector<Complex>& slab, bool inverse);
  void z_transform(std::vector<Complex>& chunks, bool inverse);

  parx::Comm comm_;
  std::size_t n_;
  Fft1d line_;
};

}  // namespace greem::fft
