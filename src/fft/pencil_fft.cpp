#include "fft/pencil_fft.hpp"

#include <cassert>
#include <stdexcept>

namespace greem::fft {

PencilFft::PencilFft(parx::Comm& comm, std::size_t n, int pr, int pc)
    : comm_(comm), n_(n), pr_(pr), pc_(pc), row_(comm.rank() / pc), col_(comm.rank() % pc),
      line_(n) {
  if (pr * pc != comm.size())
    throw std::invalid_argument("PencilFft: pr*pc must equal comm size");
  if (static_cast<std::size_t>(pr) > n || static_cast<std::size_t>(pc) > n)
    throw std::invalid_argument("PencilFft: grid dimension exceeds mesh");
  row_comm_ = comm_.split(row_, col_);  // same row: pc members, by col
  col_comm_ = comm_.split(col_, row_);  // same col: pr members, by row
}

std::vector<Complex> PencilFft::transpose_xy(const std::vector<Complex>& data, bool to_y) {
  // col_comm exchange: x-ownership (all <-> split over pr by row) against
  // y-ownership (split over pr by row <-> all); z-range fixed = in_z().
  const std::size_t n = n_;
  const Range zr = in_z();
  const auto p = static_cast<std::size_t>(pr_);

  std::vector<std::vector<Complex>> send(p);
  for (std::size_t d = 0; d < p; ++d) {
    const Range xd = split_range(n, pr_, static_cast<int>(d));
    const Range yd = split_range(n, pr_, static_cast<int>(d));
    auto& buf = send[d];
    if (to_y) {
      // x-pencil -> y-pencil: send block (x in Rx(d), y in Ry(row), z).
      const Range ym = in_y();
      buf.reserve(zr.count * ym.count * xd.count);
      for (std::size_t z = zr.begin; z < zr.end(); ++z)
        for (std::size_t y = ym.begin; y < ym.end(); ++y)
          for (std::size_t x = xd.begin; x < xd.end(); ++x)
            buf.push_back(data[in_index(x, y, z)]);
    } else {
      // y-pencil -> x-pencil: send block (x in Rx(row), y in Ry(d), z).
      const Range xm = split_range(n, pr_, row_);
      buf.reserve(zr.count * yd.count * xm.count);
      for (std::size_t z = zr.begin; z < zr.end(); ++z)
        for (std::size_t y = yd.begin; y < yd.end(); ++y)
          for (std::size_t x = xm.begin; x < xm.end(); ++x)
            buf.push_back(data[((z - zr.begin) * xm.count + (x - xm.begin)) * n + y]);
    }
  }
  auto recv = col_comm_.alltoallv(std::move(send));

  std::vector<Complex> out;
  if (to_y) {
    const Range xm = split_range(n, pr_, row_);
    out.resize(zr.count * xm.count * n);
    for (std::size_t s = 0; s < p; ++s) {
      const Range ys = split_range(n, pr_, static_cast<int>(s));
      const auto& buf = recv[s];
      std::size_t i = 0;
      for (std::size_t z = zr.begin; z < zr.end(); ++z)
        for (std::size_t y = ys.begin; y < ys.end(); ++y)
          for (std::size_t x = xm.begin; x < xm.end(); ++x)
            out[((z - zr.begin) * xm.count + (x - xm.begin)) * n + y] = buf[i++];
      assert(i == buf.size());
    }
  } else {
    const Range ym = in_y();
    out.resize(zr.count * ym.count * n);
    for (std::size_t s = 0; s < p; ++s) {
      const Range xs = split_range(n, pr_, static_cast<int>(s));
      const auto& buf = recv[s];
      std::size_t i = 0;
      for (std::size_t z = zr.begin; z < zr.end(); ++z)
        for (std::size_t y = ym.begin; y < ym.end(); ++y)
          for (std::size_t x = xs.begin; x < xs.end(); ++x) out[in_index(x, y, z)] = buf[i++];
      assert(i == buf.size());
    }
  }
  return out;
}

std::vector<Complex> PencilFft::transpose_yz(const std::vector<Complex>& data, bool to_z) {
  // row_comm exchange: y-ownership (all <-> split over pc by col) against
  // z-ownership (split over pc by col <-> all); x-range fixed = out_x().
  const std::size_t n = n_;
  const Range xm = out_x();
  const auto p = static_cast<std::size_t>(pc_);

  std::vector<std::vector<Complex>> send(p);
  for (std::size_t d = 0; d < p; ++d) {
    const Range yd = split_range(n, pc_, static_cast<int>(d));
    const Range zd = split_range(n, pc_, static_cast<int>(d));
    auto& buf = send[d];
    if (to_z) {
      // y-pencil -> z-pencil: send block (y in Ryo(d), z in Rz(col), x).
      const Range zm = in_z();
      buf.reserve(zm.count * xm.count * yd.count);
      for (std::size_t z = zm.begin; z < zm.end(); ++z)
        for (std::size_t x = xm.begin; x < xm.end(); ++x)
          for (std::size_t y = yd.begin; y < yd.end(); ++y)
            buf.push_back(data[((z - zm.begin) * xm.count + (x - xm.begin)) * n + y]);
    } else {
      // z-pencil -> y-pencil: send block (y in Ryo(col), z in Rz(d), x).
      const Range ym = out_y();
      buf.reserve(zd.count * xm.count * ym.count);
      for (std::size_t z = zd.begin; z < zd.end(); ++z)
        for (std::size_t x = xm.begin; x < xm.end(); ++x)
          for (std::size_t y = ym.begin; y < ym.end(); ++y)
            buf.push_back(data[out_index(x, y, z)]);
    }
  }
  auto recv = row_comm_.alltoallv(std::move(send));

  std::vector<Complex> out;
  if (to_z) {
    const Range ym = out_y();
    out.resize(n * xm.count * ym.count);
    for (std::size_t s = 0; s < p; ++s) {
      const Range zs = split_range(n, pc_, static_cast<int>(s));
      const auto& buf = recv[s];
      std::size_t i = 0;
      for (std::size_t z = zs.begin; z < zs.end(); ++z)
        for (std::size_t x = xm.begin; x < xm.end(); ++x)
          for (std::size_t y = ym.begin; y < ym.end(); ++y) out[out_index(x, y, z)] = buf[i++];
      assert(i == buf.size());
    }
  } else {
    const Range zm = in_z();
    out.resize(zm.count * xm.count * n);
    for (std::size_t s = 0; s < p; ++s) {
      const Range ys = split_range(n, pc_, static_cast<int>(s));
      const auto& buf = recv[s];
      std::size_t i = 0;
      for (std::size_t z = zm.begin; z < zm.end(); ++z)
        for (std::size_t x = xm.begin; x < xm.end(); ++x)
          for (std::size_t y = ys.begin; y < ys.end(); ++y)
            out[((z - zm.begin) * xm.count + (x - xm.begin)) * n + y] = buf[i++];
      assert(i == buf.size());
    }
  }
  return out;
}

std::vector<Complex> PencilFft::forward(const std::vector<Complex>& in) {
  assert(in.size() == in_cells());
  // FFT x on contiguous lines of the x-pencils.
  std::vector<Complex> xp = in;
  const std::size_t nlines_x = in_y().count * in_z().count;
  for (std::size_t l = 0; l < nlines_x; ++l) line_.forward(&xp[l * n_]);

  auto yp = transpose_xy(xp, /*to_y=*/true);
  const std::size_t nlines_y = out_x().count * in_z().count;
  for (std::size_t l = 0; l < nlines_y; ++l) line_.forward(&yp[l * n_]);

  auto zp = transpose_yz(yp, /*to_z=*/true);
  const std::size_t nlines_z = out_x().count * out_y().count;
  for (std::size_t l = 0; l < nlines_z; ++l) line_.forward(&zp[l * n_]);
  return zp;
}

std::vector<Complex> PencilFft::inverse(const std::vector<Complex>& in) {
  assert(in.size() == out_cells());
  std::vector<Complex> zp = in;
  const std::size_t nlines_z = out_x().count * out_y().count;
  for (std::size_t l = 0; l < nlines_z; ++l) line_.inverse(&zp[l * n_]);

  auto yp = transpose_yz(zp, /*to_z=*/false);
  const std::size_t nlines_y = out_x().count * in_z().count;
  for (std::size_t l = 0; l < nlines_y; ++l) line_.inverse(&yp[l * n_]);

  auto xp = transpose_xy(yp, /*to_y=*/false);
  const std::size_t nlines_x = in_y().count * in_z().count;
  for (std::size_t l = 0; l < nlines_x; ++l) line_.inverse(&xp[l * n_]);
  return xp;
}

}  // namespace greem::fft
