#include "ic/zeldovich.hpp"

#include <cmath>
#include <numbers>

#include "fft/fft3d.hpp"
#include "ic/gaussian_field.hpp"

namespace greem::ic {
namespace {

/// Assemble particles from grid displacements psi and velocity factor.
InitialConditions assemble(std::size_t n, double a,
                           const std::array<std::vector<double>, 3>& psi, double vfac) {
  InitialConditions ics;
  const std::size_t np = n * n * n;
  ics.pos.resize(np);
  ics.mom.resize(np);
  ics.particle_mass = 1.0 / static_cast<double>(np);
  ics.a_start = a;

  double disp2_sum = 0;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t iz = 0; iz < n; ++iz)
    for (std::size_t iy = 0; iy < n; ++iy)
      for (std::size_t ix = 0; ix < n; ++ix) {
        const std::size_t cell = (iz * n + iy) * n + ix;
        const Vec3 q{(static_cast<double>(ix) + 0.5) * inv_n,
                     (static_cast<double>(iy) + 0.5) * inv_n,
                     (static_cast<double>(iz) + 0.5) * inv_n};
        const Vec3 d{psi[0][cell], psi[1][cell], psi[2][cell]};
        ics.pos[cell] = wrap01(q + d);
        ics.mom[cell] = d * vfac;
        disp2_sum += d.norm2();
      }
  ics.rms_displacement_spacings =
      std::sqrt(disp2_sum / static_cast<double>(np)) * static_cast<double>(n);
  return ics;
}

}  // namespace

InitialConditions zeldovich_ics(const ZeldovichParams& params, const PowerSpectrum& ps,
                                const cosmo::Cosmology& cosmology) {
  const std::size_t n = params.n_per_dim;
  const double a = params.a_start;

  const auto delta = gaussian_random_field(n, ps, params.seed);
  const auto psi = displacement_field(delta, n);

  // Growing-mode velocity factor: p = a^2 dx/dt = a^2 H(a) f(a) psi.
  const double vfac = a * a * cosmology.hubble(a) * cosmology.growth_rate(a);
  return assemble(n, a, psi, vfac);
}

InitialConditions lpt2_ics(const ZeldovichParams& params, const PowerSpectrum& ps,
                           const cosmo::Cosmology& cosmology) {
  const std::size_t n = params.n_per_dim;
  const double a = params.a_start;

  const auto delta = gaussian_random_field(n, ps, params.seed);
  const auto psi1 = displacement_field(delta, n);

  // Second derivatives of the first-order potential: (phi1,ij)_k =
  // k_i k_j delta_k / k^2, six fields by inverse FFT.
  fft::Fft3d fft(n);
  const auto delta_k = fft.forward_real(delta);
  const double two_pi = 2.0 * std::numbers::pi;
  auto second_derivative = [&](int i, int j) {
    std::vector<fft::Complex> f(delta_k.size());
    for (std::size_t z = 0; z < n; ++z) {
      const long kz = fft::wavenumber(z, n);
      for (std::size_t y = 0; y < n; ++y) {
        const long ky = fft::wavenumber(y, n);
        for (std::size_t x = 0; x < n; ++x) {
          const long kx = fft::wavenumber(x, n);
          const long kk[3] = {kx, ky, kz};
          const double k2 = two_pi * two_pi * static_cast<double>(kx * kx + ky * ky + kz * kz);
          const std::size_t c = fft.index(x, y, z);
          f[c] = k2 == 0 ? fft::Complex{}
                         : delta_k[c] * (two_pi * two_pi *
                                         static_cast<double>(kk[i]) *
                                         static_cast<double>(kk[j]) / k2);
        }
      }
    }
    return fft.inverse_to_real(std::move(f));
  };
  const auto pxx = second_derivative(0, 0);
  const auto pyy = second_derivative(1, 1);
  const auto pzz = second_derivative(2, 2);
  const auto pxy = second_derivative(0, 1);
  const auto pxz = second_derivative(0, 2);
  const auto pyz = second_derivative(1, 2);

  // delta2 = sum_{i<j} [phi,ii phi,jj - phi,ij^2].
  std::vector<double> delta2(delta.size());
  for (std::size_t c = 0; c < delta.size(); ++c)
    delta2[c] = pxx[c] * pyy[c] - pxy[c] * pxy[c] + pxx[c] * pzz[c] - pxz[c] * pxz[c] +
                pyy[c] * pzz[c] - pyz[c] * pyz[c];

  // psi2 = D2 grad(phi2) with D2 = -(3/7) D1^2 (D1 = 1 at the IC epoch):
  // in k-space (3/7) i k delta2_k / k^2 = (3/7) * displacement_field(delta2).
  const auto psi2 = displacement_field(delta2, n);

  const double f1 = cosmology.growth_rate(a);
  // Second-order growth rate, f2 ~ 2 Omega_m(a)^(6/11) (Bouchet et al.).
  const double Ea = cosmology.E(a);
  const double omega_a = cosmology.omega_m / (a * a * a) / (Ea * Ea);
  const double f2 = 2.0 * std::pow(omega_a, 6.0 / 11.0);
  const double h_a = cosmology.hubble(a);
  const double v1 = a * a * h_a * f1;
  const double v2 = a * a * h_a * f2;

  // Combine displacements; velocities need the per-order growth rates, so
  // assemble positions from (psi1 + 3/7 psi2) but momenta from the split.
  std::array<std::vector<double>, 3> psi_total;
  InitialConditions ics;
  const std::size_t np = n * n * n;
  for (int axis = 0; axis < 3; ++axis) {
    auto& t = psi_total[static_cast<std::size_t>(axis)];
    t.resize(np);
    for (std::size_t c = 0; c < np; ++c)
      t[c] = psi1[static_cast<std::size_t>(axis)][c] +
             (3.0 / 7.0) * psi2[static_cast<std::size_t>(axis)][c];
  }
  ics = assemble(n, a, psi_total, 0.0);
  for (std::size_t iz = 0, cell = 0; iz < n; ++iz)
    for (std::size_t iy = 0; iy < n; ++iy)
      for (std::size_t ix = 0; ix < n; ++ix, ++cell) {
        ics.mom[cell] = Vec3{psi1[0][cell], psi1[1][cell], psi1[2][cell]} * v1 +
                        Vec3{psi2[0][cell], psi2[1][cell], psi2[2][cell]} *
                            ((3.0 / 7.0) * v2);
      }
  return ics;
}

}  // namespace greem::ic
