#include "ic/gaussian_field.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "fft/fft3d.hpp"
#include "util/rng.hpp"

namespace greem::ic {

std::vector<double> gaussian_random_field(std::size_t n, const PowerSpectrum& ps,
                                          std::uint64_t seed) {
  fft::Fft3d fft(n);
  const std::size_t cells = n * n * n;

  // White noise w ~ N(0,1) per cell: W = F(w) has <|W_k|^2> = n^3 with the
  // exact Hermitian symmetry of a real field.
  std::vector<fft::Complex> field(cells);
  {
    Rng rng(seed, 0);
    for (std::size_t i = 0; i < cells; ++i) field[i] = {rng.normal(), 0.0};
  }
  fft.forward(field);

  // Shape to the spectrum.  delta(x) = sum_k c_k exp(2 pi i k.x) with
  // <|c_k|^2> = P(k); c_k = W_k sqrt(P) / n^{3/2}, and our inverse FFT
  // carries 1/n^3, so multiply by n^3 / n^{3/2} = n^{3/2} in total.
  const double norm = std::pow(static_cast<double>(n), 1.5);
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t z = 0; z < n; ++z) {
    const long kz = fft::wavenumber(z, n);
    for (std::size_t y = 0; y < n; ++y) {
      const long ky = fft::wavenumber(y, n);
      for (std::size_t x = 0; x < n; ++x) {
        const long kx = fft::wavenumber(x, n);
        const double k = two_pi * std::sqrt(static_cast<double>(kx * kx + ky * ky + kz * kz));
        const double amp = k > 0 ? std::sqrt(ps(k)) * norm : 0.0;  // zero-mean field
        field[fft.index(x, y, z)] *= amp;
      }
    }
  }
  fft.inverse(field);

  std::vector<double> delta(cells);
  for (std::size_t i = 0; i < cells; ++i) delta[i] = field[i].real();
  return delta;
}

std::array<std::vector<double>, 3> displacement_field(const std::vector<double>& delta,
                                                      std::size_t n) {
  fft::Fft3d fft(n);
  auto delta_k = fft.forward_real(delta);
  const double two_pi = 2.0 * std::numbers::pi;

  std::array<std::vector<double>, 3> psi;
  for (int axis = 0; axis < 3; ++axis) {
    std::vector<fft::Complex> pk(delta_k.size());
    for (std::size_t z = 0; z < n; ++z) {
      const long kz = fft::wavenumber(z, n);
      for (std::size_t y = 0; y < n; ++y) {
        const long ky = fft::wavenumber(y, n);
        for (std::size_t x = 0; x < n; ++x) {
          const long kx = fft::wavenumber(x, n);
          const long kk[3] = {kx, ky, kz};
          const double k2 =
              two_pi * two_pi * static_cast<double>(kx * kx + ky * ky + kz * kz);
          const std::size_t i = fft.index(x, y, z);
          // Nyquist planes are zeroed: the spectral derivative i*k is not
          // Hermitian at the self-conjugate Nyquist mode, so its content
          // cannot be represented in a real displacement field.
          const bool nyquist = (x == n / 2) || (y == n / 2) || (z == n / 2);
          if (k2 == 0 || nyquist) {
            pk[i] = 0;
          } else {
            // psi_k = i k / k^2 delta_k
            const double kc = two_pi * static_cast<double>(kk[axis]);
            pk[i] = fft::Complex(0.0, kc / k2) * delta_k[i];
          }
        }
      }
    }
    psi[static_cast<std::size_t>(axis)] = fft.inverse_to_real(std::move(pk));
  }
  return psi;
}

}  // namespace greem::ic
