#pragma once
// Initial power spectra.  The paper's run uses a spectrum with a sharp
// small-scale cutoff from neutralino free streaming (Green, Hofmann &
// Schwarz 2004); we model the cutoff as an exponential damping of a
// power-law spectrum, which reproduces the qualitative feature that
// matters for the microhalo problem: no power below the cutoff scale, so
// the first objects form at a characteristic mass.

#include <cmath>
#include <memory>

namespace greem::ic {

/// P(k) in the unit box (k = 2 pi |n|, volume 1), at the epoch the caller
/// chooses to interpret it (the IC generator uses it at the start time).
class PowerSpectrum {
 public:
  virtual ~PowerSpectrum() = default;
  virtual double operator()(double k) const = 0;
};

/// P(k) = A k^n.
class PowerLaw final : public PowerSpectrum {
 public:
  PowerLaw(double amplitude, double index) : a_(amplitude), n_(index) {}
  double operator()(double k) const override { return k > 0 ? a_ * std::pow(k, n_) : 0.0; }

 private:
  double a_, n_;
};

/// P(k) = A k^n exp(-(k/k_cut)^2): free-streaming damped power law.
class CutoffPowerLaw final : public PowerSpectrum {
 public:
  CutoffPowerLaw(double amplitude, double index, double k_cut)
      : a_(amplitude), n_(index), kcut_(k_cut) {}
  double operator()(double k) const override {
    if (k <= 0) return 0.0;
    const double q = k / kcut_;
    return a_ * std::pow(k, n_) * std::exp(-q * q);
  }

 private:
  double a_, n_, kcut_;
};

/// Field variance sigma^2 = Int 4 pi k^2 P(k) dk / (2 pi)^3 over
/// [kmin, kmax] (diagnostics/tests).
double field_variance(const PowerSpectrum& ps, double kmin, double kmax);

}  // namespace greem::ic
