#include "ic/powerspec.hpp"

#include <numbers>

namespace greem::ic {

double field_variance(const PowerSpectrum& ps, double kmin, double kmax) {
  const int n = 4096;
  const double h = (kmax - kmin) / n;
  double sum = 0;
  for (int i = 0; i <= n; ++i) {
    const double k = kmin + i * h;
    const double w = (i == 0 || i == n) ? 1.0 : (i % 2 ? 4.0 : 2.0);
    sum += w * k * k * ps(k);
  }
  sum *= h / 3.0;
  const double two_pi = 2.0 * std::numbers::pi;
  return 4.0 * std::numbers::pi * sum / (two_pi * two_pi * two_pi);
}

}  // namespace greem::ic
