#pragma once
// Zel'dovich-approximation initial conditions: particles start on a grid
// and are displaced by the linear displacement field; comoving momenta
// follow the linear growing mode, p = a^2 H(a) f(a) psi(q) D-scaled.

#include <cstdint>
#include <vector>

#include "cosmo/cosmology.hpp"
#include "ic/powerspec.hpp"
#include "util/vec3.hpp"

namespace greem::ic {

struct InitialConditions {
  std::vector<Vec3> pos;  ///< comoving, in [0,1)^3
  std::vector<Vec3> mom;  ///< comoving momenta p = a^2 dx/dt
  double particle_mass = 0;
  double a_start = 0;
  /// RMS Zel'dovich displacement in mean interparticle spacings
  /// (the approximation is valid while this is well below 1).
  double rms_displacement_spacings = 0;
};

struct ZeldovichParams {
  std::size_t n_per_dim = 32;     ///< particles = n^3, also the IC mesh size
  double a_start = 0.02;          ///< starting scale factor
  std::uint64_t seed = 42;
  double max_displacement = 0.0;  ///< >0: warn threshold in mean spacings (diagnostic)
};

/// Generate ICs; `ps` is the spectrum of the density contrast *at a_start*.
InitialConditions zeldovich_ics(const ZeldovichParams& params, const PowerSpectrum& ps,
                                const cosmo::Cosmology& cosmology);

/// Second-order LPT initial conditions (Scoccimarro 1998): adds the
/// displacement psi2 = -(3/7) grad phi2 with lap(phi2) = sum_{i<j}
/// [phi1,ii phi1,jj - phi1,ij^2], removing the leading transients of the
/// Zel'dovich approximation.  Velocities carry the second-order growth
/// rate f2 ~ 2 Omega_m^(6/11).  Same spectrum/seed conventions as
/// zeldovich_ics; for a single plane wave the two are identical.
InitialConditions lpt2_ics(const ZeldovichParams& params, const PowerSpectrum& ps,
                           const cosmo::Cosmology& cosmology);

}  // namespace greem::ic
