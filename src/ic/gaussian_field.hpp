#pragma once
// Gaussian random field realization and k-space helpers for IC generation.

#include <array>
#include <cstdint>
#include <vector>

#include "ic/powerspec.hpp"

namespace greem::ic {

/// Real n^3 density-contrast field delta(x) with spectrum `ps`
/// (<|delta_k|^2> = P(k) in the unit box), from seeded white noise shaped
/// in k-space.  Reproducible for a fixed seed regardless of rank count.
std::vector<double> gaussian_random_field(std::size_t n, const PowerSpectrum& ps,
                                          std::uint64_t seed);

/// Zel'dovich displacement fields psi from a density contrast:
/// psi_k = i k / k^2 * delta_k (so that delta = -div psi).
std::array<std::vector<double>, 3> displacement_field(const std::vector<double>& delta,
                                                      std::size_t n);

}  // namespace greem::ic
