#pragma once
// Flat FLRW background cosmology and the kick/drift factors of the
// comoving-coordinate symplectic integrator.
//
// Internal units: box length 1, G = 1.  Comoving positions x and momenta
// p = a^2 dx/dt evolve as dx/dt = p/a^2, dp/dt = g/a with g the comoving
// peculiar acceleration (computed by TreePM with the mean density
// subtracted).  Over a scale-factor interval the update factors are
//   drift = Int dt/a^2 = Int da / (a^3 H),   kick = Int dt/a = Int da / (a^2 H).

#include <cmath>

namespace greem::cosmo {

struct Cosmology {
  double omega_m = 0.272;   ///< WMAP7 concordance (paper ref. [38])
  double omega_l = 0.728;
  double H0 = 1.0;          ///< Hubble constant in internal time units

  double omega_k() const { return 1.0 - omega_m - omega_l; }

  /// E(a) = H(a)/H0.
  double E(double a) const {
    return std::sqrt(omega_m / (a * a * a) + omega_k() / (a * a) + omega_l);
  }
  double hubble(double a) const { return H0 * E(a); }

  /// Mean comoving matter density of the unit box (G = 1):
  /// rho_mean = Omega_m * 3 H0^2 / (8 pi).
  double mean_density() const;

  /// Linear growth factor D(a), normalized to D(1) = 1.
  double growth_factor(double a) const;

  /// Logarithmic growth rate f = dlnD/dlna.
  double growth_rate(double a) const;

  double drift_factor(double a0, double a1) const;
  double kick_factor(double a0, double a1) const;

  static double a_of_z(double z) { return 1.0 / (1.0 + z); }
  static double z_of_a(double a) { return 1.0 / a - 1.0; }

  /// Concordance cosmology with H0 chosen so the unit box holds total
  /// matter mass 1 (the convention of the simulation drivers).
  static Cosmology concordance_unit_mass();

  /// Einstein-de Sitter (Omega_m = 1) with unit box mass; analytic
  /// D(a) = a makes it the main test cosmology.
  static Cosmology eds_unit_mass();
};

}  // namespace greem::cosmo
