#include "cosmo/cosmology.hpp"

#include <numbers>

namespace greem::cosmo {
namespace {

template <class F>
double simpson(F&& f, double lo, double hi, int n) {
  const double h = (hi - lo) / n;
  double sum = f(lo) + f(hi);
  for (int i = 1; i < n; ++i) sum += f(lo + i * h) * (i % 2 ? 4.0 : 2.0);
  return sum * h / 3.0;
}

}  // namespace

double Cosmology::mean_density() const {
  return omega_m * 3.0 * H0 * H0 / (8.0 * std::numbers::pi);
}

double Cosmology::growth_factor(double a) const {
  // D(a) proportional to H(a) Int_0^a da' / (a' H(a'))^3 (Heath 1977).
  auto integrand = [&](double x) {
    if (x <= 0) return 0.0;
    const double he = x * E(x);
    return 1.0 / (he * he * he);
  };
  auto unnorm = [&](double aa) { return E(aa) * simpson(integrand, 0.0, aa, 1024); };
  return unnorm(a) / unnorm(1.0);
}

double Cosmology::growth_rate(double a) const {
  const double da = 1e-5 * a;
  const double d1 = growth_factor(a - da), d2 = growth_factor(a + da);
  return a * (d2 - d1) / (2.0 * da) / growth_factor(a);
}

double Cosmology::drift_factor(double a0, double a1) const {
  auto f = [&](double a) { return 1.0 / (a * a * a * hubble(a)); };
  return simpson(f, a0, a1, 256);
}

double Cosmology::kick_factor(double a0, double a1) const {
  auto f = [&](double a) { return 1.0 / (a * a * hubble(a)); };
  return simpson(f, a0, a1, 256);
}

Cosmology Cosmology::concordance_unit_mass() {
  Cosmology c;
  // mean_density * volume = 1  =>  H0 = sqrt(8 pi / (3 Omega_m)).
  c.H0 = std::sqrt(8.0 * std::numbers::pi / (3.0 * c.omega_m));
  return c;
}

Cosmology Cosmology::eds_unit_mass() {
  Cosmology c;
  c.omega_m = 1.0;
  c.omega_l = 0.0;
  c.H0 = std::sqrt(8.0 * std::numbers::pi / 3.0);
  return c;
}

}  // namespace greem::cosmo
