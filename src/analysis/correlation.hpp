#pragma once
// Two-point correlation function xi(r): the real-space companion of the
// power spectrum, measured by periodic pair counting against the analytic
// uniform expectation.  Used by the microhalo example to quantify the
// clustering the paper's Fig. 6 shows visually.

#include <cstdint>
#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace greem::analysis {

struct CorrelationBin {
  double r = 0;             ///< geometric bin center
  double xi = 0;            ///< DD / RR_analytic - 1
  std::uint64_t pairs = 0;  ///< DD count
};

struct CorrelationParams {
  double r_min = 1e-3;
  double r_max = 0.1;   ///< must be < 0.5 (minimum-image validity)
  std::size_t nbins = 16;  ///< log-spaced
};

/// Periodic pair-count estimator over all N(N-1)/2 pairs (grid-hashed, so
/// cost ~ N * (pairs within r_max)).
std::vector<CorrelationBin> correlation_function(std::span<const Vec3> pos,
                                                 const CorrelationParams& params);

}  // namespace greem::analysis
