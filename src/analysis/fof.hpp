#pragma once
// Friends-of-friends halo finder (periodic, grid-hashed union-find):
// particles closer than the linking length join a group.  Used to identify
// the "smallest dark matter structures" of the paper's science analysis
// (the run resolves them with >~ 1e5 particles; scaled runs use the same
// finder with b = 0.2 mean separations).

#include <cstdint>
#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace greem::analysis {

struct FofGroups {
  /// Group index per particle (groups sorted by size, largest = 0);
  /// kNoGroup for particles in groups below min_members.
  std::vector<std::int32_t> group_of;
  /// Per-group member counts (size >= min_members, descending).
  std::vector<std::uint32_t> group_size;

  static constexpr std::int32_t kNoGroup = -1;
  std::size_t ngroups() const { return group_size.size(); }
};

FofGroups fof_groups(std::span<const Vec3> pos, double linking_length,
                     std::uint32_t min_members = 32);

/// Conventional linking length: b * (mean interparticle spacing), b = 0.2.
double fof_linking_length(std::size_t n_particles, double b = 0.2);

/// Halo mass function dn/dlog10(M) from a FoF catalog (unit box volume);
/// log-spaced bins spanning the catalog's mass range.  The microhalo runs
/// show the characteristic cutoff-scale pileup of the first objects.
struct MassFunctionBin {
  double mass = 0;            ///< geometric bin center
  std::size_t count = 0;      ///< halos in the bin
  double dn_dlog10m = 0;      ///< count / dex width (V = 1)
};

std::vector<MassFunctionBin> halo_mass_function(const FofGroups& groups,
                                                double particle_mass, std::size_t nbins = 8);

}  // namespace greem::analysis
