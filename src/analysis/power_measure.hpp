#pragma once
// Matter power spectrum measurement: density assignment, FFT, window
// deconvolution, spherical shell binning, optional shot-noise subtraction.
// Closes the loop on the IC generator (tests recover the input spectrum).

#include <span>
#include <vector>

#include "pm/assign.hpp"
#include "util/vec3.hpp"

namespace greem::analysis {

struct PowerSpectrumBin {
  double k = 0;        ///< mean k of the shell (2 pi |n| units)
  double power = 0;    ///< shell-averaged P(k)
  std::size_t modes = 0;
};

struct PowerMeasureParams {
  std::size_t n_mesh = 64;
  pm::Scheme scheme = pm::Scheme::kTSC;
  bool subtract_shot_noise = true;
};

std::vector<PowerSpectrumBin> measure_power(std::span<const Vec3> pos,
                                            const PowerMeasureParams& params);

}  // namespace greem::analysis
