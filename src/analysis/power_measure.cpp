#include "analysis/power_measure.hpp"

#include <cmath>
#include <numbers>

#include "fft/fft3d.hpp"

namespace greem::analysis {

std::vector<PowerSpectrumBin> measure_power(std::span<const Vec3> pos,
                                            const PowerMeasureParams& params) {
  const std::size_t n = params.n_mesh;
  const auto np = static_cast<double>(pos.size());

  // Density contrast delta = rho/rho_mean - 1 via equal-mass assignment.
  std::vector<double> delta(n * n * n, 0.0);
  std::vector<double> unit_mass(pos.size(), 1.0 / np);
  pm::assign_density_periodic(delta, n, params.scheme, pos, unit_mass);
  for (double& v : delta) v -= 1.0;  // mean density of unit mass in unit box is 1

  fft::Fft3d fft(n);
  auto dk = fft.forward_real(delta);
  // delta_k (continuum convention, <|delta_k|^2> = P) = DFT / n^3.
  const double norm = 1.0 / static_cast<double>(n * n * n);

  const std::size_t nbins = n / 2;
  std::vector<PowerSpectrumBin> bins(nbins);
  const double shot = params.subtract_shot_noise ? 1.0 / np : 0.0;
  const double two_pi = 2.0 * std::numbers::pi;

  for (std::size_t z = 0; z < n; ++z) {
    const long kz = fft::wavenumber(z, n);
    for (std::size_t y = 0; y < n; ++y) {
      const long ky = fft::wavenumber(y, n);
      for (std::size_t x = 0; x < n; ++x) {
        const long kx = fft::wavenumber(x, n);
        const double kn = std::sqrt(static_cast<double>(kx * kx + ky * ky + kz * kz));
        const auto bin = static_cast<std::size_t>(kn + 0.5);
        if (bin == 0 || bin >= nbins) continue;
        const double w = pm::window(params.scheme, kx, n) * pm::window(params.scheme, ky, n) *
                         pm::window(params.scheme, kz, n);
        const double amp = std::abs(dk[fft.index(x, y, z)]) * norm / w;
        bins[bin].power += amp * amp - shot;
        bins[bin].k += two_pi * kn;
        ++bins[bin].modes;
      }
    }
  }
  std::vector<PowerSpectrumBin> out;
  for (std::size_t b = 1; b < nbins; ++b) {
    if (bins[b].modes == 0) continue;
    PowerSpectrumBin r = bins[b];
    r.k /= static_cast<double>(r.modes);
    r.power /= static_cast<double>(r.modes);
    out.push_back(r);
  }
  return out;
}

}  // namespace greem::analysis
