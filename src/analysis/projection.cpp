#include "analysis/projection.hpp"

#include <cmath>

namespace greem::analysis {

GrayImage project_density(std::span<const Vec3> pos, const ProjectionParams& params) {
  const std::size_t npix = params.pixels;
  GrayImage img(npix, npix);
  const int a0 = (params.axis + 1) % 3;  // image x-axis
  const int a1 = (params.axis + 2) % 3;  // image y-axis
  const Box& r = params.region;
  const double sx = r.hi[static_cast<std::size_t>(a0)] - r.lo[static_cast<std::size_t>(a0)];
  const double sy = r.hi[static_cast<std::size_t>(a1)] - r.lo[static_cast<std::size_t>(a1)];

  for (const Vec3& p : pos) {
    if (!r.contains(p)) continue;
    // CIC deposit onto the image plane.
    const double u =
        (p[static_cast<std::size_t>(a0)] - r.lo[static_cast<std::size_t>(a0)]) / sx * static_cast<double>(npix) - 0.5;
    const double v =
        (p[static_cast<std::size_t>(a1)] - r.lo[static_cast<std::size_t>(a1)]) / sy * static_cast<double>(npix) - 0.5;
    const long iu = static_cast<long>(std::floor(u));
    const long iv = static_cast<long>(std::floor(v));
    const double fu = u - static_cast<double>(iu);
    const double fv = v - static_cast<double>(iv);
    for (int dv = 0; dv < 2; ++dv)
      for (int du = 0; du < 2; ++du) {
        const long x = iu + du, y = iv + dv;
        if (x < 0 || y < 0 || x >= static_cast<long>(npix) || y >= static_cast<long>(npix))
          continue;
        const double w = (du ? fu : 1 - fu) * (dv ? fv : 1 - fv);
        img.at(static_cast<std::size_t>(x), static_cast<std::size_t>(y)) += w;
      }
  }
  return img;
}

bool write_projection(std::span<const Vec3> pos, const ProjectionParams& params,
                      const std::string& path) {
  const GrayImage img = project_density(pos, params);
  // Scale: one particle per pixel on average maps to v_scale 1.
  const double mean = static_cast<double>(pos.size()) /
                      static_cast<double>(params.pixels * params.pixels);
  return img.write_pgm_log(path, std::max(mean, 1e-12));
}

}  // namespace greem::analysis
