#include "analysis/fof.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace greem::analysis {
namespace {

struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) { std::iota(parent.begin(), parent.end(), 0u); }

  std::uint32_t find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // path halving
      x = parent[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }

  std::vector<std::uint32_t> parent;
};

}  // namespace

double fof_linking_length(std::size_t n_particles, double b) {
  return b / std::cbrt(static_cast<double>(n_particles));
}

std::vector<MassFunctionBin> halo_mass_function(const FofGroups& groups,
                                                double particle_mass, std::size_t nbins) {
  std::vector<MassFunctionBin> out(nbins);
  if (groups.group_size.empty() || nbins == 0) return {};
  const double m_max = particle_mass * groups.group_size.front();
  const double m_min = particle_mass * groups.group_size.back();
  const double l0 = std::log10(m_min);
  const double dl = std::max((std::log10(m_max) - l0) / static_cast<double>(nbins), 1e-12);
  for (std::size_t b = 0; b < nbins; ++b)
    out[b].mass = std::pow(10.0, l0 + dl * (static_cast<double>(b) + 0.5));
  for (const auto sz : groups.group_size) {
    const double lm = std::log10(particle_mass * sz);
    const auto b = std::min(static_cast<std::size_t>((lm - l0) / dl), nbins - 1);
    ++out[b].count;
  }
  for (auto& b : out) b.dn_dlog10m = static_cast<double>(b.count) / dl;
  return out;
}

FofGroups fof_groups(std::span<const Vec3> pos, double linking_length,
                     std::uint32_t min_members) {
  const std::size_t n = pos.size();
  const double ll2 = linking_length * linking_length;

  // Hash grid with cell size >= linking length, so only the 27 neighbor
  // cells need scanning.
  const auto ncell = std::max<std::size_t>(
      1, std::min<std::size_t>(static_cast<std::size_t>(1.0 / linking_length), 1024));
  const double cell_size = 1.0 / static_cast<double>(ncell);
  auto cell_of = [&](double v) {
    auto c = static_cast<std::size_t>(wrap01(v) / cell_size);
    return std::min(c, ncell - 1);
  };
  auto cell_index = [&](std::size_t cx, std::size_t cy, std::size_t cz) {
    return (cz * ncell + cy) * ncell + cx;
  };

  // Counting sort of particles into cells.
  std::vector<std::uint32_t> cell(n);
  std::vector<std::uint32_t> count(ncell * ncell * ncell + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    cell[i] = static_cast<std::uint32_t>(
        cell_index(cell_of(pos[i].x), cell_of(pos[i].y), cell_of(pos[i].z)));
    ++count[cell[i] + 1];
  }
  std::partial_sum(count.begin(), count.end(), count.begin());
  std::vector<std::uint32_t> order(n);
  {
    auto cursor = count;
    for (std::size_t i = 0; i < n; ++i) order[cursor[cell[i]]++] = static_cast<std::uint32_t>(i);
  }

  UnionFind uf(n);
  const auto nc = static_cast<long>(ncell);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cx = cell_of(pos[i].x), cy = cell_of(pos[i].y), cz = cell_of(pos[i].z);
    for (long dz = -1; dz <= 1; ++dz)
      for (long dy = -1; dy <= 1; ++dy)
        for (long dx = -1; dx <= 1; ++dx) {
          const auto ncx = static_cast<std::size_t>((static_cast<long>(cx) + dx + nc) % nc);
          const auto ncy = static_cast<std::size_t>((static_cast<long>(cy) + dy + nc) % nc);
          const auto ncz = static_cast<std::size_t>((static_cast<long>(cz) + dz + nc) % nc);
          const std::size_t c = cell_index(ncx, ncy, ncz);
          for (std::uint32_t k = count[c]; k < count[c + 1]; ++k) {
            const std::uint32_t j = order[k];
            if (j <= i) continue;
            if (min_image(pos[i], pos[j]).norm2() <= ll2)
              uf.unite(static_cast<std::uint32_t>(i), j);
          }
        }
  }

  // Collect roots, apply the membership threshold, order by size.
  std::unordered_map<std::uint32_t, std::uint32_t> members;
  for (std::size_t i = 0; i < n; ++i) ++members[uf.find(static_cast<std::uint32_t>(i))];
  std::vector<std::pair<std::uint32_t, std::uint32_t>> big;  // (root, size)
  for (const auto& [root, m] : members)
    if (m >= min_members) big.emplace_back(root, m);
  std::sort(big.begin(), big.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  FofGroups out;
  out.group_of.assign(n, FofGroups::kNoGroup);
  out.group_size.reserve(big.size());
  std::unordered_map<std::uint32_t, std::int32_t> gid;
  for (std::size_t g = 0; g < big.size(); ++g) {
    gid[big[g].first] = static_cast<std::int32_t>(g);
    out.group_size.push_back(big[g].second);
  }
  for (std::size_t i = 0; i < n; ++i) {
    auto it = gid.find(uf.find(static_cast<std::uint32_t>(i)));
    if (it != gid.end()) out.group_of[i] = it->second;
  }
  return out;
}

}  // namespace greem::analysis
