#pragma once
// Projected density images (the paper's Fig. 6 snapshots and zooms):
// particles inside a sub-box are CIC-deposited along the line of sight
// onto a 2-D image.

#include <span>
#include <string>

#include "util/box.hpp"
#include "util/pgm.hpp"
#include "util/vec3.hpp"

namespace greem::analysis {

struct ProjectionParams {
  Box region;                   ///< sub-box to image (full box by default)
  std::size_t pixels = 512;     ///< image is pixels x pixels
  int axis = 2;                 ///< projection axis (0=x, 1=y, 2=z)
};

/// Surface-density image of the particles inside the region.
GrayImage project_density(std::span<const Vec3> pos, const ProjectionParams& params);

/// Convenience: render and write a log-scaled PGM; returns false on I/O error.
bool write_projection(std::span<const Vec3> pos, const ProjectionParams& params,
                      const std::string& path);

}  // namespace greem::analysis
