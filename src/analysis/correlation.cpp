#include "analysis/correlation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <numeric>

namespace greem::analysis {

std::vector<CorrelationBin> correlation_function(std::span<const Vec3> pos,
                                                 const CorrelationParams& params) {
  assert(params.r_max < 0.5);
  const std::size_t n = pos.size();
  const double lmin = std::log(params.r_min), lmax = std::log(params.r_max);
  const double dl = (lmax - lmin) / static_cast<double>(params.nbins);
  const double rmax2 = params.r_max * params.r_max;
  const double rmin2 = params.r_min * params.r_min;

  // Hash grid with cell >= r_max.
  const auto ncell = std::max<std::size_t>(
      1, std::min<std::size_t>(static_cast<std::size_t>(1.0 / params.r_max), 128));
  const double cs = 1.0 / static_cast<double>(ncell);
  auto cell_of = [&](double v) {
    return std::min(static_cast<std::size_t>(wrap01(v) / cs), ncell - 1);
  };
  auto cell_index = [&](std::size_t cx, std::size_t cy, std::size_t cz) {
    return (cz * ncell + cy) * ncell + cx;
  };
  std::vector<std::uint32_t> count(ncell * ncell * ncell + 1, 0);
  std::vector<std::uint32_t> cell(n);
  for (std::size_t i = 0; i < n; ++i) {
    cell[i] = static_cast<std::uint32_t>(
        cell_index(cell_of(pos[i].x), cell_of(pos[i].y), cell_of(pos[i].z)));
    ++count[cell[i] + 1];
  }
  std::partial_sum(count.begin(), count.end(), count.begin());
  std::vector<std::uint32_t> order(n);
  {
    auto cursor = count;
    for (std::size_t i = 0; i < n; ++i) order[cursor[cell[i]]++] = static_cast<std::uint32_t>(i);
  }

  std::vector<std::uint64_t> dd(params.nbins, 0);
  auto tally = [&](std::size_t i, std::size_t j) {
    const double r2 = min_image(pos[i], pos[j]).norm2();
    if (r2 < rmin2 || r2 >= rmax2) return;
    const auto b = static_cast<std::size_t>((0.5 * std::log(r2) - lmin) / dl);
    if (b < params.nbins) ++dd[b];
  };
  const auto nc = static_cast<long>(ncell);
  if (ncell < 3) {
    // Tiny grid: neighbor offsets would alias; scan all pairs directly.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) tally(i, j);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t cx = cell_of(pos[i].x), cy = cell_of(pos[i].y),
                        cz = cell_of(pos[i].z);
      for (long dz = -1; dz <= 1; ++dz)
        for (long dy = -1; dy <= 1; ++dy)
          for (long dx = -1; dx <= 1; ++dx) {
            const auto ncx = static_cast<std::size_t>((static_cast<long>(cx) + dx + nc) % nc);
            const auto ncy = static_cast<std::size_t>((static_cast<long>(cy) + dy + nc) % nc);
            const auto ncz = static_cast<std::size_t>((static_cast<long>(cz) + dz + nc) % nc);
            const std::size_t c = cell_index(ncx, ncy, ncz);
            for (std::uint32_t k = count[c]; k < count[c + 1]; ++k) {
              const std::uint32_t j = order[k];
              if (j > i) tally(i, j);
            }
          }
    }
  }

  std::vector<CorrelationBin> out(params.nbins);
  const double npairs = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  for (std::size_t b = 0; b < params.nbins; ++b) {
    const double r0 = std::exp(lmin + dl * static_cast<double>(b));
    const double r1 = std::exp(lmin + dl * static_cast<double>(b + 1));
    const double shell = 4.0 / 3.0 * std::numbers::pi * (r1 * r1 * r1 - r0 * r0 * r0);
    out[b].r = std::sqrt(r0 * r1);
    out[b].pairs = dd[b];
    const double expected = npairs * shell;  // uniform expectation, V = 1
    out[b].xi = expected > 0 ? static_cast<double>(dd[b]) / expected - 1.0 : 0.0;
  }
  return out;
}

}  // namespace greem::analysis
