#include "analysis/profile.hpp"

#include <cmath>
#include <numbers>

namespace greem::analysis {

std::vector<ProfileBin> radial_profile(std::span<const Vec3> pos, double particle_mass,
                                       const Vec3& center, double r_min, double r_max,
                                       std::size_t nbins) {
  std::vector<ProfileBin> bins(nbins);
  const double lmin = std::log(r_min), lmax = std::log(r_max);
  const double dl = (lmax - lmin) / static_cast<double>(nbins);

  std::vector<std::size_t> counts(nbins, 0);
  for (const Vec3& p : pos) {
    const double r = min_image(center, p).norm();
    if (r < r_min || r >= r_max) continue;
    const auto b = static_cast<std::size_t>((std::log(r) - lmin) / dl);
    if (b < nbins) ++counts[b];
  }
  for (std::size_t b = 0; b < nbins; ++b) {
    const double r0 = std::exp(lmin + dl * static_cast<double>(b));
    const double r1 = std::exp(lmin + dl * static_cast<double>(b + 1));
    const double vol = 4.0 / 3.0 * std::numbers::pi * (r1 * r1 * r1 - r0 * r0 * r0);
    bins[b].r = std::sqrt(r0 * r1);
    bins[b].count = counts[b];
    bins[b].density = particle_mass * static_cast<double>(counts[b]) / vol;
  }
  return bins;
}

Vec3 periodic_center_of_mass(std::span<const Vec3> pos) {
  if (pos.empty()) return {};
  const Vec3 ref = pos[0];
  Vec3 sum{};
  for (const Vec3& p : pos) sum += min_image(ref, p);  // p - ref, wrapped
  return wrap01(ref + sum / static_cast<double>(pos.size()));
}

}  // namespace greem::analysis
