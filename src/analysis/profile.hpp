#pragma once
// Spherically averaged radial density profiles around a center (used by
// the microhalo example to inspect the inner structure of the first
// objects, the quantity driving the annihilation-signal science case).

#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace greem::analysis {

struct ProfileBin {
  double r = 0;        ///< geometric bin center
  double density = 0;  ///< mass / shell volume
  std::size_t count = 0;
};

/// Log-spaced bins over [r_min, r_max] (periodic distances).
std::vector<ProfileBin> radial_profile(std::span<const Vec3> pos, double particle_mass,
                                       const Vec3& center, double r_min, double r_max,
                                       std::size_t nbins);

/// Center-of-mass of a particle subset (periodic-aware, via the minimum
/// image relative to the first member).
Vec3 periodic_center_of_mass(std::span<const Vec3> pos);

}  // namespace greem::analysis
