#include "ewald/ewald.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace greem::ewald {
namespace {

constexpr double kPi = std::numbers::pi;

double two_over_sqrt_pi() { return 2.0 / std::sqrt(kPi); }

}  // namespace

Ewald::Ewald(EwaldParams params) : params_(params) {
  const int hmax = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(params_.hmax2))));
  for (int hx = -hmax; hx <= hmax; ++hx)
    for (int hy = -hmax; hy <= hmax; ++hy)
      for (int hz = -hmax; hz <= hmax; ++hz) {
        const int h2 = hx * hx + hy * hy + hz * hz;
        if (h2 == 0 || h2 > params_.hmax2) continue;
        reciprocal_.push_back(Vec3(hx, hy, hz));
        const double a2 = params_.alpha * params_.alpha;
        recip_amp_.push_back(std::exp(-kPi * kPi * static_cast<double>(h2) / a2) /
                             static_cast<double>(h2));
      }

  if (params_.table_n > 0) {
    const std::size_t n = params_.table_n;
    table_.resize((n + 1) * (n + 1) * (n + 1));
    // Boundary nodes sit a hair inside 0.5: min_image(0.5) wraps to -0.5,
    // which would store the odd-flipped value and corrupt the last cell.
    const double half = 0.5 * (1.0 - 1e-12);
    auto node = [&](std::size_t i) {
      return std::min(0.5 * static_cast<double>(i) / static_cast<double>(n), half);
    };
    for (std::size_t iz = 0; iz <= n; ++iz)
      for (std::size_t iy = 0; iy <= n; ++iy)
        for (std::size_t ix = 0; ix <= n; ++ix) {
          const Vec3 x{node(ix), node(iy), node(iz)};
          table_[(iz * (n + 1) + iy) * (n + 1) + ix] = correction(x);
        }
  }
}

Vec3 Ewald::correction(const Vec3& dx) const {
  // Smooth periodic correction: full Ewald force minus the minimum-image
  // Newton term (both singular parts cancel as |dx| -> 0).
  const Vec3 x{min_image(dx.x), min_image(dx.y), min_image(dx.z)};
  Vec3 a{};

  const double alpha = params_.alpha;
  const int nr = params_.nreal;
  for (int nx = -nr; nx <= nr; ++nx)
    for (int ny = -nr; ny <= nr; ++ny)
      for (int nz = -nr; nz <= nr; ++nz) {
        const Vec3 d = x - Vec3(nx, ny, nz);
        const double s2 = d.norm2();
        if (s2 < 1e-24) continue;  // exactly on an image: symmetric, skip
        const double s = std::sqrt(s2);
        const double w =
            std::erfc(alpha * s) + two_over_sqrt_pi() * alpha * s * std::exp(-alpha * alpha * s2);
        a -= d * (w / (s2 * s));
      }
  for (std::size_t i = 0; i < reciprocal_.size(); ++i) {
    const Vec3& h = reciprocal_[i];
    const double phase = 2.0 * kPi * h.dot(x);
    a -= h * (2.0 * recip_amp_[i] * std::sin(phase));
  }

  // Subtract minimum-image Newton.
  const double r2 = x.norm2();
  if (r2 > 1e-24) {
    const double r = std::sqrt(r2);
    a += x / (r2 * r);
  }
  return a;
}

Vec3 Ewald::pair_acceleration_exact(const Vec3& dx) const {
  const Vec3 x{min_image(dx.x), min_image(dx.y), min_image(dx.z)};
  Vec3 a = correction(x);
  const double r2 = x.norm2();
  if (r2 > 1e-24) {
    const double r = std::sqrt(r2);
    a -= x / (r2 * r);
  }
  return a;
}

Vec3 Ewald::correction_table(const Vec3& dx) const {
  assert(!table_.empty());
  const std::size_t n = params_.table_n;
  const Vec3 x{min_image(dx.x), min_image(dx.y), min_image(dx.z)};
  // Odd symmetry per component: component i of the correction is odd in
  // x_i and even in the others, so the octant table suffices.
  const double ax = std::abs(x.x), ay = std::abs(x.y), az = std::abs(x.z);
  const double fx = std::min(ax, 0.5) * 2.0 * static_cast<double>(n);
  const double fy = std::min(ay, 0.5) * 2.0 * static_cast<double>(n);
  const double fz = std::min(az, 0.5) * 2.0 * static_cast<double>(n);
  const auto ix = std::min(static_cast<std::size_t>(fx), n - 1);
  const auto iy = std::min(static_cast<std::size_t>(fy), n - 1);
  const auto iz = std::min(static_cast<std::size_t>(fz), n - 1);
  const double tx = fx - static_cast<double>(ix);
  const double ty = fy - static_cast<double>(iy);
  const double tz = fz - static_cast<double>(iz);
  auto at = [&](std::size_t i, std::size_t j, std::size_t k) -> const Vec3& {
    return table_[(k * (n + 1) + j) * (n + 1) + i];
  };
  Vec3 c{};
  for (int dzi = 0; dzi < 2; ++dzi)
    for (int dyi = 0; dyi < 2; ++dyi)
      for (int dxi = 0; dxi < 2; ++dxi) {
        const double w = (dxi ? tx : 1 - tx) * (dyi ? ty : 1 - ty) * (dzi ? tz : 1 - tz);
        c += at(ix + static_cast<std::size_t>(dxi), iy + static_cast<std::size_t>(dyi),
                iz + static_cast<std::size_t>(dzi)) *
             w;
      }
  if (x.x < 0) c.x = -c.x;
  if (x.y < 0) c.y = -c.y;
  if (x.z < 0) c.z = -c.z;
  return c;
}

Vec3 Ewald::pair_acceleration(const Vec3& dx) const {
  if (table_.empty()) return pair_acceleration_exact(dx);
  const Vec3 x{min_image(dx.x), min_image(dx.y), min_image(dx.z)};
  Vec3 a = correction_table(x);
  const double r2 = x.norm2();
  if (r2 > 1e-24) {
    const double r = std::sqrt(r2);
    a -= x / (r2 * r);
  }
  return a;
}

double Ewald::pair_potential(const Vec3& dx) const {
  const Vec3 x{min_image(dx.x), min_image(dx.y), min_image(dx.z)};
  double phi = 0;
  const double alpha = params_.alpha;
  const int nr = params_.nreal;
  for (int nx = -nr; nx <= nr; ++nx)
    for (int ny = -nr; ny <= nr; ++ny)
      for (int nz = -nr; nz <= nr; ++nz) {
        const Vec3 d = x - Vec3(nx, ny, nz);
        const double s = d.norm();
        if (s < 1e-12) continue;
        phi -= std::erfc(alpha * s) / s;
      }
  for (std::size_t i = 0; i < reciprocal_.size(); ++i)
    phi -= (1.0 / kPi) * recip_amp_[i] * std::cos(2.0 * kPi * reciprocal_[i].dot(x));
  phi += kPi / (alpha * alpha);  // neutralizing-background constant
  return phi;
}

double Ewald::self_potential() const {
  // lim_{x->0} [ pair_potential(x) + 1/|x| ]: image + background terms a
  // particle feels from itself.
  const double alpha = params_.alpha;
  double phi = 0;
  const int nr = params_.nreal;
  for (int nx = -nr; nx <= nr; ++nx)
    for (int ny = -nr; ny <= nr; ++ny)
      for (int nz = -nr; nz <= nr; ++nz) {
        if (nx == 0 && ny == 0 && nz == 0) continue;
        const double s = Vec3(nx, ny, nz).norm();
        phi -= std::erfc(alpha * s) / s;
      }
  for (std::size_t i = 0; i < reciprocal_.size(); ++i) phi -= (1.0 / kPi) * recip_amp_[i];
  phi += kPi / (alpha * alpha);
  // The n=0 term of pair_potential is -erfc(a s)/s = -1/s + erf(a s)/s;
  // adding back the 1/s leaves +erf(a s)/s -> +2 a / sqrt(pi) as s -> 0.
  phi += two_over_sqrt_pi() * alpha;
  return phi;
}

void Ewald::accelerations(std::span<const Vec3> pos, std::span<const double> mass,
                          std::span<Vec3> acc, double eps2) const {
  const std::size_t n = pos.size();
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 a{};
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const Vec3 x = min_image(pos[j], pos[i]);  // x_i - x_j (field - source)
      // Periodic correction plus softened min-image Newton (-x direction).
      Vec3 pa = table_.empty() ? correction(x) : correction_table(x);
      const double r2 = x.norm2() + eps2;
      if (r2 > 1e-24) {
        const double rinv = 1.0 / std::sqrt(r2);
        pa -= x * (rinv * rinv * rinv);
      }
      a += pa * mass[j];
    }
    acc[i] += a;
  }
}

double Ewald::potential_energy(std::span<const Vec3> pos, std::span<const double> mass,
                               double eps2) const {
  const std::size_t n = pos.size();
  double u = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Vec3 x = min_image(pos[i], pos[j]);
      // Softened min-image Newton + unsoftened periodic correction.
      const double r2 = x.norm2() + eps2;
      const double r = std::sqrt(x.norm2());
      double phi = pair_potential(x);
      if (r > 1e-12) phi += 1.0 / r - 1.0 / std::sqrt(r2);
      u += mass[i] * mass[j] * phi;
    }
    u += 0.5 * mass[i] * mass[i] * self_potential();
  }
  return u;
}

}  // namespace greem::ewald
