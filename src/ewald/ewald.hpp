#pragma once
// Ewald summation for gravity in the periodic unit cube: the exact force
// law the TreePM split (PP + PM) must reproduce.  Used as the ground truth
// for every force-accuracy statement in the benchmarks and tests.
//
// A unit source at the origin (plus images and a neutralizing background)
// accelerates a test particle at displacement x by
//
//   a(x) = - sum_n (x-n)/s^3 [ erfc(a s) + (2 a s/sqrt(pi)) e^{-a^2 s^2} ]
//          - sum_{h!=0} (2 h/|h|^2) e^{-pi^2 |h|^2 / a^2} sin(2 pi h.x),
//
// with s = |x-n| and splitting parameter a (alpha).  The result is
// independent of alpha, which the tests exploit as a self-check.
//
// For O(N^2) sweeps over many particles the smooth periodic *correction*
// (Ewald force minus minimum-image Newton) can be tabulated on an octant
// grid and interpolated, as the classic N-body force tests do.

#include <cstddef>
#include <span>
#include <vector>

#include "util/vec3.hpp"

namespace greem::ewald {

struct EwaldParams {
  double alpha = 2.0;   ///< real/reciprocal splitting, box units
  int nreal = 2;        ///< real-space images summed over [-nreal, nreal]^3
  int hmax2 = 10;       ///< reciprocal vectors with |h|^2 <= hmax2
  std::size_t table_n = 0;  ///< >0: tabulate the correction on an n^3 octant grid
};

class Ewald {
 public:
  explicit Ewald(EwaldParams params = {});

  /// Acceleration at displacement dx = x_field - x_source from a unit
  /// source (min-imaged internally); exact sums, no table.
  Vec3 pair_acceleration_exact(const Vec3& dx) const;

  /// As above but via the tabulated correction when table_n > 0.
  Vec3 pair_acceleration(const Vec3& dx) const;

  /// Pair potential (unit source), excluding the per-particle self-image
  /// constant; min-imaged internally.
  double pair_potential(const Vec3& dx) const;

  /// Self-image energy constant: the potential a particle's own periodic
  /// images plus background contribute at its location.
  double self_potential() const;

  /// O(N^2) exact periodic accelerations, Plummer-softened in the
  /// minimum-image Newton part (matching the TreePM softening convention).
  void accelerations(std::span<const Vec3> pos, std::span<const double> mass,
                     std::span<Vec3> acc, double eps2 = 0.0) const;

  /// Total potential energy including self-image terms.
  double potential_energy(std::span<const Vec3> pos, std::span<const double> mass,
                          double eps2 = 0.0) const;

 private:
  Vec3 correction(const Vec3& dx) const;        ///< Ewald minus min-image Newton
  Vec3 correction_table(const Vec3& dx) const;  ///< interpolated octant table

  EwaldParams params_;
  std::vector<Vec3> reciprocal_;  ///< h vectors with |h|^2 <= hmax2 (h != 0)
  std::vector<double> recip_amp_;
  std::vector<Vec3> table_;  ///< (n+1)^3 octant grid of the correction
};

}  // namespace greem::ewald
