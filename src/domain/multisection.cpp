#include "domain/multisection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace greem::domain {
namespace {

/// Cut a sorted coordinate list into `parts` equal-count intervals over
/// [0,1); boundaries fall midway between the straddling samples.  Falls
/// back toward uniform spacing when samples are too few.
std::vector<double> equal_count_cuts(std::span<const double> sorted, int parts) {
  std::vector<double> cuts(static_cast<std::size_t>(parts) + 1);
  cuts.front() = 0.0;
  cuts.back() = 1.0;
  const std::size_t m = sorted.size();
  for (int j = 1; j < parts; ++j) {
    double c;
    if (m < static_cast<std::size_t>(parts)) {
      c = static_cast<double>(j) / parts;  // not enough samples: uniform
    } else {
      const std::size_t k = m * static_cast<std::size_t>(j) / static_cast<std::size_t>(parts);
      const double a = sorted[k - 1];
      const double b = k < m ? sorted[k] : 1.0;
      c = 0.5 * (a + b);
    }
    cuts[static_cast<std::size_t>(j)] = c;
  }
  // Enforce strict monotonicity against degenerate sample clusters.
  for (std::size_t j = 1; j < cuts.size(); ++j)
    cuts[j] = std::max(cuts[j], cuts[j - 1] + 1e-12);
  for (std::size_t j = cuts.size() - 1; j > 0; --j)
    cuts[j - 1] = std::min(cuts[j - 1], cuts[j] - 1e-12);
  cuts.front() = 0.0;
  cuts.back() = 1.0;
  return cuts;
}

std::size_t lower_cut(std::span<const double> cuts, double v) {
  // Index i with cuts[i] <= v < cuts[i+1]; v in [0,1).
  auto it = std::upper_bound(cuts.begin(), cuts.end(), v);
  std::size_t i = static_cast<std::size_t>(it - cuts.begin());
  if (i == 0) return 0;
  if (i >= cuts.size()) return cuts.size() - 2;
  return i - 1;
}

}  // namespace

std::array<int, 3> Decomposition::coords_of(int rank) const {
  return {rank / (dims[1] * dims[2]), (rank / dims[2]) % dims[1], rank % dims[2]};
}

Box Decomposition::box_of(int rank) const {
  const auto [ix, iy, iz] = coords_of(rank);
  Box b;
  b.lo.x = xcuts[static_cast<std::size_t>(ix)];
  b.hi.x = xcuts[static_cast<std::size_t>(ix) + 1];
  const auto& yc = ycuts[static_cast<std::size_t>(ix)];
  b.lo.y = yc[static_cast<std::size_t>(iy)];
  b.hi.y = yc[static_cast<std::size_t>(iy) + 1];
  const auto& zc = zcuts[static_cast<std::size_t>(ix)][static_cast<std::size_t>(iy)];
  b.lo.z = zc[static_cast<std::size_t>(iz)];
  b.hi.z = zc[static_cast<std::size_t>(iz) + 1];
  return b;
}

int Decomposition::find_domain(const Vec3& p) const {
  const auto ix = lower_cut(xcuts, p.x);
  const auto iy = lower_cut(ycuts[ix], p.y);
  const auto iz = lower_cut(zcuts[ix][iy], p.z);
  return rank_of(static_cast<int>(ix), static_cast<int>(iy), static_cast<int>(iz));
}

std::vector<Box> Decomposition::boxes() const {
  std::vector<Box> out(static_cast<std::size_t>(nranks()));
  for (int r = 0; r < nranks(); ++r) out[static_cast<std::size_t>(r)] = box_of(r);
  return out;
}

std::vector<double> Decomposition::flatten() const {
  std::vector<double> flat;
  flat.insert(flat.end(), xcuts.begin(), xcuts.end());
  for (const auto& yc : ycuts) flat.insert(flat.end(), yc.begin(), yc.end());
  for (const auto& per_x : zcuts)
    for (const auto& zc : per_x) flat.insert(flat.end(), zc.begin(), zc.end());
  return flat;
}

Decomposition Decomposition::unflatten(std::array<int, 3> dims, std::span<const double> flat) {
  Decomposition d;
  d.dims = dims;
  std::size_t i = 0;
  auto take = [&](std::size_t n) {
    std::vector<double> v(flat.begin() + static_cast<std::ptrdiff_t>(i),
                          flat.begin() + static_cast<std::ptrdiff_t>(i + n));
    i += n;
    return v;
  };
  const auto nx = static_cast<std::size_t>(dims[0]);
  const auto ny = static_cast<std::size_t>(dims[1]);
  const auto nz = static_cast<std::size_t>(dims[2]);
  d.xcuts = take(nx + 1);
  d.ycuts.resize(nx);
  for (auto& yc : d.ycuts) yc = take(ny + 1);
  d.zcuts.assign(nx, std::vector<std::vector<double>>(ny));
  for (auto& per_x : d.zcuts)
    for (auto& zc : per_x) zc = take(nz + 1);
  assert(i == flat.size());
  return d;
}

Decomposition Decomposition::uniform(std::array<int, 3> dims) {
  auto lin = [](int parts) {
    std::vector<double> cuts(static_cast<std::size_t>(parts) + 1);
    for (int j = 0; j <= parts; ++j)
      cuts[static_cast<std::size_t>(j)] = static_cast<double>(j) / parts;
    return cuts;
  };
  Decomposition d;
  d.dims = dims;
  d.xcuts = lin(dims[0]);
  d.ycuts.assign(static_cast<std::size_t>(dims[0]), lin(dims[1]));
  d.zcuts.assign(static_cast<std::size_t>(dims[0]),
                 std::vector<std::vector<double>>(static_cast<std::size_t>(dims[1]), lin(dims[2])));
  return d;
}

Decomposition build_multisection(std::array<int, 3> dims, std::vector<Vec3> samples) {
  Decomposition d;
  d.dims = dims;
  const auto nx = static_cast<std::size_t>(dims[0]);
  const auto ny = static_cast<std::size_t>(dims[1]);

  std::sort(samples.begin(), samples.end(),
            [](const Vec3& a, const Vec3& b) { return a.x < b.x; });
  {
    std::vector<double> xs(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) xs[i] = samples[i].x;
    d.xcuts = equal_count_cuts(xs, dims[0]);
  }

  d.ycuts.resize(nx);
  d.zcuts.assign(nx, std::vector<std::vector<double>>(ny));
  // Partition samples into x-slabs (samples sorted by x).
  std::size_t lo = 0;
  for (std::size_t ix = 0; ix < nx; ++ix) {
    std::size_t hi = lo;
    const double xhi = d.xcuts[ix + 1];
    while (hi < samples.size() && (samples[hi].x < xhi || ix == nx - 1)) ++hi;
    std::span<Vec3> slab(samples.data() + lo, hi - lo);
    std::sort(slab.begin(), slab.end(), [](const Vec3& a, const Vec3& b) { return a.y < b.y; });
    {
      std::vector<double> ys(slab.size());
      for (std::size_t i = 0; i < slab.size(); ++i) ys[i] = slab[i].y;
      d.ycuts[ix] = equal_count_cuts(ys, dims[1]);
    }
    std::size_t ylo = 0;
    for (std::size_t iy = 0; iy < ny; ++iy) {
      std::size_t yhi = ylo;
      const double yhi_cut = d.ycuts[ix][iy + 1];
      while (yhi < slab.size() && (slab[yhi].y < yhi_cut || iy == ny - 1)) ++yhi;
      std::vector<double> zs;
      zs.reserve(yhi - ylo);
      for (std::size_t i = ylo; i < yhi; ++i) zs.push_back(slab[i].z);
      std::sort(zs.begin(), zs.end());
      d.zcuts[ix][iy] = equal_count_cuts(zs, dims[2]);
      ylo = yhi;
    }
    lo = hi;
  }
  return d;
}

Decomposition BoundarySmoother::smooth(const Decomposition& latest) {
  auto flat = latest.flatten();
  if (!history_.empty() && history_.back().size() != flat.size()) history_.clear();
  history_.push_back(flat);
  if (history_.size() > window_) history_.erase(history_.begin());

  // Linear weights: oldest 1 ... newest w.
  std::vector<double> avg(flat.size(), 0.0);
  double wsum = 0;
  for (std::size_t h = 0; h < history_.size(); ++h) {
    const double w = static_cast<double>(h + 1);
    wsum += w;
    for (std::size_t i = 0; i < flat.size(); ++i) avg[i] += w * history_[h][i];
  }
  for (double& v : avg) v /= wsum;

  Decomposition out = Decomposition::unflatten(latest.dims, avg);
  // Averaging preserves per-group monotonicity (each history entry is
  // monotone within a cut group), and endpoints stay 0/1 exactly.
  return out;
}

}  // namespace greem::domain
