#pragma once
// The sampling method (Blackston & Suel) with the paper's cost-weighted
// sampling rates: each rank samples its particles at a rate proportional
// to its measured force-calculation cost, the root gathers the samples and
// builds a multi-section decomposition with equal sample counts per
// domain, so expensive regions get smaller domains.
//
// Two cost models feed the rates (docs/load-balance.md):
//   - sample_and_decompose: one scalar cost per rank (load-balance v1, the
//     paper's measured force time); particles are sampled uniformly within
//     the rank.
//   - sample_and_decompose_weighted: one weight per particle (load-balance
//     v2, derived from the per-group tree::GroupCost attribution), so the
//     sample density follows where the work actually sits inside a domain,
//     not just how much of it each rank holds.
//
// Per-rank sample quotas use largest-remainder apportionment with a
// >= 1-sample floor for every rank that holds particles: gathered totals
// are exact (no per-rank rounding drift) and a rank whose measured cost is
// zero can still move its boundaries.  All sampling is without replacement
// and deterministic per (seed, step, rank).

#include <cstdint>
#include <span>
#include <vector>

#include "domain/multisection.hpp"
#include "parx/comm.hpp"
#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace greem::domain {

struct SamplingParams {
  std::size_t target_samples = 50000;  ///< total samples gathered at the root
  std::uint64_t seed = 12345;
};

/// Largest-remainder (Hamilton) apportionment of `target` samples over
/// ranks proportional to `weights`, capped at `capacities` (a rank cannot
/// contribute more samples than particles) and floored at >= 1 for every
/// rank with nonzero capacity whenever the target allows it.  Negative
/// weights count as zero; when every weight is zero the capacities
/// themselves act as weights (uniform-density sampling).  The returned
/// quotas sum to min(target, sum of capacities) exactly.  Deterministic:
/// ties break toward the lower rank.
std::vector<std::size_t> apportion_samples(std::span<const double> weights,
                                           std::span<const std::size_t> capacities,
                                           std::size_t target);

/// Choose `k` distinct indices out of [0, n) by a partial Fisher-Yates
/// shuffle (sampling *without* replacement -- duplicates would skew the
/// equal-count multisection cuts).  Returned in increasing order;
/// deterministic for a given rng state.  k is clamped to n.
std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k, Rng& rng);

/// Weighted sampling without replacement (Efraimidis-Spirakis): draw `k`
/// distinct indices with inclusion probability increasing in weights[i],
/// via the key u^(1/w) order statistic.  Zero/negative-weight items are
/// only drawn once every positive-weight item is exhausted.  Returned in
/// increasing order; deterministic for a given rng state (ties break by
/// index).  k is clamped to weights.size().
std::vector<std::size_t> sample_weighted_without_replacement(std::span<const double> weights,
                                                             std::size_t k, Rng& rng);

/// Collective: sample local particles (rank quota proportional to
/// local_cost over the allgathered total), gather at root (rank 0), build
/// the decomposition there and broadcast it.  `local_cost` is the measured
/// force cost of this rank for the previous cycle (use nlocal as a proxy
/// before the first measurement).  Within the rank, samples are drawn
/// uniformly without replacement.
Decomposition sample_and_decompose(parx::Comm& comm, std::array<int, 3> dims,
                                   std::span<const Vec3> local_pos, double local_cost,
                                   const SamplingParams& params, std::uint64_t step);

/// Collective: as above, but with one non-negative cost weight per local
/// particle (load-balance v2: tree::GroupCost scattered onto the group's
/// members).  The rank quota follows the summed weights and the samples
/// within the rank are drawn weighted-without-replacement, so expensive
/// subregions of a domain are over-sampled and therefore shrunk.
/// `weights.size()` must equal `local_pos.size()`.
Decomposition sample_and_decompose_weighted(parx::Comm& comm, std::array<int, 3> dims,
                                            std::span<const Vec3> local_pos,
                                            std::span<const double> weights,
                                            const SamplingParams& params, std::uint64_t step);

}  // namespace greem::domain
