#pragma once
// The sampling method (Blackston & Suel) with the paper's cost-weighted
// sampling rates: each rank samples its particles at a rate proportional
// to its measured force-calculation time, the root gathers the samples and
// builds a multi-section decomposition with equal sample counts per
// domain, so expensive regions get smaller domains.

#include <cstdint>
#include <span>

#include "domain/multisection.hpp"
#include "parx/comm.hpp"
#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace greem::domain {

struct SamplingParams {
  std::size_t target_samples = 50000;  ///< total samples gathered at the root
  std::uint64_t seed = 12345;
};

/// Collective: sample local particles (rate proportional to local_cost /
/// total_cost), gather at root (rank 0), build the decomposition there and
/// broadcast it.  `local_cost` is the measured force time of this rank for
/// the previous step (use nlocal as a proxy for the first step).
Decomposition sample_and_decompose(parx::Comm& comm, std::array<int, 3> dims,
                                   std::span<const Vec3> local_pos, double local_cost,
                                   const SamplingParams& params, std::uint64_t step);

}  // namespace greem::domain
