#include "domain/exchange.hpp"

namespace greem::domain {

std::vector<int> destinations(const Decomposition& d, std::span<const Vec3> pos) {
  std::vector<int> dest(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) dest[i] = d.find_domain(pos[i]);
  return dest;
}

}  // namespace greem::domain
