#pragma once
// Particle migration across domain boundaries after a decomposition
// update: route each local item to the rank whose domain now contains it.

#include <cassert>
#include <span>
#include <vector>

#include "domain/multisection.hpp"
#include "parx/comm.hpp"
#include "util/vec3.hpp"

namespace greem::domain {

/// Destination rank of each local position under `d`.
std::vector<int> destinations(const Decomposition& d, std::span<const Vec3> pos);

/// Collective: redistribute trivially-copyable items by destination rank;
/// returns this rank's new items (self-retained items keep relative order,
/// imports are appended in source-rank order).
template <class T>
std::vector<T> exchange_by_rank(parx::Comm& comm, std::span<const T> items,
                                std::span<const int> dest) {
  assert(items.size() == dest.size());
  std::vector<std::vector<T>> send(static_cast<std::size_t>(comm.size()));
  for (std::size_t i = 0; i < items.size(); ++i)
    send[static_cast<std::size_t>(dest[i])].push_back(items[i]);
  auto recv = comm.alltoallv(send);
  std::vector<T> out;
  for (auto& part : recv) out.insert(out.end(), part.begin(), part.end());
  return out;
}

}  // namespace greem::domain
