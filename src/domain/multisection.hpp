#pragma once
// 3-D multi-section domain decomposition (Makino 2004), built from sampled
// particles: space is cut into nx slabs along x with equal sample counts,
// each slab into ny rows along y, each row into nz boxes along z.  Domain
// geometries are rectangular; the rank grid matches the paper's
// "number of divisions on each dimension" configuration.

#include <array>
#include <span>
#include <vector>

#include "util/box.hpp"
#include "util/vec3.hpp"

namespace greem::domain {

struct Decomposition {
  std::array<int, 3> dims{1, 1, 1};
  /// nx+1 x-boundaries (first 0, last 1).
  std::vector<double> xcuts;
  /// Per x-slab: ny+1 y-boundaries.
  std::vector<std::vector<double>> ycuts;
  /// Per (x-slab, y-row): nz+1 z-boundaries.
  std::vector<std::vector<std::vector<double>>> zcuts;

  int nranks() const { return dims[0] * dims[1] * dims[2]; }
  int rank_of(int ix, int iy, int iz) const { return (ix * dims[1] + iy) * dims[2] + iz; }
  std::array<int, 3> coords_of(int rank) const;

  Box box_of(int rank) const;

  /// Rank of the domain containing p (positions must lie in [0,1)^3).
  int find_domain(const Vec3& p) const;

  /// All domain boxes in rank order.
  std::vector<Box> boxes() const;

  /// Flatten/restore the cut coordinates (for bcast and smoothing).
  std::vector<double> flatten() const;
  static Decomposition unflatten(std::array<int, 3> dims, std::span<const double> flat);

  /// Uniform grid decomposition (the static baseline of Fig. 3 / the
  /// domain benchmark).
  static Decomposition uniform(std::array<int, 3> dims);
};

/// Build a decomposition so every domain receives the same number of
/// sample points (the samples already encode cost weighting through their
/// sampling rates).  Degenerates to uniform cuts where samples run out.
Decomposition build_multisection(std::array<int, 3> dims, std::vector<Vec3> samples);

/// Linear-weighted moving average of the domain boundaries over the last
/// `window` steps (paper: 5), suppressing sampling-noise jumps.
class BoundarySmoother {
 public:
  explicit BoundarySmoother(std::size_t window = 5) : window_(window) {}

  /// Feed the newest decomposition; returns the smoothed one.
  Decomposition smooth(const Decomposition& latest);

  void reset() { history_.clear(); }

  /// Checkpoint support: the smoothing window is part of the state a
  /// bitwise-identical restart must restore.
  const std::vector<std::vector<double>>& history() const { return history_; }
  void set_history(std::vector<std::vector<double>> h) { history_ = std::move(h); }

 private:
  std::size_t window_;
  std::vector<std::vector<double>> history_;  // newest last
};

}  // namespace greem::domain
