#pragma once
// Inter-rank work donation for tail groups (load-balance v2, second leg).
//
// Domain decomposition reacts to measured cost with one step of lag and in
// units of whole domains; a clustered IC still leaves a tail of ranks whose
// predicted PP time sits well above the mean.  Donation shaves that tail
// within the step: ranks whose *predicted* cost (published interaction
// counts from the previous PP cycle) exceeds the mean by a configurable
// trigger export whole Barnes groups -- targets plus their already-imported
// ghost sources -- to the least-loaded ranks, which evaluate the forces and
// send the accelerations back.
//
// Determinism contract (docs/load-balance.md): the plan is a pure function
// of the allgathered per-rank cost vector, so every rank computes the
// identical donor->donee assignment with no extra communication; the donee
// replays the exact kernel arithmetic on the exact doubles the donor would
// have used, so donated results are bitwise-identical to local evaluation
// (asserted by DonationOnAndOffAreBitwiseIdentical and the thread-count
// determinism test).

#include <cstdint>
#include <span>
#include <vector>

namespace greem::domain {

struct DonationConfig {
  bool enabled = true;
  /// Donate only when predicted cost > trigger * mean cost.
  double trigger = 1.10;
  /// At most this fraction of a donor's predicted cost may be exported
  /// (guards against thrashing when the prediction is stale).
  double max_export_fraction = 0.5;
  /// Transfers predicted below this many interactions are dropped: the
  /// pack/ship/unpack overhead would exceed the force work moved.
  std::uint64_t min_transfer_interactions = 2048;
};

/// One donor->donee edge with its interaction budget.
struct DonationTransfer {
  int donor = -1;
  int donee = -1;
  std::uint64_t interactions = 0;
};

struct DonationPlan {
  std::vector<DonationTransfer> transfers;

  bool active() const { return !transfers.empty(); }

  /// Total interactions rank `r` is scheduled to export.
  std::uint64_t donor_budget(int r) const {
    std::uint64_t b = 0;
    for (const auto& t : transfers)
      if (t.donor == r) b += t.interactions;
    return b;
  }

  /// The transfers rank `r` donates, in plan order (donees of a donor are
  /// visited in this order when assigning deferred groups).
  std::vector<DonationTransfer> transfers_from(int r) const {
    std::vector<DonationTransfer> out;
    for (const auto& t : transfers)
      if (t.donor == r) out.push_back(t);
    return out;
  }
};

/// Compute the donation plan from the published per-rank predicted costs
/// (interaction counts).  Deterministic: donors are matched to donees by a
/// greedy water-fill over (excess desc, rank asc) x (headroom desc, rank
/// asc), and every rank running this on the same vector gets the same plan.
DonationPlan plan_donation(std::span<const std::uint64_t> rank_cost, const DonationConfig& cfg);

}  // namespace greem::domain
