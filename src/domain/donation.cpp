#include "domain/donation.hpp"

#include <algorithm>

namespace greem::domain {

DonationPlan plan_donation(std::span<const std::uint64_t> rank_cost, const DonationConfig& cfg) {
  DonationPlan plan;
  const std::size_t p = rank_cost.size();
  if (!cfg.enabled || p < 2) return plan;

  std::uint64_t total = 0;
  for (std::uint64_t c : rank_cost) total += c;
  if (total == 0) return plan;
  const double mean = static_cast<double>(total) / static_cast<double>(p);

  struct Node {
    std::uint64_t amount;  // excess (donor) or headroom (donee)
    int rank;
  };
  std::vector<Node> donors, donees;
  for (std::size_t r = 0; r < p; ++r) {
    const auto cost = static_cast<double>(rank_cost[r]);
    if (cost > cfg.trigger * mean) {
      // Export down to the mean, but never more than the configured
      // fraction of the donor's own work.
      double excess = std::min(cost - mean, cfg.max_export_fraction * cost);
      if (excess > 0)
        donors.push_back({static_cast<std::uint64_t>(excess), static_cast<int>(r)});
    } else if (cost < mean) {
      donees.push_back({static_cast<std::uint64_t>(mean - cost), static_cast<int>(r)});
    }
  }
  if (donors.empty() || donees.empty()) return plan;

  auto by_amount = [](const Node& a, const Node& b) {
    if (a.amount != b.amount) return a.amount > b.amount;
    return a.rank < b.rank;
  };
  std::sort(donors.begin(), donors.end(), by_amount);
  std::sort(donees.begin(), donees.end(), by_amount);

  // Greedy water-fill: the most overloaded donor pours into the emptiest
  // donee until one side is exhausted, then advances.  Deterministic given
  // the sorted orders above.
  const std::uint64_t min_tx = std::max<std::uint64_t>(1, cfg.min_transfer_interactions);
  std::size_t di = 0, ei = 0;
  while (di < donors.size() && ei < donees.size()) {
    std::uint64_t amount = std::min(donors[di].amount, donees[ei].amount);
    if (amount >= min_tx)
      plan.transfers.push_back({donors[di].rank, donees[ei].rank, amount});
    donors[di].amount -= amount;
    donees[ei].amount -= amount;
    if (donors[di].amount < min_tx) ++di;
    if (donees[ei].amount < min_tx) ++ei;
  }
  return plan;
}

}  // namespace greem::domain
