#include "domain/sampling.hpp"

#include <algorithm>
#include <cmath>

namespace greem::domain {

Decomposition sample_and_decompose(parx::Comm& comm, std::array<int, 3> dims,
                                   std::span<const Vec3> local_pos, double local_cost,
                                   const SamplingParams& params, std::uint64_t step) {
  const double total_cost = comm.allreduce_sum(std::max(local_cost, 0.0));
  const double share = total_cost > 0 ? std::max(local_cost, 0.0) / total_cost
                                      : 1.0 / comm.size();
  // Number of samples this rank contributes; proportional to measured cost
  // so overloaded domains are over-sampled and therefore shrunk.
  auto want = static_cast<std::size_t>(
      std::llround(share * static_cast<double>(params.target_samples)));
  want = std::min(want, local_pos.size());

  Rng rng(params.seed + step, static_cast<std::uint64_t>(comm.rank()));
  std::vector<Vec3> mine;
  mine.reserve(want);
  if (want > 0 && !local_pos.empty()) {
    // Bernoulli-style index sampling without replacement via a partial
    // Fisher-Yates over an index vector is overkill here; sampling with
    // replacement is statistically equivalent at our rates (<< 100%).
    for (std::size_t i = 0; i < want; ++i)
      mine.push_back(local_pos[rng.uniform_index(local_pos.size())]);
  }

  auto gathered = comm.gatherv(std::span<const Vec3>(mine), 0);

  std::vector<double> flat;
  std::size_t flat_size = 0;
  if (comm.rank() == 0) {
    Decomposition d = build_multisection(dims, std::move(gathered));
    flat = d.flatten();
    flat_size = flat.size();
  }
  comm.bcast(flat, 0);
  (void)flat_size;
  return Decomposition::unflatten(dims, flat);
}

}  // namespace greem::domain
