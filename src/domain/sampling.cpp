#include "domain/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

namespace greem::domain {

namespace {

// One (weight, capacity) pair per rank, allgathered so every rank runs the
// identical apportionment and agrees on all quotas without extra traffic.
struct RankLoad {
  double weight;
  double capacity;
};

std::vector<std::size_t> collect_quotas(parx::Comm& comm, double local_weight,
                                        std::size_t local_capacity, std::size_t target) {
  RankLoad mine{local_weight, static_cast<double>(local_capacity)};
  auto all = comm.allgatherv(std::span<const RankLoad>(&mine, 1));
  std::vector<double> weights(all.size());
  std::vector<std::size_t> caps(all.size());
  for (std::size_t r = 0; r < all.size(); ++r) {
    weights[r] = all[r].weight;
    caps[r] = static_cast<std::size_t>(all[r].capacity);
  }
  return apportion_samples(weights, caps, target);
}

// Gather the selected sample positions at the root, build the multisection
// there, then broadcast size-then-payload (non-root ranks do not know the
// flattened cut count up front: it depends on dims only, but being explicit
// keeps the protocol self-describing and removes the old dead-variable
// pattern around comm.bcast of an empty vector).
Decomposition gather_build_bcast(parx::Comm& comm, std::array<int, 3> dims,
                                 std::span<const Vec3> mine) {
  auto gathered = comm.gatherv(mine, 0);

  std::vector<double> flat;
  if (comm.rank() == 0) {
    Decomposition d = build_multisection(dims, std::move(gathered));
    flat = d.flatten();
  }
  std::uint64_t flat_count = flat.size();
  comm.bcast_span(std::span<std::uint64_t>(&flat_count, 1), 0);
  flat.resize(flat_count);
  comm.bcast_span(std::span<double>(flat), 0);
  return Decomposition::unflatten(dims, flat);
}

}  // namespace

std::vector<std::size_t> apportion_samples(std::span<const double> weights,
                                           std::span<const std::size_t> capacities,
                                           std::size_t target) {
  const std::size_t p = capacities.size();
  std::vector<std::size_t> alloc(p, 0);
  if (p == 0) return alloc;

  std::size_t cap_total = 0;
  for (std::size_t r = 0; r < p; ++r) cap_total += capacities[r];
  std::size_t total = std::min(target, cap_total);
  if (total == 0) return alloc;

  std::vector<double> w(p, 0.0);
  double wsum = 0.0;
  for (std::size_t r = 0; r < p; ++r) {
    double wr = (r < weights.size() && weights[r] > 0 && capacities[r] > 0) ? weights[r] : 0.0;
    w[r] = wr;
    wsum += wr;
  }
  if (wsum <= 0) {
    // No usable cost signal: fall back to capacity-proportional quotas
    // (uniform sampling density over all particles).
    for (std::size_t r = 0; r < p; ++r) w[r] = static_cast<double>(capacities[r]);
  }

  // Iterative proportional fill with cap saturation: ranks whose fair share
  // exceeds their particle count are pinned at capacity and their surplus is
  // redistributed over the rest, until no new rank saturates.
  std::vector<bool> capped(p, false);
  std::size_t remaining = total;
  for (;;) {
    double active_w = 0.0;
    for (std::size_t r = 0; r < p; ++r)
      if (!capped[r]) active_w += w[r];
    if (active_w <= 0) {
      // All positive-weight ranks capped; spill the rest over uncapped
      // ranks by capacity.
      for (std::size_t r = 0; r < p; ++r)
        if (!capped[r]) active_w += static_cast<double>(capacities[r]);
      if (active_w <= 0) break;
      for (std::size_t r = 0; r < p; ++r)
        if (!capped[r] && w[r] <= 0) w[r] = static_cast<double>(capacities[r]);
      continue;
    }
    bool newly_capped = false;
    for (std::size_t r = 0; r < p; ++r) {
      if (capped[r]) continue;
      double share = w[r] / active_w * static_cast<double>(remaining);
      if (share >= static_cast<double>(capacities[r])) {
        alloc[r] = capacities[r];
        capped[r] = true;
        newly_capped = true;
      }
    }
    if (!newly_capped) break;
    remaining = total;
    for (std::size_t r = 0; r < p; ++r)
      if (capped[r]) remaining -= std::min(alloc[r], remaining);
  }

  // Largest-remainder apportionment of what is left over the unsaturated
  // ranks: integer floors first, then hand the residual out one sample at a
  // time by descending fractional remainder (ties to the lower rank), so the
  // grand total is exact by construction.
  double active_w = 0.0;
  for (std::size_t r = 0; r < p; ++r)
    if (!capped[r]) active_w += w[r];
  if (remaining > 0 && active_w > 0) {
    std::vector<std::pair<double, std::size_t>> rema;  // (-frac, rank)
    std::size_t floored = 0;
    for (std::size_t r = 0; r < p; ++r) {
      if (capped[r]) continue;
      double exact = w[r] / active_w * static_cast<double>(remaining);
      auto fl = static_cast<std::size_t>(exact);
      fl = std::min(fl, capacities[r]);
      alloc[r] = fl;
      floored += fl;
      if (fl < capacities[r]) rema.emplace_back(-(exact - static_cast<double>(fl)), r);
    }
    std::sort(rema.begin(), rema.end());
    std::size_t residual = remaining - std::min(floored, remaining);
    // One pass by remainder rarely covers the full residual when floors hit
    // caps; keep cycling over ranks with headroom (still deterministic).
    while (residual > 0) {
      bool progressed = false;
      for (auto& [negfrac, r] : rema) {
        if (residual == 0) break;
        if (alloc[r] < capacities[r]) {
          ++alloc[r];
          --residual;
          progressed = true;
        }
      }
      if (!progressed) break;
    }
  }

  // >= 1-sample floor: a rank that holds particles but drew no samples could
  // never move its boundaries (its measured cost stays whatever the stale
  // cuts dictate).  Fund each floor by docking the largest allocation that
  // can spare one, keeping the total exact.
  for (std::size_t r = 0; r < p; ++r) {
    if (capacities[r] == 0 || alloc[r] > 0) continue;
    std::size_t donor = p;
    std::size_t donor_alloc = 1;
    for (std::size_t d = 0; d < p; ++d) {
      if (alloc[d] > donor_alloc) {
        donor_alloc = alloc[d];
        donor = d;
      }
    }
    if (donor == p) break;  // nobody has >= 2 samples; floor is best-effort
    --alloc[donor];
    alloc[r] = 1;
  }
  return alloc;
}

std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k, Rng& rng) {
  k = std::min(k, n);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Partial Fisher-Yates: after i swaps the prefix [0, i) is a uniform
  // k-subset drawn without replacement.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + rng.uniform_index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

std::vector<std::size_t> sample_weighted_without_replacement(std::span<const double> weights,
                                                             std::size_t k, Rng& rng) {
  const std::size_t n = weights.size();
  k = std::min(k, n);
  std::vector<std::size_t> selected;
  if (k == 0) return selected;

  // Efraimidis-Spirakis A-Res: key_i = u_i^(1/w_i); the k largest keys form
  // a weighted sample without replacement.  Non-positive weights get a
  // strictly negative key (-u_i) so they are drawn only after every
  // positive-weight item, with a deterministic relative order.
  std::vector<std::pair<double, std::size_t>> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    double u = rng.uniform();
    double key = weights[i] > 0 ? std::pow(u, 1.0 / weights[i]) : -u;
    keys[i] = {key, i};
  }
  auto better = [](const std::pair<double, std::size_t>& a,
                   const std::pair<double, std::size_t>& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  std::nth_element(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(k - 1), keys.end(),
                   better);
  selected.reserve(k);
  for (std::size_t i = 0; i < k; ++i) selected.push_back(keys[i].second);
  std::sort(selected.begin(), selected.end());
  return selected;
}

Decomposition sample_and_decompose(parx::Comm& comm, std::array<int, 3> dims,
                                   std::span<const Vec3> local_pos, double local_cost,
                                   const SamplingParams& params, std::uint64_t step) {
  auto quotas = collect_quotas(comm, std::max(local_cost, 0.0), local_pos.size(),
                               params.target_samples);
  const std::size_t want = quotas[static_cast<std::size_t>(comm.rank())];

  Rng rng(params.seed + step, static_cast<std::uint64_t>(comm.rank()));
  auto picks = sample_without_replacement(local_pos.size(), want, rng);
  std::vector<Vec3> mine;
  mine.reserve(picks.size());
  for (std::size_t i : picks) mine.push_back(local_pos[i]);

  return gather_build_bcast(comm, dims, mine);
}

Decomposition sample_and_decompose_weighted(parx::Comm& comm, std::array<int, 3> dims,
                                            std::span<const Vec3> local_pos,
                                            std::span<const double> weights,
                                            const SamplingParams& params, std::uint64_t step) {
  double wsum = 0.0;
  for (double w : weights)
    if (w > 0) wsum += w;
  auto quotas = collect_quotas(comm, wsum, local_pos.size(), params.target_samples);
  const std::size_t want = quotas[static_cast<std::size_t>(comm.rank())];

  Rng rng(params.seed + step, static_cast<std::uint64_t>(comm.rank()));
  auto picks = sample_weighted_without_replacement(weights, want, rng);
  std::vector<Vec3> mine;
  mine.reserve(picks.size());
  for (std::size_t i : picks) mine.push_back(local_pos[i]);

  return gather_build_bcast(comm, dims, mine);
}

}  // namespace greem::domain
