#include "parx/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>
#include <tuple>

#include "parx/group.hpp"
#include "parx/transport.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/live_endpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace greem::parx {

using detail::BlockedScope;
using detail::Group;
using detail::JobPoisoned;
using detail::Message;
using detail::steady_seconds;

namespace {

/// Absolute steady-clock deadline of a relative timeout.
double deadline_of(double timeout_s) {
  return timeout_s == kNoDeadline ? kNoDeadline : steady_seconds() + timeout_s;
}

thread_local double t_blocked_seconds = 0.0;

/// Accumulates wall time spent inside a completion wait into the
/// thread-local blocked counter (exception-safe).
struct BlockedTimer {
  double t0 = steady_seconds();
  ~BlockedTimer() { t_blocked_seconds += steady_seconds() - t0; }
};

/// Deliver queued messages to posted receives.  Caller holds box.mu.
/// Messages are scanned in arrival order and each goes to the
/// earliest-posted live matching request; since both queues are FIFO per
/// (src, tag), this preserves parx's in-order delivery guarantee.
void match_pending(detail::Mailbox& box) {
  if (box.pending.empty()) return;
  auto msg = box.msgs.begin();
  while (msg != box.msgs.end()) {
    detail::RequestState* hit = nullptr;
    for (auto& st : box.pending) {
      if (!st->cancelled && !st->done.load(std::memory_order_relaxed) &&
          st->peer == msg->src && st->tag == msg->tag) {
        hit = st.get();
        break;
      }
    }
    if (!hit) {
      ++msg;
      continue;
    }
    if (msg->flow != 0) {
      // Close the causal trace on the receiver thread: the flight
      // recorder's recv event pairs with the send-side event through the
      // flow id, and the delivery latency feeds the registry histogram.
      telemetry::flight_record_frame(telemetry::FrameEventKind::kRecv, msg->src_world,
                                     telemetry::current_trace_rank(), /*seq=*/0,
                                     msg->payload.size(), msg->flow);
      static telemetry::Histogram& lat =
          telemetry::Registry::global().histogram("parx/recv_latency_s");
      const std::int64_t now = telemetry::trace_now_ns();
      lat.record(static_cast<double>(now > msg->sent_ns ? now - msg->sent_ns : 0) * 1e-9);
    }
    hit->payload = std::move(msg->payload);
    hit->done.store(true, std::memory_order_release);
    msg = box.msgs.erase(msg);
  }
  while (!box.pending.empty() &&
         (box.pending.front()->cancelled ||
          box.pending.front()->done.load(std::memory_order_relaxed)))
    box.pending.pop_front();
}

}  // namespace

double thread_blocked_seconds() { return t_blocked_seconds; }

bool Request::done() const { return st_ && st_->done.load(std::memory_order_acquire); }

Buf Request::take_buf() {
  assert(st_ && st_->done.load(std::memory_order_acquire));
  return std::move(st_->payload);
}

std::vector<std::byte> Request::take_bytes() { return take_buf().take<std::byte>(); }

Comm::Comm(std::shared_ptr<Group> group, int rank) : group_(std::move(group)), rank_(rank) {}

int Comm::size() const { return group_->size; }

int Comm::world_rank() const { return group_->world_ranks[static_cast<std::size_t>(rank_)]; }

int Comm::world_rank_of(int r) const { return group_->world_ranks[static_cast<std::size_t>(r)]; }

TrafficLedger& Comm::ledger() { return *group_->job->ledger; }

void Comm::check_abort() const {
  detail::JobState& job = *group_->job;
  if (job.poisoned.load(std::memory_order_relaxed)) throw JobPoisoned{};
  if (job.fault.load(std::memory_order_relaxed)) throw RemoteFault(job.take_reason());
}

void Comm::fault_point(FaultOp op) {
  check_abort();
  detail::JobState& job = *group_->job;
  FaultInjector* injector = job.injector_hot.load(std::memory_order_acquire);
  if (!injector) return;
  if (auto spec = injector->should_fire(world_rank(), op, fault_context())) {
    if (spec->kind == FaultKind::kHang) {
      // The rank freezes here -- no throw, no flag -- until the watchdog
      // (or a sibling's fault) raises the job flag, at which point
      // check_abort converts the hang into a recoverable RemoteFault.
      BlockedScope blocked(job, world_rank(), "hang", -1);
      for (;;) {
        check_abort();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    // Raise the job-wide flag first so siblings blocked in recv/barrier
    // notice within one poll interval.
    job.fault.store(true, std::memory_order_relaxed);
    throw FaultInjected(*spec);
  }
}

void Comm::fault_recover(double timeout_s) {
  telemetry::Span span("parx/fault_recover");
  detail::JobState& job = *group_->job;
  const double deadline = deadline_of(timeout_s);
  std::vector<std::shared_ptr<Group>> deferred;
  {
    std::unique_lock lock(job.recover_mu);
    const std::uint64_t gen = job.recover_gen;
    if (++job.recover_arrived == job.nranks) {
      // Last rank in: every sibling is parked in this rendezvous, so no
      // rank is inside any Comm operation and group state can be reset.
      {
        std::lock_guard groups_lock(job.groups_mu);
        for (Group* g : job.groups) g->reset_comm_state(deferred);
      }
      if (auto t = job.transport_ref()) t->reset();
      std::string reason;
      {
        std::lock_guard reason_lock(job.reason_mu);
        reason = std::move(job.fault_reason);
        job.fault_reason.clear();
      }
      // Post-mortem hooks: keep the evidence of what led into recovery
      // (dump only when a flight-dump path is configured) and tell any
      // live-endpoint client the job is recovering.
      telemetry::flight_record_mark("parx/fault_recover", world_rank());
      telemetry::dump_flight_recorder();
      telemetry::LiveEndpoint::global().publish_event("fault_recover", reason);
      job.fault.store(false, std::memory_order_relaxed);
      job.recover_arrived = 0;
      ++job.recover_gen;
      job.recover_cv.notify_all();
    } else {
      while (job.recover_gen == gen) {
        if (job.poisoned.load(std::memory_order_relaxed)) throw JobPoisoned{};
        if (steady_seconds() >= deadline) {
          // Leaving a stale arrival behind would wedge the next recovery,
          // and a rank that skips recovery is gone for good: poison.
          --job.recover_arrived;
          job.poisoned.store(true, std::memory_order_relaxed);
          throw RecoveryTimeout("parx: fault_recover rendezvous timed out on rank " +
                                std::to_string(world_rank()));
        }
        job.recover_cv.wait_for(lock, std::chrono::milliseconds(50));
      }
    }
  }
  // Groups orphaned from split staging die here, outside both locks (their
  // destructors re-take groups_mu to unregister).
  deferred.clear();
}

void Comm::barrier(double timeout_s) {
  telemetry::Span span("parx/barrier");
  fault_point(FaultOp::kCollective);
  BlockedScope blocked(*group_->job, world_rank(), "barrier", -1);
  const double deadline = deadline_of(timeout_s);
  group_->barrier.wait([&] {
    check_abort();
    if (steady_seconds() >= deadline)
      throw TimeoutError("parx: barrier timed out on rank " + std::to_string(world_rank()));
  });
}

bool Comm::send_framed(int dst, int tag, const void* data, std::size_t n) {
  assert(dst >= 0 && dst < group_->size && dst != rank_);
  fault_point(FaultOp::kSend);
  detail::JobState& job = *group_->job;
  // Logical traffic is recorded here, before the path branch, so the
  // ledger's accounting is identical across fast-path/framed/lossy runs
  // by construction.
  job.ledger->record(world_rank(), world_rank_of(dst), n);
  if (ReliableTransport* t = job.transport_hot.load(std::memory_order_acquire)) {
    if (t->framed(world_rank())) {
      // This sender's links are covered by the installed lossy plan:
      // frame the message and hand it to the reliability sublayer
      // (seq + CRC + ack/retransmit).  Still never blocks.
      t->send(*group_, rank_, dst, tag, data, n);
      return true;
    }
    // Transport installed but this sender's links are all clean: count the
    // bypass (cached ref; registry lookup is a mutexed map, not hot-path).
    static telemetry::Counter& fastpath =
        telemetry::Registry::global().counter("parx/fastpath_messages");
    fastpath.add(1);
  }
  return false;
}

void Comm::deliver_local(int dst, int tag, Buf&& payload) {
  Message m{rank_, tag, std::move(payload)};
  if constexpr (telemetry::enabled()) {
    // Stamp the causal trace at hand-off: the fast path has no frame, so
    // this is where the flow id is born (seq stays 0).
    m.src_world = world_rank();
    m.flow = telemetry::next_flow_id();
    m.sent_ns = telemetry::trace_now_ns();
    telemetry::flight_record_frame(telemetry::FrameEventKind::kSend, m.src_world,
                                   world_rank_of(dst), /*seq=*/0, m.payload.size(), m.flow);
  }
  auto& box = *group_->boxes[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lock(box.mu);
    box.msgs.push_back(std::move(m));
    ++box.delivered;
  }
  box.cv.notify_all();
}

void Comm::send_bytes(int dst, int tag, const void* data, std::size_t n) {
  if (!send_framed(dst, tag, data, n)) deliver_local(dst, tag, Buf(data, n));
}

std::byte* Comm::coll_scratch(std::size_t bytes) {
  auto& slot = group_->coll_scratch[static_cast<std::size_t>(rank_)];
  if (slot.size() < bytes) slot.resize(bytes);
  return slot.data();
}

Request Comm::completed_send(int dst, int tag) {
  // parx sends are buffered and never block, so the request is born
  // complete; it exists for uniform wait_any/wait_all sets.
  Request r;
  r.st_ = std::make_shared<detail::RequestState>();
  r.st_->kind = detail::RequestState::Kind::kSend;
  r.st_->peer = dst;
  r.st_->peer_world = world_rank_of(dst);
  r.st_->tag = tag;
  r.st_->done.store(true, std::memory_order_release);
  return r;
}

Request Comm::isend(int dst, int tag, const void* data, std::size_t n) {
  send_bytes(dst, tag, data, n);
  return completed_send(dst, tag);
}

Request Comm::irecv(int src, int tag) {
  assert(src >= 0 && src < group_->size && src != rank_);
  fault_point(FaultOp::kRecv);
  Request r;
  r.st_ = std::make_shared<detail::RequestState>();
  r.st_->kind = detail::RequestState::Kind::kRecv;
  r.st_->peer = src;
  r.st_->peer_world = world_rank_of(src);
  r.st_->tag = tag;
  auto& box = *group_->boxes[static_cast<std::size_t>(rank_)];
  {
    std::lock_guard lock(box.mu);
    box.pending.push_back(r.st_);
    match_pending(box);  // the message may already be queued
  }
  return r;
}

bool Comm::test(Request& req) {
  if (!req.st_) return false;
  if (req.st_->done.load(std::memory_order_acquire)) return true;
  check_abort();
  auto& box = *group_->boxes[static_cast<std::size_t>(rank_)];
  std::lock_guard lock(box.mu);
  match_pending(box);
  return req.st_->done.load(std::memory_order_relaxed);
}

template <class Ready>
void Comm::wait_until(Ready&& ready, double timeout_s, const char* opname, int peer_world) {
  check_abort();
  BlockedScope blocked(*group_->job, world_rank(), opname, peer_world);
  BlockedTimer timer;
  const double deadline = deadline_of(timeout_s);
  auto& box = *group_->boxes[static_cast<std::size_t>(rank_)];
  std::unique_lock lock(box.mu);
  std::uint64_t seen = box.delivered;
  for (;;) {
    match_pending(box);
    if (ready()) return;
    check_abort();
    if (steady_seconds() >= deadline)
      throw TimeoutError(std::string("parx: ") + opname + " timed out on rank " +
                         std::to_string(world_rank()));
    if (box.delivered != seen) {
      // Traffic is still landing in this mailbox: the rank is making
      // progress even though its own requests are not complete yet, so
      // restart the watchdog's quiescence clock.
      seen = box.delivered;
      blocked.refresh();
    }
    box.cv.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void Comm::wait(Request& req, double timeout_s) {
  if (!req.st_) throw std::logic_error("parx: wait on an invalid request");
  try {
    wait_until([&] { return req.st_->done.load(std::memory_order_relaxed); }, timeout_s,
               "wait", req.st_->peer_world);
  } catch (const TimeoutError&) {
    // Cancel so a late message is not eaten by this abandoned request.
    auto& box = *group_->boxes[static_cast<std::size_t>(rank_)];
    std::lock_guard lock(box.mu);
    if (!req.st_->done.load(std::memory_order_relaxed)) req.st_->cancelled = true;
    throw;
  }
}

int Comm::wait_any(std::span<Request> reqs, double timeout_s) {
  int found = -1;
  wait_until(
      [&] {
        bool live = false;
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          auto& st = reqs[i].st_;
          if (!st || st->claimed) continue;
          live = true;
          if (st->done.load(std::memory_order_relaxed)) {
            st->claimed = true;
            found = static_cast<int>(i);
            return true;
          }
        }
        if (!live) throw std::logic_error("parx: wait_any with no active requests");
        return false;
      },
      timeout_s, "wait_any", -1);
  return found;
}

void Comm::wait_all(std::span<Request> reqs, double timeout_s) {
  wait_until(
      [&] {
        for (auto& r : reqs)
          if (r.st_ && !r.st_->done.load(std::memory_order_relaxed)) return false;
        return true;
      },
      timeout_s, "wait_all", -1);
}

Buf Comm::recv_buf(int src, int tag, double timeout_s) {
  // Blocking receive = irecv + wait: one matching discipline for both, so
  // a blocking recv can never overtake an earlier-posted irecv on the
  // same (src, tag).
  Request req = irecv(src, tag);
  try {
    wait_until([&] { return req.st_->done.load(std::memory_order_relaxed); }, timeout_s,
               "recv", req.st_->peer_world);
  } catch (const TimeoutError&) {
    auto& box = *group_->boxes[static_cast<std::size_t>(rank_)];
    {
      std::lock_guard lock(box.mu);
      if (req.st_->done.load(std::memory_order_relaxed)) return req.take_buf();
      req.st_->cancelled = true;
    }
    throw TimeoutError("parx: recv from rank " + std::to_string(world_rank_of(src)) +
                       " tag " + std::to_string(tag) + " timed out on rank " +
                       std::to_string(world_rank()));
  }
  return req.take_buf();
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag, double timeout_s) {
  return recv_buf(src, tag, timeout_s).take<std::byte>();
}

int Comm::next_collective_tag() {
  const std::uint32_t seq =
      group_->coll_seq[static_cast<std::size_t>(rank_)].fetch_add(1, std::memory_order_relaxed);
  return kCollTagBase - static_cast<int>(seq % kCollSeqWindow);
}

std::vector<std::size_t> Comm::exchange_sizes(std::span<const std::size_t> to_each) {
  fault_point(FaultOp::kCollective);
  BlockedScope blocked(*group_->job, world_rank(), "exchange_sizes", -1);
  Group& g = *group_;
  const auto p = static_cast<std::size_t>(g.size);
  assert(to_each.size() == p);
  auto check = [&] { check_abort(); };
  const auto me = static_cast<std::size_t>(rank_);
  std::copy(to_each.begin(), to_each.end(), g.size_matrix.begin() + static_cast<std::ptrdiff_t>(me * p));
  g.size_barrier.wait(check);  // all rows written
  std::vector<std::size_t> from_each(p);
  for (std::size_t r = 0; r < p; ++r) from_each[r] = g.size_matrix[r * p + me];
  g.size_barrier.wait(check);  // all columns read; matrix reusable
  return from_each;
}

Comm Comm::split(int color, int key) {
  telemetry::Span span("parx/split");
  fault_point(FaultOp::kCollective);
  BlockedScope blocked(*group_->job, world_rank(), "split", -1);
  Group& g = *group_;
  auto poisoned = [&] { check_abort(); };
  {
    std::lock_guard lock(g.split_mu);
    if (g.split_results.empty()) g.split_results.resize(static_cast<std::size_t>(g.size));
    g.split_entries.push_back({color, key, rank_});
  }
  g.split_barrier.wait(poisoned);  // all entries staged
  if (rank_ == 0) {
    auto entries = g.split_entries;  // copy; staging cleared below
    std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
      return std::tie(a.color, a.key, a.old_rank) < std::tie(b.color, b.key, b.old_rank);
    });
    std::size_t i = 0;
    while (i < entries.size()) {
      std::size_t j = i;
      while (j < entries.size() && entries[j].color == entries[i].color) ++j;
      std::vector<int> world;
      world.reserve(j - i);
      for (std::size_t k = i; k < j; ++k)
        world.push_back(g.world_ranks[static_cast<std::size_t>(entries[k].old_rank)]);
      auto sub = std::make_shared<Group>(static_cast<int>(j - i), g.job, std::move(world));
      for (std::size_t k = i; k < j; ++k)
        g.split_results[static_cast<std::size_t>(entries[k].old_rank)] = {sub, static_cast<int>(k - i)};
      i = j;
    }
    g.split_entries.clear();
  }
  g.split_barrier.wait(poisoned);  // results published
  auto [sub, new_rank] = g.split_results[static_cast<std::size_t>(rank_)];
  g.split_barrier.wait(poisoned);  // all picked up; results reusable
  if (rank_ == 0) {
    std::lock_guard lock(g.split_mu);
    for (auto& r : g.split_results) r = {nullptr, -1};
  }
  return Comm(std::move(sub), new_rank);
}

}  // namespace greem::parx
