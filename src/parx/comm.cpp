#include "parx/comm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>
#include <tuple>

#include "parx/group.hpp"
#include "parx/transport.hpp"

namespace greem::parx {

using detail::BlockedScope;
using detail::Group;
using detail::JobPoisoned;
using detail::Message;
using detail::steady_seconds;

namespace {

/// Absolute steady-clock deadline of a relative timeout.
double deadline_of(double timeout_s) {
  return timeout_s == kNoDeadline ? kNoDeadline : steady_seconds() + timeout_s;
}

}  // namespace

Comm::Comm(std::shared_ptr<Group> group, int rank) : group_(std::move(group)), rank_(rank) {}

int Comm::size() const { return group_->size; }

int Comm::world_rank() const { return group_->world_ranks[static_cast<std::size_t>(rank_)]; }

int Comm::world_rank_of(int r) const { return group_->world_ranks[static_cast<std::size_t>(r)]; }

TrafficLedger& Comm::ledger() { return *group_->job->ledger; }

void Comm::check_abort() const {
  detail::JobState& job = *group_->job;
  if (job.poisoned.load(std::memory_order_relaxed)) throw JobPoisoned{};
  if (job.fault.load(std::memory_order_relaxed)) throw RemoteFault(job.take_reason());
}

void Comm::fault_point(FaultOp op) {
  check_abort();
  detail::JobState& job = *group_->job;
  if (!job.injector) return;
  if (auto spec = job.injector->should_fire(world_rank(), op, fault_context())) {
    if (spec->kind == FaultKind::kHang) {
      // The rank freezes here -- no throw, no flag -- until the watchdog
      // (or a sibling's fault) raises the job flag, at which point
      // check_abort converts the hang into a recoverable RemoteFault.
      BlockedScope blocked(job, world_rank(), "hang", -1);
      for (;;) {
        check_abort();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    // Raise the job-wide flag first so siblings blocked in recv/barrier
    // notice within one poll interval.
    job.fault.store(true, std::memory_order_relaxed);
    throw FaultInjected(*spec);
  }
}

void Comm::fault_recover(double timeout_s) {
  telemetry::Span span("parx/fault_recover");
  detail::JobState& job = *group_->job;
  const double deadline = deadline_of(timeout_s);
  std::vector<std::shared_ptr<Group>> deferred;
  {
    std::unique_lock lock(job.recover_mu);
    const std::uint64_t gen = job.recover_gen;
    if (++job.recover_arrived == job.nranks) {
      // Last rank in: every sibling is parked in this rendezvous, so no
      // rank is inside any Comm operation and group state can be reset.
      {
        std::lock_guard groups_lock(job.groups_mu);
        for (Group* g : job.groups) g->reset_comm_state(deferred);
      }
      if (job.transport) job.transport->reset();
      {
        std::lock_guard reason_lock(job.reason_mu);
        job.fault_reason.clear();
      }
      job.fault.store(false, std::memory_order_relaxed);
      job.recover_arrived = 0;
      ++job.recover_gen;
      job.recover_cv.notify_all();
    } else {
      while (job.recover_gen == gen) {
        if (job.poisoned.load(std::memory_order_relaxed)) throw JobPoisoned{};
        if (steady_seconds() >= deadline) {
          // Leaving a stale arrival behind would wedge the next recovery,
          // and a rank that skips recovery is gone for good: poison.
          --job.recover_arrived;
          job.poisoned.store(true, std::memory_order_relaxed);
          throw RecoveryTimeout("parx: fault_recover rendezvous timed out on rank " +
                                std::to_string(world_rank()));
        }
        job.recover_cv.wait_for(lock, std::chrono::milliseconds(50));
      }
    }
  }
  // Groups orphaned from split staging die here, outside both locks (their
  // destructors re-take groups_mu to unregister).
  deferred.clear();
}

void Comm::barrier(double timeout_s) {
  telemetry::Span span("parx/barrier");
  fault_point(FaultOp::kCollective);
  BlockedScope blocked(*group_->job, world_rank(), "barrier", -1);
  const double deadline = deadline_of(timeout_s);
  group_->barrier.wait([&] {
    check_abort();
    if (steady_seconds() >= deadline)
      throw TimeoutError("parx: barrier timed out on rank " + std::to_string(world_rank()));
  });
}

void Comm::send_bytes(int dst, int tag, const void* data, std::size_t n) {
  assert(dst >= 0 && dst < group_->size && dst != rank_);
  fault_point(FaultOp::kSend);
  detail::JobState& job = *group_->job;
  job.ledger->record(world_rank(), world_rank_of(dst), n);
  if (job.transport) {
    // Lossy-link mode: frame the message and hand it to the reliability
    // sublayer (seq + CRC + ack/retransmit).  Still never blocks.
    job.transport->send(*group_, rank_, dst, tag, data, n);
    return;
  }
  Message msg{rank_, tag, std::vector<std::byte>(n)};
  if (n > 0) std::memcpy(msg.payload.data(), data, n);
  auto& box = *group_->boxes[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lock(box.mu);
    box.msgs.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

std::vector<std::byte> Comm::recv_bytes(int src, int tag, double timeout_s) {
  fault_point(FaultOp::kRecv);
  BlockedScope blocked(*group_->job, world_rank(), "recv", world_rank_of(src));
  const double deadline = deadline_of(timeout_s);
  auto& box = *group_->boxes[static_cast<std::size_t>(rank_)];
  std::unique_lock lock(box.mu);
  for (;;) {
    for (auto it = box.msgs.begin(); it != box.msgs.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        auto payload = std::move(it->payload);
        box.msgs.erase(it);
        return payload;
      }
    }
    check_abort();
    if (steady_seconds() >= deadline)
      throw TimeoutError("parx: recv from rank " + std::to_string(world_rank_of(src)) +
                         " tag " + std::to_string(tag) + " timed out on rank " +
                         std::to_string(world_rank()));
    box.cv.wait_for(lock, std::chrono::milliseconds(50));
  }
}

std::vector<std::size_t> Comm::exchange_sizes(std::span<const std::size_t> to_each) {
  fault_point(FaultOp::kCollective);
  BlockedScope blocked(*group_->job, world_rank(), "exchange_sizes", -1);
  Group& g = *group_;
  const auto p = static_cast<std::size_t>(g.size);
  assert(to_each.size() == p);
  auto check = [&] { check_abort(); };
  const auto me = static_cast<std::size_t>(rank_);
  std::copy(to_each.begin(), to_each.end(), g.size_matrix.begin() + static_cast<std::ptrdiff_t>(me * p));
  g.size_barrier.wait(check);  // all rows written
  std::vector<std::size_t> from_each(p);
  for (std::size_t r = 0; r < p; ++r) from_each[r] = g.size_matrix[r * p + me];
  g.size_barrier.wait(check);  // all columns read; matrix reusable
  return from_each;
}

Comm Comm::split(int color, int key) {
  telemetry::Span span("parx/split");
  fault_point(FaultOp::kCollective);
  BlockedScope blocked(*group_->job, world_rank(), "split", -1);
  Group& g = *group_;
  auto poisoned = [&] { check_abort(); };
  {
    std::lock_guard lock(g.split_mu);
    if (g.split_results.empty()) g.split_results.resize(static_cast<std::size_t>(g.size));
    g.split_entries.push_back({color, key, rank_});
  }
  g.split_barrier.wait(poisoned);  // all entries staged
  if (rank_ == 0) {
    auto entries = g.split_entries;  // copy; staging cleared below
    std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
      return std::tie(a.color, a.key, a.old_rank) < std::tie(b.color, b.key, b.old_rank);
    });
    std::size_t i = 0;
    while (i < entries.size()) {
      std::size_t j = i;
      while (j < entries.size() && entries[j].color == entries[i].color) ++j;
      std::vector<int> world;
      world.reserve(j - i);
      for (std::size_t k = i; k < j; ++k)
        world.push_back(g.world_ranks[static_cast<std::size_t>(entries[k].old_rank)]);
      auto sub = std::make_shared<Group>(static_cast<int>(j - i), g.job, std::move(world));
      for (std::size_t k = i; k < j; ++k)
        g.split_results[static_cast<std::size_t>(entries[k].old_rank)] = {sub, static_cast<int>(k - i)};
      i = j;
    }
    g.split_entries.clear();
  }
  g.split_barrier.wait(poisoned);  // results published
  auto [sub, new_rank] = g.split_results[static_cast<std::size_t>(rank_)];
  g.split_barrier.wait(poisoned);  // all picked up; results reusable
  if (rank_ == 0) {
    std::lock_guard lock(g.split_mu);
    for (auto& r : g.split_results) r = {nullptr, -1};
  }
  return Comm(std::move(sub), new_rank);
}

}  // namespace greem::parx
