#pragma once
// Type-erased owning payload buffer moved through parx mailboxes.
//
// Ranks are threads, so on the perfect-link fast path a message need not
// be serialized at all: the sender hands *ownership* of its buffer to the
// destination mailbox and the receiver takes the very same allocation
// back out (docs/transport-fastpath.md).  Buf erases the element type so
// one mailbox queue carries vector<double>, vector<Particle>, raw bytes
// and transport frames alike:
//
//   * adopt(vector<T>&&)  — no copy; take<T>() later moves the vector out
//                           (pointer-identical round trip),
//   * Buf(ptr, n)         — copying construction for callers that keep
//                           their buffer (span sends),
//   * share(shared vec)   — wraps the reliable transport's frame payload,
//                           which retransmission state may still reference;
//                           take() moves when the reference is unique.
//
// take<U>() with a mismatched element type falls back to one memcpy, so a
// typed mismatch costs exactly what the pre-zero-copy path always cost.

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <typeinfo>
#include <vector>

namespace greem::parx {

class Buf {
 public:
  Buf() = default;

  /// Copying construction from raw bytes (the caller keeps `p`).
  Buf(const void* p, std::size_t n) {
    auto h = std::make_unique<VecHolder<std::byte>>();
    h->v.resize(n);
    if (n > 0) std::memcpy(h->v.data(), p, n);
    set(std::move(h), &typeid(std::byte));
  }

  Buf(Buf&&) noexcept = default;
  Buf& operator=(Buf&&) noexcept = default;
  Buf(const Buf&) = delete;
  Buf& operator=(const Buf&) = delete;

  /// Adopt a typed vector without copying; the element type is remembered
  /// so a matching take<T>() returns this exact allocation.
  template <class T>
  static Buf adopt(std::vector<T>&& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Buf b;
    auto h = std::make_unique<VecHolder<T>>();
    h->v = std::move(v);
    b.set(std::move(h), &typeid(T));
    return b;
  }

  /// Wrap a transport frame payload shared with retransmission state.
  static Buf share(std::shared_ptr<std::vector<std::byte>> v) {
    Buf b;
    auto h = std::make_unique<SharedHolder>();
    h->v = std::move(v);
    b.holder_ = std::move(h);
    b.type_ = nullptr;
    auto* sh = static_cast<SharedHolder*>(b.holder_.get());
    if (sh->v) {
      b.data_ = sh->v->data();
      b.size_ = sh->v->size();
    }
    return b;
  }

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Surrender the payload as a vector<T> (valid once).  Zero-copy when
  /// the buffer was adopted as vector<T> (or is a uniquely-held transport
  /// payload taken as bytes); one memcpy otherwise.
  template <class T>
  std::vector<T> take() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (type_ && *type_ == typeid(T)) {
      std::vector<T> out = std::move(static_cast<VecHolder<T>*>(holder_.get())->v);
      clear();
      return out;
    }
    if constexpr (std::is_same_v<T, std::byte>) {
      if (holder_ && !type_) {
        auto* sh = static_cast<SharedHolder*>(holder_.get());
        // The sender's retransmit state usually dropped its reference by
        // the time the application receives; then the move is free.  A
        // still-shared payload (ack in flight) is copied -- either way the
        // bytes are identical, so results never depend on the race.
        if (sh->v.use_count() == 1) {
          std::vector<std::byte> out = std::move(*sh->v);
          clear();
          return out;
        }
      }
    }
    std::vector<T> out(size_ / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), data_, out.size() * sizeof(T));
    clear();
    return out;
  }

 private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <class T>
  struct VecHolder final : HolderBase {
    std::vector<T> v;
  };
  struct SharedHolder final : HolderBase {
    std::shared_ptr<std::vector<std::byte>> v;
  };

  template <class T>
  void set(std::unique_ptr<VecHolder<T>> h, const std::type_info* type) {
    data_ = reinterpret_cast<const std::byte*>(h->v.data());
    size_ = h->v.size() * sizeof(T);
    type_ = type;
    holder_ = std::move(h);
  }

  void clear() {
    holder_.reset();
    type_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }

  std::unique_ptr<HolderBase> holder_;
  const std::type_info* type_ = nullptr;  ///< element typeid; null for shared payloads
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace greem::parx
