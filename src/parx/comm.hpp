#pragma once
// In-process message-passing communicator.
//
// `parx` is the repository's stand-in for MPI: ranks are threads inside one
// process, and `Comm` exposes the subset of MPI the paper's code relies on
// (named in §II-B): point-to-point send/recv, `split` (MPI_Comm_split),
// `alltoallv`, `reduce`, `bcast`, plus barrier/gather/allgather/allreduce.
//
// Semantics:
//  * send() is buffered and never blocks (an MPI_Isend with an unbounded
//    buffer); recv() blocks until a matching (src, tag) message arrives.
//  * Messages between a fixed (src, tag) pair are delivered in order.
//    Nonblocking receives (irecv) join the same matching discipline:
//    receives are matched to messages in posting order per (src, tag).
//  * Collectives are implemented on top of point-to-point with the textbook
//    algorithms (binomial-tree reduce/bcast, flat gather, pairwise
//    alltoallv), so the traffic ledger records a realistic message pattern.
//    Every collective entry draws a per-rank sequence number that selects
//    its message tag, so collectives in flight concurrently on the same
//    communicator (e.g. a posted ialltoallv under a later reduce) cannot
//    cross payloads.  See docs/overlap.md.
//  * Zero-byte payloads are not transferred and not recorded; payload sizes
//    are agreed out of band (exchange_sizes uses shared memory, modeling
//    MPI's envelope metadata).
//  * Zero-copy fast path: ranks are threads, so when the destination link
//    is not covered by an installed lossy plan, sends move buffer
//    *ownership* into the destination mailbox -- no frame header, no
//    CRC, no copy for the rvalue overloads (send(vector&&), rvalue
//    alltoallv), one typed copy for span sends.  Links a FaultPlan names
//    go through the framed ReliableTransport instead; the partition is
//    computed once at plan-install time (docs/transport-fastpath.md).
//    Both paths preserve per-(src, tag) FIFO order and are bitwise
//    indistinguishable to the application.
//
// All recorded traffic is attributed to *world* ranks, so ledger statistics
// remain meaningful inside split communicators.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "parx/buf.hpp"
#include "parx/fault.hpp"
#include "parx/traffic.hpp"
#include "telemetry/trace.hpp"

namespace greem::parx {

namespace detail {
struct Group;
struct RequestState;
}

/// Default deadline of the blocking operations: wait forever.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// Seconds the calling thread has spent blocked inside parx completion
/// waits (recv/wait/wait_any/wait_all) since thread start.  Monotonic,
/// thread-local; take a delta around a code region to measure how long it
/// stalled on communication (the overlap telemetry does exactly that).
double thread_blocked_seconds();

/// Handle to one nonblocking operation (isend/irecv).  Cheap to copy;
/// copies share the operation.  Completion is observed through
/// Comm::test/wait/wait_any/wait_all; a completed receive surrenders its
/// payload exactly once through take_bytes()/take<T>().
class Request {
 public:
  Request() = default;  ///< Invalid (never-completing) request.

  bool valid() const { return st_ != nullptr; }
  /// Completion peek without driving progress; use Comm::test to also
  /// match freshly arrived messages.
  bool done() const;

  /// Move the completed receive payload out (valid exactly once, after
  /// completion).  Sends carry no payload.
  std::vector<std::byte> take_bytes();

  /// Zero-copy when the sender handed over a vector<T> (fast path);
  /// one memcpy otherwise.
  template <class T>
  std::vector<T> take() {
    static_assert(std::is_trivially_copyable_v<T>);
    return take_buf().take<T>();
  }

 private:
  friend class Comm;
  Buf take_buf();
  std::shared_ptr<detail::RequestState> st_;
};

/// In-flight personalized all-to-all posted by Comm::ialltoallv.  `out`
/// is indexed by source rank and filled as payloads land (the self slice
/// is copied at post time); drain with Comm::wait_alltoallv.
template <class T>
struct AlltoallvHandle {
  std::vector<std::vector<T>> out;
  std::vector<Request> reqs;   ///< pending receives, posting order
  std::vector<int> src_of;     ///< reqs[i] receives from rank src_of[i]
  bool active = false;
};

class Comm {
 public:
  Comm() = default;  ///< Invalid communicator; only for default construction.
  Comm(std::shared_ptr<detail::Group> group, int rank);

  bool valid() const { return group_ != nullptr; }
  int rank() const { return rank_; }
  int size() const;

  /// Rank of this process in the world communicator.
  int world_rank() const;
  /// World rank of local rank r in this communicator.
  int world_rank_of(int r) const;

  /// Synchronize all ranks of this communicator.  With a finite
  /// `timeout_s`, throws TimeoutError if the barrier has not completed
  /// within that many seconds (the arrival count is then stale until the
  /// next fault_recover).
  void barrier(double timeout_s = kNoDeadline);

  /// Collective over the whole job (call on the *world* communicator from
  /// every rank) after catching a CommError: rendezvous all ranks, then
  /// drain mailboxes, reset barriers, split staging and transport state in
  /// every live group, and clear the fault flag.  On return the
  /// communicator stack is as-new; the caller is responsible for restoring
  /// application state (e.g. from a checkpoint).  Throws JobPoisoned if a
  /// sibling rank died fatally instead of joining the recovery, and
  /// RecoveryTimeout (not a CommError) if the rendezvous itself does not
  /// complete within `timeout_s` seconds.
  void fault_recover(double timeout_s = 60.0);

  /// Collective: partition ranks by `color`; order within each new
  /// communicator by (key, old rank).  Mirrors MPI_Comm_split.
  Comm split(int color, int key);

  TrafficLedger& ledger();

  // ---- byte-level primitives ----
  void send_bytes(int dst, int tag, const void* data, std::size_t n);
  /// Blocking receive.  With a finite `timeout_s`, throws TimeoutError if
  /// no matching message arrives within that many seconds.
  std::vector<std::byte> recv_bytes(int src, int tag, double timeout_s = kNoDeadline);

  /// Collective: every rank announces the payload size it will send to each
  /// peer; returns the sizes this rank will receive from each peer.
  /// Implemented via shared memory (models envelope/metadata exchange) and
  /// therefore not charged to the traffic ledger.
  std::vector<std::size_t> exchange_sizes(std::span<const std::size_t> to_each);

  // ---- nonblocking point-to-point ----

  /// Nonblocking send.  parx sends are buffered, so the returned request
  /// is already complete; it exists so send/recv sets can be waited
  /// uniformly.  Traffic is recorded at post time, like send_bytes.
  Request isend(int dst, int tag, const void* data, std::size_t n);

  template <class T>
  Request isend(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dst, tag, data);
    return completed_send(dst, tag);
  }

  /// Nonblocking move-send: on the fast path the vector's allocation is
  /// handed to the receiver without a copy.  The vector is consumed either
  /// way.
  template <class T>
  Request isend(int dst, int tag, std::vector<T>&& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dst, tag, std::move(data));
    return completed_send(dst, tag);
  }

  /// Post a nonblocking receive for (src, tag).  Matching is FIFO per
  /// (src, tag) against both earlier-posted receives and queued messages,
  /// so mixing irecv and blocking recv on one pair stays ordered.
  Request irecv(int src, int tag);

  /// Drive matching and report completion without blocking.
  bool test(Request& req);

  /// Block until `req` completes.  TimeoutError cancels the request (a
  /// late message is then left for the next matching receive).
  void wait(Request& req, double timeout_s = kNoDeadline);

  /// Block until some request completes; returns its index and claims it
  /// (a claimed request is never returned again).  Throws TimeoutError
  /// without cancelling anything -- the caller may wait again.  All
  /// requests must belong to this communicator.
  int wait_any(std::span<Request> reqs, double timeout_s = kNoDeadline);

  /// Block until every request completes.
  void wait_all(std::span<Request> reqs, double timeout_s = kNoDeadline);

  // ---- typed point-to-point (trivially-copyable payloads only) ----

  /// The caller keeps `data`; the fast path makes one typed copy (whose
  /// allocation the receiver's take<T>() then adopts move-for-free).
  template <class T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!send_framed(dst, tag, data.data(), data.size_bytes()))
      deliver_local(dst, tag, Buf::adopt(std::vector<T>(data.begin(), data.end())));
  }

  /// Move-send: zero-copy ownership handoff on the fast path.  The vector
  /// is consumed (left empty) on every path, so callers cannot observe
  /// which path ran.
  template <class T>
  void send(int dst, int tag, std::vector<T>&& data) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!send_framed(dst, tag, data.data(), data.size() * sizeof(T)))
      deliver_local(dst, tag, Buf::adopt(std::move(data)));
    else
      data.clear();
  }

  template <class T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    return recv_buf(src, tag, kNoDeadline).take<T>();
  }

  // ---- collectives ----

  /// Post a personalized all-to-all: sizes are agreed and sends go out
  /// immediately (buffered), receives are posted but not drained, so the
  /// caller can compute while payloads arrive.  The exchange runs under
  /// its own sequenced tag and may stay in flight across later
  /// collectives on this communicator.
  template <class T>
  AlltoallvHandle<T> ialltoallv(const std::vector<std::vector<T>>& send_to) {
    static_assert(std::is_trivially_copyable_v<T>);
    telemetry::Span span("parx/ialltoallv");
    fault_point(FaultOp::kCollective);
    const int tag = next_collective_tag();
    const auto p = static_cast<std::size_t>(size());
    std::vector<std::size_t> sizes(p);
    for (std::size_t j = 0; j < p; ++j) sizes[j] = send_to[j].size() * sizeof(T);
    auto from_each = exchange_sizes(sizes);

    const auto me = static_cast<std::size_t>(rank_);
    AlltoallvHandle<T> h;
    h.active = true;
    h.out.resize(p);
    h.out[me] = send_to[me];  // self-transfer stays local, no message
    // Skewed destination order keeps the instantaneous pattern balanced.
    for (std::size_t k = 1; k < p; ++k) {
      std::size_t dst = (me + k) % p;
      if (!send_to[dst].empty())
        send(static_cast<int>(dst), tag, std::span<const T>(send_to[dst]));
    }
    for (std::size_t k = 1; k < p; ++k) {
      std::size_t src = (me + k) % p;
      if (from_each[src] > 0) {
        h.reqs.push_back(irecv(static_cast<int>(src), tag));
        h.src_of.push_back(static_cast<int>(src));
      }
    }
    return h;
  }

  /// Move-posting all-to-all: each per-destination slice is handed over
  /// (zero-copy on the fast path, self slice moved, no slice copied).
  /// `send_to` is consumed.
  template <class T>
  AlltoallvHandle<T> ialltoallv(std::vector<std::vector<T>>&& send_to) {
    static_assert(std::is_trivially_copyable_v<T>);
    telemetry::Span span("parx/ialltoallv");
    fault_point(FaultOp::kCollective);
    const int tag = next_collective_tag();
    const auto p = static_cast<std::size_t>(size());
    std::vector<std::size_t> sizes(p);
    for (std::size_t j = 0; j < p; ++j) sizes[j] = send_to[j].size() * sizeof(T);
    auto from_each = exchange_sizes(sizes);

    const auto me = static_cast<std::size_t>(rank_);
    AlltoallvHandle<T> h;
    h.active = true;
    h.out.resize(p);
    h.out[me] = std::move(send_to[me]);  // self-transfer stays local, no message
    for (std::size_t k = 1; k < p; ++k) {
      std::size_t dst = (me + k) % p;
      if (!send_to[dst].empty())
        send(static_cast<int>(dst), tag, std::move(send_to[dst]));
    }
    for (std::size_t k = 1; k < p; ++k) {
      std::size_t src = (me + k) % p;
      if (from_each[src] > 0) {
        h.reqs.push_back(irecv(static_cast<int>(src), tag));
        h.src_of.push_back(static_cast<int>(src));
      }
    }
    return h;
  }

  /// Drain an in-flight all-to-all in arrival order (wait_any): whichever
  /// payload lands first is unpacked first, so a slow peer stalls nothing
  /// but its own slice.  `out` is indexed by source, so arrival order
  /// changes only the stall pattern, never the result.
  template <class T>
  std::vector<std::vector<T>> wait_alltoallv(AlltoallvHandle<T>& h,
                                             double timeout_s = kNoDeadline) {
    for (std::size_t remaining = h.reqs.size(); remaining > 0; --remaining) {
      const int i = wait_any(std::span<Request>(h.reqs), timeout_s);
      h.out[static_cast<std::size_t>(h.src_of[static_cast<std::size_t>(i)])] =
          h.reqs[static_cast<std::size_t>(i)].template take<T>();
    }
    h.active = false;
    return std::move(h.out);
  }

  /// Personalized all-to-all with per-destination payloads; returns the
  /// payload received from each source (empty vectors allowed both ways).
  template <class T>
  std::vector<std::vector<T>> alltoallv(const std::vector<std::vector<T>>& send_to) {
    telemetry::Span span("parx/alltoallv");
    auto h = ialltoallv(send_to);
    return wait_alltoallv(h);
  }

  /// Move variant: consumes `send_to`, handing every slice over without a
  /// copy on the fast path.
  template <class T>
  std::vector<std::vector<T>> alltoallv(std::vector<std::vector<T>>&& send_to) {
    telemetry::Span span("parx/alltoallv");
    auto h = ialltoallv(std::move(send_to));
    return wait_alltoallv(h);
  }

  /// Broadcast `v` (contents and size) from root to all ranks
  /// (binomial tree, log2(p) rounds).
  template <class T>
  void bcast(std::vector<T>& v, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = size();
    if (p == 1) return;
    telemetry::Span span("parx/bcast");
    fault_point(FaultOp::kCollective);
    const int tag = next_collective_tag();
    const int vr = (rank_ - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if (vr & mask) {
        int src = (vr - mask + root) % p;
        v = recv<T>(src, tag);
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    for (; mask > 0; mask >>= 1) {
      if (vr + mask < p) {
        int dst = (vr + mask + root) % p;
        send(dst, tag, std::span<const T>(v));
      }
    }
  }

  /// Element-wise reduce of `inout` into root with a binary op (binomial
  /// tree).  The root's `inout` receives the result; every other rank's
  /// buffer is left untouched (it is a pure send buffer, matching
  /// MPI_Reduce).  The tree accumulates into this communicator's per-rank
  /// scratch slot, so a steady-state reduce allocates no working copy.
  template <class T, class Op>
  void reduce(std::span<T> inout, int root, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    telemetry::Span span("parx/reduce");
    fault_point(FaultOp::kCollective);
    const int tag = next_collective_tag();
    const int p = size();
    const int vr = (rank_ - root + p) % p;
    const std::size_t n = inout.size();
    T* acc = reinterpret_cast<T*>(coll_scratch(inout.size_bytes()));
    if (n > 0) std::memcpy(acc, inout.data(), inout.size_bytes());
    for (int mask = 1; mask < p; mask <<= 1) {
      if (vr & mask) {
        int dst = (vr - mask + root) % p;
        send(dst, tag, std::span<const T>(acc, n));
        break;
      }
      if (vr + mask < p) {
        int src = (vr + mask + root) % p;
        auto part = recv<T>(src, tag);
        for (std::size_t i = 0; i < n; ++i) acc[i] = op(acc[i], part[i]);
      }
    }
    if (rank_ == root && n > 0) std::memcpy(inout.data(), acc, inout.size_bytes());
  }

  template <class T>
  void reduce_sum(std::span<T> inout, int root) {
    reduce(inout, root, [](T a, T b) { return a + b; });
  }

  /// Broadcast the contents of `v` from root into every rank's `v` (size
  /// must already agree on all ranks).  The fixed-size sibling of bcast:
  /// no vector round trip, receives land straight in the caller's buffer.
  template <class T>
  void bcast_span(std::span<T> v, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = size();
    if (p == 1) return;
    telemetry::Span span("parx/bcast");
    fault_point(FaultOp::kCollective);
    const int tag = next_collective_tag();
    const int vr = (rank_ - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if (vr & mask) {
        int src = (vr - mask + root) % p;
        Buf b = recv_buf(src, tag, kNoDeadline);
        if (!v.empty()) std::memcpy(v.data(), b.data(), v.size_bytes());
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    for (; mask > 0; mask >>= 1) {
      if (vr + mask < p) {
        int dst = (vr + mask + root) % p;
        send(dst, tag, std::span<const T>(v.data(), v.size()));
      }
    }
  }

  template <class T, class Op>
  void allreduce(std::span<T> inout, Op op) {
    reduce(inout, 0, op);
    bcast_span(inout, 0);
  }

  template <class T>
  void allreduce_sum(std::span<T> inout) {
    allreduce(inout, [](T a, T b) { return a + b; });
  }

  template <class T>
  T allreduce_sum(T v) {
    allreduce_sum(std::span<T>(&v, 1));
    return v;
  }

  template <class T>
  T allreduce_max(T v) {
    allreduce(std::span<T>(&v, 1), [](T a, T b) { return a > b ? a : b; });
    return v;
  }

  template <class T>
  T allreduce_min(T v) {
    allreduce(std::span<T>(&v, 1), [](T a, T b) { return a < b ? a : b; });
    return v;
  }

  /// Gather variable-size contributions; root receives the concatenation in
  /// rank order (others receive an empty vector).
  template <class T>
  std::vector<T> gatherv(std::span<const T> mine, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    telemetry::Span span("parx/gatherv");
    fault_point(FaultOp::kCollective);
    const int tag = next_collective_tag();
    const auto p = static_cast<std::size_t>(size());
    std::vector<std::size_t> sizes(p, 0);
    if (rank_ != root) sizes[static_cast<std::size_t>(root)] = mine.size_bytes();
    auto from_each = exchange_sizes(sizes);
    if (rank_ != root) {
      if (!mine.empty()) send(root, tag, mine);
      return {};
    }
    std::vector<T> out;
    for (std::size_t r = 0; r < p; ++r) {
      if (static_cast<int>(r) == rank_) {
        out.insert(out.end(), mine.begin(), mine.end());
      } else if (from_each[r] > 0) {
        auto part = recv<T>(static_cast<int>(r), tag);
        out.insert(out.end(), part.begin(), part.end());
      }
    }
    return out;
  }

  /// All ranks receive the rank-ordered concatenation of all contributions.
  template <class T>
  std::vector<T> allgatherv(std::span<const T> mine) {
    auto all = gatherv(mine, 0);
    bcast(all, 0);
    return all;
  }

 private:
  /// Common send prologue (fault point, ledger record) plus the framed
  /// branch: hands the message to the ReliableTransport when the sender's
  /// links are covered by the installed lossy plan and returns true.
  /// Returns false when the message should take the zero-copy fast path
  /// (the caller then builds a Buf and calls deliver_local).
  bool send_framed(int dst, int tag, const void* data, std::size_t n);

  /// Fast-path delivery: move the payload straight into the destination
  /// mailbox.
  void deliver_local(int dst, int tag, Buf&& payload);

  /// Blocking receive returning the owning buffer (typed take<T>() on the
  /// result is zero-copy when the sender adopted a vector<T>).
  Buf recv_buf(int src, int tag, double timeout_s);

  /// This rank's slot of the communicator's reusable collective working
  /// buffer, grown to at least `bytes`.
  std::byte* coll_scratch(std::size_t bytes);

  /// A born-complete send request (parx sends are buffered).
  Request completed_send(int dst, int tag);

  /// Injection point at a Comm operation entry: throws RemoteFault when a
  /// sibling's fault is pending, JobPoisoned when a sibling died fatally,
  /// FaultInjected when this rank's context matches an armed FaultSpec.
  void fault_point(FaultOp op);
  /// The flag checks of fault_point alone (polled while blocked).
  void check_abort() const;

  /// Draw this rank's next collective sequence number and fold it into a
  /// negative tag (application tags are non-negative).  Called exactly
  /// once per collective entry on every rank, so SPMD call order keeps
  /// the tags in agreement; the window bounds how many collectives may
  /// be in flight concurrently on one communicator.
  int next_collective_tag();

  static constexpr int kCollTagBase = -101;
  static constexpr std::uint32_t kCollSeqWindow = 4096;

  /// Core of wait/wait_any/wait_all: block on this rank's mailbox until
  /// `ready` (called under the mailbox lock, after matching) returns
  /// true.  Restamps the watchdog whenever the arrival counter moves.
  template <class Ready>
  void wait_until(Ready&& ready, double timeout_s, const char* opname, int peer_world);

  std::shared_ptr<detail::Group> group_;
  int rank_ = -1;
};

}  // namespace greem::parx
