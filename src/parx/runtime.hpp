#pragma once
// Spawns a fixed set of ranks (threads) and runs a function on each,
// handing every rank its world communicator — the analog of mpirun.

#include <functional>
#include <memory>

#include "parx/comm.hpp"
#include "parx/fault.hpp"
#include "parx/traffic.hpp"
#include "parx/transport.hpp"

namespace greem::parx {

namespace detail {
struct JobState;
}

/// The armed form of one FaultPlan: the fail-stop injector and the
/// reliable transport (lossy-link model + ack/retransmit state) built
/// from its specs.  A domain owns state that must survive being swapped
/// out -- fire-once budgets, transport seq/ack windows -- so a service
/// multiplexing many jobs over one Runtime can give each job its own
/// fault domain, install it around that job's steps, and a spec that
/// already fired for job A never re-arms when A is scheduled again.
class FaultDomain {
 public:
  FaultDomain() = default;
  /// No injector and no transport: installing it is equivalent to
  /// installing an empty plan (perfect links, zero-copy fast path).
  bool empty() const { return !injector_ && !transport_; }

 private:
  friend class Runtime;
  std::shared_ptr<FaultInjector> injector_;
  std::shared_ptr<ReliableTransport> transport_;
};

class Runtime {
 public:
  /// Create a job with `nranks` ranks.  The traffic ledger persists across
  /// run() invocations so multi-phase experiments can accumulate or reset
  /// between phases.
  explicit Runtime(int nranks);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int nranks() const { return nranks_; }

  /// Run `fn(world)` on every rank concurrently; returns when all ranks
  /// finish.  If any rank throws, the job is poisoned (blocked ranks are
  /// released) and the first exception is rethrown here.
  void run(const std::function<void(Comm&)>& fn);

  /// Install a deterministic fault plan (see parx/fault.hpp).  Fail-stop
  /// specs arm the injector; link specs arm the lossy-link model and
  /// route the *covered senders'* messages through the reliable transport
  /// (which starts the job monitor thread) -- uncovered senders keep the
  /// zero-copy fast path (docs/transport-fastpath.md).  An empty plan
  /// disables both.
  ///
  /// Legal either between run() invocations, or from a single rank inside
  /// a run at a globally quiescent point: every other rank parked at a
  /// barrier bracketing the call and no message in flight (in-flight
  /// framed state of a replaced transport is discarded with it).  The
  /// bracketing barrier's release/acquire publishes the swap to the rank
  /// threads; never call it concurrently with live traffic.
  void set_fault_plan(const FaultPlan& plan);

  /// Arm `plan` into a standalone domain without installing it.  The
  /// domain captures the current transport tuning; link specs get their
  /// own ReliableTransport whose state persists across installs.
  std::shared_ptr<FaultDomain> make_fault_domain(const FaultPlan& plan);

  /// Swap the installed fault domain (nullptr or an empty domain clears
  /// injection and restores the fast path for everyone); returns the
  /// previously installed state as a domain.  Same quiescence contract
  /// as set_fault_plan: between run()s, or from a single rank with every
  /// other rank parked at a bracketing barrier and no message in flight.
  std::shared_ptr<FaultDomain> install_fault_domain(std::shared_ptr<FaultDomain> domain);

  /// Retransmission tuning of the next set_fault_plan() with link specs
  /// (and of the currently installed transport, if any).
  void set_transport_tuning(const TransportTuning& tuning);

  /// Arm the hang watchdog: when any rank stays blocked inside one Comm
  /// operation longer than cfg.quiescence_s, the monitor dumps per-rank
  /// state and raises the job fault flag (every rank then throws
  /// CommError, entering the normal recovery path).  quiescence_s == 0
  /// disarms.  Not thread-safe against a concurrent run().
  void set_watchdog(const WatchdogConfig& cfg);

  TrafficLedger& ledger();

  /// Process-wide runtime service, the "one parx job per process" the
  /// simulation-as-a-service layer multiplexes simulations onto.  The
  /// first call creates it with `nranks` ranks (> 0 required); later
  /// calls return the same instance and must pass the same nranks or 0
  /// ("whatever exists").  Throws std::invalid_argument on mismatch.
  /// Never destroyed: like TaskPool::global(), it outlives static
  /// teardown order concerns.
  static Runtime& shared(int nranks = 0);

 private:
  void ensure_monitor();

  int nranks_;
  TransportTuning tuning_;
  WatchdogConfig watchdog_;
  std::shared_ptr<detail::JobState> job_;
  std::shared_ptr<detail::Group> world_;
  // Declared last: the monitor thread touches job_/world_ until joined.
  std::unique_ptr<Monitor> monitor_;
};

/// One-shot convenience: spawn `nranks`, run `fn`, tear down.
void run_ranks(int nranks, const std::function<void(Comm&)>& fn);

}  // namespace greem::parx
