#pragma once
// Spawns a fixed set of ranks (threads) and runs a function on each,
// handing every rank its world communicator — the analog of mpirun.

#include <functional>
#include <memory>

#include "parx/comm.hpp"
#include "parx/fault.hpp"
#include "parx/traffic.hpp"

namespace greem::parx {

namespace detail {
struct JobState;
}

class Runtime {
 public:
  /// Create a job with `nranks` ranks.  The traffic ledger persists across
  /// run() invocations so multi-phase experiments can accumulate or reset
  /// between phases.
  explicit Runtime(int nranks);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int nranks() const { return nranks_; }

  /// Run `fn(world)` on every rank concurrently; returns when all ranks
  /// finish.  If any rank throws, the job is poisoned (blocked ranks are
  /// released) and the first exception is rethrown here.
  void run(const std::function<void(Comm&)>& fn);

  /// Install a deterministic fault plan for subsequent run() invocations
  /// (see parx/fault.hpp).  An empty plan disables injection.  Not
  /// thread-safe against a concurrent run().
  void set_fault_plan(const FaultPlan& plan);

  TrafficLedger& ledger();

 private:
  int nranks_;
  std::shared_ptr<detail::JobState> job_;
  std::shared_ptr<detail::Group> world_;
};

/// One-shot convenience: spawn `nranks`, run `fn`, tear down.
void run_ranks(int nranks, const std::function<void(Comm&)>& fn);

}  // namespace greem::parx
