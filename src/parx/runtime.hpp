#pragma once
// Spawns a fixed set of ranks (threads) and runs a function on each,
// handing every rank its world communicator — the analog of mpirun.

#include <functional>
#include <memory>

#include "parx/comm.hpp"
#include "parx/fault.hpp"
#include "parx/traffic.hpp"
#include "parx/transport.hpp"

namespace greem::parx {

namespace detail {
struct JobState;
}

class Runtime {
 public:
  /// Create a job with `nranks` ranks.  The traffic ledger persists across
  /// run() invocations so multi-phase experiments can accumulate or reset
  /// between phases.
  explicit Runtime(int nranks);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int nranks() const { return nranks_; }

  /// Run `fn(world)` on every rank concurrently; returns when all ranks
  /// finish.  If any rank throws, the job is poisoned (blocked ranks are
  /// released) and the first exception is rethrown here.
  void run(const std::function<void(Comm&)>& fn);

  /// Install a deterministic fault plan (see parx/fault.hpp).  Fail-stop
  /// specs arm the injector; link specs arm the lossy-link model and
  /// route the *covered senders'* messages through the reliable transport
  /// (which starts the job monitor thread) -- uncovered senders keep the
  /// zero-copy fast path (docs/transport-fastpath.md).  An empty plan
  /// disables both.
  ///
  /// Legal either between run() invocations, or from a single rank inside
  /// a run at a globally quiescent point: every other rank parked at a
  /// barrier bracketing the call and no message in flight (in-flight
  /// framed state of a replaced transport is discarded with it).  The
  /// bracketing barrier's release/acquire publishes the swap to the rank
  /// threads; never call it concurrently with live traffic.
  void set_fault_plan(const FaultPlan& plan);

  /// Retransmission tuning of the next set_fault_plan() with link specs
  /// (and of the currently installed transport, if any).
  void set_transport_tuning(const TransportTuning& tuning);

  /// Arm the hang watchdog: when any rank stays blocked inside one Comm
  /// operation longer than cfg.quiescence_s, the monitor dumps per-rank
  /// state and raises the job fault flag (every rank then throws
  /// CommError, entering the normal recovery path).  quiescence_s == 0
  /// disarms.  Not thread-safe against a concurrent run().
  void set_watchdog(const WatchdogConfig& cfg);

  TrafficLedger& ledger();

 private:
  void ensure_monitor();

  int nranks_;
  TransportTuning tuning_;
  WatchdogConfig watchdog_;
  std::shared_ptr<detail::JobState> job_;
  std::shared_ptr<detail::Group> world_;
  // Declared last: the monitor thread touches job_/world_ until joined.
  std::unique_ptr<Monitor> monitor_;
};

/// One-shot convenience: spawn `nranks`, run `fn`, tear down.
void run_ranks(int nranks, const std::function<void(Comm&)>& fn);

}  // namespace greem::parx
