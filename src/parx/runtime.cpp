#include "parx/runtime.hpp"

#include <exception>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "parx/group.hpp"
#include "telemetry/trace.hpp"

namespace greem::parx {

Runtime::Runtime(int nranks) : nranks_(nranks) {
  job_ = std::make_shared<detail::JobState>();
  job_->nranks = nranks;
  job_->ledger = std::make_shared<TrafficLedger>(static_cast<std::size_t>(nranks));
  job_->activity = std::make_unique<detail::RankActivity[]>(static_cast<std::size_t>(nranks));
  std::vector<int> world_ranks(static_cast<std::size_t>(nranks));
  std::iota(world_ranks.begin(), world_ranks.end(), 0);
  world_ = std::make_shared<detail::Group>(nranks, job_, std::move(world_ranks));
  job_->world_group = world_.get();  // lock-free frame routing for world traffic
}

Runtime::~Runtime() = default;

TrafficLedger& Runtime::ledger() { return *job_->ledger; }

void Runtime::ensure_monitor() {
  if (!monitor_) monitor_ = std::make_unique<Monitor>(job_, world_);
  monitor_->set_watchdog(watchdog_);
}

void Runtime::set_fault_plan(const FaultPlan& plan) {
  install_fault_domain(make_fault_domain(plan));
}

std::shared_ptr<FaultDomain> Runtime::make_fault_domain(const FaultPlan& plan) {
  auto d = std::make_shared<FaultDomain>();
  const auto failstop = plan.failstop_specs();
  const auto link = plan.link_specs();
  if (!failstop.empty()) d->injector_ = std::make_shared<FaultInjector>(failstop);
  if (!link.empty()) {
    auto model = std::make_shared<LinkModel>(link, plan.link_seed());
    d->transport_ = std::make_shared<ReliableTransport>(nranks_, std::move(model),
                                                        tuning_, job_.get());
  }
  return d;
}

std::shared_ptr<FaultDomain> Runtime::install_fault_domain(
    std::shared_ptr<FaultDomain> domain) {
  auto prev = std::make_shared<FaultDomain>();
  prev->injector_ = job_->injector_ref();
  prev->transport_ = job_->transport_ref();
  job_->set_injector(domain ? domain->injector_ : nullptr);
  job_->set_transport(domain ? domain->transport_ : nullptr);
  if (domain && domain->transport_) ensure_monitor();  // something must drive retransmission
  return prev;
}

Runtime& Runtime::shared(int nranks) {
  static std::mutex mu;
  static Runtime* rt = nullptr;  // leaked: outlives static teardown
  std::lock_guard lock(mu);
  if (!rt) {
    if (nranks <= 0)
      throw std::invalid_argument("Runtime::shared: first call must size the runtime");
    rt = new Runtime(nranks);
  } else if (nranks > 0 && nranks != rt->nranks()) {
    throw std::invalid_argument("Runtime::shared: already created with " +
                                std::to_string(rt->nranks()) + " ranks");
  }
  return *rt;
}

void Runtime::set_transport_tuning(const TransportTuning& tuning) {
  tuning_ = tuning;
  if (auto t = job_->transport_ref()) t->set_tuning(tuning);
}

void Runtime::set_watchdog(const WatchdogConfig& cfg) {
  watchdog_ = cfg;
  if (cfg.quiescence_s > 0 || monitor_) ensure_monitor();
}

void Runtime::run(const std::function<void(Comm&)>& fn) {
  job_->poisoned.store(false);
  job_->fault.store(false);
  {
    std::lock_guard lock(job_->reason_mu);
    job_->fault_reason.clear();
  }
  std::mutex err_mu;
  std::exception_ptr first_error;

  auto body = [&](int rank) {
    // Route this rank thread's spans onto a per-rank trace track; start
    // outside any faultable region (the context is thread-local and the
    // rank-0 thread persists across run() calls).
    const int prev_track = telemetry::set_trace_rank(rank);
    set_fault_context(kNoFaultStep, FaultPhase::kAny);
    Comm comm(world_, rank);
    try {
      fn(comm);
    } catch (...) {
      {
        std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      job_->poisoned.store(true);
    }
    telemetry::set_trace_rank(prev_track);
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_ - 1));
  for (int r = 1; r < nranks_; ++r) threads.emplace_back(body, r);
  body(0);
  for (auto& t : threads) t.join();

  if (first_error) {
    // Drain mailboxes and in-flight transport state so a subsequent run()
    // starts clean.
    for (auto& box : world_->boxes_storage) {
      std::lock_guard lock(box.mu);
      box.msgs.clear();
    }
    if (auto t = job_->transport_ref()) t->reset();
    std::rethrow_exception(first_error);
  }
}

void run_ranks(int nranks, const std::function<void(Comm&)>& fn) {
  Runtime rt(nranks);
  rt.run(fn);
}

}  // namespace greem::parx
