#include "parx/transport.hpp"

#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "parx/group.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/live_endpoint.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/hash.hpp"

namespace greem::parx {

using detail::Group;
using detail::JobState;
using detail::Message;

namespace {

/// Uniform [0,1) from a counter-based FNV-1a hash: same inputs, same
/// draw, on any thread at any time.
double hash01(std::uint64_t seed, int src, int dst, std::uint64_t seq,
              std::uint32_t attempt, std::uint32_t salt) {
  util::Fnv1a64 h;
  h.mix(seed).mix(src).mix(dst).mix(seq).mix(attempt).mix(salt);
  return static_cast<double>(h.value() >> 11) * 0x1.0p-53;
}

constexpr std::uint32_t kSaltDrop = 1;
constexpr std::uint32_t kSaltCorrupt = 2;
constexpr std::uint32_t kSaltDup = 3;
constexpr std::uint32_t kSaltReorder = 4;
constexpr std::uint32_t kSaltBlackhole = 5;
constexpr std::uint32_t kSaltAck = 6;
constexpr std::uint32_t kSaltBit = 7;

/// Cached counter references: registry lookup is a mutexed map, so every
/// hot-path site below binds its counter once (addresses are stable for
/// the process lifetime).
#define PARX_COUNTER(var, name) \
  static telemetry::Counter& var = telemetry::Registry::global().counter(name)

/// Format "parx/link/S->D/<what>" without allocating beyond the registry's
/// own copy of the name.
std::string link_name(int src, int dst, const char* what) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "parx/link/%d->%d/%s", src, dst, what);
  return buf;
}

/// Lazily bind a per-link instrument slot (benign race: the registry
/// returns one stable reference per name, so concurrent fills agree).
template <class T, class Lookup>
T& link_slot(std::vector<std::atomic<T*>>& cache, int nranks, int src, int dst,
             Lookup&& lookup) {
  auto& slot = cache[static_cast<std::size_t>(src) * static_cast<std::size_t>(nranks) +
                     static_cast<std::size_t>(dst)];
  T* p = slot.load(std::memory_order_acquire);
  if (!p) {
    p = &lookup();
    slot.store(p, std::memory_order_release);
  }
  return *p;
}

}  // namespace

// ---------------------------------------------------------------- LinkModel

struct LinkModel::Armed {
  FaultSpec spec;
  std::atomic<long long> remaining{0};  ///< <0 = unlimited
};

LinkModel::LinkModel(std::vector<FaultSpec> specs, std::uint64_t seed)
    : n_(specs.size()), seed_(seed) {
  armed_ = std::make_unique<Armed[]>(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    armed_[i].spec = specs[i];
    armed_[i].remaining.store(specs[i].times == kUnlimited ? -1 : specs[i].times,
                              std::memory_order_relaxed);
  }
}

LinkModel::~LinkModel() = default;

// The hash draw is evaluated lazily (only when the spec could fire at
// all), so rate-0 specs -- the "armed but idle" perf probes -- cost a
// comparison, not an FNV pass, per message.
bool LinkModel::fire(Armed& a, double u) {
  if (u >= a.spec.rate) return false;
  long long r = a.remaining.load(std::memory_order_relaxed);
  if (r < 0) return true;  // unlimited budget
  if (a.remaining.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    a.remaining.fetch_add(1, std::memory_order_relaxed);  // spent; undo
    return false;
  }
  return true;
}

LinkModel::Decision LinkModel::decide(int src_world, int dst_world, std::uint64_t seq,
                                      std::uint32_t attempt, const FaultContext& ctx) {
  Decision d;
  for (std::size_t i = 0; i < n_; ++i) {
    Armed& a = armed_[i];
    if (!spec_matches_context(a.spec, src_world, ctx)) continue;
    if (a.spec.rate <= 0) continue;
    switch (a.spec.kind) {
      case FaultKind::kLinkDrop:
        if (!d.drop && fire(a, hash01(seed_, src_world, dst_world, seq, attempt, kSaltDrop)))
          d.drop = true;
        break;
      case FaultKind::kLinkCorrupt:
        if (!d.corrupt &&
            fire(a, hash01(seed_, src_world, dst_world, seq, attempt, kSaltCorrupt))) {
          d.corrupt = true;
          d.corrupt_salt = static_cast<std::uint64_t>(
              hash01(seed_, src_world, dst_world, seq, attempt, kSaltBit) * 0x1.0p+32);
        }
        break;
      case FaultKind::kLinkDuplicate:
        if (!d.duplicate &&
            fire(a, hash01(seed_, src_world, dst_world, seq, attempt, kSaltDup)))
          d.duplicate = true;
        break;
      case FaultKind::kLinkReorder:
        if (!d.reorder &&
            fire(a, hash01(seed_, src_world, dst_world, seq, attempt, kSaltReorder)))
          d.reorder = true;
        break;
      default:
        break;  // fail-stop kinds and blackholes are sampled elsewhere
    }
  }
  return d;
}

bool LinkModel::blackhole_fires(int src_world, int dst_world, std::uint64_t seq,
                                const FaultContext& ctx) {
  for (std::size_t i = 0; i < n_; ++i) {
    Armed& a = armed_[i];
    if (a.spec.kind != FaultKind::kLinkBlackhole || a.spec.rate <= 0) continue;
    if (!spec_matches_context(a.spec, src_world, ctx)) continue;
    if (fire(a, hash01(seed_, src_world, dst_world, seq, 0, kSaltBlackhole))) return true;
  }
  return false;
}

bool LinkModel::ack_dropped(int acker_world, int to_world, std::uint64_t seq,
                            std::uint32_t attempt, const FaultContext& ctx) {
  for (std::size_t i = 0; i < n_; ++i) {
    Armed& a = armed_[i];
    if (a.spec.kind != FaultKind::kLinkDrop || a.spec.rate <= 0) continue;
    if (!spec_matches_context(a.spec, acker_world, ctx)) continue;
    if (fire(a, hash01(seed_, acker_world, to_world, seq, attempt, kSaltAck))) return true;
  }
  return false;
}

bool LinkModel::covers_sender(int src_world) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const FaultSpec& s = armed_[i].spec;
    if (s.rank == kEveryRank || s.rank == src_world) return true;
  }
  return false;
}

bool LinkModel::can_corrupt() const {
  for (std::size_t i = 0; i < n_; ++i)
    if (armed_[i].spec.kind == FaultKind::kLinkCorrupt) return true;
  return false;
}

// ------------------------------------------------------- ReliableTransport

ReliableTransport::ReliableTransport(int nranks, std::shared_ptr<LinkModel> model,
                                     TransportTuning tuning, JobState* job)
    : nranks_(nranks),
      model_(std::move(model)),
      tuning_(tuning),
      job_(job),
      eps_(static_cast<std::size_t>(nranks)),
      link_lat_(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks)),
      link_rtt_(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks)),
      link_retx_(static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks)) {
  for (auto& ep : eps_) {
    ep.tx.resize(static_cast<std::size_t>(nranks));
    ep.rx.resize(static_cast<std::size_t>(nranks));
  }
  // Partition senders into framed vs fast-path once, at install time, and
  // decide whether CRC framing is engaged at all (pay-for-what-you-use:
  // a drop-only plan cannot flip bits, so both CRC passes are skipped).
  framed_.resize(static_cast<std::size_t>(nranks), 0);
  for (int r = 0; r < nranks; ++r)
    framed_[static_cast<std::size_t>(r)] = model_->covers_sender(r) ? 1 : 0;
  crc_on_ = model_->can_corrupt();
  rto_hint_.store(tuning_.rto_s, std::memory_order_relaxed);
}

ReliableTransport::~ReliableTransport() = default;

telemetry::Histogram& ReliableTransport::link_latency(int src_world, int dst_world) {
  return link_slot(link_lat_, nranks_, src_world, dst_world, [&]() -> telemetry::Histogram& {
    return telemetry::Registry::global().histogram(link_name(src_world, dst_world, "latency_s"));
  });
}

telemetry::Histogram& ReliableTransport::link_ack_rtt(int src_world, int dst_world) {
  return link_slot(link_rtt_, nranks_, src_world, dst_world, [&]() -> telemetry::Histogram& {
    return telemetry::Registry::global().histogram(link_name(src_world, dst_world, "ack_rtt_s"));
  });
}

telemetry::Counter& ReliableTransport::link_retransmits(int src_world, int dst_world) {
  return link_slot(link_retx_, nranks_, src_world, dst_world, [&]() -> telemetry::Counter& {
    return telemetry::Registry::global().counter(link_name(src_world, dst_world, "retransmits"));
  });
}

std::uint32_t ReliableTransport::frame_crc(const Frame& f) const {
  util::Crc32 c;
  auto mix = [&c](const auto& v) { c.update(&v, sizeof(v)); };
  mix(f.seq);
  mix(f.src_world);
  mix(f.dst_world);
  mix(f.group_id);
  mix(f.src_local);
  mix(f.dst_local);
  mix(f.tag);
  // ack_upto is deliberately excluded: the corrupt model flips payload
  // bits only, and cumulative acks are idempotent.
  const std::uint64_t n = f.payload ? f.payload->size() : 0;
  mix(n);
  if (f.payload) c.update(f.payload->data(), f.payload->size());
  return c.value();
}

void ReliableTransport::send(Group& group, int src_local, int dst_local, int tag,
                             const void* data, std::size_t n) {
  Frame f;
  f.src_world = group.world_ranks[static_cast<std::size_t>(src_local)];
  f.dst_world = group.world_ranks[static_cast<std::size_t>(dst_local)];
  f.group_id = group.id;
  f.src_local = src_local;
  f.dst_local = dst_local;
  f.tag = tag;
  // The only payload copy on the framed path: retransmissions and
  // deliveries share this allocation from here on.
  f.payload = std::make_shared<std::vector<std::byte>>(n);
  if (n > 0) std::memcpy(f.payload->data(), data, n);
  f.ctx = fault_context();
  // Causal-trace stamp: travels with the frame (and its retransmit-queue
  // copy) into the destination Message, pairing send and recv events.
  f.flow = telemetry::next_flow_id();
  f.sent_ns = telemetry::trace_now_ns();

  // Piggyback the reverse link's pending cumulative ack, if any.  The
  // lock-free probe keeps clean sends from paying the peer lock when
  // nothing is owed; the RxPeer and TxPeer locks below are same-tier and
  // taken sequentially, never nested.
  {
    Endpoint& ep = eps_[static_cast<std::size_t>(f.src_world)];
    RxPeer& rp = ep.rx[static_cast<std::size_t>(f.dst_world)];
    if (rp.ack_pending.load(std::memory_order_relaxed) > 0) {
      std::lock_guard lock(rp.mu);
      const std::uint64_t pending = rp.ack_pending.load(std::memory_order_relaxed);
      if (pending > 0) {
        f.ack_upto = pending;
        rp.ack_pending.store(0, std::memory_order_relaxed);
        acks_backlog_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }

  bool doomed = false;
  {
    Endpoint& ep = eps_[static_cast<std::size_t>(f.src_world)];
    TxPeer& tp = ep.tx[static_cast<std::size_t>(f.dst_world)];
    std::lock_guard lock(tp.mu);
    f.seq = tp.next_seq++;
    if (crc_on_) f.crc = frame_crc(f);
    // The blackhole verdict is per-frame and sticks to every
    // retransmission, so an exhausted retry budget is deterministic.
    doomed = model_->blackhole_fires(f.src_world, f.dst_world, f.seq, f.ctx);
    tp.unacked.push_back(Pending{f, detail::steady_seconds() + rto_hint(), doomed});
  }
  unacked_frames_.fetch_add(1, std::memory_order_relaxed);
  PARX_COUNTER(frames_sent, "parx/frames_sent");
  frames_sent.add();
  telemetry::flight_record_frame(telemetry::FrameEventKind::kSend, f.src_world, f.dst_world,
                                 f.seq, n, f.flow);
  transmit(std::move(f), doomed);
}

void ReliableTransport::transmit(Frame f, bool doomed) {
  if (doomed) {
    PARX_COUNTER(blackholed, "parx/blackholed");
    blackholed.add();
    return;
  }
  const LinkModel::Decision d =
      model_->decide(f.src_world, f.dst_world, f.seq, f.attempt, f.ctx);
  if (d.drop) {
    PARX_COUNTER(drops, "parx/drops_injected");
    drops.add();
    telemetry::flight_record_frame(telemetry::FrameEventKind::kDrop, f.src_world, f.dst_world,
                                   f.seq, f.payload ? f.payload->size() : 0, f.flow);
    return;
  }
  if (d.corrupt && f.payload && !f.payload->empty()) {
    // Deep-copy before flipping so the retransmit queue's pristine copy
    // heals the corruption (f.payload still aliases that copy here).
    f.payload = std::make_shared<std::vector<std::byte>>(*f.payload);
    const std::uint64_t bit = d.corrupt_salt % (f.payload->size() * 8);
    (*f.payload)[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
    PARX_COUNTER(corrupted, "parx/corrupted_injected");
    corrupted.add();
  }
  if (d.duplicate) {
    PARX_COUNTER(dups, "parx/duplicates_injected");
    dups.add();
    deliver(f, d.reorder);
    deliver(std::move(f), false);
    return;
  }
  deliver(std::move(f), d.reorder);
}

void ReliableTransport::deliver(Frame f, bool hold_for_reorder) {
  const int src = f.src_world, dst = f.dst_world;
  const std::uint64_t seq = f.seq;
  const std::uint32_t attempt = f.attempt;
  const FaultContext ctx = f.ctx;
  std::uint64_t pig = f.ack_upto;  ///< piggybacked acks carried by arriving frames
  std::uint64_t ack = 0;
  {
    Endpoint& ep = eps_[static_cast<std::size_t>(dst)];
    RxPeer& rp = ep.rx[static_cast<std::size_t>(src)];
    std::lock_guard lock(rp.mu);
    if (hold_for_reorder) {
      // Held until the next frame on this link overtakes it (or the
      // monitor flushes it) -- that is what "reorder" means here.  Its
      // piggybacked ack waits with it.
      PARX_COUNTER(reordered, "parx/reordered_injected");
      reordered.add();
      rp.limbo.push_back(std::move(f));
      limbo_frames_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ack = process_frame(rp, f);
    // Anything parked in limbo has now been overtaken; let it arrive.
    while (!rp.limbo.empty()) {
      Frame held = std::move(rp.limbo.front());
      rp.limbo.pop_front();
      limbo_frames_.fetch_sub(1, std::memory_order_relaxed);
      if (held.ack_upto > pig) pig = held.ack_upto;
      const std::uint64_t a = process_frame(rp, held);
      if (a > ack) ack = a;
    }
    // Acks are not applied immediately: record as pending; the next
    // reverse-direction data frame piggybacks it, or the monitor flushes
    // it as a standalone ack on the batching deadline.
    if (ack > 0) note_ack(rp, ack, seq, attempt, ctx);
  }
  // The carrier frame already survived the link model, so its piggybacked
  // ack applies without a second drop draw.
  if (pig > 0) apply_ack_clean(src, dst, pig);
}

void ReliableTransport::note_ack(RxPeer& rp, std::uint64_t ack, std::uint64_t seq,
                                 std::uint32_t attempt, const FaultContext& ctx) {
  const std::uint64_t pending = rp.ack_pending.load(std::memory_order_relaxed);
  if (pending == 0) {
    rp.ack_since = detail::steady_seconds();
    acks_backlog_.fetch_add(1, std::memory_order_relaxed);
  }
  if (ack > pending) rp.ack_pending.store(ack, std::memory_order_relaxed);
  rp.ack_seq = seq;
  rp.ack_attempt = attempt;
  rp.ack_ctx = ctx;
}

std::uint64_t ReliableTransport::process_frame(RxPeer& rp, Frame& f) {
  if (crc_on_ && frame_crc(f) != f.crc) {
    // Bit-flipped in flight; drop silently and let retransmission heal it.
    PARX_COUNTER(caught, "parx/corrupt_detected");
    caught.add();
    return 0;
  }
  if (f.seq < rp.expected) {
    // Already delivered (retransmit raced the ack, or an injected dup).
    PARX_COUNTER(dropped, "parx/duplicates_dropped");
    dropped.add();
    return rp.expected;  // re-ack so the sender stops retransmitting
  }
  if (f.seq > rp.expected) {
    // Out of order: park for reassembly (dedup by map key).
    if (!rp.ooo.emplace(f.seq, std::move(f)).second) {
      PARX_COUNTER(dropped, "parx/duplicates_dropped");
      dropped.add();
    }
    return 0;
  }
  to_mailbox(f);
  ++rp.expected;
  for (auto it = rp.ooo.begin(); it != rp.ooo.end() && it->first == rp.expected;) {
    to_mailbox(it->second);
    ++rp.expected;
    it = rp.ooo.erase(it);
  }
  return rp.expected;
}

void ReliableTransport::to_mailbox(Frame& f) {
  if (f.flow != 0) {
    // In-order acceptance closes the wire leg: send -> deliver latency
    // includes every retransmit and reassembly delay on this link.
    const std::int64_t now = telemetry::trace_now_ns();
    link_latency(f.src_world, f.dst_world)
        .record(static_cast<double>(now > f.sent_ns ? now - f.sent_ns : 0) * 1e-9);
    telemetry::flight_record_frame(telemetry::FrameEventKind::kDeliver, f.src_world,
                                   f.dst_world, f.seq, f.payload ? f.payload->size() : 0,
                                   f.flow);
  }
  auto push = [&](Group* g) {
    auto& box = *g->boxes[static_cast<std::size_t>(f.dst_local)];
    {
      std::lock_guard lock(box.mu);
      // The payload may still be shared with the retransmit queue; the
      // receiver's take() moves it once the queue lets go (Buf::share).
      box.msgs.push_back(Message{f.src_local, f.tag, Buf::share(std::move(f.payload)),
                                 f.src_world, f.flow, f.sent_ns});
      ++box.delivered;
    }
    box.cv.notify_all();
  };
  // World traffic (the dominant path) routes without the global registry
  // lock: the world group is created before any run and outlives them all.
  Group* wg = job_->world_group;
  if (wg && wg->id == f.group_id) {
    push(wg);
    return;
  }
  std::lock_guard groups_lock(job_->groups_mu);
  for (Group* g : job_->groups) {
    if (g->id != f.group_id) continue;
    push(g);
    return;
  }
  // The destination communicator is gone; the application can no longer
  // recv this message, so consuming it is the only consistent outcome.
  PARX_COUNTER(orphaned, "parx/orphaned_frames");
  orphaned.add();
}

void ReliableTransport::clear_acked(TxPeer& tp, std::uint64_t upto) {
  if (upto > tp.acked_upto) tp.acked_upto = upto;
  std::uint64_t cleared = 0;
  const std::int64_t now = telemetry::trace_now_ns();
  while (!tp.unacked.empty() && tp.unacked.front().frame.seq < upto) {
    const Frame& f = tp.unacked.front().frame;
    if (f.flow != 0) {
      // Retiring a frame closes its ack round trip (first send -> ack).
      const double rtt = static_cast<double>(now > f.sent_ns ? now - f.sent_ns : 0) * 1e-9;
      link_ack_rtt(f.src_world, f.dst_world).record(rtt);
      static telemetry::Histogram& all_rtt =
          telemetry::Registry::global().histogram("parx/ack_rtt_s");
      all_rtt.record(rtt);
      telemetry::flight_record_frame(telemetry::FrameEventKind::kAck, f.src_world,
                                     f.dst_world, f.seq, f.payload ? f.payload->size() : 0,
                                     f.flow);
    }
    tp.unacked.pop_front();
    ++cleared;
  }
  if (cleared > 0) unacked_frames_.fetch_sub(cleared, std::memory_order_relaxed);
}

void ReliableTransport::apply_ack(int acker_world, int to_world, std::uint64_t upto,
                                  std::uint64_t seq, std::uint32_t attempt,
                                  const FaultContext& ctx) {
  if (model_->ack_dropped(acker_world, to_world, seq, attempt, ctx)) {
    PARX_COUNTER(acks_dropped, "parx/acks_dropped");
    acks_dropped.add();
    return;
  }
  PARX_COUNTER(acks, "parx/acks");
  acks.add();
  TxPeer& tp = eps_[static_cast<std::size_t>(to_world)].tx[static_cast<std::size_t>(acker_world)];
  std::lock_guard lock(tp.mu);
  clear_acked(tp, upto);
}

void ReliableTransport::apply_ack_clean(int acker_world, int to_world, std::uint64_t upto) {
  PARX_COUNTER(piggybacked, "parx/acks_piggybacked");
  piggybacked.add();
  TxPeer& tp = eps_[static_cast<std::size_t>(to_world)].tx[static_cast<std::size_t>(acker_world)];
  std::lock_guard lock(tp.mu);
  clear_acked(tp, upto);
}

void ReliableTransport::tick(double now) {
  // Idle early-out: nothing unacked, no ack owed, nothing in limbo --
  // the common case on clean links between bursts -- costs three relaxed
  // loads and no lock (a stale hint only delays work by one tick).
  if (unacked_frames_.load(std::memory_order_relaxed) == 0 &&
      acks_backlog_.load(std::memory_order_relaxed) == 0 &&
      limbo_frames_.load(std::memory_order_relaxed) == 0)
    return;
  std::lock_guard scan(scan_mu_);
  const TransportTuning tun = tuning();

  // Flush reorder limbo: a held frame with no successor traffic must not
  // wait for its retransmit timeout.
  if (limbo_frames_.load(std::memory_order_relaxed) > 0) {
    for (auto& ep : eps_) {
      std::vector<Frame> flush;
      for (auto& rp : ep.rx) {
        std::lock_guard lock(rp.mu);
        while (!rp.limbo.empty()) {
          flush.push_back(std::move(rp.limbo.front()));
          rp.limbo.pop_front();
          limbo_frames_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      for (auto& f : flush) deliver(std::move(f), false);
    }
  }

  // Standalone-ack flush: pending acks no reverse traffic picked up, once
  // past the batching deadline.  These ride the lossy link (drop draw in
  // apply_ack), using the raising frame's identity for determinism.
  if (acks_backlog_.load(std::memory_order_relaxed) > 0) {
    struct AckOut {
      int acker, to;
      std::uint64_t upto, seq;
      std::uint32_t attempt;
      FaultContext ctx;
    };
    std::vector<AckOut> acks;
    for (std::size_t dst = 0; dst < eps_.size(); ++dst) {
      Endpoint& ep = eps_[dst];
      for (std::size_t src = 0; src < ep.rx.size(); ++src) {
        RxPeer& rp = ep.rx[src];
        std::lock_guard lock(rp.mu);
        const std::uint64_t pending = rp.ack_pending.load(std::memory_order_relaxed);
        if (pending == 0 || now - rp.ack_since < tun.ack_delay_s) continue;
        acks.push_back({static_cast<int>(dst), static_cast<int>(src), pending,
                        rp.ack_seq, rp.ack_attempt, rp.ack_ctx});
        rp.ack_pending.store(0, std::memory_order_relaxed);
        acks_backlog_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    for (auto& a : acks) apply_ack(a.acker, a.to, a.upto, a.seq, a.attempt, a.ctx);
  }

  // Retransmit scan.
  if (unacked_frames_.load(std::memory_order_relaxed) == 0) return;
  struct Retx {
    Frame frame;
    bool doomed;
  };
  std::vector<Retx> retx;
  std::string dead;
  for (auto& ep : eps_) {
    for (std::size_t dst = 0; dst < ep.tx.size(); ++dst) {
      TxPeer& tp = ep.tx[dst];
      std::lock_guard lock(tp.mu);
      for (auto& p : tp.unacked) {
        if (now < p.next_retry) continue;
        if (static_cast<int>(p.frame.attempt) + 1 >= tun.max_attempts) {
          if (dead.empty()) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "parx: unrecoverable message loss on link %d->%d "
                          "(seq %" PRIu64 ", %u transmissions)",
                          p.frame.src_world, p.frame.dst_world, p.frame.seq,
                          p.frame.attempt + 1);
            dead = buf;
          }
          continue;
        }
        ++p.frame.attempt;
        p.next_retry =
            now + tun.rto_s * std::pow(tun.backoff, p.frame.attempt);
        retx.push_back({p.frame, p.doomed});
      }
    }
  }
  for (auto& r : retx) {
    PARX_COUNTER(retransmits, "parx/retransmits");
    retransmits.add();
    link_retransmits(r.frame.src_world, r.frame.dst_world).add();
    telemetry::flight_record_frame(telemetry::FrameEventKind::kRetransmit, r.frame.src_world,
                                   r.frame.dst_world, r.frame.seq,
                                   r.frame.payload ? r.frame.payload->size() : 0,
                                   r.frame.flow);
    if (job_->ledger)
      job_->ledger->record_retransmit(r.frame.src_world, r.frame.dst_world,
                                      r.frame.payload ? r.frame.payload->size() : 0);
    transmit(std::move(r.frame), r.doomed);
  }
  if (!dead.empty()) {
    PARX_COUNTER(failures, "parx/transport_failures");
    failures.add();
    job_->raise_fault(dead);
  }
}

void ReliableTransport::reset() {
  std::lock_guard scan(scan_mu_);
  for (auto& ep : eps_) {
    for (auto& tp : ep.tx) {
      std::lock_guard lock(tp.mu);
      tp = TxPeer{};
    }
    for (auto& rp : ep.rx) {
      std::lock_guard lock(rp.mu);
      rp = RxPeer{};
    }
  }
  unacked_frames_.store(0, std::memory_order_relaxed);
  acks_backlog_.store(0, std::memory_order_relaxed);
  limbo_frames_.store(0, std::memory_order_relaxed);
}

void ReliableTransport::dump(std::ostream& os) const {
  for (int src = 0; src < nranks_; ++src) {
    const Endpoint& ep = eps_[static_cast<std::size_t>(src)];
    for (int dst = 0; dst < nranks_; ++dst) {
      const TxPeer& tp = ep.tx[static_cast<std::size_t>(dst)];
      std::lock_guard lock(tp.mu);
      if (tp.next_seq == 0) continue;
      os << "  link " << src << "->" << dst << ": sent seq<" << tp.next_seq
         << ", acked<" << tp.acked_upto << ", unacked " << tp.unacked.size() << "\n";
    }
  }
}

// ----------------------------------------------------------------- Monitor

Monitor::Monitor(std::shared_ptr<JobState> job, std::shared_ptr<Group> world)
    : job_(std::move(job)), world_(std::move(world)) {
  thread_ = std::thread([this] { loop(); });
}

Monitor::~Monitor() {
  {
    std::lock_guard lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

void Monitor::set_watchdog(const WatchdogConfig& cfg) {
  std::lock_guard lock(cfg_mu_);
  watchdog_ = cfg;
}

void Monitor::loop() {
  for (;;) {
    double tick_s = 0.001;
    if (auto t = job_->transport_ref()) tick_s = t->tuning().tick_s;
    {
      std::unique_lock lock(stop_mu_);
      stop_cv_.wait_for(lock, std::chrono::duration<double>(tick_s));
      if (stop_) return;
    }
    if (job_->poisoned.load(std::memory_order_relaxed)) continue;
    const double now = detail::steady_seconds();
    if (auto t = job_->transport_ref()) t->tick(now);
    if (!job_->fault.load(std::memory_order_relaxed)) check_hang(now);
  }
}

void Monitor::check_hang(double now) {
  WatchdogConfig cfg;
  {
    std::lock_guard lock(cfg_mu_);
    cfg = watchdog_;
  }
  if (cfg.quiescence_s <= 0 || !job_->activity) return;
  int stuck = -1;
  double stuck_for = 0;
  for (int r = 0; r < job_->nranks; ++r) {
    const auto& a = job_->activity[static_cast<std::size_t>(r)];
    const double since = a.blocked_since.load(std::memory_order_relaxed);
    if (since > 0 && now - since > cfg.quiescence_s && now - since > stuck_for) {
      stuck = r;
      stuck_for = now - since;
    }
  }
  if (stuck < 0) return;

  const auto& a = job_->activity[static_cast<std::size_t>(stuck)];
  const char* op = a.op.load(std::memory_order_relaxed);
  char head[192];
  std::snprintf(head, sizeof(head),
                "parx watchdog: rank %d stuck in %s for %.3f s (quiescence window %.3f s)",
                stuck, op ? op : "?", stuck_for, cfg.quiescence_s);

  std::ostringstream report;
  report << head << "\n";
  dump_state(report, now);
  std::cerr << report.str();
  if (!cfg.dump_path.empty()) {
    std::ofstream f(cfg.dump_path);
    if (f) f << report.str();
  }
  telemetry::Registry::global().counter("parx/watchdog_fired").add();
  // Post-mortem: mark every rank's blocked/running verdict in the flight
  // recorder, then dump the rings as a Chrome-trace artifact next to the
  // text report.  The configured path wins; the module-level path
  // (set_flight_dump_path / $GREEM_FLIGHT_DUMP) is the fallback.
  telemetry::flight_record_mark("watchdog/fired", stuck,
                                static_cast<std::int64_t>(stuck_for * 1e3));
  for (int r = 0; r < job_->nranks; ++r) {
    const auto& ra = job_->activity[static_cast<std::size_t>(r)];
    const bool blocked = ra.blocked_since.load(std::memory_order_relaxed) > 0;
    telemetry::flight_record_mark(blocked ? "watchdog/blocked" : "watchdog/running", r,
                                  ra.peer.load(std::memory_order_relaxed));
  }
  if (!cfg.flight_dump_path.empty())
    telemetry::dump_flight_recorder(cfg.flight_dump_path);
  else
    telemetry::dump_flight_recorder();
  telemetry::LiveEndpoint::global().publish_event("watchdog", head);
  job_->raise_fault(head);
}

void Monitor::dump_state(std::ostream& os, double now) const {
  os << "per-rank state:\n";
  for (int r = 0; r < job_->nranks; ++r) {
    const auto& a = job_->activity[static_cast<std::size_t>(r)];
    const double since = a.blocked_since.load(std::memory_order_relaxed);
    const char* op = a.op.load(std::memory_order_relaxed);
    const std::uint64_t step = a.ctx_step.load(std::memory_order_relaxed);
    const auto phase = static_cast<FaultPhase>(a.ctx_phase.load(std::memory_order_relaxed));
    std::size_t depth = 0;
    {
      auto& box = *world_->boxes[static_cast<std::size_t>(r)];
      std::lock_guard lock(box.mu);
      depth = box.msgs.size();
    }
    os << "  rank " << r << ": ";
    if (since > 0) {
      os << "blocked in " << (op ? op : "?");
      const int peer = a.peer.load(std::memory_order_relaxed);
      if (peer >= 0) os << " on rank " << peer;
      os << " for " << now - since << " s";
    } else {
      os << "running";
    }
    os << ", step ";
    if (step == kNoFaultStep) os << "-";
    else os << step;
    os << " phase " << to_string(phase) << ", world mailbox depth " << depth << "\n";
  }
  if (auto t = job_->transport_ref()) {
    os << "transport links:\n";
    t->dump(os);
  }
}

}  // namespace greem::parx
