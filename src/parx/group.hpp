#pragma once
// Internal shared state behind a Comm.  Not part of the public API.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "parx/buf.hpp"
#include "parx/fault.hpp"
#include "parx/traffic.hpp"

namespace greem::parx {
class FaultInjector;
class ReliableTransport;
}

namespace greem::parx::detail {

/// Raised in blocked ranks when a sibling rank failed fatally (threw out of
/// the rank function), so a single thrown exception cannot deadlock the
/// whole job.  Deliberately NOT a CommError: recovery loops must let it
/// propagate.
struct JobPoisoned : std::runtime_error {
  JobPoisoned() : std::runtime_error("parx: a sibling rank failed") {}
};

struct Group;

/// Steady-clock now in seconds (the transport/watchdog time base).
inline double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// What a rank thread is currently blocked in, published for the hang
/// watchdog (all fields relaxed atomics: the monitor only needs an
/// eventually-consistent view).  blocked_since == 0 means "not blocked".
struct RankActivity {
  std::atomic<double> blocked_since{0.0};
  std::atomic<const char*> op{nullptr};  ///< static string: "recv", "barrier", ...
  std::atomic<int> peer{-1};             ///< world rank waited on, -1 = n/a
  std::atomic<std::uint64_t> ctx_step{kNoFaultStep};
  std::atomic<std::uint8_t> ctx_phase{0};
};

/// State shared by every communicator of one Runtime invocation.
struct JobState {
  std::atomic<bool> poisoned{false};  ///< fatal: a rank escaped its function
  std::atomic<bool> fault{false};     ///< recoverable: an injected fault fired
  std::shared_ptr<TrafficLedger> ledger;
  int nranks = 0;

  // The fail-stop injector (null = no injection), mirrored exactly like
  // the transport below: ownership in `injector` under injector_mu, the
  // per-op hot path reading the raw `injector_hot` lock-free.  The same
  // quiescent-point contract applies to swaps.
  std::mutex injector_mu;
  std::shared_ptr<FaultInjector> injector;
  std::atomic<FaultInjector*> injector_hot{nullptr};

  void set_injector(std::shared_ptr<FaultInjector> i) {
    std::lock_guard lock(injector_mu);
    injector = std::move(i);
    injector_hot.store(injector.get(), std::memory_order_release);
  }

  std::shared_ptr<FaultInjector> injector_ref() {
    std::lock_guard lock(injector_mu);
    return injector;
  }

  // The reliable transport (null = perfect-link fast path for everyone).
  // Ownership lives in `transport` under transport_mu; the rank hot path
  // reads the raw mirror `transport_hot` lock-free.  Installing a plan is
  // only legal at a globally quiescent point (between run()s, or inside a
  // run with every rank parked at a barrier around the install) -- the
  // barrier's release/acquire then orders the swap against rank reads,
  // and quiescence guarantees no rank still holds the old raw pointer.
  // The monitor thread may race the swap, so it goes through
  // transport_ref(), which pins the object for the duration of a tick.
  std::mutex transport_mu;
  std::shared_ptr<ReliableTransport> transport;
  std::atomic<ReliableTransport*> transport_hot{nullptr};

  void set_transport(std::shared_ptr<ReliableTransport> t) {
    std::lock_guard lock(transport_mu);
    transport = std::move(t);
    transport_hot.store(transport.get(), std::memory_order_release);
  }

  std::shared_ptr<ReliableTransport> transport_ref() {
    std::lock_guard lock(transport_mu);
    return transport;
  }

  /// Why the fault flag went up when it was not an injected fail-stop
  /// fault (transport gave up on a frame, watchdog fired).  Guarded by
  /// reason_mu; read only on the cold throw path.
  std::mutex reason_mu;
  std::string fault_reason;

  void raise_fault(const std::string& reason) {
    {
      std::lock_guard lock(reason_mu);
      if (fault_reason.empty()) fault_reason = reason;
    }
    fault.store(true, std::memory_order_release);
  }

  std::string take_reason() {
    std::lock_guard lock(reason_mu);
    return fault_reason.empty() ? std::string("parx: a sibling rank hit an injected fault")
                                : fault_reason;
  }

  /// Per-world-rank blocked-state report for the watchdog; sized nranks.
  std::unique_ptr<RankActivity[]> activity;

  // Rendezvous for Comm::fault_recover, deliberately independent of the
  // (possibly corrupted) group barriers and immune to the fault flag.
  std::mutex recover_mu;
  std::condition_variable recover_cv;
  int recover_arrived = 0;
  std::uint64_t recover_gen = 0;

  // Every live Group of this job, so recovery can reset them all (split
  // subcommunicators included) and the transport can route retransmitted
  // frames by group id.  Guarded by groups_mu.
  std::mutex groups_mu;
  std::vector<Group*> groups;
  std::atomic<std::uint64_t> next_group_id{1};

  /// The world group, set once by Runtime before any run and outliving
  /// every run: the transport routes world-group frames to it without
  /// taking groups_mu (the dominant delivery path).
  Group* world_group = nullptr;
};

/// RAII: publish "this rank is blocked in `op` on `peer`" while inside a
/// waiting loop, so the watchdog can attribute a hang.  No-op when the
/// job has no activity array (never for Runtime-created jobs).
class BlockedScope {
 public:
  BlockedScope(JobState& job, int world_rank, const char* op, int peer) {
    if (!job.activity) return;
    act_ = &job.activity[static_cast<std::size_t>(world_rank)];
    const FaultContext ctx = fault_context();
    act_->op.store(op, std::memory_order_relaxed);
    act_->peer.store(peer, std::memory_order_relaxed);
    act_->ctx_step.store(ctx.step, std::memory_order_relaxed);
    act_->ctx_phase.store(static_cast<std::uint8_t>(ctx.phase), std::memory_order_relaxed);
    act_->blocked_since.store(steady_seconds(), std::memory_order_relaxed);
  }
  ~BlockedScope() {
    if (act_) act_->blocked_since.store(0.0, std::memory_order_relaxed);
  }
  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

  /// Restart the quiescence clock: the wait loops call this whenever they
  /// observe progress (a message arrived, a request completed), so a rank
  /// parked in wait_any/wait_all with traffic still flowing toward it is
  /// never mistaken for hung.
  void refresh() {
    if (act_) act_->blocked_since.store(steady_seconds(), std::memory_order_relaxed);
  }

 private:
  RankActivity* act_ = nullptr;
};

struct Message {
  int src;
  int tag;
  Buf payload;  ///< owning, type-erased: fast-path sends hand their buffer over
  // Causal-trace stamp applied at send time (flight recorder flow events
  // and latency histograms); flow == 0 means unstamped (telemetry OFF).
  int src_world = -1;
  std::uint64_t flow = 0;
  std::int64_t sent_ns = 0;
};

/// One posted nonblocking operation.  Receive requests are parked in the
/// owning mailbox's `pending` queue until a matching message arrives;
/// sends complete at post time (parx sends are buffered).  `done` is the
/// only field read outside the mailbox lock (payload hand-off is
/// release/acquire through it); everything else is guarded by the
/// mailbox mu until completion.
struct RequestState {
  enum class Kind : std::uint8_t { kSend, kRecv };
  Kind kind = Kind::kRecv;
  int peer = -1;        ///< local rank of the counterpart
  int peer_world = -1;  ///< world rank of the counterpart (watchdog label)
  int tag = 0;
  bool claimed = false;    ///< already returned by a wait_any (mailbox mu)
  bool cancelled = false;  ///< timed-out recv; must not eat a late message
  std::atomic<bool> done{false};
  Buf payload;  ///< completed receive payload (ownership travels, not bytes)
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> msgs;
  /// Posted receives in posting order; per (src, tag) both this queue and
  /// `msgs` are FIFO, which preserves parx's in-order delivery guarantee.
  std::deque<std::shared_ptr<RequestState>> pending;
  /// Monotonic arrival counter (every push bumps it): wait loops compare
  /// it across sleeps to detect progress and refresh the watchdog stamp.
  std::uint64_t delivered = 0;
};

/// Sense-counting barrier reusable across generations.
class Barrier {
 public:
  explicit Barrier(int n) : n_(n) {}

  /// `check` is invoked while polling and must throw to abort the wait
  /// (JobPoisoned / RemoteFault / TimeoutError); a throw may leave the
  /// arrival count stale, which reset() clears during fault recovery.
  template <class Check>
  void wait(Check&& check) {
    std::unique_lock lock(mu_);
    const std::uint64_t gen = gen_;
    if (++count_ == n_) {
      count_ = 0;
      ++gen_;
      cv_.notify_all();
      return;
    }
    while (gen_ == gen) {
      check();
      cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }

  /// Drop stale arrivals after an aborted wait.  Only call while no rank
  /// can be inside wait() (the fault_recover rendezvous guarantees that).
  void reset() {
    std::lock_guard lock(mu_);
    count_ = 0;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int n_;
  int count_ = 0;
  std::uint64_t gen_ = 0;
};

struct Group {
  explicit Group(int n, std::shared_ptr<JobState> job_, std::vector<int> world_ranks_)
      : size(n),
        job(std::move(job_)),
        world_ranks(std::move(world_ranks_)),
        boxes(static_cast<std::size_t>(n)),
        barrier(n),
        size_matrix(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0) {
    boxes_storage.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) boxes[static_cast<std::size_t>(i)] = &boxes_storage[static_cast<std::size_t>(i)];
    coll_scratch.resize(static_cast<std::size_t>(n));
    coll_seq = std::make_unique<std::atomic<std::uint32_t>[]>(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) coll_seq[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    if (job) {
      id = job->next_group_id.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lock(job->groups_mu);
      job->groups.push_back(this);
    }
  }

  ~Group() {
    if (job) {
      std::lock_guard lock(job->groups_mu);
      auto& gs = job->groups;
      gs.erase(std::remove(gs.begin(), gs.end(), this), gs.end());
    }
  }

  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  /// Restore this group's communication state to as-new after an aborted
  /// operation: drain mailboxes, reset barriers, clear split staging.
  /// Groups whose last reference lives in split staging are moved into
  /// `deferred` instead of being destroyed here, so the caller can finish
  /// iterating the job's group registry before any unregistration runs.
  void reset_comm_state(std::vector<std::shared_ptr<Group>>& deferred) {
    for (auto& box : boxes_storage) {
      std::lock_guard lock(box.mu);
      box.msgs.clear();
      // Orphan in-flight requests: the Request handles on unwound rank
      // stacks are gone; dropping the queue drops the last references.
      box.pending.clear();
      box.delivered = 0;
    }
    // Collective tag sequencing restarts from zero on every rank -- the
    // recovery rendezvous guarantees all ranks reset together, so the
    // SPMD agreement on per-collective tags survives recovery.
    for (int i = 0; i < size; ++i) coll_seq[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
    barrier.reset();
    size_barrier.reset();
    split_barrier.reset();
    std::fill(size_matrix.begin(), size_matrix.end(), 0);
    {
      std::lock_guard lock(split_mu);
      split_entries.clear();
      for (auto& r : split_results) {
        if (r.first) deferred.push_back(std::move(r.first));
        r = {nullptr, -1};
      }
    }
  }

  int size;
  std::uint64_t id = 0;  ///< job-unique; routes transport frames to this group
  std::shared_ptr<JobState> job;
  std::vector<int> world_ranks;  ///< local rank -> world rank

  std::deque<Mailbox> boxes_storage;  // deque: Mailbox is immovable
  std::vector<Mailbox*> boxes;
  Barrier barrier;

  /// Per-rank collective working buffers (the reduce-tree accumulator),
  /// grown on demand and reused across calls so steady-state collectives
  /// allocate nothing.  Each rank only ever touches its own slot, so no
  /// locking; never shrunk, so a recovery reset can leave them alone.
  std::vector<std::vector<std::byte>> coll_scratch;

  /// Per-rank collective sequence counters: every collective entry on
  /// rank r bumps coll_seq[r] exactly once, and the value selects the
  /// operation's message tag.  SPMD call order keeps the counters in
  /// agreement across ranks, so two collectives in flight on the same
  /// communicator can never cross payloads.
  std::unique_ptr<std::atomic<std::uint32_t>[]> coll_seq;

  // Staging area for exchange_sizes: row r = sizes rank r sends to each peer.
  std::vector<std::size_t> size_matrix;
  Barrier size_barrier{size};

  // Staging for split(); guarded by split_mu.
  std::mutex split_mu;
  struct SplitEntry {
    int color, key, old_rank;
  };
  std::vector<SplitEntry> split_entries;
  std::vector<std::pair<std::shared_ptr<Group>, int>> split_results;  // by old rank
  Barrier split_barrier{size};
};

}  // namespace greem::parx::detail
