#pragma once
// Internal shared state behind a Comm.  Not part of the public API.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "parx/traffic.hpp"

namespace greem::parx::detail {

/// Raised in blocked ranks when a sibling rank failed, so a single thrown
/// exception cannot deadlock the whole job.
struct JobPoisoned : std::runtime_error {
  JobPoisoned() : std::runtime_error("parx: a sibling rank failed") {}
};

/// State shared by every communicator of one Runtime invocation.
struct JobState {
  std::atomic<bool> poisoned{false};
  std::shared_ptr<TrafficLedger> ledger;
};

struct Message {
  int src;
  int tag;
  std::vector<std::byte> payload;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> msgs;
};

/// Sense-counting barrier reusable across generations.
class Barrier {
 public:
  explicit Barrier(int n) : n_(n) {}

  template <class PoisonCheck>
  void wait(PoisonCheck&& poisoned) {
    std::unique_lock lock(mu_);
    const std::uint64_t gen = gen_;
    if (++count_ == n_) {
      count_ = 0;
      ++gen_;
      cv_.notify_all();
      return;
    }
    while (gen_ == gen) {
      if (poisoned()) throw JobPoisoned{};
      cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int n_;
  int count_ = 0;
  std::uint64_t gen_ = 0;
};

struct Group {
  explicit Group(int n, std::shared_ptr<JobState> job_, std::vector<int> world_ranks_)
      : size(n),
        job(std::move(job_)),
        world_ranks(std::move(world_ranks_)),
        boxes(static_cast<std::size_t>(n)),
        barrier(n),
        size_matrix(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0) {
    boxes_storage.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) boxes[static_cast<std::size_t>(i)] = &boxes_storage[static_cast<std::size_t>(i)];
  }

  int size;
  std::shared_ptr<JobState> job;
  std::vector<int> world_ranks;  ///< local rank -> world rank

  std::deque<Mailbox> boxes_storage;  // deque: Mailbox is immovable
  std::vector<Mailbox*> boxes;
  Barrier barrier;

  // Staging area for exchange_sizes: row r = sizes rank r sends to each peer.
  std::vector<std::size_t> size_matrix;
  Barrier size_barrier{size};

  // Staging for split(); guarded by split_mu.
  std::mutex split_mu;
  struct SplitEntry {
    int color, key, old_rank;
  };
  std::vector<SplitEntry> split_entries;
  std::vector<std::pair<std::shared_ptr<Group>, int>> split_results;  // by old rank
  Barrier split_barrier{size};
};

}  // namespace greem::parx::detail
