#include "parx/fault.hpp"

#include <atomic>
#include <cstdlib>

#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace greem::parx {
namespace {

thread_local FaultContext t_ctx{};

std::string describe(const FaultSpec& s) {
  std::string out = "parx: injected ";
  out += to_string(s.kind);
  out += " on rank ";
  out += s.rank == kEveryRank ? "*" : std::to_string(s.rank);
  out += " at step ";
  out += s.step == kEveryStep ? "*" : std::to_string(s.step);
  out += " phase ";
  out += to_string(s.phase);
  return out;
}

bool kind_matches_op(FaultKind kind, FaultOp op) {
  switch (kind) {
    case FaultKind::kRankAbort: return true;
    case FaultKind::kHang: return true;
    case FaultKind::kSendFailure: return op == FaultOp::kSend;
    case FaultKind::kCollectiveFailure: return op == FaultOp::kCollective;
    default: return false;  // link kinds never fire at an injection point
  }
}

}  // namespace

FaultInjected::FaultInjected(const FaultSpec& s) : CommError(describe(s)), spec(s) {}

void set_fault_context(std::uint64_t step, FaultPhase phase) { t_ctx = {step, phase}; }

FaultContext fault_context() { return t_ctx; }

const char* to_string(FaultPhase p) {
  switch (p) {
    case FaultPhase::kAny: return "any";
    case FaultPhase::kDD: return "dd";
    case FaultPhase::kPM: return "pm";
    case FaultPhase::kPP: return "pp";
    case FaultPhase::kCkpt: return "ckpt";
  }
  return "?";
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kRankAbort: return "rank-abort";
    case FaultKind::kSendFailure: return "send-failure";
    case FaultKind::kCollectiveFailure: return "collective-failure";
    case FaultKind::kHang: return "hang";
    case FaultKind::kLinkDrop: return "drop";
    case FaultKind::kLinkCorrupt: return "corrupt";
    case FaultKind::kLinkDuplicate: return "dup";
    case FaultKind::kLinkReorder: return "reorder";
    case FaultKind::kLinkBlackhole: return "lose";
  }
  return "?";
}

bool spec_matches_context(const FaultSpec& s, int world_rank, const FaultContext& ctx) {
  if (ctx.step == kNoFaultStep) return false;
  if (s.rank != kEveryRank && s.rank != world_rank) return false;
  if (s.step != kEveryStep && s.step != ctx.step) return false;
  if (s.phase != FaultPhase::kAny && s.phase != ctx.phase) return false;
  return true;
}

std::vector<FaultSpec> FaultPlan::failstop_specs() const {
  std::vector<FaultSpec> out;
  for (const auto& s : specs_)
    if (!is_link_fault(s.kind)) out.push_back(s);
  return out;
}

std::vector<FaultSpec> FaultPlan::link_specs() const {
  std::vector<FaultSpec> out;
  for (const auto& s : specs_)
    if (is_link_fault(s.kind)) out.push_back(s);
  return out;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int n_faults, std::uint64_t max_step,
                            int nranks) {
  FaultPlan plan;
  Rng rng(seed, /*stream=*/0xFA017);
  constexpr FaultPhase kPhases[] = {FaultPhase::kDD, FaultPhase::kPM, FaultPhase::kPP};
  for (int i = 0; i < n_faults; ++i) {
    FaultSpec s;
    s.step = 1 + rng.uniform_index(max_step > 0 ? max_step : 1);
    s.phase = kPhases[rng.uniform_index(3)];
    s.kind = FaultKind::kRankAbort;
    s.rank = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(nranks)));
    plan.at(s);
  }
  return plan;
}

std::optional<FaultSpec> parse_fault_at(std::string_view s) {
  auto next_field = [&]() -> std::string_view {
    const std::size_t colon = s.find(':');
    std::string_view f = s.substr(0, colon);
    s = colon == std::string_view::npos ? std::string_view{} : s.substr(colon + 1);
    return f;
  };
  auto parse_u64 = [](std::string_view f, std::uint64_t& out) {
    if (f.empty()) return false;
    out = 0;
    for (char c : f) {
      if (c < '0' || c > '9') return false;
      out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  };

  FaultSpec spec;
  const std::string_view step = next_field();
  if (step == "*") {
    spec.step = kEveryStep;
  } else {
    std::uint64_t v = 0;
    if (!parse_u64(step, v)) return std::nullopt;
    spec.step = v;
  }

  const std::string_view phase = next_field();
  if (phase == "any") spec.phase = FaultPhase::kAny;
  else if (phase == "dd") spec.phase = FaultPhase::kDD;
  else if (phase == "pm") spec.phase = FaultPhase::kPM;
  else if (phase == "pp") spec.phase = FaultPhase::kPP;
  else if (phase == "ckpt") spec.phase = FaultPhase::kCkpt;
  else return std::nullopt;

  if (!s.empty()) {
    const std::string_view rank = next_field();
    if (rank == "*") {
      spec.rank = kEveryRank;
    } else {
      std::uint64_t v = 0;
      if (!parse_u64(rank, v)) return std::nullopt;
      spec.rank = static_cast<int>(v);
    }
  }
  if (!s.empty()) {
    std::string_view kind = next_field();
    // Optional "xN" budget suffix, then optional "@RATE" probability.
    std::optional<int> times;
    if (const std::size_t x = kind.rfind('x'); x != std::string_view::npos &&
                                               x > 0 && kind.find('@') != std::string_view::npos &&
                                               x > kind.find('@')) {
      std::uint64_t n = 0;
      if (!parse_u64(kind.substr(x + 1), n) || n == 0) return std::nullopt;
      times = static_cast<int>(n);
      kind = kind.substr(0, x);
    }
    std::optional<double> rate;
    if (const std::size_t at = kind.find('@'); at != std::string_view::npos) {
      const std::string_view r = kind.substr(at + 1);
      if (r.empty()) return std::nullopt;
      std::string buf(r);
      char* end = nullptr;
      const double v = std::strtod(buf.c_str(), &end);
      if (end != buf.c_str() + buf.size() || v < 0.0 || v > 1.0) return std::nullopt;
      rate = v;
      kind = kind.substr(0, at);
    }

    if (kind == "abort") spec.kind = FaultKind::kRankAbort;
    else if (kind == "send") spec.kind = FaultKind::kSendFailure;
    else if (kind == "collective") spec.kind = FaultKind::kCollectiveFailure;
    else if (kind == "hang") spec.kind = FaultKind::kHang;
    else if (kind == "drop") spec.kind = FaultKind::kLinkDrop;
    else if (kind == "corrupt") spec.kind = FaultKind::kLinkCorrupt;
    else if (kind == "dup") spec.kind = FaultKind::kLinkDuplicate;
    else if (kind == "reorder") spec.kind = FaultKind::kLinkReorder;
    else if (kind == "lose") spec.kind = FaultKind::kLinkBlackhole;
    else return std::nullopt;

    if (is_link_fault(spec.kind)) {
      spec.rate = rate.value_or(1.0);
      spec.times = times.value_or(spec.kind == FaultKind::kLinkBlackhole ? 1 : kUnlimited);
    } else {
      // Rates/budgets on fail-stop kinds are a grammar error.
      if (rate || times) return std::nullopt;
    }
  }
  if (!s.empty()) return std::nullopt;
  return spec;
}

struct FaultInjector::Armed {
  FaultSpec spec;
  std::atomic<int> remaining{0};
};

FaultInjector::FaultInjector(std::vector<FaultSpec> specs) : n_(specs.size()) {
  armed_ = std::make_unique<Armed[]>(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    armed_[i].spec = specs[i];
    armed_[i].remaining.store(specs[i].times, std::memory_order_relaxed);
  }
}

FaultInjector::~FaultInjector() = default;

std::optional<FaultSpec> FaultInjector::should_fire(int world_rank, FaultOp op,
                                                    const FaultContext& ctx) {
  for (std::size_t i = 0; i < n_; ++i) {
    Armed& a = armed_[i];
    const FaultSpec& s = a.spec;
    if (!spec_matches_context(s, world_rank, ctx)) continue;
    if (!kind_matches_op(s.kind, op)) continue;
    if (s.times != kUnlimited) {
      if (a.remaining.fetch_sub(1, std::memory_order_relaxed) <= 0) {
        a.remaining.fetch_add(1, std::memory_order_relaxed);  // spent; undo
        continue;
      }
    }
    telemetry::Registry::global().counter("faults/injected").add();
    return s;
  }
  return std::nullopt;
}

}  // namespace greem::parx
