#include "parx/fault.hpp"

#include <atomic>

#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace greem::parx {
namespace {

thread_local FaultContext t_ctx{};

std::string describe(const FaultSpec& s) {
  std::string out = "parx: injected ";
  out += to_string(s.kind);
  out += " on rank " + std::to_string(s.rank);
  out += " at step " + std::to_string(s.step);
  out += " phase ";
  out += to_string(s.phase);
  return out;
}

bool kind_matches_op(FaultKind kind, FaultOp op) {
  switch (kind) {
    case FaultKind::kRankAbort: return true;
    case FaultKind::kSendFailure: return op == FaultOp::kSend;
    case FaultKind::kCollectiveFailure: return op == FaultOp::kCollective;
  }
  return false;
}

}  // namespace

FaultInjected::FaultInjected(const FaultSpec& s) : CommError(describe(s)), spec(s) {}

void set_fault_context(std::uint64_t step, FaultPhase phase) { t_ctx = {step, phase}; }

FaultContext fault_context() { return t_ctx; }

const char* to_string(FaultPhase p) {
  switch (p) {
    case FaultPhase::kAny: return "any";
    case FaultPhase::kDD: return "dd";
    case FaultPhase::kPM: return "pm";
    case FaultPhase::kPP: return "pp";
    case FaultPhase::kCkpt: return "ckpt";
  }
  return "?";
}

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kRankAbort: return "rank-abort";
    case FaultKind::kSendFailure: return "send-failure";
    case FaultKind::kCollectiveFailure: return "collective-failure";
  }
  return "?";
}

FaultPlan FaultPlan::random(std::uint64_t seed, int n_faults, std::uint64_t max_step,
                            int nranks) {
  FaultPlan plan;
  Rng rng(seed, /*stream=*/0xFA017);
  constexpr FaultPhase kPhases[] = {FaultPhase::kDD, FaultPhase::kPM, FaultPhase::kPP};
  for (int i = 0; i < n_faults; ++i) {
    FaultSpec s;
    s.step = 1 + rng.uniform_index(max_step > 0 ? max_step : 1);
    s.phase = kPhases[rng.uniform_index(3)];
    s.kind = FaultKind::kRankAbort;
    s.rank = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(nranks)));
    plan.at(s);
  }
  return plan;
}

std::optional<FaultSpec> parse_fault_at(std::string_view s) {
  auto next_field = [&]() -> std::string_view {
    const std::size_t colon = s.find(':');
    std::string_view f = s.substr(0, colon);
    s = colon == std::string_view::npos ? std::string_view{} : s.substr(colon + 1);
    return f;
  };
  auto parse_u64 = [](std::string_view f, std::uint64_t& out) {
    if (f.empty()) return false;
    out = 0;
    for (char c : f) {
      if (c < '0' || c > '9') return false;
      out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  };

  FaultSpec spec;
  std::uint64_t step = 0;
  if (!parse_u64(next_field(), step)) return std::nullopt;
  spec.step = step;

  const std::string_view phase = next_field();
  if (phase == "any") spec.phase = FaultPhase::kAny;
  else if (phase == "dd") spec.phase = FaultPhase::kDD;
  else if (phase == "pm") spec.phase = FaultPhase::kPM;
  else if (phase == "pp") spec.phase = FaultPhase::kPP;
  else if (phase == "ckpt") spec.phase = FaultPhase::kCkpt;
  else return std::nullopt;

  if (!s.empty()) {
    std::uint64_t rank = 0;
    if (!parse_u64(next_field(), rank)) return std::nullopt;
    spec.rank = static_cast<int>(rank);
  }
  if (!s.empty()) {
    const std::string_view kind = next_field();
    if (kind == "abort") spec.kind = FaultKind::kRankAbort;
    else if (kind == "send") spec.kind = FaultKind::kSendFailure;
    else if (kind == "collective") spec.kind = FaultKind::kCollectiveFailure;
    else return std::nullopt;
  }
  if (!s.empty()) return std::nullopt;
  return spec;
}

struct FaultInjector::Armed {
  FaultSpec spec;
  std::atomic<int> remaining{0};
};

FaultInjector::FaultInjector(FaultPlan plan) : n_(plan.specs().size()) {
  armed_ = std::make_unique<Armed[]>(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    armed_[i].spec = plan.specs()[i];
    armed_[i].remaining.store(plan.specs()[i].times, std::memory_order_relaxed);
  }
}

FaultInjector::~FaultInjector() = default;

std::optional<FaultSpec> FaultInjector::should_fire(int world_rank, FaultOp op,
                                                    const FaultContext& ctx) {
  if (ctx.step == kNoFaultStep) return std::nullopt;
  for (std::size_t i = 0; i < n_; ++i) {
    Armed& a = armed_[i];
    const FaultSpec& s = a.spec;
    if (s.rank != world_rank || s.step != ctx.step) continue;
    if (s.phase != FaultPhase::kAny && s.phase != ctx.phase) continue;
    if (!kind_matches_op(s.kind, op)) continue;
    if (a.remaining.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      a.remaining.fetch_add(1, std::memory_order_relaxed);  // spent; undo
      continue;
    }
    telemetry::Registry::global().counter("faults/injected").add();
    return s;
  }
  return std::nullopt;
}

}  // namespace greem::parx
