#pragma once
// Traffic ledger and congestion cost model.
//
// The paper's relay mesh method is a communication-structure result: with a
// global MPI_Alltoallv, each FFT process receives slabs from ~p^(2/3)
// senders (~4000 on the full K computer) and the network congests at those
// endpoints.  Running on one host we cannot observe real network
// congestion, so every point-to-point payload is recorded here and a simple
// endpoint-serialization model converts the record into a modeled
// communication time:
//
//   cost(endpoint) = sum over its messages of (latency + bytes / bandwidth)
//   model_time     = max over all endpoints of max(incoming, outgoing cost)
//
// This reproduces the phenomenon the paper measures: the direct conversion
// concentrates O(p^(2/3)) incoming messages on each FFT process, while the
// relay method splits the conversion into two local steps whose endpoint
// loads are ~group-size and ~#groups respectively.
//
// Per-phase accounting: the ledger's counters are *monotonic*.  To
// attribute traffic to a phase, take an Epoch (begin_phase) and read its
// delta() -- a snapshot-diff -- instead of calling the legacy reset()
// between phases.  Epochs from consecutive boundaries telescope: their
// deltas always sum exactly to the ledger totals over the same interval,
// and no message is ever lost at a boundary.
//
// Quiescence contract (what snapshot-diff does NOT fix): a message is
// counted when its *send* executes, so if other ranks are still inside a
// phase when this rank snapshots, their in-flight sends land in the next
// epoch's delta.  Exact per-phase attribution therefore still requires
// phase boundaries to be globally quiescent (e.g. after a barrier);
// without one, only the boundary attribution blurs -- totals stay exact.
//
// Nonblocking draining does not change any count: alltoallv now posts all
// transfers up front and drains them in arrival order (docs/overlap.md),
// but each message is still recorded exactly once, at post time, with the
// same (src, dst, bytes) it always had -- the ledger cannot tell the
// arrival-order drain from the old fixed-order receive loop.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace greem::parx {

/// Per-endpoint serialization parameters (defaults roughly model a
/// Tofu-class interconnect link: 5 us latency, 5 GB/s per link).
struct CongestionModel {
  double latency_s = 5e-6;
  double bandwidth_Bps = 5e9;
};

struct TrafficTotals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t max_in_messages = 0;   ///< busiest receiver, message count
  std::uint64_t max_in_bytes = 0;      ///< busiest receiver, byte count
  std::uint64_t max_out_messages = 0;  ///< busiest sender, message count
  std::uint64_t max_out_bytes = 0;     ///< busiest sender, byte count
  // Transport retransmissions, accounted separately from logical traffic
  // so algorithmic communication-volume comparisons stay meaningful under
  // an injected lossy link.
  std::uint64_t retransmit_messages = 0;
  std::uint64_t retransmit_bytes = 0;
};

/// Per-endpoint traffic counts captured at (or between) points in time.
/// Obtained from TrafficLedger::counts() or Epoch::delta(); supports the
/// same aggregations as the live ledger, plus subtraction.
struct TrafficCounts {
  std::vector<std::uint64_t> in_msgs, in_bytes, out_msgs, out_bytes;

  std::size_t world_size() const { return in_msgs.size(); }
  TrafficTotals totals() const;
  double model_time(const CongestionModel& m = {}) const;

  /// Element-wise accumulate (a default-constructed lhs adopts `o`), so
  /// per-phase deltas from several cycles can be summed over a step.
  TrafficCounts& operator+=(const TrafficCounts& o);
};

/// Element-wise `later - earlier`; both must come from the same ledger.
TrafficCounts operator-(const TrafficCounts& later, const TrafficCounts& earlier);

/// Thread-safe accumulator of point-to-point traffic, indexed by world rank.
class TrafficLedger {
 public:
  explicit TrafficLedger(std::size_t world_size);

  /// Record one payload message src -> dst of `bytes` bytes.
  void record(int src_world, int dst_world, std::size_t bytes);

  /// Record one transport retransmission src -> dst.  Kept out of the
  /// per-endpoint logical counters (and out of counts()/model_time());
  /// shows up only in TrafficTotals::retransmit_*.
  void record_retransmit(int src_world, int dst_world, std::size_t bytes);

  /// Legacy: clear all counters.  Must not race with record(); call from a
  /// quiescent point.  Prefer begin_phase()/Epoch, which needs no global
  /// mutation at all.  Note reset() invalidates outstanding Epochs (their
  /// deltas would go negative); do not mix the two styles in one phase.
  void reset();

  TrafficTotals totals() const;

  /// Atomic snapshot of the monotonic per-endpoint counters.
  TrafficCounts counts() const;

  /// A named epoch: captures counts() at creation; delta() is the traffic
  /// recorded since.  Purely observational -- taking an epoch never
  /// mutates the ledger, so any number of concurrent observers is safe.
  /// See the header comment for the boundary-quiescence contract.
  class Epoch {
   public:
    const std::string& name() const { return name_; }
    TrafficCounts delta() const { return ledger_->counts() - start_; }
    TrafficTotals totals() const { return delta().totals(); }
    double model_time(const CongestionModel& m = {}) const { return delta().model_time(m); }

   private:
    friend class TrafficLedger;
    Epoch(const TrafficLedger* ledger, std::string name)
        : ledger_(ledger), name_(std::move(name)), start_(ledger->counts()) {}

    const TrafficLedger* ledger_;
    std::string name_;
    TrafficCounts start_;
  };

  /// Open a named epoch starting now.
  Epoch begin_phase(std::string name) const { return Epoch(this, std::move(name)); }

  /// Modeled wall-clock time of the recorded communication phase under the
  /// endpoint-serialization model described above.
  double model_time(const CongestionModel& m = {}) const;

  std::size_t world_size() const { return in_msgs_.size(); }

 private:
  mutable std::mutex mu_;
  std::vector<std::uint64_t> in_msgs_, in_bytes_, out_msgs_, out_bytes_;
  std::uint64_t retransmit_msgs_ = 0, retransmit_bytes_ = 0;
};

}  // namespace greem::parx
