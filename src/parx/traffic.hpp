#pragma once
// Traffic ledger and congestion cost model.
//
// The paper's relay mesh method is a communication-structure result: with a
// global MPI_Alltoallv, each FFT process receives slabs from ~p^(2/3)
// senders (~4000 on the full K computer) and the network congests at those
// endpoints.  Running on one host we cannot observe real network
// congestion, so every point-to-point payload is recorded here and a simple
// endpoint-serialization model converts the record into a modeled
// communication time:
//
//   cost(endpoint) = sum over its messages of (latency + bytes / bandwidth)
//   model_time     = max over all endpoints of max(incoming, outgoing cost)
//
// This reproduces the phenomenon the paper measures: the direct conversion
// concentrates O(p^(2/3)) incoming messages on each FFT process, while the
// relay method splits the conversion into two local steps whose endpoint
// loads are ~group-size and ~#groups respectively.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace greem::parx {

/// Per-endpoint serialization parameters (defaults roughly model a
/// Tofu-class interconnect link: 5 us latency, 5 GB/s per link).
struct CongestionModel {
  double latency_s = 5e-6;
  double bandwidth_Bps = 5e9;
};

struct TrafficTotals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t max_in_messages = 0;   ///< busiest receiver, message count
  std::uint64_t max_in_bytes = 0;      ///< busiest receiver, byte count
  std::uint64_t max_out_messages = 0;  ///< busiest sender, message count
  std::uint64_t max_out_bytes = 0;     ///< busiest sender, byte count
};

/// Thread-safe accumulator of point-to-point traffic, indexed by world rank.
class TrafficLedger {
 public:
  explicit TrafficLedger(std::size_t world_size);

  /// Record one payload message src -> dst of `bytes` bytes.
  void record(int src_world, int dst_world, std::size_t bytes);

  /// Clear all counters (e.g. between benchmark phases).  Must not race
  /// with record(); call from a quiescent point (outside rank code or
  /// after a barrier).
  void reset();

  TrafficTotals totals() const;

  /// Modeled wall-clock time of the recorded communication phase under the
  /// endpoint-serialization model described above.
  double model_time(const CongestionModel& m = {}) const;

  std::size_t world_size() const { return in_msgs_.size(); }

 private:
  mutable std::mutex mu_;
  std::vector<std::uint64_t> in_msgs_, in_bytes_, out_msgs_, out_bytes_;
};

}  // namespace greem::parx
