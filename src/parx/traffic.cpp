#include "parx/traffic.hpp"

#include <algorithm>
#include <cassert>

namespace greem::parx {

namespace {

TrafficTotals totals_of(const std::vector<std::uint64_t>& in_msgs,
                        const std::vector<std::uint64_t>& in_bytes,
                        const std::vector<std::uint64_t>& out_msgs,
                        const std::vector<std::uint64_t>& out_bytes) {
  TrafficTotals t;
  for (std::size_t r = 0; r < in_msgs.size(); ++r) {
    t.messages += out_msgs[r];
    t.bytes += out_bytes[r];
    t.max_in_messages = std::max(t.max_in_messages, in_msgs[r]);
    t.max_in_bytes = std::max(t.max_in_bytes, in_bytes[r]);
    t.max_out_messages = std::max(t.max_out_messages, out_msgs[r]);
    t.max_out_bytes = std::max(t.max_out_bytes, out_bytes[r]);
  }
  return t;
}

double model_time_of(const std::vector<std::uint64_t>& in_msgs,
                     const std::vector<std::uint64_t>& in_bytes,
                     const std::vector<std::uint64_t>& out_msgs,
                     const std::vector<std::uint64_t>& out_bytes,
                     const CongestionModel& m) {
  double worst = 0;
  for (std::size_t r = 0; r < in_msgs.size(); ++r) {
    double in_cost = static_cast<double>(in_msgs[r]) * m.latency_s +
                     static_cast<double>(in_bytes[r]) / m.bandwidth_Bps;
    double out_cost = static_cast<double>(out_msgs[r]) * m.latency_s +
                      static_cast<double>(out_bytes[r]) / m.bandwidth_Bps;
    worst = std::max(worst, std::max(in_cost, out_cost));
  }
  return worst;
}

}  // namespace

TrafficTotals TrafficCounts::totals() const {
  return totals_of(in_msgs, in_bytes, out_msgs, out_bytes);
}

double TrafficCounts::model_time(const CongestionModel& m) const {
  return model_time_of(in_msgs, in_bytes, out_msgs, out_bytes, m);
}

TrafficCounts& TrafficCounts::operator+=(const TrafficCounts& o) {
  if (in_msgs.empty()) {
    *this = o;
    return *this;
  }
  assert(world_size() == o.world_size());
  auto acc = [](std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  };
  acc(in_msgs, o.in_msgs);
  acc(in_bytes, o.in_bytes);
  acc(out_msgs, o.out_msgs);
  acc(out_bytes, o.out_bytes);
  return *this;
}

TrafficCounts operator-(const TrafficCounts& later, const TrafficCounts& earlier) {
  assert(later.world_size() == earlier.world_size());
  auto sub = [](const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
    std::vector<std::uint64_t> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
    return out;
  };
  TrafficCounts d;
  d.in_msgs = sub(later.in_msgs, earlier.in_msgs);
  d.in_bytes = sub(later.in_bytes, earlier.in_bytes);
  d.out_msgs = sub(later.out_msgs, earlier.out_msgs);
  d.out_bytes = sub(later.out_bytes, earlier.out_bytes);
  return d;
}

TrafficLedger::TrafficLedger(std::size_t world_size)
    : in_msgs_(world_size, 0),
      in_bytes_(world_size, 0),
      out_msgs_(world_size, 0),
      out_bytes_(world_size, 0) {}

void TrafficLedger::record(int src_world, int dst_world, std::size_t bytes) {
  std::lock_guard lock(mu_);
  out_msgs_[static_cast<std::size_t>(src_world)] += 1;
  out_bytes_[static_cast<std::size_t>(src_world)] += bytes;
  in_msgs_[static_cast<std::size_t>(dst_world)] += 1;
  in_bytes_[static_cast<std::size_t>(dst_world)] += bytes;
}

void TrafficLedger::record_retransmit(int src_world, int dst_world, std::size_t bytes) {
  (void)src_world;
  (void)dst_world;
  std::lock_guard lock(mu_);
  retransmit_msgs_ += 1;
  retransmit_bytes_ += bytes;
}

void TrafficLedger::reset() {
  std::lock_guard lock(mu_);
  std::fill(in_msgs_.begin(), in_msgs_.end(), 0);
  std::fill(in_bytes_.begin(), in_bytes_.end(), 0);
  std::fill(out_msgs_.begin(), out_msgs_.end(), 0);
  std::fill(out_bytes_.begin(), out_bytes_.end(), 0);
  retransmit_msgs_ = 0;
  retransmit_bytes_ = 0;
}

TrafficTotals TrafficLedger::totals() const {
  std::lock_guard lock(mu_);
  TrafficTotals t = totals_of(in_msgs_, in_bytes_, out_msgs_, out_bytes_);
  t.retransmit_messages = retransmit_msgs_;
  t.retransmit_bytes = retransmit_bytes_;
  return t;
}

TrafficCounts TrafficLedger::counts() const {
  std::lock_guard lock(mu_);
  TrafficCounts c;
  c.in_msgs = in_msgs_;
  c.in_bytes = in_bytes_;
  c.out_msgs = out_msgs_;
  c.out_bytes = out_bytes_;
  return c;
}

double TrafficLedger::model_time(const CongestionModel& m) const {
  std::lock_guard lock(mu_);
  return model_time_of(in_msgs_, in_bytes_, out_msgs_, out_bytes_, m);
}

}  // namespace greem::parx
