#include "parx/traffic.hpp"

#include <algorithm>

namespace greem::parx {

TrafficLedger::TrafficLedger(std::size_t world_size)
    : in_msgs_(world_size, 0),
      in_bytes_(world_size, 0),
      out_msgs_(world_size, 0),
      out_bytes_(world_size, 0) {}

void TrafficLedger::record(int src_world, int dst_world, std::size_t bytes) {
  std::lock_guard lock(mu_);
  out_msgs_[static_cast<std::size_t>(src_world)] += 1;
  out_bytes_[static_cast<std::size_t>(src_world)] += bytes;
  in_msgs_[static_cast<std::size_t>(dst_world)] += 1;
  in_bytes_[static_cast<std::size_t>(dst_world)] += bytes;
}

void TrafficLedger::reset() {
  std::lock_guard lock(mu_);
  std::fill(in_msgs_.begin(), in_msgs_.end(), 0);
  std::fill(in_bytes_.begin(), in_bytes_.end(), 0);
  std::fill(out_msgs_.begin(), out_msgs_.end(), 0);
  std::fill(out_bytes_.begin(), out_bytes_.end(), 0);
}

TrafficTotals TrafficLedger::totals() const {
  std::lock_guard lock(mu_);
  TrafficTotals t;
  for (std::size_t r = 0; r < in_msgs_.size(); ++r) {
    t.messages += out_msgs_[r];
    t.bytes += out_bytes_[r];
    t.max_in_messages = std::max(t.max_in_messages, in_msgs_[r]);
    t.max_in_bytes = std::max(t.max_in_bytes, in_bytes_[r]);
    t.max_out_messages = std::max(t.max_out_messages, out_msgs_[r]);
    t.max_out_bytes = std::max(t.max_out_bytes, out_bytes_[r]);
  }
  return t;
}

double TrafficLedger::model_time(const CongestionModel& m) const {
  std::lock_guard lock(mu_);
  double worst = 0;
  for (std::size_t r = 0; r < in_msgs_.size(); ++r) {
    double in_cost = static_cast<double>(in_msgs_[r]) * m.latency_s +
                     static_cast<double>(in_bytes_[r]) / m.bandwidth_Bps;
    double out_cost = static_cast<double>(out_msgs_[r]) * m.latency_s +
                      static_cast<double>(out_bytes_[r]) / m.bandwidth_Bps;
    worst = std::max(worst, std::max(in_cost, out_cost));
  }
  return worst;
}

}  // namespace greem::parx
