#pragma once
// Deterministic fault injection for parx, the testing ground for the
// checkpoint/rollback-recovery loop: a production trillion-body run loses
// nodes mid-step, so the in-process MPI stand-in can be told to lose them
// too, at an exact (step, phase, rank), reproducibly.
//
// Model:
//  * A FaultPlan is a list of FaultSpecs (or a seeded random draw of them).
//    Install it with Runtime::set_fault_plan before run().
//  * Each rank thread advances its own (step, phase) fault context
//    (set_fault_context); the driver does this at phase boundaries.
//  * Every Comm operation entry is an injection point.  When the calling
//    rank's context matches an armed spec, the op throws FaultInjected and
//    raises a job-wide fault flag; every other rank's next (or current,
//    if blocked) Comm operation throws RemoteFault.  Both derive from
//    CommError, the typed "communicator is broken" signal the recovery
//    driver catches.  Specs fire a bounded number of times (default once),
//    so a retried step succeeds.
//  * After catching a CommError, *every* rank must call
//    Comm::fault_recover() on the world communicator: a rendezvous that
//    waits for all ranks, then drains mailboxes, resets barriers and split
//    staging in every live communicator group, and clears the fault flag.
//    Comm state is then as-new; simulation state is the caller's problem
//    (that is what checkpoints are for).
//
// Faults fire only at Comm entry points.  A spec whose (step, phase, rank)
// performs no communication never fires; a fatal (non-injected) exception
// on a sibling rank still surfaces as JobPoisoned, which does NOT derive
// from CommError and must not be swallowed by recovery loops.

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace greem::parx {

/// Base of all typed communication failures (injected or secondary).
class CommError : public std::runtime_error {
 public:
  explicit CommError(const std::string& what) : std::runtime_error(what) {}
};

enum class FaultKind : std::uint8_t {
  kRankAbort,          ///< the rank dies: fires at its next comm op of any kind
  kSendFailure,        ///< a point-to-point send fails
  kCollectiveFailure,  ///< a synchronizing collective entry fails
};

/// Phase tag of the fault context; drivers map their phases onto these.
enum class FaultPhase : std::uint8_t { kAny, kDD, kPM, kPP, kCkpt };

/// Context step value meaning "not inside any faultable region".
inline constexpr std::uint64_t kNoFaultStep = ~std::uint64_t{0};

struct FaultSpec {
  std::uint64_t step = 1;                 ///< 1-based step index (0 = setup/construction)
  FaultPhase phase = FaultPhase::kAny;    ///< kAny matches every phase of the step
  FaultKind kind = FaultKind::kRankAbort;
  int rank = 0;                           ///< world rank that fails
  int times = 1;                          ///< firings before the spec is spent
};

/// Thrown on the rank named by a matching spec.
class FaultInjected : public CommError {
 public:
  explicit FaultInjected(const FaultSpec& s);
  FaultSpec spec;
};

/// Thrown on every other rank once the fault flag is up.
class RemoteFault : public CommError {
 public:
  RemoteFault() : CommError("parx: a sibling rank hit an injected fault") {}
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Append a spec; chainable.
  FaultPlan& at(const FaultSpec& s) {
    specs_.push_back(s);
    return *this;
  }

  /// Seeded random plan: `n_faults` rank-aborts at uniform step in
  /// [1, max_step], uniform phase in {dd, pm, pp}, uniform rank in
  /// [0, nranks).  Deterministic in the seed (chaos testing with replay).
  static FaultPlan random(std::uint64_t seed, int n_faults, std::uint64_t max_step,
                          int nranks);

  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

 private:
  std::vector<FaultSpec> specs_;
};

struct FaultContext {
  std::uint64_t step = kNoFaultStep;
  FaultPhase phase = FaultPhase::kAny;
};

/// Set / read the calling rank thread's fault context (thread-local).
void set_fault_context(std::uint64_t step, FaultPhase phase);
FaultContext fault_context();

const char* to_string(FaultPhase p);
const char* to_string(FaultKind k);

/// Parse "STEP:PHASE[:RANK[:KIND]]", e.g. "3:pp", "2:dd:1", "4:any:0:send".
/// PHASE in {any,dd,pm,pp,ckpt}; KIND in {abort,send,collective}.
std::optional<FaultSpec> parse_fault_at(std::string_view s);

/// Which class of Comm operation an injection point sits in.
enum class FaultOp : std::uint8_t { kSend, kRecv, kCollective };

/// Armed form of a FaultPlan, shared by every Comm of a Runtime.
/// should_fire is called from concurrent rank threads; firing decrements
/// the spec's remaining count atomically, so `times` is a global budget.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The spec to fire at this injection point, if any (marks it fired and
  /// bumps the faults/injected counter).
  std::optional<FaultSpec> should_fire(int world_rank, FaultOp op, const FaultContext& ctx);

 private:
  struct Armed;
  std::unique_ptr<Armed[]> armed_;  // fixed array: Armed holds an atomic (immovable)
  std::size_t n_ = 0;
};

}  // namespace greem::parx
