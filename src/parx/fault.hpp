#pragma once
// Deterministic fault injection for parx, the testing ground for the
// checkpoint/rollback-recovery loop: a production trillion-body run loses
// nodes mid-step and drops packets on congested links, so the in-process
// MPI stand-in can be told to do both, reproducibly.
//
// Two fault families share one FaultPlan:
//
//  * Fail-stop faults (abort / send / collective / hang) fire at a Comm
//    operation entry.  When the calling rank's (step, phase) context
//    matches an armed spec, the op throws FaultInjected and raises a
//    job-wide fault flag; every other rank's next (or current, if
//    blocked) Comm operation throws RemoteFault.  Both derive from
//    CommError, the typed "communicator is broken" signal the recovery
//    driver catches.  kHang does not throw: the rank freezes inside the
//    op until the watchdog (see parx/transport.hpp) or a sibling fault
//    raises the flag.  Specs fire a bounded number of times (default
//    once), so a retried step succeeds.
//  * Link faults (drop / corrupt / dup / reorder / lose) never throw.
//    They configure the lossy-link model underneath the reliable
//    transport sublayer: each matching message is perturbed with the
//    spec's probability `rate`, decided by a counter-based hash of
//    (seed, src, dst, seq, attempt) so the loss pattern is reproducible
//    and independent of thread timing.  The reliability sublayer makes
//    delivery exact again; only an exhausted retransmit budget surfaces
//    as CommError (see docs/fault-model.md).
//
//  * After catching a CommError, *every* rank must call
//    Comm::fault_recover() on the world communicator: a rendezvous that
//    waits for all ranks, then drains mailboxes, resets barriers, split
//    staging and transport state in every live communicator group, and
//    clears the fault flag.  Comm state is then as-new; simulation state
//    is the caller's problem (that is what checkpoints are for).
//
// Fail-stop faults fire only at Comm entry points.  A spec whose
// (step, phase, rank) performs no communication never fires; a fatal
// (non-injected) exception on a sibling rank still surfaces as
// JobPoisoned, which does NOT derive from CommError and must not be
// swallowed by recovery loops.

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace greem::parx {

/// Base of all typed communication failures (injected or secondary).
class CommError : public std::runtime_error {
 public:
  explicit CommError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown by the deadline-aware recv_bytes/barrier variants when the
/// deadline expires before the operation completes.
class TimeoutError : public CommError {
 public:
  explicit TimeoutError(const std::string& what) : CommError(what) {}
};

/// Thrown when the fault_recover rendezvous itself times out: a rank
/// failed to join recovery, so the job is unrecoverable.  Deliberately
/// NOT a CommError -- recovery loops must let it propagate.
class RecoveryTimeout : public std::runtime_error {
 public:
  explicit RecoveryTimeout(const std::string& what) : std::runtime_error(what) {}
};

enum class FaultKind : std::uint8_t {
  // -- fail-stop kinds (throw CommError at a Comm op entry) --
  kRankAbort,          ///< the rank dies: fires at its next comm op of any kind
  kSendFailure,        ///< a point-to-point send fails
  kCollectiveFailure,  ///< a synchronizing collective entry fails
  kHang,               ///< the rank freezes in the op until the watchdog fires
  // -- link kinds (perturb messages under the reliable transport) --
  kLinkDrop,       ///< message silently lost
  kLinkCorrupt,    ///< one bit of the frame flipped (CRC catches it)
  kLinkDuplicate,  ///< message delivered twice
  kLinkReorder,    ///< message overtaken by the next one on the link
  kLinkBlackhole,  ///< message and all its retransmits lost ("lose"):
                   ///< deterministically exhausts the retry budget
};

/// True for the lossy-link kinds handled by the transport sublayer.
constexpr bool is_link_fault(FaultKind k) {
  return k >= FaultKind::kLinkDrop;
}

/// Phase tag of the fault context; drivers map their phases onto these.
enum class FaultPhase : std::uint8_t { kAny, kDD, kPM, kPP, kCkpt };

/// Context step value meaning "not inside any faultable region".
inline constexpr std::uint64_t kNoFaultStep = ~std::uint64_t{0};
/// Wildcard spec step: matches every step ("*" in the grammar).
inline constexpr std::uint64_t kEveryStep = ~std::uint64_t{0} - 1;
/// Wildcard spec rank: matches every rank ("*" in the grammar).
inline constexpr int kEveryRank = -1;
/// Spec budget meaning "unlimited firings" (link-fault default).
inline constexpr int kUnlimited = -1;

struct FaultSpec {
  std::uint64_t step = 1;               ///< 1-based step (0 = setup), kEveryStep = any
  FaultPhase phase = FaultPhase::kAny;  ///< kAny matches every phase of the step
  FaultKind kind = FaultKind::kRankAbort;
  int rank = 0;     ///< world rank that fails (sender for link faults); kEveryRank = any
  int times = 1;    ///< firings before the spec is spent; kUnlimited = no budget
  double rate = 1.0;  ///< link faults: per-message probability in [0, 1]
};

/// Thrown on the rank named by a matching fail-stop spec.
class FaultInjected : public CommError {
 public:
  explicit FaultInjected(const FaultSpec& s);
  FaultSpec spec;
};

/// Thrown on every other rank once the fault flag is up (and on every
/// rank when the transport or watchdog raised it: the flag's reason
/// string, when set, becomes the message).
class RemoteFault : public CommError {
 public:
  RemoteFault() : CommError("parx: a sibling rank hit an injected fault") {}
  explicit RemoteFault(const std::string& reason) : CommError(reason) {}
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Append a spec; chainable.
  FaultPlan& at(const FaultSpec& s) {
    specs_.push_back(s);
    return *this;
  }

  /// Seed of the lossy-link model's counter-based hash; chainable.
  /// Different seeds draw different (but each reproducible) loss patterns.
  FaultPlan& link_seed(std::uint64_t seed) {
    link_seed_ = seed;
    return *this;
  }
  std::uint64_t link_seed() const { return link_seed_; }

  /// Seeded random plan: `n_faults` rank-aborts at uniform step in
  /// [1, max_step], uniform phase in {dd, pm, pp}, uniform rank in
  /// [0, nranks).  Deterministic in the seed (chaos testing with replay).
  static FaultPlan random(std::uint64_t seed, int n_faults, std::uint64_t max_step,
                          int nranks);

  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

  /// The fail-stop / link subsets of the plan.
  std::vector<FaultSpec> failstop_specs() const;
  std::vector<FaultSpec> link_specs() const;

 private:
  std::vector<FaultSpec> specs_;
  std::uint64_t link_seed_ = 0x9E3779B97F4A7C15ull;
};

struct FaultContext {
  std::uint64_t step = kNoFaultStep;
  FaultPhase phase = FaultPhase::kAny;
};

/// Set / read the calling rank thread's fault context (thread-local).
void set_fault_context(std::uint64_t step, FaultPhase phase);
FaultContext fault_context();

const char* to_string(FaultPhase p);
const char* to_string(FaultKind k);

/// Parse "STEP:PHASE[:RANK[:KIND]]" where STEP and RANK may be "*"
/// (every step / every rank), PHASE in {any,dd,pm,pp,ckpt} and KIND one
/// of the fail-stop kinds {abort,send,collective,hang} or a link kind
/// {drop,corrupt,dup,reorder,lose} with an optional "@RATE" probability
/// and "xN" firing budget.  Examples: "3:pp", "2:dd:1", "4:any:0:send",
/// "*:any:*:drop@0.01", "2:pp:*:lose", "5:pm:1:corrupt@0.001x10".
/// Link kinds default to rate 1 and an unlimited budget, except `lose`
/// whose budget defaults to 1 (each firing dooms exactly one message).
std::optional<FaultSpec> parse_fault_at(std::string_view s);

/// Which class of Comm operation an injection point sits in.
enum class FaultOp : std::uint8_t { kSend, kRecv, kCollective };

/// True when `spec` matches the sender-side context (step, phase, rank
/// wildcards included).  Shared by the fail-stop injector and the
/// lossy-link model.
bool spec_matches_context(const FaultSpec& s, int world_rank, const FaultContext& ctx);

/// Armed form of the fail-stop subset of a FaultPlan, shared by every
/// Comm of a Runtime.  should_fire is called from concurrent rank
/// threads; firing decrements the spec's remaining count atomically, so
/// `times` is a global budget.
class FaultInjector {
 public:
  explicit FaultInjector(std::vector<FaultSpec> specs);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The spec to fire at this injection point, if any (marks it fired and
  /// bumps the faults/injected counter).
  std::optional<FaultSpec> should_fire(int world_rank, FaultOp op, const FaultContext& ctx);

 private:
  struct Armed;
  std::unique_ptr<Armed[]> armed_;  // fixed array: Armed holds an atomic (immovable)
  std::size_t n_ = 0;
};

}  // namespace greem::parx
