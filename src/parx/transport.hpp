#pragma once
// Reliable transport for parx: a lossy-link fault model underneath an
// ack/retransmit reliability sublayer, plus the job monitor thread that
// drives retransmission and the hang watchdog.
//
// Layering (see docs/fault-model.md):
//
//   Comm::send_bytes / recv_bytes            application bytes, exact
//   ------------------------------------------------------------------
//   ReliableTransport                        frames: seq + CRC32, dedup,
//     (only when a lossy plan is installed)  in-order reassembly, cumulative
//                                            acks, retransmit w/ backoff
//   ------------------------------------------------------------------
//   LinkModel                                per-message drop / bit-flip /
//                                            duplicate / reorder / blackhole
//   ------------------------------------------------------------------
//   Mailboxes                                in-process "wire"
//
// The link model is *counter-based*: each decision hashes (seed, src,
// dst, seq, attempt, salt) through FNV-1a, so the loss pattern is a pure
// function of the plan -- reproducible across runs and independent of
// thread scheduling.  The reliability sublayer makes delivery exact
// again; after `max_attempts` transmissions of one frame it declares the
// link dead and raises the job fault flag, surfacing as CommError on
// every rank so the checkpoint rollback-recovery path takes over.
//
// Pay-for-what-you-use (docs/transport-fastpath.md):
//  * With no lossy plan installed, Comm sends never touch any of this
//    (one null-pointer test) -- the zero-copy fast path.
//  * With a plan installed, only senders a FaultSpec actually names are
//    framed; every other sender's links keep the fast path.  The
//    partition (framed()) is computed once at construction.
//  * CRC32 framing is engaged only when the plan can corrupt (a
//    kLinkCorrupt spec is armed); drop/dup/reorder-only plans skip both
//    CRC passes, since no transmission can ever flip a bit.
//  * Cumulative acks piggyback on reverse-direction data frames
//    (Frame::ack_upto); the monitor flushes leftover standalone acks on
//    the ack_delay_s batching deadline.  Acks are cumulative and
//    idempotent, so a piggybacked ack lost with its dropped carrier
//    frame is simply repeated later.
//
// Frame payloads are shared (shared_ptr) between the retransmit queue
// and in-flight deliveries, so a frame is copied exactly once, at
// framing time; an injected bit flip deep-copies first so the pristine
// retransmit copy heals it.
//
// Lock order (a thread never holds two of the same tier):
//   scan_mu -> peer mu (TxPeer | RxPeer) -> groups_mu -> mailbox mu
// Peer locks are per *link*, not per endpoint, so concurrent senders to
// one destination never contend; send() takes the reverse RxPeer lock
// (piggyback fetch) then its TxPeer lock *sequentially*, never nested.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "parx/fault.hpp"
#include "telemetry/telemetry.hpp"

namespace greem::parx {

namespace detail {
struct Group;
struct JobState;
}

/// Retransmission tuning of the reliability sublayer.
struct TransportTuning {
  double rto_s = 0.005;   ///< initial retransmit timeout
  double backoff = 2.0;   ///< RTO multiplier per attempt
  int max_attempts = 8;   ///< transmissions before the frame is declared lost
  double tick_s = 0.001;  ///< monitor poll interval (retransmit scan, limbo flush)
  /// Standalone-ack batching deadline: a pending cumulative ack that no
  /// reverse-direction data frame has picked up is flushed by the monitor
  /// once it is at least this old (0 = on the next tick), so worst-case
  /// ack latency is ack_delay_s + tick_s.  Keep it below rto_s or clean
  /// links will retransmit spuriously.
  double ack_delay_s = 0.0;
};

/// Hang watchdog configuration.  quiescence_s == 0 disables the watchdog.
struct WatchdogConfig {
  double quiescence_s = 0;  ///< a rank blocked in one comm op longer than this hangs
  std::string dump_path;    ///< also write the state report here (stderr always)
  /// Where to dump the flight recorder (Chrome trace JSON) when the
  /// watchdog fires; empty falls back to telemetry::flight_dump_path().
  std::string flight_dump_path;
};

/// Deterministic lossy-link model: the armed link-fault subset of a
/// FaultPlan.  decide() is pure up to the firing budgets (atomic, like
/// FaultInjector's).
class LinkModel {
 public:
  LinkModel(std::vector<FaultSpec> specs, std::uint64_t seed);
  ~LinkModel();
  LinkModel(const LinkModel&) = delete;
  LinkModel& operator=(const LinkModel&) = delete;

  struct Decision {
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    bool reorder = false;
    std::uint64_t corrupt_salt = 0;  ///< selects the flipped bit
  };

  /// Sample the fate of one transmission of frame (src -> dst, seq) at
  /// the given attempt, under the sender's fault context.
  Decision decide(int src_world, int dst_world, std::uint64_t seq, std::uint32_t attempt,
                  const FaultContext& ctx);

  /// Sample the per-frame blackhole verdict (once, at send time): a doomed
  /// frame is dropped on every transmission, exhausting the retry budget.
  bool blackhole_fires(int src_world, int dst_world, std::uint64_t seq,
                       const FaultContext& ctx);

  /// Whether the cumulative ack dst -> src for `seq` is lost (acks ride
  /// the same lossy links; only the drop rate applies to them).
  bool ack_dropped(int acker_world, int to_world, std::uint64_t seq, std::uint32_t attempt,
                   const FaultContext& ctx);

  /// Whether any armed spec could ever fire for frames sent by
  /// `src_world` (link faults are sender-attributed).  Deliberately
  /// context-insensitive -- a spec gated on a future step still frames
  /// its sender for the whole plan epoch -- so the framed/fast-path
  /// partition is fixed at install time.
  bool covers_sender(int src_world) const;

  /// Whether any armed spec is a kLinkCorrupt (decides if CRC framing is
  /// engaged at all).
  bool can_corrupt() const;

  bool empty() const { return n_ == 0; }

 private:
  struct Armed;
  bool fire(Armed& a, double u);

  std::unique_ptr<Armed[]> armed_;
  std::size_t n_ = 0;
  std::uint64_t seed_;
};

/// The reliability sublayer.  One instance per job, shared by every
/// communicator; all methods are thread-safe.
class ReliableTransport {
 public:
  ReliableTransport(int nranks, std::shared_ptr<LinkModel> model, TransportTuning tuning,
                    detail::JobState* job);
  ~ReliableTransport();
  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Frame and transmit one application message (called from
  /// Comm::send_bytes on the sender's rank thread).  Logical traffic is
  /// recorded by the caller; retransmissions are recorded here.
  void send(detail::Group& group, int src_local, int dst_local, int tag, const void* data,
            std::size_t n);

  /// Whether sends from this world rank go through the framed sublayer
  /// (some armed spec covers them); false = zero-copy fast path.
  /// Immutable after construction, so lock-free.
  bool framed(int src_world) const { return framed_[static_cast<std::size_t>(src_world)] != 0; }

  /// Monitor duties: flush reorder limbo, retransmit frames past their
  /// deadline, declare frames dead after max_attempts (raises the job
  /// fault flag).
  void tick(double now);

  /// Drop all in-flight state (unacked frames, reassembly buffers,
  /// sequence counters).  Only call while no rank is inside a Comm
  /// operation (the fault_recover rendezvous or between run()s).
  void reset();

  /// Per-link sequence/ack state report for the watchdog dump.
  void dump(std::ostream& os) const;

  /// Tuning is read by the monitor thread and writable from the driver
  /// thread at any time, so access goes through a copy under a lock.
  TransportTuning tuning() const {
    std::lock_guard lock(tuning_mu_);
    return tuning_;
  }
  void set_tuning(const TransportTuning& t) {
    std::lock_guard lock(tuning_mu_);
    tuning_ = t;
    rto_hint_.store(t.rto_s, std::memory_order_relaxed);
  }

 private:
  struct Frame {
    std::uint64_t seq = 0;
    std::uint32_t attempt = 0;
    std::uint32_t crc = 0;
    /// Piggybacked cumulative ack for the reverse link (0 = none): every
    /// seq < ack_upto of dst->src traffic is acknowledged by this frame.
    /// Excluded from crc -- the corrupt model flips payload bits only,
    /// and acks are cumulative/idempotent, so a stale value is harmless.
    std::uint64_t ack_upto = 0;
    int src_world = -1, dst_world = -1;
    std::uint64_t group_id = 0;
    int src_local = -1, dst_local = -1, tag = 0;
    /// Shared with the retransmit queue: framing copies the application
    /// bytes exactly once; retransmissions and deliveries bump refcounts.
    std::shared_ptr<std::vector<std::byte>> payload;
    FaultContext ctx;  ///< sender context at first transmission (drives the model)
    /// Causal-trace stamp applied at framing time: flow pairs the frame's
    /// send and recv flight-recorder events; sent_ns feeds the per-link
    /// latency and ack-RTT histograms.  0/0 when telemetry is off.
    std::uint64_t flow = 0;
    std::int64_t sent_ns = 0;
  };

  struct Pending {
    Frame frame;
    double next_retry = 0;
    bool doomed = false;  ///< blackholed: every transmission is dropped
  };

  struct TxPeer {
    /// Per-link lock: only this link's sender, its receiver's piggybacked
    /// acks, and the monitor ever take it, so it is all but uncontended.
    mutable std::mutex mu;
    std::uint64_t next_seq = 0;
    std::uint64_t acked_upto = 0;  ///< all seq < acked_upto are acked
    /// In seq order (sends only ever append, cumulative acks only ever
    /// pop the front), so no per-frame map nodes.
    std::deque<Pending> unacked;

    // The mutex deletes the implicit moves; vector growth and reset()
    // only touch peers under exclusion, so moving state without the lock
    // is safe (the destination keeps its own fresh mutex).
    TxPeer() = default;
    TxPeer(TxPeer&& o) noexcept
        : next_seq(o.next_seq), acked_upto(o.acked_upto), unacked(std::move(o.unacked)) {}
    TxPeer& operator=(TxPeer&& o) noexcept {
      next_seq = o.next_seq;
      acked_upto = o.acked_upto;
      unacked = std::move(o.unacked);
      return *this;
    }
  };

  struct RxPeer {
    /// Per-link lock: the sender thread delivering on this link and the
    /// monitor are the only takers, so it is all but uncontended.
    mutable std::mutex mu;
    std::uint64_t expected = 0;           ///< next in-order seq
    std::map<std::uint64_t, Frame> ooo;   ///< buffered out-of-order frames
    std::deque<Frame> limbo;              ///< reorder holding pen
    /// Deferred cumulative ack (0 = none pending): raised by arriving
    /// frames, drained by reverse-direction sends (piggyback) or the
    /// monitor's batching deadline.  seq/attempt/ctx of the raising frame
    /// are kept for the standalone ack's deterministic drop draw.
    /// Atomic so send() can probe it without mu (mutations stay under mu;
    /// a stale read only defers the ack to the monitor flush).
    std::atomic<std::uint64_t> ack_pending{0};
    double ack_since = 0;
    std::uint64_t ack_seq = 0;
    std::uint32_t ack_attempt = 0;
    FaultContext ack_ctx;

    // The mutex and atomic members delete the implicit moves; vector
    // growth and reset() only touch peers under exclusion, so a relaxed
    // copy is safe (the destination keeps its own fresh mutex).
    RxPeer() = default;
    RxPeer(RxPeer&& o) noexcept
        : expected(o.expected),
          ooo(std::move(o.ooo)),
          limbo(std::move(o.limbo)),
          ack_pending(o.ack_pending.load(std::memory_order_relaxed)),
          ack_since(o.ack_since),
          ack_seq(o.ack_seq),
          ack_attempt(o.ack_attempt),
          ack_ctx(o.ack_ctx) {}
    RxPeer& operator=(RxPeer&& o) noexcept {
      expected = o.expected;
      ooo = std::move(o.ooo);
      limbo = std::move(o.limbo);
      ack_pending.store(o.ack_pending.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      ack_since = o.ack_since;
      ack_seq = o.ack_seq;
      ack_attempt = o.ack_attempt;
      ack_ctx = o.ack_ctx;
      return *this;
    }
  };

  struct Endpoint {
    std::vector<TxPeer> tx;  ///< by destination world rank
    std::vector<RxPeer> rx;  ///< by source world rank
  };

  std::uint32_t frame_crc(const Frame& f) const;

  /// Apply the link model to one transmission and deliver the survivors.
  /// Takes its frame by value: callers that keep a copy (the retransmit
  /// queue) pass one; the hot path moves and never copies.
  void transmit(Frame f, bool doomed);
  /// Run the receiver-side protocol on one arriving frame (possibly held
  /// in limbo first when the model reorders it).
  void deliver(Frame f, bool hold_for_reorder);
  /// Protocol body; caller holds rp.mu.  Returns the cumulative ack to
  /// record as pending (0 = none).
  std::uint64_t process_frame(RxPeer& rp, Frame& f);
  /// Record `ack` as this link's pending cumulative ack (caller holds
  /// rp.mu; seq/attempt/ctx identify the frame that raised it, for the
  /// standalone ack's deterministic drop draw).
  void note_ack(RxPeer& rp, std::uint64_t ack, std::uint64_t seq, std::uint32_t attempt,
                const FaultContext& ctx);
  /// Push an in-order, verified frame into its group mailbox.
  void to_mailbox(Frame& f);
  /// Apply a standalone cumulative ack at the original sender (rides the
  /// lossy link: may be dropped).
  void apply_ack(int acker_world, int to_world, std::uint64_t upto, std::uint64_t seq,
                 std::uint32_t attempt, const FaultContext& ctx);
  /// Apply a piggybacked ack (its carrier data frame already survived the
  /// link model, so no second drop draw).
  void apply_ack_clean(int acker_world, int to_world, std::uint64_t upto);
  /// Ack application body; caller holds tp.mu.
  void clear_acked(TxPeer& tp, std::uint64_t upto);

  // Per-link instruments ("parx/link/S->D/..."), created lazily on first
  // event so the registry only holds links that carried traffic.  The
  // publication race is benign: the registry returns one stable reference
  // per name.
  telemetry::Histogram& link_latency(int src_world, int dst_world);
  telemetry::Histogram& link_ack_rtt(int src_world, int dst_world);
  telemetry::Counter& link_retransmits(int src_world, int dst_world);

  int nranks_;
  std::shared_ptr<LinkModel> model_;
  mutable std::mutex tuning_mu_;
  TransportTuning tuning_;
  detail::JobState* job_;  ///< not owned; the job owns this transport
  std::vector<Endpoint> eps_;
  std::vector<char> framed_;  ///< by sender world rank; fixed at construction
  /// Lazily-filled per-link instrument caches, indexed src * nranks + dst.
  std::vector<std::atomic<telemetry::Histogram*>> link_lat_;
  std::vector<std::atomic<telemetry::Histogram*>> link_rtt_;
  std::vector<std::atomic<telemetry::Counter*>> link_retx_;
  bool crc_on_ = false;       ///< plan has a corrupt spec; fixed at construction
  mutable std::mutex scan_mu_;  ///< serializes tick() against reset()

  /// rto_s mirror so the send hot path skips tuning_mu_ (a stale value
  /// only shifts one frame's first retry deadline).
  double rto_hint() const { return rto_hint_.load(std::memory_order_relaxed); }
  std::atomic<double> rto_hint_{0.005};

  // Work-pending hints so an idle tick() returns without taking any lock
  // (relaxed: a stale read only delays work by one tick).
  std::atomic<std::uint64_t> unacked_frames_{0};
  std::atomic<std::uint64_t> acks_backlog_{0};  ///< RxPeers with ack_pending != 0
  std::atomic<std::uint64_t> limbo_frames_{0};
};

/// The job monitor: one background thread per Runtime that drives
/// transport retransmission and the hang watchdog.  Started lazily by
/// Runtime when a lossy plan or a watchdog is installed.
class Monitor {
 public:
  Monitor(std::shared_ptr<detail::JobState> job, std::shared_ptr<detail::Group> world);
  ~Monitor();
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  void set_watchdog(const WatchdogConfig& cfg);

 private:
  void loop();
  void check_hang(double now);
  void dump_state(std::ostream& os, double now) const;

  std::shared_ptr<detail::JobState> job_;
  std::shared_ptr<detail::Group> world_;
  mutable std::mutex cfg_mu_;
  WatchdogConfig watchdog_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace greem::parx
