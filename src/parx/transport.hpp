#pragma once
// Reliable transport for parx: a lossy-link fault model underneath an
// ack/retransmit reliability sublayer, plus the job monitor thread that
// drives retransmission and the hang watchdog.
//
// Layering (see docs/fault-model.md):
//
//   Comm::send_bytes / recv_bytes            application bytes, exact
//   ------------------------------------------------------------------
//   ReliableTransport                        frames: seq + CRC32, dedup,
//     (only when a lossy plan is installed)  in-order reassembly, cumulative
//                                            acks, retransmit w/ backoff
//   ------------------------------------------------------------------
//   LinkModel                                per-message drop / bit-flip /
//                                            duplicate / reorder / blackhole
//   ------------------------------------------------------------------
//   Mailboxes                                in-process "wire"
//
// The link model is *counter-based*: each decision hashes (seed, src,
// dst, seq, attempt, salt) through FNV-1a, so the loss pattern is a pure
// function of the plan -- reproducible across runs and independent of
// thread scheduling.  The reliability sublayer makes delivery exact
// again; after `max_attempts` transmissions of one frame it declares the
// link dead and raises the job fault flag, surfacing as CommError on
// every rank so the checkpoint rollback-recovery path takes over.
//
// With no lossy plan installed, Comm::send_bytes never touches any of
// this (one null-pointer test), so the perfect-link fast path is
// unchanged.
//
// Lock order (a thread never holds two of the same tier):
//   scan_mu -> (tx_mu | rx_mu) -> groups_mu -> mailbox mu

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "parx/fault.hpp"

namespace greem::parx {

namespace detail {
struct Group;
struct JobState;
}

/// Retransmission tuning of the reliability sublayer.
struct TransportTuning {
  double rto_s = 0.005;   ///< initial retransmit timeout
  double backoff = 2.0;   ///< RTO multiplier per attempt
  int max_attempts = 8;   ///< transmissions before the frame is declared lost
  double tick_s = 0.001;  ///< monitor poll interval (retransmit scan, limbo flush)
};

/// Hang watchdog configuration.  quiescence_s == 0 disables the watchdog.
struct WatchdogConfig {
  double quiescence_s = 0;  ///< a rank blocked in one comm op longer than this hangs
  std::string dump_path;    ///< also write the state report here (stderr always)
};

/// Deterministic lossy-link model: the armed link-fault subset of a
/// FaultPlan.  decide() is pure up to the firing budgets (atomic, like
/// FaultInjector's).
class LinkModel {
 public:
  LinkModel(std::vector<FaultSpec> specs, std::uint64_t seed);
  ~LinkModel();
  LinkModel(const LinkModel&) = delete;
  LinkModel& operator=(const LinkModel&) = delete;

  struct Decision {
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    bool reorder = false;
    std::uint64_t corrupt_salt = 0;  ///< selects the flipped bit
  };

  /// Sample the fate of one transmission of frame (src -> dst, seq) at
  /// the given attempt, under the sender's fault context.
  Decision decide(int src_world, int dst_world, std::uint64_t seq, std::uint32_t attempt,
                  const FaultContext& ctx);

  /// Sample the per-frame blackhole verdict (once, at send time): a doomed
  /// frame is dropped on every transmission, exhausting the retry budget.
  bool blackhole_fires(int src_world, int dst_world, std::uint64_t seq,
                       const FaultContext& ctx);

  /// Whether the cumulative ack dst -> src for `seq` is lost (acks ride
  /// the same lossy links; only the drop rate applies to them).
  bool ack_dropped(int acker_world, int to_world, std::uint64_t seq, std::uint32_t attempt,
                   const FaultContext& ctx);

  bool empty() const { return n_ == 0; }

 private:
  struct Armed;
  bool fire(Armed& a, double u);

  std::unique_ptr<Armed[]> armed_;
  std::size_t n_ = 0;
  std::uint64_t seed_;
};

/// The reliability sublayer.  One instance per job, shared by every
/// communicator; all methods are thread-safe.
class ReliableTransport {
 public:
  ReliableTransport(int nranks, std::shared_ptr<LinkModel> model, TransportTuning tuning,
                    detail::JobState* job);
  ~ReliableTransport();
  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Frame and transmit one application message (called from
  /// Comm::send_bytes on the sender's rank thread).  Logical traffic is
  /// recorded by the caller; retransmissions are recorded here.
  void send(detail::Group& group, int src_local, int dst_local, int tag, const void* data,
            std::size_t n);

  /// Monitor duties: flush reorder limbo, retransmit frames past their
  /// deadline, declare frames dead after max_attempts (raises the job
  /// fault flag).
  void tick(double now);

  /// Drop all in-flight state (unacked frames, reassembly buffers,
  /// sequence counters).  Only call while no rank is inside a Comm
  /// operation (the fault_recover rendezvous or between run()s).
  void reset();

  /// Per-link sequence/ack state report for the watchdog dump.
  void dump(std::ostream& os) const;

  /// Tuning is read by the monitor thread and writable from the driver
  /// thread at any time, so access goes through a copy under a lock.
  TransportTuning tuning() const {
    std::lock_guard lock(tuning_mu_);
    return tuning_;
  }
  void set_tuning(const TransportTuning& t) {
    std::lock_guard lock(tuning_mu_);
    tuning_ = t;
  }

 private:
  struct Frame {
    std::uint64_t seq = 0;
    std::uint32_t attempt = 0;
    std::uint32_t crc = 0;
    int src_world = -1, dst_world = -1;
    std::uint64_t group_id = 0;
    int src_local = -1, dst_local = -1, tag = 0;
    std::vector<std::byte> payload;
    FaultContext ctx;  ///< sender context at first transmission (drives the model)
  };

  struct Pending {
    Frame frame;
    double next_retry = 0;
    bool doomed = false;  ///< blackholed: every transmission is dropped
  };

  struct TxPeer {
    std::uint64_t next_seq = 0;
    std::uint64_t acked_upto = 0;  ///< all seq < acked_upto are acked
    std::map<std::uint64_t, Pending> unacked;
  };

  struct RxPeer {
    std::uint64_t expected = 0;           ///< next in-order seq
    std::map<std::uint64_t, Frame> ooo;   ///< buffered out-of-order frames
    std::deque<Frame> limbo;              ///< reorder holding pen
  };

  struct Endpoint {
    mutable std::mutex tx_mu;
    std::vector<TxPeer> tx;  ///< by destination world rank
    mutable std::mutex rx_mu;
    std::vector<RxPeer> rx;  ///< by source world rank
  };

  static std::uint32_t frame_crc(const Frame& f);

  /// Apply the link model to one transmission and deliver the survivors.
  void transmit(const Frame& f, bool doomed);
  /// Run the receiver-side protocol on one arriving frame (possibly held
  /// in limbo first when the model reorders it).
  void deliver(Frame f, bool hold_for_reorder);
  /// Protocol body; caller holds ep[dst].rx_mu.  Returns the cumulative
  /// ack to send (0 = none).
  std::uint64_t process_frame(RxPeer& rp, Frame& f);
  /// Push an in-order, verified frame into its group mailbox.
  void to_mailbox(Frame& f);
  /// Apply a cumulative ack at the original sender (lossy: may be dropped).
  void apply_ack(int acker_world, int to_world, std::uint64_t upto, std::uint64_t seq,
                 std::uint32_t attempt, const FaultContext& ctx);

  int nranks_;
  std::shared_ptr<LinkModel> model_;
  mutable std::mutex tuning_mu_;
  TransportTuning tuning_;
  detail::JobState* job_;  ///< not owned; the job owns this transport
  std::vector<Endpoint> eps_;
  mutable std::mutex scan_mu_;  ///< serializes tick() against reset()
};

/// The job monitor: one background thread per Runtime that drives
/// transport retransmission and the hang watchdog.  Started lazily by
/// Runtime when a lossy plan or a watchdog is installed.
class Monitor {
 public:
  Monitor(std::shared_ptr<detail::JobState> job, std::shared_ptr<detail::Group> world);
  ~Monitor();
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  void set_watchdog(const WatchdogConfig& cfg);

 private:
  void loop();
  void check_hang(double now);
  void dump_state(std::ostream& os, double now) const;

  std::shared_ptr<detail::JobState> job_;
  std::shared_ptr<detail::Group> world_;
  mutable std::mutex cfg_mu_;
  WatchdogConfig watchdog_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace greem::parx
