#include "util/timer.hpp"

namespace greem {

void TimingBreakdown::add(std::string_view name, double seconds) {
  if (const auto it = index_.find(name); it != index_.end()) {
    entries_[it->second].second += seconds;
    return;
  }
  index_.emplace(std::string(name), entries_.size());
  entries_.emplace_back(std::string(name), seconds);
}

double TimingBreakdown::total() const {
  double t = 0;
  for (const auto& [k, v] : entries_) t += v;
  return t;
}

double TimingBreakdown::get(std::string_view name) const {
  if (const auto it = index_.find(name); it != index_.end())
    return entries_[it->second].second;
  return 0.0;
}

void TimingBreakdown::clear() {
  entries_.clear();
  index_.clear();
}

void TimingBreakdown::merge(const TimingBreakdown& other) {
  for (const auto& [k, v] : other.entries_) add(k, v);
}

}  // namespace greem
