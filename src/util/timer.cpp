#include "util/timer.hpp"

#include <algorithm>

namespace greem {

void TimingBreakdown::add(std::string_view name, double seconds) {
  for (auto& [k, v] : entries_) {
    if (k == name) {
      v += seconds;
      return;
    }
  }
  entries_.emplace_back(std::string(name), seconds);
}

double TimingBreakdown::total() const {
  double t = 0;
  for (const auto& [k, v] : entries_) t += v;
  return t;
}

double TimingBreakdown::get(std::string_view name) const {
  for (const auto& [k, v] : entries_) {
    if (k == name) return v;
  }
  return 0.0;
}

void TimingBreakdown::clear() { entries_.clear(); }

void TimingBreakdown::merge(const TimingBreakdown& other) {
  for (const auto& [k, v] : other.entries_) add(k, v);
}

}  // namespace greem
