#pragma once
// Shared integrity and fingerprint hashes: CRC32 (IEEE 802.3 polynomial,
// zlib-compatible) guards checkpoint shards and parx transport frames; the
// FNV-1a 64 running hash fingerprints configurations and seeds the
// deterministic lossy-link model.  One implementation, one test
// (util_test); ckpt/hash.hpp re-exports these under greem::ckpt for its
// historical callers.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>

namespace greem::util {

/// One-shot CRC32 of a buffer (equals zlib's crc32(0, data, n)).
std::uint32_t crc32(std::span<const std::byte> data);
std::uint32_t crc32(const void* data, std::size_t n);

/// Incremental form: feed chunks, read value() at any point.
class Crc32 {
 public:
  void update(const void* data, std::size_t n);
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// FNV-1a 64-bit running hash; mix in raw bytes or trivially-copyable
/// values.  Order-sensitive, which is what a config fingerprint wants.
class Fnv1a64 {
 public:
  Fnv1a64& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001B3ull;
    }
    return *this;
  }

  template <class T>
  Fnv1a64& mix(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    // Go through a memcpy so padding-free scalar types hash their value
    // representation deterministically.
    unsigned char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    return bytes(buf, sizeof(T));
  }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ull;
};

}  // namespace greem::util
