#include "util/task_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace greem {
namespace {

// Non-worker threads submit at slot 0; workers carry their 1-based slot.
thread_local unsigned tl_slot = 0;
thread_local bool tl_is_worker = false;

std::size_t default_threads() {
  if (const char* env = std::getenv("GREEM_THREADS")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

// A block of chunk indices [lo, hi) packed into one word so that the
// owner's pop-front and a thief's pop-back contend on a single CAS.
constexpr std::uint64_t pack(std::uint32_t lo, std::uint32_t hi) {
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}
constexpr std::uint32_t block_lo(std::uint64_t b) { return static_cast<std::uint32_t>(b >> 32); }
constexpr std::uint32_t block_hi(std::uint64_t b) { return static_cast<std::uint32_t>(b); }

}  // namespace

struct TaskPool::LoopTask {
  std::size_t begin = 0, end = 0, grain = 1;
  std::size_t nchunks = 0;
  const Body* body = nullptr;
  std::vector<std::atomic<std::uint64_t>> blocks;  ///< per-participant deques
  std::atomic<std::size_t> chunks_left{0};
  int in_flight = 0;  ///< workers inside work_on(); guarded by pool mu_

  // Pop the front chunk of block b (the owner side of the deque).
  bool pop_front(std::size_t b, std::uint32_t& out) {
    std::uint64_t cur = blocks[b].load(std::memory_order_relaxed);
    while (block_lo(cur) < block_hi(cur)) {
      if (blocks[b].compare_exchange_weak(cur, pack(block_lo(cur) + 1, block_hi(cur)),
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        out = block_lo(cur);
        return true;
      }
    }
    return false;
  }

  // Steal the back chunk of block b (the thief side).
  bool pop_back(std::size_t b, std::uint32_t& out) {
    std::uint64_t cur = blocks[b].load(std::memory_order_relaxed);
    while (block_lo(cur) < block_hi(cur)) {
      if (blocks[b].compare_exchange_weak(cur, pack(block_lo(cur), block_hi(cur) - 1),
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        out = block_hi(cur) - 1;
        return true;
      }
    }
    return false;
  }

  // Grab the next chunk: own block first, then steal from the fullest.
  // `stolen` reports which path produced the chunk.
  bool take(unsigned slot, std::uint32_t& out, bool& stolen) {
    const std::size_t nb = blocks.size();
    const std::size_t own = slot % nb;
    stolen = false;
    if (pop_front(own, out)) return true;
    stolen = true;
    for (;;) {
      std::size_t victim = nb;
      std::uint32_t best = 0;
      for (std::size_t b = 0; b < nb; ++b) {
        const std::uint64_t cur = blocks[b].load(std::memory_order_relaxed);
        const std::uint32_t lo = block_lo(cur), hi = block_hi(cur);
        if (lo < hi && hi - lo > best) {
          best = hi - lo;
          victim = b;
        }
      }
      if (victim == nb) return false;
      if (pop_back(victim, out)) return true;
      // Lost the race for that block; rescan.
    }
  }
};

TaskPool::TaskPool(std::size_t threads)
    : n_threads_(threads == 0 ? default_threads() : threads),
      slot_counters_(n_threads_),
      stats_start_(std::chrono::steady_clock::now()) {
  spawn_workers();
}

TaskPool::~TaskPool() { join_workers(); }

void TaskPool::spawn_workers() {
  workers_.reserve(n_threads_ - 1);
  for (std::size_t w = 1; w < n_threads_; ++w)
    workers_.emplace_back([this, w] { worker_main(static_cast<unsigned>(w)); });
}

void TaskPool::join_workers() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  stop_ = false;
}

void TaskPool::resize(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  std::lock_guard resize_lock(resize_mu_);
  if (threads == n_threads_) return;  // idempotent: concurrent equal settings are safe
  {
    // Quiesce: every submitted loop drains before the workers go away.
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return active_.empty(); });
  }
  join_workers();
  n_threads_ = threads;
  // The slot space changes size, so the per-slot counters are rebuilt
  // (resize implies reset_stats; see header).
  slot_counters_ = std::vector<SlotCounters>(n_threads_);
  loops_.store(0, std::memory_order_relaxed);
  stats_start_ = std::chrono::steady_clock::now();
  spawn_workers();
}

void TaskPool::for_dynamic(std::size_t begin, std::size_t end, std::size_t grain,
                           const Body& body) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n = end - begin;
  // Chunk indices are packed into 32 bits; coarsen the grain if a caller
  // ever hands us > 2^32 chunks.
  while ((n + grain - 1) / grain > 0xffffffffull) grain *= 2;
  const std::size_t nchunks = (n + grain - 1) / grain;
  // Inline paths: trivial loop, one-participant pool, or nested submission
  // from a worker (which must not block waiting on its own pool).  The
  // grain partition is preserved so the chunk boundaries a body observes
  // stay a pure function of (begin, end, grain).
  if (nchunks <= 1 || n_threads_ <= 1 || tl_is_worker) {
    for (std::size_t lo = begin; lo < end; lo += grain)
      body(lo, std::min(end, lo + grain), tl_slot);
    return;
  }

  LoopTask task;
  task.begin = begin;
  task.end = end;
  task.grain = grain;
  task.nchunks = nchunks;
  task.body = &body;
  task.chunks_left.store(nchunks, std::memory_order_relaxed);
  const std::size_t nblocks = std::min(n_threads_, nchunks);
  task.blocks = std::vector<std::atomic<std::uint64_t>>(nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::uint32_t lo = static_cast<std::uint32_t>(b * nchunks / nblocks);
    const std::uint32_t hi = static_cast<std::uint32_t>((b + 1) * nchunks / nblocks);
    task.blocks[b].store(pack(lo, hi), std::memory_order_relaxed);
  }

  loops_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    active_.push_back(&task);
  }
  cv_work_.notify_all();

  work_on(task, /*slot=*/0);

  std::unique_lock lock(mu_);
  // The task may already have been retired by the worker that drained it.
  if (const auto it = std::find(active_.begin(), active_.end(), &task); it != active_.end())
    active_.erase(it);
  cv_done_.notify_all();  // unblock a concurrent resize() waiting for quiescence
  cv_done_.wait(lock, [&] {
    return task.chunks_left.load(std::memory_order_acquire) == 0 && task.in_flight == 0;
  });
}

void TaskPool::work_on(LoopTask& task, unsigned slot) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t chunks = 0, steals = 0;
  std::uint32_t c;
  bool stolen;
  while (task.take(slot, c, stolen)) {
    const std::size_t lo = task.begin + static_cast<std::size_t>(c) * task.grain;
    const std::size_t hi = std::min(task.end, lo + task.grain);
    (*task.body)(lo, hi, slot);
    task.chunks_left.fetch_sub(1, std::memory_order_release);
    ++chunks;
    steals += stolen ? 1 : 0;
  }
  if (chunks != 0) {
    // Aggregate locally, publish once: two clock reads and three relaxed
    // adds per work_on attachment, independent of the chunk count.
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    auto& sc = slot_counters_[slot];
    sc.chunks.fetch_add(chunks, std::memory_order_relaxed);
    sc.steals.fetch_add(steals, std::memory_order_relaxed);
    sc.busy_ns.fetch_add(static_cast<std::uint64_t>(ns), std::memory_order_relaxed);
  }
}

void TaskPool::worker_main(unsigned slot) {
  tl_slot = slot;
  tl_is_worker = true;
  std::unique_lock lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] { return stop_ || !active_.empty(); });
    if (stop_) return;
    LoopTask* task = active_[rr_++ % active_.size()];
    ++task->in_flight;
    lock.unlock();
    work_on(*task, slot);
    lock.lock();
    --task->in_flight;
    // All of this task's chunks have been handed out: retire it so idle
    // workers stop spinning on it.  Completion is signalled to the
    // submitter once the last participant leaves.
    if (const auto it = std::find(active_.begin(), active_.end(), task); it != active_.end())
      active_.erase(it);
    if (task->in_flight == 0) cv_done_.notify_all();
  }
}

double TaskPool::PoolStats::busy_max() const {
  double m = 0;
  for (double b : busy_s) m = std::max(m, b);
  return m;
}

double TaskPool::PoolStats::busy_mean() const {
  if (busy_s.empty()) return 0;
  double sum = 0;
  for (double b : busy_s) sum += b;
  return sum / static_cast<double>(busy_s.size());
}

double TaskPool::PoolStats::imbalance() const {
  const double mean = busy_mean();
  return mean > 0 ? busy_max() / mean : 0;
}

TaskPool::PoolStats TaskPool::stats() const {
  PoolStats s;
  s.loops = loops_.load(std::memory_order_relaxed);
  s.busy_s.resize(slot_counters_.size());
  for (std::size_t i = 0; i < slot_counters_.size(); ++i) {
    const auto& sc = slot_counters_[i];
    s.chunks += sc.chunks.load(std::memory_order_relaxed);
    s.steals += sc.steals.load(std::memory_order_relaxed);
    s.busy_s[i] = static_cast<double>(sc.busy_ns.load(std::memory_order_relaxed)) * 1e-9;
  }
  s.elapsed_s = std::chrono::duration_cast<std::chrono::duration<double>>(
                    std::chrono::steady_clock::now() - stats_start_)
                    .count();
  return s;
}

void TaskPool::reset_stats() {
  loops_.store(0, std::memory_order_relaxed);
  for (auto& sc : slot_counters_) {
    sc.chunks.store(0, std::memory_order_relaxed);
    sc.steals.store(0, std::memory_order_relaxed);
    sc.busy_ns.store(0, std::memory_order_relaxed);
  }
  stats_start_ = std::chrono::steady_clock::now();
}

TaskPool& TaskPool::global() {
  static TaskPool pool(0);  // thread-safe magic static: no double-store race
  return pool;
}

}  // namespace greem
