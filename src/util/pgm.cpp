#include "util/pgm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>

namespace greem {
namespace {

bool write_bytes(const std::string& path, std::size_t w, std::size_t h,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P5\n" << w << " " << h << "\n255\n";
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

}  // namespace

bool GrayImage::write_pgm_log(const std::string& path, double v_scale) const {
  std::vector<std::uint8_t> bytes(width_ * height_, 0);
  double maxv = 0;
  for (double p : pixels_) maxv = std::max(maxv, std::log1p(p / v_scale));
  if (maxv <= 0) maxv = 1;
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    double v = std::log1p(pixels_[i] / v_scale) / maxv;
    bytes[i] = static_cast<std::uint8_t>(std::clamp(v, 0.0, 1.0) * 255.0);
  }
  return write_bytes(path, width_, height_, bytes);
}

bool GrayImage::write_pgm_linear(const std::string& path, double lo, double hi) const {
  std::vector<std::uint8_t> bytes(width_ * height_, 0);
  double span = hi > lo ? hi - lo : 1.0;
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    double v = (pixels_[i] - lo) / span;
    bytes[i] = static_cast<std::uint8_t>(std::clamp(v, 0.0, 1.0) * 255.0);
  }
  return write_bytes(path, width_, height_, bytes);
}

}  // namespace greem
