#pragma once
// Minimal grayscale image writer (binary PGM).  Used to render the density
// projections of the paper's Figure 6 without any imaging dependency.

#include <cstddef>
#include <string>
#include <vector>

namespace greem {

/// A row-major grayscale image with double-valued pixels.
class GrayImage {
 public:
  GrayImage(std::size_t width, std::size_t height)
      : width_(width), height_(height), pixels_(width * height, 0.0) {}

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  double& at(std::size_t x, std::size_t y) { return pixels_[y * width_ + x]; }
  double at(std::size_t x, std::size_t y) const { return pixels_[y * width_ + x]; }

  /// Write as 8-bit binary PGM.  Pixel values are mapped through
  /// log(1 + v/v_scale) and normalized to the image maximum, which is the
  /// conventional rendering for projected dark-matter density.
  /// Returns false on I/O failure.
  bool write_pgm_log(const std::string& path, double v_scale = 1.0) const;

  /// Write with linear mapping to [0,255] over [lo, hi].
  bool write_pgm_linear(const std::string& path, double lo, double hi) const;

 private:
  std::size_t width_, height_;
  std::vector<double> pixels_;
};

}  // namespace greem
