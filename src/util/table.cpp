#include "util/table.hpp"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace greem {

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) {
  assert(header_.empty() || cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int prec) {
  std::ostringstream os;
  os << std::setprecision(prec) << v;
  return os.str();
}

std::string TextTable::num(long long v) { return std::to_string(v); }

void TextTable::print(std::ostream& out) const {
  std::size_t ncol = header_.size();
  for (const auto& r : rows_) ncol = std::max(ncol, r.size());
  std::vector<std::size_t> w(ncol, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) w[i] = std::max(w[i], r[i].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      out << (i == 0 ? "" : "  ") << std::setw(static_cast<int>(w[i]))
          << (i == 0 ? std::left : std::right) << r[i];
      out << std::right;
    }
    out << "\n";
  };
  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < ncol; ++i) total += w[i] + (i ? 2 : 0);
    out << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) print_row(r);
}

}  // namespace greem
