#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace greem {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return s;
}

double rms(std::span<const double> values) {
  if (values.empty()) return 0;
  double s = 0;
  for (double v : values) s += v * v;
  return std::sqrt(s / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double idx = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(idx);
  auto hi = std::min(lo + 1, values.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace greem
