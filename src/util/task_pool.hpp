#pragma once
// Persistent work-stealing task pool: the intra-rank execution engine (the
// "OpenMP" half of the paper's MPI/OpenMP hybrid).
//
// Worker threads are created once, at pool construction, and reused across
// every parallel loop for the lifetime of the pool -- the per-call
// spawn/join of the old parallel_for made thread scaling saturate as soon
// as loop bodies got short (tree groups with small interaction lists, PM
// slabs).  The pool size is a *construction-time* property; the only way
// to change it is the explicit, quiescent resize() below, which replaces
// the racy load-then-store the old free-function API had.
//
// Scheduling: each loop is split into grain-sized chunks; the chunks are
// pre-partitioned into one contiguous block per participant (per-thread
// deques, packed into a single 64-bit word each).  A participant pops
// chunks from the *front* of its own block; when its block runs dry it
// steals from the *back* of the fullest remaining block.  Both ends move
// by compare-and-swap on the same word, so the scheme is lock-free and
// ABA-free (lo only grows, hi only shrinks).  This is dynamic scheduling
// with the locality of static chunking when the load happens to be even.
//
// Concurrency model: any thread may submit loops, concurrently (the parx
// runtime's ranks are themselves threads and call into the pool
// independently).  The submitting thread always participates in its own
// loop and only in its own loop; pool workers serve every active loop.
// A loop submitted from *inside* a pool worker (nesting) runs inline,
// serially, so nested parallelism cannot deadlock the pool.
//
// Determinism: the mapping of loop indices to chunks depends only on
// (begin, end, grain), never on the worker count or the steal pattern, so
// a body whose chunks write disjoint state produces bit-identical results
// for every pool size.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace greem {

class TaskPool {
 public:
  /// Loop body: called with contiguous [lo, hi) chunks.  `slot` identifies
  /// the executing participant, unique within this loop, in
  /// [0, max_slots()): 0 is the submitting thread, 1..workers are pool
  /// threads.  Use it to index per-thread scratch sized max_slots().
  using Body = std::function<void(std::size_t lo, std::size_t hi, unsigned slot)>;

  /// A pool with `threads` total participants: the submitting thread plus
  /// `threads - 1` persistent workers.  threads == 0 means one participant
  /// per hardware thread.
  explicit TaskPool(std::size_t threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total participants per loop (submitter + workers).
  std::size_t threads() const { return n_threads_; }

  /// Upper bound on the `slot` argument a Body can see, == threads().
  unsigned max_slots() const { return static_cast<unsigned>(n_threads_); }

  /// The documented resize path: waits for every in-flight loop to finish,
  /// joins all workers and respawns `threads - 1` new ones.  Safe to call
  /// concurrently with other resize() calls (serialized) and a no-op when
  /// the size already matches, but must not race with loop *submissions* --
  /// callers resize between phases, not during them.
  void resize(std::size_t threads);

  /// Run body over [begin, end) in grain-sized chunks, dynamically
  /// scheduled over the pool.  Blocks until every chunk has executed.
  /// Runs inline (single chunk, slot 0) when the pool has one participant,
  /// the range fits one grain, or the caller is itself a pool worker.
  void for_dynamic(std::size_t begin, std::size_t end, std::size_t grain,
                   const Body& body);

  /// Execution statistics accumulated since construction, the last
  /// reset_stats(), or the last resize() (resize rebuilds the per-slot
  /// counters, so it implies a reset).  Counters cover *pooled* loops
  /// only: the inline fast paths (single chunk, one-participant pool,
  /// nested submission from a worker) bypass the pool and are not
  /// counted.  Kept as plain atomics so util does not depend on the
  /// telemetry layer; callers export these into a metrics registry.
  struct PoolStats {
    std::uint64_t loops = 0;     ///< parallel loops dispatched to the pool
    std::uint64_t chunks = 0;    ///< chunks executed, all participants
    std::uint64_t steals = 0;    ///< chunks taken from another block
    double elapsed_s = 0;        ///< wall time this snapshot covers
    std::vector<double> busy_s;  ///< per-slot time spent inside loops

    double busy_max() const;
    double busy_mean() const;
    /// max/mean of per-slot busy time: 1.0 is perfectly balanced, larger
    /// means the busiest participant carried that factor more work than
    /// the average.  Returns 0 when the pool has done no work.
    double imbalance() const;
  };

  /// Snapshot of the counters.  Cheap (one relaxed load per counter);
  /// safe concurrently with running loops, but a snapshot taken mid-loop
  /// attributes that loop's completed chunks only.
  PoolStats stats() const;

  /// Zero all counters and restart the elapsed clock.  Counts from loops
  /// in flight during the call may straddle the boundary; reset between
  /// phases, not during them (same contract as resize()).
  void reset_stats();

  /// The process-wide pool used by the parallel_for free functions.
  /// Created on first use with one participant per hardware thread (or
  /// GREEM_THREADS if set).
  static TaskPool& global();

 private:
  struct LoopTask;

  // One cache line per participant so counter updates never false-share.
  struct alignas(64) SlotCounters {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  void spawn_workers();
  void join_workers();
  void worker_main(unsigned slot);
  void work_on(LoopTask& task, unsigned slot);

  std::size_t n_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;                      ///< guards active_, in_flight, stop_
  std::condition_variable cv_work_;    ///< workers wait for active loops
  std::condition_variable cv_done_;    ///< submitters wait for completion
  std::vector<LoopTask*> active_;
  std::size_t rr_ = 0;  ///< round-robin cursor over active loops
  bool stop_ = false;
  std::mutex resize_mu_;  ///< serializes resize() callers

  std::vector<SlotCounters> slot_counters_;  ///< indexed by slot
  std::atomic<std::uint64_t> loops_{0};
  std::chrono::steady_clock::time_point stats_start_;
};

}  // namespace greem
