#pragma once
// Fixed-width text table printer for benchmark output (the benches print
// the same rows as the paper's Table I and figure series).

#include <iosfwd>
#include <string>
#include <vector>

namespace greem {

class TextTable {
 public:
  /// Set the header row (also fixes the column count).
  void header(std::vector<std::string> cells);

  /// Append a data row; must match the header width.
  void row(std::vector<std::string> cells);

  /// Format a double with `prec` significant digits.
  static std::string num(double v, int prec = 4);
  /// Format an integer with thousands separators removed (plain).
  static std::string num(long long v);

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace greem
