#pragma once
// 3-D Morton (Z-order) codes.  The octree builder sorts particles by Morton
// key so that each tree node owns a contiguous particle range; this is the
// standard linearized-octree construction.

#include <cstdint>

#include "util/vec3.hpp"

namespace greem {

/// Bits of resolution per dimension (3*21 = 63 bits total).
inline constexpr int kMortonBits = 21;

/// Spread the low 21 bits of x so each lands at every third position.
std::uint64_t morton_expand_bits(std::uint64_t x);

/// Inverse of morton_expand_bits.
std::uint64_t morton_compact_bits(std::uint64_t x);

/// Morton key of integer cell coordinates (each < 2^21).
std::uint64_t morton_encode(std::uint64_t ix, std::uint64_t iy, std::uint64_t iz);

/// Recover the integer cell coordinates of a key.
void morton_decode(std::uint64_t key, std::uint64_t& ix, std::uint64_t& iy, std::uint64_t& iz);

/// Morton key of a position in the unit cube [0,1)^3 at full resolution.
std::uint64_t morton_key(const Vec3& p);

}  // namespace greem
