#pragma once
// Wall-clock timing utilities.
//
// `Stopwatch` measures a single interval.  `TimingBreakdown` accumulates
// named phase timings across a step; it is what produces the rows of the
// paper's Table I ("PM: density assignment / communication / FFT / ...").

#include <chrono>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace greem {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates per-phase wall-clock time under stable string keys.
/// Phases are reported in first-use order so breakdown tables read in
/// program order, like Table I of the paper.
class TimingBreakdown {
 public:
  /// Add `seconds` to phase `name` (created on first use).
  void add(std::string_view name, double seconds);

  /// Time a callable and charge it to `name`.
  template <class F>
  void time(std::string_view name, F&& f) {
    Stopwatch sw;
    std::forward<F>(f)();
    add(name, sw.seconds());
  }

  double total() const;
  double get(std::string_view name) const;  ///< 0 if the phase never ran.
  void clear();

  /// Merge another breakdown into this one (phase-wise sum).
  void merge(const TimingBreakdown& other);

  const std::vector<std::pair<std::string, double>>& entries() const { return entries_; }

 private:
  // Report order is first-use order (entries_); lookups go through the
  // index so add/get stay O(log n) instead of scanning every row -- the
  // hot loops charge phases once per cycle, but reports call get() per
  // row and that used to make aggregation quadratic in the table size.
  std::vector<std::pair<std::string, double>> entries_;
  std::map<std::string, std::size_t, std::less<>> index_;  ///< name -> entries_ slot
};

}  // namespace greem
