#pragma once
// Deterministic, splittable random number generation (xoshiro256**).
// Simulations must be reproducible across runs and independent of rank
// count, so every consumer derives its own stream from a seed + stream id.

#include <cstdint>

namespace greem {

/// xoshiro256** by Blackman & Vigna; fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (uses a cached second deviate).
  double normal();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace greem
