#include "util/morton.hpp"

#include <cmath>

namespace greem {

std::uint64_t morton_expand_bits(std::uint64_t x) {
  x &= 0x1fffffULL;  // 21 bits
  x = (x | (x << 32)) & 0x1f00000000ffffULL;
  x = (x | (x << 16)) & 0x1f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

std::uint64_t morton_compact_bits(std::uint64_t x) {
  x &= 0x1249249249249249ULL;
  x = (x ^ (x >> 2)) & 0x10c30c30c30c30c3ULL;
  x = (x ^ (x >> 4)) & 0x100f00f00f00f00fULL;
  x = (x ^ (x >> 8)) & 0x1f0000ff0000ffULL;
  x = (x ^ (x >> 16)) & 0x1f00000000ffffULL;
  x = (x ^ (x >> 32)) & 0x1fffffULL;
  return x;
}

std::uint64_t morton_encode(std::uint64_t ix, std::uint64_t iy, std::uint64_t iz) {
  return morton_expand_bits(ix) | (morton_expand_bits(iy) << 1) | (morton_expand_bits(iz) << 2);
}

void morton_decode(std::uint64_t key, std::uint64_t& ix, std::uint64_t& iy, std::uint64_t& iz) {
  ix = morton_compact_bits(key);
  iy = morton_compact_bits(key >> 1);
  iz = morton_compact_bits(key >> 2);
}

std::uint64_t morton_key(const Vec3& p) {
  const double scale = static_cast<double>(1ULL << kMortonBits);
  auto cell = [&](double v) {
    auto c = static_cast<std::int64_t>(wrap01(v) * scale);
    if (c >= (1LL << kMortonBits)) c = (1LL << kMortonBits) - 1;
    if (c < 0) c = 0;
    return static_cast<std::uint64_t>(c);
  };
  return morton_encode(cell(p.x), cell(p.y), cell(p.z));
}

}  // namespace greem
