#pragma once
// Axis-aligned rectangular domain in the periodic unit cube.
// Domains produced by the multi-section decomposition are half-open
// [lo, hi) boxes whose union tiles [0,1)^3.

#include <cmath>

#include "util/vec3.hpp"

namespace greem {

struct Box {
  Vec3 lo{0, 0, 0};
  Vec3 hi{1, 1, 1};

  Vec3 extent() const { return hi - lo; }
  Vec3 center() const { return (lo + hi) * 0.5; }
  double volume() const {
    const Vec3 e = extent();
    return e.x * e.y * e.z;
  }

  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y && p.z >= lo.z && p.z < hi.z;
  }

  /// Squared distance from p to this box under the periodic minimum image
  /// (box extents are assumed < 0.5 in practice; correct for any extent
  /// because the per-axis distance takes the shortest wrapped gap).
  double periodic_dist2(const Vec3& p) const {
    double d2 = 0;
    for (std::size_t a = 0; a < 3; ++a) {
      const double l = lo[a], h = hi[a], v = p[a];
      double d;
      if (v >= l && v < h) {
        d = 0;
      } else {
        // Distance to the interval, both directly and across the wrap.
        const double direct = v < l ? l - v : v - h;
        const double wrapped = v < l ? v + 1.0 - h : l + 1.0 - v;
        d = std::min(direct, wrapped);
      }
      d2 += d * d;
    }
    return d2;
  }
};

}  // namespace greem
