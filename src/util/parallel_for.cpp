#include "util/parallel_for.hpp"

#include <algorithm>

#include "util/task_pool.hpp"

namespace greem {

std::size_t num_threads() { return TaskPool::global().threads(); }

void set_num_threads(std::size_t n) { TaskPool::global().resize(n); }

unsigned max_parallel_slots() { return TaskPool::global().max_slots(); }

void parallel_for_dynamic(std::size_t begin, std::size_t end, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t, unsigned)>& f) {
  TaskPool::global().for_dynamic(begin, end, grain, f);
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& f) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t grain = (n + num_threads() - 1) / num_threads();
  TaskPool::global().for_dynamic(
      begin, end, grain, [&f](std::size_t lo, std::size_t hi, unsigned) { f(lo, hi); });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f) {
  if (begin >= end) return;
  // Fine enough to balance, coarse enough that chunk dispatch stays cheap.
  const std::size_t n = end - begin;
  const std::size_t grain = std::max<std::size_t>(1, n / (8 * num_threads()));
  TaskPool::global().for_dynamic(begin, end, grain,
                                 [&f](std::size_t lo, std::size_t hi, unsigned) {
                                   for (std::size_t i = lo; i < hi; ++i) f(i);
                                 });
}

}  // namespace greem
