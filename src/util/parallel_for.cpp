#include "util/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace greem {
namespace {

std::atomic<std::size_t> g_num_threads{0};  // 0 = uninitialized

std::size_t resolve_threads() {
  std::size_t n = g_num_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    g_num_threads.store(n, std::memory_order_relaxed);
  }
  return n;
}

}  // namespace

std::size_t num_threads() { return resolve_threads(); }

void set_num_threads(std::size_t n) { g_num_threads.store(std::max<std::size_t>(1, n)); }

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& f) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t nt = std::min(resolve_threads(), n);
  if (nt <= 1) {
    f(begin, end);
    return;
  }
  // Ranks in the message-passing runtime are themselves threads, so the
  // pool is created per call; chunk counts are tiny (= nt) so the spawn
  // cost is negligible against the loop bodies this is used for.
  std::vector<std::thread> workers;
  workers.reserve(nt - 1);
  const std::size_t chunk = (n + nt - 1) / nt;
  for (std::size_t t = 1; t < nt; ++t) {
    std::size_t lo = begin + t * chunk;
    std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([=, &f] { f(lo, hi); });
  }
  f(begin, std::min(end, begin + chunk));
  for (auto& w : workers) w.join();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f) {
  parallel_for_chunks(begin, end, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
  });
}

}  // namespace greem
