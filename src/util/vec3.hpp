#pragma once
// Small fixed-size 3-vector used for positions, velocities and accelerations.
// Header-only on purpose: every hot loop in the tree and kernel code inlines
// through these operators.

#include <array>
#include <cmath>
#include <cstddef>
#include <iosfwd>

namespace greem {

template <class T>
struct Vec3T {
  T x{}, y{}, z{};

  constexpr Vec3T() = default;
  constexpr Vec3T(T x_, T y_, T z_) : x(x_), y(y_), z(z_) {}
  explicit constexpr Vec3T(T s) : x(s), y(s), z(s) {}

  constexpr T& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr const T& operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3T& operator+=(const Vec3T& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3T& operator-=(const Vec3T& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3T& operator*=(T s) { x *= s; y *= s; z *= s; return *this; }
  constexpr Vec3T& operator/=(T s) { x /= s; y /= s; z /= s; return *this; }

  friend constexpr Vec3T operator+(Vec3T a, const Vec3T& b) { return a += b; }
  friend constexpr Vec3T operator-(Vec3T a, const Vec3T& b) { return a -= b; }
  friend constexpr Vec3T operator*(Vec3T a, T s) { return a *= s; }
  friend constexpr Vec3T operator*(T s, Vec3T a) { return a *= s; }
  friend constexpr Vec3T operator/(Vec3T a, T s) { return a /= s; }
  friend constexpr Vec3T operator-(const Vec3T& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3T&, const Vec3T&) = default;

  constexpr T dot(const Vec3T& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr T norm2() const { return dot(*this); }
  T norm() const { return std::sqrt(norm2()); }

  constexpr T min_component() const { return std::min(x, std::min(y, z)); }
  constexpr T max_component() const { return std::max(x, std::max(y, z)); }
};

using Vec3 = Vec3T<double>;
using Vec3f = Vec3T<float>;

/// Wrap a coordinate into the periodic unit interval [0,1).
inline double wrap01(double v) {
  v -= std::floor(v);
  // floor can still return 1.0 for v = -eps due to rounding; clamp.
  return v < 1.0 ? v : 0.0;
}

/// Wrap a position into the periodic unit cube [0,1)^3.
inline Vec3 wrap01(Vec3 p) { return {wrap01(p.x), wrap01(p.y), wrap01(p.z)}; }

/// Minimum-image separation component in a unit periodic box: result in [-0.5, 0.5).
inline double min_image(double d) {
  if (d >= 0.5) return d - 1.0;
  if (d < -0.5) return d + 1.0;
  return d;
}

/// Minimum-image displacement b - a in the unit periodic box.
inline Vec3 min_image(const Vec3& a, const Vec3& b) {
  return {min_image(b.x - a.x), min_image(b.y - a.y), min_image(b.z - a.z)};
}

}  // namespace greem
