#pragma once
// Intra-rank thread parallelism (the "OpenMP" half of the paper's
// MPI/OpenMP hybrid).  A persistent pool executes index-range loops with
// static chunking; with one worker it degenerates to a plain loop.

#include <cstddef>
#include <functional>

namespace greem {

/// Number of worker threads used by parallel_for (default: hardware
/// concurrency, overridable via set_num_threads for experiments).
std::size_t num_threads();
void set_num_threads(std::size_t n);

/// Execute f(i) for i in [begin, end), split statically over the pool.
/// Safe to call when the pool has a single thread (runs inline).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f);

/// Execute f(chunk_begin, chunk_end) once per worker with a contiguous
/// range; lower overhead than per-index dispatch for hot loops.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& f);

}  // namespace greem
