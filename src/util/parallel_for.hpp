#pragma once
// Intra-rank thread parallelism (the "OpenMP" half of the paper's
// MPI/OpenMP hybrid).  These free functions are thin wrappers around the
// persistent work-stealing TaskPool (util/task_pool.hpp): threads are
// created once and reused, loops are dynamically chunked, and idle
// participants steal from the busiest deque.  With one worker everything
// degenerates to a plain inline loop.

#include <cstddef>
#include <functional>

namespace greem {

/// Number of loop participants used by the global pool (default: hardware
/// concurrency, or GREEM_THREADS).  set_num_threads resizes the pool
/// through the quiescent TaskPool::resize path; it waits for in-flight
/// loops to finish and must not race with concurrent loop submissions.
/// Setting the current size is a no-op, so concurrent identical settings
/// (e.g. every parx rank-thread applying the same config) are safe.
std::size_t num_threads();
void set_num_threads(std::size_t n);

/// Upper bound (== num_threads()) on the `slot` argument passed to
/// parallel_for_dynamic bodies; size per-thread scratch with this.
unsigned max_parallel_slots();

/// Execute f(i) for i in [begin, end), dynamically scheduled over the pool.
/// Safe to call when the pool has a single thread (runs inline).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& f);

/// Execute f(chunk_begin, chunk_end) over contiguous chunks that partition
/// [begin, end); lower overhead than per-index dispatch for hot loops.
/// Chunk boundaries depend only on the range and the pool size.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& f);

/// The full-control form: grain-sized chunks, dynamically scheduled with
/// stealing, and the executing participant's slot for scratch reuse.
/// Chunk boundaries depend only on (begin, end, grain) -- never on the
/// pool size -- so disjoint-write bodies are bitwise deterministic across
/// thread counts.
void parallel_for_dynamic(std::size_t begin, std::size_t end, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t, unsigned)>& f);

}  // namespace greem
