#include "util/hash.hpp"

#include <array>

namespace greem::util {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = make_crc_table();
  return table;
}

}  // namespace

void Crc32::update(const void* data, std::size_t n) {
  const auto& table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  state_ = c;
}

std::uint32_t crc32(const void* data, std::size_t n) {
  Crc32 c;
  c.update(data, n);
  return c.value();
}

std::uint32_t crc32(std::span<const std::byte> data) {
  return crc32(data.data(), data.size());
}

}  // namespace greem::util
