#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace greem {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Seed the four state words from splitmix64 as recommended by the authors;
  // mixing the stream id into the seed gives independent streams.
  std::uint64_t sm = seed ^ (0x6a09e667f3bcc909ULL * (stream + 1));
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Rejection-free for our purposes: modulo bias is negligible for n << 2^64,
  // but use Lemire's method for exactness anyway.
  if (n == 0) return 0;
  __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace greem
