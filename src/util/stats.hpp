#pragma once
// Summary statistics helpers used in benchmarks and load-balance reports.

#include <cstddef>
#include <span>
#include <vector>

namespace greem {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;

  /// max / mean; 1.0 is a perfectly balanced distribution.  This is the
  /// load-imbalance figure reported by the domain-decomposition benchmark.
  double imbalance() const { return mean > 0 ? max / mean : 0.0; }
};

Summary summarize(std::span<const double> values);

/// Root-mean-square of values.
double rms(std::span<const double> values);

/// Percentile (0..100) by linear interpolation over the sorted values.
double percentile(std::vector<double> values, double p);

}  // namespace greem
