#pragma once
// Always-on, lock-free per-thread flight recorder.
//
// Each thread owns a bounded ring of the most recent events it produced:
// finished spans (mirrored from telemetry::Span), parx transport frame
// events (send/retransmit/deliver/recv/ack/drop with seq, byte count and
// causal flow id), and watchdog/sentinel marks.  Recording is a handful of
// relaxed atomic stores guarded by a per-slot seqlock -- no mutex, no
// allocation, no formatting -- so it stays armed in production runs and the
// last few thousand events per thread are always available for post-mortem
// inspection.
//
// dump_flight_recorder() freezes a best-effort snapshot (torn slots are
// skipped, not blocked on) into Chrome trace-format JSON on the same time
// base as trace.cpp, so a watchdog dump and an opt-in span trace line up
// in Perfetto.  Matched send/recv events additionally emit "s"/"f" flow
// events sharing the message's flow id, which Perfetto renders as arrows
// between rank tracks.
//
// The recorder is dumped automatically when the hang watchdog fires, the
// invariant sentinel trips, or fault recovery runs (see transport.cpp,
// parallel_sim.cpp, comm.cpp); those sites use the module-level dump path
// (set_flight_dump_path / $GREEM_FLIGHT_DUMP) and stay silent when none is
// configured.
//
// With GREEM_TELEMETRY=OFF everything collapses to inline no-ops.

#include <cstdint>
#include <string>

#include "telemetry/telemetry.hpp"  // GREEM_TELEMETRY_ENABLED

namespace greem::telemetry {

/// Transport frame event kinds recorded by parx (docs/observability.md).
enum class FrameEventKind : std::uint8_t {
  kSend = 0,    ///< logical message stamped and handed to a path (tx side)
  kRetransmit,  ///< reliable-transport retransmission attempt
  kDeliver,     ///< frame accepted in order into the destination mailbox
  kRecv,        ///< message matched to a receive on the destination rank
  kAck,         ///< cumulative ack retired this frame at the sender
  kDrop,        ///< lossy link dropped the frame in flight
};

/// Events a single thread's ring holds; older events are overwritten.
inline constexpr std::size_t kFlightRingCapacity = 4096;

#if GREEM_TELEMETRY_ENABLED

/// Process-unique id stamped on a message at send time so its send and
/// recv events pair up as one Perfetto flow.  Never returns 0 (0 means
/// "unstamped").
std::uint64_t next_flow_id();

/// Record a finished span (called by Span::finish; `name` must have static
/// storage duration).
void flight_record_span(const char* name, std::int64_t ts_ns, std::int64_t dur_ns);

/// Record a transport frame event.  `seq` is the reliable-transport
/// sequence number (0 on the zero-copy fast path), `flow` the causal id
/// stamped at send time.
void flight_record_frame(FrameEventKind kind, int src_world, int dst_world,
                         std::uint64_t seq, std::uint64_t bytes, std::uint64_t flow);

/// Record an instant mark ("watchdog/fired", "sentinel/violation", ...).
/// `name` must have static storage duration; a/b are free-form integer
/// arguments preserved into the dump (typically rank and peer).
void flight_record_mark(const char* name, std::int64_t a = 0, std::int64_t b = 0);

/// Disarm/re-arm recording at runtime (armed by default).  Used by the
/// bench_step overhead probe to measure the armed-vs-disarmed delta; a
/// disarmed recorder keeps its rings.
void set_flight_recorder_enabled(bool on);
bool flight_recorder_enabled();

/// Module-level dump path used by the automatic triggers (watchdog,
/// sentinel, fault recovery) and the no-argument dump.  Empty (the
/// default) disables automatic dumps; initialised from $GREEM_FLIGHT_DUMP
/// when set.
void set_flight_dump_path(std::string path);
std::string flight_dump_path();

/// Total events recorded so far across all threads, including ones the
/// rings have since overwritten.
std::uint64_t flight_event_count();

/// Drop all buffered events (rings stay registered, count resets).
void clear_flight_recorder();

/// Snapshot every thread's ring into Chrome trace-format JSON at `path`.
/// Returns false on I/O failure.  Safe to call while other threads record;
/// slots being written during the snapshot are skipped.
bool dump_flight_recorder(const std::string& path);

/// Dump to the module-level path; false (and no I/O) when none configured.
bool dump_flight_recorder();

#else

inline std::uint64_t next_flow_id() { return 0; }
inline void flight_record_span(const char*, std::int64_t, std::int64_t) {}
inline void flight_record_frame(FrameEventKind, int, int, std::uint64_t, std::uint64_t,
                                std::uint64_t) {}
inline void flight_record_mark(const char*, std::int64_t = 0, std::int64_t = 0) {}
inline void set_flight_recorder_enabled(bool) {}
inline bool flight_recorder_enabled() { return false; }
inline void set_flight_dump_path(std::string) {}
inline std::string flight_dump_path() { return {}; }
inline std::uint64_t flight_event_count() { return 0; }
inline void clear_flight_recorder() {}
inline bool dump_flight_recorder(const std::string&) { return false; }
inline bool dump_flight_recorder() { return false; }

#endif  // GREEM_TELEMETRY_ENABLED

}  // namespace greem::telemetry
