#include "telemetry/trace.hpp"

#if GREEM_TELEMETRY_ENABLED

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"

namespace greem::telemetry {
namespace {

struct TraceEvent {
  const char* name;
  std::int64_t ts_ns;
  std::int64_t dur_ns;
  int pid;
  int tid;
};

/// Per-thread buffer cap; beyond it spans are counted as dropped rather
/// than growing without bound (a 2-step sim records a few thousand spans;
/// the cap only matters for runaway loops).
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct ThreadBuffer {
  std::mutex mu;  ///< uncontended on push; contended only during flush
  std::vector<TraceEvent> events;
  int tid = 0;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 0;
  std::atomic<std::uint64_t> recorded{0};
  std::atomic<std::uint64_t> dropped{0};
};

TraceState& state() {
  static TraceState s;
  return s;
}

thread_local int tl_pid = kHostTrack;
thread_local std::shared_ptr<ThreadBuffer> tl_buf;

ThreadBuffer& my_buffer() {
  if (!tl_buf) {
    tl_buf = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard lock(s.mu);
    tl_buf->tid = s.next_tid++;
    s.buffers.push_back(tl_buf);
  }
  return *tl_buf;
}

}  // namespace

int set_trace_rank(int r) {
  const int prev = tl_pid;
  tl_pid = r;
  return prev;
}

int current_trace_rank() { return tl_pid; }

std::int64_t trace_now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch).count();
}

std::int64_t Span::now_ns() { return trace_now_ns(); }

void Span::finish() {
  const std::int64_t end_ns = now_ns();
  flight_record_span(name_, start_ns_, end_ns - start_ns_);
  ThreadBuffer& buf = my_buffer();
  std::lock_guard lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    state().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back({name_, start_ns_, end_ns - start_ns_, tl_pid, buf.tid});
  state().recorded.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t trace_event_count() {
  return state().recorded.load(std::memory_order_relaxed);
}

std::uint64_t trace_dropped_count() {
  return state().dropped.load(std::memory_order_relaxed);
}

bool write_chrome_trace(const std::string& path) {
  std::vector<TraceEvent> all;
  {
    TraceState& s = state();
    std::lock_guard lock(s.mu);
    for (const auto& buf : s.buffers) {
      std::lock_guard block(buf->mu);
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });

  std::ofstream os(path);
  if (!os) return false;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  // Track-name metadata: one process row per rank plus the host row.
  std::vector<int> pids;
  for (const TraceEvent& e : all)
    if (std::find(pids.begin(), pids.end(), e.pid) == pids.end()) pids.push_back(e.pid);
  std::sort(pids.begin(), pids.end());
  for (const int pid : pids) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("process_name");
    w.key("pid").value(static_cast<std::int64_t>(pid));
    w.key("args").begin_object();
    w.key("name").value(pid == kHostTrack ? std::string("host")
                                          : "rank " + std::to_string(pid));
    w.end_object();
    w.end_object();
  }
  for (const TraceEvent& e : all) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("greem");
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(e.ts_ns) * 1e-3);   // microseconds
    w.key("dur").value(static_cast<double>(e.dur_ns) * 1e-3);
    w.key("pid").value(static_cast<std::int64_t>(e.pid));
    w.key("tid").value(static_cast<std::int64_t>(e.tid));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return static_cast<bool>(os);
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard lock(s.mu);
  for (const auto& buf : s.buffers) {
    std::lock_guard block(buf->mu);
    buf->events.clear();
  }
  s.recorded.store(0, std::memory_order_relaxed);
  s.dropped.store(0, std::memory_order_relaxed);
}

}  // namespace greem::telemetry

#endif  // GREEM_TELEMETRY_ENABLED
