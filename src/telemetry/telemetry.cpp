#include "telemetry/telemetry.hpp"

#if GREEM_TELEMETRY_ENABLED

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <mutex>

namespace greem::telemetry {

// ---------------------------------------------------------- Histogram ----

int Histogram::bin_of(double v) {
  if (!(v > 0.0)) return 0;  // zero, negative, NaN -> underflow bin
  const double l = std::log2(v) - kMinExp2;
  if (l < 0) return 0;
  const int b = 1 + static_cast<int>(l * kBinsPerOctave);
  return b >= kBins ? kBins - 1 : b;
}

double Histogram::bin_center(int b) {
  if (b <= 0) return 0.0;
  // Geometric midpoint of bin b's [lo, hi) value range.
  const double exp2lo = kMinExp2 + static_cast<double>(b - 1) / kBinsPerOctave;
  return std::exp2(exp2lo + 0.5 / kBinsPerOctave);
}

void Histogram::record(double v) {
  bins_[bin_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(n - 1);
  std::uint64_t below = 0;
  for (int b = 0; b < kBins; ++b) {
    below += bins_[b].load(std::memory_order_relaxed);
    if (static_cast<double>(below) > rank) return bin_center(b);
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ----------------------------------------------------------- Registry ----

struct Registry::Impl {
  mutable std::mutex mu;
  // Deques give stable element addresses across growth; the maps index by
  // name (std::less<> enables string_view lookup without allocation).
  std::deque<std::pair<std::string, Counter>> counters;
  std::deque<std::pair<std::string, Gauge>> gauges;
  std::deque<std::pair<std::string, Histogram>> histograms;
  std::map<std::string, Counter*, std::less<>> counter_by_name;
  std::map<std::string, Gauge*, std::less<>> gauge_by_name;
  std::map<std::string, Histogram*, std::less<>> histogram_by_name;

  template <class T>
  T& get(std::deque<std::pair<std::string, T>>& store,
         std::map<std::string, T*, std::less<>>& index, std::string_view name) {
    std::lock_guard lock(mu);
    if (auto it = index.find(name); it != index.end()) return *it->second;
    // piecewise: Counter/Gauge/Histogram hold atomics and cannot be moved.
    auto& slot = store.emplace_back(std::piecewise_construct,
                                    std::forward_as_tuple(name), std::forward_as_tuple());
    index.emplace(slot.first, &slot.second);
    return slot.second;
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  return impl_->get(impl_->counters, impl_->counter_by_name, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return impl_->get(impl_->gauges, impl_->gauge_by_name, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return impl_->get(impl_->histograms, impl_->histogram_by_name, name);
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard lock(impl_->mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters) out.emplace_back(name, c.value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard lock(impl_->mu);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges) out.emplace_back(name, g.value());
  return out;
}

std::vector<std::string> Registry::histogram_names() const {
  std::lock_guard lock(impl_->mu);
  std::vector<std::string> out;
  out.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) out.push_back(name);
  return out;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  std::lock_guard lock(impl_->mu);
  const auto it = impl_->histogram_by_name.find(name);
  return it == impl_->histogram_by_name.end() ? nullptr : it->second;
}

void Registry::reset() {
  std::lock_guard lock(impl_->mu);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->histograms) h.reset();
}

}  // namespace greem::telemetry

#endif  // GREEM_TELEMETRY_ENABLED
