#pragma once
// Streaming JSON writer shared by every machine-readable artifact the
// repository emits: the BENCH_*.json files, the per-step JSONL StepReport
// and the Chrome trace file.  Handles escaping, comma placement and
// (optional) indentation so emitters never hand-format JSON again.
//
// Also defines RunMeta, the common metadata envelope (git sha, build
// type, kernel variant, pool threads, timestamp) every bench artifact
// carries so results remain attributable after the fact.
//
// Always compiled -- this is plain I/O, used even when the telemetry
// instrumentation layer is disabled.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace greem::telemetry {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

/// Structural streaming writer.  Call sequence is validated only by the
/// reader: the writer trusts begin/end pairing.  pretty=true indents with
/// two spaces; pretty=false emits one compact line (JSONL-friendly).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool pretty = true) : os_(os), pretty_(pretty) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Like value(double) but with full round-trip precision (%.17g): the
  /// printed text re-parses (strtod) to the identical bit pattern.  Used
  /// where exactness is state, not presentation -- checkpoint manifests.
  JsonWriter& value_exact(double v);
  JsonWriter& field_exact(std::string_view k, double v) {
    key(k);
    return value_exact(v);
  }
  template <class T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>)
      return value_int(static_cast<std::int64_t>(v));
    else
      return value_uint(static_cast<std::uint64_t>(v));
  }

  /// key + value in one call.
  template <class T>
  JsonWriter& field(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  JsonWriter& value_int(std::int64_t v);
  JsonWriter& value_uint(std::uint64_t v);
  void before_item();  ///< comma/newline/indent bookkeeping
  void newline_indent();

  std::ostream& os_;
  bool pretty_;
  // Per-nesting-level state: whether any item was emitted at this level.
  std::vector<bool> has_item_{false};
  bool pending_key_ = false;
};

/// The metadata envelope shared by BENCH_kernel.json, BENCH_scaling.json
/// and BENCH_step.json, so every artifact records the code and machine
/// configuration that produced it.
struct RunMeta {
  std::string bench;       ///< artifact name ("kernel", "scaling", "step")
  std::string kernel;      ///< phantom variant in use (caller supplies)
  std::string git_sha;     ///< short sha of the built tree ("unknown" outside git)
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::size_t pool_threads = 0;
  bool telemetry = false;  ///< GREEM_TELEMETRY state of this build
  std::string timestamp;   ///< UTC, ISO 8601

  /// Fill everything derivable from the build/process; `kernel` is passed
  /// through because telemetry does not depend on the pp library.
  static RunMeta collect(std::string bench, std::string kernel);
};

/// Emit `"meta": { ... }` (the writer must be inside an object).
void write_meta(JsonWriter& w, const RunMeta& m);

}  // namespace greem::telemetry
