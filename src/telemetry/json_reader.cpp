#include "telemetry/json_reader.hpp"

#include <cmath>
#include <cstdlib>

namespace greem::telemetry {
namespace {

constexpr int kMaxDepth = 64;

const std::string kEmptyString;
const std::vector<JsonValue> kEmptyArray;
const std::vector<std::pair<std::string, JsonValue>> kEmptyObject;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    if (at_end() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool consume_word(std::string_view w) {
    if (text.substr(pos, w.size()) != w) return false;
    pos += w.size();
    return true;
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (at_end()) return std::nullopt;
    switch (peek()) {
      case 'n': return consume_word("null") ? std::optional(JsonValue::null()) : std::nullopt;
      case 't': return consume_word("true") ? std::optional(JsonValue::boolean(true)) : std::nullopt;
      case 'f':
        return consume_word("false") ? std::optional(JsonValue::boolean(false)) : std::nullopt;
      case '"': return parse_string_value();
      case '[': return parse_array(depth);
      case '{': return parse_object(depth);
      default: return parse_number();
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (!at_end()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;  // raw control char
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return std::nullopt;
      const char e = text[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode the BMP code point (the writer only escapes
          // control characters, so surrogate pairs do not occur).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_string_value() {
    auto s = parse_string();
    if (!s) return std::nullopt;
    return JsonValue::string(std::move(*s));
  }

  std::optional<JsonValue> parse_number() {
    // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // (no leading '+', no leading zeros, no bare '.').
    const std::size_t start = pos;
    consume('-');
    if (at_end()) return std::nullopt;
    if (peek() == '0') {
      ++pos;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    } else {
      return std::nullopt;
    }
    if (!at_end() && peek() == '.') {
      ++pos;
      if (at_end() || peek() < '0' || peek() > '9') return std::nullopt;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '-' || peek() == '+')) ++pos;
      if (at_end() || peek() < '0' || peek() > '9') return std::nullopt;
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    }
    // strtod needs a NUL-terminated buffer; the token is short.
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return JsonValue::number(v);
  }

  std::optional<JsonValue> parse_array(int depth) {
    consume('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::array(std::move(items));
    for (;;) {
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return JsonValue::array(std::move(items));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_object(int depth) {
    consume('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (consume('}')) return JsonValue::object(std::move(members));
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return JsonValue::object(std::move(members));
      if (!consume(',')) return std::nullopt;
    }
  }
};

}  // namespace

std::int64_t JsonValue::as_i64(std::int64_t fallback) const {
  if (!is_number() || !std::isfinite(num_)) return fallback;
  return static_cast<std::int64_t>(num_);
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (!is_number() || !std::isfinite(num_) || num_ < 0) return fallback;
  return static_cast<std::uint64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  return is_string() ? str_ : kEmptyString;
}

const std::vector<JsonValue>& JsonValue::items() const {
  return is_array() ? arr_ : kEmptyArray;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  return is_object() ? obj_ : kEmptyObject;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_double(fallback) : fallback;
}

std::uint64_t JsonValue::u64_or(std::string_view key, std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_u64(fallback) : fallback;
}

std::string JsonValue::string_or(std::string_view key, std::string fallback) const {
  const JsonValue* v = find(key);
  return v && v->is_string() ? v->as_string() : std::move(fallback);
}

JsonValue JsonValue::null() { return JsonValue{}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::move(members);
  return v;
}

std::optional<JsonValue> parse_json(std::string_view text) {
  Parser p{text};
  auto v = p.parse_value(0);
  if (!v) return std::nullopt;
  p.skip_ws();
  if (!p.at_end()) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace greem::telemetry
