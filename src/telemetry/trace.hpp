#pragma once
// Low-overhead span tracer emitting Chrome trace-format JSON.
//
// A Span is an RAII scope; its constructor takes one steady-clock sample
// and its destructor pushes a complete ("ph":"X") event into a lock-free
// thread-local buffer -- no allocation, no locking, no formatting on the
// hot path.  write_chrome_trace() flushes every thread's buffer into a
// file that chrome://tracing and https://ui.perfetto.dev load directly.
//
// Track identity: each event carries (pid, tid).  parx rank threads call
// set_trace_rank(r) so their spans land on a per-rank track ("rank r"
// process row in Perfetto); other threads default to the host track
// (pid kHostTrack).  tids are assigned per OS thread in registration
// order.
//
// Span names must be string literals (or otherwise outlive the tracer):
// only the pointer is stored.
//
// With GREEM_TELEMETRY=OFF everything here is an empty inline no-op.

#include <cstdint>
#include <string>

#include "telemetry/telemetry.hpp"  // GREEM_TELEMETRY_ENABLED

namespace greem::telemetry {

/// pid used for spans recorded outside any parx rank.
inline constexpr int kHostTrack = -1;

#if GREEM_TELEMETRY_ENABLED

/// Route this thread's subsequent spans to the track of world rank `r`
/// (kHostTrack restores the default).  Returns the previous setting so
/// scoped users can restore it.
int set_trace_rank(int r);

/// The rank track this thread currently records to (kHostTrack outside
/// parx rank threads).
int current_trace_rank();

/// Nanoseconds since the process-wide trace epoch -- the time base of
/// every span, frame event and flight-recorder dump, so artifacts from
/// different subsystems line up in Perfetto.
std::int64_t trace_now_ns();

/// RAII complete-event span.  `name` must have static storage duration.
class Span {
 public:
  explicit Span(const char* name) : name_(name), start_ns_(now_ns()) {}
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Close the span early (destructor becomes a no-op).
  void end() {
    if (name_) finish();
    name_ = nullptr;
  }

 private:
  static std::int64_t now_ns();
  void finish();

  const char* name_;
  std::int64_t start_ns_;
};

/// Total spans recorded so far across all threads (drops excluded).
std::uint64_t trace_event_count();

/// Spans dropped because a thread buffer hit its cap (kMaxEventsPerThread).
std::uint64_t trace_dropped_count();

/// Write every recorded span as Chrome trace-format JSON ({"traceEvents":
/// [...]}) to `path`.  Returns false on I/O failure.  Spans still open are
/// not included.  Safe to call while other threads record (events pushed
/// concurrently may land in this file or the next).
bool write_chrome_trace(const std::string& path);

/// Discard all recorded spans (thread buffers stay registered).
void clear_trace();

#else

inline int set_trace_rank(int) { return kHostTrack; }
inline int current_trace_rank() { return kHostTrack; }
inline std::int64_t trace_now_ns() { return 0; }

class Span {
 public:
  explicit Span(const char*) {}
  void end() {}
};

inline std::uint64_t trace_event_count() { return 0; }
inline std::uint64_t trace_dropped_count() { return 0; }
inline bool write_chrome_trace(const std::string&) { return false; }
inline void clear_trace() {}

#endif  // GREEM_TELEMETRY_ENABLED

}  // namespace greem::telemetry
