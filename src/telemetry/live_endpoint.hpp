#pragma once
// Live introspection endpoint: a tiny per-process TCP server (loopback
// only) streaming newline-delimited JSON to connected clients -- the
// transport of the "simulation as a service" job-control protocol
// (docs/service.md) and of the plain per-run step stream.
//
// Protocol (one JSON document per line, both directions):
//   server -> client on connect:  {"type":"hello","proto":N,...} then a
//                                 metrics snapshot line.  `proto` is the
//                                 protocol version; clients must ignore
//                                 unknown fields and unknown line types,
//                                 so reconnecting against a newer server
//                                 stays safe (proto 1 had no field).
//   server -> client streamed:    whatever publish() is handed -- per-step
//                                 StepReport records (parallel_sim),
//                                 watchdog / sentinel / recovery events.
//                                 publish_topic() lines go only to the
//                                 clients subscribed to that topic (the
//                                 per-job `watch` streams).
//   client -> server commands:    one command per line.  "metrics"
//                                 requests a fresh metrics snapshot line;
//                                 every other non-empty line goes to the
//                                 installed command handler (the svc
//                                 job-control grammar) and is otherwise
//                                 ignored.
//
// The server is passive with respect to the simulation: publish() writes
// to whoever is connected and drops clients whose sockets fail or
// disconnect (every removal except stop() counts in
// telemetry/live/clients_dropped, so a flapping watcher is visible);
// nothing blocks the step loop beyond a bounded send (1s SO_SNDTIMEO).
//
// Always compiled (plain sockets + JSON, like JsonWriter); under
// GREEM_TELEMETRY=OFF the metrics snapshot is simply empty.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace greem::telemetry {

/// Wire protocol version advertised in the hello line.  2 added the
/// `proto` field itself, topic subscriptions and the command handler.
inline constexpr int kLiveProtoVersion = 2;

/// One JSON document: {"type":"metrics","counters":{...},"gauges":{...}}.
std::string metrics_snapshot_json();

class LiveEndpoint {
 public:
  /// Handles one client command line (anything but "metrics"); returns
  /// the response lines to send to that client.  Runs on the serve
  /// thread with no endpoint lock held, so it may call watch()/publish*
  /// but must not block for long.  `client` identifies the sender for
  /// watch(); ids are unique for the lifetime of the endpoint.
  using CommandHandler =
      std::function<std::vector<std::string>(std::uint64_t client, std::string_view line)>;

  /// The process-wide endpoint publishers use (started on demand by
  /// whoever owns the process entry point; publish() on a non-running
  /// endpoint is a cheap no-op).
  static LiveEndpoint& global();

  LiveEndpoint() = default;
  ~LiveEndpoint();
  LiveEndpoint(const LiveEndpoint&) = delete;
  LiveEndpoint& operator=(const LiveEndpoint&) = delete;

  /// Listen on 127.0.0.1:`port` (0 picks an ephemeral port, see port()).
  /// Returns false if the socket could not be bound; already-running is
  /// a no-op returning true.
  bool start(int port = 0);
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after start() succeeded).
  int port() const { return port_; }
  std::size_t clients() const;
  std::uint64_t published() const { return published_.load(std::memory_order_relaxed); }

  /// Install (or clear, with nullptr) the command handler.
  void set_command_handler(CommandHandler handler);

  /// Subscribe `client` to `topic`: publish_topic(topic, ...) lines will
  /// be sent to it.  No-op when the client is gone.  Subscriptions are
  /// additive and live until the client disconnects.
  void watch(std::uint64_t client, std::string topic);

  /// Broadcast one JSON document (no trailing newline -- added here) to
  /// every connected client.  No-op when not running.
  void publish(std::string_view json_line);

  /// Send one JSON document only to the clients subscribed to `topic`
  /// via watch().  Counts toward published() like publish().
  void publish_topic(std::string_view topic, std::string_view json_line);

  /// Convenience: publish {"type":<type>,"detail":<detail>}.
  void publish_event(std::string_view type, std::string_view detail);

 private:
  struct Client {
    int fd = -1;
    std::uint64_t id = 0;
    std::string rxbuf;                ///< partial command line
    std::vector<std::string> topics;  ///< watch() subscriptions
  };

  void serve();
  void send_line(int fd, std::string_view line);  ///< callers hold mu_
  /// Send `line` to every client passing `want`; drops (and counts) the
  /// clients whose sockets fail.  Callers must not hold mu_.
  template <class Want>
  void publish_where(std::string_view line, Want&& want);
  void drop_client_locked(std::size_t index);  ///< callers hold mu_
  void handle_command(std::uint64_t client_id, std::string_view line);

  mutable std::mutex mu_;  ///< guards clients_ and all writes to them
  std::vector<Client> clients_;
  std::mutex handler_mu_;  ///< guards handler_
  CommandHandler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::uint64_t next_client_id_ = 1;  ///< guarded by mu_
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> published_{0};
  std::thread thread_;
};

}  // namespace greem::telemetry
