#pragma once
// Live introspection endpoint: a tiny per-process TCP server (loopback
// only) streaming newline-delimited JSON to connected clients -- the
// transport of the "simulation as a service" job-control protocol
// (docs/service.md) and of the plain per-run step stream.
//
// Protocol (one JSON document per line, both directions):
//   server -> client on connect:  {"type":"hello","proto":N,...} then a
//                                 metrics snapshot line.  `proto` is the
//                                 protocol version; clients must ignore
//                                 unknown fields and unknown line types,
//                                 so reconnecting against a newer server
//                                 stays safe (proto 1 had no field).
//   server -> client streamed:    whatever publish() is handed -- per-step
//                                 StepReport records (parallel_sim),
//                                 watchdog / sentinel / recovery events.
//                                 publish_topic() lines go only to the
//                                 clients subscribed to that topic (the
//                                 per-job `watch` streams).
//   client -> server commands:    one command per line.  "metrics"
//                                 requests a fresh metrics snapshot line;
//                                 every other non-empty line goes to the
//                                 installed command handler (the svc
//                                 job-control grammar) and is otherwise
//                                 ignored.
//
// Backpressure.  publish() never blocks on a client socket: every line is
// enqueued on a bounded per-client queue (set_max_queue) and the serve
// thread drains queues with nonblocking sends as sockets accept data.  A
// client that reads too slowly overflows its queue; the OLDEST queued
// line is dropped and counted, and the next line the client receives is a
// {"type":"dropped_records","dropped_records":N} notice covering the gap
// -- a wedged watcher degrades (loses old frames, knowingly) instead of
// losing its subscription.  Drops are also counted in
// telemetry/live/records_dropped.  Clients are only disconnected when
// their socket errors or they hang up; every removal except stop() counts
// in telemetry/live/clients_dropped, so a flapping watcher is visible.
//
// Always compiled (plain sockets + JSON, like JsonWriter); under
// GREEM_TELEMETRY=OFF the metrics snapshot is simply empty.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace greem::telemetry {

/// Wire protocol version advertised in the hello line.  2 added the
/// `proto` field itself, topic subscriptions and the command handler; 3
/// added bounded watch queues with "dropped_records" gap notices and the
/// drain command of the service protocol.
inline constexpr int kLiveProtoVersion = 3;

/// One JSON document: {"type":"metrics","counters":{...},"gauges":{...}}.
std::string metrics_snapshot_json();

class LiveEndpoint {
 public:
  /// Handles one client command line (anything but "metrics"); returns
  /// the response lines to send to that client.  Runs on the serve
  /// thread with no endpoint lock held, so it may call watch()/publish*
  /// but must not block for long.  `client` identifies the sender for
  /// watch(); ids are unique for the lifetime of the endpoint.
  using CommandHandler =
      std::function<std::vector<std::string>(std::uint64_t client, std::string_view line)>;

  /// The process-wide endpoint publishers use (started on demand by
  /// whoever owns the process entry point; publish() on a non-running
  /// endpoint is a cheap no-op).
  static LiveEndpoint& global();

  LiveEndpoint() = default;
  ~LiveEndpoint();
  LiveEndpoint(const LiveEndpoint&) = delete;
  LiveEndpoint& operator=(const LiveEndpoint&) = delete;

  /// Listen on 127.0.0.1:`port` (0 picks an ephemeral port, see port()).
  /// Returns false if the socket could not be bound; already-running is
  /// a no-op returning true.
  bool start(int port = 0);
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after start() succeeded).
  int port() const { return port_; }
  std::size_t clients() const;
  std::uint64_t published() const { return published_.load(std::memory_order_relaxed); }
  /// Lines dropped from slow clients' queues (process lifetime total).
  std::uint64_t records_dropped() const {
    return records_dropped_.load(std::memory_order_relaxed);
  }

  /// Bound on queued-but-unsent lines per client before the oldest is
  /// dropped (minimum 1; default 256).  Applies to subsequently enqueued
  /// lines; safe to call while running.
  void set_max_queue(std::size_t lines);

  /// Install (or clear, with nullptr) the command handler.
  void set_command_handler(CommandHandler handler);

  /// Subscribe `client` to `topic`: publish_topic(topic, ...) lines will
  /// be sent to it.  No-op when the client is gone.  Subscriptions are
  /// additive and live until the client disconnects.
  void watch(std::uint64_t client, std::string topic);

  /// Broadcast one JSON document (no trailing newline -- added here) to
  /// every connected client.  No-op when not running.  Never blocks on a
  /// client socket (see Backpressure above).
  void publish(std::string_view json_line);

  /// Send one JSON document only to the clients subscribed to `topic`
  /// via watch().  Counts toward published() like publish().
  void publish_topic(std::string_view topic, std::string_view json_line);

  /// Convenience: publish {"type":<type>,"detail":<detail>}.
  void publish_event(std::string_view type, std::string_view detail);

 private:
  struct Client {
    int fd = -1;
    std::uint64_t id = 0;
    std::string rxbuf;                ///< partial command line
    std::vector<std::string> topics;  ///< watch() subscriptions
    std::deque<std::string> outq;     ///< whole lines awaiting the socket
    std::uint64_t dropped = 0;        ///< lines dropped since the last notice
    std::string txbuf;                ///< line being sent (framing: never dropped)
    std::size_t txoff = 0;            ///< bytes of txbuf already sent
  };

  void serve();
  void wake();  ///< nudge the serve thread's poll
  /// Append one line to `c`'s queue, dropping the oldest on overflow.
  /// Callers hold mu_.
  void enqueue_locked(Client& c, std::string_view line);
  /// Nonblocking drain of `c`'s queue; false when the socket died.
  /// Callers hold mu_.
  bool flush_locked(Client& c);
  /// Enqueue `line` to every client passing `want`.  Callers must not
  /// hold mu_.
  template <class Want>
  void publish_where(std::string_view line, Want&& want);
  void drop_client_locked(std::size_t index);  ///< callers hold mu_
  void handle_command(std::uint64_t client_id, std::string_view line);

  mutable std::mutex mu_;  ///< guards clients_ and all queues
  std::vector<Client> clients_;
  std::mutex handler_mu_;  ///< guards handler_
  CommandHandler handler_;
  int listen_fd_ = -1;
  /// Self-pipe: publish -> poll wakeup.  Mutated (start/stop) and written
  /// to by wake() under mu_ so a publisher never races stop()'s close;
  /// the serve thread's reads are ordered by thread creation/join.
  int wake_fds_[2] = {-1, -1};
  int port_ = 0;
  std::uint64_t next_client_id_ = 1;        ///< guarded by mu_
  std::atomic<std::size_t> max_queue_{256};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> records_dropped_{0};
  std::thread thread_;
};

}  // namespace greem::telemetry
