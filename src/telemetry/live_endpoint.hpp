#pragma once
// Live introspection endpoint: a tiny per-process TCP server (loopback
// only) streaming newline-delimited JSON to connected clients -- the first
// brick of the "simulation as a service" roadmap item.
//
// Protocol (one JSON document per line, both directions):
//   server -> client on connect:  {"type":"hello",...} then a metrics
//                                 snapshot line
//   server -> client streamed:    whatever publish() is handed -- per-step
//                                 StepReport records (parallel_sim),
//                                 watchdog / sentinel / recovery events
//   client -> server commands:    "metrics\n" requests a fresh metrics
//                                 snapshot line; anything else is ignored
//
// The server is passive with respect to the simulation: publish() writes
// to whoever is connected and drops clients whose sockets fail; nothing
// blocks the step loop beyond a bounded send (1s SO_SNDTIMEO).
//
// Always compiled (plain sockets + JSON, like JsonWriter); under
// GREEM_TELEMETRY=OFF the metrics snapshot is simply empty.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace greem::telemetry {

/// One JSON document: {"type":"metrics","counters":{...},"gauges":{...}}.
std::string metrics_snapshot_json();

class LiveEndpoint {
 public:
  /// The process-wide endpoint publishers use (started on demand by
  /// whoever owns the process entry point; publish() on a non-running
  /// endpoint is a cheap no-op).
  static LiveEndpoint& global();

  LiveEndpoint() = default;
  ~LiveEndpoint();
  LiveEndpoint(const LiveEndpoint&) = delete;
  LiveEndpoint& operator=(const LiveEndpoint&) = delete;

  /// Listen on 127.0.0.1:`port` (0 picks an ephemeral port, see port()).
  /// Returns false if the socket could not be bound; already-running is
  /// a no-op returning true.
  bool start(int port = 0);
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after start() succeeded).
  int port() const { return port_; }
  std::size_t clients() const;
  std::uint64_t published() const { return published_.load(std::memory_order_relaxed); }

  /// Broadcast one JSON document (no trailing newline -- added here) to
  /// every connected client.  No-op when not running.
  void publish(std::string_view json_line);

  /// Convenience: publish {"type":<type>,"detail":<detail>}.
  void publish_event(std::string_view type, std::string_view detail);

 private:
  void serve();
  void send_line(int fd, std::string_view line);  ///< callers hold mu_

  mutable std::mutex mu_;  ///< guards clients_ and all writes to them
  std::vector<int> clients_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> published_{0};
  std::thread thread_;
};

}  // namespace greem::telemetry
