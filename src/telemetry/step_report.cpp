#include "telemetry/step_report.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

#include "telemetry/json.hpp"

namespace greem::telemetry {

namespace {

void write_breakdown(JsonWriter& w, std::string_view key, const TimingBreakdown& b) {
  w.key(key).begin_object();
  for (const auto& [name, seconds] : b.entries()) w.field(name, seconds);
  w.field("total", b.total());
  w.end_object();
}

}  // namespace

void write_jsonl(std::ostream& os, const StepRecord& r) {
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  if (!r.job.empty()) w.field("job", r.job);
  w.field("step", r.step);
  w.field("t", r.t);
  w.field("ranks", r.ranks);
  w.field("nsub", r.nsub);
  w.field("n_particles", r.n_particles);
  write_breakdown(w, "pm", r.pm);
  write_breakdown(w, "pp", r.pp);
  write_breakdown(w, "dd", r.dd);
  w.field("pp_seconds_max", r.pp_seconds_max);
  w.field("pp_seconds_mean", r.pp_seconds_mean);
  w.field("pp_imbalance", r.pp_imbalance());
  w.field("interactions", r.interactions);
  w.field("flops", r.flops);
  w.field("flop_rate", r.flop_rate);
  w.field("ghosts_imported", r.ghosts_imported);
  w.key("pool").begin_object();
  w.field("loops", r.pool_loops);
  w.field("chunks", r.pool_chunks);
  w.field("steals", r.pool_steals);
  w.field("imbalance", r.pool_imbalance);
  w.end_object();
  w.key("traffic").begin_object();
  for (const auto& ph : r.traffic) {
    w.key(ph.phase).begin_object();
    w.field("messages", ph.messages);
    w.field("bytes", ph.bytes);
    w.field("model_time_s", ph.model_time_s);
    w.end_object();
  }
  w.end_object();
  if (r.retransmits > 0 || r.transport_drops > 0 || r.corrupt_detected > 0) {
    w.key("transport").begin_object();
    w.field("retransmits", r.retransmits);
    w.field("drops", r.transport_drops);
    w.field("corrupt_detected", r.corrupt_detected);
    w.end_object();
  }
  w.key("overlap").begin_object();
  w.field("enabled", r.overlap_enabled);
  w.field("force_wall_seconds", r.force_wall_seconds);
  w.field("blocked_seconds", r.overlap_blocked_seconds);
  w.field("inflight_seconds", r.overlap_inflight_seconds);
  w.field("fraction", r.overlap_fraction);
  w.end_object();
  if (r.lb_predicted_imbalance > 0 || r.lb_donated_groups > 0) {
    w.key("lb").begin_object();
    w.field("predicted_imbalance", r.lb_predicted_imbalance);
    w.field("donated_groups", r.lb_donated_groups);
    w.field("donated_interactions", r.lb_donated_interactions);
    w.end_object();
  }
  if (!r.pp_groups.empty()) {
    w.key("pp_groups").begin_array();
    for (const auto& g : r.pp_groups) {
      w.begin_object();
      w.field("groups", g.groups);
      w.field("interactions", g.interactions);
      w.field("ghost_sources", g.ghost_sources);
      w.field("walk_s", g.walk_s);
      w.field("force_s", g.force_s);
      w.field("max_group_s", g.max_group_s);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  os << "\n";
}

bool append_jsonl_line(const std::string& path, std::string_view line, bool fsync) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  bool ok = true;
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  if (ok && fsync && ::fsync(fd) != 0) ok = false;
  ::close(fd);
  return ok;
}

}  // namespace greem::telemetry
