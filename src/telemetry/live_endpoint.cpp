#include "telemetry/live_endpoint.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace greem::telemetry {

std::string metrics_snapshot_json() {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("type", "metrics");
  w.key("counters").begin_object();
  for (const auto& [name, v] : Registry::global().counters()) w.field(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : Registry::global().gauges()) w.field(name, v);
  w.end_object();
  w.end_object();
  return os.str();
}

LiveEndpoint& LiveEndpoint::global() {
  static LiveEndpoint* e = new LiveEndpoint;  // leaked: outlives static teardown
  return *e;
}

LiveEndpoint::~LiveEndpoint() { stop(); }

bool LiveEndpoint::start(int port) {
  if (running()) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void LiveEndpoint::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::lock_guard lock(mu_);
  for (const int fd : clients_) ::close(fd);
  clients_.clear();
}

std::size_t LiveEndpoint::clients() const {
  std::lock_guard lock(mu_);
  return clients_.size();
}

void LiveEndpoint::send_line(int fd, std::string_view line) {
  std::string out(line);
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("client write failed");
    }
    off += static_cast<std::size_t>(n);
  }
}

void LiveEndpoint::publish(std::string_view json_line) {
  if (!running()) return;
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < clients_.size();) {
    try {
      send_line(clients_[i], json_line);
      ++i;
    } catch (const std::exception&) {
      ::close(clients_[i]);
      clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  published_.fetch_add(1, std::memory_order_relaxed);
}

void LiveEndpoint::publish_event(std::string_view type, std::string_view detail) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("type", type);
  w.field("detail", detail);
  w.end_object();
  publish(os.str());
}

void LiveEndpoint::serve() {
  while (running()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard lock(mu_);
      for (const int fd : clients_) fds.push_back({fd, POLLIN, 0});
    }
    const int n = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (n <= 0) continue;

    if (fds[0].revents & POLLIN) {
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd >= 0) {
        timeval tv{1, 0};  // bound publish() stalls on a wedged client
        ::setsockopt(cfd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::lock_guard lock(mu_);
        try {
          send_line(cfd, "{\"type\":\"hello\",\"service\":\"greem\",\"version\":1}");
          send_line(cfd, metrics_snapshot_json());
          clients_.push_back(cfd);
        } catch (const std::exception&) {
          ::close(cfd);
        }
      }
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      char buf[256];
      const ssize_t r = ::recv(fds[i].fd, buf, sizeof(buf) - 1, 0);
      std::lock_guard lock(mu_);
      const auto it = std::find(clients_.begin(), clients_.end(), fds[i].fd);
      if (it == clients_.end()) continue;
      if (r <= 0) {  // peer closed (or error): drop the client
        ::close(*it);
        clients_.erase(it);
        continue;
      }
      buf[r] = '\0';
      if (std::string_view(buf).find("metrics") != std::string_view::npos) {
        try {
          send_line(*it, metrics_snapshot_json());
        } catch (const std::exception&) {
          ::close(*it);
          clients_.erase(it);
        }
      }
    }
  }
}

}  // namespace greem::telemetry
