#include "telemetry/live_endpoint.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace greem::telemetry {

std::string metrics_snapshot_json() {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("type", "metrics");
  w.key("counters").begin_object();
  for (const auto& [name, v] : Registry::global().counters()) w.field(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : Registry::global().gauges()) w.field(name, v);
  w.end_object();
  w.end_object();
  return os.str();
}

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string dropped_notice_line(std::uint64_t dropped) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("type", "dropped_records");
  w.field("dropped_records", dropped);
  w.end_object();
  return os.str();
}

}  // namespace

LiveEndpoint& LiveEndpoint::global() {
  static LiveEndpoint* e = new LiveEndpoint;  // leaked: outlives static teardown
  return *e;
}

LiveEndpoint::~LiveEndpoint() { stop(); }

bool LiveEndpoint::start(int port) {
  if (running()) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return false;
  }
  int pfd[2];
  if (::pipe(pfd) != 0) {
    ::close(fd);
    return false;
  }
  set_nonblocking(pfd[0]);
  set_nonblocking(pfd[1]);
  {
    // wake_fds_ is read by wake() on publisher threads; publish under mu_
    // like every other mutation of it.
    std::lock_guard lock(mu_);
    wake_fds_[0] = pfd[0];
    wake_fds_[1] = pfd[1];
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void LiveEndpoint::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  wake();
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // The wake pipe is closed under mu_ and wake() writes under mu_, so a
  // publisher that passed the running() check can never write to a closed
  // (and possibly kernel-reused) fd.
  std::lock_guard lock(mu_);
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  for (const auto& c : clients_) ::close(c.fd);
  clients_.clear();
}

void LiveEndpoint::wake() {
  std::lock_guard lock(mu_);
  if (wake_fds_[1] < 0) return;
  const char b = 1;
  [[maybe_unused]] const ssize_t r = ::write(wake_fds_[1], &b, 1);  // EAGAIN = already pending
}

std::size_t LiveEndpoint::clients() const {
  std::lock_guard lock(mu_);
  return clients_.size();
}

void LiveEndpoint::set_max_queue(std::size_t lines) {
  max_queue_.store(std::max<std::size_t>(1, lines), std::memory_order_relaxed);
}

void LiveEndpoint::set_command_handler(CommandHandler handler) {
  std::lock_guard lock(handler_mu_);
  handler_ = std::move(handler);
}

void LiveEndpoint::watch(std::uint64_t client, std::string topic) {
  std::lock_guard lock(mu_);
  for (auto& c : clients_) {
    if (c.id != client) continue;
    if (std::find(c.topics.begin(), c.topics.end(), topic) == c.topics.end())
      c.topics.push_back(std::move(topic));
    return;
  }
}

void LiveEndpoint::enqueue_locked(Client& c, std::string_view line) {
  const std::size_t cap = max_queue_.load(std::memory_order_relaxed);
  while (c.outq.size() >= cap) {
    // Overflow policy: drop the OLDEST queued line (the in-flight txbuf is
    // never touched, so framing survives) and remember the gap; the next
    // flush surfaces it as a dropped_records notice before newer lines.
    c.outq.pop_front();
    ++c.dropped;
    records_dropped_.fetch_add(1, std::memory_order_relaxed);
    Registry::global().counter("telemetry/live/records_dropped").add();
  }
  c.outq.emplace_back(line);
}

bool LiveEndpoint::flush_locked(Client& c) {
  for (;;) {
    if (c.txoff == c.txbuf.size()) {
      c.txbuf.clear();
      c.txoff = 0;
      if (c.dropped > 0) {
        // Surface the gap in-stream before the next surviving line.
        c.txbuf = dropped_notice_line(c.dropped);
        c.txbuf.push_back('\n');
        c.dropped = 0;
      } else if (!c.outq.empty()) {
        c.txbuf = std::move(c.outq.front());
        c.outq.pop_front();
        c.txbuf.push_back('\n');
      } else {
        return true;  // drained
      }
    }
    const ssize_t n = ::send(c.fd, c.txbuf.data() + c.txoff, c.txbuf.size() - c.txoff,
                             MSG_NOSIGNAL);
    if (n > 0) {
      c.txoff += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;  // socket full
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer gone or hard error
  }
}

void LiveEndpoint::drop_client_locked(std::size_t index) {
  ::close(clients_[index].fd);
  clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(index));
  Registry::global().counter("telemetry/live/clients_dropped").add();
}

template <class Want>
void LiveEndpoint::publish_where(std::string_view line, Want&& want) {
  if (!running()) return;
  {
    std::lock_guard lock(mu_);
    for (auto& c : clients_)
      if (want(c)) enqueue_locked(c, line);
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  wake();  // the serve thread owns the sockets; get it flushing now
}

void LiveEndpoint::publish(std::string_view json_line) {
  publish_where(json_line, [](const Client&) { return true; });
}

void LiveEndpoint::publish_topic(std::string_view topic, std::string_view json_line) {
  publish_where(json_line, [&](const Client& c) {
    return std::find(c.topics.begin(), c.topics.end(), topic) != c.topics.end();
  });
}

void LiveEndpoint::publish_event(std::string_view type, std::string_view detail) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("type", type);
  w.field("detail", detail);
  w.end_object();
  publish(os.str());
}

void LiveEndpoint::handle_command(std::uint64_t client_id, std::string_view line) {
  // Trim surrounding whitespace/CR; ignore blank keep-alive lines.
  while (!line.empty() && (line.front() == ' ' || line.front() == '\r' || line.front() == '\t'))
    line.remove_prefix(1);
  while (!line.empty() && (line.back() == ' ' || line.back() == '\r' || line.back() == '\t'))
    line.remove_suffix(1);
  if (line.empty()) return;

  std::vector<std::string> replies;
  if (line.find("metrics") != std::string_view::npos &&
      line.find("\"cmd\"") == std::string_view::npos) {
    // Back-compat plain-text command from proto 1 clients.
    replies.push_back(metrics_snapshot_json());
  } else {
    CommandHandler handler;
    {
      std::lock_guard lock(handler_mu_);
      handler = handler_;
    }
    if (handler) replies = handler(client_id, line);
  }
  if (replies.empty()) return;

  std::lock_guard lock(mu_);
  for (auto& c : clients_) {
    if (c.id != client_id) continue;
    for (const auto& r : replies) enqueue_locked(c, r);
    return;
  }
}

void LiveEndpoint::serve() {
  while (running()) {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;  // ids[i] pairs with fds[i + 2]
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    {
      std::lock_guard lock(mu_);
      for (const auto& c : clients_) {
        const bool pending =
            !c.outq.empty() || c.txoff < c.txbuf.size() || c.dropped > 0;
        fds.push_back({c.fd, static_cast<short>(POLLIN | (pending ? POLLOUT : 0)), 0});
        ids.push_back(c.id);
      }
    }
    const int n = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (n <= 0) continue;

    if (fds[1].revents & POLLIN) {  // drain the self-pipe
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }

    if (fds[0].revents & POLLIN) {
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd >= 0) {
        set_nonblocking(cfd);
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::ostringstream hello;
        JsonWriter w(hello, /*pretty=*/false);
        w.begin_object();
        w.field("type", "hello");
        w.field("service", "greem");
        w.field("version", 1);
        w.field("proto", kLiveProtoVersion);
        w.end_object();
        std::lock_guard lock(mu_);
        Client c;
        c.fd = cfd;
        c.id = next_client_id_++;
        clients_.push_back(std::move(c));
        enqueue_locked(clients_.back(), hello.str());
        enqueue_locked(clients_.back(), metrics_snapshot_json());
        if (!flush_locked(clients_.back()))
          drop_client_locked(clients_.size() - 1);
      }
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLOUT | POLLHUP | POLLERR))) continue;
      const std::uint64_t id = ids[i - 2];
      std::vector<std::string> lines;
      {
        std::lock_guard lock(mu_);
        const auto it = std::find_if(clients_.begin(), clients_.end(),
                                     [&](const Client& c) { return c.id == id; });
        if (it == clients_.end()) continue;
        const auto index = static_cast<std::size_t>(it - clients_.begin());
        if (fds[i].revents & (POLLHUP | POLLERR)) {
          drop_client_locked(index);
          continue;
        }
        if (fds[i].revents & POLLOUT) {
          if (!flush_locked(*it)) {
            drop_client_locked(index);
            continue;
          }
        }
        if (fds[i].revents & POLLIN) {
          char buf[512];
          const ssize_t r = ::recv(it->fd, buf, sizeof(buf), 0);
          if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                         errno != EINTR)) {
            drop_client_locked(index);
            continue;
          }
          if (r > 0) {
            it->rxbuf.append(buf, static_cast<std::size_t>(r));
            std::size_t start = 0, nl;
            while ((nl = it->rxbuf.find('\n', start)) != std::string::npos) {
              lines.emplace_back(it->rxbuf, start, nl - start);
              start = nl + 1;
            }
            it->rxbuf.erase(0, start);
          }
        }
      }
      // Dispatch outside mu_: handlers may call watch()/publish*().
      for (const auto& line : lines) handle_command(id, line);
    }
  }
}

}  // namespace greem::telemetry
