#include "telemetry/live_endpoint.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"

namespace greem::telemetry {

std::string metrics_snapshot_json() {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("type", "metrics");
  w.key("counters").begin_object();
  for (const auto& [name, v] : Registry::global().counters()) w.field(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : Registry::global().gauges()) w.field(name, v);
  w.end_object();
  w.end_object();
  return os.str();
}

LiveEndpoint& LiveEndpoint::global() {
  static LiveEndpoint* e = new LiveEndpoint;  // leaked: outlives static teardown
  return *e;
}

LiveEndpoint::~LiveEndpoint() { stop(); }

bool LiveEndpoint::start(int port) {
  if (running()) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void LiveEndpoint::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::lock_guard lock(mu_);
  for (const auto& c : clients_) ::close(c.fd);
  clients_.clear();
}

std::size_t LiveEndpoint::clients() const {
  std::lock_guard lock(mu_);
  return clients_.size();
}

void LiveEndpoint::set_command_handler(CommandHandler handler) {
  std::lock_guard lock(handler_mu_);
  handler_ = std::move(handler);
}

void LiveEndpoint::watch(std::uint64_t client, std::string topic) {
  std::lock_guard lock(mu_);
  for (auto& c : clients_) {
    if (c.id != client) continue;
    if (std::find(c.topics.begin(), c.topics.end(), topic) == c.topics.end())
      c.topics.push_back(std::move(topic));
    return;
  }
}

void LiveEndpoint::send_line(int fd, std::string_view line) {
  std::string out(line);
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw std::runtime_error("client write failed");
    }
    off += static_cast<std::size_t>(n);
  }
}

void LiveEndpoint::drop_client_locked(std::size_t index) {
  ::close(clients_[index].fd);
  clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(index));
  Registry::global().counter("telemetry/live/clients_dropped").add();
}

template <class Want>
void LiveEndpoint::publish_where(std::string_view line, Want&& want) {
  if (!running()) return;
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < clients_.size();) {
    if (!want(clients_[i])) {
      ++i;
      continue;
    }
    try {
      send_line(clients_[i].fd, line);
      ++i;
    } catch (const std::exception&) {
      drop_client_locked(i);
    }
  }
  published_.fetch_add(1, std::memory_order_relaxed);
}

void LiveEndpoint::publish(std::string_view json_line) {
  publish_where(json_line, [](const Client&) { return true; });
}

void LiveEndpoint::publish_topic(std::string_view topic, std::string_view json_line) {
  publish_where(json_line, [&](const Client& c) {
    return std::find(c.topics.begin(), c.topics.end(), topic) != c.topics.end();
  });
}

void LiveEndpoint::publish_event(std::string_view type, std::string_view detail) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("type", type);
  w.field("detail", detail);
  w.end_object();
  publish(os.str());
}

void LiveEndpoint::handle_command(std::uint64_t client_id, std::string_view line) {
  // Trim surrounding whitespace/CR; ignore blank keep-alive lines.
  while (!line.empty() && (line.front() == ' ' || line.front() == '\r' || line.front() == '\t'))
    line.remove_prefix(1);
  while (!line.empty() && (line.back() == ' ' || line.back() == '\r' || line.back() == '\t'))
    line.remove_suffix(1);
  if (line.empty()) return;

  std::vector<std::string> replies;
  if (line.find("metrics") != std::string_view::npos &&
      line.find("\"cmd\"") == std::string_view::npos) {
    // Back-compat plain-text command from proto 1 clients.
    replies.push_back(metrics_snapshot_json());
  } else {
    CommandHandler handler;
    {
      std::lock_guard lock(handler_mu_);
      handler = handler_;
    }
    if (handler) replies = handler(client_id, line);
  }
  if (replies.empty()) return;

  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].id != client_id) continue;
    try {
      for (const auto& r : replies) send_line(clients_[i].fd, r);
    } catch (const std::exception&) {
      drop_client_locked(i);
    }
    return;
  }
}

void LiveEndpoint::serve() {
  while (running()) {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;  // ids[i] pairs with fds[i + 1]
    fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard lock(mu_);
      for (const auto& c : clients_) {
        fds.push_back({c.fd, POLLIN, 0});
        ids.push_back(c.id);
      }
    }
    const int n = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (n <= 0) continue;

    if (fds[0].revents & POLLIN) {
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd >= 0) {
        timeval tv{1, 0};  // bound publish() stalls on a wedged client
        ::setsockopt(cfd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        std::ostringstream hello;
        JsonWriter w(hello, /*pretty=*/false);
        w.begin_object();
        w.field("type", "hello");
        w.field("service", "greem");
        w.field("version", 1);
        w.field("proto", kLiveProtoVersion);
        w.end_object();
        std::lock_guard lock(mu_);
        try {
          send_line(cfd, hello.str());
          send_line(cfd, metrics_snapshot_json());
          Client c;
          c.fd = cfd;
          c.id = next_client_id_++;
          clients_.push_back(std::move(c));
        } catch (const std::exception&) {
          ::close(cfd);
          Registry::global().counter("telemetry/live/clients_dropped").add();
        }
      }
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      char buf[512];
      const ssize_t r = ::recv(fds[i].fd, buf, sizeof(buf), 0);
      const std::uint64_t id = ids[i - 1];
      std::vector<std::string> lines;
      {
        std::lock_guard lock(mu_);
        const auto it = std::find_if(clients_.begin(), clients_.end(),
                                     [&](const Client& c) { return c.id == id; });
        if (it == clients_.end()) continue;
        if (r <= 0) {  // peer closed or errored
          drop_client_locked(static_cast<std::size_t>(it - clients_.begin()));
          continue;
        }
        it->rxbuf.append(buf, static_cast<std::size_t>(r));
        std::size_t start = 0, nl;
        while ((nl = it->rxbuf.find('\n', start)) != std::string::npos) {
          lines.emplace_back(it->rxbuf, start, nl - start);
          start = nl + 1;
        }
        it->rxbuf.erase(0, start);
      }
      // Dispatch outside mu_: handlers may call watch()/publish*().
      for (const auto& line : lines) handle_command(id, line);
    }
  }
}

}  // namespace greem::telemetry
