#pragma once
// Minimal JSON reader, the counterpart of JsonWriter: parses the artifacts
// this repository writes (checkpoint manifests, BENCH_*.json, StepReport
// JSONL lines) back into a small DOM.  Strict where it matters for
// integrity -- rejects trailing garbage, unterminated strings, bad escapes
// and over-deep nesting -- and deliberately small everywhere else (numbers
// are doubles; exact 64-bit values travel as hex strings or via
// JsonWriter::value_exact round-trips, which are bit-exact for doubles).
//
// Always compiled, like json.hpp: plain I/O, no instrumentation.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace greem::telemetry {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Type-checked accessors; return the fallback on kind mismatch.
  bool as_bool(bool fallback = false) const { return is_bool() ? bool_ : fallback; }
  double as_double(double fallback = 0.0) const { return is_number() ? num_ : fallback; }
  std::int64_t as_i64(std::int64_t fallback = 0) const;
  std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  const std::string& as_string() const;  ///< empty string on mismatch

  /// Array elements (empty for non-arrays).
  const std::vector<JsonValue>& items() const;
  /// Object members in file order (empty for non-objects).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  /// First member named `key`, nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Convenience: find(key) then the typed accessor (fallback when absent).
  double number_or(std::string_view key, double fallback) const;
  std::uint64_t u64_or(std::string_view key, std::uint64_t fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;

  // -- construction (used by the parser; tests may build values directly) --
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parse one JSON document.  Returns nullopt on any syntax error, nesting
/// deeper than 64 levels, or non-whitespace trailing content.
std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace greem::telemetry
