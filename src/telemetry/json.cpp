#include "telemetry/json.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ctime>

#include "telemetry/telemetry.hpp"
#include "util/parallel_for.hpp"

#ifndef GREEM_GIT_SHA
#define GREEM_GIT_SHA "unknown"
#endif
#ifndef GREEM_BUILD_TYPE
#define GREEM_BUILD_TYPE "unknown"
#endif

namespace greem::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 1; i < has_item_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_item() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already handled separation
  }
  if (has_item_.back()) os_ << ',';
  if (pretty_ && has_item_.size() > 1) newline_indent();
  has_item_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_item();
  os_ << '{';
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = has_item_.back();
  has_item_.pop_back();
  if (pretty_ && had) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_item();
  os_ << '[';
  has_item_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = has_item_.back();
  has_item_.pop_back();
  if (pretty_ && had) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  before_item();
  os_ << '"' << json_escape(k) << "\":";
  if (pretty_) os_ << ' ';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_item();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_item();
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    os_ << "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value_exact(double v) {
  before_item();
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    os_ << "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value_int(std::int64_t v) {
  before_item();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value_uint(std::uint64_t v) {
  before_item();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_item();
  os_ << (v ? "true" : "false");
  return *this;
}

RunMeta RunMeta::collect(std::string bench, std::string kernel) {
  RunMeta m;
  m.bench = std::move(bench);
  m.kernel = std::move(kernel);
  m.git_sha = GREEM_GIT_SHA;
  m.build_type = GREEM_BUILD_TYPE;
  m.pool_threads = num_threads();
  m.telemetry = enabled();
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  m.timestamp = buf;
  return m;
}

void write_meta(JsonWriter& w, const RunMeta& m) {
  w.key("meta").begin_object();
  w.field("bench", m.bench);
  w.field("kernel", m.kernel);
  w.field("git_sha", m.git_sha);
  w.field("build_type", m.build_type);
  w.field("pool_threads", m.pool_threads);
  w.field("telemetry", m.telemetry);
  w.field("timestamp", m.timestamp);
  w.end_object();
}

}  // namespace greem::telemetry
