#pragma once
// StepRecord: the machine-readable per-step report of the distributed
// TreePM driver -- one JSON line per step with the Table I phase times
// (max over ranks, the paper's convention: the slowest rank sets the step
// time), the achieved short-range flop rate computed from interaction
// counts (51 flops/interaction, §II-A), per-rank load imbalance (max/mean)
// and per-phase communication traffic from the parx ledger.
//
// The record struct itself is always available (it is plain data);
// ParallelSimulation only *fills and writes* it when the telemetry layer
// is compiled in and a report path is configured.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.hpp"

namespace greem::telemetry {

struct StepRecord {
  std::string job;          ///< owning job label under a service, "" solo
  std::uint64_t step = 0;   ///< 1-based step index
  double t = 0;             ///< simulation clock after the step
  int ranks = 1;
  int nsub = 1;             ///< PP cycles inside this step
  std::uint64_t n_particles = 0;  ///< global

  /// Phase seconds, max over ranks, under the Table I row names.  These
  /// are *busy*-time rows (per-phase stopwatch segments of the rank
  /// thread); under comm/compute overlap a drain row records only the
  /// residual stall, not the full message flight, so wall-clock claims
  /// must use force_wall_seconds -- summing rows across the pm and pp
  /// breakdowns would double-count the overlapped window.
  TimingBreakdown pm, pp, dd;

  // Load imbalance of the PP part (traversal + force), over ranks.
  double pp_seconds_max = 0;
  double pp_seconds_mean = 0;
  double pp_imbalance() const {
    return pp_seconds_mean > 0 ? pp_seconds_max / pp_seconds_mean : 0.0;
  }

  // Short-range work and achieved rate (global interactions, wall time of
  // the slowest rank's traversal+force).
  std::uint64_t interactions = 0;
  double flops = 0;      ///< interactions * flops/interaction
  double flop_rate = 0;  ///< flops / pp_seconds_max

  std::uint64_t ghosts_imported = 0;  ///< global boundary-particle imports

  // Intra-rank task-pool activity during this step (the pool is shared
  // process-wide, so these are process totals, not per-rank).
  std::uint64_t pool_loops = 0;   ///< parallel loops dispatched
  std::uint64_t pool_chunks = 0;  ///< chunks executed
  std::uint64_t pool_steals = 0;  ///< chunks obtained by stealing
  double pool_imbalance = 0;      ///< max/mean per-slot busy time

  /// Global point-to-point traffic attributed to one phase of the step.
  struct PhaseTraffic {
    std::string phase;  ///< "dd", "pp", "pm"
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    double model_time_s = 0;  ///< endpoint-serialization congestion model
  };
  std::vector<PhaseTraffic> traffic;

  // Reliable-transport activity during this step (counter deltas; all zero
  // on the perfect-link fast path).
  std::uint64_t retransmits = 0;        ///< frames retransmitted
  std::uint64_t transport_drops = 0;    ///< transmissions dropped by the link model
  std::uint64_t corrupt_detected = 0;   ///< frames rejected by CRC at the receiver

  // Comm/compute overlap of the combined (PP + pipelined PM) force cycle,
  // docs/overlap.md.  Wall vs busy: force_wall_seconds is the slowest
  // rank's wall clock over the combined cycle; the blocked/inflight sums
  // are job-wide (summed over ranks); the fraction is
  // inflight / (inflight + blocked) -- 1 means every message flight was
  // fully hidden behind compute, 0 means none was (or overlap was off).
  bool overlap_enabled = false;
  double force_wall_seconds = 0;       ///< max over ranks, combined cycle wall
  double overlap_blocked_seconds = 0;  ///< sum over ranks of wait-stall time
  double overlap_inflight_seconds = 0; ///< sum over ranks of post-to-drain windows
  double overlap_fraction = 0;         ///< inflight / (inflight + blocked)

  /// Per-rank PP group-walk cost summary (final PP cycle of the step) --
  /// the coarse view of tree::GroupCost attribution: where the short-range
  /// work sits across ranks, which rank carries the most expensive single
  /// group.  Empty when group costs were not collected.
  struct RankGroups {
    std::uint64_t groups = 0;         ///< group count on this rank
    std::uint64_t interactions = 0;   ///< sum of per-group Ni*Nj
    std::uint64_t ghost_sources = 0;  ///< opened ghost leaf sources
    double walk_s = 0;                ///< summed per-group walk seconds
    double force_s = 0;               ///< summed per-group kernel seconds
    double max_group_s = 0;  ///< costliest single group (walk + force)
  };
  std::vector<RankGroups> pp_groups;  ///< indexed by rank

  // Load-balance v2 (docs/load-balance.md): predicted imbalance of the
  // published per-rank interaction counts that fed this step's donation
  // plan, and the donation volume actually shipped (global sums over all
  // PP cycles of the step).  All zero when donation is off or never
  // triggered.
  double lb_predicted_imbalance = 0;       ///< max/mean of published costs
  std::uint64_t lb_donated_groups = 0;     ///< groups exported rank-to-rank
  std::uint64_t lb_donated_interactions = 0;  ///< their summed Ni*Nj
};

/// Append `r` to `os` as one compact JSON line (JSONL).
void write_jsonl(std::ostream& os, const StepRecord& r);

/// Append one pre-rendered line to `path` with a single POSIX
/// O_APPEND write, then flush it to the OS (and to the disk when
/// `fsync` is set) before returning -- a crash right after a step can
/// never lose that step's record, which is the whole point of a
/// post-mortem report stream.  Returns false if the file could not be
/// opened or fully written.
bool append_jsonl_line(const std::string& path, std::string_view line, bool fsync = false);

}  // namespace greem::telemetry
